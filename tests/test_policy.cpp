// Policy engine (src/policy, DESIGN.md §10): feature extraction and key
// stability, decision-store round-trips through both tiers (including
// the corrupt-entry fallback), feedback-driven decision flips, agreement
// of DecisionEngine verdicts with the estimator-derived Table IV labels
// on all 33 app×platform cases, and the compileAuto() warm path
// skipping the losing variant's pipeline.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "apps/app.h"
#include "grovercl/compiler.h"
#include "grovercl/harness.h"
#include "perf/platform.h"
#include "policy/decision_engine.h"
#include "policy/features.h"
#include "policy/feedback.h"
#include "policy/policy_store.h"
#include "service/compile_service.h"

namespace {

namespace fs = std::filesystem;
using namespace grover;

fs::path freshDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() /
                       ("grover_policy_" + std::to_string(::getpid()) +
                        "_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

policy::KernelFeatures featuresOf(const std::string& appId) {
  const apps::Application& app = apps::applicationById(appId);
  Program program = compile(app.source());
  ir::Function* kernel = program.kernel(app.kernelName());
  EXPECT_NE(kernel, nullptr);
  const apps::Instance inst = app.makeInstance(apps::Scale::Test);
  return policy::extractFeatures(*kernel, &inst.range);
}

const std::vector<std::string>& table4Apps() {
  static const std::vector<std::string> apps = {
      "AMD-SS",   "AMD-MT",   "NVD-MT",    "AMD-RG",
      "AMD-MM",   "NVD-MM-A", "NVD-MM-B",  "NVD-MM-AB",
      "NVD-NBody", "PAB-ST",  "ROD-SC"};
  return apps;
}

TEST(PolicyFeatures, ExtractsLocalMemoryShapeOfMatrixTranspose) {
  const policy::KernelFeatures f = featuresOf("NVD-MT");
  EXPECT_GT(f.localBytes, 0u);
  EXPECT_EQ(f.numLocalBuffers, 1u);
  EXPECT_EQ(f.numReversibleBuffers, 1u);
  EXPECT_GE(f.numBarriers, 1u);
  EXPECT_GE(f.numStagingPairs, 1u);
  EXPECT_GT(f.localLoads, 0u);
  EXPECT_GT(f.totalInsts, 0u);
  // The transpose reads the tile with lx scaled by the row pitch — the
  // strided shape that makes the lowered global reads uncoalesced.
  EXPECT_EQ(f.llStride, policy::StrideShape::Scaled);
  EXPECT_EQ(f.localSize[0], 16u);
  EXPECT_FALSE(f.str().empty());
}

TEST(PolicyFeatures, KeyIsStableAndDiscriminates) {
  const policy::KernelFeatures a = featuresOf("NVD-MT");
  const policy::KernelFeatures b = featuresOf("NVD-MT");
  // Two independent compilations of the same kernel → identical key.
  EXPECT_EQ(policy::featureKey(a, "SNB", 0), policy::featureKey(b, "SNB", 0));
  // Platform and scale are part of the key.
  EXPECT_NE(policy::featureKey(a, "SNB", 0), policy::featureKey(a, "MIC", 0));
  EXPECT_NE(policy::featureKey(a, "SNB", 0), policy::featureKey(a, "SNB", 1));
  // A different kernel shape → different key.
  const policy::KernelFeatures c = featuresOf("AMD-MM");
  EXPECT_NE(policy::featureKey(a, "SNB", 0), policy::featureKey(c, "SNB", 0));
}

TEST(PolicyStore, MemoryRoundTripAndLruEviction) {
  policy::PolicyStore::Config config;
  config.maxEntries = 8;
  config.shards = 1;
  policy::PolicyStore store(config);

  policy::Decision d;
  d.variant = policy::Variant::Transformed;
  d.predictedOutcome = perf::Outcome::Gain;
  d.predictedNp = 1.5;
  d.confidence = 0.95;
  d.source = "estimate";
  store.store(7, d);

  const auto hit = store.lookup(7);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->variant, policy::Variant::Transformed);
  EXPECT_EQ(hit->predictedNp, 1.5);
  EXPECT_EQ(hit->source, "estimate");
  EXPECT_FALSE(store.lookup(8).has_value());

  // Overflow the single shard: oldest entries evict, newest survive.
  for (std::uint64_t k = 100; k < 120; ++k) store.store(k, d);
  EXPECT_FALSE(store.lookup(7).has_value());
  EXPECT_TRUE(store.lookup(119).has_value());
  const auto stats = store.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.entries, 8u);
}

TEST(PolicyStore, DiskTierRoundTripIsBitExact) {
  const fs::path dir = freshDir("disk");
  policy::Decision d;
  d.variant = policy::Variant::Original;
  d.predictedOutcome = perf::Outcome::Loss;
  d.predictedNp = 0.7428913762197;  // exercises the bit-pattern encoding
  d.confidence = 0.75;
  d.source = "estimate";
  d.ewmaNp = 0.81234567890123;
  d.observations = 3;
  d.mismatch = true;
  {
    policy::PolicyStore::Config config;
    config.diskDir = dir.string();
    policy::PolicyStore store(config);
    store.store(42, d);
    EXPECT_EQ(store.stats().diskStores, 1u);
  }
  // A fresh store over the same directory reloads the decision exactly.
  policy::PolicyStore::Config config;
  config.diskDir = dir.string();
  policy::PolicyStore reloaded(config);
  const auto hit = reloaded.lookup(42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->variant, d.variant);
  EXPECT_EQ(hit->predictedOutcome, d.predictedOutcome);
  EXPECT_EQ(hit->predictedNp, d.predictedNp);  // bit-identical
  EXPECT_EQ(hit->ewmaNp, d.ewmaNp);
  EXPECT_EQ(hit->observations, 3u);
  EXPECT_TRUE(hit->mismatch);
  EXPECT_EQ(reloaded.stats().diskHits, 1u);
  // Second lookup is served from the populated memory tier.
  EXPECT_TRUE(reloaded.lookup(42).has_value());
  EXPECT_EQ(reloaded.stats().diskHits, 1u);
  fs::remove_all(dir);
}

TEST(PolicyStore, CorruptDiskEntryIsDeletedAndMisses) {
  const fs::path dir = freshDir("corrupt");
  policy::PolicyStore::Config config;
  config.diskDir = dir.string();
  {
    policy::PolicyStore store(config);
    policy::Decision d;
    d.predictedNp = 1.2;
    store.store(42, d);
  }
  policy::PolicyStore store(config);
  const std::string path = store.diskPath(42);
  {
    // Truncate mid-file: exactly the state an interrupted write would
    // have produced without the temp-file + rename protocol.
    std::ofstream out(path, std::ios::trunc);
    out << "groverpol 1\nkey ";
  }
  EXPECT_FALSE(store.lookup(42).has_value());
  EXPECT_EQ(store.stats().diskLoadFailures, 1u);
  EXPECT_FALSE(fs::exists(path)) << "corrupt entry must be deleted";
  // The slot is reusable: a fresh decision persists and reloads.
  policy::Decision d;
  d.predictedNp = 0.9;
  store.store(42, d);
  policy::PolicyStore again(config);
  ASSERT_TRUE(again.lookup(42).has_value());
  EXPECT_EQ(again.lookup(42)->predictedNp, 0.9);
  fs::remove_all(dir);
}

TEST(PolicyFeedback, MeasurementsFlipAContradictedDecision) {
  policy::PolicyStore store({});
  policy::Decision d;
  d.variant = policy::Variant::Transformed;
  d.predictedOutcome = perf::Outcome::Gain;
  d.predictedNp = 1.4;
  d.confidence = 0.95;
  d.source = "estimate";
  store.store(1, d);

  policy::FeedbackLoop feedback(store);
  // Measured reality says the transform loses on this kernel shape.
  policy::Decision updated = feedback.recordMeasurement(1, 0.6);
  EXPECT_EQ(updated.observations, 1u);
  EXPECT_EQ(updated.ewmaNp, 0.6);
  EXPECT_EQ(updated.variant, policy::Variant::Original)
      << "first contradicting measurement already flips at EWMA 0.6";
  EXPECT_EQ(updated.source, "feedback");
  EXPECT_TRUE(updated.mismatch) << "0.6 vs predicted 1.4 is way past 15%";

  updated = feedback.recordMeasurement(1, 0.7);
  EXPECT_EQ(updated.observations, 2u);
  EXPECT_NEAR(updated.ewmaNp, 0.3 * 0.7 + 0.7 * 0.6, 1e-12);

  const auto stats = feedback.stats();
  EXPECT_EQ(stats.measurements, 2u);
  EXPECT_EQ(stats.flips, 1u);
  EXPECT_EQ(stats.mismatches, 1u);

  // The flipped decision is what the store now serves.
  EXPECT_EQ(store.lookup(1)->variant, policy::Variant::Original);
}

TEST(PolicyFeedback, UnknownKeyBootstrapsFromMeasurement) {
  policy::PolicyStore store({});
  policy::FeedbackLoop feedback(store);
  const policy::Decision d = feedback.recordMeasurement(99, 1.3);
  EXPECT_EQ(d.source, "feedback");
  EXPECT_EQ(d.variant, policy::Variant::Transformed);
  EXPECT_EQ(d.observations, 1u);
  EXPECT_TRUE(store.lookup(99).has_value());
}

TEST(PolicyFeedback, AgreeingMeasurementsKeepTheDecision) {
  policy::PolicyStore store({});
  policy::Decision d;
  d.variant = policy::Variant::Transformed;
  d.predictedOutcome = perf::Outcome::Gain;
  d.predictedNp = 1.4;
  store.store(1, d);
  policy::FeedbackLoop feedback(store);
  const policy::Decision updated = feedback.recordMeasurement(1, 1.38);
  EXPECT_EQ(updated.variant, policy::Variant::Transformed);
  EXPECT_FALSE(updated.mismatch);
  EXPECT_EQ(feedback.stats().flips, 0u);
}

// The acceptance bar of ISSUE 5: the engine's verdict must agree with
// the estimator-derived Gain/Loss/Similar label on ≥ 30 of the 33
// app×platform cases (11 Table IV apps × 3 cache-only platforms).
// Estimates dominate the prior by construction, so this holds on all 33;
// Test scale keeps the suite fast (the labels differ from Bench scale,
// but the agreement property is scale-independent).
TEST(PolicyEngine, AgreesWithEstimatorLabelsOnAll33Table4Cases) {
  policy::DecisionEngine engine;
  int agree = 0, total = 0;
  for (const std::string& id : table4Apps()) {
    const apps::Application& app = apps::applicationById(id);
    const policy::KernelFeatures features = featuresOf(id);
    for (const perf::PlatformSpec& spec : perf::cacheOnlyPlatforms()) {
      const PerfComparison cmp =
          comparePerformance(app, spec, apps::Scale::Test);
      const policy::Decision d = engine.decide(
          features, spec,
          policy::EstimatePair{cmp.cyclesWithLM, cmp.cyclesWithoutLM});
      ++total;
      if (d.predictedOutcome == cmp.outcome) ++agree;
      // The served variant must be consistent with the verdict.
      if (cmp.outcome == perf::Outcome::Gain) {
        EXPECT_EQ(d.variant, policy::Variant::Transformed) << id;
      } else if (cmp.outcome == perf::Outcome::Loss) {
        EXPECT_EQ(d.variant, policy::Variant::Original) << id;
      }
    }
  }
  EXPECT_EQ(total, 33);
  EXPECT_GE(agree, 30) << "engine verdicts diverge from estimator labels";
}

TEST(PolicyEngine, PriorServesOriginalWhenNothingIsReversible) {
  policy::DecisionEngine engine;
  const auto snb = perf::findPlatform("SNB");
  ASSERT_TRUE(snb.has_value());
  policy::KernelFeatures f;  // no reversible buffers, no staging
  const policy::Decision d = engine.prior(f, *snb);
  EXPECT_EQ(d.variant, policy::Variant::Original);
  EXPECT_EQ(d.predictedOutcome, perf::Outcome::Similar);
  EXPECT_EQ(d.source, "prior");
  EXPECT_GT(d.confidence, 0.8);
}

TEST(ServiceCompileAuto, WarmHitSkipsLoserPipelineAndEstimation) {
  const fs::path dir = freshDir("auto");
  service::Request request;
  request.appId = "NVD-MT";
  request.platform = "SNB";
  request.scale = apps::Scale::Test;

  std::string coldServedText;
  std::uint64_t coldKey = 0;
  {
    service::ServiceConfig config;
    config.workers = 2;
    config.policyStore.diskDir = dir.string();
    service::CompileService svc(config);
    const service::AutoResult cold = svc.compileAuto(request);
    ASSERT_TRUE(cold.eligible);
    EXPECT_FALSE(cold.policyHit);
    ASSERT_TRUE(cold.artifact->ok);
    EXPECT_TRUE(cold.artifact->hasEstimate);
    EXPECT_EQ(cold.decision.source, "estimate");
    coldServedText = cold.servedText();
    coldKey = cold.policyKey;
    EXPECT_FALSE(coldServedText.empty());
    const service::ServiceStats s = svc.stats();
    EXPECT_EQ(s.policyMisses, 1u);
    EXPECT_EQ(s.policyStores, 1u);
    EXPECT_EQ(s.compiles, 1u);
  }

  // Fresh service, fresh (cold) artifact cache, same policy directory:
  // the decision is warm, so only the winning variant is built and the
  // estimator never runs.
  service::ServiceConfig config;
  config.workers = 2;
  config.policyStore.diskDir = dir.string();
  service::CompileService svc(config);
  const service::AutoResult warm = svc.compileAuto(request);
  ASSERT_TRUE(warm.eligible);
  EXPECT_TRUE(warm.policyHit);
  EXPECT_EQ(warm.policyKey, coldKey);
  ASSERT_TRUE(warm.artifact->ok);
  EXPECT_FALSE(warm.artifact->hasEstimate) << "warm path must not estimate";
  EXPECT_EQ(warm.servedText(), coldServedText)
      << "warm hit serves the same winning variant bit-for-bit";
  const service::ServiceStats s = svc.stats();
  EXPECT_EQ(s.policyHits, 1u);
  EXPECT_EQ(s.compiles, 0u) << "full pipeline must not run on a warm hit";
  EXPECT_EQ(s.estimateMs, 0.0);
  // NVD-MT on SNB is the paper's flagship gain: the transformed variant
  // is served, and the losing (original) text was never printed.
  EXPECT_EQ(warm.decision.variant, policy::Variant::Transformed);
  EXPECT_TRUE(warm.artifact->originalText.empty());
  fs::remove_all(dir);
}

TEST(ServiceCompileAuto, MeasurementFeedbackReachesTheStore) {
  service::ServiceConfig config;
  config.workers = 2;
  service::CompileService svc(config);
  service::Request request;
  request.appId = "NVD-MT";
  request.platform = "SNB";
  request.scale = apps::Scale::Test;
  const service::AutoResult cold = svc.compileAuto(request);
  ASSERT_TRUE(cold.eligible);

  // Contradicting measurements flip the stored decision…
  (void)svc.recordMeasurement(cold.policyKey, 0.5);
  const service::AutoResult warm = svc.compileAuto(request);
  EXPECT_TRUE(warm.policyHit);
  EXPECT_EQ(warm.decision.variant, policy::Variant::Original);
  EXPECT_GE(warm.decision.observations, 1u);
  const service::ServiceStats s = svc.stats();
  EXPECT_EQ(s.policyFlips, 1u);
  EXPECT_EQ(s.policyMismatches, 1u);
}

TEST(ServiceCompileAuto, RequestWithoutPlatformFallsBackToNormalPath) {
  service::CompileService svc;
  service::Request request;
  request.appId = "NVD-MT";  // no platform → nothing to decide
  const service::AutoResult r = svc.compileAuto(request);
  EXPECT_FALSE(r.eligible);
  EXPECT_FALSE(r.policyHit);
  ASSERT_TRUE(r.artifact->ok);
  EXPECT_FALSE(r.artifact->transformedText.empty());
}

}  // namespace
