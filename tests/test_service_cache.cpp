// Cache semantics of the compilation service: LRU byte budget, negative
// caching of compile failures, the on-disk tier (hit, corruption
// fallback), and bit-identity of cached estimates with the uncached
// Harness path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "grovercl/harness.h"
#include "service/compile_service.h"
#include "support/diagnostics.h"

namespace grover::service {
namespace {

namespace fs = std::filesystem;

ArtifactPtr makeArtifact(std::size_t textBytes) {
  auto a = std::make_shared<Artifact>();
  a->ok = true;
  a->transformedText.assign(textBytes, 'x');
  return a;
}

std::string freshDir(const std::string& tag) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("grover_svc_test_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TEST(ArtifactCacheLru, EvictionRespectsByteBudget) {
  // Budget sized so two entries fit and a third does not.
  const std::size_t entryBytes = makeArtifact(800)->byteSize();
  ArtifactCache::Config config;
  config.shards = 1;
  config.maxBytes = 2 * entryBytes + entryBytes / 2;
  ArtifactCache cache(config);

  cache.put(1, makeArtifact(800));
  cache.put(2, makeArtifact(800));
  ASSERT_NE(cache.get(1), nullptr);
  ASSERT_NE(cache.get(2), nullptr);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Third entry overflows the budget; key 1 was touched before key 2, so
  // key 1 is the LRU victim.
  cache.put(3, makeArtifact(800));
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_NE(cache.get(2), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
  const ArtifactCache::Stats s1 = cache.stats();
  EXPECT_EQ(s1.evictions, 1u);
  EXPECT_LE(s1.bytesInUse, config.maxBytes);

  // Recency is respected: touch 2, insert 4 → 3 is evicted, 2 survives.
  ASSERT_NE(cache.get(2), nullptr);
  cache.put(4, makeArtifact(800));
  EXPECT_NE(cache.get(2), nullptr);
  EXPECT_EQ(cache.get(3), nullptr);
  EXPECT_NE(cache.get(4), nullptr);
  EXPECT_LE(cache.stats().bytesInUse, config.maxBytes);
}

TEST(ArtifactCacheLru, OversizedArtifactIsNotRetained) {
  ArtifactCache::Config config;
  config.shards = 1;
  config.maxBytes = 1000;
  ArtifactCache cache(config);
  cache.put(7, makeArtifact(5000));
  EXPECT_EQ(cache.get(7), nullptr);
  EXPECT_LE(cache.stats().bytesInUse, config.maxBytes);
}

TEST(ServiceNegativeCache, CompileFailureIsCachedWithoutRecompiling) {
  CompileService service(ServiceConfig{});
  Request bad;
  bad.source = "__kernel void broken(__global float* out) { out[0] = ; }";

  const ArtifactPtr first = service.run(bad);
  ASSERT_NE(first, nullptr);
  EXPECT_FALSE(first->ok);
  EXPECT_FALSE(first->diagnostics.empty());
  EXPECT_EQ(service.stats().compiles, 1u);

  const ArtifactPtr second = service.run(bad);
  ASSERT_NE(second, nullptr);
  EXPECT_FALSE(second->ok);
  EXPECT_EQ(second->diagnostics, first->diagnostics);
  const ServiceStats s = service.stats();
  EXPECT_EQ(s.compiles, 1u) << "negative entry must not re-compile";
  EXPECT_EQ(s.memoryHits, 1u);
  EXPECT_EQ(s.negativeHits, 1u);
}

TEST(ServiceNegativeCache, UnknownAppAndBadPlatformAreRejected) {
  CompileService service(ServiceConfig{});
  Request r;
  r.appId = "NOT-AN-APP";
  EXPECT_THROW((void)service.submit(r), GroverError);
  Request p;
  p.appId = "NVD-MT";
  p.platform = "PDP-11";
  EXPECT_THROW((void)service.submit(p), GroverError);
  Request noApp;
  noApp.source = "__kernel void k(__global float* o) { o[0] = 1.0f; }";
  noApp.platform = "SNB";
  EXPECT_THROW((void)service.submit(noApp), GroverError);
}

TEST(ServiceDiskTier, SecondServiceLoadsFromDiskWithoutCompiling) {
  const std::string dir = freshDir("disk");
  Request req;
  req.appId = "NVD-MT";
  req.platform = "SNB";
  req.scale = apps::Scale::Test;

  ServiceConfig config;
  config.cache.diskDir = dir;
  ArtifactPtr cold;
  {
    CompileService service(config);
    cold = service.run(req);
    ASSERT_TRUE(cold->ok);
    EXPECT_EQ(service.stats().compiles, 1u);
    EXPECT_EQ(service.stats().diskStores, 1u);
  }

  CompileService warm(config);
  const ArtifactPtr reloaded = warm.run(req);
  ASSERT_TRUE(reloaded->ok);
  const ServiceStats s = warm.stats();
  EXPECT_EQ(s.compiles, 0u) << "disk artifact must satisfy the request";
  EXPECT_EQ(s.diskHits, 1u);
  // Full fidelity through the printer/parser cache format.
  EXPECT_EQ(reloaded->transformedText, cold->transformedText);
  EXPECT_EQ(reloaded->originalText, cold->originalText);
  ASSERT_EQ(reloaded->report.buffers.size(), cold->report.buffers.size());
  EXPECT_EQ(reloaded->report.buffers[0].solution,
            cold->report.buffers[0].solution);
  // Estimates are persisted bit-exactly.
  EXPECT_EQ(reloaded->cyclesWithLM, cold->cyclesWithLM);
  EXPECT_EQ(reloaded->cyclesWithoutLM, cold->cyclesWithoutLM);
  EXPECT_EQ(reloaded->normalized, cold->normalized);
  fs::remove_all(dir);
}

TEST(ServiceDiskTier, CorruptedArtifactFallsBackToRecompilation) {
  const std::string dir = freshDir("corrupt");
  Request req;
  req.appId = "AMD-MT";

  ServiceConfig config;
  config.cache.diskDir = dir;
  ArtifactPtr cold;
  {
    CompileService service(config);
    cold = service.run(req);
    ASSERT_TRUE(cold->ok);
  }

  // Corrupt every stored artifact in place.
  unsigned corrupted = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::ofstream out(entry.path(), std::ios::trunc | std::ios::binary);
    out << "groverart 1\nkey 0000000000000000\nthis is not an artifact\n";
    ++corrupted;
  }
  ASSERT_GE(corrupted, 1u);

  CompileService service(config);
  const ArtifactPtr recompiled = service.run(req);
  ASSERT_TRUE(recompiled->ok) << "corruption must not fail the request";
  const ServiceStats s = service.stats();
  EXPECT_EQ(s.diskLoadFailures, 1u);
  EXPECT_EQ(s.diskHits, 0u);
  EXPECT_EQ(s.compiles, 1u);
  EXPECT_EQ(recompiled->transformedText, cold->transformedText);

  // Truncated/garbled module payload (valid-looking header, broken IR)
  // must also be rejected by the parse/verify/round-trip validation.
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string text;
    {
      std::ifstream in(entry.path(), std::ios::binary);
      std::stringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    }
    const std::size_t pos = text.find("store");
    if (pos != std::string::npos) text.replace(pos, 5, "blorp");
    std::ofstream out(entry.path(), std::ios::trunc | std::ios::binary);
    out << text;
  }
  CompileService service2(config);
  const ArtifactPtr again = service2.run(req);
  ASSERT_TRUE(again->ok);
  EXPECT_EQ(service2.stats().compiles, 1u);
  EXPECT_EQ(service2.stats().diskLoadFailures, 1u);
  fs::remove_all(dir);
}

TEST(ServiceEstimates, BitIdenticalToUncachedHarness) {
  Request req;
  req.appId = "NVD-MT";
  req.platform = "SNB";
  req.scale = apps::Scale::Test;

  CompileService service(ServiceConfig{});
  const ArtifactPtr served = service.run(req);
  ASSERT_TRUE(served->ok);
  ASSERT_TRUE(served->hasEstimate);

  const apps::Application& app = apps::applicationById("NVD-MT");
  const PerfComparison direct =
      comparePerformance(app, *perf::findPlatform("SNB"), apps::Scale::Test);
  EXPECT_EQ(served->cyclesWithLM, direct.cyclesWithLM);
  EXPECT_EQ(served->cyclesWithoutLM, direct.cyclesWithoutLM);
  EXPECT_EQ(served->normalized, direct.normalized);

  // A warm hit serves the very same artifact object.
  const ArtifactPtr warm = service.run(req);
  EXPECT_EQ(warm.get(), served.get());
}

}  // namespace
}  // namespace grover::service
