// The linear-integer solver under the prover: hand-built cases for every
// verdict, the barrier-obligation shapes the prover actually emits, and
// an exhaustive small-domain model-check — ~200 pseudo-random affine
// systems over bounded variables (ids < 8, trips < 4) where brute-force
// enumeration of every assignment must agree with the symbolic verdict.
#include "sym/solver.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace grover::sym {
namespace {

// ---------------------------------------------------------------------
// Hand-built cases.
// ---------------------------------------------------------------------

TEST(SymSolver, EmptySystemIsSat) {
  System s;
  SolveResult r = solve(s);
  EXPECT_EQ(r.status, SolveStatus::Sat);
}

TEST(SymSolver, SimpleEqualityHasModel) {
  System s;
  unsigned x = s.addVar("x", 0, 15);
  unsigned y = s.addVar("y", 0, 15);
  // x - y - 3 == 0.
  s.add({{{x, 1}, {y, -1}}, -3, Rel::Eq});
  SolveResult r = solve(s);
  ASSERT_EQ(r.status, SolveStatus::Sat);
  EXPECT_EQ(r.model[x] - r.model[y], 3);
}

TEST(SymSolver, GcdTestRefutesParityClash) {
  System s;
  unsigned t1 = s.addVar("t1", 0, 100);
  unsigned t2 = s.addVar("t2", 0, 100);
  // 2*t1 - 2*t2 - 1 == 0 has no integer solution (the matmul phase
  // obligation: store interval 2t, load interval 2t'+1).
  s.add({{{t1, 2}, {t2, -2}}, -1, Rel::Eq});
  SolveResult r = solve(s);
  EXPECT_EQ(r.status, SolveStatus::Unsat);
}

TEST(SymSolver, TiledInjectivityIsUnsat) {
  // 16*ly_i + lx_i == 16*ly_j + lx_j with (lx,ly) pairs distinct: the
  // local-id split makes the index injective.
  for (int dir = 0; dir < 2; ++dir) {
    System s;
    unsigned xi = s.addVar("lx_i", 0, 15), yi = s.addVar("ly_i", 0, 15);
    unsigned xj = s.addVar("lx_j", 0, 15), yj = s.addVar("ly_j", 0, 15);
    s.add({{{yi, 16}, {xi, 1}, {yj, -16}, {xj, -1}}, 0, Rel::Eq});
    if (dir == 0) {
      s.add({{{xi, 1}, {xj, -1}}, 1, Rel::Le});  // xi < xj
    } else {
      s.add({{{yi, 1}, {yj, -1}}, 1, Rel::Le});  // yi < yj
    }
    SolveResult r = solve(s);
    EXPECT_EQ(r.status, SolveStatus::Unsat) << "dir=" << dir;
  }
}

TEST(SymSolver, CollapsedDimensionRaceIsSatWithWitness) {
  // tile[lx] written by items (lx, ly) and (lx, ly'): SAT when ly != ly'.
  System s;
  unsigned xi = s.addVar("lx_i", 0, 15), yi = s.addVar("ly_i", 0, 1);
  unsigned xj = s.addVar("lx_j", 0, 15), yj = s.addVar("ly_j", 0, 1);
  s.add({{{xi, 1}, {xj, -1}}, 0, Rel::Eq});
  s.add({{{yi, 1}, {yj, -1}}, 1, Rel::Le});  // yi < yj
  SolveResult r = solve(s);
  ASSERT_EQ(r.status, SolveStatus::Sat);
  EXPECT_EQ(r.model[xi], r.model[xj]);
  EXPECT_LT(r.model[yi], r.model[yj]);
}

TEST(SymSolver, NeConstraintSplits) {
  System s;
  unsigned x = s.addVar("x", 0, 3);
  s.add({{{x, 1}}, 0, Rel::Ne});   // x != 0
  s.add({{{x, 1}}, -1, Rel::Ne});  // x != 1
  s.add({{{x, 1}}, -2, Rel::Ne});  // x != 2
  s.add({{{x, 1}}, -3, Rel::Ne});  // x != 3
  SolveResult r = solve(s);
  EXPECT_EQ(r.status, SolveStatus::Unsat);
}

TEST(SymSolver, UnboundedVarsViaFourierMotzkin) {
  // Unbounded trip count T with t_i <= T-1 and a contradiction:
  // lx_i < 0 after substitution — Unsat despite the unbounded var.
  System s;
  unsigned T = s.addVar("T");
  unsigned t = s.addVar("t", 0, 1 << 10);
  unsigned x = s.addVar("x", 0, 15);
  s.add({{{t, 1}, {T, -1}}, 1, Rel::Le});   // t <= T - 1
  s.add({{{T, -1}}, 0, Rel::Le});           // T >= 0
  s.add({{{x, 1}, {t, 0}}, 1, Rel::Le});    // x <= -1: impossible
  SolveResult r = solve(s);
  EXPECT_EQ(r.status, SolveStatus::Unsat);
}

TEST(SymSolver, UnboundedSatReconstructsModel) {
  System s;
  unsigned T = s.addVar("T");
  unsigned t = s.addVar("t", 0, 100);
  s.add({{{t, 1}, {T, -1}}, 1, Rel::Le});  // t <= T - 1
  s.add({{{T, -1}}, 3, Rel::Le});          // T >= 3
  s.add({{{t, 1}}, -2, Rel::Eq});          // t == 2
  SolveResult r = solve(s);
  ASSERT_EQ(r.status, SolveStatus::Sat);
  EXPECT_EQ(r.model[t], 2);
  EXPECT_GE(r.model[T], 3);
  EXPECT_LE(r.model[t], r.model[T] - 1);
}

TEST(SymSolver, BudgetExhaustionIsUnknownNotGuess) {
  System s;
  // Huge-domain vars with a relation the pre-solve can't kill (no unit
  // coefficient, no singleton) and a domain cap too small to branch:
  // the search must admit Unknown rather than guess Unsat.
  unsigned x = s.addVar("x", 0, (1 << 14) - 1);
  unsigned y = s.addVar("y", 0, (1 << 14) - 1);
  unsigned z = s.addVar("z", 0, (1 << 14) - 1);
  s.add({{{x, 3}, {y, -5}, {z, 7}}, -1, Rel::Eq});
  s.add({{{x, 2}, {y, 3}, {z, -4}}, -11, Rel::Ne});
  SolveBudget tiny;
  tiny.maxNodes = 3;
  tiny.maxDomain = 4;
  SolveResult r = solve(s, tiny);
  EXPECT_EQ(r.status, SolveStatus::Unknown);
  EXPECT_FALSE(r.note.empty());
  // With the default budget the same system is decidable, and a Sat
  // verdict always carries a model satisfying the original system.
  SolveResult full = solve(s);
  ASSERT_EQ(full.status, SolveStatus::Sat);
  std::int64_t lhs = 3 * full.model[x] - 5 * full.model[y] + 7 * full.model[z] - 1;
  EXPECT_EQ(lhs, 0);
  std::int64_t ne = 2 * full.model[x] + 3 * full.model[y] - 4 * full.model[z] - 11;
  EXPECT_NE(ne, 0);
}

TEST(SymSolver, ConstantConstraints) {
  {
    System s;
    s.add({{}, 1, Rel::Eq});  // 1 == 0
    EXPECT_EQ(solve(s).status, SolveStatus::Unsat);
  }
  {
    System s;
    s.add({{}, 0, Rel::Eq});
    s.add({{}, -5, Rel::Le});
    EXPECT_EQ(solve(s).status, SolveStatus::Sat);
  }
  {
    System s;
    s.add({{}, 0, Rel::Ne});
    EXPECT_EQ(solve(s).status, SolveStatus::Unsat);
  }
}

TEST(SymSolver, RendersSystem) {
  System s;
  unsigned x = s.addVar("x", 0, 7);
  s.add({{{x, 2}}, -3, Rel::Le});
  EXPECT_NE(s.str().find("x"), std::string::npos);
}

// ---------------------------------------------------------------------
// Exhaustive small-domain model-check.
// ---------------------------------------------------------------------

// Deterministic xorshift so the ~200 systems are reproducible.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  std::int64_t range(std::int64_t lo, std::int64_t hi) {  // inclusive
    return lo + static_cast<std::int64_t>(next() %
                                          static_cast<std::uint64_t>(
                                              hi - lo + 1));
  }
};

/// Brute-force: enumerate every assignment over the variable boxes.
bool bruteForceSat(const System& s) {
  const unsigned n = s.numVars();
  std::vector<std::int64_t> v(n);
  std::vector<std::int64_t> lo(n), hi(n);
  for (unsigned i = 0; i < n; ++i) {
    lo[i] = s.lo(i);
    hi[i] = s.hi(i);
  }
  std::uint64_t total = 1;
  for (unsigned i = 0; i < n; ++i)
    total *= static_cast<std::uint64_t>(hi[i] - lo[i] + 1);
  for (std::uint64_t it = 0; it < total; ++it) {
    std::uint64_t rest = it;
    for (unsigned i = 0; i < n; ++i) {
      const auto extent = static_cast<std::uint64_t>(hi[i] - lo[i] + 1);
      v[i] = lo[i] + static_cast<std::int64_t>(rest % extent);
      rest /= extent;
    }
    bool ok = true;
    for (const Constraint& c : s.constraints()) {
      std::int64_t sum = c.constant;
      for (const LinTerm& t : c.terms) sum += t.coeff * v[t.var];
      switch (c.rel) {
        case Rel::Eq: ok = sum == 0; break;
        case Rel::Le: ok = sum <= 0; break;
        case Rel::Ne: ok = sum != 0; break;
      }
      if (!ok) break;
    }
    if (ok) return true;
  }
  return false;
}

bool satisfies(const System& s, const std::vector<std::int64_t>& model) {
  for (const Constraint& c : s.constraints()) {
    std::int64_t sum = c.constant;
    for (const LinTerm& t : c.terms) sum += t.coeff * model[t.var];
    switch (c.rel) {
      case Rel::Eq:
        if (sum != 0) return false;
        break;
      case Rel::Le:
        if (sum > 0) return false;
        break;
      case Rel::Ne:
        if (sum == 0) return false;
        break;
    }
  }
  for (unsigned i = 0; i < s.numVars(); ++i) {
    if (s.hasLo(i) && model[i] < s.lo(i)) return false;
    if (s.hasHi(i) && model[i] > s.hi(i)) return false;
  }
  return true;
}

TEST(SymSolver, ModelCheck200RandomAffineSystems) {
  Rng rng{0x9e3779b97f4a7c15ull};
  unsigned sat = 0, unsat = 0, unknown = 0;
  for (int sys = 0; sys < 200; ++sys) {
    System s;
    // Work-item-shaped boxes: ids < 8, trips < 4 (the issue's exhaustive
    // domain), occasionally a tiny extra unknown.
    const unsigned numIds = static_cast<unsigned>(rng.range(2, 4));
    const unsigned numTrips = static_cast<unsigned>(rng.range(0, 2));
    std::vector<unsigned> vars;
    for (unsigned i = 0; i < numIds; ++i)
      vars.push_back(s.addVar("id" + std::to_string(i), 0, 7));
    for (unsigned i = 0; i < numTrips; ++i)
      vars.push_back(s.addVar("t" + std::to_string(i), 0, 3));
    const unsigned numCons = static_cast<unsigned>(rng.range(1, 5));
    for (unsigned c = 0; c < numCons; ++c) {
      Constraint con;
      const unsigned width = static_cast<unsigned>(
          rng.range(1, static_cast<std::int64_t>(vars.size())));
      for (unsigned t = 0; t < width; ++t) {
        std::int64_t coeff = rng.range(-8, 8);
        if (coeff == 0) coeff = 1;
        con.terms.push_back(
            {vars[static_cast<std::size_t>(
                 rng.range(0, static_cast<std::int64_t>(vars.size()) - 1))],
             coeff});
      }
      con.constant = rng.range(-20, 20);
      const std::int64_t kind = rng.range(0, 5);
      con.rel = kind <= 2 ? Rel::Eq : kind <= 4 ? Rel::Le : Rel::Ne;
      s.add(std::move(con));
    }

    const bool truth = bruteForceSat(s);
    SolveResult r = solve(s);
    switch (r.status) {
      case SolveStatus::Sat:
        ++sat;
        ASSERT_TRUE(truth) << "solver Sat, brute force Unsat:\n" << s.str();
        ASSERT_TRUE(satisfies(s, r.model))
            << "model does not satisfy:\n" << s.str();
        break;
      case SolveStatus::Unsat:
        ++unsat;
        ASSERT_FALSE(truth) << "solver Unsat, brute force Sat:\n" << s.str();
        break;
      case SolveStatus::Unknown:
        ++unknown;
        break;
    }
  }
  // Fully bounded tiny systems must essentially always be decided.
  EXPECT_EQ(unknown, 0u) << "sat=" << sat << " unsat=" << unsat;
  EXPECT_GT(sat, 20u);
  EXPECT_GT(unsat, 20u);
}

/// Mixed bounded/unbounded sweep: verdicts must stay *consistent* with
/// brute force over the bounded projection — Unsat may not contradict a
/// bounded witness, and Sat models must satisfy the full system.
TEST(SymSolver, ModelCheckWithUnboundedTripCounts) {
  Rng rng{0xc0ffee1234567ull};
  unsigned decided = 0;
  for (int sys = 0; sys < 60; ++sys) {
    System s;
    unsigned xi = s.addVar("lx_i", 0, 7);
    unsigned xj = s.addVar("lx_j", 0, 7);
    unsigned ti = s.addVar("t_i", 0, 3);
    unsigned tj = s.addVar("t_j", 0, 3);
    unsigned T = s.addVar("T");  // unbounded trip count
    s.add({{{T, -1}}, 0, Rel::Le});
    s.add({{{ti, 1}, {T, -1}}, 1, Rel::Le});
    s.add({{{tj, 1}, {T, -1}}, 1, Rel::Le});
    Constraint idx;
    idx.terms = {{xi, rng.range(1, 4)},
                 {ti, rng.range(-4, 4)},
                 {xj, -rng.range(1, 4)},
                 {tj, rng.range(-4, 4)}};
    idx.constant = rng.range(-6, 6);
    idx.rel = Rel::Eq;
    s.add(idx);
    s.add({{{xi, 1}, {xj, -1}}, 1, Rel::Le});  // i != j, one direction

    SolveResult r = solve(s);
    if (r.status == SolveStatus::Sat) {
      ++decided;
      ASSERT_TRUE(satisfies(s, r.model)) << s.str();
    } else if (r.status == SolveStatus::Unsat) {
      ++decided;
      // Cross-check against brute force with T boxed to [0, 8]: if the
      // solver says Unsat, no bounded witness may exist either.
      System boxed;
      unsigned bxi = boxed.addVar("lx_i", 0, 7);
      unsigned bxj = boxed.addVar("lx_j", 0, 7);
      unsigned bti = boxed.addVar("t_i", 0, 3);
      unsigned btj = boxed.addVar("t_j", 0, 3);
      unsigned bT = boxed.addVar("T", 0, 8);
      for (const Constraint& c : s.constraints()) {
        Constraint cc = c;
        for (LinTerm& t : cc.terms)
          t.var = t.var == xi   ? bxi
                  : t.var == xj ? bxj
                  : t.var == ti ? bti
                  : t.var == tj ? btj
                                : bT;
        boxed.add(std::move(cc));
      }
      ASSERT_FALSE(bruteForceSat(boxed))
          << "Unsat contradicted by bounded witness:\n" << s.str();
    }
  }
  EXPECT_GT(decided, 40u);
}

}  // namespace
}  // namespace grover::sym
