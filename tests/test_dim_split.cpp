// Dimension splitting: stride inference and per-dimension index recovery.
#include "grover/dim_split.h"

#include <gtest/gtest.h>

namespace grover::grv {
namespace {

LinearDecomp make(std::initializer_list<std::pair<unsigned, std::int64_t>>
                      localIdCoeffs,
                  std::int64_t constant = 0) {
  LinearDecomp d;
  for (const auto& [dim, coeff] : localIdCoeffs) {
    d.addTerm(AtomKey::localId(dim), Rational(coeff));
  }
  d.setConstant(Rational(constant));
  return d;
}

TEST(DimSplit, StridesFromDims) {
  EXPECT_EQ(stridesFromDims({16, 16}), (std::vector<std::int64_t>{16, 1}));
  EXPECT_EQ(stridesFromDims({4, 8, 2}), (std::vector<std::int64_t>{16, 2, 1}));
  EXPECT_TRUE(stridesFromDims({256}).empty());
  EXPECT_TRUE(stridesFromDims({}).empty());
}

TEST(DimSplit, InferFrom2DIndex) {
  // 16*ly + lx → strides [16, 1].
  auto strides = inferStrides(make({{1, 16}, {0, 1}}));
  ASSERT_TRUE(strides.has_value());
  EXPECT_EQ(*strides, (std::vector<std::int64_t>{16, 1}));
}

TEST(DimSplit, InferFrom1DIndex) {
  auto strides = inferStrides(make({{0, 1}}));
  ASSERT_TRUE(strides.has_value());
  EXPECT_EQ(*strides, (std::vector<std::int64_t>{1}));
}

TEST(DimSplit, InferWithNoLocalIdIsOneDimension) {
  auto strides = inferStrides(make({}));
  ASSERT_TRUE(strides.has_value());
  EXPECT_EQ(*strides, (std::vector<std::int64_t>{1}));
}

TEST(DimSplit, InferRejectsNonDividingStrides) {
  // Coeffs 6 and 4: 6 % 4 != 0 → not a row-major layout.
  EXPECT_FALSE(inferStrides(make({{1, 6}, {0, 4}})).has_value());
}

TEST(DimSplit, SplitRoundTrips2D) {
  // 16*ly + lx with strides [16,1] → dims (ly, lx).
  auto dims = splitByStrides(make({{1, 16}, {0, 1}}), {16, 1});
  ASSERT_TRUE(dims.has_value());
  ASSERT_EQ(dims->size(), 2u);
  EXPECT_EQ((*dims)[0].localIdCoeff(1), Rational(1));
  EXPECT_EQ((*dims)[0].localIdCoeff(0), Rational(0));
  EXPECT_EQ((*dims)[1].localIdCoeff(0), Rational(1));
}

TEST(DimSplit, ConstantSplitsEuclidean) {
  // flat = 16*ly + lx + 35 → dim0 += 2, dim1 += 3.
  auto dims = splitByStrides(make({{1, 16}, {0, 1}}, 35), {16, 1});
  ASSERT_TRUE(dims.has_value());
  EXPECT_EQ((*dims)[0].constant(), Rational(2));
  EXPECT_EQ((*dims)[1].constant(), Rational(3));
}

TEST(DimSplit, NegativeConstantStaysEuclidean) {
  // flat = 16*ly - 1 → dim0 -= 1, dim1 += 15 (remainder must be ≥ 0).
  auto dims = splitByStrides(make({{1, 16}}, -1), {16, 1});
  ASSERT_TRUE(dims.has_value());
  EXPECT_EQ((*dims)[0].constant(), Rational(-1));
  EXPECT_EQ((*dims)[1].constant(), Rational(15));
}

TEST(DimSplit, CoefficientMultipleOfStrideScales) {
  // 32*ly with strides [8,1] → dim0 coeff 4 (4 rows per ly step).
  auto dims = splitByStrides(make({{1, 32}}), {8, 1});
  ASSERT_TRUE(dims.has_value());
  EXPECT_EQ((*dims)[0].localIdCoeff(1), Rational(4));
}

TEST(DimSplit, ThreeDimensions) {
  // flat = 64*lz + 8*ly + lx with strides [64, 8, 1].
  auto dims = splitByStrides(make({{2, 64}, {1, 8}, {0, 1}}), {64, 8, 1});
  ASSERT_TRUE(dims.has_value());
  ASSERT_EQ(dims->size(), 3u);
  EXPECT_EQ((*dims)[0].localIdCoeff(2), Rational(1));
  EXPECT_EQ((*dims)[1].localIdCoeff(1), Rational(1));
  EXPECT_EQ((*dims)[2].localIdCoeff(0), Rational(1));
}

TEST(DimSplit, NonIntegerCoefficientFails) {
  LinearDecomp d;
  d.addTerm(AtomKey::localId(0), Rational(1, 2));
  EXPECT_FALSE(splitByStrides(d, {16, 1}).has_value());
}

// Property: splitting and re-flattening is the identity on the decomp.
class DimSplitProperty : public ::testing::TestWithParam<int> {};

TEST_P(DimSplitProperty, SplitThenFlattenRoundTrips) {
  const int seed = GetParam();
  std::uint64_t state = static_cast<std::uint64_t>(seed) * 9973 + 7;
  auto next = [&state](std::int64_t lo, std::int64_t hi) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return lo + static_cast<std::int64_t>((state >> 33) %
                                          static_cast<std::uint64_t>(hi - lo));
  };
  for (int iter = 0; iter < 40; ++iter) {
    const std::int64_t stride = 1 << next(2, 6);  // 4..32
    LinearDecomp flat = make({{0, next(0, 2) * stride ? stride : 1}}, 0);
    flat = LinearDecomp{};
    // Random flat index: a*stride*ly + b*lx + c with a,b small.
    const std::int64_t a = next(1, 4);
    const std::int64_t b = next(1, 2);
    const std::int64_t c = next(-20, 20);
    flat.addTerm(AtomKey::localId(1), Rational(a * stride));
    flat.addTerm(AtomKey::localId(0), Rational(b));
    flat.setConstant(Rational(c));
    auto dims = splitByStrides(flat, {stride, 1});
    ASSERT_TRUE(dims.has_value());
    // Re-flatten: dim0*stride + dim1 must equal the original.
    LinearDecomp reflat = (*dims)[0];
    reflat.scale(Rational(stride));
    reflat += (*dims)[1];
    EXPECT_EQ(reflat, flat);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DimSplitProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace grover::grv
