// The auto-tuning harness (the paper's proposed use of Grover).
#include "grovercl/harness.h"

#include <gtest/gtest.h>

#include "apps/app.h"

namespace grover {
namespace {

TEST(Harness, PrepareKernelPairKeepsOriginalIntact) {
  const auto& app = apps::applicationById("NVD-MT");
  KernelPair pair = prepareKernelPair(app);
  // The original still uses local memory; the transformed copy does not.
  EXPECT_GT(pair.originalKernel->instructionCount(), 0u);
  EXPECT_TRUE(pair.groverResult.anyTransformed);
  EXPECT_NE(pair.originalKernel, pair.transformedKernel);
}

TEST(Harness, ComparePerformanceProducesConsistentRatio) {
  const auto& app = apps::applicationById("NVD-MT");
  PerfComparison cmp =
      comparePerformance(app, perf::snb(), apps::Scale::Test);
  EXPECT_GT(cmp.cyclesWithLM, 0);
  EXPECT_GT(cmp.cyclesWithoutLM, 0);
  EXPECT_DOUBLE_EQ(cmp.normalized, cmp.cyclesWithLM / cmp.cyclesWithoutLM);
  EXPECT_EQ(cmp.outcome, perf::classify(cmp.normalized));
}

TEST(Harness, AutotunePicksTheFasterVersion) {
  const auto& app = apps::applicationById("NVD-MT");
  // On the GPU models the staged (with-LM) transpose wins; on SNB the
  // Grover version wins — the paper's headline observation.
  EXPECT_EQ(autotune(app, perf::fermi(), apps::Scale::Test),
            "with-local-memory");
  EXPECT_EQ(autotune(app, perf::snb(), apps::Scale::Test),
            "without-local-memory");
}

TEST(Harness, EstimatesAreDeterministic) {
  const auto& app = apps::applicationById("AMD-RG");
  PerfComparison a = comparePerformance(app, perf::nehalem(), apps::Scale::Test);
  PerfComparison b = comparePerformance(app, perf::nehalem(), apps::Scale::Test);
  EXPECT_DOUBLE_EQ(a.cyclesWithLM, b.cyclesWithLM);
  EXPECT_DOUBLE_EQ(a.cyclesWithoutLM, b.cyclesWithoutLM);
}

}  // namespace
}  // namespace grover
