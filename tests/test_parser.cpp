// Parser: declarations, statements, expression precedence, error recovery.
#include "clc/parser.h"

#include <gtest/gtest.h>

#include "clc/lexer.h"

namespace grover::clc {
namespace {

std::unique_ptr<TranslationUnit> parse(const std::string& src,
                                       bool expectOk = true) {
  DiagnosticEngine diags;
  Lexer lexer(src, diags);
  Parser parser(lexer.tokens(), diags);
  auto tu = parser.parse();
  if (expectOk) {
    EXPECT_FALSE(diags.hasErrors()) << diags.str();
  } else {
    EXPECT_TRUE(diags.hasErrors());
  }
  return tu;
}

TEST(Parser, EmptyKernel) {
  auto tu = parse("__kernel void k() {}");
  ASSERT_EQ(tu->kernels.size(), 1u);
  EXPECT_EQ(tu->kernels[0]->name, "k");
  EXPECT_TRUE(tu->kernels[0]->isKernel);
  EXPECT_TRUE(tu->kernels[0]->params.empty());
}

TEST(Parser, Parameters) {
  auto tu = parse(
      "__kernel void k(__global float* out, __local int* l, const int n, "
      "float4 v) {}");
  const auto& params = tu->kernels[0]->params;
  ASSERT_EQ(params.size(), 4u);
  EXPECT_TRUE(params[0].spec.isPointer);
  EXPECT_EQ(params[0].spec.space, ir::AddrSpace::Global);
  EXPECT_EQ(params[1].spec.space, ir::AddrSpace::Local);
  EXPECT_TRUE(params[2].spec.isConst);
  EXPECT_FALSE(params[2].spec.isPointer);
  EXPECT_EQ(params[3].spec.vecLanes, 4u);
}

TEST(Parser, LocalArrayDeclaration) {
  auto tu = parse("__kernel void k() { __local float lm[16][8]; }");
  const auto& body = tu->kernels[0]->body->stmts;
  ASSERT_EQ(body.size(), 1u);
  const auto& decl = static_cast<const DeclStmt&>(*body[0]);
  EXPECT_EQ(decl.spec.space, ir::AddrSpace::Local);
  EXPECT_EQ(decl.arrayDims.size(), 2u);
}

TEST(Parser, ExpressionPrecedence) {
  // a + b * c parses as a + (b*c).
  auto tu = parse("__kernel void k(int a, int b, int c) { int x = a + b * c; }");
  const auto& decl =
      static_cast<const DeclStmt&>(*tu->kernels[0]->body->stmts[0]);
  const auto& add = static_cast<const BinaryExpr&>(*decl.init);
  EXPECT_EQ(add.op, BinOp::Add);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*add.rhs).op, BinOp::Mul);
}

TEST(Parser, ShiftBindsLooserThanAdd) {
  auto tu = parse("__kernel void k(int a) { int x = a + 1 << 2; }");
  const auto& decl =
      static_cast<const DeclStmt&>(*tu->kernels[0]->body->stmts[0]);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*decl.init).op, BinOp::Shl);
}

TEST(Parser, ConditionalExpression) {
  auto tu = parse("__kernel void k(int a) { int x = a > 0 ? a : 0 - a; }");
  const auto& decl =
      static_cast<const DeclStmt&>(*tu->kernels[0]->body->stmts[0]);
  EXPECT_EQ(decl.init->kind, ExprKind::Conditional);
}

TEST(Parser, ChainedIndexAndMember) {
  auto tu = parse(
      "__kernel void k(__global float4* p) { float v = p[1].x; }");
  const auto& decl =
      static_cast<const DeclStmt&>(*tu->kernels[0]->body->stmts[0]);
  EXPECT_EQ(decl.init->kind, ExprKind::Member);
}

TEST(Parser, VectorLiteral) {
  auto tu = parse(
      "__kernel void k(float a) { float4 v = (float4)(a, a, a, 1.0f); }");
  const auto& decl =
      static_cast<const DeclStmt&>(*tu->kernels[0]->body->stmts[0]);
  ASSERT_EQ(decl.init->kind, ExprKind::VectorLit);
  EXPECT_EQ(static_cast<const VectorLitExpr&>(*decl.init).elems.size(), 4u);
}

TEST(Parser, CastVsParenExpr) {
  auto tu = parse("__kernel void k(int a) { float f = (float)a * 2.0f; }");
  const auto& decl =
      static_cast<const DeclStmt&>(*tu->kernels[0]->body->stmts[0]);
  // (float)a * 2.0f parses as ((float)a) * 2.0f
  EXPECT_EQ(decl.init->kind, ExprKind::Binary);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*decl.init).lhs->kind,
            ExprKind::Cast);
}

TEST(Parser, ForLoop) {
  auto tu = parse(
      "__kernel void k(int n) { for (int i = 0; i < n; ++i) { } }");
  const auto& loop =
      static_cast<const ForStmt&>(*tu->kernels[0]->body->stmts[0]);
  EXPECT_NE(loop.init, nullptr);
  EXPECT_NE(loop.cond, nullptr);
  EXPECT_NE(loop.step, nullptr);
  EXPECT_EQ(loop.step->kind, StmtKind::IncDec);
}

TEST(Parser, ForWithCompoundStep) {
  auto tu = parse(
      "__kernel void k(int n) { for (int i = 0; i < n; i += 4) { } }");
  const auto& loop =
      static_cast<const ForStmt&>(*tu->kernels[0]->body->stmts[0]);
  EXPECT_EQ(loop.step->kind, StmtKind::Assign);
}

TEST(Parser, WhileAndBreakContinue) {
  auto tu = parse(
      "__kernel void k(int n) { while (n > 0) { if (n == 3) break; "
      "if (n == 5) continue; n = n - 1; } }");
  EXPECT_EQ(tu->kernels[0]->body->stmts[0]->kind, StmtKind::While);
}

TEST(Parser, DoWhile) {
  auto tu = parse(
      "__kernel void k(int n) { do { n = n - 1; } while (n > 0); }");
  const auto& dw =
      static_cast<const DoWhileStmt&>(*tu->kernels[0]->body->stmts[0]);
  EXPECT_EQ(dw.kind, StmtKind::DoWhile);
  EXPECT_NE(dw.body, nullptr);
  EXPECT_NE(dw.cond, nullptr);
}

TEST(Parser, DoWhileRequiresSemicolon) {
  parse("__kernel void k(int n) { do { } while (n > 0) }", false);
}

TEST(Parser, IfElseChain) {
  auto tu = parse(
      "__kernel void k(int a, __global int* o) { if (a > 0) o[0] = 1; "
      "else if (a < 0) o[0] = 2; else o[0] = 3; }");
  const auto& ifs =
      static_cast<const IfStmt&>(*tu->kernels[0]->body->stmts[0]);
  ASSERT_NE(ifs.elseBody, nullptr);
  EXPECT_EQ(ifs.elseBody->kind, StmtKind::If);
}

TEST(Parser, CompoundAssignments) {
  auto tu = parse(
      "__kernel void k(__global float* o) { o[0] += 1.0f; o[1] -= 2.0f; "
      "o[2] *= 3.0f; o[3] /= 4.0f; }");
  for (const auto& stmt : tu->kernels[0]->body->stmts) {
    EXPECT_EQ(stmt->kind, StmtKind::Assign);
  }
}

TEST(Parser, PostIncrementStatement) {
  auto tu = parse("__kernel void k() { int i = 0; i++; --i; }");
  EXPECT_EQ(tu->kernels[0]->body->stmts[1]->kind, StmtKind::IncDec);
  EXPECT_EQ(tu->kernels[0]->body->stmts[2]->kind, StmtKind::IncDec);
}

TEST(Parser, MultipleDeclaratorsRejected) {
  parse("__kernel void k() { int a, b; }", false);
}

TEST(Parser, MissingSemicolonIsError) {
  parse("__kernel void k() { int a = 1 }", false);
}

TEST(Parser, RecoversToNextKernel) {
  auto tu = parse("__kernel void broken( { } __kernel void ok() {}", false);
  // The second kernel still parses after recovery.
  ASSERT_GE(tu->kernels.size(), 1u);
  EXPECT_EQ(tu->kernels.back()->name, "ok");
}

TEST(Parser, BarrierCallStatement) {
  auto tu = parse("__kernel void k() { barrier(CLK_LOCAL_MEM_FENCE); }");
  EXPECT_EQ(tu->kernels[0]->body->stmts[0]->kind, StmtKind::ExprStmt);
}

TEST(Parser, TwoKernelsInOneUnit) {
  auto tu = parse("__kernel void a() {} __kernel void b() {}");
  EXPECT_EQ(tu->kernels.size(), 2u);
}

}  // namespace
}  // namespace grover::clc
