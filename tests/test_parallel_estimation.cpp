// Parallel trace-driven estimation: the decoded interpreter must match the
// reference tree-walking executor event for event, and perf::estimate must
// return bit-identical cycles for every thread count (the determinism
// guarantee of perf/traced_driver.h), on applications covering the
// paper's Table I pattern classes.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "apps/app.h"
#include "grovercl/compiler.h"
#include "grovercl/harness.h"
#include "perf/cpu_model.h"
#include "perf/estimator.h"
#include "perf/gpu_model.h"
#include "perf/platform.h"
#include "rt/interpreter.h"
#include "rt/ref_interpreter.h"

namespace grover {
namespace {

/// Records every trace event for exact stream comparison.
struct RecordingSink final : rt::TraceSink {
  using AccessTuple = std::tuple<int, std::uint64_t, std::uint32_t, bool,
                                 std::uint32_t, std::uint32_t, std::uint32_t>;
  struct Event {
    enum Kind { Access, Barrier, GroupFinish } kind = Access;
    AccessTuple access;
    std::uint32_t group = 0;
    std::uint64_t counterTotal = 0;

    bool operator==(const Event& o) const {
      return kind == o.kind && access == o.access && group == o.group &&
             counterTotal == o.counterTotal;
    }
  };
  std::vector<Event> events;

  void onAccess(const rt::MemAccess& a) override {
    Event e;
    e.kind = Event::Access;
    e.access = {static_cast<int>(a.space), a.address, a.size, a.isWrite,
                a.group, a.workItem, a.instSlot};
    events.push_back(e);
  }
  void onBarrier(std::uint32_t group) override {
    Event e;
    e.kind = Event::Barrier;
    e.group = group;
    events.push_back(e);
  }
  void onGroupFinish(std::uint32_t group,
                     const rt::InstCounters& counters) override {
    Event e;
    e.kind = Event::GroupFinish;
    e.group = group;
    e.counterTotal = counters.total();
    events.push_back(e);
  }
};

/// Apps covering the Table I pattern classes exercised by the estimator:
/// staging transpose, tiled matrix multiply, stencil.
const char* const kApps[] = {"NVD-MT", "NVD-MM-A", "PAB-ST"};

ir::Function* compiledKernel(Program& program, const apps::Application& app) {
  ir::Function* fn = program.kernel(app.kernelName());
  EXPECT_NE(fn, nullptr);
  return fn;
}

TEST(ParallelEstimation, DecodedMatchesReferenceExecutor) {
  for (const char* id : kApps) {
    const apps::Application& app = apps::applicationById(id);

    // Reference: tree-walking executor pushing straight into the sink.
    Program refProgram = compile(app.source());
    apps::Instance refInstance = app.makeInstance(apps::Scale::Test);
    rt::Launch refLaunch(*compiledKernel(refProgram, app), refInstance.range,
                         refInstance.args);
    RecordingSink refSink;
    rt::ReferenceExecutor refExec(refLaunch.image(), &refSink);
    for (const auto& g : refLaunch.sampledGroups()) refExec.runGroup(g);
    std::string message;
    EXPECT_TRUE(refInstance.validate(message)) << id << ": " << message;

    // Decoded: parallel traced launch replaying buffered GroupTraces.
    Program decProgram = compile(app.source());
    apps::Instance decInstance = app.makeInstance(apps::Scale::Test);
    rt::Launch decLaunch(*compiledKernel(decProgram, app), decInstance.range,
                         decInstance.args);
    RecordingSink decSink;
    decLaunch.setTraceSink(&decSink);
    const rt::InstCounters counters = decLaunch.run(4);
    EXPECT_TRUE(decInstance.validate(message)) << id << ": " << message;

    EXPECT_EQ(counters.total(), refExec.totalCounters().total()) << id;
    ASSERT_EQ(decSink.events.size(), refSink.events.size()) << id;
    EXPECT_TRUE(decSink.events == refSink.events)
        << id << ": trace event streams diverge";
  }
}

TEST(ParallelEstimation, CyclesBitIdenticalAcrossThreadCounts) {
  const perf::PlatformSpec platforms[] = {perf::snb(), perf::mic(),
                                          perf::fermi()};
  for (const char* id : kApps) {
    const apps::Application& app = apps::applicationById(id);
    Program program = compile(app.source());
    ir::Function* kernel = compiledKernel(program, app);
    for (const perf::PlatformSpec& platform : platforms) {
      apps::Instance a = app.makeInstance(apps::Scale::Test);
      const perf::PerfEstimate serial =
          perf::estimate(platform, *kernel, a.range, a.args, 1, 1);
      apps::Instance b = app.makeInstance(apps::Scale::Test);
      const perf::PerfEstimate parallel =
          perf::estimate(platform, *kernel, b.range, b.args, 1, 8);
      EXPECT_EQ(serial.cycles, parallel.cycles)
          << id << " on " << platform.name;
      EXPECT_EQ(serial.memoryCycles, parallel.memoryCycles)
          << id << " on " << platform.name;
      EXPECT_EQ(serial.transactions, parallel.transactions)
          << id << " on " << platform.name;
      EXPECT_EQ(serial.spmCycles, parallel.spmCycles)
          << id << " on " << platform.name;
      EXPECT_EQ(serial.counters.total(), parallel.counters.total())
          << id << " on " << platform.name;
    }
  }
}

TEST(ParallelEstimation, DigestPipelineMatchesSerialSinkPath) {
  const perf::PlatformSpec platforms[] = {perf::snb(), perf::mic(),
                                          perf::fermi()};
  for (const char* id : kApps) {
    const apps::Application& app = apps::applicationById(id);
    Program program = compile(app.source());
    ir::Function* kernel = compiledKernel(program, app);
    for (const perf::PlatformSpec& platform : platforms) {
      // Old-style serial path: reference executor pushing into the model.
      double sinkCycles = 0;
      {
        apps::Instance instance = app.makeInstance(apps::Scale::Test);
        rt::Launch launch(*kernel, instance.range, instance.args);
        if (platform.kind == perf::PlatformKind::CpuCacheOnly) {
          perf::CpuModel model(platform);
          rt::ReferenceExecutor exec(launch.image(), &model);
          for (const auto& g : launch.sampledGroups()) exec.runGroup(g);
          sinkCycles = model.totalCycles();
        } else {
          perf::GpuModel model(platform);
          rt::ReferenceExecutor exec(launch.image(), &model);
          for (const auto& g : launch.sampledGroups()) exec.runGroup(g);
          sinkCycles = model.totalCycles();
        }
      }
      apps::Instance instance = app.makeInstance(apps::Scale::Test);
      const perf::PerfEstimate est =
          perf::estimate(platform, *kernel, instance.range, instance.args,
                         1, 8);
      EXPECT_EQ(est.cycles, sinkCycles) << id << " on " << platform.name;
    }
  }
}

}  // namespace
}  // namespace grover
