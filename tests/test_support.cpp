// String helpers, diagnostics, thread pool.
#include <gtest/gtest.h>

#include <atomic>

#include "support/diagnostics.h"
#include "support/str.h"
#include "support/thread_pool.h"

namespace grover {
namespace {

TEST(Str, Cat) { EXPECT_EQ(cat("a", 1, "b", 2.5), "a1b2.5"); }

TEST(Str, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Str, Fixed) {
  EXPECT_EQ(fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fixed(2.0, 3), "2.000");
}

TEST(Str, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcdef", 4), "abcdef");
}

TEST(Diagnostics, CollectsAndCounts) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.hasErrors());
  diags.warning({1, 2}, "w");
  EXPECT_FALSE(diags.hasErrors());
  diags.error({3, 4}, "e");
  EXPECT_TRUE(diags.hasErrors());
  EXPECT_EQ(diags.errorCount(), 1u);
  EXPECT_EQ(diags.all().size(), 2u);
  EXPECT_NE(diags.str().find("3:4: error: e"), std::string::npos);
  diags.clear();
  EXPECT_FALSE(diags.hasErrors());
  EXPECT_TRUE(diags.all().empty());
}

TEST(Diagnostics, NoLocRendersWithoutPosition) {
  DiagnosticEngine diags;
  diags.error("standalone");
  EXPECT_EQ(diags.all()[0].str(), "error: standalone");
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.waitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.waitIdle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.waitIdle();
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.waitIdle();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace grover
