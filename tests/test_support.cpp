// String helpers, diagnostics, thread pool.
#include <gtest/gtest.h>

#include <atomic>

#include "support/diagnostics.h"
#include "support/hash.h"
#include "support/str.h"
#include "support/thread_pool.h"

namespace grover {
namespace {

TEST(Str, Cat) { EXPECT_EQ(cat("a", 1, "b", 2.5), "a1b2.5"); }

TEST(Str, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Str, Fixed) {
  EXPECT_EQ(fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fixed(2.0, 3), "2.000");
}

TEST(Str, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcdef", 4), "abcdef");
}

TEST(Hash, StableAcrossRuns) {
  // Pinned digests: the on-disk artifact cache depends on these values
  // never changing across builds or hosts.
  EXPECT_EQ(fnv1a(""), 0xa8c7f832281a39c5ull);
  EXPECT_EQ(fnv1a("grover"), fnv1a("grover"));
  EXPECT_NE(fnv1a("grover"), fnv1a("grover "));
}

TEST(Hash, LengthPrefixingPreventsConcatenationCollisions) {
  Fnv1a a;
  a.update(std::string_view("ab"));
  a.update(std::string_view("c"));
  Fnv1a b;
  b.update(std::string_view("a"));
  b.update(std::string_view("bc"));
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Hash, Hex64) {
  EXPECT_EQ(toHex64(0), "0000000000000000");
  EXPECT_EQ(toHex64(0xdeadbeefull), "00000000deadbeef");
  EXPECT_EQ(toHex64(~0ull), "ffffffffffffffff");
}

TEST(Diagnostics, CollectsAndCounts) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.hasErrors());
  diags.warning({1, 2}, "w");
  EXPECT_FALSE(diags.hasErrors());
  diags.error({3, 4}, "e");
  EXPECT_TRUE(diags.hasErrors());
  EXPECT_EQ(diags.errorCount(), 1u);
  EXPECT_EQ(diags.all().size(), 2u);
  EXPECT_NE(diags.str().find("3:4: error: e"), std::string::npos);
  diags.clear();
  EXPECT_FALSE(diags.hasErrors());
  EXPECT_TRUE(diags.all().empty());
}

TEST(Diagnostics, NoLocRendersWithoutPosition) {
  DiagnosticEngine diags;
  diags.error("standalone");
  EXPECT_EQ(diags.all()[0].str(), "error: standalone");
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.waitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.waitIdle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.waitIdle();
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.waitIdle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, PropagatesTaskExceptionFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw GroverError("worker failed"); });
  EXPECT_THROW(
      {
        try {
          pool.waitIdle();
        } catch (const GroverError& e) {
          EXPECT_STREQ(e.what(), "worker failed");
          throw;
        }
      },
      GroverError);
}

TEST(ThreadPool, RemainingTasksStillRunAfterException) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([] { throw GroverError("boom"); });
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_THROW(pool.waitIdle(), GroverError);
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, UsableAfterExceptionWasRethrown) {
  ThreadPool pool(2);
  pool.submit([] { throw GroverError("first"); });
  EXPECT_THROW(pool.waitIdle(), GroverError);
  // The exception was observed; the pool must be clean again.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.waitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, OnlyFirstExceptionIsKept) {
  ThreadPool pool(1);  // one worker → deterministic task order
  pool.submit([] { throw GroverError("first"); });
  pool.submit([] { throw GroverError("second"); });
  try {
    pool.waitIdle();
    FAIL() << "expected an exception";
  } catch (const GroverError& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  pool.waitIdle();  // second exception was dropped, not deferred
}

}  // namespace
}  // namespace grover
