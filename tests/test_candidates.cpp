// Candidate selection (paper §IV-A): GL→LS pairing, LL discovery,
// refusals for non-staging usage.
#include "grover/candidates.h"

#include <gtest/gtest.h>

#include "grovercl/compiler.h"
#include "ir/casting.h"

namespace grover::grv {
namespace {

std::vector<CandidateBuffer> candidatesOf(Program& program,
                                          const std::string& src) {
  program = compile(src);
  return findCandidates(*program.module->kernels().at(0));
}

TEST(Candidates, RecognizesStagingPattern) {
  Program p;
  auto cands = candidatesOf(p, R"(
__kernel void k(__global float* in, __global float* out) {
  __local float lm[64];
  int lx = get_local_id(0);
  lm[lx] = in[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = lm[63 - lx];
})");
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_TRUE(cands[0].patternOK);
  EXPECT_EQ(cands[0].pairs.size(), 1u);
  EXPECT_EQ(cands[0].localLoads.size(), 1u);
  EXPECT_EQ(cands[0].buffer->name(), "lm");
  EXPECT_NE(cands[0].pairs[0].gl, nullptr);
  EXPECT_EQ(cands[0].pairs[0].gl->space(), ir::AddrSpace::Global);
}

TEST(Candidates, MultiPassStagingYieldsMultiplePairs) {
  Program p;
  auto cands = candidatesOf(p, R"(
__kernel void k(__global float* in, __global float* out) {
  __local float lm[128];
  int lx = get_local_id(0);
  lm[lx] = in[get_global_id(0)];
  lm[lx + 64] = in[get_global_id(0) + 64];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = lm[lx] + lm[lx + 64];
})");
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_TRUE(cands[0].patternOK);
  EXPECT_EQ(cands[0].pairs.size(), 2u);
  EXPECT_EQ(cands[0].localLoads.size(), 2u);
}

TEST(Candidates, RefusesComputedStores) {
  // Reduction-style temporal storage (paper §VI-D limitation).
  Program p;
  auto cands = candidatesOf(p, R"(
__kernel void k(__global float* in, __global float* out) {
  __local float lm[64];
  int lx = get_local_id(0);
  lm[lx] = in[lx] * 2.0f;   // computed, not a staged copy
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = lm[lx];
})");
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_FALSE(cands[0].patternOK);
  EXPECT_NE(cands[0].reason.find("staging"), std::string::npos);
}

TEST(Candidates, RefusesLocalToLocalCopies) {
  Program p;
  auto cands = candidatesOf(p, R"(
__kernel void k(__global float* in, __global float* out) {
  __local float a[64];
  __local float b[64];
  int lx = get_local_id(0);
  a[lx] = in[lx];
  barrier(CLK_LOCAL_MEM_FENCE);
  b[lx] = a[lx];            // b is fed from local memory, not global
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = b[lx];
})");
  ASSERT_EQ(cands.size(), 2u);
  const auto& a = cands[0].buffer->name() == "a" ? cands[0] : cands[1];
  const auto& b = cands[0].buffer->name() == "b" ? cands[0] : cands[1];
  EXPECT_TRUE(a.patternOK);
  EXPECT_FALSE(b.patternOK);
}

TEST(Candidates, StoreWithoutLoadsIsStillACandidate) {
  Program p;
  auto cands = candidatesOf(p, R"(
__kernel void k(__global float* in, __global float* out) {
  __local float lm[64];
  int lx = get_local_id(0);
  lm[lx] = in[lx];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = in[lx];
})");
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_TRUE(cands[0].patternOK);
  EXPECT_TRUE(cands[0].localLoads.empty());
}

TEST(Candidates, CastedStagedValueStillPairs) {
  Program p;
  auto cands = candidatesOf(p, R"(
__kernel void k(__global int* in, __global float* out) {
  __local long lm[64];
  int lx = get_local_id(0);
  lm[lx] = (long)in[lx];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = (float)lm[lx];
})");
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_TRUE(cands[0].patternOK) << cands[0].reason;
  EXPECT_EQ(cands[0].pairs.size(), 1u);
}

TEST(Candidates, ConstantSpaceSourceAccepted) {
  Program p;
  auto cands = candidatesOf(p, R"(
__kernel void k(__constant int* pattern, __global int* out) {
  __local int lm[16];
  int lx = get_local_id(0);
  if (lx < 16) lm[lx] = pattern[lx];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = lm[0];
})");
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_TRUE(cands[0].patternOK) << cands[0].reason;
}

TEST(Candidates, NoLocalBuffersNoCandidates) {
  Program p;
  auto cands = candidatesOf(p, R"(
__kernel void k(__global float* out) {
  out[get_global_id(0)] = 1.0f;
})");
  EXPECT_TRUE(cands.empty());
}

TEST(Candidates, StripIntCasts) {
  Program p = compile(R"(
__kernel void k(__global int* out) {
  int x = get_global_id(0);
  out[0] = (int)(long)x;
})");
  // stripIntCasts unwraps sext/trunc chains down to the call.
  ir::Function* fn = p.kernel("k");
  for (ir::BasicBlock* bb : fn->blockList()) {
    for (const auto& inst : *bb) {
      if (const auto* store = ir::dyn_cast<ir::StoreInst>(inst.get())) {
        ir::Value* v = stripIntCasts(store->value());
        EXPECT_TRUE(ir::isa<ir::CallInst>(v));
      }
    }
  }
}

}  // namespace
}  // namespace grover::grv
