// IR core: types, constants, use lists, RAUW, builder, cloning.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/casting.h"
#include "ir/context.h"
#include "ir/module.h"
#include "support/diagnostics.h"

namespace grover::ir {
namespace {

class IrTest : public ::testing::Test {
 protected:
  Context ctx;
  Module module{ctx, "test"};
};

TEST_F(IrTest, TypesAreInterned) {
  EXPECT_EQ(ctx.int32Ty(), ctx.int32Ty());
  EXPECT_EQ(ctx.pointerTy(ctx.floatTy(), AddrSpace::Global),
            ctx.pointerTy(ctx.floatTy(), AddrSpace::Global));
  EXPECT_NE(ctx.pointerTy(ctx.floatTy(), AddrSpace::Global),
            ctx.pointerTy(ctx.floatTy(), AddrSpace::Local));
  EXPECT_EQ(ctx.vectorTy(ctx.floatTy(), 4), ctx.vectorTy(ctx.floatTy(), 4));
  EXPECT_NE(ctx.vectorTy(ctx.floatTy(), 4), ctx.vectorTy(ctx.floatTy(), 2));
}

TEST_F(IrTest, TypeSizes) {
  EXPECT_EQ(ctx.boolTy()->sizeInBytes(), 1u);
  EXPECT_EQ(ctx.int32Ty()->sizeInBytes(), 4u);
  EXPECT_EQ(ctx.int64Ty()->sizeInBytes(), 8u);
  EXPECT_EQ(ctx.floatTy()->sizeInBytes(), 4u);
  EXPECT_EQ(ctx.doubleTy()->sizeInBytes(), 8u);
  EXPECT_EQ(ctx.vectorTy(ctx.floatTy(), 4)->sizeInBytes(), 16u);
  EXPECT_EQ(ctx.pointerTy(ctx.floatTy(), AddrSpace::Global)->sizeInBytes(),
            8u);
  EXPECT_THROW(ctx.voidTy()->sizeInBytes(), GroverError);
}

TEST_F(IrTest, TypePredicates) {
  EXPECT_TRUE(ctx.int32Ty()->isInteger());
  EXPECT_TRUE(ctx.boolTy()->isInteger());
  EXPECT_TRUE(ctx.floatTy()->isFloatingPoint());
  EXPECT_TRUE(ctx.vectorTy(ctx.int32Ty(), 4)->isVector());
  EXPECT_FALSE(ctx.vectorTy(ctx.int32Ty(), 4)->isScalarNumber());
  EXPECT_EQ(ctx.vectorTy(ctx.int32Ty(), 4)->element(), ctx.int32Ty());
  EXPECT_EQ(ctx.vectorTy(ctx.int32Ty(), 4)->lanes(), 4u);
}

TEST_F(IrTest, ConstantsAreUniqued) {
  EXPECT_EQ(ctx.getInt32(42), ctx.getInt32(42));
  EXPECT_NE(ctx.getInt32(42), ctx.getInt32(43));
  EXPECT_NE(ctx.getInt32(42), ctx.getInt64(42));
  EXPECT_EQ(ctx.getFloat(1.5F), ctx.getFloat(1.5F));
  EXPECT_EQ(ctx.getUndef(ctx.floatTy()), ctx.getUndef(ctx.floatTy()));
}

TEST_F(IrTest, UseListsTrackOperands) {
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* a = fn->addArgument(ctx.int32Ty(), "a");
  Argument* b = fn->addArgument(ctx.int32Ty(), "b");
  BasicBlock* bb = fn->addBlock("entry");
  IRBuilder builder(ctx);
  builder.setInsertPoint(bb);
  Value* sum = builder.createAdd(a, b);
  EXPECT_EQ(a->uses().size(), 1u);
  EXPECT_EQ(b->uses().size(), 1u);
  Value* twice = builder.createAdd(sum, sum);
  EXPECT_EQ(sum->uses().size(), 2u);
  EXPECT_TRUE(cast<BinaryInst>(twice)->usesValue(sum));
}

TEST_F(IrTest, ReplaceAllUsesWith) {
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* a = fn->addArgument(ctx.int32Ty(), "a");
  Argument* b = fn->addArgument(ctx.int32Ty(), "b");
  BasicBlock* bb = fn->addBlock("entry");
  IRBuilder builder(ctx);
  builder.setInsertPoint(bb);
  Value* add1 = builder.createAdd(a, a);
  Value* add2 = builder.createAdd(add1, a);
  add1->replaceAllUsesWith(b);
  EXPECT_EQ(cast<BinaryInst>(add2)->lhs(), b);
  EXPECT_TRUE(add1->uses().empty());
  EXPECT_EQ(b->uses().size(), 1u);
}

TEST_F(IrTest, EraseRequiresNoUses) {
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* a = fn->addArgument(ctx.int32Ty(), "a");
  BasicBlock* bb = fn->addBlock("entry");
  IRBuilder builder(ctx);
  builder.setInsertPoint(bb);
  auto* add = cast<Instruction>(builder.createAdd(a, a));
  auto* user = cast<Instruction>(builder.createAdd(add, a));
  EXPECT_THROW(bb->erase(add), GroverError);
  user->dropAllOperands();
  bb->erase(user);
  bb->erase(add);
  EXPECT_TRUE(bb->empty());
}

TEST_F(IrTest, CloneCopiesOperandsAndOpcode) {
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* a = fn->addArgument(ctx.int32Ty(), "a");
  BasicBlock* bb = fn->addBlock("entry");
  IRBuilder builder(ctx);
  builder.setInsertPoint(bb);
  auto* mul = cast<BinaryInst>(
      builder.createBinary(BinaryOp::Mul, a, ctx.getInt32(16)));
  auto cloned = mul->clone();
  auto* clonedMul = cast<BinaryInst>(cloned.get());
  EXPECT_EQ(clonedMul->op(), BinaryOp::Mul);
  EXPECT_EQ(clonedMul->lhs(), a);
  EXPECT_EQ(clonedMul->rhs(), ctx.getInt32(16));
  EXPECT_EQ(a->uses().size(), 2u);  // original + clone
}

TEST_F(IrTest, PhiIncomingManagement) {
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  BasicBlock* b1 = fn->addBlock("b1");
  BasicBlock* b2 = fn->addBlock("b2");
  BasicBlock* b3 = fn->addBlock("b3");
  IRBuilder builder(ctx);
  builder.setInsertPoint(b3);
  PhiInst* phi = builder.createPhi(ctx.int32Ty(), "p");
  phi->addIncoming(ctx.getInt32(1), b1);
  phi->addIncoming(ctx.getInt32(2), b2);
  EXPECT_EQ(phi->numIncoming(), 2u);
  EXPECT_EQ(phi->incomingForBlock(b1), ctx.getInt32(1));
  EXPECT_EQ(phi->incomingForBlock(b2), ctx.getInt32(2));
  phi->removeIncoming(0);
  EXPECT_EQ(phi->numIncoming(), 1u);
  EXPECT_EQ(phi->incomingBlock(0), b2);
  EXPECT_THROW(phi->incomingForBlock(b1), GroverError);
}

TEST_F(IrTest, SuccessorsAndPredecessors) {
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* flag = fn->addArgument(ctx.boolTy(), "flag");
  BasicBlock* entry = fn->addBlock("entry");
  BasicBlock* t = fn->addBlock("t");
  BasicBlock* f = fn->addBlock("f");
  IRBuilder builder(ctx);
  builder.setInsertPoint(entry);
  builder.createCondBr(flag, t, f);
  builder.setInsertPoint(t);
  builder.createRetVoid();
  builder.setInsertPoint(f);
  builder.createRetVoid();

  EXPECT_EQ(entry->successors(), (std::vector<BasicBlock*>{t, f}));
  EXPECT_EQ(t->predecessors(), (std::vector<BasicBlock*>{entry}));
  EXPECT_TRUE(entry->predecessors().empty());
}

TEST_F(IrTest, BuilderTypeChecks) {
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* i = fn->addArgument(ctx.int32Ty(), "i");
  Argument* x = fn->addArgument(ctx.floatTy(), "x");
  BasicBlock* bb = fn->addBlock("entry");
  IRBuilder builder(ctx);
  builder.setInsertPoint(bb);
  EXPECT_THROW(builder.createAdd(i, x), GroverError);
  EXPECT_THROW(builder.createLoad(i), GroverError);
  EXPECT_THROW(builder.createGep(i, i), GroverError);
}

TEST_F(IrTest, CastingHelpers) {
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* a = fn->addArgument(ctx.int32Ty(), "a");
  Value* v = a;
  EXPECT_TRUE(isa<Argument>(v));
  EXPECT_FALSE(isa<ConstantInt>(v));
  EXPECT_EQ(dyn_cast<ConstantInt>(v), nullptr);
  EXPECT_NE(dyn_cast<Argument>(v), nullptr);
  EXPECT_THROW(ir::cast<ConstantInt>(v), GroverError);
}

TEST_F(IrTest, AllocaDims) {
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  BasicBlock* bb = fn->addBlock("entry");
  IRBuilder builder(ctx);
  builder.setInsertPoint(bb);
  AllocaInst* tile =
      builder.createAlloca(ctx.floatTy(), 256, AddrSpace::Local, "tile");
  tile->setArrayDims({16, 16});
  EXPECT_EQ(tile->sizeInBytes(), 1024u);
  EXPECT_EQ(tile->space(), AddrSpace::Local);
  EXPECT_EQ(tile->arrayDims(), (std::vector<std::uint64_t>{16, 16}));
  EXPECT_EQ(tile->type()->element(), ctx.floatTy());
}

TEST_F(IrTest, FunctionRenumberAssignsSlotsAndNames) {
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* a = fn->addArgument(ctx.int32Ty(), "");
  BasicBlock* bb = fn->addBlock("");
  IRBuilder builder(ctx);
  builder.setInsertPoint(bb);
  Value* add = builder.createAdd(a, a);
  builder.createRetVoid();
  const unsigned slots = fn->renumber();
  EXPECT_EQ(slots, 3u);  // arg + add + ret
  EXPECT_EQ(a->slot(), 0u);
  EXPECT_FALSE(a->name().empty());
  EXPECT_FALSE(add->name().empty());
  EXPECT_FALSE(bb->name().empty());
  EXPECT_EQ(fn->instructionCount(), 2u);
}

}  // namespace
}  // namespace grover::ir
