// The symbolic race prover end-to-end: hand-built Proved/Refuted/Unknown
// kernels, interpreter confirmation of refutation witnesses, the full
// Table I sweep (both kernel versions of every app must be Proved or
// Unknown, never Refuted), and the soundness boundary cases.
#include "sym/prover.h"

#include <gtest/gtest.h>

#include "apps/app.h"
#include "grover/grover_pass.h"
#include "grovercl/compiler.h"
#include "sym/witness_check.h"

namespace grover::sym {
namespace {

ProveOptions opts1D(std::uint32_t lx, std::uint32_t groups = 2) {
  ProveOptions o;
  o.localSize = {lx, 1, 1};
  o.numGroups = {groups, 1, 1};
  return o;
}

ProveOptions opts2D(std::uint32_t lx, std::uint32_t ly) {
  ProveOptions o;
  o.localSize = {lx, ly, 1};
  o.numGroups = {2, 2, 1};
  return o;
}

SymbolicReport prove(const char* src, const char* kernel,
                     const ProveOptions& o) {
  Program p = compile(src);
  ir::Function* fn = p.kernel(kernel);
  EXPECT_NE(fn, nullptr);
  return proveRaceFreedom(*fn, o);
}

// ---------------------------------------------------------------------
// Proved cases.
// ---------------------------------------------------------------------

const char* kStagedReverse = R"(
__kernel void k(__global float* out, __global float* in) {
  __local float tile[16];
  int lx = get_local_id(0);
  tile[lx] = in[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = tile[15 - lx];
})";

TEST(SymProver, BarrierSeparatedStagingIsProved) {
  SymbolicReport r = prove(kStagedReverse, "k", opts1D(16));
  EXPECT_EQ(r.status, ProofStatus::Proved) << r.str();
  EXPECT_GT(r.pairs, 0u);
  EXPECT_EQ(r.refuted, 0u);
}

TEST(SymProver, TransformedKernelIsProved) {
  Program p = compile(kStagedReverse);
  ir::Function* fn = p.kernel("k");
  grv::GroverResult gr = grv::runGrover(*fn);
  ASSERT_TRUE(gr.anyTransformed);
  SymbolicReport r = proveRaceFreedom(*fn, opts1D(16));
  EXPECT_EQ(r.status, ProofStatus::Proved) << r.str();
}

// Two barriers per loop iteration; phase parity keeps the store interval
// and the load interval of one iteration apart (the matmul shape).
const char* kLoopBarrier = R"(
__kernel void k(__global float* out, __global float* in, int n) {
  __local float tile[16];
  int lx = get_local_id(0);
  float acc = 0.0f;
  for (int t = 0; t < n; t++) {
    tile[lx] = in[t * 16 + lx];
    barrier(CLK_LOCAL_MEM_FENCE);
    acc += tile[15 - lx];
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  out[get_global_id(0)] = acc;
})";

TEST(SymProver, BarrierLoopIsProved) {
  SymbolicReport r = prove(kLoopBarrier, "k", opts1D(16));
  EXPECT_EQ(r.status, ProofStatus::Proved) << r.str();
}

// Distinct output elements per work-item, no local memory at all.
const char* kDisjointGlobal = R"(
__kernel void k(__global float* out, __global float* in) {
  int g = get_global_id(0);
  out[g] = in[g] * 2.0f;
})";

TEST(SymProver, DisjointGlobalWritesAreProved) {
  SymbolicReport r = prove(kDisjointGlobal, "k", opts1D(16));
  EXPECT_EQ(r.status, ProofStatus::Proved) << r.str();
}

// ---------------------------------------------------------------------
// Refuted cases (with interpreter-confirmed witnesses).
// ---------------------------------------------------------------------

// The classic bug the whole subsystem exists to catch: barrier removed
// between the staging store and a shuffled load.
const char* kMissingBarrier = R"(
__kernel void k(__global float* out, __global float* in) {
  __local float tile[16];
  int lx = get_local_id(0);
  tile[lx] = in[get_global_id(0)];
  out[get_global_id(0)] = tile[15 - lx];
})";

TEST(SymProver, MissingBarrierIsRefutedAndWitnessConfirmed) {
  Program p = compile(kMissingBarrier);
  ir::Function* fn = p.kernel("k");
  SymbolicReport r = proveRaceFreedom(*fn, opts1D(16));
  ASSERT_EQ(r.status, ProofStatus::Refuted) << r.str();
  ASSERT_TRUE(r.witness.has_value());
  // lx_i aliases 15 - lx_j with i != j.
  EXPECT_NE(r.witness->item1.localId[0], r.witness->item2.localId[0]);

  // The decoded interpreter must reproduce the collision.
  rt::NDRange range = rt::NDRange::make1D(32, 16);
  rt::Buffer in = rt::Buffer::zeros<float>(32);
  rt::Buffer out = rt::Buffer::zeros<float>(32);
  std::vector<rt::KernelArg> args{rt::KernelArg::buffer(&out),
                                  rt::KernelArg::buffer(&in)};
  WitnessCheck wc = confirmWitness(*fn, *r.witness, range, args);
  EXPECT_TRUE(wc.confirmed) << wc.detail << "\n" << r.witness->str();
}

// A 2-D group where the local index ignores one dimension: every column
// of items writes the same tile slot in the same interval.
const char* kCollapsedDim = R"(
__kernel void k(__global float* out, __global float* in) {
  __local float tile[16];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  tile[lx] = in[get_global_id(1) * 32 + get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(1) * 32 + get_global_id(0)] = tile[lx] + (float)ly;
})";

TEST(SymProver, CollapsedDimensionWriteIsRefuted) {
  Program p = compile(kCollapsedDim);
  ir::Function* fn = p.kernel("k");
  SymbolicReport r = proveRaceFreedom(*fn, opts2D(16, 2));
  ASSERT_EQ(r.status, ProofStatus::Refuted) << r.str();
  ASSERT_TRUE(r.witness.has_value());
  // Witness items must share lx but differ in ly.
  EXPECT_EQ(r.witness->item1.localId[0], r.witness->item2.localId[0]);
  EXPECT_NE(r.witness->item1.localId[1], r.witness->item2.localId[1]);

  rt::NDRange range = rt::NDRange::make2D(32, 4, 16, 2);
  rt::Buffer in = rt::Buffer::zeros<float>(32 * 4);
  rt::Buffer out = rt::Buffer::zeros<float>(32 * 4);
  std::vector<rt::KernelArg> args{rt::KernelArg::buffer(&out),
                                  rt::KernelArg::buffer(&in)};
  WitnessCheck wc = confirmWitness(*fn, *r.witness, range, args);
  EXPECT_TRUE(wc.confirmed) << wc.detail << "\n" << r.witness->str();
}

// All items of a group write out[group_id]: a race on *global* memory.
const char* kGlobalCollision = R"(
__kernel void k(__global float* out, __global float* in) {
  int w = get_group_id(0);
  out[w] = in[get_global_id(0)];
})";

TEST(SymProver, GlobalSameSlotWriteIsRefuted) {
  SymbolicReport r = prove(kGlobalCollision, "k", opts1D(16));
  ASSERT_EQ(r.status, ProofStatus::Refuted) << r.str();
  ASSERT_TRUE(r.witness.has_value());
}

// ---------------------------------------------------------------------
// Unknown cases: outside the affine theory, never silently Proved.
// ---------------------------------------------------------------------

const char* kNonlinearIndex = R"(
__kernel void k(__global float* out, __global float* in) {
  __local float tile[256];
  int lx = get_local_id(0);
  tile[lx * lx] = in[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = tile[lx];
})";

TEST(SymProver, NonlinearIndexIsUnknownNotProved) {
  SymbolicReport r = prove(kNonlinearIndex, "k", opts1D(16));
  EXPECT_NE(r.status, ProofStatus::Proved) << r.str();
}

// A barrier under an id-dependent branch: divergence, not provable.
const char* kDivergentBarrier = R"(
__kernel void k(__global float* out, __global float* in) {
  __local float tile[16];
  int lx = get_local_id(0);
  tile[lx] = in[get_global_id(0)];
  if (lx < 8) {
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  out[get_global_id(0)] = tile[lx];
})";

TEST(SymProver, DivergentBarrierIsUnknown) {
  SymbolicReport r = prove(kDivergentBarrier, "k", opts1D(16));
  EXPECT_EQ(r.status, ProofStatus::Unknown) << r.str();
}

// Data-dependent index loaded from memory: the solver sees an opaque and
// must refuse to manufacture a witness from it.
const char* kDataDependentIndex = R"(
__kernel void k(__global float* out, __global float* in,
                __global int* idx) {
  __local float tile[16];
  int lx = get_local_id(0);
  tile[idx[lx]] = in[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = tile[lx];
})";

TEST(SymProver, DataDependentIndexIsUnknown) {
  SymbolicReport r = prove(kDataDependentIndex, "k", opts1D(16));
  EXPECT_EQ(r.status, ProofStatus::Unknown) << r.str();
  EXPECT_FALSE(r.witness.has_value());
}

// ---------------------------------------------------------------------
// Geometry sensitivity: the proof is relative to the launch shape.
// ---------------------------------------------------------------------

// Safe for localSize 16 (tile has 16 slots, one per item), racy for 32
// because two items share each slot.
const char* kModIndex = R"(
__kernel void k(__global float* out, __global float* in) {
  __local float tile[16];
  int lx = get_local_id(0) & 15;
  tile[lx] = in[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = tile[lx];
})";

TEST(SymProver, MaskedIndexDependsOnGeometry) {
  // With 16 items, lx & 15 == lx: the mask folds away only for concrete
  // operands, so this stays Unknown or Proved — never Refuted.
  SymbolicReport r16 = prove(kModIndex, "k", opts1D(16));
  EXPECT_NE(r16.status, ProofStatus::Refuted) << r16.str();
}

// ---------------------------------------------------------------------
// The Table I sweep: every app, both kernel versions, zero Refuted.
// ---------------------------------------------------------------------

TEST(SymProver, TableIOriginalsAndTransformsNeverRefuted) {
  unsigned proved = 0, unknown = 0;
  for (const auto& app : apps::allApplications()) {
    apps::Instance inst = app->makeInstance(apps::Scale::Test);
    ProveOptions opt = proveOptionsForLaunch(inst.range, inst.args);

    Program orig = compile(app->source());
    ir::Function* fn = orig.kernel(app->kernelName());
    ASSERT_NE(fn, nullptr) << app->id();
    SymbolicReport r = proveRaceFreedom(*fn, opt);
    EXPECT_NE(r.status, ProofStatus::Refuted)
        << app->id() << " original: " << r.str();
    (r.status == ProofStatus::Proved ? proved : unknown)++;

    Program copy = compile(app->source());
    ir::Function* tfn = copy.kernel(app->kernelName());
    grv::GroverOptions gopt;
    gopt.onlyBuffers = app->buffersToDisable();
    (void)grv::runGrover(*tfn, gopt);
    SymbolicReport tr = proveRaceFreedom(*tfn, opt);
    EXPECT_NE(tr.status, ProofStatus::Refuted)
        << app->id() << " transformed: " << tr.str();
    (tr.status == ProofStatus::Proved ? proved : unknown)++;
  }
  // 11 apps x 2 versions; the majority of the corpus should actually
  // prove, not just dodge into Unknown.
  EXPECT_EQ(proved + unknown, 22u);
  EXPECT_GE(proved, 12u) << "proved=" << proved << " unknown=" << unknown;
}

// ---------------------------------------------------------------------
// Report plumbing.
// ---------------------------------------------------------------------

TEST(SymProver, ReportRendersSummaryAndDetail) {
  SymbolicReport r = prove(kMissingBarrier, "k", opts1D(16));
  EXPECT_NE(r.summary().find("refuted"), std::string::npos);
  EXPECT_NE(r.str().find("witness:"), std::string::npos);
  EXPECT_GT(r.millis, 0.0);

  SymbolicReport ok = prove(kStagedReverse, "k", opts1D(16));
  EXPECT_NE(ok.summary().find("proved"), std::string::npos);
}

}  // namespace
}  // namespace grover::sym
