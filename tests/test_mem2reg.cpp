// Mem2Reg: SSA construction via compiled kernels (the realistic input).
#include "passes/mem2reg.h"

#include <gtest/gtest.h>

#include "grovercl/compiler.h"
#include "ir/casting.h"
#include "ir/verifier.h"

namespace grover {
namespace {

using namespace ir;

/// Compile with the full pipeline disabled except what we test.
Function* compileRaw(Program& program, const std::string& src,
                     const std::string& kernel) {
  CompileOptions options;
  options.optimize = false;
  program = compile(src, options);
  return program.kernel(kernel);
}

std::size_t countKind(Function& fn, ValueKind kind) {
  std::size_t n = 0;
  for (BasicBlock* bb : fn.blockList()) {
    for (const auto& inst : *bb) {
      if (inst->kind() == kind) ++n;
    }
  }
  return n;
}

std::size_t countPrivateAllocas(Function& fn) {
  std::size_t n = 0;
  for (const auto& inst : *fn.entry()) {
    if (const auto* a = dyn_cast<AllocaInst>(inst.get())) {
      if (a->space() == AddrSpace::Private) ++n;
    }
  }
  return n;
}

TEST(Mem2Reg, PromotesStraightLineScalars) {
  Program p;
  Function* fn = compileRaw(p, R"(
__kernel void k(__global float* out) {
  int i = get_global_id(0);
  float x = 1.5f;
  out[i] = x;
})", "k");
  EXPECT_GT(countPrivateAllocas(*fn), 0u);
  passes::Mem2RegPass pass;
  EXPECT_TRUE(pass.run(*fn));
  verifyFunction(*fn);
  EXPECT_EQ(countPrivateAllocas(*fn), 0u);
  EXPECT_EQ(countKind(*fn, ValueKind::InstPhi), 0u);  // no control flow
}

TEST(Mem2Reg, InsertsPhiAtIfMerge) {
  Program p;
  Function* fn = compileRaw(p, R"(
__kernel void k(__global float* out, int n) {
  int i = get_global_id(0);
  float x = 0.0f;
  if (i < n) { x = 1.0f; } else { x = 2.0f; }
  out[i] = x;
})", "k");
  passes::Mem2RegPass pass;
  pass.run(*fn);
  verifyFunction(*fn);
  EXPECT_EQ(countPrivateAllocas(*fn), 0u);
  EXPECT_GE(countKind(*fn, ValueKind::InstPhi), 1u);
}

TEST(Mem2Reg, LoopInductionVariableBecomesPhi) {
  Program p;
  Function* fn = compileRaw(p, R"(
__kernel void k(__global float* out, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) { acc += 1.0f; }
  out[0] = acc;
})", "k");
  passes::Mem2RegPass pass;
  pass.run(*fn);
  verifyFunction(*fn);
  EXPECT_EQ(countPrivateAllocas(*fn), 0u);
  // acc and i both need loop phis.
  EXPECT_GE(countKind(*fn, ValueKind::InstPhi), 2u);
}

TEST(Mem2Reg, LocalArraysAreNotPromoted) {
  Program p;
  Function* fn = compileRaw(p, R"(
__kernel void k(__global float* out) {
  __local float lm[16];
  int lx = get_local_id(0);
  lm[lx] = out[lx];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = lm[lx];
})", "k");
  passes::Mem2RegPass pass;
  pass.run(*fn);
  verifyFunction(*fn);
  std::size_t localAllocas = 0;
  for (const auto& inst : *fn->entry()) {
    if (const auto* a = dyn_cast<AllocaInst>(inst.get())) {
      EXPECT_EQ(a->space(), AddrSpace::Local);
      ++localAllocas;
    }
  }
  EXPECT_EQ(localAllocas, 1u);
}

TEST(Mem2Reg, PrivateArraysAreNotPromoted) {
  Program p;
  Function* fn = compileRaw(p, R"(
__kernel void k(__global float* out) {
  float tmp[4];
  tmp[0] = out[0];
  out[1] = tmp[0];
})", "k");
  passes::Mem2RegPass pass;
  pass.run(*fn);
  verifyFunction(*fn);
  EXPECT_EQ(countPrivateAllocas(*fn), 1u);  // the array stays
}

TEST(Mem2Reg, LoadBeforeStoreYieldsUndef) {
  Program p;
  Function* fn = compileRaw(p, R"(
__kernel void k(__global float* out) {
  float x;
  out[0] = x;
})", "k");
  passes::Mem2RegPass pass;
  pass.run(*fn);
  verifyFunction(*fn);
  bool sawUndefStore = false;
  for (BasicBlock* bb : fn->blockList()) {
    for (const auto& inst : *bb) {
      if (const auto* st = dyn_cast<StoreInst>(inst.get())) {
        if (isa<ConstantUndef>(st->value())) sawUndefStore = true;
      }
    }
  }
  EXPECT_TRUE(sawUndefStore);
}

TEST(Mem2Reg, IdempotentSecondRun) {
  Program p;
  Function* fn = compileRaw(p, R"(
__kernel void k(__global float* out, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc += 1.0f;
  out[0] = acc;
})", "k");
  passes::Mem2RegPass pass;
  EXPECT_TRUE(pass.run(*fn));
  EXPECT_FALSE(pass.run(*fn));  // nothing left to promote
}

}  // namespace
}  // namespace grover
