// IR printing: stable, readable output for every instruction kind.
#include "ir/printer.h"

#include <gtest/gtest.h>

#include "grovercl/compiler.h"
#include "ir/builder.h"
#include "ir/module.h"

namespace grover::ir {
namespace {

TEST(Printer, ValueRefs) {
  Context ctx;
  EXPECT_EQ(printValueRef(ctx.getInt32(42)), "42");
  EXPECT_EQ(printValueRef(ctx.getInt32(-1)), "-1");
  EXPECT_EQ(printValueRef(ctx.getFloat(1.5F)), "1.5");
  EXPECT_EQ(printValueRef(ctx.getUndef(ctx.floatTy())), "undef");
  EXPECT_EQ(printValueRef(nullptr), "<null>");
}

TEST(Printer, TypeStrings) {
  Context ctx;
  EXPECT_EQ(ctx.int32Ty()->str(), "i32");
  EXPECT_EQ(ctx.floatTy()->str(), "f32");
  EXPECT_EQ(ctx.vectorTy(ctx.floatTy(), 4)->str(), "<4 x f32>");
  EXPECT_EQ(ctx.pointerTy(ctx.floatTy(), AddrSpace::Local)->str(),
            "f32 local*");
}

TEST(Printer, InstructionForms) {
  Context ctx;
  Module module(ctx, "m");
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* a = fn->addArgument(ctx.int32Ty(), "a");
  Argument* p =
      fn->addArgument(ctx.pointerTy(ctx.int32Ty(), AddrSpace::Global), "p");
  BasicBlock* bb = fn->addBlock("entry");
  IRBuilder b(ctx);
  b.setInsertPoint(bb);
  auto* add = cast<Instruction>(b.createAdd(a, ctx.getInt32(3)));
  auto* gep = b.createGep(p, add);
  auto* load = b.createLoad(gep);
  auto* store = b.createStore(load, gep);
  auto* cmp = b.createICmp(CmpPred::SLT, a, ctx.getInt32(10));
  auto* sel = b.createSelect(cmp, a, ctx.getInt32(0));
  auto* call = b.createIdQuery(Builtin::GetLocalId, 1);
  auto* ret = b.createRetVoid();
  fn->renumber();

  EXPECT_NE(printInst(add).find("add i32 %a, 3"), std::string::npos);
  EXPECT_NE(printInst(gep).find("gep i32 global* %p"), std::string::npos);
  EXPECT_NE(printInst(load).find("load i32"), std::string::npos);
  EXPECT_NE(printInst(store).find("store i32"), std::string::npos);
  EXPECT_NE(printInst(cmp).find("icmp slt"), std::string::npos);
  EXPECT_NE(printInst(sel).find("select"), std::string::npos);
  EXPECT_NE(printInst(call).find("@get_local_id(i32 1)"), std::string::npos);
  EXPECT_EQ(printInst(ret), "ret void");
}

TEST(Printer, FunctionOutputIsStable) {
  auto program = compile(R"(
__kernel void k(__global float* out) {
  out[get_global_id(0)] = 1.0f;
})");
  Function* fn = program.kernel("k");
  const std::string first = printFunction(*fn);
  const std::string second = printFunction(*fn);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("kernel void @k"), std::string::npos);
  EXPECT_NE(first.find("entry:"), std::string::npos);
  EXPECT_NE(first.find("ret void"), std::string::npos);
}

TEST(Printer, ModuleListsAllKernels) {
  auto program = compile(R"(
__kernel void a(__global float* o) { o[0] = 1.0f; }
__kernel void b(__global float* o) { o[0] = 2.0f; }
)");
  const std::string text = printModule(*program.module);
  EXPECT_NE(text.find("@a"), std::string::npos);
  EXPECT_NE(text.find("@b"), std::string::npos);
}

TEST(Printer, PhiAndBranches) {
  auto program = compile(R"(
__kernel void k(__global int* out, int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) acc += i;
  out[0] = acc;
})");
  const std::string text = printFunction(*program.kernel("k"));
  EXPECT_NE(text.find("phi i32"), std::string::npos);
  EXPECT_NE(text.find("br i1"), std::string::npos);
  EXPECT_NE(text.find("["), std::string::npos);  // phi incoming brackets
}

TEST(Printer, AllocaShowsSpaceAndCount) {
  auto program = compile(R"(
__kernel void k(__global float* out) {
  __local float lm[32];
  int lx = get_local_id(0);
  lm[lx] = out[lx];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = lm[lx];
})");
  const std::string text = printFunction(*program.kernel("k"));
  EXPECT_NE(text.find("alloca f32, count 32, addrspace(local)"),
            std::string::npos);
  EXPECT_NE(text.find("call void @barrier(i32 1)"), std::string::npos);
}

}  // namespace
}  // namespace grover::ir
