// Common subexpression elimination.
#include "passes/cse.h"

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/casting.h"
#include "ir/module.h"
#include "ir/verifier.h"

namespace grover::passes {
namespace {

using namespace ir;

class CseTest : public ::testing::Test {
 protected:
  Context ctx;
  Module module{ctx, "m"};
  IRBuilder b{ctx};

  std::size_t countInsts(Function& fn) { return fn.instructionCount(); }
};

TEST_F(CseTest, FoldsIdenticalArithmetic) {
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* a = fn->addArgument(ctx.int32Ty(), "a");
  Argument* out =
      fn->addArgument(ctx.pointerTy(ctx.int32Ty(), AddrSpace::Global), "out");
  BasicBlock* bb = fn->addBlock("entry");
  b.setInsertPoint(bb);
  Value* x = b.createAdd(a, ctx.getInt32(1));
  Value* y = b.createAdd(a, ctx.getInt32(1));  // duplicate
  Value* sum = b.createAdd(x, y);
  b.createStore(sum, b.createGep(out, ctx.getInt32(0)));
  b.createRetVoid();
  CsePass cse;
  EXPECT_TRUE(cse.run(*fn));
  verifyFunction(*fn);
  // y removed; sum now uses x twice.
  auto* sumInst = cast<BinaryInst>(sum);
  EXPECT_EQ(sumInst->lhs(), sumInst->rhs());
}

TEST_F(CseTest, FoldsDuplicateIdQueries) {
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* out =
      fn->addArgument(ctx.pointerTy(ctx.int32Ty(), AddrSpace::Global), "out");
  BasicBlock* bb = fn->addBlock("entry");
  b.setInsertPoint(bb);
  Value* id1 = b.createIdQuery(Builtin::GetLocalId, 0);
  Value* id2 = b.createIdQuery(Builtin::GetLocalId, 0);
  Value* other = b.createIdQuery(Builtin::GetLocalId, 1);  // different dim
  Value* v = b.createAdd(b.createAdd(id1, id2), other);
  b.createStore(v, b.createGep(out, ctx.getInt32(0)));
  b.createRetVoid();
  const std::size_t before = countInsts(*fn);
  CsePass cse;
  EXPECT_TRUE(cse.run(*fn));
  verifyFunction(*fn);
  EXPECT_EQ(countInsts(*fn), before - 1);  // only id2 folded
}

TEST_F(CseTest, DoesNotFoldAcrossNonDominatingBlocks) {
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* c = fn->addArgument(ctx.boolTy(), "c");
  Argument* a = fn->addArgument(ctx.int32Ty(), "a");
  BasicBlock* entry = fn->addBlock("entry");
  BasicBlock* t = fn->addBlock("t");
  BasicBlock* f = fn->addBlock("f");
  b.setInsertPoint(entry);
  b.createCondBr(c, t, f);
  b.setInsertPoint(t);
  b.createAdd(a, a);
  b.createRetVoid();
  b.setInsertPoint(f);
  b.createAdd(a, a);  // same expression, sibling block: must stay
  b.createRetVoid();
  const std::size_t before = countInsts(*fn);
  CsePass cse;
  cse.run(*fn);
  verifyFunction(*fn);
  EXPECT_EQ(countInsts(*fn), before);
}

TEST_F(CseTest, FoldsFromDominatingBlock) {
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* c = fn->addArgument(ctx.boolTy(), "c");
  Argument* a = fn->addArgument(ctx.int32Ty(), "a");
  BasicBlock* entry = fn->addBlock("entry");
  BasicBlock* t = fn->addBlock("t");
  b.setInsertPoint(entry);
  Value* first = b.createAdd(a, a);
  BasicBlock* exit = fn->addBlock("exit");
  b.createCondBr(c, t, exit);
  b.setInsertPoint(t);
  Value* dup = b.createAdd(a, a);
  Value* use = b.createMul(dup, a);
  b.createBr(exit);
  b.setInsertPoint(exit);
  b.createRetVoid();
  CsePass cse;
  EXPECT_TRUE(cse.run(*fn));
  verifyFunction(*fn);
  EXPECT_EQ(cast<BinaryInst>(use)->lhs(), first);
}

TEST_F(CseTest, DoesNotFoldLoads) {
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* p =
      fn->addArgument(ctx.pointerTy(ctx.int32Ty(), AddrSpace::Global), "p");
  BasicBlock* bb = fn->addBlock("entry");
  b.setInsertPoint(bb);
  Value* l1 = b.createLoad(p);
  b.createStore(ctx.getInt32(42), p);  // memory changes in between
  Value* l2 = b.createLoad(p);
  b.createStore(b.createAdd(l1, l2), p);
  b.createRetVoid();
  const std::size_t before = countInsts(*fn);
  CsePass cse;
  cse.run(*fn);
  EXPECT_EQ(countInsts(*fn), before);
}

TEST_F(CseTest, DoesNotFoldBarriers) {
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  BasicBlock* bb = fn->addBlock("entry");
  b.setInsertPoint(bb);
  b.createCall(Builtin::Barrier, ctx.voidTy(), {ctx.getInt32(1)});
  b.createCall(Builtin::Barrier, ctx.voidTy(), {ctx.getInt32(1)});
  b.createRetVoid();
  const std::size_t before = countInsts(*fn);
  CsePass cse;
  cse.run(*fn);
  EXPECT_EQ(countInsts(*fn), before);
}

TEST_F(CseTest, DistinguishesOpcodes) {
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* a = fn->addArgument(ctx.int32Ty(), "a");
  Argument* out =
      fn->addArgument(ctx.pointerTy(ctx.int32Ty(), AddrSpace::Global), "out");
  BasicBlock* bb = fn->addBlock("entry");
  b.setInsertPoint(bb);
  Value* add = b.createAdd(a, a);
  Value* mul = b.createMul(a, a);  // same operands, different opcode
  b.createStore(b.createAdd(add, mul), b.createGep(out, ctx.getInt32(0)));
  b.createRetVoid();
  const std::size_t before = countInsts(*fn);
  CsePass cse;
  EXPECT_FALSE(cse.run(*fn));
  EXPECT_EQ(countInsts(*fn), before);
}

}  // namespace
}  // namespace grover::passes
