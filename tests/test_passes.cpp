// DCE, constant folding, CFG simplification, barrier elimination,
// pass-manager plumbing.
#include <gtest/gtest.h>

#include "grovercl/compiler.h"
#include "ir/builder.h"
#include "ir/casting.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "passes/barrier_elim.h"
#include "passes/constant_fold.h"
#include "passes/dce.h"
#include "passes/pass.h"
#include "passes/simplify_cfg.h"

namespace grover {
namespace {

using namespace ir;

std::size_t instCount(Function& fn) { return fn.instructionCount(); }

std::size_t countKind(Function& fn, ValueKind kind) {
  std::size_t n = 0;
  for (BasicBlock* bb : fn.blockList()) {
    for (const auto& inst : *bb) {
      if (inst->kind() == kind) ++n;
    }
  }
  return n;
}

TEST(Dce, RemovesUnusedPureChain) {
  Context ctx;
  Module module(ctx, "m");
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* a = fn->addArgument(ctx.int32Ty(), "a");
  BasicBlock* bb = fn->addBlock("entry");
  IRBuilder b(ctx);
  b.setInsertPoint(bb);
  Value* dead1 = b.createAdd(a, a);
  b.createMul(dead1, a);  // dead2 uses dead1
  b.createRetVoid();
  passes::DcePass dce;
  EXPECT_TRUE(dce.run(*fn));
  EXPECT_EQ(instCount(*fn), 1u);  // only ret
}

TEST(Dce, KeepsSideEffects) {
  Context ctx;
  Module module(ctx, "m");
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* out =
      fn->addArgument(ctx.pointerTy(ctx.int32Ty(), AddrSpace::Global), "out");
  BasicBlock* bb = fn->addBlock("entry");
  IRBuilder b(ctx);
  b.setInsertPoint(bb);
  b.createStore(ctx.getInt32(1), out);
  b.createCall(Builtin::Barrier, ctx.voidTy(), {ctx.getInt32(1)});
  b.createRetVoid();
  passes::DcePass dce;
  EXPECT_FALSE(dce.run(*fn));
  EXPECT_EQ(instCount(*fn), 3u);
}

TEST(Dce, UnusedLoadIsRemovable) {
  Context ctx;
  Module module(ctx, "m");
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* in =
      fn->addArgument(ctx.pointerTy(ctx.int32Ty(), AddrSpace::Global), "in");
  BasicBlock* bb = fn->addBlock("entry");
  IRBuilder b(ctx);
  b.setInsertPoint(bb);
  b.createLoad(in);
  b.createRetVoid();
  passes::DcePass dce;
  EXPECT_TRUE(dce.run(*fn));
  EXPECT_EQ(instCount(*fn), 1u);
}

TEST(ConstantFold, FoldsArithmetic) {
  Context ctx;
  Module module(ctx, "m");
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* out =
      fn->addArgument(ctx.pointerTy(ctx.int32Ty(), AddrSpace::Global), "out");
  BasicBlock* bb = fn->addBlock("entry");
  IRBuilder b(ctx);
  b.setInsertPoint(bb);
  Value* sum = b.createAdd(ctx.getInt32(2), ctx.getInt32(3));
  Value* prod = b.createMul(sum, ctx.getInt32(4));
  b.createStore(prod, out);
  b.createRetVoid();
  passes::ConstantFoldPass fold;
  EXPECT_TRUE(fold.run(*fn));
  auto* store = dyn_cast<StoreInst>(fn->entry()->front());
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(isa<ConstantInt>(store->value()));
  EXPECT_EQ(cast<ConstantInt>(store->value())->value(), 20);
}

TEST(ConstantFold, AlgebraicIdentities) {
  Context ctx;
  Module module(ctx, "m");
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* a = fn->addArgument(ctx.int32Ty(), "a");
  Argument* out =
      fn->addArgument(ctx.pointerTy(ctx.int32Ty(), AddrSpace::Global), "out");
  BasicBlock* bb = fn->addBlock("entry");
  IRBuilder b(ctx);
  b.setInsertPoint(bb);
  Value* v = b.createAdd(a, ctx.getInt32(0));      // a + 0 → a
  v = b.createMul(v, ctx.getInt32(1));             // a * 1 → a
  v = b.createBinary(BinaryOp::Shl, v, ctx.getInt32(0));  // a << 0 → a
  b.createStore(v, out);
  b.createRetVoid();
  passes::ConstantFoldPass fold;
  EXPECT_TRUE(fold.run(*fn));
  auto* store = dyn_cast<StoreInst>(fn->entry()->front());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->value(), a);
}

TEST(ConstantFold, MulByZero) {
  Context ctx;
  Module module(ctx, "m");
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* a = fn->addArgument(ctx.int32Ty(), "a");
  Argument* out =
      fn->addArgument(ctx.pointerTy(ctx.int32Ty(), AddrSpace::Global), "out");
  BasicBlock* bb = fn->addBlock("entry");
  IRBuilder b(ctx);
  b.setInsertPoint(bb);
  b.createStore(b.createMul(a, ctx.getInt32(0)), out);
  b.createRetVoid();
  passes::ConstantFoldPass fold;
  fold.run(*fn);
  auto* store = dyn_cast<StoreInst>(fn->entry()->front());
  EXPECT_EQ(store->value(), ctx.getInt32(0));
}

TEST(ConstantFold, FoldsComparisonsAndSelect) {
  Context ctx;
  Module module(ctx, "m");
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* out =
      fn->addArgument(ctx.pointerTy(ctx.int32Ty(), AddrSpace::Global), "out");
  BasicBlock* bb = fn->addBlock("entry");
  IRBuilder b(ctx);
  b.setInsertPoint(bb);
  Value* cmp = b.createICmp(CmpPred::SLT, ctx.getInt32(1), ctx.getInt32(2));
  Value* sel = b.createSelect(cmp, ctx.getInt32(10), ctx.getInt32(20));
  b.createStore(sel, out);
  b.createRetVoid();
  passes::ConstantFoldPass fold;
  fold.run(*fn);
  auto* store = dyn_cast<StoreInst>(fn->entry()->front());
  EXPECT_EQ(store->value(), ctx.getInt32(10));
}

TEST(SimplifyCfg, FoldsConstantBranch) {
  Context ctx;
  Module module(ctx, "m");
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  BasicBlock* entry = fn->addBlock("entry");
  BasicBlock* t = fn->addBlock("t");
  BasicBlock* f = fn->addBlock("f");
  IRBuilder b(ctx);
  b.setInsertPoint(entry);
  b.createCondBr(ctx.getBool(true), t, f);
  b.setInsertPoint(t);
  b.createRetVoid();
  b.setInsertPoint(f);
  b.createRetVoid();
  passes::SimplifyCfgPass simplify;
  EXPECT_TRUE(simplify.run(*fn));
  verifyFunction(*fn);
  // f is unreachable and removed; t merges into entry.
  EXPECT_EQ(fn->blockList().size(), 1u);
}

TEST(SimplifyCfg, MergesStraightLineChains) {
  Context ctx;
  Module module(ctx, "m");
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  BasicBlock* a = fn->addBlock("a");
  BasicBlock* bBlock = fn->addBlock("b");
  BasicBlock* c = fn->addBlock("c");
  IRBuilder b(ctx);
  b.setInsertPoint(a);
  b.createBr(bBlock);
  b.setInsertPoint(bBlock);
  b.createBr(c);
  b.setInsertPoint(c);
  b.createRetVoid();
  passes::SimplifyCfgPass simplify;
  EXPECT_TRUE(simplify.run(*fn));
  verifyFunction(*fn);
  EXPECT_EQ(fn->blockList().size(), 1u);
}

TEST(BarrierElim, RemovesBarriersOnceLocalTrafficIsGone) {
  auto program = compile(R"(
__kernel void k(__global float* out) {
  int i = get_global_id(0);
  barrier(CLK_LOCAL_MEM_FENCE);
  out[i] = 1.0f;
})");
  Function* fn = program.kernel("k");
  EXPECT_FALSE(passes::usesLocalMemory(*fn));
  passes::BarrierElimPass pass;
  EXPECT_TRUE(pass.run(*fn));
  bool anyBarrier = false;
  for (BasicBlock* bb : fn->blockList()) {
    for (const auto& inst : *bb) {
      if (const auto* call = dyn_cast<CallInst>(inst.get())) {
        if (call->builtin() == Builtin::Barrier) anyBarrier = true;
      }
    }
  }
  EXPECT_FALSE(anyBarrier);
}

TEST(BarrierElim, KeepsBarriersWhileLocalMemoryIsLive) {
  auto program = compile(R"(
__kernel void k(__global float* out) {
  __local float lm[16];
  int lx = get_local_id(0);
  lm[lx] = out[lx];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = lm[15 - lx];
})");
  Function* fn = program.kernel("k");
  EXPECT_TRUE(passes::usesLocalMemory(*fn));
  passes::BarrierElimPass pass;
  EXPECT_FALSE(pass.run(*fn));
}

unsigned countBarriers(Function& fn) {
  unsigned n = 0;
  for (BasicBlock* bb : fn.blockList()) {
    for (const auto& inst : *bb) {
      if (const auto* call = dyn_cast<CallInst>(inst.get())) {
        if (call->builtin() == Builtin::Barrier) ++n;
      }
    }
  }
  return n;
}

TEST(BarrierElim, FlagsMatrixPinsEligibility) {
  // Exactly which barriers are removable once no local traffic remains:
  // constant flags without the global bit (0, LOCAL) go; the global fence
  // bit or non-constant flags keep the barrier.
  struct Case {
    const char* flags;
    bool removable;
  };
  const Case cases[] = {
      {"0", true},
      {"CLK_LOCAL_MEM_FENCE", true},
      {"CLK_GLOBAL_MEM_FENCE", false},
      {"CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE", false},
      {"flags", false},
  };
  for (const Case& c : cases) {
    const std::string src = std::string(R"(
__kernel void k(__global float* out, int flags) {
  int i = get_global_id(0);
  out[i] = 1.0f;
  barrier()") + c.flags + R"();
  out[i] = out[i] + 1.0f;
})";
    auto program = compile(src);
    Function* fn = program.kernel("k");
    ASSERT_EQ(countBarriers(*fn), 1u) << "flags = " << c.flags;
    passes::BarrierElimPass pass;
    EXPECT_EQ(pass.run(*fn), c.removable) << "flags = " << c.flags;
    EXPECT_EQ(countBarriers(*fn), c.removable ? 0u : 1u)
        << "flags = " << c.flags;
    verifyFunction(*fn);
  }
}

TEST(BarrierElim, DeadGepChainsDoNotBlockRemoval) {
  // A local alloca whose only remaining uses are dead GEP chains (no
  // loads or stores) — the state after Grover when cleanup ordering left
  // the chain unswept — must not keep barriers alive.
  Context ctx;
  Module module(ctx, "m");
  Function* fn = module.addFunction("k", ctx.voidTy(), true);
  Argument* out =
      fn->addArgument(ctx.pointerTy(ctx.floatTy(), AddrSpace::Global), "out");
  BasicBlock* bb = fn->addBlock("entry");
  IRBuilder b(ctx);
  b.setInsertPoint(bb);
  AllocaInst* tile =
      b.createAlloca(ctx.floatTy(), 16, AddrSpace::Local, "tile");
  Value* lx = b.createIdQuery(Builtin::GetLocalId, 0, "lx");
  GepInst* gep = b.createGep(tile, lx);        // dead
  b.createGep(gep, ctx.getInt32(1));           // dead nested chain
  b.createCall(Builtin::Barrier, ctx.voidTy(), {ctx.getInt32(1)});
  b.createStore(ctx.getFloat(1.0F), b.createGep(out, lx));
  b.createRetVoid();

  EXPECT_FALSE(passes::usesLocalMemory(*fn));
  passes::BarrierElimPass pass;
  EXPECT_TRUE(pass.run(*fn));
  EXPECT_EQ(countBarriers(*fn), 0u);
}

TEST(BarrierElim, GepChainToRealAccessStillBlocks) {
  // The same chain ending in an actual store keeps the barrier.
  Context ctx;
  Module module(ctx, "m");
  Function* fn = module.addFunction("k", ctx.voidTy(), true);
  fn->addArgument(ctx.pointerTy(ctx.floatTy(), AddrSpace::Global), "out");
  BasicBlock* bb = fn->addBlock("entry");
  IRBuilder b(ctx);
  b.setInsertPoint(bb);
  AllocaInst* tile =
      b.createAlloca(ctx.floatTy(), 16, AddrSpace::Local, "tile");
  Value* lx = b.createIdQuery(Builtin::GetLocalId, 0, "lx");
  GepInst* gep = b.createGep(tile, lx);
  GepInst* nested = b.createGep(gep, ctx.getInt32(1));
  b.createStore(ctx.getFloat(2.0F), nested);
  b.createCall(Builtin::Barrier, ctx.voidTy(), {ctx.getInt32(1)});
  b.createRetVoid();

  EXPECT_TRUE(passes::usesLocalMemory(*fn));
  passes::BarrierElimPass pass;
  EXPECT_FALSE(pass.run(*fn));
  EXPECT_EQ(countBarriers(*fn), 1u);
}

TEST(BarrierElim, KeepsGlobalFences) {
  auto program = compile(R"(
__kernel void k(__global float* out) {
  int i = get_global_id(0);
  out[i] = 1.0f;
  barrier(CLK_GLOBAL_MEM_FENCE);
  out[i] = out[i] + 1.0f;
})");
  Function* fn = program.kernel("k");
  passes::BarrierElimPass pass;
  EXPECT_FALSE(pass.run(*fn));  // global fence must stay
}

TEST(PassManager, RunsPipelineAndVerifies) {
  CompileOptions options;
  options.optimize = false;
  auto program = compile(R"(
__kernel void k(__global float* out, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc += out[i];
  out[0] = acc;
})", options);
  Function* fn = program.kernel("k");
  passes::PassManager pm(/*verifyBetween=*/true);
  passes::addStandardPipeline(pm);
  EXPECT_TRUE(pm.run(*program.module));
  verifyFunction(*fn);
  // Second run reaches a fixed point quickly.
  passes::PassManager pm2(true);
  passes::addStandardPipeline(pm2);
  pm2.run(*program.module);
  verifyFunction(*fn);
}

}  // namespace
}  // namespace grover
