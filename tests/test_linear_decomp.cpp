// LinearDecomp: decomposition of index expressions into affine form.
#include "grover/linear_decomp.h"

#include <gtest/gtest.h>

#include "grover/candidates.h"
#include "grovercl/compiler.h"
#include "ir/casting.h"

namespace grover::grv {
namespace {

using namespace ir;

/// Compile a kernel with a single local store `lm[<expr>] = in[0]` and
/// return the decomposition of its LS index.
std::optional<LinearDecomp> decomposeLsIndex(const std::string& indexExpr,
                                             const std::string& prelude = "") {
  const std::string src = R"(
__kernel void k(__global float* in, int A, int B) {
  __local float lm[4096];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int wx = get_group_id(0);
)" + prelude + R"(
  lm[)" + indexExpr + R"(] = in[0];
  barrier(CLK_LOCAL_MEM_FENCE);
  in[0] = lm[0];
}
)";
  static std::vector<std::unique_ptr<Program>> keepAlive;
  keepAlive.push_back(std::make_unique<Program>(compile(src)));
  Function* fn = keepAlive.back()->kernel("k");
  auto cands = findCandidates(*fn);
  if (cands.empty() || cands[0].pairs.empty()) return std::nullopt;
  Value* index = cands[0].pairs[0].lsIndex;
  if (index == nullptr) return LinearDecomp(Rational(0));
  return decompose(index);
}

Rational coeffOfLocalId(const LinearDecomp& d, unsigned dim) {
  return d.localIdCoeff(dim);
}

TEST(LinearDecomp, SimpleLocalId) {
  auto d = decomposeLsIndex("lx");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(coeffOfLocalId(*d, 0), Rational(1));
  EXPECT_EQ(d->constant(), Rational(0));
}

TEST(LinearDecomp, TiledRowMajor) {
  auto d = decomposeLsIndex("ly*16 + lx");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(coeffOfLocalId(*d, 0), Rational(1));
  EXPECT_EQ(coeffOfLocalId(*d, 1), Rational(16));
}

TEST(LinearDecomp, ConstantsAndSubtraction) {
  auto d = decomposeLsIndex("(ly + 1)*18 + lx - 2");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(coeffOfLocalId(*d, 1), Rational(18));
  EXPECT_EQ(coeffOfLocalId(*d, 0), Rational(1));
  EXPECT_EQ(d->constant(), Rational(16));  // 18 - 2
}

TEST(LinearDecomp, ShlAsMultiply) {
  auto d = decomposeLsIndex("(ly << 4) + lx");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(coeffOfLocalId(*d, 1), Rational(16));
}

TEST(LinearDecomp, GlobalIdSplitsIntoBasePlusLocal) {
  auto d = decomposeLsIndex("get_global_id(0)");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(coeffOfLocalId(*d, 0), Rational(1));
  // The group-base atom carries the rest.
  bool sawGroupBase = false;
  for (const auto& [key, coeff] : d->terms()) {
    if (key.atomKind() == AtomKey::Kind::GroupBase) {
      sawGroupBase = true;
      EXPECT_EQ(coeff, Rational(1));
      EXPECT_EQ(key.dim(), 0u);
    }
  }
  EXPECT_TRUE(sawGroupBase);
}

TEST(LinearDecomp, SymbolicTermKeepsCoefficient) {
  // A*16 + lx: the symbolic term is an opaque atom but its ×16 must
  // survive (the regression behind the first NVD-MM-B failure: a loop
  // variable's k*16 was swallowed with coefficient 1).
  auto d = decomposeLsIndex("A*16 + lx");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(coeffOfLocalId(*d, 0), Rational(1));
  Rational symbolic;
  for (const auto& [key, coeff] : d->terms()) {
    if (!key.isLocalId()) symbolic = coeff;
  }
  EXPECT_EQ(symbolic, Rational(16));
}

TEST(LinearDecomp, SymbolicProductIsOneAtom) {
  // A*B involves no work-item id → one opaque atom.
  auto d = decomposeLsIndex("A*B + lx");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(coeffOfLocalId(*d, 0), Rational(1));
  std::size_t opaque = 0;
  for (const auto& [key, coeff] : d->terms()) {
    (void)coeff;
    if (key.atomKind() == AtomKey::Kind::Value) ++opaque;
  }
  EXPECT_EQ(opaque, 1u);
}

TEST(LinearDecomp, IdTimesSymbolFails) {
  // lx*A is not linear with rational coefficients → refuse.
  auto d = decomposeLsIndex("lx*A");
  EXPECT_FALSE(d.has_value());
}

TEST(LinearDecomp, IdTimesIdFails) {
  auto d = decomposeLsIndex("lx*ly");
  EXPECT_FALSE(d.has_value());
}

TEST(LinearDecomp, AlgebraOnDecomps) {
  LinearDecomp a;
  a.addTerm(AtomKey::localId(0), Rational(2));
  a.setConstant(Rational(3));
  LinearDecomp b;
  b.addTerm(AtomKey::localId(0), Rational(1));
  b.addTerm(AtomKey::localId(1), Rational(4));
  a += b;
  EXPECT_EQ(a.localIdCoeff(0), Rational(3));
  EXPECT_EQ(a.localIdCoeff(1), Rational(4));
  a -= b;
  EXPECT_EQ(a.localIdCoeff(0), Rational(2));
  EXPECT_EQ(a.localIdCoeff(1), Rational(0));
  a.scale(Rational(1, 2));
  EXPECT_EQ(a.localIdCoeff(0), Rational(1));
  EXPECT_EQ(a.constant(), Rational(3, 2));
  EXPECT_FALSE(a.isIntegral());
}

TEST(LinearDecomp, ExtractLocalIdTerms) {
  LinearDecomp d;
  d.addTerm(AtomKey::localId(0), Rational(1));
  d.addTerm(AtomKey::groupBase(0), Rational(1));
  d.setConstant(Rational(5));
  LinearDecomp lids = d.extractLocalIdTerms();
  EXPECT_TRUE(lids.usesLocalId());
  EXPECT_FALSE(d.usesLocalId());
  EXPECT_EQ(d.constant(), Rational(5));
}

TEST(LinearDecomp, CancellingTermsDisappear) {
  LinearDecomp d;
  d.addTerm(AtomKey::localId(0), Rational(3));
  d.addTerm(AtomKey::localId(0), Rational(-3));
  EXPECT_TRUE(d.isConstant());
}

TEST(LinearDecomp, StrRendering) {
  LinearDecomp d;
  d.addTerm(AtomKey::localId(0), Rational(1));
  d.addTerm(AtomKey::localId(1), Rational(16));
  EXPECT_EQ(d.str(), "lx + 16*ly");
  LinearDecomp zero;
  EXPECT_EQ(zero.str(), "0");
}

}  // namespace
}  // namespace grover::grv
