// The linear solver (paper S2): unique solutions, singular refusals,
// symbolic right-hand sides, and a property sweep over random invertible
// integer systems.
#include "grover/linear_system.h"

#include <gtest/gtest.h>

namespace grover::grv {
namespace {

LinearDecomp sym(unsigned dim, std::int64_t coeff = 1,
                 std::int64_t constant = 0) {
  LinearDecomp d;
  d.addTerm(AtomKey::localId(dim), Rational(coeff));
  d.setConstant(Rational(constant));
  return d;
}

LinearDecomp constDecomp(std::int64_t c) { return LinearDecomp(Rational(c)); }

TEST(LinearSystem, IdentitySystem) {
  // lx = rhs0, ly = rhs1.
  std::vector<LinearEquation> eqs(2);
  eqs[0].coeffs = {Rational(1), Rational(0)};
  eqs[0].rhs = constDecomp(7);
  eqs[1].coeffs = {Rational(0), Rational(1)};
  eqs[1].rhs = constDecomp(9);
  auto sol = solveLinearSystem(eqs, 2);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->values[0], constDecomp(7));
  EXPECT_EQ(sol->values[1], constDecomp(9));
}

TEST(LinearSystem, SwapSystem) {
  // The matrix transpose case: unknowns (lx, ly), equations
  // ly = X_LL (=lx symbol), lx = Y_LL (=ly symbol).
  std::vector<LinearEquation> eqs(2);
  eqs[0].coeffs = {Rational(0), Rational(1)};  // ly
  eqs[0].rhs = sym(0);                         // = lx
  eqs[1].coeffs = {Rational(1), Rational(0)};  // lx
  eqs[1].rhs = sym(1);                         // = ly
  auto sol = solveLinearSystem(eqs, 2);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->values[0], sym(1));  // lx := ly
  EXPECT_EQ(sol->values[1], sym(0));  // ly := lx
}

TEST(LinearSystem, ScaledEquationNeedsDivision) {
  // 4*lx = rhs → lx = rhs/4 (rational intermediate).
  std::vector<LinearEquation> eqs(1);
  eqs[0].coeffs = {Rational(4)};
  eqs[0].rhs = sym(1, 8, 4);  // 8*ly + 4
  auto sol = solveLinearSystem(eqs, 1);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->values[0], sym(1, 2, 1));  // 2*ly + 1
}

TEST(LinearSystem, SingularIsRefused) {
  // lx + ly appears in both equations → no unique solution.
  std::vector<LinearEquation> eqs(2);
  eqs[0].coeffs = {Rational(1), Rational(1)};
  eqs[0].rhs = constDecomp(3);
  eqs[1].coeffs = {Rational(2), Rational(2)};
  eqs[1].rhs = constDecomp(6);
  EXPECT_FALSE(solveLinearSystem(eqs, 2).has_value());
}

TEST(LinearSystem, UnderdeterminedIsRefused) {
  std::vector<LinearEquation> eqs(1);
  eqs[0].coeffs = {Rational(1), Rational(1)};
  eqs[0].rhs = constDecomp(3);
  EXPECT_FALSE(solveLinearSystem(eqs, 2).has_value());
}

TEST(LinearSystem, ConsistentExtraRowAccepted) {
  // Second row 0 = 0 after elimination.
  std::vector<LinearEquation> eqs(2);
  eqs[0].coeffs = {Rational(1)};
  eqs[0].rhs = constDecomp(5);
  eqs[1].coeffs = {Rational(2)};
  eqs[1].rhs = constDecomp(10);
  auto sol = solveLinearSystem(eqs, 1);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->values[0], constDecomp(5));
}

TEST(LinearSystem, InconsistentExtraRowRefused) {
  std::vector<LinearEquation> eqs(2);
  eqs[0].coeffs = {Rational(1)};
  eqs[0].rhs = constDecomp(5);
  eqs[1].coeffs = {Rational(2)};
  eqs[1].rhs = constDecomp(11);  // 2*5 != 11
  EXPECT_FALSE(solveLinearSystem(eqs, 1).has_value());
}

TEST(LinearSystem, ZeroUnknownsZeroRhsOk) {
  // Constant dimensions must match symbolically (0 = 0).
  std::vector<LinearEquation> eqs(1);
  eqs[0].coeffs = {};
  eqs[0].rhs = LinearDecomp{};
  auto sol = solveLinearSystem(eqs, 0);
  EXPECT_TRUE(sol.has_value());
}

TEST(LinearSystem, ZeroUnknownsNonZeroRhsRefused) {
  std::vector<LinearEquation> eqs(1);
  eqs[0].coeffs = {};
  eqs[0].rhs = constDecomp(1);
  EXPECT_FALSE(solveLinearSystem(eqs, 0).has_value());
}

TEST(BuildEquations, TransposePattern) {
  // LS dims (ly, lx); LL dims are opaque symbols u, v.
  std::vector<LinearDecomp> ls{sym(1), sym(0)};
  std::vector<LinearDecomp> ll{constDecomp(3), constDecomp(4)};
  std::vector<unsigned> unknowns;
  auto eqs = buildEquations(ls, ll, unknowns);
  ASSERT_TRUE(eqs.has_value());
  EXPECT_EQ(unknowns, (std::vector<unsigned>{0, 1}));
  ASSERT_EQ(eqs->size(), 2u);
  // eq0: 0*lx + 1*ly = 3; eq1: 1*lx + 0*ly = 4.
  EXPECT_EQ((*eqs)[0].coeffs[1], Rational(1));
  EXPECT_EQ((*eqs)[0].rhs, constDecomp(3));
  EXPECT_EQ((*eqs)[1].coeffs[0], Rational(1));
}

TEST(BuildEquations, MovesSymbolicRestToRhs) {
  // LS dim0 = ly + C (C symbolic via constant here): rest moves to RHS.
  std::vector<LinearDecomp> ls{sym(1, 1, 7)};
  std::vector<LinearDecomp> ll{constDecomp(10)};
  std::vector<unsigned> unknowns;
  auto eqs = buildEquations(ls, ll, unknowns);
  ASSERT_TRUE(eqs.has_value());
  EXPECT_EQ((*eqs)[0].rhs, constDecomp(3));  // 10 - 7
}

TEST(BuildEquations, DimCountMismatchFails) {
  std::vector<LinearDecomp> ls{sym(0)};
  std::vector<LinearDecomp> ll{constDecomp(0), constDecomp(1)};
  std::vector<unsigned> unknowns;
  EXPECT_FALSE(buildEquations(ls, ll, unknowns).has_value());
}

// Property: random invertible 2x2 and 3x3 integer systems solve to the
// exact known solution.
class SolverProperty : public ::testing::TestWithParam<int> {};

TEST_P(SolverProperty, RandomInvertibleSystems) {
  std::uint64_t state = static_cast<std::uint64_t>(GetParam()) * 7919 + 13;
  auto next = [&state](std::int64_t lo, std::int64_t hi) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return lo + static_cast<std::int64_t>(
                    (state >> 33) % static_cast<std::uint64_t>(hi - lo));
  };
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t n = 2 + static_cast<std::size_t>(next(0, 2));
    // Random matrix + known integer solution x*.
    std::vector<std::vector<std::int64_t>> a(n, std::vector<std::int64_t>(n));
    std::vector<std::int64_t> xstar(n);
    for (std::size_t i = 0; i < n; ++i) xstar[i] = next(-5, 6);
    // Build an invertible matrix: random unimodular-ish via L*U with unit
    // diagonals plus a permutation.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        a[i][j] = i == j ? 1 : next(-3, 4);
      }
    }
    // Multiply two triangular matrices to keep det = ±1 (invertible).
    std::vector<std::vector<std::int64_t>> m(n,
                                             std::vector<std::int64_t>(n, 0));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k) {
          const std::int64_t lower = i >= k ? (i == k ? 1 : a[i][k]) : 0;
          const std::int64_t upper = k <= j ? (k == j ? 1 : a[k][j]) : 0;
          m[i][j] += lower * upper;
        }
      }
    }
    std::vector<LinearEquation> eqs(n);
    for (std::size_t i = 0; i < n; ++i) {
      eqs[i].coeffs.resize(n);
      std::int64_t rhs = 0;
      for (std::size_t j = 0; j < n; ++j) {
        eqs[i].coeffs[j] = Rational(m[i][j]);
        rhs += m[i][j] * xstar[j];
      }
      eqs[i].rhs = constDecomp(rhs);
    }
    auto sol = solveLinearSystem(eqs, n);
    ASSERT_TRUE(sol.has_value());
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(sol->values[j], constDecomp(xstar[j]))
          << "component " << j << " iter " << iter;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace grover::grv
