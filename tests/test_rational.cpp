// Exact rational arithmetic — the foundation of the linear solver.
#include "support/rational.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "support/diagnostics.h"

namespace grover {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.isZero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, NormalizesOnConstruction) {
  Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, NegativeDenominatorMovesSign) {
  Rational r(3, -6);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, ZeroNumeratorIsCanonical) {
  Rational r(0, -17);
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), GroverError);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1) / Rational(0), GroverError);
}

TEST(Rational, Comparison) {
  EXPECT_TRUE(Rational(1, 3) < Rational(1, 2));
  EXPECT_FALSE(Rational(1, 2) < Rational(1, 3));
  EXPECT_FALSE(Rational(1, 2) < Rational(1, 2));
  EXPECT_TRUE(Rational(-1) < Rational(0));
}

TEST(Rational, IntegerQueries) {
  EXPECT_TRUE(Rational(7).isInteger());
  EXPECT_EQ(Rational(7).asInteger(), 7);
  EXPECT_FALSE(Rational(7, 2).isInteger());
  EXPECT_THROW(Rational(7, 2).asInteger(), GroverError);
}

TEST(Rational, Str) {
  EXPECT_EQ(Rational(3).str(), "3");
  EXPECT_EQ(Rational(-3, 2).str(), "-3/2");
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).toDouble(), 0.25);
}

TEST(Rational, OverflowDetected) {
  const std::int64_t big = std::int64_t{1} << 62;
  Rational a(big, 1);
  EXPECT_THROW(a * a, GroverError);
}

TEST(Rational, NegationAtInt64MinThrows) {
  // -INT64_MIN is not representable; a raw `-num_` would be UB. Every
  // route to the negation must throw instead of wrapping.
  const std::int64_t min = std::numeric_limits<std::int64_t>::min();
  const Rational m(min);
  EXPECT_THROW(-m, GroverError);
  EXPECT_THROW(Rational(0) - m, GroverError);
  EXPECT_THROW(m / Rational(-1), GroverError);
  EXPECT_THROW(Rational(1, min), GroverError);  // den sign flip negates num
}

TEST(Rational, NegationJustAboveInt64MinWorks) {
  const std::int64_t min = std::numeric_limits<std::int64_t>::min();
  const Rational r(min + 1);
  EXPECT_EQ((-r).num(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(-(-r), r);
}

TEST(Rational, ArithmeticAtInt64Limits) {
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  const std::int64_t min = std::numeric_limits<std::int64_t>::min();
  EXPECT_THROW(Rational(max) + Rational(1), GroverError);
  EXPECT_THROW(Rational(min) - Rational(1), GroverError);
  EXPECT_THROW(Rational(min) * Rational(2), GroverError);
  EXPECT_THROW(Rational(2) / Rational(1, max), GroverError);
  // Exactly-representable results at the boundary still succeed.
  EXPECT_EQ(Rational(max) + Rational(0), Rational(max));
  EXPECT_EQ((Rational(min) + Rational(max)).num(), -1);
  EXPECT_EQ(Rational(min) / Rational(min), Rational(1));
}

// Property sweep: field axioms on a grid of small rationals.
class RationalProperty : public ::testing::TestWithParam<int> {};

TEST_P(RationalProperty, FieldAxioms) {
  const int seed = GetParam();
  auto next = [state = static_cast<std::uint64_t>(seed) * 2654435761u +
                       12345]() mutable {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::int64_t>((state >> 33) % 19) - 9;
  };
  for (int i = 0; i < 50; ++i) {
    std::int64_t an = next();
    std::int64_t ad = next();
    std::int64_t bn = next();
    std::int64_t bd = next();
    if (ad == 0) ad = 1;
    if (bd == 0) bd = 1;
    const Rational a(an, ad);
    const Rational b(bn, bd);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a + Rational(0), a);
    EXPECT_EQ(a * Rational(1), a);
    EXPECT_EQ(a - a, Rational(0));
    if (!b.isZero()) {
      EXPECT_EQ((a / b) * b, a);
    }
    EXPECT_EQ(a * (b + Rational(1)), a * b + a);  // distributivity
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace grover
