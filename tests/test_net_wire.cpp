// Frame codec round-trips and protocol-violation handling: the decoder
// must survive byte-at-a-time delivery (TCP does not respect frame
// boundaries) and must poison itself on the first malformed header so a
// connection never resynchronises onto garbage.
#include <gtest/gtest.h>

#include <string>

#include "net/wire.h"

namespace {

using grover::net::appendFrame;
using grover::net::appendStatusFrame;
using grover::net::Frame;
using grover::net::FrameReader;
using grover::net::FrameType;
using grover::net::kHeaderSize;
using grover::net::splitStatusPayload;
using grover::net::Status;

TEST(NetWire, RoundTripSingleFrame) {
  std::string bytes;
  appendFrame(bytes, FrameType::Request, 42, "NVD-MT SNB test");
  ASSERT_EQ(bytes.size(), kHeaderSize + 15);

  FrameReader reader;
  reader.append(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(reader.next(frame), FrameReader::Result::Frame);
  EXPECT_EQ(frame.type, FrameType::Request);
  EXPECT_EQ(frame.id, 42u);
  EXPECT_EQ(frame.payload, "NVD-MT SNB test");
  EXPECT_EQ(reader.next(frame), FrameReader::Result::NeedMore);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(NetWire, ByteAtATimeDeliveryDecodesPipelinedFrames) {
  std::string bytes;
  appendFrame(bytes, FrameType::Request, 1, "AMD-SS SNB test");
  appendFrame(bytes, FrameType::AutoRequest, 2, "NVD-MT none");
  appendFrame(bytes, FrameType::Stats, 3, "");

  FrameReader reader;
  std::vector<Frame> frames;
  for (char byte : bytes) {
    reader.append(&byte, 1);
    Frame frame;
    while (reader.next(frame) == FrameReader::Result::Frame) {
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].id, 1u);
  EXPECT_EQ(frames[0].payload, "AMD-SS SNB test");
  EXPECT_EQ(frames[1].type, FrameType::AutoRequest);
  EXPECT_EQ(frames[1].id, 2u);
  EXPECT_EQ(frames[2].type, FrameType::Stats);
  EXPECT_TRUE(frames[2].payload.empty());
}

TEST(NetWire, MaxIdRoundTrips) {
  std::string bytes;
  const std::uint64_t id = ~0ull;
  appendFrame(bytes, FrameType::Response, id, "x");
  FrameReader reader;
  reader.append(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(reader.next(frame), FrameReader::Result::Frame);
  EXPECT_EQ(frame.id, id);
}

TEST(NetWire, StatusPayloadRoundTrips) {
  std::string bytes;
  appendStatusFrame(bytes, FrameType::Response, 7, Status::Overloaded,
                    "error: admission queue full");
  FrameReader reader;
  reader.append(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(reader.next(frame), FrameReader::Result::Frame);

  Status status = Status::Ok;
  std::string_view text;
  ASSERT_TRUE(splitStatusPayload(frame.payload, status, text));
  EXPECT_EQ(status, Status::Overloaded);
  EXPECT_EQ(text, "error: admission queue full");
}

TEST(NetWire, SplitStatusRejectsEmptyAndOutOfRange) {
  Status status = Status::Ok;
  std::string_view text;
  EXPECT_FALSE(splitStatusPayload("", status, text));
  const char bad[] = {99, 'h', 'i'};
  EXPECT_FALSE(splitStatusPayload(std::string_view(bad, 3), status, text));
}

TEST(NetWire, BadMagicPoisonsTheReader) {
  std::string bytes;
  appendFrame(bytes, FrameType::Request, 1, "x");
  bytes[0] = 'X';  // corrupt the magic
  // A valid frame behind the garbage must NOT be recovered: there is no
  // resynchronisation, the stream is dead.
  appendFrame(bytes, FrameType::Request, 2, "y");

  FrameReader reader;
  reader.append(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(reader.next(frame), FrameReader::Result::Error);
  EXPECT_NE(reader.error().find("magic"), std::string::npos)
      << reader.error();
  EXPECT_EQ(reader.next(frame), FrameReader::Result::Error);
}

TEST(NetWire, UnsupportedVersionIsRejected) {
  std::string bytes;
  appendFrame(bytes, FrameType::Request, 1, "x");
  bytes[4] = 2;  // version field, little-endian low byte

  FrameReader reader;
  reader.append(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(reader.next(frame), FrameReader::Result::Error);
  EXPECT_NE(reader.error().find("version"), std::string::npos)
      << reader.error();
}

TEST(NetWire, UnknownFrameTypeIsRejected) {
  std::string bytes;
  appendFrame(bytes, FrameType::Request, 1, "x");
  bytes[6] = 0x7F;  // type field, little-endian low byte

  FrameReader reader;
  reader.append(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(reader.next(frame), FrameReader::Result::Error);
  EXPECT_NE(reader.error().find("type"), std::string::npos)
      << reader.error();
}

TEST(NetWire, OversizedDeclaredPayloadIsRejectedWithoutBuffering) {
  // Header declaring a payload beyond the bound, with no payload bytes
  // behind it: the decoder must refuse from the header alone instead of
  // waiting for (and buffering) a gigabyte that never comes.
  std::string bytes;
  appendFrame(bytes, FrameType::Request, 1, "");
  const std::uint32_t huge = 2u << 20;
  bytes[16] = static_cast<char>(huge & 0xFF);
  bytes[17] = static_cast<char>((huge >> 8) & 0xFF);
  bytes[18] = static_cast<char>((huge >> 16) & 0xFF);
  bytes[19] = static_cast<char>((huge >> 24) & 0xFF);

  FrameReader reader;
  reader.append(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(reader.next(frame), FrameReader::Result::Error);
  EXPECT_NE(reader.error().find("oversized"), std::string::npos)
      << reader.error();
}

TEST(NetWire, CustomPayloadBoundIsEnforced) {
  std::string bytes;
  appendFrame(bytes, FrameType::Request, 1, std::string(64, 'a'));
  FrameReader reader(/*maxPayload=*/16);
  reader.append(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(reader.next(frame), FrameReader::Result::Error);
}

grover::net::StatsFrame sampleStatsFrame() {
  // Every field non-zero and distinct so a byte transposed anywhere in
  // the layout changes the decoded struct.
  grover::net::StatsFrame f;
  f.uptimeMs = 12345;
  f.admittedNow = 3;
  f.connectionsOpen = 7;
  f.cancelled = 2;
  f.measurements = 41;
  f.measurementsDropped = 5;
  f.measureQueueBacklog = 11;
  f.proofsRun = 17;
  f.proofsRefuted = 4;
  std::uint64_t v = 100;
  const auto fill = [&v](grover::net::StatsCounters& c) {
    c.connectionsAccepted = v++;
    c.connectionsClosed = v++;
    c.framesReceived = v++;
    c.requestsAdmitted = v++;
    c.responsesSent = v++;
    c.rejectedOverload = v++;
    c.rejectedClientCredit = v++;
    c.rejectedShutdown = v++;
    c.protocolErrors = v++;
    c.disconnectedMidRequest = v++;
    c.idleTimeouts = v++;
    c.readBudgetExhausted = v++;
    c.acceptsShed = v++;
  };
  fill(f.totals);
  f.shards.resize(2);
  fill(f.shards[0]);
  fill(f.shards[1]);
  return f;
}

TEST(NetWire, StatsFrameRoundTrips) {
  const grover::net::StatsFrame original = sampleStatsFrame();
  const std::string bytes = grover::net::encodeStatsFrame(original);
  // 4-byte header, 9 u64 health fields (v2 added the two proof gauges),
  // then 13 u64 counters for the totals and each of the two shards.
  EXPECT_EQ(bytes.size(), 4 + 9 * 8 + 3 * (13 * 8));

  grover::net::StatsFrame decoded;
  std::string error;
  ASSERT_TRUE(grover::net::decodeStatsFrame(bytes, decoded, &error))
      << error;
  EXPECT_EQ(decoded, original);
}

TEST(NetWire, StatsFrameWithNoShardsRoundTrips) {
  grover::net::StatsFrame original = sampleStatsFrame();
  original.shards.clear();
  grover::net::StatsFrame decoded;
  ASSERT_TRUE(grover::net::decodeStatsFrame(
      grover::net::encodeStatsFrame(original), decoded, nullptr));
  EXPECT_EQ(decoded, original);
}

TEST(NetWire, StatsFrameTruncationIsRejectedAtEveryLength) {
  // Like the frame decoder, the stats decoder must never read past the
  // bytes it was handed: EVERY proper prefix is an error, not a crash
  // or a half-decoded struct.
  const std::string bytes =
      grover::net::encodeStatsFrame(sampleStatsFrame());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    grover::net::StatsFrame decoded;
    std::string error;
    EXPECT_FALSE(grover::net::decodeStatsFrame(
        std::string_view(bytes.data(), cut), decoded, &error))
        << "prefix of " << cut << " bytes decoded";
    EXPECT_NE(error.find("truncated"), std::string::npos)
        << "cut at " << cut << ": " << error;
  }
}

TEST(NetWire, StatsFrameTrailingBytesAreRejected) {
  std::string bytes = grover::net::encodeStatsFrame(sampleStatsFrame());
  bytes += '\0';
  grover::net::StatsFrame decoded;
  std::string error;
  EXPECT_FALSE(grover::net::decodeStatsFrame(bytes, decoded, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(NetWire, StatsFrameUnknownVersionIsRejected) {
  std::string bytes = grover::net::encodeStatsFrame(sampleStatsFrame());
  bytes[0] = static_cast<char>(grover::net::kStatsFrameVersion + 1);
  grover::net::StatsFrame decoded;
  std::string error;
  EXPECT_FALSE(grover::net::decodeStatsFrame(bytes, decoded, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(NetWire, StatsFrameLyingShardCountIsTruncation) {
  // Poisoned header: the shard count claims more blocks than the bytes
  // carry. The decoder must size-check against the count, not trust it.
  std::string bytes = grover::net::encodeStatsFrame(sampleStatsFrame());
  bytes[2] = static_cast<char>(200);  // shard count, little-endian
  grover::net::StatsFrame decoded;
  std::string error;
  EXPECT_FALSE(grover::net::decodeStatsFrame(bytes, decoded, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(NetWire, StatsBinaryFrameTypesRideTheFrameCodec) {
  // The binary stats payload travels inside an ordinary frame; the
  // codec must pass the new types and the raw bytes through untouched.
  const std::string payload =
      grover::net::encodeStatsFrame(sampleStatsFrame());
  std::string bytes;
  appendFrame(bytes, FrameType::StatsBinary, 5, "");
  appendFrame(bytes, FrameType::StatsBinaryResponse, 5, payload);

  FrameReader reader;
  reader.append(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(reader.next(frame), FrameReader::Result::Frame);
  EXPECT_EQ(frame.type, FrameType::StatsBinary);
  ASSERT_EQ(reader.next(frame), FrameReader::Result::Frame);
  EXPECT_EQ(frame.type, FrameType::StatsBinaryResponse);
  ASSERT_EQ(frame.payload, payload);
  grover::net::StatsFrame decoded;
  EXPECT_TRUE(grover::net::decodeStatsFrame(frame.payload, decoded,
                                            nullptr));
}

TEST(NetWire, PartialHeaderAndPayloadNeedMore) {
  std::string bytes;
  appendFrame(bytes, FrameType::Request, 9, "hello world");

  FrameReader reader;
  Frame frame;
  reader.append(bytes.data(), kHeaderSize - 1);  // header short one byte
  EXPECT_EQ(reader.next(frame), FrameReader::Result::NeedMore);
  reader.append(bytes.data() + kHeaderSize - 1, 1);  // header complete
  EXPECT_EQ(reader.next(frame), FrameReader::Result::NeedMore);
  EXPECT_EQ(reader.buffered(), kHeaderSize);
  reader.append(bytes.data() + kHeaderSize, bytes.size() - kHeaderSize);
  ASSERT_EQ(reader.next(frame), FrameReader::Result::Frame);
  EXPECT_EQ(frame.payload, "hello world");
}

}  // namespace
