// Lexer: tokens, literals, comments, the #define mini-preprocessor.
#include "clc/lexer.h"

#include <gtest/gtest.h>

namespace grover::clc {
namespace {

std::vector<Token> lex(const std::string& src) {
  DiagnosticEngine diags;
  Lexer lexer(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.str();
  return lexer.tokens();
}

std::vector<TokKind> kinds(const std::string& src) {
  std::vector<TokKind> out;
  for (const Token& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEnd) {
  EXPECT_EQ(kinds(""), (std::vector<TokKind>{TokKind::End}));
}

TEST(Lexer, Identifiers) {
  auto tokens = lex("foo _bar baz42");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "foo");
  EXPECT_EQ(tokens[1].text, "_bar");
  EXPECT_EQ(tokens[2].text, "baz42");
}

TEST(Lexer, Keywords) {
  EXPECT_EQ(kinds("__kernel kernel __global local const float4"),
            (std::vector<TokKind>{TokKind::KwKernel, TokKind::KwKernel,
                                  TokKind::KwGlobal, TokKind::KwLocal,
                                  TokKind::KwConst, TokKind::KwFloat4,
                                  TokKind::End}));
}

TEST(Lexer, IntLiterals) {
  auto tokens = lex("0 42 0x1F 7u 9L");
  EXPECT_EQ(tokens[0].intValue, 0);
  EXPECT_EQ(tokens[1].intValue, 42);
  EXPECT_EQ(tokens[2].intValue, 31);
  EXPECT_EQ(tokens[3].intValue, 7);
  EXPECT_EQ(tokens[4].intValue, 9);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(tokens[i].kind, TokKind::IntLiteral);
}

TEST(Lexer, FloatLiterals) {
  auto tokens = lex("1.5 2.0f 3e2 .25f 7f");
  EXPECT_EQ(tokens[0].kind, TokKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[0].floatValue, 1.5);
  EXPECT_FALSE(tokens[0].isFloatSuffix);
  EXPECT_TRUE(tokens[1].isFloatSuffix);
  EXPECT_DOUBLE_EQ(tokens[2].floatValue, 300.0);
  EXPECT_DOUBLE_EQ(tokens[3].floatValue, 0.25);
  EXPECT_EQ(tokens[4].kind, TokKind::FloatLiteral);  // 7f = 7.0f
}

TEST(Lexer, Operators) {
  EXPECT_EQ(kinds("+ ++ += - -- -= << <= < >> >= > == = != ! && & || |"),
            (std::vector<TokKind>{
                TokKind::Plus, TokKind::PlusPlus, TokKind::PlusAssign,
                TokKind::Minus, TokKind::MinusMinus, TokKind::MinusAssign,
                TokKind::Shl, TokKind::LessEq, TokKind::Less, TokKind::Shr,
                TokKind::GreaterEq, TokKind::Greater, TokKind::EqEq,
                TokKind::Assign, TokKind::NotEq, TokKind::Not,
                TokKind::AmpAmp, TokKind::Amp, TokKind::PipePipe,
                TokKind::Pipe, TokKind::End}));
}

TEST(Lexer, CommentsAreSkipped) {
  EXPECT_EQ(kinds("a // line comment\n b /* block\ncomment */ c"),
            (std::vector<TokKind>{TokKind::Identifier, TokKind::Identifier,
                                  TokKind::Identifier, TokKind::End}));
}

TEST(Lexer, UnterminatedBlockCommentIsError) {
  DiagnosticEngine diags;
  Lexer lexer("a /* oops", diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Lexer, DefineExpandsAtUse) {
  auto tokens = lex("#define S 16\nint x[S];");
  // int x [ 16 ] ;
  ASSERT_GE(tokens.size(), 6u);
  EXPECT_EQ(tokens[3].kind, TokKind::IntLiteral);
  EXPECT_EQ(tokens[3].intValue, 16);
}

TEST(Lexer, DefineMultiTokenBody) {
  auto tokens = lex("#define N (4*4)\nN");
  // ( 4 * 4 )
  EXPECT_EQ(tokens[0].kind, TokKind::LParen);
  EXPECT_EQ(tokens[1].intValue, 4);
  EXPECT_EQ(tokens[2].kind, TokKind::Star);
}

TEST(Lexer, DefineReferencesEarlierMacro) {
  auto tokens = lex("#define A 2\n#define B A\nB");
  EXPECT_EQ(tokens[0].kind, TokKind::IntLiteral);
  EXPECT_EQ(tokens[0].intValue, 2);
}

TEST(Lexer, PredefinedFenceFlags) {
  auto tokens = lex("CLK_LOCAL_MEM_FENCE CLK_GLOBAL_MEM_FENCE");
  EXPECT_EQ(tokens[0].intValue, 1);
  EXPECT_EQ(tokens[1].intValue, 2);
}

TEST(Lexer, UnknownDirectiveIsError) {
  DiagnosticEngine diags;
  Lexer lexer("#include <foo>\n", diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Lexer, TracksLineNumbers) {
  auto tokens = lex("a\nbb\n  c");
  EXPECT_EQ(tokens[0].loc.line, 1u);
  EXPECT_EQ(tokens[1].loc.line, 2u);
  EXPECT_EQ(tokens[2].loc.line, 3u);
  EXPECT_EQ(tokens[2].loc.col, 3u);
}

TEST(Lexer, UnexpectedCharacterIsErrorButRecovers) {
  DiagnosticEngine diags;
  Lexer lexer("a @ b", diags);
  EXPECT_TRUE(diags.hasErrors());
  EXPECT_EQ(lexer.tokens().size(), 3u);  // a, b, End
}

}  // namespace
}  // namespace grover::clc
