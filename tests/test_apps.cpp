// The 11 applications of Table I: every kernel compiles, Grover disables
// the selected local buffers, and BOTH versions compute the reference
// result. Parameterized over the application id (the paper's §VI-A
// correctness claim: "after the transformation, each benchmark still runs
// correctly").
#include "apps/app.h"

#include <gtest/gtest.h>

#include "grovercl/harness.h"
#include "ir/verifier.h"
#include "passes/barrier_elim.h"

namespace grover::apps {
namespace {

class AppTest : public ::testing::TestWithParam<std::string> {
 protected:
  const Application& app() const { return applicationById(GetParam()); }
};

TEST_P(AppTest, CompilesAndDeclaresLocalBuffers) {
  KernelPair pair = prepareKernelPair(app());
  ASSERT_NE(pair.originalKernel, nullptr);
  EXPECT_TRUE(passes::usesLocalMemory(*pair.originalKernel));
  // The report covers every declared local buffer.
  for (const std::string& buf : app().localBuffers()) {
    EXPECT_NO_THROW((void)pair.groverResult.forBuffer(buf));
  }
}

TEST_P(AppTest, GroverDisablesSelectedBuffers) {
  KernelPair pair = prepareKernelPair(app());
  std::set<std::string> toDisable = app().buffersToDisable();
  if (toDisable.empty()) {
    for (const std::string& buf : app().localBuffers()) {
      toDisable.insert(buf);
    }
  }
  for (const std::string& buf : toDisable) {
    const grv::BufferResult& r = pair.groverResult.forBuffer(buf);
    EXPECT_TRUE(r.transformed) << buf << ": " << r.reason;
  }
  // Full disabling removes all local traffic and the barriers with it.
  if (toDisable.size() == app().localBuffers().size()) {
    EXPECT_FALSE(passes::usesLocalMemory(*pair.transformedKernel));
  } else {
    EXPECT_TRUE(passes::usesLocalMemory(*pair.transformedKernel));
  }
  ir::verifyFunction(*pair.transformedKernel);
}

TEST_P(AppTest, OriginalMatchesReference) {
  KernelPair pair = prepareKernelPair(app());
  auto err = runAndValidate(app(), *pair.originalKernel, Scale::Test);
  EXPECT_FALSE(err.has_value()) << *err;
}

TEST_P(AppTest, TransformedMatchesReference) {
  KernelPair pair = prepareKernelPair(app());
  auto err = runAndValidate(app(), *pair.transformedKernel, Scale::Test);
  EXPECT_FALSE(err.has_value()) << *err;
}

TEST_P(AppTest, IndexReportIsPopulated) {
  KernelPair pair = prepareKernelPair(app());
  for (const auto& b : pair.groverResult.buffers) {
    if (!b.transformed) continue;
    EXPECT_FALSE(b.lsIndex.empty());
    EXPECT_FALSE(b.llIndex.empty());
    EXPECT_FALSE(b.nglIndex.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppTest,
    ::testing::Values("AMD-SS", "AMD-MT", "NVD-MT", "AMD-RG", "AMD-MM",
                      "NVD-MM-A", "NVD-MM-B", "NVD-MM-AB", "NVD-NBody",
                      "PAB-ST", "ROD-SC"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(AppRegistry, HasElevenApplications) {
  EXPECT_EQ(allApplications().size(), 11u);
}

TEST(AppRegistry, IdsAreUniqueAndLookupWorks) {
  std::set<std::string> ids;
  for (const auto& app : allApplications()) {
    EXPECT_TRUE(ids.insert(app->id()).second) << app->id();
    EXPECT_EQ(&applicationById(app->id()), app.get());
    EXPECT_FALSE(app->datasetDescription().empty());
    EXPECT_FALSE(app->source().empty());
  }
  EXPECT_THROW(applicationById("NOPE"), GroverError);
}

TEST(AppRegistry, MmVariantsShareTheKernel) {
  EXPECT_EQ(applicationById("NVD-MM-A").source(),
            applicationById("NVD-MM-B").source());
  EXPECT_EQ(applicationById("NVD-MM-A").buffersToDisable(),
            (std::set<std::string>{"As"}));
  EXPECT_EQ(applicationById("NVD-MM-B").buffersToDisable(),
            (std::set<std::string>{"Bs"}));
  EXPECT_TRUE(applicationById("NVD-MM-AB").buffersToDisable().empty());
}

TEST(AppHelpers, FillRandomIsDeterministicAndBounded) {
  std::vector<float> a(100);
  std::vector<float> b(100);
  fillRandom(a, 42);
  fillRandom(b, 42);
  EXPECT_EQ(a, b);
  fillRandom(b, 43);
  EXPECT_NE(a, b);
  for (float v : a) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LT(v, 1.0F);
  }
}

}  // namespace
}  // namespace grover::apps
