// Textual IR parser: hand-written fixtures plus print→parse→print
// round-trips over every compiled benchmark kernel.
#include "ir/ir_parser.h"

#include <gtest/gtest.h>

#include "apps/app.h"
#include "grover/grover_pass.h"
#include "grovercl/compiler.h"
#include "ir/printer.h"
#include "rt/interpreter.h"
#include "support/diagnostics.h"

namespace grover::ir {
namespace {

TEST(IrParser, MinimalKernel) {
  Context ctx;
  auto module = parseModule(ctx, R"(
kernel void @k(f32 global* %out) {
entry:
  %gid = call i32 @get_global_id(i32 0)
  %p = gep f32 global* %out, i32 %gid
  store f32 1.5, f32 global* %p
  ret void
}
)");
  Function* fn = module->findFunction("k");
  ASSERT_NE(fn, nullptr);
  EXPECT_TRUE(fn->isKernel());
  EXPECT_EQ(fn->numArgs(), 1u);
  EXPECT_EQ(fn->instructionCount(), 4u);
}

TEST(IrParser, ControlFlowAndPhis) {
  Context ctx;
  auto module = parseModule(ctx, R"(
kernel void @loop(f32 global* %out, i32 %n) {
entry:
  br %cond
cond:
  %i = phi i32 [0, %entry], [%inc, %body]
  %acc = phi f32 [0, %entry], [%newacc, %body]
  %cmp = icmp slt i32 %i, %n
  br i1 %cmp, %body, %exit
body:
  %fi = sitofp i32 %i to f32
  %newacc = fadd f32 %acc, %fi
  %inc = add i32 %i, 1
  br %cond
exit:
  %p = gep f32 global* %out, i32 0
  store f32 %acc, f32 global* %p
  ret void
}
)");
  Function* fn = module->findFunction("loop");
  ASSERT_NE(fn, nullptr);
  // Execute it: sum of 0..n-1 as floats.
  rt::Buffer out = rt::Buffer::zeros<float>(1);
  rt::Launch launch(*fn, rt::NDRange::make1D(1, 1),
                    {rt::KernelArg::buffer(&out), rt::KernelArg::int32(5)});
  launch.run();
  EXPECT_FLOAT_EQ(out.at<float>(0), 10.0F);  // 0+1+2+3+4
}

TEST(IrParser, LocalAllocaAndBarrier) {
  Context ctx;
  auto module = parseModule(ctx, R"(
kernel void @rev(i32 global* %data) {
entry:
  %lm = alloca i32, count 8, addrspace(local)
  %lx = call i32 @get_local_id(i32 0)
  %gid = call i32 @get_global_id(i32 0)
  %src = gep i32 global* %data, i32 %gid
  %v = load i32, i32 global* %src
  %dst = gep i32 local* %lm, i32 %lx
  store i32 %v, i32 local* %dst
  call void @barrier(i32 1)
  %rlx = sub i32 7, %lx
  %rp = gep i32 local* %lm, i32 %rlx
  %rv = load i32, i32 local* %rp
  store i32 %rv, i32 global* %src
  ret void
}
)");
  Function* fn = module->findFunction("rev");
  rt::Buffer data =
      rt::Buffer::fromVector(std::vector<std::int32_t>{1, 2, 3, 4, 5, 6, 7, 8});
  rt::Launch launch(*fn, rt::NDRange::make1D(8, 8),
                    {rt::KernelArg::buffer(&data)});
  launch.run();
  EXPECT_EQ(data.toVector<std::int32_t>(),
            (std::vector<std::int32_t>{8, 7, 6, 5, 4, 3, 2, 1}));
}

TEST(IrParser, RejectsUnknownValue) {
  Context ctx;
  EXPECT_THROW(parseModule(ctx, R"(
kernel void @k(i32 global* %out) {
entry:
  store i32 %nope, i32 global* %out
  ret void
}
)"),
               GroverError);
}

TEST(IrParser, RejectsUnknownInstruction) {
  Context ctx;
  EXPECT_THROW(parseModule(ctx, R"(
kernel void @k() {
entry:
  frobnicate i32 1, 2
  ret void
}
)"),
               GroverError);
}

TEST(IrParser, RejectsMalformedIr) {
  Context ctx;
  // Verifier runs on the parsed module: missing terminator must throw.
  EXPECT_THROW(parseModule(ctx, R"(
kernel void @k(i32 %a) {
entry:
  %x = add i32 %a, 1
}
)"),
               GroverError);
}

TEST(IrParser, VectorTypesRoundTrip) {
  Context ctx;
  auto module = parseModule(ctx, R"(
kernel void @v(<4 x f32> global* %buf) {
entry:
  %p = gep <4 x f32> global* %buf, i32 0
  %v = load <4 x f32>, <4 x f32> global* %p
  %s = extractelement <4 x f32> %v, i32 2
  %w = insertelement <4 x f32> %v, f32 %s, i32 0
  store <4 x f32> %w, <4 x f32> global* %p
  ret void
}
)");
  EXPECT_NE(module->findFunction("v"), nullptr);
}

// Round-trip property: print → parse → print is a fixed point for every
// compiled benchmark kernel, before and after the Grover transformation.
class RoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(RoundTrip, PrintParsePrintIsStable) {
  const apps::Application& app = apps::applicationById(GetParam());
  for (const bool transform : {false, true}) {
    Program program = compile(app.source());
    Function* fn = program.kernel(app.kernelName());
    if (transform) {
      grv::GroverOptions options;
      options.onlyBuffers = app.buffersToDisable();
      grv::runGrover(*fn, options);
    }
    const std::string printed = printFunction(*fn);
    Context ctx2;
    auto reparsed = parseModule(ctx2, printed);
    Function* fn2 = reparsed->findFunction(app.kernelName());
    ASSERT_NE(fn2, nullptr);
    EXPECT_EQ(printFunction(*fn2), printed)
        << "round-trip mismatch (transform=" << transform << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Apps, RoundTrip,
    ::testing::Values("NVD-MT", "AMD-SS", "NVD-MM-AB", "PAB-ST", "ROD-SC",
                      "NVD-NBody"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace grover::ir
