// Grover edge cases beyond the 11 benchmarks: 3-D indexes, shift-based
// strides, offsets, double buffers, global-id staging, scaled indexes.
#include <gtest/gtest.h>

#include "grover/grover_pass.h"
#include "grovercl/compiler.h"
#include "ir/verifier.h"
#include "rt/interpreter.h"

namespace grover::grv {
namespace {

/// Compile, transform, execute both versions over the NDRange and expect
/// identical output buffers.
void expectEquivalent(const std::string& src, const std::string& kernelName,
                      const rt::NDRange& range, std::size_t ioFloats,
                      bool expectTransform = true) {
  std::vector<float> input(ioFloats);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>((i * 2654435761u) % 1000) * 0.25F;
  }
  auto runVersion = [&](bool transform) {
    Program program = compile(src);
    ir::Function* fn = program.kernel(kernelName);
    EXPECT_NE(fn, nullptr);
    if (transform) {
      GroverResult result = runGrover(*fn);
      EXPECT_EQ(result.anyTransformed, expectTransform)
          << (result.buffers.empty() ? "no buffers"
                                     : result.buffers[0].reason);
      ir::verifyFunction(*fn);
    }
    rt::Buffer in = rt::Buffer::fromVector(input);
    rt::Buffer out = rt::Buffer::zeros<float>(ioFloats);
    rt::Launch launch(*fn, range,
                      {rt::KernelArg::buffer(&out), rt::KernelArg::buffer(&in)});
    launch.run();
    return out.toVector<float>();
  };
  EXPECT_EQ(runVersion(false), runVersion(true));
}

TEST(GroverEdge, ThreeDimensionalTile) {
  const char* src = R"(
__kernel void t3(__global float* out, __global float* in) {
  __local float tile[4][4][4];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int lz = get_local_id(2);
  int flat = (get_global_id(2)*16 + get_global_id(1)*4) + get_global_id(0);
  tile[lz][ly][lx] = in[flat];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[flat] = tile[lx][lz][ly];   // 3-D permutation
})";
  rt::NDRange range;
  range.dims = 3;
  range.global = {4, 4, 4};
  range.local = {4, 4, 4};
  expectEquivalent(src, "t3", range, 64);
}

TEST(GroverEdge, ShiftBasedIndexing) {
  const char* src = R"(
__kernel void sh(__global float* out, __global float* in) {
  __local float tile[8][8];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  tile[ly][lx] = in[(get_global_id(1) << 5) + get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[(get_global_id(1) << 5) + get_global_id(0)] = tile[lx][ly];
})";
  expectEquivalent(src, "sh", rt::NDRange::make2D(32, 32, 8, 8), 32 * 32);
}

TEST(GroverEdge, ConstantOffsetInBothIndexes) {
  const char* src = R"(
__kernel void off(__global float* out, __global float* in) {
  __local float tile[20];
  int lx = get_local_id(0);
  tile[lx + 2] = in[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = tile[17 - lx];
})";
  expectEquivalent(src, "off", rt::NDRange::make1D(64, 16), 64);
}

TEST(GroverEdge, TwoBuffersBothTransformed) {
  const char* src = R"(
__kernel void two(__global float* out, __global float* in) {
  __local float a[16];
  __local float b[16];
  int lx = get_local_id(0);
  a[lx] = in[get_global_id(0)];
  b[15 - lx] = in[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = a[15 - lx] + b[lx];
})";
  expectEquivalent(src, "two", rt::NDRange::make1D(64, 16), 64);
}

TEST(GroverEdge, ScaledLocalIdIndex) {
  // Each work-item stages two elements at 2*lx and 2*lx+1.
  const char* src = R"(
__kernel void sc2(__global float* out, __global float* in) {
  __local float tile[32];
  int lx = get_local_id(0);
  int base = get_group_id(0)*32;
  tile[2*lx]     = in[base + 2*lx];
  tile[2*lx + 1] = in[base + 2*lx + 1];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[base + 2*lx]     = tile[31 - 2*lx];
  out[base + 2*lx + 1] = tile[30 - 2*lx];
})";
  expectEquivalent(src, "sc2", rt::NDRange::make1D(64, 16), 128);
}

TEST(GroverEdge, RefusesWhenRaceWouldBeIntroduced) {
  // The GL depends on lx but the LS index does not (all work-items write
  // slot ly): the dim-0 index is not determined — must refuse.
  const char* src = R"(
__kernel void race(__global float* out, __global float* in) {
  __local float tile[16];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  tile[ly] = in[get_global_id(1)*64 + get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(1)*64 + get_global_id(0)] = tile[ly];
})";
  Program program = compile(src);
  ir::Function* fn = program.kernel("race");
  GroverResult result = runGrover(*fn);
  EXPECT_FALSE(result.anyTransformed);
  ir::verifyFunction(*fn);
}

TEST(GroverEdge, NonAffineLocalLoadIndexRefused) {
  const char* src = R"(
__kernel void na(__global float* out, __global float* in) {
  __local float tile[16];
  int lx = get_local_id(0);
  tile[lx] = in[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = tile[(lx * lx) % 16];
})";
  Program program = compile(src);
  ir::Function* fn = program.kernel("na");
  GroverResult result = runGrover(*fn);
  EXPECT_FALSE(result.anyTransformed);
  EXPECT_NE(result.buffers[0].reason.find("affine"), std::string::npos);
}

TEST(GroverEdge, KernelWithoutLocalMemoryIsNoOp) {
  Program program = compile(R"(
__kernel void plain(__global float* out) {
  out[get_global_id(0)] = 3.0f;
})");
  ir::Function* fn = program.kernel("plain");
  GroverResult result = runGrover(*fn);
  EXPECT_TRUE(result.buffers.empty());
  EXPECT_FALSE(result.anyTransformed);
}

TEST(GroverEdge, GroupIdOffsetsSurviveSubstitution) {
  // Neighbor-group staging: group g stages from block g+1.
  const char* src = R"(
__kernel void nb(__global float* out, __global float* in) {
  __local float tile[16];
  int lx = get_local_id(0);
  int wx = get_group_id(0);
  tile[lx] = in[(wx + 1)*16 + lx];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = tile[15 - lx];
})";
  // 3 groups read blocks 1..3 → input needs 4 blocks; outputs 48 floats.
  std::vector<float> input(64);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>(i);
  }
  auto runVersion = [&](bool transform) {
    Program program = compile(src);
    ir::Function* fn = program.kernel("nb");
    if (transform) {
      EXPECT_TRUE(runGrover(*fn).anyTransformed);
    }
    rt::Buffer in = rt::Buffer::fromVector(input);
    rt::Buffer out = rt::Buffer::zeros<float>(48);
    rt::Launch launch(*fn, rt::NDRange::make1D(48, 16),
                      {rt::KernelArg::buffer(&out), rt::KernelArg::buffer(&in)});
    launch.run();
    return out.toVector<float>();
  };
  EXPECT_EQ(runVersion(false), runVersion(true));
}

TEST(GroverEdge, CseFoldsRematerializedQueries) {
  // After the transformation + cleanup, each id query appears at most
  // once in the kernel.
  Program program = compile(R"(
#define S 16
__kernel void mt(__global float* out, __global float* in, int W, int H) {
  __local float tile[S][S];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int wx = get_group_id(0);
  int wy = get_group_id(1);
  tile[ly][lx] = in[(wy*S + ly)*W + (wx*S + lx)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[(wx*S + ly)*H + (wy*S + lx)] = tile[lx][ly];
})");
  ir::Function* fn = program.kernel("mt");
  runGrover(*fn);
  std::map<std::pair<int, int>, int> queryCount;
  for (ir::BasicBlock* bb : fn->blockList()) {
    for (const auto& inst : *bb) {
      if (const auto* call = ir::dyn_cast<ir::CallInst>(inst.get())) {
        if (auto dim = call->constDimension()) {
          ++queryCount[{static_cast<int>(call->builtin()),
                        static_cast<int>(*dim)}];
        }
      }
    }
  }
  for (const auto& [key, count] : queryCount) {
    EXPECT_EQ(count, 1) << "builtin " << key.first << " dim " << key.second;
  }
}

TEST(GroverEdge, ReportComesFromWinningStrideAttempt) {
  // The buffer is declared [16][16] but indexed with a row pitch of 20, so
  // the declared-stride attempt fails to split and the '+ -> *' inferred
  // strides win. The per-buffer report must describe the winning attempt,
  // not carry leftovers from the failed one.
  const char* src = R"(
__kernel void pitch(__global float* out, __global float* in) {
  __local float tile[16][16];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int flat = get_global_id(1) * 16 + get_global_id(0);
  tile[0][ly * 20 + lx] = in[flat];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[flat] = tile[0][ly * 20 + (15 - lx)];
})";
  expectEquivalent(src, "pitch", rt::NDRange::make2D(16, 8, 16, 8), 16 * 8);

  Program program = compile(src);
  ir::Function* fn = program.kernel("pitch");
  GroverResult result = runGrover(*fn);
  ASSERT_TRUE(result.anyTransformed);
  const BufferResult& br = result.forBuffer("tile");
  EXPECT_TRUE(br.transformed);
  // Winning split is 2-D (ly, lx) via the inferred stride 20; the declared
  // 16x16 split would have produced different dimension terms.
  EXPECT_NE(br.lsIndex.find("ly"), std::string::npos) << br.lsIndex;
  EXPECT_NE(br.lsIndex.find("lx"), std::string::npos) << br.lsIndex;
  EXPECT_NE(br.llIndex.find("lx"), std::string::npos) << br.llIndex;
  EXPECT_FALSE(br.solution.empty());
  EXPECT_NE(br.solution.find("lx"), std::string::npos) << br.solution;
}

}  // namespace
}  // namespace grover::grv
