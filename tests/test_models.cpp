// CPU and GPU timing models: coalescing counts, SPM bank conflicts,
// platform-observable behaviors that drive the paper's results.
#include <gtest/gtest.h>

#include "grovercl/compiler.h"
#include "perf/cpu_model.h"
#include "perf/estimator.h"
#include "perf/gpu_model.h"

namespace grover::perf {
namespace {

rt::MemAccess globalAccess(std::uint64_t addr, std::uint32_t wi,
                           std::uint32_t instSlot, bool write = false) {
  rt::MemAccess a;
  a.space = ir::AddrSpace::Global;
  a.address = addr;
  a.size = 4;
  a.isWrite = write;
  a.group = 0;
  a.workItem = wi;
  a.instSlot = instSlot;
  return a;
}

rt::MemAccess localAccess(std::uint64_t addr, std::uint32_t wi,
                          std::uint32_t instSlot) {
  rt::MemAccess a = globalAccess(addr, wi, instSlot);
  a.space = ir::AddrSpace::Local;
  return a;
}

TEST(GpuModel, CoalescedWarpIsOneTransaction) {
  GpuModel model(fermi());
  for (std::uint32_t wi = 0; wi < 32; ++wi) {
    model.onAccess(globalAccess(0x1000 + wi * 4, wi, /*slot=*/7));
  }
  model.onGroupFinish(0, rt::InstCounters{});
  EXPECT_EQ(model.globalTransactions(), 1u);
}

TEST(GpuModel, StridedWarpSplitsIntoManyTransactions) {
  GpuModel model(fermi());
  for (std::uint32_t wi = 0; wi < 32; ++wi) {
    model.onAccess(globalAccess(0x1000 + wi * 4096, wi, 7));
  }
  model.onGroupFinish(0, rt::InstCounters{});
  EXPECT_EQ(model.globalTransactions(), 32u);
}

TEST(GpuModel, BroadcastIsOneTransaction) {
  GpuModel model(fermi());
  for (std::uint32_t wi = 0; wi < 32; ++wi) {
    model.onAccess(globalAccess(0x1000, wi, 7));  // same address
  }
  model.onGroupFinish(0, rt::InstCounters{});
  EXPECT_EQ(model.globalTransactions(), 1u);
}

TEST(GpuModel, SeparateWarpsDoNotCoalesceTogether) {
  GpuModel model(fermi());
  // 64 work-items = 2 warps; consecutive addresses within each warp.
  for (std::uint32_t wi = 0; wi < 64; ++wi) {
    model.onAccess(globalAccess(0x1000 + wi * 4, wi, 7));
  }
  model.onGroupFinish(0, rt::InstCounters{});
  EXPECT_EQ(model.globalTransactions(), 2u);
}

TEST(GpuModel, DistinctOccurrencesAreDistinctInstructions) {
  GpuModel model(fermi());
  // One work-item executes the same load twice (a loop): the two
  // executions must not coalesce with each other.
  model.onAccess(globalAccess(0x1000, 0, 7));
  model.onAccess(globalAccess(0x2000, 0, 7));
  model.onGroupFinish(0, rt::InstCounters{});
  EXPECT_EQ(model.globalTransactions(), 2u);
}

TEST(GpuModel, SpmConflictFreeVsConflicted) {
  const PlatformSpec spec = fermi();
  GpuModel conflictFree(spec);
  // 32 lanes hitting 32 different banks (stride 4B).
  for (std::uint32_t wi = 0; wi < 32; ++wi) {
    conflictFree.onAccess(localAccess(wi * 4, wi, 9));
  }
  conflictFree.onGroupFinish(0, rt::InstCounters{});

  GpuModel conflicted(spec);
  // 32 lanes striding 128B: every word maps to bank 0 → 32-way conflict.
  for (std::uint32_t wi = 0; wi < 32; ++wi) {
    conflicted.onAccess(localAccess(wi * 128, wi, 9));
  }
  conflicted.onGroupFinish(0, rt::InstCounters{});

  EXPECT_GT(conflicted.spmCyclesTotal(),
            conflictFree.spmCyclesTotal() * 16);
}

TEST(GpuModel, Wavefront64CoalescesWider) {
  GpuModel model(tahiti());  // 64-lane wavefronts
  for (std::uint32_t wi = 0; wi < 64; ++wi) {
    model.onAccess(globalAccess(0x1000 + wi * 4, wi, 7));
  }
  model.onGroupFinish(0, rt::InstCounters{});
  EXPECT_EQ(model.globalTransactions(), 2u);  // 256B over 128B segments
}

TEST(CpuModel, LocalArenaIsReusedPerThread) {
  // Two groups on one modeled thread: the second group's local traffic
  // must hit the cache warmed by the first.
  PlatformSpec spec = snb();
  spec.hwThreads = 1;
  CpuModel model(spec);
  for (int group = 0; group < 2; ++group) {
    for (std::uint32_t wi = 0; wi < 16; ++wi) {
      rt::MemAccess a = localAccess(wi * 4, wi, 3);
      a.group = static_cast<std::uint32_t>(group);
      model.onAccess(a);
    }
    model.onGroupFinish(static_cast<std::uint32_t>(group),
                        rt::InstCounters{});
  }
  EXPECT_GT(model.l1HitRate(), 0.9);  // only the first line misses
}

TEST(CpuModel, BusiestThreadBoundsTotal) {
  PlatformSpec spec = snb();
  spec.hwThreads = 2;
  CpuModel model(spec);
  rt::InstCounters heavy;
  heavy.intAlu = 1000;
  // Three groups round-robin onto 2 threads: thread 0 gets two groups.
  model.onGroupFinish(0, heavy);
  model.onGroupFinish(1, heavy);
  model.onGroupFinish(2, heavy);
  const double total = model.totalCycles();
  const double perGroup = 1000 * spec.cpi + spec.groupOverheadCycles;
  EXPECT_DOUBLE_EQ(total, 2 * perGroup);
}

TEST(CpuModel, BarrierCostCharged) {
  PlatformSpec spec = snb();
  CpuModel model(spec);
  rt::InstCounters counters;
  counters.barrier = 10;
  model.onGroupFinish(0, counters);
  EXPECT_GE(model.totalCycles(), 10 * spec.barrierCycles);
}

TEST(Estimator, ClassifyThreshold) {
  EXPECT_EQ(classify(1.10), Outcome::Gain);
  EXPECT_EQ(classify(0.90), Outcome::Loss);
  EXPECT_EQ(classify(1.04), Outcome::Similar);
  EXPECT_EQ(classify(0.96), Outcome::Similar);
  EXPECT_EQ(classify(1.2, 0.3), Outcome::Similar);  // custom threshold
}

TEST(Estimator, NormalizedPerformanceOrientation) {
  // np > 1 ⇔ the no-local-memory version is faster (fewer cycles).
  EXPECT_GT(normalizedPerformance(200, 100), 1.0);
  EXPECT_LT(normalizedPerformance(100, 200), 1.0);
}

TEST(Estimator, EndToEndOnTinyKernel) {
  auto program = compile(R"(
__kernel void k(__global float* out) {
  out[get_global_id(0)] = 1.0f;
})");
  ir::Function* fn = program.kernel("k");
  rt::Buffer out = rt::Buffer::zeros<float>(64);
  for (const PlatformSpec& p : allPlatforms()) {
    PerfEstimate est = estimate(p, *fn, rt::NDRange::make1D(64, 16),
                                {rt::KernelArg::buffer(&out)});
    EXPECT_GT(est.cycles, 0) << p.name;
    EXPECT_EQ(est.counters.globalStore, 64u) << p.name;
  }
}

TEST(Estimator, SamplingScalesCycles) {
  auto program = compile(R"(
__kernel void k(__global float* out) {
  out[get_global_id(0)] = 2.0f;
})");
  ir::Function* fn = program.kernel("k");
  rt::Buffer out1 = rt::Buffer::zeros<float>(1024);
  PerfEstimate full = estimate(snb(), *fn, rt::NDRange::make1D(1024, 16),
                               {rt::KernelArg::buffer(&out1)}, 1);
  rt::Buffer out2 = rt::Buffer::zeros<float>(1024);
  PerfEstimate sampled = estimate(snb(), *fn, rt::NDRange::make1D(1024, 16),
                                  {rt::KernelArg::buffer(&out2)}, 4);
  // Sampled estimate lands within 2x of the full estimate (homogeneous
  // groups; cache state differs slightly).
  EXPECT_GT(sampled.cycles, full.cycles * 0.5);
  EXPECT_LT(sampled.cycles, full.cycles * 2.0);
}

TEST(Platforms, SpecsAreSane) {
  for (const PlatformSpec& p : allPlatforms()) {
    EXPECT_FALSE(p.name.empty());
    if (p.kind == PlatformKind::CpuCacheOnly) {
      EXPECT_GE(p.privateLevels.size(), 1u);
      EXPECT_GT(p.hwThreads, 0u);
      EXPECT_GT(p.memCycles, p.privateLevels[0].hitCycles);
    } else {
      EXPECT_TRUE(p.warpSize == 32 || p.warpSize == 64);
      EXPECT_GT(p.transactionCycles, 0);
    }
  }
  EXPECT_EQ(cacheOnlyPlatforms().size(), 3u);
  EXPECT_EQ(allPlatforms().size(), 6u);
}

}  // namespace
}  // namespace grover::perf
