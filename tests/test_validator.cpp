// The post-Grover semantic validator: a correct transform passes cleanly,
// and three hand-built *wrong* transforms (the kinds of bugs the pass
// could realistically introduce) are each rejected by the matching check.
#include "check/validator.h"

#include <gtest/gtest.h>

#include "grover/grover_pass.h"
#include "grovercl/compiler.h"
#include "ir/builder.h"

namespace grover::check {
namespace {

using namespace ir;

const char* kCacheKernel = R"(
__kernel void k(__global float* out, __global float* in) {
  __local float tile[16];
  int lx = get_local_id(0);
  tile[lx] = in[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = tile[15 - lx];
})";

TEST(Validator, CorrectTransformPasses) {
  Program program = compile(kCacheKernel);
  Function* fn = program.kernel("k");
  grv::GroverResult result = grv::runGrover(*fn);
  ASSERT_TRUE(result.anyTransformed);
  const ValidationReport report = validateTransform(*fn, result);
  EXPECT_TRUE(report.ok()) << report.str();
  EXPECT_EQ(report.str(), "validation OK");
}

TEST(Validator, RunGroverWithValidateOptionIsClean) {
  Program program = compile(kCacheKernel);
  Function* fn = program.kernel("k");
  grv::GroverOptions options;
  options.validate = true;
  EXPECT_NO_THROW({
    auto result = grv::runGrover(*fn, options);
    EXPECT_TRUE(result.anyTransformed);
  });
}

/// Wrong transform #1: the pass claims buffer "tile" was transformed but a
/// local load through it survived (a stale LL).
TEST(Validator, DetectsStaleLocalAccess) {
  Context ctx;
  Module module(ctx, "m");
  Function* fn = module.addFunction("k", ctx.voidTy(), true);
  Argument* out =
      fn->addArgument(ctx.pointerTy(ctx.floatTy(), AddrSpace::Global), "out");
  BasicBlock* bb = fn->addBlock("entry");
  IRBuilder b(ctx);
  b.setInsertPoint(bb);
  AllocaInst* tile =
      b.createAlloca(ctx.floatTy(), 16, AddrSpace::Local, "tile");
  Value* lx = b.createIdQuery(Builtin::GetLocalId, 0, "lx");
  LoadInst* stale = b.createLoad(b.createGep(tile, lx), "ll");
  b.createStore(stale, b.createGep(out, lx));
  b.createRetVoid();

  grv::GroverResult result;
  grv::BufferResult br;
  br.bufferName = "tile";
  br.transformed = true;
  result.buffers.push_back(br);
  result.anyTransformed = true;

  const ValidationReport report = validateTransform(*fn, result);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("stale-local-access")) << report.str();
  EXPECT_NE(report.str().find("tile"), std::string::npos);
}

/// Wrong transform #2: barriers were removed although a second local
/// buffer still carries a live store -> barrier -> load chain.
TEST(Validator, DetectsBarrierRemovalWithLiveLocalBuffer) {
  Context ctx;
  Module module(ctx, "m");
  Function* fn = module.addFunction("k", ctx.voidTy(), true);
  Argument* out =
      fn->addArgument(ctx.pointerTy(ctx.floatTy(), AddrSpace::Global), "out");
  BasicBlock* bb = fn->addBlock("entry");
  IRBuilder b(ctx);
  b.setInsertPoint(bb);
  AllocaInst* scratch =
      b.createAlloca(ctx.floatTy(), 16, AddrSpace::Local, "scratch");
  Value* lx = b.createIdQuery(Builtin::GetLocalId, 0, "lx");
  b.createStore(ctx.getFloat(1.0F), b.createGep(scratch, lx));
  // Note: no barrier instruction left — the buggy pass deleted it even
  // though the load below reads another work-item's slot.
  LoadInst* crossItem = b.createLoad(b.createGep(scratch, lx), "x");
  b.createStore(crossItem, b.createGep(out, lx));
  b.createRetVoid();

  grv::GroverResult result;
  result.anyTransformed = true;
  result.barriersRemoved = true;

  const ValidationReport report = validateTransform(*fn, result);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("barrier-safety")) << report.str();
}

/// Wrong transform #3: the emitted nGL was hoisted above one of the index
/// definitions it consumes.
TEST(Validator, DetectsNglAboveItsDefinition) {
  Context ctx;
  Module module(ctx, "m");
  Function* fn = module.addFunction("k", ctx.voidTy(), true);
  Argument* out =
      fn->addArgument(ctx.pointerTy(ctx.floatTy(), AddrSpace::Global), "out");
  Argument* in =
      fn->addArgument(ctx.pointerTy(ctx.floatTy(), AddrSpace::Global), "in");
  BasicBlock* bb = fn->addBlock("entry");
  IRBuilder b(ctx);
  b.setInsertPoint(bb);
  Value* lx = b.createIdQuery(Builtin::GetLocalId, 0, "lx");
  GepInst* gep = b.createGep(in, lx);  // placeholder index, patched below
  LoadInst* ngl = b.createLoad(gep, "ngl");
  // The index the nGL should use is defined *after* the load.
  Value* idx = b.createAdd(lx, ctx.getInt32(1));
  gep->setOperand(1, idx);
  b.createStore(ngl, b.createGep(out, lx));
  b.createRetVoid();

  grv::GroverResult result;
  result.anyTransformed = true;

  const ValidationReport report = validateTransform(*fn, result);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("ngl-dominance")) << report.str();
  // The plain IR verifier flags the same defect independently.
  EXPECT_TRUE(report.has("verifier")) << report.str();
}

TEST(Validator, ReportRendersEveryIssue) {
  ValidationReport report;
  report.issues.push_back({"barrier-safety", "m1"});
  report.issues.push_back({"verifier", "m2"});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("verifier"));
  EXPECT_FALSE(report.has("ngl-dominance"));
  const std::string text = report.str();
  EXPECT_NE(text.find("2 validation issue(s)"), std::string::npos);
  EXPECT_NE(text.find("[barrier-safety] m1"), std::string::npos);
  EXPECT_NE(text.find("[verifier] m2"), std::string::npos);
}

}  // namespace
}  // namespace grover::check
