// In-process serving tests: a real Server event loop on an ephemeral
// loopback port (run() on its own thread), real Client sockets driving
// it. Covers the concurrency properties the daemon exists for —
// single-flight across connections, shared policy warmth — and the
// failure modes it must survive: malformed and oversized frames,
// clients vanishing mid-request, admission-queue overflow, and a drain
// that completes in-flight work.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/resource.h>
#include <unistd.h>

#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/compile_service.h"
#include "support/diagnostics.h"

namespace {

using grover::GroverError;
using grover::net::Client;
using grover::net::Frame;
using grover::net::FrameType;
using grover::net::Server;
using grover::net::ServerConfig;
using grover::net::ServerStats;
using grover::net::Status;
using grover::service::CompileService;
using grover::service::ServiceConfig;
using grover::service::ServiceStats;

/// One service + one server + the event loop on a background thread.
struct Serving {
  CompileService service;
  Server server;
  std::thread loop;

  explicit Serving(ServerConfig serverConfig = {},
                   ServiceConfig serviceConfig = {})
      : service(serviceConfig), server(service, serverConfig) {
    server.bind();
    loop = std::thread([this] { server.run(); });
  }

  ~Serving() { stop(); }

  void stop() {
    server.requestStop();
    if (loop.joinable()) loop.join();
  }

  [[nodiscard]] std::string addr() const {
    return "127.0.0.1:" + std::to_string(server.port());
  }
};

struct Reply {
  std::uint64_t id = 0;
  Status status = Status::Ok;
  std::string text;
};

Reply readReply(Client& client) {
  const Frame frame = client.readFrame();
  Reply r;
  r.id = frame.id;
  std::string_view text;
  EXPECT_TRUE(grover::net::splitStatusPayload(frame.payload, r.status, text))
      << "unsplittable payload on frame id " << frame.id;
  r.text = std::string(text);
  return r;
}

Reply request(Client& client, const std::string& line, std::uint64_t id,
              FrameType type = FrameType::Request) {
  client.sendFrame(type, id, line);
  return readReply(client);
}

/// Spin until `predicate` holds or ~5 s pass (completions cross threads;
/// stats are eventually consistent with the wire).
template <typename Predicate>
bool eventually(Predicate predicate) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

TEST(NetServing, RoundTripAndPipeliningOnOneConnection) {
  Serving s;
  Client client;
  client.connect(s.addr());

  // Two requests pipelined before any read; ids match them back up.
  client.sendFrame(FrameType::Request, 10, "NVD-MT SNB test");
  client.sendFrame(FrameType::Request, 11, "AMD-SS SNB test");
  const Reply a = readReply(client);
  const Reply b = readReply(client);
  EXPECT_EQ(a.status, Status::Ok) << a.text;
  EXPECT_EQ(b.status, Status::Ok) << b.text;
  EXPECT_TRUE((a.id == 10 && b.id == 11) || (a.id == 11 && b.id == 10));
  EXPECT_EQ(a.text.rfind("ok, ", 0), 0u) << a.text;
}

TEST(NetServing, MalformedGrammarLineFailsTheRequestNotTheConnection) {
  Serving s;
  Client client;
  client.connect(s.addr());

  const Reply bad = request(client, "NVD-MT SNB warp", 1);
  EXPECT_EQ(bad.status, Status::RequestFailed);
  EXPECT_NE(bad.text.find("bad scale"), std::string::npos) << bad.text;

  // The connection survives a failed request.
  const Reply good = request(client, "NVD-MT SNB test", 2);
  EXPECT_EQ(good.status, Status::Ok) << good.text;
}

TEST(NetServing, SingleFlightHoldsAcrossConnections) {
  // 8 client threads hammer the same two request lines; the service must
  // compile each unique key exactly once — everything else is a memory
  // hit or a coalesced join of the in-flight leader.
  Serving s;
  const std::vector<std::string> lines = {"NVD-MT SNB test",
                                          "AMD-SS SNB test"};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;

  std::vector<std::thread> clients;
  std::atomic<int> okCount{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Client client;
      client.connect(s.addr());
      for (int i = 0; i < kPerThread; ++i) {
        const Reply r =
            request(client, lines[(t + i) % lines.size()],
                    static_cast<std::uint64_t>(t * 100 + i));
        if (r.status == Status::Ok) ++okCount;
      }
    });
  }
  for (auto& c : clients) c.join();

  EXPECT_EQ(okCount.load(), kThreads * kPerThread);
  const ServiceStats stats = s.service.stats();
  EXPECT_EQ(stats.compiles, lines.size());
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kThreads * kPerThread));
  // Every request either led, joined the leader, or hit the cache.
  EXPECT_EQ(stats.misses + stats.coalesced + stats.memoryHits,
            stats.requests);
}

TEST(NetServing, PolicyWarmHitCountersAddUp) {
  Serving s;

  // Cold decision first, sequentially, so the store is warm before the
  // concurrent clients arrive.
  {
    Client client;
    client.connect(s.addr());
    const Reply cold =
        request(client, "NVD-MT SNB test", 1, FrameType::AutoRequest);
    ASSERT_EQ(cold.status, Status::Ok) << cold.text;
    EXPECT_NE(cold.text.find("cold decision"), std::string::npos)
        << cold.text;
  }

  constexpr int kWarmClients = 6;
  std::vector<std::thread> clients;
  std::atomic<int> warmHits{0};
  for (int t = 0; t < kWarmClients; ++t) {
    clients.emplace_back([&, t] {
      Client client;
      client.connect(s.addr());
      const Reply r = request(client, "NVD-MT SNB test",
                              static_cast<std::uint64_t>(10 + t),
                              FrameType::AutoRequest);
      if (r.status == Status::Ok &&
          r.text.find("policy hit") != std::string::npos) {
        ++warmHits;
      }
    });
  }
  for (auto& c : clients) c.join();

  EXPECT_EQ(warmHits.load(), kWarmClients);
  const ServiceStats stats = s.service.stats();
  EXPECT_EQ(stats.policyMisses, 1u);
  EXPECT_EQ(stats.policyHits, static_cast<std::uint64_t>(kWarmClients));
  EXPECT_EQ(stats.policyHits + stats.policyMisses,
            static_cast<std::uint64_t>(kWarmClients + 1));
}

TEST(NetServing, ClientDisconnectMidRequestNeitherLeaksNorWedges) {
  Serving s;
  {
    // Fire a slow (bench-scale) request, wait until the daemon has
    // admitted it, then vanish before the reply.
    Client doomed;
    doomed.connect(s.addr());
    doomed.sendFrame(FrameType::Request, 1, "NVD-MT SNB bench");
    ASSERT_TRUE(eventually(
        [&] { return s.server.stats().requestsAdmitted == 1; }));
    // RST, not FIN: a plain close is indistinguishable from a polite
    // half-close (which the daemon now serves to completion); a crash
    // looks like a reset.
    doomed.abortiveClose();
  }

  // The in-flight request must complete, its completion must be dropped
  // (not leaked into a dead connection), and the admission slot freed.
  EXPECT_TRUE(eventually([&] {
    return s.server.stats().disconnectedMidRequest == 1;
  })) << "completion for the dead connection never drained";

  // The loop is not wedged: a new client gets served.
  Client client;
  client.connect(s.addr());
  const Reply r = request(client, "AMD-SS SNB test", 2);
  EXPECT_EQ(r.status, Status::Ok) << r.text;

  const ServerStats stats = s.server.stats();
  EXPECT_EQ(stats.connectionsAccepted, 2u);
  EXPECT_EQ(stats.requestsAdmitted, 2u);
}

TEST(NetServing, AdmissionOverflowIsRejectedNotQueued) {
  ServerConfig serverConfig;
  serverConfig.maxAdmitted = 1;
  ServiceConfig serviceConfig;
  serviceConfig.workers = 1;
  Serving s(serverConfig, serviceConfig);

  Client client;
  client.connect(s.addr());
  // Four distinct slow requests in ONE buffer: the loop decodes them in
  // one batch, admits the first, and must reject the rest immediately —
  // backpressure to the client, not an unbounded queue.
  std::string burst;
  grover::net::appendFrame(burst, FrameType::Request, 1, "NVD-MT SNB bench");
  grover::net::appendFrame(burst, FrameType::Request, 2, "AMD-SS SNB bench");
  grover::net::appendFrame(burst, FrameType::Request, 3, "AMD-MT SNB bench");
  grover::net::appendFrame(burst, FrameType::Request, 4, "AMD-RG SNB bench");
  client.sendRaw(burst);

  int ok = 0, overloaded = 0;
  for (int i = 0; i < 4; ++i) {
    const Reply r = readReply(client);
    if (r.status == Status::Ok) {
      ++ok;
    } else {
      EXPECT_EQ(r.status, Status::Overloaded);
      EXPECT_NE(r.text.find("admission queue full"), std::string::npos)
          << r.text;
      ++overloaded;
    }
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(overloaded, 1);
  EXPECT_EQ(ok + overloaded, 4);
  EXPECT_EQ(s.server.stats().rejectedOverload,
            static_cast<std::uint64_t>(overloaded));

  // Rejection is request-scoped: the connection still serves.
  const Reply after = request(client, "NVD-MT SNB test", 5);
  EXPECT_EQ(after.status, Status::Ok) << after.text;
}

TEST(NetServing, MalformedFrameGetsErrorThenClose) {
  Serving s;
  Client client;
  client.connect(s.addr());

  client.sendRaw("this is not a groverd frame at all");
  const Frame frame = client.readFrame();
  EXPECT_EQ(frame.type, FrameType::Error);
  Status status = Status::Ok;
  std::string_view text;
  ASSERT_TRUE(grover::net::splitStatusPayload(frame.payload, status, text));
  EXPECT_EQ(status, Status::Malformed);
  EXPECT_NE(text.find("magic"), std::string_view::npos)
      << std::string(text);

  // Connection-scoped violation: the daemon hangs up after the error.
  EXPECT_THROW((void)client.readFrame(), GroverError);
  EXPECT_TRUE(eventually([&] {
    const ServerStats stats = s.server.stats();
    return stats.protocolErrors == 1 && stats.connectionsClosed == 1;
  }));
}

TEST(NetServing, OversizedFrameGetsErrorThenClose) {
  Serving s;
  Client client;
  client.connect(s.addr());

  // A valid header declaring a 2 MiB payload (bound is 1 MiB).
  std::string header;
  grover::net::appendFrame(header, FrameType::Request, 1, "");
  const std::uint32_t huge = 2u << 20;
  header[16] = static_cast<char>(huge & 0xFF);
  header[17] = static_cast<char>((huge >> 8) & 0xFF);
  header[18] = static_cast<char>((huge >> 16) & 0xFF);
  header[19] = static_cast<char>((huge >> 24) & 0xFF);
  client.sendRaw(header);

  const Frame frame = client.readFrame();
  EXPECT_EQ(frame.type, FrameType::Error);
  Status status = Status::Ok;
  std::string_view text;
  ASSERT_TRUE(grover::net::splitStatusPayload(frame.payload, status, text));
  EXPECT_EQ(status, Status::Malformed);
  EXPECT_NE(text.find("oversized"), std::string_view::npos)
      << std::string(text);
  EXPECT_THROW((void)client.readFrame(), GroverError);
}

TEST(NetServing, UnexpectedFrameTypeFromClientIsAProtocolError) {
  Serving s;
  Client client;
  client.connect(s.addr());

  client.sendFrame(FrameType::Response, 1, std::string(1, '\0'));
  const Frame frame = client.readFrame();
  EXPECT_EQ(frame.type, FrameType::Error);
  EXPECT_THROW((void)client.readFrame(), GroverError);
}

TEST(NetServing, StatsFrameReturnsServiceAndServerCounters) {
  Serving s;
  Client client;
  client.connect(s.addr());
  ASSERT_EQ(request(client, "NVD-MT SNB test", 1).status, Status::Ok);

  client.sendFrame(FrameType::Stats, 2, "");
  const Frame frame = client.readFrame();
  EXPECT_EQ(frame.type, FrameType::StatsResponse);
  Status status = Status::RequestFailed;
  std::string_view text;
  ASSERT_TRUE(grover::net::splitStatusPayload(frame.payload, status, text));
  EXPECT_EQ(status, Status::Ok);
  const std::string body(text);
  EXPECT_NE(body.find("cache:"), std::string::npos) << body;
  EXPECT_NE(body.find("server: "), std::string::npos) << body;
  EXPECT_NE(body.find("1 admitted"), std::string::npos) << body;
}

TEST(NetServing, DrainCompletesInFlightRequestsThenExits) {
  ServiceConfig serviceConfig;
  serviceConfig.workers = 1;
  Serving s({}, serviceConfig);

  Client client;
  client.connect(s.addr());
  // Two slow requests on one worker: a wide in-flight window.
  client.sendFrame(FrameType::Request, 1, "NVD-MM-A SNB bench");
  client.sendFrame(FrameType::Request, 2, "NVD-MM-B SNB bench");

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  s.server.requestStop();

  // Both in-flight responses still arrive, then the daemon hangs up.
  const Reply a = readReply(client);
  const Reply b = readReply(client);
  EXPECT_EQ(a.status, Status::Ok) << a.text;
  EXPECT_EQ(b.status, Status::Ok) << b.text;
  EXPECT_THROW((void)client.readFrame(), GroverError);

  s.stop();  // run() must return promptly
  const ServerStats stats = s.server.stats();
  EXPECT_EQ(stats.responsesSent, 2u);
  EXPECT_EQ(stats.connectionsClosed, stats.connectionsAccepted);
}

TEST(NetServing, RequestsDuringDrainAreRejectedShuttingDown) {
  ServiceConfig serviceConfig;
  serviceConfig.workers = 1;
  Serving s({}, serviceConfig);

  Client client;
  client.connect(s.addr());
  // Keep the connection busy so the drain cannot close it while we poke
  // it with a late request: two heavy requests serialized on one worker
  // hold the in-flight window open well past the sleeps below.
  client.sendFrame(FrameType::Request, 1, "NVD-MM-A SNB bench");
  client.sendFrame(FrameType::Request, 2, "NVD-MM-B SNB bench");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  s.server.requestStop();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  client.sendFrame(FrameType::Request, 3, "AMD-MT SNB test");

  bool sawShutdownReject = false;
  int served = 0;
  for (int i = 0; i < 3; ++i) {
    const Reply r = readReply(client);
    if (r.id == 3) {
      EXPECT_EQ(r.status, Status::ShuttingDown) << r.text;
      sawShutdownReject = r.status == Status::ShuttingDown;
    } else {
      EXPECT_EQ(r.status, Status::Ok) << r.text;
      ++served;
    }
  }
  EXPECT_TRUE(sawShutdownReject);
  EXPECT_EQ(served, 2);
  s.stop();
  EXPECT_EQ(s.server.stats().rejectedShutdown, 1u);
}

TEST(NetServing, IdleConnectionsAreTimedOut) {
  ServerConfig serverConfig;
  serverConfig.idleTimeoutMs = 100;
  Serving s(serverConfig);

  Client client;
  client.connect(s.addr());
  EXPECT_THROW((void)client.readFrame(), GroverError);  // daemon hangs up
  EXPECT_TRUE(eventually([&] {
    return s.server.stats().idleTimeouts == 1;
  }));
}

TEST(NetServing, UnixDomainSocketServes) {
  const std::string path =
      "/tmp/grover_serving_" + std::to_string(::getpid()) + ".sock";
  ServerConfig serverConfig;
  serverConfig.host = "none";
  serverConfig.unixPath = path;
  Serving s(serverConfig);
  EXPECT_EQ(s.server.port(), 0);

  Client client;
  client.connect(path);
  const Reply r = request(client, "NVD-MT SNB test", 1);
  EXPECT_EQ(r.status, Status::Ok) << r.text;
  s.stop();
  ::unlink(path.c_str());
}

TEST(NetServing, HalfCloseServesBufferedRequestsBeforeClosing) {
  // Regression: a client that writes a batch then shutdown(SHUT_WR)
  // used to lose whatever frames were still buffered when the daemon
  // saw EOF. All of them must be served and their responses flushed
  // before the connection closes.
  Serving s;
  Client client;
  client.connect(s.addr());

  // One raw burst so data and FIN land as close together as possible —
  // the regression fired when EOF arrived with frames still undecoded.
  std::string burst;
  const std::vector<std::string> lines = {
      "NVD-MT SNB test", "AMD-SS SNB test", "AMD-MT SNB test",
      "AMD-RG SNB test"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    grover::net::appendFrame(burst, FrameType::Request,
                             static_cast<std::uint64_t>(i + 1), lines[i]);
  }
  client.sendRaw(burst);
  client.shutdownWrite();

  std::size_t okCount = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const Reply r = readReply(client);
    if (r.status == Status::Ok) ++okCount;
  }
  EXPECT_EQ(okCount, lines.size());
  // After the last response the daemon closes its side too.
  EXPECT_THROW((void)client.readFrame(), GroverError);
  EXPECT_TRUE(eventually([&] {
    return s.server.stats().connectionsClosed == 1;
  }));
  EXPECT_EQ(s.server.stats().disconnectedMidRequest, 0u);
}

TEST(NetServing, GreedyPipelinerIsRejectedWhilePoliteClientAdmits) {
  // Per-connection credits: one connection pipelining past its
  // allowance is told Overloaded while the global queue still has room
  // for everyone else.
  ServerConfig serverConfig;
  serverConfig.maxAdmitted = 16;
  serverConfig.clientCredits = 2;
  serverConfig.admitReserve = 4;
  serverConfig.workers = 1;  // keep admitted work in flight
  Serving s(serverConfig);

  Client greedy;
  greedy.connect(s.addr());
  constexpr std::size_t kBurst = 6;
  std::string burst;
  for (std::size_t i = 0; i < kBurst; ++i) {
    // Same slow line on purpose: admission is per-frame, upstream
    // coalescing does not hand credits back.
    grover::net::appendFrame(burst, FrameType::Request,
                             static_cast<std::uint64_t>(i + 1),
                             "NVD-MT SNB bench");
  }
  greedy.sendRaw(burst);

  std::size_t okCount = 0, creditRejected = 0;
  for (std::size_t i = 0; i < kBurst; ++i) {
    const Reply r = readReply(greedy);
    if (r.status == Status::Ok) {
      ++okCount;
    } else {
      EXPECT_EQ(r.status, Status::Overloaded) << r.text;
      EXPECT_NE(r.text.find("per-connection credit limit"),
                std::string::npos)
          << r.text;
      ++creditRejected;
    }
  }
  EXPECT_EQ(okCount, 2u);
  EXPECT_EQ(creditRejected, kBurst - 2);

  // The polite client was never crowded out.
  Client polite;
  polite.connect(s.addr());
  const Reply r = request(polite, "AMD-SS SNB test", 100);
  EXPECT_EQ(r.status, Status::Ok) << r.text;

  const ServerStats stats = s.server.stats();
  EXPECT_EQ(stats.rejectedClientCredit, kBurst - 2);
  EXPECT_EQ(stats.rejectedOverload, kBurst - 2);
}

TEST(NetServing, DisconnectDuringColdCompileCancelsAndCachesNothing) {
  Serving s;
  {
    Client doomed;
    doomed.connect(s.addr());
    doomed.sendFrame(FrameType::Request, 1, "NVD-MT SNB bench");
    // Wait for the cold compile to be in flight, then vanish (RST).
    ASSERT_TRUE(
        eventually([&] { return s.service.stats().misses == 1; }));
    doomed.abortiveClose();
  }

  // Every waiter is gone: the compile is abandoned at the next stage
  // boundary and counted, and its completion is dropped.
  EXPECT_TRUE(eventually([&] {
    return s.service.stats().cancelled == 1;
  })) << "cold compile for the vanished client was never cancelled";
  EXPECT_TRUE(eventually([&] {
    return s.server.stats().disconnectedMidRequest == 1;
  }));

  // Nothing — not even a negative artifact — was cached: the same
  // request from a live client compiles fresh and succeeds.
  Client client;
  client.connect(s.addr());
  const Reply r = request(client, "NVD-MT SNB bench", 2);
  EXPECT_EQ(r.status, Status::Ok) << r.text;
  EXPECT_EQ(r.text.rfind("ok, ", 0), 0u) << r.text;
  const ServiceStats stats = s.service.stats();
  EXPECT_EQ(stats.negativeHits, 0u);
  EXPECT_EQ(stats.misses, 2u);  // fresh compile, not a cache hit
}

TEST(NetServing, BackgroundMeasurementAnswersBeforeTheSampleFolds) {
  // measureRate=1 with a background queue: the response must come back
  // without the "measured np" suffix (the sample runs off the request
  // path) and the measurement must fold in afterwards.
  ServiceConfig serviceConfig;
  serviceConfig.measureRate = 1;
  serviceConfig.measureQueueDepth = 8;
  Serving s({}, serviceConfig);

  Client client;
  client.connect(s.addr());
  const Reply cold =
      request(client, "NVD-MT SNB test", 1, FrameType::AutoRequest);
  EXPECT_EQ(cold.status, Status::Ok) << cold.text;
  EXPECT_EQ(cold.text.find("measured np"), std::string::npos) << cold.text;

  EXPECT_TRUE(eventually([&] {
    return s.service.stats().measurements >= 1;
  })) << "background measurement never completed";

  // The stats frame exposes the folded sample.
  client.sendFrame(FrameType::Stats, 2, "");
  const Reply stats = readReply(client);
  EXPECT_EQ(stats.status, Status::Ok);
  EXPECT_NE(stats.text.find(" measured ("), std::string::npos)
      << stats.text;
}

TEST(NetServing, ReadBudgetYieldsBetweenConnections) {
  // Loop fairness: one connection's firehose is drained at most
  // readBudgetBytes per tick; every frame is still served.
  ServerConfig serverConfig;
  serverConfig.readBudgetBytes = 4096;
  Serving s(serverConfig);

  Client client;
  client.connect(s.addr());
  constexpr std::size_t kFrames = 1000;  // ~20 KiB of headers
  std::string burst;
  for (std::size_t i = 0; i < kFrames; ++i) {
    grover::net::appendFrame(burst, FrameType::Stats,
                             static_cast<std::uint64_t>(i + 1), "");
  }
  client.sendRaw(burst);

  for (std::size_t i = 0; i < kFrames; ++i) {
    const Reply r = readReply(client);
    EXPECT_EQ(r.status, Status::Ok);
  }
  EXPECT_GE(s.server.stats().readBudgetExhausted, 1u);
}

TEST(NetServing, EmfileAcceptStormShedsAndRecovers) {
  ServerConfig serverConfig;
  serverConfig.acceptBackoffMs = 50;
  Serving s(serverConfig);

  // An established connection that must keep working throughout.
  Client veteran;
  veteran.connect(s.addr());
  EXPECT_EQ(request(veteran, "NVD-MT SNB test", 1).status, Status::Ok);

  // Clamp RLIMIT_NOFILE so exactly one more fd fits: the next client's
  // own socket. The daemon's accept() then has nothing left and must
  // hit EMFILE.
  rlimit saved{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  const int probe = ::open("/dev/null", O_RDONLY);
  ASSERT_GE(probe, 0);
  const rlim_t ceiling = static_cast<rlim_t>(probe) + 1;
  ::close(probe);
  rlimit tight = saved;
  tight.rlim_cur = ceiling;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);

  // The handshake completes in the kernel backlog, then the daemon
  // sheds the connection (accept → immediate close) instead of leaving
  // it wedged in the backlog forever.
  {
    Client shed;
    bool rejected = false;
    try {
      shed.connect(s.addr());
      (void)request(shed, "NVD-MT SNB test", 2);
    } catch (const GroverError&) {
      rejected = true;
    }
    EXPECT_TRUE(rejected);
  }
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);
  EXPECT_TRUE(
      eventually([&] { return s.server.stats().acceptsShed >= 1; }));

  // With descriptors back (and the backoff expired), service resumes —
  // for the veteran and for new clients alike.
  EXPECT_EQ(request(veteran, "AMD-SS SNB test", 3).status, Status::Ok);
  EXPECT_TRUE(eventually([&] {
    try {
      Client fresh;
      fresh.connect(s.addr());
      return request(fresh, "NVD-MT SNB test", 4).status == Status::Ok;
    } catch (const GroverError&) {
      return false;
    }
  }));
}

}  // namespace
