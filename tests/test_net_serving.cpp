// In-process serving tests: a real Server event loop on an ephemeral
// loopback port (run() on its own thread), real Client sockets driving
// it. Covers the concurrency properties the daemon exists for —
// single-flight across connections, shared policy warmth — and the
// failure modes it must survive: malformed and oversized frames,
// clients vanishing mid-request, admission-queue overflow, and a drain
// that completes in-flight work.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/compile_service.h"
#include "support/diagnostics.h"

namespace {

using grover::GroverError;
using grover::net::Client;
using grover::net::Frame;
using grover::net::FrameType;
using grover::net::Server;
using grover::net::ServerConfig;
using grover::net::ServerStats;
using grover::net::Status;
using grover::service::CompileService;
using grover::service::ServiceConfig;
using grover::service::ServiceStats;

/// GROVER_TEST_LOOP_SHARDS=N reruns this whole suite sharded (CI does
/// so under TSan). Only applies to fixtures that did not ask for a
/// shard count themselves, so explicit-config tests keep their setup.
ServerConfig applyShardEnv(ServerConfig config) {
  if (config.loopShards == 1) {
    if (const char* env = std::getenv("GROVER_TEST_LOOP_SHARDS")) {
      const int n = std::atoi(env);
      if (n > 1) config.loopShards = static_cast<std::size_t>(n);
    }
  }
  return config;
}

/// One service + one server + the event loop on a background thread.
struct Serving {
  CompileService service;
  Server server;
  std::thread loop;

  explicit Serving(ServerConfig serverConfig = {},
                   ServiceConfig serviceConfig = {})
      : service(serviceConfig),
        server(service, applyShardEnv(serverConfig)) {
    server.bind();
    loop = std::thread([this] { server.run(); });
  }

  ~Serving() { stop(); }

  void stop() {
    server.requestStop();
    if (loop.joinable()) loop.join();
  }

  [[nodiscard]] std::string addr() const {
    return "127.0.0.1:" + std::to_string(server.port());
  }
};

struct Reply {
  std::uint64_t id = 0;
  Status status = Status::Ok;
  std::string text;
};

Reply readReply(Client& client) {
  const Frame frame = client.readFrame();
  Reply r;
  r.id = frame.id;
  std::string_view text;
  EXPECT_TRUE(grover::net::splitStatusPayload(frame.payload, r.status, text))
      << "unsplittable payload on frame id " << frame.id;
  r.text = std::string(text);
  return r;
}

Reply request(Client& client, const std::string& line, std::uint64_t id,
              FrameType type = FrameType::Request) {
  client.sendFrame(type, id, line);
  return readReply(client);
}

/// Spin until `predicate` holds or ~5 s pass (completions cross threads;
/// stats are eventually consistent with the wire).
template <typename Predicate>
bool eventually(Predicate predicate) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

TEST(NetServing, RoundTripAndPipeliningOnOneConnection) {
  Serving s;
  Client client;
  client.connect(s.addr());

  // Two requests pipelined before any read; ids match them back up.
  client.sendFrame(FrameType::Request, 10, "NVD-MT SNB test");
  client.sendFrame(FrameType::Request, 11, "AMD-SS SNB test");
  const Reply a = readReply(client);
  const Reply b = readReply(client);
  EXPECT_EQ(a.status, Status::Ok) << a.text;
  EXPECT_EQ(b.status, Status::Ok) << b.text;
  EXPECT_TRUE((a.id == 10 && b.id == 11) || (a.id == 11 && b.id == 10));
  EXPECT_EQ(a.text.rfind("ok, ", 0), 0u) << a.text;
}

TEST(NetServing, MalformedGrammarLineFailsTheRequestNotTheConnection) {
  Serving s;
  Client client;
  client.connect(s.addr());

  const Reply bad = request(client, "NVD-MT SNB warp", 1);
  EXPECT_EQ(bad.status, Status::RequestFailed);
  EXPECT_NE(bad.text.find("bad scale"), std::string::npos) << bad.text;

  // The connection survives a failed request.
  const Reply good = request(client, "NVD-MT SNB test", 2);
  EXPECT_EQ(good.status, Status::Ok) << good.text;
}

TEST(NetServing, SingleFlightHoldsAcrossConnections) {
  // 8 client threads hammer the same two request lines; the service must
  // compile each unique key exactly once — everything else is a memory
  // hit or a coalesced join of the in-flight leader.
  Serving s;
  const std::vector<std::string> lines = {"NVD-MT SNB test",
                                          "AMD-SS SNB test"};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;

  std::vector<std::thread> clients;
  std::atomic<int> okCount{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Client client;
      client.connect(s.addr());
      for (int i = 0; i < kPerThread; ++i) {
        const Reply r =
            request(client, lines[(t + i) % lines.size()],
                    static_cast<std::uint64_t>(t * 100 + i));
        if (r.status == Status::Ok) ++okCount;
      }
    });
  }
  for (auto& c : clients) c.join();

  EXPECT_EQ(okCount.load(), kThreads * kPerThread);
  const ServiceStats stats = s.service.stats();
  EXPECT_EQ(stats.compiles, lines.size());
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kThreads * kPerThread));
  // Every request either led, joined the leader, or hit the cache.
  EXPECT_EQ(stats.misses + stats.coalesced + stats.memoryHits,
            stats.requests);
}

TEST(NetServing, PolicyWarmHitCountersAddUp) {
  Serving s;

  // Cold decision first, sequentially, so the store is warm before the
  // concurrent clients arrive.
  {
    Client client;
    client.connect(s.addr());
    const Reply cold =
        request(client, "NVD-MT SNB test", 1, FrameType::AutoRequest);
    ASSERT_EQ(cold.status, Status::Ok) << cold.text;
    EXPECT_NE(cold.text.find("cold decision"), std::string::npos)
        << cold.text;
  }

  constexpr int kWarmClients = 6;
  std::vector<std::thread> clients;
  std::atomic<int> warmHits{0};
  for (int t = 0; t < kWarmClients; ++t) {
    clients.emplace_back([&, t] {
      Client client;
      client.connect(s.addr());
      const Reply r = request(client, "NVD-MT SNB test",
                              static_cast<std::uint64_t>(10 + t),
                              FrameType::AutoRequest);
      if (r.status == Status::Ok &&
          r.text.find("policy hit") != std::string::npos) {
        ++warmHits;
      }
    });
  }
  for (auto& c : clients) c.join();

  EXPECT_EQ(warmHits.load(), kWarmClients);
  const ServiceStats stats = s.service.stats();
  EXPECT_EQ(stats.policyMisses, 1u);
  EXPECT_EQ(stats.policyHits, static_cast<std::uint64_t>(kWarmClients));
  EXPECT_EQ(stats.policyHits + stats.policyMisses,
            static_cast<std::uint64_t>(kWarmClients + 1));
}

TEST(NetServing, ClientDisconnectMidRequestNeitherLeaksNorWedges) {
  Serving s;
  {
    // Fire a slow (bench-scale) request, wait until the daemon has
    // admitted it, then vanish before the reply.
    Client doomed;
    doomed.connect(s.addr());
    doomed.sendFrame(FrameType::Request, 1, "NVD-MT SNB bench");
    ASSERT_TRUE(eventually(
        [&] { return s.server.stats().requestsAdmitted == 1; }));
    // RST, not FIN: a plain close is indistinguishable from a polite
    // half-close (which the daemon now serves to completion); a crash
    // looks like a reset.
    doomed.abortiveClose();
  }

  // The in-flight request must complete, its completion must be dropped
  // (not leaked into a dead connection), and the admission slot freed.
  EXPECT_TRUE(eventually([&] {
    return s.server.stats().disconnectedMidRequest == 1;
  })) << "completion for the dead connection never drained";

  // The loop is not wedged: a new client gets served.
  Client client;
  client.connect(s.addr());
  const Reply r = request(client, "AMD-SS SNB test", 2);
  EXPECT_EQ(r.status, Status::Ok) << r.text;

  const ServerStats stats = s.server.stats();
  EXPECT_EQ(stats.connectionsAccepted, 2u);
  EXPECT_EQ(stats.requestsAdmitted, 2u);
}

TEST(NetServing, AdmissionOverflowIsRejectedNotQueued) {
  ServerConfig serverConfig;
  serverConfig.maxAdmitted = 1;
  ServiceConfig serviceConfig;
  serviceConfig.workers = 1;
  Serving s(serverConfig, serviceConfig);

  Client client;
  client.connect(s.addr());
  // Four distinct slow requests in ONE buffer: the loop decodes them in
  // one batch, admits the first, and must reject the rest immediately —
  // backpressure to the client, not an unbounded queue.
  std::string burst;
  grover::net::appendFrame(burst, FrameType::Request, 1, "NVD-MT SNB bench");
  grover::net::appendFrame(burst, FrameType::Request, 2, "AMD-SS SNB bench");
  grover::net::appendFrame(burst, FrameType::Request, 3, "AMD-MT SNB bench");
  grover::net::appendFrame(burst, FrameType::Request, 4, "AMD-RG SNB bench");
  client.sendRaw(burst);

  int ok = 0, overloaded = 0;
  for (int i = 0; i < 4; ++i) {
    const Reply r = readReply(client);
    if (r.status == Status::Ok) {
      ++ok;
    } else {
      EXPECT_EQ(r.status, Status::Overloaded);
      EXPECT_NE(r.text.find("admission queue full"), std::string::npos)
          << r.text;
      ++overloaded;
    }
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(overloaded, 1);
  EXPECT_EQ(ok + overloaded, 4);
  EXPECT_EQ(s.server.stats().rejectedOverload,
            static_cast<std::uint64_t>(overloaded));

  // Rejection is request-scoped: the connection still serves.
  const Reply after = request(client, "NVD-MT SNB test", 5);
  EXPECT_EQ(after.status, Status::Ok) << after.text;
}

TEST(NetServing, MalformedFrameGetsErrorThenClose) {
  Serving s;
  Client client;
  client.connect(s.addr());

  client.sendRaw("this is not a groverd frame at all");
  const Frame frame = client.readFrame();
  EXPECT_EQ(frame.type, FrameType::Error);
  Status status = Status::Ok;
  std::string_view text;
  ASSERT_TRUE(grover::net::splitStatusPayload(frame.payload, status, text));
  EXPECT_EQ(status, Status::Malformed);
  EXPECT_NE(text.find("magic"), std::string_view::npos)
      << std::string(text);

  // Connection-scoped violation: the daemon hangs up after the error.
  EXPECT_THROW((void)client.readFrame(), GroverError);
  EXPECT_TRUE(eventually([&] {
    const ServerStats stats = s.server.stats();
    return stats.protocolErrors == 1 && stats.connectionsClosed == 1;
  }));
}

TEST(NetServing, OversizedFrameGetsErrorThenClose) {
  Serving s;
  Client client;
  client.connect(s.addr());

  // A valid header declaring a 2 MiB payload (bound is 1 MiB).
  std::string header;
  grover::net::appendFrame(header, FrameType::Request, 1, "");
  const std::uint32_t huge = 2u << 20;
  header[16] = static_cast<char>(huge & 0xFF);
  header[17] = static_cast<char>((huge >> 8) & 0xFF);
  header[18] = static_cast<char>((huge >> 16) & 0xFF);
  header[19] = static_cast<char>((huge >> 24) & 0xFF);
  client.sendRaw(header);

  const Frame frame = client.readFrame();
  EXPECT_EQ(frame.type, FrameType::Error);
  Status status = Status::Ok;
  std::string_view text;
  ASSERT_TRUE(grover::net::splitStatusPayload(frame.payload, status, text));
  EXPECT_EQ(status, Status::Malformed);
  EXPECT_NE(text.find("oversized"), std::string_view::npos)
      << std::string(text);
  EXPECT_THROW((void)client.readFrame(), GroverError);
}

TEST(NetServing, UnexpectedFrameTypeFromClientIsAProtocolError) {
  Serving s;
  Client client;
  client.connect(s.addr());

  client.sendFrame(FrameType::Response, 1, std::string(1, '\0'));
  const Frame frame = client.readFrame();
  EXPECT_EQ(frame.type, FrameType::Error);
  EXPECT_THROW((void)client.readFrame(), GroverError);
}

TEST(NetServing, StatsFrameReturnsServiceAndServerCounters) {
  Serving s;
  Client client;
  client.connect(s.addr());
  ASSERT_EQ(request(client, "NVD-MT SNB test", 1).status, Status::Ok);

  client.sendFrame(FrameType::Stats, 2, "");
  const Frame frame = client.readFrame();
  EXPECT_EQ(frame.type, FrameType::StatsResponse);
  Status status = Status::RequestFailed;
  std::string_view text;
  ASSERT_TRUE(grover::net::splitStatusPayload(frame.payload, status, text));
  EXPECT_EQ(status, Status::Ok);
  const std::string body(text);
  EXPECT_NE(body.find("cache:"), std::string::npos) << body;
  EXPECT_NE(body.find("server: "), std::string::npos) << body;
  EXPECT_NE(body.find("1 admitted"), std::string::npos) << body;
}

TEST(NetServing, DrainCompletesInFlightRequestsThenExits) {
  ServiceConfig serviceConfig;
  serviceConfig.workers = 1;
  Serving s({}, serviceConfig);

  Client client;
  client.connect(s.addr());
  // Two slow requests on one worker: a wide in-flight window.
  client.sendFrame(FrameType::Request, 1, "NVD-MM-A SNB bench");
  client.sendFrame(FrameType::Request, 2, "NVD-MM-B SNB bench");

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  s.server.requestStop();

  // Both in-flight responses still arrive, then the daemon hangs up.
  const Reply a = readReply(client);
  const Reply b = readReply(client);
  EXPECT_EQ(a.status, Status::Ok) << a.text;
  EXPECT_EQ(b.status, Status::Ok) << b.text;
  EXPECT_THROW((void)client.readFrame(), GroverError);

  s.stop();  // run() must return promptly
  const ServerStats stats = s.server.stats();
  EXPECT_EQ(stats.responsesSent, 2u);
  EXPECT_EQ(stats.connectionsClosed, stats.connectionsAccepted);
}

TEST(NetServing, RequestsDuringDrainAreRejectedShuttingDown) {
  ServiceConfig serviceConfig;
  serviceConfig.workers = 1;
  Serving s({}, serviceConfig);

  Client client;
  client.connect(s.addr());
  // Keep the connection busy so the drain cannot close it while we poke
  // it with a late request: two heavy requests serialized on one worker
  // hold the in-flight window open well past the sleeps below.
  client.sendFrame(FrameType::Request, 1, "NVD-MM-A SNB bench");
  client.sendFrame(FrameType::Request, 2, "NVD-MM-B SNB bench");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  s.server.requestStop();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  client.sendFrame(FrameType::Request, 3, "AMD-MT SNB test");

  bool sawShutdownReject = false;
  int served = 0;
  for (int i = 0; i < 3; ++i) {
    const Reply r = readReply(client);
    if (r.id == 3) {
      EXPECT_EQ(r.status, Status::ShuttingDown) << r.text;
      sawShutdownReject = r.status == Status::ShuttingDown;
    } else {
      EXPECT_EQ(r.status, Status::Ok) << r.text;
      ++served;
    }
  }
  EXPECT_TRUE(sawShutdownReject);
  EXPECT_EQ(served, 2);
  s.stop();
  EXPECT_EQ(s.server.stats().rejectedShutdown, 1u);
}

TEST(NetServing, IdleConnectionsAreTimedOut) {
  ServerConfig serverConfig;
  serverConfig.idleTimeoutMs = 100;
  Serving s(serverConfig);

  Client client;
  client.connect(s.addr());
  EXPECT_THROW((void)client.readFrame(), GroverError);  // daemon hangs up
  EXPECT_TRUE(eventually([&] {
    return s.server.stats().idleTimeouts == 1;
  }));
}

TEST(NetServing, UnixDomainSocketServes) {
  const std::string path =
      "/tmp/grover_serving_" + std::to_string(::getpid()) + ".sock";
  ServerConfig serverConfig;
  serverConfig.host = "none";
  serverConfig.unixPath = path;
  Serving s(serverConfig);
  EXPECT_EQ(s.server.port(), 0);

  Client client;
  client.connect(path);
  const Reply r = request(client, "NVD-MT SNB test", 1);
  EXPECT_EQ(r.status, Status::Ok) << r.text;
  s.stop();
  ::unlink(path.c_str());
}

TEST(NetServing, HalfCloseServesBufferedRequestsBeforeClosing) {
  // Regression: a client that writes a batch then shutdown(SHUT_WR)
  // used to lose whatever frames were still buffered when the daemon
  // saw EOF. All of them must be served and their responses flushed
  // before the connection closes.
  Serving s;
  Client client;
  client.connect(s.addr());

  // One raw burst so data and FIN land as close together as possible —
  // the regression fired when EOF arrived with frames still undecoded.
  std::string burst;
  const std::vector<std::string> lines = {
      "NVD-MT SNB test", "AMD-SS SNB test", "AMD-MT SNB test",
      "AMD-RG SNB test"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    grover::net::appendFrame(burst, FrameType::Request,
                             static_cast<std::uint64_t>(i + 1), lines[i]);
  }
  client.sendRaw(burst);
  client.shutdownWrite();

  std::size_t okCount = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const Reply r = readReply(client);
    if (r.status == Status::Ok) ++okCount;
  }
  EXPECT_EQ(okCount, lines.size());
  // After the last response the daemon closes its side too.
  EXPECT_THROW((void)client.readFrame(), GroverError);
  EXPECT_TRUE(eventually([&] {
    return s.server.stats().connectionsClosed == 1;
  }));
  EXPECT_EQ(s.server.stats().disconnectedMidRequest, 0u);
}

TEST(NetServing, GreedyPipelinerIsRejectedWhilePoliteClientAdmits) {
  // Per-connection credits: one connection pipelining past its
  // allowance is told Overloaded while the global queue still has room
  // for everyone else.
  ServerConfig serverConfig;
  serverConfig.maxAdmitted = 16;
  serverConfig.clientCredits = 2;
  serverConfig.admitReserve = 4;
  serverConfig.workers = 1;  // keep admitted work in flight
  Serving s(serverConfig);

  Client greedy;
  greedy.connect(s.addr());
  constexpr std::size_t kBurst = 6;
  std::string burst;
  for (std::size_t i = 0; i < kBurst; ++i) {
    // Same slow line on purpose: admission is per-frame, upstream
    // coalescing does not hand credits back.
    grover::net::appendFrame(burst, FrameType::Request,
                             static_cast<std::uint64_t>(i + 1),
                             "NVD-MT SNB bench");
  }
  greedy.sendRaw(burst);

  std::size_t okCount = 0, creditRejected = 0;
  for (std::size_t i = 0; i < kBurst; ++i) {
    const Reply r = readReply(greedy);
    if (r.status == Status::Ok) {
      ++okCount;
    } else {
      EXPECT_EQ(r.status, Status::Overloaded) << r.text;
      EXPECT_NE(r.text.find("per-connection credit limit"),
                std::string::npos)
          << r.text;
      ++creditRejected;
    }
  }
  EXPECT_EQ(okCount, 2u);
  EXPECT_EQ(creditRejected, kBurst - 2);

  // The polite client was never crowded out.
  Client polite;
  polite.connect(s.addr());
  const Reply r = request(polite, "AMD-SS SNB test", 100);
  EXPECT_EQ(r.status, Status::Ok) << r.text;

  const ServerStats stats = s.server.stats();
  EXPECT_EQ(stats.rejectedClientCredit, kBurst - 2);
  EXPECT_EQ(stats.rejectedOverload, kBurst - 2);
}

TEST(NetServing, DisconnectDuringColdCompileCancelsAndCachesNothing) {
  Serving s;
  {
    Client doomed;
    doomed.connect(s.addr());
    doomed.sendFrame(FrameType::Request, 1, "NVD-MT SNB bench");
    // Wait for the cold compile to be in flight, then vanish (RST).
    ASSERT_TRUE(
        eventually([&] { return s.service.stats().misses == 1; }));
    doomed.abortiveClose();
  }

  // Every waiter is gone: the compile is abandoned at the next stage
  // boundary and counted, and its completion is dropped.
  EXPECT_TRUE(eventually([&] {
    return s.service.stats().cancelled == 1;
  })) << "cold compile for the vanished client was never cancelled";
  EXPECT_TRUE(eventually([&] {
    return s.server.stats().disconnectedMidRequest == 1;
  }));

  // Nothing — not even a negative artifact — was cached: the same
  // request from a live client compiles fresh and succeeds.
  Client client;
  client.connect(s.addr());
  const Reply r = request(client, "NVD-MT SNB bench", 2);
  EXPECT_EQ(r.status, Status::Ok) << r.text;
  EXPECT_EQ(r.text.rfind("ok, ", 0), 0u) << r.text;
  const ServiceStats stats = s.service.stats();
  EXPECT_EQ(stats.negativeHits, 0u);
  EXPECT_EQ(stats.misses, 2u);  // fresh compile, not a cache hit
}

TEST(NetServing, BackgroundMeasurementAnswersBeforeTheSampleFolds) {
  // measureRate=1 with a background queue: the response must come back
  // without the "measured np" suffix (the sample runs off the request
  // path) and the measurement must fold in afterwards.
  ServiceConfig serviceConfig;
  serviceConfig.measureRate = 1;
  serviceConfig.measureQueueDepth = 8;
  Serving s({}, serviceConfig);

  Client client;
  client.connect(s.addr());
  const Reply cold =
      request(client, "NVD-MT SNB test", 1, FrameType::AutoRequest);
  EXPECT_EQ(cold.status, Status::Ok) << cold.text;
  EXPECT_EQ(cold.text.find("measured np"), std::string::npos) << cold.text;

  EXPECT_TRUE(eventually([&] {
    return s.service.stats().measurements >= 1;
  })) << "background measurement never completed";

  // The stats frame exposes the folded sample.
  client.sendFrame(FrameType::Stats, 2, "");
  const Reply stats = readReply(client);
  EXPECT_EQ(stats.status, Status::Ok);
  EXPECT_NE(stats.text.find(" measured ("), std::string::npos)
      << stats.text;
}

TEST(NetServing, ReadBudgetYieldsBetweenConnections) {
  // Loop fairness: one connection's firehose is drained at most
  // readBudgetBytes per tick; every frame is still served.
  ServerConfig serverConfig;
  serverConfig.readBudgetBytes = 4096;
  Serving s(serverConfig);

  Client client;
  client.connect(s.addr());
  constexpr std::size_t kFrames = 1000;  // ~20 KiB of headers
  std::string burst;
  for (std::size_t i = 0; i < kFrames; ++i) {
    grover::net::appendFrame(burst, FrameType::Stats,
                             static_cast<std::uint64_t>(i + 1), "");
  }
  client.sendRaw(burst);

  for (std::size_t i = 0; i < kFrames; ++i) {
    const Reply r = readReply(client);
    EXPECT_EQ(r.status, Status::Ok);
  }
  EXPECT_GE(s.server.stats().readBudgetExhausted, 1u);
}

TEST(NetServing, EmfileAcceptStormShedsAndRecovers) {
  ServerConfig serverConfig;
  serverConfig.acceptBackoffMs = 50;
  Serving s(serverConfig);

  // An established connection that must keep working throughout.
  Client veteran;
  veteran.connect(s.addr());
  EXPECT_EQ(request(veteran, "NVD-MT SNB test", 1).status, Status::Ok);

  // Clamp RLIMIT_NOFILE so exactly one more fd fits: the next client's
  // own socket. The daemon's accept() then has nothing left and must
  // hit EMFILE.
  rlimit saved{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  const int probe = ::open("/dev/null", O_RDONLY);
  ASSERT_GE(probe, 0);
  const rlim_t ceiling = static_cast<rlim_t>(probe) + 1;
  ::close(probe);
  rlimit tight = saved;
  tight.rlim_cur = ceiling;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);

  // The handshake completes in the kernel backlog, then the daemon
  // sheds the connection (accept → immediate close) instead of leaving
  // it wedged in the backlog forever.
  {
    Client shed;
    bool rejected = false;
    try {
      shed.connect(s.addr());
      (void)request(shed, "NVD-MT SNB test", 2);
    } catch (const GroverError&) {
      rejected = true;
    }
    EXPECT_TRUE(rejected);
  }
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);
  EXPECT_TRUE(
      eventually([&] { return s.server.stats().acceptsShed >= 1; }));

  // With descriptors back (and the backoff expired), service resumes —
  // for the veteran and for new clients alike.
  EXPECT_EQ(request(veteran, "AMD-SS SNB test", 3).status, Status::Ok);
  EXPECT_TRUE(eventually([&] {
    try {
      Client fresh;
      fresh.connect(s.addr());
      return request(fresh, "NVD-MT SNB test", 4).status == Status::Ok;
    } catch (const GroverError&) {
      return false;
    }
  }));
}

/// Fold one per-shard entry's counters into an accumulator — the same
/// sum stats() itself performs, recomputed independently by the test.
void accumulate(ServerStats& sum, const ServerStats& shard) {
  sum.connectionsAccepted += shard.connectionsAccepted;
  sum.connectionsClosed += shard.connectionsClosed;
  sum.framesReceived += shard.framesReceived;
  sum.requestsAdmitted += shard.requestsAdmitted;
  sum.responsesSent += shard.responsesSent;
  sum.rejectedOverload += shard.rejectedOverload;
  sum.rejectedClientCredit += shard.rejectedClientCredit;
  sum.rejectedShutdown += shard.rejectedShutdown;
  sum.protocolErrors += shard.protocolErrors;
  sum.disconnectedMidRequest += shard.disconnectedMidRequest;
  sum.idleTimeouts += shard.idleTimeouts;
  sum.readBudgetExhausted += shard.readBudgetExhausted;
  sum.acceptsShed += shard.acceptsShed;
}

void expectShardsSumToTotals(const ServerStats& stats) {
  ServerStats sum;
  for (const ServerStats& shard : stats.shards) accumulate(sum, shard);
  EXPECT_EQ(sum.connectionsAccepted, stats.connectionsAccepted);
  EXPECT_EQ(sum.connectionsClosed, stats.connectionsClosed);
  EXPECT_EQ(sum.framesReceived, stats.framesReceived);
  EXPECT_EQ(sum.requestsAdmitted, stats.requestsAdmitted);
  EXPECT_EQ(sum.responsesSent, stats.responsesSent);
  EXPECT_EQ(sum.rejectedOverload, stats.rejectedOverload);
  EXPECT_EQ(sum.rejectedClientCredit, stats.rejectedClientCredit);
  EXPECT_EQ(sum.rejectedShutdown, stats.rejectedShutdown);
  EXPECT_EQ(sum.protocolErrors, stats.protocolErrors);
  EXPECT_EQ(sum.disconnectedMidRequest, stats.disconnectedMidRequest);
  EXPECT_EQ(sum.idleTimeouts, stats.idleTimeouts);
  EXPECT_EQ(sum.readBudgetExhausted, stats.readBudgetExhausted);
  EXPECT_EQ(sum.acceptsShed, stats.acceptsShed);
}

TEST(NetServing, ShardedTrafficAggregatesPerShardToTotals) {
  // Two shards with the handoff path (reusePort off): least-loaded
  // routing is deterministic, so four concurrently-open connections
  // MUST land on both shards — and every counter total must equal the
  // sum of the per-shard breakdown.
  ServerConfig serverConfig;
  serverConfig.loopShards = 2;
  serverConfig.reusePort = false;
  Serving s(serverConfig);

  constexpr std::size_t kClients = 4;
  std::vector<Client> clients(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    clients[i].connect(s.addr());
    const Reply r = request(clients[i], "NVD-MT SNB test",
                            static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(r.status, Status::Ok) << r.text;
  }

  const ServerStats stats = s.server.stats();
  ASSERT_EQ(stats.shards.size(), 2u);
  EXPECT_EQ(stats.connectionsAccepted, kClients);
  EXPECT_EQ(stats.responsesSent, kClients);
  // Least-loaded handoff with all connections held open: neither shard
  // can have taken them all.
  EXPECT_GE(stats.shards[0].connectionsAccepted, 1u);
  EXPECT_GE(stats.shards[1].connectionsAccepted, 1u);
  // Per-shard entries carry no nested breakdown of their own.
  EXPECT_TRUE(stats.shards[0].shards.empty());
  expectShardsSumToTotals(stats);
}

TEST(NetServing, ReuseportShardsAggregateToTotals) {
  // The SO_REUSEPORT path: the kernel picks the shard per connection
  // (possibly the same one every time on loopback), so only the
  // aggregation invariant is asserted, not the spread.
  ServerConfig serverConfig;
  serverConfig.loopShards = 2;
  Serving s(serverConfig);

  constexpr std::size_t kClients = 4;
  std::vector<Client> clients(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    clients[i].connect(s.addr());
    const Reply r = request(clients[i], "AMD-SS SNB test",
                            static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(r.status, Status::Ok) << r.text;
  }

  const ServerStats stats = s.server.stats();
  ASSERT_EQ(stats.shards.size(), 2u);
  EXPECT_EQ(stats.connectionsAccepted, kClients);
  EXPECT_EQ(stats.requestsAdmitted, kClients);
  expectShardsSumToTotals(stats);
}

TEST(NetServing, BinaryStatsFrameRoundTripsOverTheWire) {
  ServerConfig serverConfig;
  serverConfig.loopShards = 2;
  serverConfig.reusePort = false;
  Serving s(serverConfig);

  Client client;
  client.connect(s.addr());
  ASSERT_EQ(request(client, "NVD-MT SNB test", 1).status, Status::Ok);

  client.sendFrame(FrameType::StatsBinary, 2, "");
  const Frame frame = client.readFrame();
  ASSERT_EQ(frame.type, FrameType::StatsBinaryResponse);
  Status status = Status::RequestFailed;
  std::string_view payload;
  ASSERT_TRUE(
      grover::net::splitStatusPayload(frame.payload, status, payload));
  ASSERT_EQ(status, Status::Ok);

  grover::net::StatsFrame decoded;
  std::string error;
  ASSERT_TRUE(grover::net::decodeStatsFrame(payload, decoded, &error))
      << error;
  EXPECT_EQ(decoded.version, grover::net::kStatsFrameVersion);
  ASSERT_EQ(decoded.shards.size(), 2u);
  EXPECT_EQ(decoded.totals.requestsAdmitted, 1u);
  EXPECT_EQ(decoded.connectionsOpen, 1u);
  EXPECT_EQ(decoded.admittedNow, 0u);
  // The snapshot reads each shard's atomics once and sums those same
  // reads into the totals, so the invariant is exact, not eventual.
  grover::net::StatsCounters sum;
  const auto add = [](std::uint64_t grover::net::StatsCounters::* field,
                      grover::net::StatsCounters& acc,
                      const grover::net::StatsCounters& c) {
    acc.*field += c.*field;
  };
  for (const grover::net::StatsCounters& shard : decoded.shards) {
    add(&grover::net::StatsCounters::connectionsAccepted, sum, shard);
    add(&grover::net::StatsCounters::connectionsClosed, sum, shard);
    add(&grover::net::StatsCounters::framesReceived, sum, shard);
    add(&grover::net::StatsCounters::requestsAdmitted, sum, shard);
    add(&grover::net::StatsCounters::responsesSent, sum, shard);
    add(&grover::net::StatsCounters::rejectedOverload, sum, shard);
    add(&grover::net::StatsCounters::rejectedClientCredit, sum, shard);
    add(&grover::net::StatsCounters::rejectedShutdown, sum, shard);
    add(&grover::net::StatsCounters::protocolErrors, sum, shard);
    add(&grover::net::StatsCounters::disconnectedMidRequest, sum, shard);
    add(&grover::net::StatsCounters::idleTimeouts, sum, shard);
    add(&grover::net::StatsCounters::readBudgetExhausted, sum, shard);
    add(&grover::net::StatsCounters::acceptsShed, sum, shard);
  }
  EXPECT_EQ(sum, decoded.totals);
}

/// Count open descriptors via /proc/self/fd (Linux). The readdir fd
/// itself is included both times, so before/after comparisons hold.
int openFdCount() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

TEST(NetServing, ClientConnectFailureLeaksNoFdsAndReportsLastErrno) {
  // Regression for the multi-address connect walk: each failed
  // attempt's socket must be closed before the next, the addrinfo list
  // freed on the throw path, and the error must carry the LAST errno —
  // not a stale first one or strerror(0) ("Success").
  //
  // A bound-but-never-listening socket pins a port that refuses
  // connections for the whole test: no raced rebind window.
  const int blocker = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(blocker, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(blocker, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(blocker, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  const int before = openFdCount();
  ASSERT_GT(before, 0);
  // "localhost" may resolve to several addresses (v4 and v6); every one
  // must be walked and every attempt's socket closed.
  const std::string spec = "localhost:" + std::to_string(port);
  for (int i = 0; i < 8; ++i) {
    Client client;
    try {
      client.connect(spec);
      FAIL() << "connect to a non-listening port succeeded";
    } catch (const GroverError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("cannot connect"), std::string::npos) << what;
      EXPECT_NE(what.find("refused"), std::string::npos) << what;
      EXPECT_EQ(what.find("Success"), std::string::npos) << what;
    }
    EXPECT_FALSE(client.connected());
  }
  EXPECT_EQ(openFdCount(), before) << "connect() walk leaked fds";
  ::close(blocker);
}

TEST(NetServing, SecondDaemonCannotHijackALiveUnixSocket) {
  // Regression for the stale-socket unlink race: bind() used to unlink
  // the path unconditionally, so a second daemon would silently steal —
  // and on exit delete — a live daemon's socket. Now the path is only
  // reclaimed after a probe connect() proves it dead (ECONNREFUSED).
  const std::string path =
      "/tmp/grover_hijack_" + std::to_string(::getpid()) + ".sock";
  ServerConfig serverConfig;
  serverConfig.host = "none";
  serverConfig.unixPath = path;
  Serving first(serverConfig);

  {
    CompileService secondService{ServiceConfig{}};
    Server second(secondService, serverConfig);
    EXPECT_THROW(second.bind(), GroverError);
  }  // ~Server of the loser must NOT unlink the winner's socket

  // The first daemon still owns the path and still serves.
  Client client;
  client.connect(path);
  const Reply r = request(client, "NVD-MT SNB test", 1);
  EXPECT_EQ(r.status, Status::Ok) << r.text;
  first.stop();
  ::unlink(path.c_str());
}

TEST(NetServing, StaleUnixSocketFileIsReclaimed) {
  // A socket file whose owner died (bound once, never unlinked) probes
  // ECONNREFUSED; a new daemon must reclaim the path and serve.
  const std::string path =
      "/tmp/grover_stale_" + std::to_string(::getpid()) + ".sock";
  ::unlink(path.c_str());
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  path.c_str());
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    ::close(fd);  // dead owner: the file stays behind
  }

  ServerConfig serverConfig;
  serverConfig.host = "none";
  serverConfig.unixPath = path;
  Serving s(serverConfig);
  Client client;
  client.connect(path);
  const Reply r = request(client, "AMD-SS SNB test", 1);
  EXPECT_EQ(r.status, Status::Ok) << r.text;
  s.stop();
  ::unlink(path.c_str());
}

TEST(NetServing, SlowRequestIsNotIdleClosedWhileInFlight) {
  // Regression: an idle timeout shorter than a cold compile must not
  // close the connection that is waiting on it — in-flight requests pin
  // the connection, and admission/completion both count as activity.
  ServerConfig serverConfig;
  serverConfig.idleTimeoutMs = 50;
  Serving s(serverConfig);

  Client client;
  client.connect(s.addr());
  // A bench-scale request: far slower than 50 ms of wall clock.
  const Reply r = request(client, "NVD-MT SNB bench", 1);
  EXPECT_EQ(r.status, Status::Ok) << r.text;
  EXPECT_EQ(s.server.stats().idleTimeouts, 0u)
      << "connection idle-closed while its request was in flight";

  // With the response delivered and the connection now genuinely idle,
  // the timeout applies again.
  EXPECT_THROW((void)client.readFrame(), GroverError);
  EXPECT_TRUE(
      eventually([&] { return s.server.stats().idleTimeouts == 1; }));
}

}  // namespace
