// Drives the groverc binary end-to-end (path supplied by CMake as
// GROVERC_PATH): file-handling error paths must exit non-zero with a
// one-line diagnostic — no uncaught exception, no empty-source compile —
// and --serve-batch must serve a request file.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exitCode = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult runGroverc(const std::string& args) {
  const std::string cmd = std::string(GROVERC_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  RunResult r;
  char buf[4096];
  while (pipe != nullptr && fgets(buf, sizeof(buf), pipe) != nullptr) {
    r.output += buf;
  }
  if (pipe != nullptr) {
    const int status = pclose(pipe);
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  return r;
}

std::size_t countLines(const std::string& s) {
  std::size_t n = 0;
  for (char c : s) {
    if (c == '\n') ++n;
  }
  return n;
}

fs::path tmpFile(const std::string& name, const std::string& contents) {
  const fs::path path = fs::temp_directory_path() /
                        ("groverc_cli_" + std::to_string(::getpid()) + "_" +
                         name);
  std::ofstream out(path, std::ios::trunc);
  out << contents;
  return path;
}

TEST(GrovercCli, MissingFileIsOneLineDiagnosticNonZeroExit) {
  const RunResult r = runGroverc("/definitely/not/here.cl");
  EXPECT_NE(r.exitCode, 0);
  EXPECT_NE(r.output.find("cannot read"), std::string::npos) << r.output;
  EXPECT_EQ(countLines(r.output), 1u) << r.output;
  EXPECT_EQ(r.output.find("terminate"), std::string::npos) << r.output;
}

TEST(GrovercCli, DirectoryPathIsRejected) {
  const RunResult r = runGroverc(fs::temp_directory_path().string());
  EXPECT_NE(r.exitCode, 0);
  EXPECT_NE(r.output.find("not a regular file"), std::string::npos)
      << r.output;
  EXPECT_EQ(countLines(r.output), 1u) << r.output;
}

TEST(GrovercCli, EmptyFileIsNotCompiled) {
  const fs::path path = tmpFile("empty.cl", "");
  const RunResult r = runGroverc(path.string());
  EXPECT_NE(r.exitCode, 0);
  EXPECT_NE(r.output.find("file is empty"), std::string::npos) << r.output;
  EXPECT_EQ(countLines(r.output), 1u) << r.output;
  fs::remove(path);
}

TEST(GrovercCli, ValidKernelStillTransforms) {
  const fs::path path = tmpFile("ok.cl", R"CL(
__kernel void copy(__global float* out, __global float* in) {
  __local float tile[16];
  int lx = get_local_id(0);
  tile[lx] = in[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = tile[lx];
}
)CL");
  const RunResult r = runGroverc(path.string() + " --report-only");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("local memory disabled"), std::string::npos)
      << r.output;
  fs::remove(path);
}

TEST(GrovercCli, ServeBatchServesRequestsAndReportsCacheStats) {
  const fs::path batch = tmpFile("batch.txt",
                                 "# two identical + one distinct\n"
                                 "NVD-MT SNB test\n"
                                 "NVD-MT SNB test\n"
                                 "AMD-MT none\n");
  const RunResult r =
      runGroverc("--serve-batch=" + batch.string() + " --repeat=2");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("np "), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("served 6 requests"), std::string::npos)
      << r.output;
  // 2 unique keys → exactly 2 compiles despite 6 requests.
  EXPECT_NE(r.output.find(" 2 compiles"), std::string::npos) << r.output;
  fs::remove(batch);
}

TEST(GrovercCli, ServeBatchMalformedLinesAreAttributedToFileAndLine) {
  // The satellite regression at the CLI layer: a bad request in a batch
  // file is reported with the file name and the 1-based line number it
  // sits on (comments and blank lines count), and fails the run.
  const fs::path batch = tmpFile("malformed.txt",
                                 "# header comment\n"
                                 "NVD-MT SNB test\n"
                                 "\n"
                                 "NVD-MT SNB warp\n"
                                 "AMD-SS SNB bench extra\n");
  const RunResult r = runGroverc("--serve-batch=" + batch.string());
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find(batch.string() + ":4: bad scale 'warp'"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find(batch.string() + ":5: too many arguments"),
            std::string::npos)
      << r.output;
  // The valid line is still served.
  EXPECT_NE(r.output.find("[1] NVD-MT SNB test: ok,"), std::string::npos)
      << r.output;
  fs::remove(batch);
}

TEST(GrovercCli, VersionPrintsInjectedDescribeString) {
  const RunResult r = runGroverc("--version");
  EXPECT_EQ(r.exitCode, 0);
  EXPECT_EQ(r.output.rfind("groverc ", 0), 0u) << r.output;
  EXPECT_EQ(countLines(r.output), 1u) << r.output;
  EXPECT_EQ(r.output.find("@GROVER_GIT_DESCRIBE@"), std::string::npos)
      << r.output;
}

TEST(GrovercCli, ConnectWithoutServeBatchIsRejected) {
  const RunResult r = runGroverc("--connect=127.0.0.1:9 x.cl");
  EXPECT_EQ(r.exitCode, 1);
  EXPECT_NE(r.output.find("--connect requires --serve-batch"),
            std::string::npos)
      << r.output;
  EXPECT_EQ(countLines(r.output), 1u) << r.output;
}

TEST(GrovercCli, ServeBatchMissingFileFails) {
  const RunResult r = runGroverc("--serve-batch=/no/such/batch.txt");
  EXPECT_NE(r.exitCode, 0);
  EXPECT_NE(r.output.find("cannot read"), std::string::npos) << r.output;
}

TEST(GrovercCli, BadNumericFlagValuesExitOneWithOneLineDiagnostic) {
  // Zero, negative, and garbage values of every count flag get the same
  // treatment: one diagnostic line naming the flag and value, exit 1.
  const struct {
    const char* args;
    const char* flag;
  } cases[] = {
      {"--threads=0 x.cl", "--threads"},
      {"--threads=-4 x.cl", "--threads"},
      {"--threads=abc x.cl", "--threads"},
      {"--threads=3junk x.cl", "--threads"},
      {"--repeat=0 x.cl", "--repeat"},
      {"--repeat=-1 x.cl", "--repeat"},
      {"--cache-mb=0 x.cl", "--cache-mb"},
      {"--cache-mb=xyz x.cl", "--cache-mb"},
  };
  for (const auto& c : cases) {
    const RunResult r = runGroverc(c.args);
    EXPECT_EQ(r.exitCode, 1) << c.args << "\n" << r.output;
    EXPECT_NE(r.output.find(std::string("bad ") + c.flag + " value"),
              std::string::npos)
        << c.args << "\n" << r.output;
    EXPECT_EQ(countLines(r.output), 1u) << c.args << "\n" << r.output;
    EXPECT_EQ(r.output.find("terminate"), std::string::npos) << r.output;
  }
}

TEST(GrovercCli, AutoServeBatchLearnsThenServesFromThePolicyStore) {
  const fs::path batch = tmpFile("auto_batch.txt",
                                 "NVD-MT SNB test\n"
                                 "NVD-MT Fermi test\n");
  const fs::path policyDir =
      fs::temp_directory_path() /
      ("groverc_cli_policy_" + std::to_string(::getpid()));
  fs::remove_all(policyDir);

  // Cold run: every request is a cold decision, learned and persisted.
  const std::string args = "--serve-batch=" + batch.string() + " --auto" +
                           " --policy-dir=" + policyDir.string();
  const RunResult cold = runGroverc(args);
  EXPECT_EQ(cold.exitCode, 0) << cold.output;
  EXPECT_NE(cold.output.find("cold decision"), std::string::npos)
      << cold.output;
  EXPECT_NE(cold.output.find("2 decisions stored"), std::string::npos)
      << cold.output;
  // NVD-MT is the paper's flagship: gain on the cache-only CPU, loss on
  // the scratchpad GPU — the policy serves opposite variants.
  EXPECT_NE(cold.output.find("serving without-local-memory"),
            std::string::npos)
      << cold.output;
  EXPECT_NE(cold.output.find("serving with-local-memory"),
            std::string::npos)
      << cold.output;

  // Warm run, fresh process: decisions come back from the disk tier and
  // every request is a policy hit.
  const RunResult warm = runGroverc(args);
  EXPECT_EQ(warm.exitCode, 0) << warm.output;
  EXPECT_NE(warm.output.find("policy hit"), std::string::npos)
      << warm.output;
  EXPECT_NE(warm.output.find("policy: 2 hits, 0 misses"), std::string::npos)
      << warm.output;
  EXPECT_EQ(warm.output.find("cold decision"), std::string::npos)
      << warm.output;

  fs::remove(batch);
  fs::remove_all(policyDir);
}

TEST(GrovercCli, AutoWithoutServeBatchIsRejected) {
  const fs::path path = tmpFile("auto_alone.cl", "__kernel void k() {}\n");
  const RunResult r = runGroverc("--auto " + path.string());
  EXPECT_NE(r.exitCode, 0);
  EXPECT_NE(r.output.find("--auto"), std::string::npos) << r.output;
  EXPECT_EQ(countLines(r.output), 1u) << r.output;
  fs::remove(path);
}

}  // namespace
