// The --serve-batch request grammar, and the satellite it grew: every
// malformed line in a batch file must be reported with file name + line
// number so a bad request in a long file is attributable.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "apps/app.h"
#include "net/batch.h"

namespace {

namespace fs = std::filesystem;

using grover::net::BatchEntry;
using grover::net::parseBatchFile;
using grover::net::parseRequestLine;

TEST(NetBatch, AppPlatformScaleLine) {
  const BatchEntry e = parseRequestLine("NVD-MT SNB bench");
  ASSERT_TRUE(e.valid) << e.error;
  EXPECT_EQ(e.text, "NVD-MT SNB bench");
  EXPECT_EQ(e.request.appId, "NVD-MT");
  EXPECT_EQ(e.request.platform, "SNB");
  EXPECT_EQ(e.request.scale, grover::apps::Scale::Bench);
}

TEST(NetBatch, ScaleDefaultsToTestAndNoneMeansNoPlatform) {
  const BatchEntry e = parseRequestLine("AMD-SS none");
  ASSERT_TRUE(e.valid) << e.error;
  EXPECT_TRUE(e.request.platform.empty());
  EXPECT_EQ(e.request.scale, grover::apps::Scale::Test);
}

TEST(NetBatch, CommentsAndBlanksProduceNoEntry) {
  EXPECT_TRUE(parseRequestLine("").text.empty());
  EXPECT_TRUE(parseRequestLine("   ").text.empty());
  EXPECT_TRUE(parseRequestLine("# a comment").text.empty());
  const BatchEntry e = parseRequestLine("NVD-MT SNB  # trailing comment");
  ASSERT_TRUE(e.valid) << e.error;
  EXPECT_EQ(e.text, "NVD-MT SNB");
}

TEST(NetBatch, BadScaleIsRejectedWithTheOffendingWord) {
  const BatchEntry e = parseRequestLine("NVD-MT SNB warp");
  EXPECT_FALSE(e.valid);
  EXPECT_NE(e.error.find("bad scale 'warp'"), std::string::npos) << e.error;
}

TEST(NetBatch, TooManyArgumentsIsRejected) {
  const BatchEntry e = parseRequestLine("NVD-MT SNB bench extra");
  EXPECT_FALSE(e.valid);
  EXPECT_NE(e.error.find("too many arguments"), std::string::npos)
      << e.error;
}

// The multi-kernel satellite: a second word on a `.cl` line names the
// kernel to serve out of a multi-kernel file.
TEST(NetBatch, ClPathTakesAnOptionalKernelName) {
  const fs::path path =
      fs::temp_directory_path() /
      ("net_batch_name_" + std::to_string(::getpid()) + ".cl");
  std::ofstream(path, std::ios::trunc)
      << "__kernel void k(__global int* a) { a[0] = 1; }\n"
      << "__kernel void other(__global int* a) { a[0] = 2; }\n";
  const BatchEntry e = parseRequestLine(path.string() + " other");
  ASSERT_TRUE(e.valid) << e.error;
  EXPECT_EQ(e.request.kernelName, "other");
  fs::remove(path);
}

TEST(NetBatch, ClPathRejectsMoreThanTwoWords) {
  const BatchEntry e = parseRequestLine("kernel.cl name extra");
  EXPECT_FALSE(e.valid);
  EXPECT_NE(e.error.find("too many arguments"), std::string::npos)
      << e.error;
}

TEST(NetBatch, MissingClFileNamesThePath) {
  const BatchEntry e = parseRequestLine("/definitely/not/here.cl");
  EXPECT_FALSE(e.valid);
  EXPECT_NE(e.error.find("/definitely/not/here.cl"), std::string::npos)
      << e.error;
}

TEST(NetBatch, ClFileIsReadIntoTheRequest) {
  const fs::path path =
      fs::temp_directory_path() /
      ("net_batch_" + std::to_string(::getpid()) + ".cl");
  std::ofstream(path, std::ios::trunc)
      << "__kernel void k(__global int* a) { a[0] = 1; }\n";
  const BatchEntry e = parseRequestLine(path.string());
  ASSERT_TRUE(e.valid) << e.error;
  EXPECT_NE(e.request.source.find("__kernel"), std::string::npos);
  EXPECT_TRUE(e.request.appId.empty());
  fs::remove(path);
}

// The satellite regression: malformed entries from a batch file carry a
// "<file>:<line>: " prefix, counting real file lines (comments and
// blanks included in the count, excluded from the entries).
TEST(NetBatch, MalformedLinesCarryFileAndLineNumber) {
  const std::string contents =
      "# Table IV requests\n"
      "\n"
      "NVD-MT SNB test\n"
      "NVD-MT SNB warp\n"
      "\n"
      "AMD-SS SNB bench extra\n";
  const std::vector<BatchEntry> entries =
      parseBatchFile(contents, "reqs.txt");
  ASSERT_EQ(entries.size(), 3u);

  EXPECT_TRUE(entries[0].valid);
  EXPECT_EQ(entries[0].line, 3u);

  EXPECT_FALSE(entries[1].valid);
  EXPECT_EQ(entries[1].line, 4u);
  EXPECT_EQ(entries[1].error.rfind("reqs.txt:4: ", 0), 0u)
      << entries[1].error;
  EXPECT_NE(entries[1].error.find("bad scale"), std::string::npos);

  EXPECT_FALSE(entries[2].valid);
  EXPECT_EQ(entries[2].error.rfind("reqs.txt:6: ", 0), 0u)
      << entries[2].error;
}

TEST(NetBatch, NoFileNameMeansNoPrefix) {
  const std::vector<BatchEntry> entries =
      parseBatchFile("NVD-MT SNB warp\n");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].error.rfind("bad scale", 0), 0u)
      << entries[0].error;
}

}  // namespace
