// Differential testing: the same kernel must compute identical results
// whether executed as -O0-style IR (allocas everywhere), as optimized SSA,
// or as Grover-transformed SSA — across all benchmark applications and a
// set of control-flow-heavy kernels. This cross-checks IRGen, mem2reg,
// constant folding, SimplifyCFG, CSE, Grover and the interpreter against
// each other.
#include <gtest/gtest.h>

#include "apps/app.h"
#include "grover/grover_pass.h"
#include "grovercl/compiler.h"
#include "grovercl/harness.h"
#include "rt/interpreter.h"

namespace grover {
namespace {

/// Execute a kernel over a 1-D range writing `n` i32 outputs.
std::vector<std::int32_t> runIr(ir::Function& fn, unsigned n,
                                unsigned groupSize,
                                std::int32_t scalarArg) {
  rt::Buffer out = rt::Buffer::zeros<std::int32_t>(n);
  rt::Launch launch(fn, rt::NDRange::make1D(n, groupSize),
                    {rt::KernelArg::buffer(&out),
                     rt::KernelArg::int32(scalarArg)});
  launch.run();
  return out.toVector<std::int32_t>();
}

void expectPipelinesAgree(const std::string& src, unsigned n,
                          unsigned groupSize, std::int32_t scalarArg) {
  CompileOptions raw;
  raw.optimize = false;
  Program unoptimized = compile(src, raw);
  Program optimized = compile(src);
  const auto a =
      runIr(*unoptimized.module->kernels().at(0), n, groupSize, scalarArg);
  const auto b =
      runIr(*optimized.module->kernels().at(0), n, groupSize, scalarArg);
  EXPECT_EQ(a, b);
}

TEST(Differential, NestedLoopsWithBreakContinue) {
  expectPipelinesAgree(R"(
__kernel void k(__global int* out, int n) {
  int i = get_global_id(0);
  int acc = 0;
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if ((a + b) % 3 == 0) continue;
      if (b > a + 2) break;
      acc += a * 10 + b + i;
    }
  }
  out[i] = acc;
})", 32, 8, 7);
}

TEST(Differential, DeepConditionals) {
  expectPipelinesAgree(R"(
__kernel void k(__global int* out, int n) {
  int i = get_global_id(0);
  int v = i;
  if (i < n) {
    if (i % 2 == 0) { v = v * 3; } else { v = v + 100; }
    if (i % 4 == 1) {
      v = v - 7;
    } else {
      if (i % 4 == 2) v = v << 2;
    }
  } else {
    v = -1;
  }
  out[i] = v;
})", 64, 16, 40);
}

TEST(Differential, WhileWithEarlyReturn) {
  expectPipelinesAgree(R"(
__kernel void k(__global int* out, int n) {
  int i = get_global_id(0);
  if (i == 3) {
    out[i] = -99;
    return;
  }
  int v = i;
  int steps = 0;
  while (v != 1 && steps < 64) {
    if (v % 2 == 0) { v = v / 2; } else { v = 3 * v + 1; }
    ++steps;
  }
  out[i] = steps + n;
})", 16, 4, 0);
}

TEST(Differential, ConstantHeavyExpressions) {
  // Everything the constant folder touches must agree with the -O0 run.
  expectPipelinesAgree(R"(
__kernel void k(__global int* out, int n) {
  int i = get_global_id(0);
  int a = (3 + 4) * (10 - 2) / 2;        // 28
  int b = (1 << 6) % 10;                 // 4
  int c = i * 0 + a * 1 + 0;             // 28
  int d = (5 > 2 ? 100 : 200) + (n == n ? 1 : 0);
  out[i] = a + b + c + d + i;
})", 16, 4, 5);
}

TEST(Differential, PrivateArrayShuffles) {
  expectPipelinesAgree(R"(
__kernel void k(__global int* out, int n) {
  int i = get_global_id(0);
  int tmp[8];
  for (int j = 0; j < 8; ++j) tmp[j] = (i + j) * (j + 1);
  for (int j = 0; j < 4; ++j) {
    int t = tmp[j];
    tmp[j] = tmp[7 - j];
    tmp[7 - j] = t;
  }
  int acc = n;
  for (int j = 0; j < 8; ++j) acc = acc * 3 + tmp[j];
  out[i] = acc;
})", 16, 4, 2);
}

// Grover-transformed kernels must agree with both pipelines on every
// benchmark application at Test scale (already covered per-app; this
// parameterized variant additionally runs the *unoptimized* original).
class DifferentialApps : public ::testing::TestWithParam<std::string> {};

TEST_P(DifferentialApps, UnoptimizedOriginalMatchesReference) {
  const apps::Application& app = apps::applicationById(GetParam());
  CompileOptions raw;
  raw.optimize = false;
  Program program = compile(app.source(), raw);
  ir::Function* fn = program.kernel(app.kernelName());
  ASSERT_NE(fn, nullptr);
  auto err = runAndValidate(app, *fn, apps::Scale::Test);
  EXPECT_FALSE(err.has_value()) << *err;
}

INSTANTIATE_TEST_SUITE_P(
    Apps, DifferentialApps,
    ::testing::Values("NVD-MT", "AMD-MM", "NVD-NBody", "PAB-ST", "ROD-SC"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace grover
