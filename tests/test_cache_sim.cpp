// Set-associative LRU cache simulation.
#include "perf/cache_sim.h"

#include <gtest/gtest.h>

#include <vector>

namespace grover::perf {
namespace {

CacheLevelSpec smallCache() {
  // 1 KiB, 2-way, 64B lines → 8 sets.
  return {1024, 2, 64, 4};
}

TEST(CacheLevel, ColdMissThenHit) {
  CacheLevel cache(smallCache());
  EXPECT_FALSE(cache.access(0));
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(63));    // same line
  EXPECT_FALSE(cache.access(64));   // next line
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(CacheLevel, LruEvictionWithinSet) {
  CacheLevel cache(smallCache());
  // Three lines mapping to set 0 (stride = sets*lineSize = 512).
  cache.access(0);
  cache.access(512);
  cache.access(1024);          // evicts line 0 (LRU)
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(512));
  EXPECT_TRUE(cache.contains(1024));
}

TEST(CacheLevel, LruRefreshOnHit) {
  CacheLevel cache(smallCache());
  cache.access(0);
  cache.access(512);
  cache.access(0);      // refresh line 0
  cache.access(1024);   // now 512 is LRU and gets evicted
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(512));
}

TEST(CacheLevel, DisabledCacheNeverHits) {
  CacheLevel cache(CacheLevelSpec{0, 2, 64, 4});
  EXPECT_FALSE(cache.access(0));
  EXPECT_FALSE(cache.access(0));
}

TEST(CacheLevel, ResetClearsState) {
  CacheLevel cache(smallCache());
  cache.access(0);
  cache.reset();
  EXPECT_FALSE(cache.contains(0));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(CacheLevel, PowerOfTwoStrideThrashesOneSet) {
  // The mechanism behind the paper's NVD-MM-B loss: 4 KiB-strided rows all
  // land in one set of a small cache and thrash.
  CacheLevelSpec spec{32 * 1024, 8, 64, 4};  // L1: 64 sets, 4 KiB set span
  CacheLevel cache(spec);
  const std::uint64_t stride = 4096;
  // First pass: 16 lines, same set → all miss.
  for (int r = 0; r < 16; ++r) cache.access(r * stride);
  // Second pass: with only 8 ways, LRU guarantees all miss again.
  const std::uint64_t missesBefore = cache.misses();
  for (int r = 0; r < 16; ++r) cache.access(r * stride);
  EXPECT_EQ(cache.misses(), missesBefore + 16);
}

TEST(CacheLevel, SequentialLinesDoNotThrash) {
  CacheLevelSpec spec{32 * 1024, 8, 64, 4};
  CacheLevel cache(spec);
  for (int r = 0; r < 16; ++r) cache.access(r * 64);
  for (int r = 0; r < 16; ++r) EXPECT_TRUE(cache.access(r * 64));
}

TEST(CacheHierarchy, LatencyByHitLevel) {
  std::vector<CacheLevelSpec> levels{{1024, 2, 64, 4}, {4096, 4, 64, 12}};
  CacheLevel llc({16384, 8, 64, 30});
  CacheHierarchy hier(levels, &llc, 200);
  EXPECT_DOUBLE_EQ(hier.access(0, 4), 200);  // cold: DRAM
  EXPECT_DOUBLE_EQ(hier.access(0, 4), 4);    // L1 hit
  // Evict from tiny L1 by touching other set-0 lines, then L2 hit.
  hier.access(512, 4);
  hier.access(1024, 4);
  EXPECT_DOUBLE_EQ(hier.access(0, 4), 12);
}

TEST(CacheHierarchy, NoLlcFallsToMemory) {
  std::vector<CacheLevelSpec> levels{{1024, 2, 64, 4}};
  CacheHierarchy hier(levels, nullptr, 300);
  EXPECT_DOUBLE_EQ(hier.access(0, 4), 300);
  EXPECT_DOUBLE_EQ(hier.access(0, 4), 4);
}

TEST(CacheHierarchy, LineCrossingAccessTakesWorstLine) {
  std::vector<CacheLevelSpec> levels{{1024, 2, 64, 4}};
  CacheHierarchy hier(levels, nullptr, 300);
  hier.access(0, 4);           // warm line 0
  // Access straddling lines 0 and 1: line 1 cold → DRAM latency.
  EXPECT_DOUBLE_EQ(hier.access(60, 8), 300);
  EXPECT_DOUBLE_EQ(hier.access(60, 8), 4);  // both warm now
}

// Property: hits + misses == accesses, and a repeat pass over a working
// set smaller than capacity always hits.
class CacheProperty : public ::testing::TestWithParam<int> {};

TEST_P(CacheProperty, SmallWorkingSetAlwaysHitsOnSecondPass) {
  const unsigned waysExp = static_cast<unsigned>(GetParam());
  CacheLevelSpec spec{8192, 1u << (waysExp % 4), 64, 4};
  CacheLevel cache(spec);
  const std::uint64_t lines = spec.bytes / spec.lineSize / 2;  // half cap
  for (std::uint64_t i = 0; i < lines; ++i) cache.access(i * 64);
  for (std::uint64_t i = 0; i < lines; ++i) {
    EXPECT_TRUE(cache.access(i * 64)) << "line " << i;
  }
  EXPECT_EQ(cache.hits() + cache.misses(), 2 * lines);
}

INSTANTIATE_TEST_SUITE_P(Assoc, CacheProperty, ::testing::Range(0, 4));

}  // namespace
}  // namespace grover::perf
