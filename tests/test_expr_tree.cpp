// Index expression trees (paper Fig. 6) and Fig. 7 pattern classification.
#include "grover/expr_tree.h"

#include <gtest/gtest.h>

#include "grover/candidates.h"
#include "grovercl/compiler.h"
#include "ir/casting.h"

namespace grover::grv {
namespace {

using namespace ir;

struct Compiled {
  Program program;
  Value* lsIndex = nullptr;
  Value* glIndex = nullptr;
};

/// Compile a staging kernel and return the LS / GL index values.
Compiled compileIndex(const std::string& lsExpr, const std::string& glExpr) {
  Compiled c;
  const std::string src = R"(
#define S 16
__kernel void k(__global float* in, int W) {
  __local float lm[4096];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int wx = get_group_id(0);
  int wy = get_group_id(1);
  lm[)" + lsExpr + R"(] = in[)" + glExpr + R"(];
  barrier(CLK_LOCAL_MEM_FENCE);
  in[0] = lm[0];
}
)";
  c.program = compile(src);
  auto cands = findCandidates(*c.program.kernel("k"));
  EXPECT_EQ(cands.size(), 1u);
  EXPECT_TRUE(cands[0].patternOK) << cands[0].reason;
  c.lsIndex = cands[0].pairs[0].lsIndex;
  c.glIndex = cands[0].pairs[0].glIndex;
  return c;
}

TEST(ExprTree, BuildStopsAtLeaves) {
  Compiled c = compileIndex("ly*S + lx", "(wy*S + ly)*W + wx*S + lx");
  ExprTree tree = ExprTree::build(c.lsIndex);
  // Root is the outer add; leaves are calls/constants.
  EXPECT_GE(tree.size(), 5u);
  for (ExprNode* leaf : tree.leaves()) {
    EXPECT_TRUE(isExprLeaf(leaf->value));
  }
  // Parent links are consistent.
  EXPECT_EQ(tree.root()->parent, nullptr);
  for (ExprNode* child : tree.root()->children) {
    EXPECT_EQ(child->parent, tree.root());
  }
}

TEST(ExprTree, MarkDirtyUpward) {
  Compiled c = compileIndex("ly*S + lx", "wx*S + lx");
  ExprTree tree = ExprTree::build(c.lsIndex);
  auto leaves = tree.leaves();
  ASSERT_FALSE(leaves.empty());
  ExprTree::markDirtyUpward(leaves.back());
  // Every ancestor of that leaf (including the root) is marked.
  EXPECT_TRUE(tree.root()->state);
  ExprNode* node = leaves.back();
  while (node != nullptr) {
    EXPECT_TRUE(node->state);
    node = node->parent;
  }
  // The first leaf on a different branch is not marked.
  EXPECT_FALSE(leaves.front()->state);
}

TEST(ExprTree, RenderIndexExpr) {
  Compiled c = compileIndex("ly*S + lx", "(wy*S + ly)*W + (wx*S + lx)");
  const std::string ls = renderIndexExpr(c.lsIndex);
  EXPECT_NE(ls.find("ly"), std::string::npos);
  EXPECT_NE(ls.find("16"), std::string::npos);
  EXPECT_NE(ls.find("lx"), std::string::npos);
  const std::string gl = renderIndexExpr(c.glIndex);
  EXPECT_NE(gl.find("W"), std::string::npos);
  EXPECT_NE(gl.find("wy"), std::string::npos);
}

TEST(ExprTree, ClassifyPlusMul) {
  Compiled c = compileIndex("ly*S + lx", "wx*S + lx");
  EXPECT_EQ(classifyIndexPattern(c.lsIndex), IndexPattern::PlusMul);
}

TEST(ExprTree, ClassifySimple) {
  Compiled c = compileIndex("lx", "wx*S + lx");
  EXPECT_EQ(classifyIndexPattern(c.lsIndex), IndexPattern::Simple);
}

TEST(ExprTree, ClassifyConstant) {
  Compiled c = compileIndex("0", "wx*S + lx");
  EXPECT_EQ(classifyIndexPattern(c.lsIndex), IndexPattern::Constant);
}

TEST(ExprTree, ClassifyDerivedPlus) {
  // (L1 + H*S) + L2 — Fig. 7(b)'s '+ → + → *'.
  Compiled c = compileIndex("(lx + ly*S) + 1", "wx*S + lx");
  const IndexPattern p = classifyIndexPattern(c.lsIndex);
  EXPECT_TRUE(p == IndexPattern::DerivedPlus || p == IndexPattern::PlusMul)
      << toString(p);
}

TEST(ExprTree, ShlCountsAsStrideMul) {
  Compiled c = compileIndex("(ly << 4) + lx", "wx*S + lx");
  EXPECT_EQ(classifyIndexPattern(c.lsIndex), IndexPattern::PlusMul);
}

}  // namespace
}  // namespace grover::grv
