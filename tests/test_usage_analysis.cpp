// Local-memory usage detection (paper contribution #2).
#include "grover/usage_analysis.h"

#include <gtest/gtest.h>

#include "apps/app.h"
#include "grovercl/compiler.h"

namespace grover::grv {
namespace {

LocalUsageReport analyze(Program& program, const std::string& src) {
  program = compile(src);
  return analyzeLocalMemoryUsage(*program.module->kernels().at(0));
}

TEST(UsageAnalysis, DetectsSoftwareCache) {
  Program p;
  auto report = analyze(p, R"(
__kernel void k(__global float* in, __global float* out) {
  __local float lm[16][4];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  lm[lx][ly] = in[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = lm[lx][ly];
})");
  ASSERT_EQ(report.buffers.size(), 1u);
  const LocalBufferUsage& b = report.buffers[0];
  EXPECT_EQ(b.kind, LocalUsageKind::SoftwareCache);
  EXPECT_EQ(b.sizeBytes, 256u);
  EXPECT_EQ(b.declaredDims, (std::vector<std::uint64_t>{16, 4}));
  EXPECT_EQ(b.numStores, 1u);
  EXPECT_EQ(b.numLoads, 1u);
  EXPECT_EQ(b.numStagingPairs, 1u);
  EXPECT_TRUE(b.guardedByBarrier);
  EXPECT_TRUE(report.anyReversible());
  EXPECT_EQ(report.totalLocalBytes, 256u);
  EXPECT_EQ(report.numBarriers, 1u);
}

TEST(UsageAnalysis, DetectsTemporalStorage) {
  Program p;
  auto report = analyze(p, R"(
__kernel void k(__global float* in, __global float* out) {
  __local float scratch[64];
  int lx = get_local_id(0);
  scratch[lx] = in[lx] + 1.0f;
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = scratch[lx];
})");
  ASSERT_EQ(report.buffers.size(), 1u);
  EXPECT_EQ(report.buffers[0].kind, LocalUsageKind::TemporalStorage);
  EXPECT_FALSE(report.anyReversible());
}

TEST(UsageAnalysis, DetectsWriteOnly) {
  Program p;
  auto report = analyze(p, R"(
__kernel void k(__global float* in, __global float* out) {
  __local float lm[16];
  int lx = get_local_id(0);
  lm[lx] = in[lx];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = in[lx];
})");
  ASSERT_EQ(report.buffers.size(), 1u);
  EXPECT_EQ(report.buffers[0].kind, LocalUsageKind::WriteOnly);
}

TEST(UsageAnalysis, DetectsReadOnly) {
  Program p;
  auto report = analyze(p, R"(
__kernel void k(__global float* out) {
  __local float lm[16];
  int lx = get_local_id(0);
  out[lx] = lm[lx];
})");
  ASSERT_EQ(report.buffers.size(), 1u);
  EXPECT_EQ(report.buffers[0].kind, LocalUsageKind::ReadOnly);
}

TEST(UsageAnalysis, MixedBuffersClassifiedIndependently) {
  Program p;
  auto report = analyze(p, R"(
__kernel void k(__global float* in, __global float* out) {
  __local float cacheBuf[16];
  __local float scratch[16];
  int lx = get_local_id(0);
  cacheBuf[lx] = in[lx];
  scratch[lx] = in[lx] * 2.0f;
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = cacheBuf[15 - lx] + scratch[15 - lx];
})");
  ASSERT_EQ(report.buffers.size(), 2u);
  EXPECT_EQ(report.find("cacheBuf")->kind, LocalUsageKind::SoftwareCache);
  EXPECT_EQ(report.find("scratch")->kind, LocalUsageKind::TemporalStorage);
  EXPECT_TRUE(report.anyReversible());
  EXPECT_EQ(report.find("nonexistent"), nullptr);
}

TEST(UsageAnalysis, ReportRenders) {
  Program p;
  auto report = analyze(p, R"(
__kernel void k(__global float* in, __global float* out) {
  __local float lm[8];
  int lx = get_local_id(0);
  lm[lx] = in[lx];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = lm[7 - lx];
})");
  const std::string text = report.str();
  EXPECT_NE(text.find("software-cache"), std::string::npos);
  EXPECT_NE(text.find("lm"), std::string::npos);
  EXPECT_NE(text.find("32 B"), std::string::npos);
}

TEST(UsageAnalysis, AllPaperAppsAreSoftwareCaches) {
  // Every Table I benchmark uses local memory as a software cache — the
  // precondition for the paper's 100% transformation success.
  for (const auto& app : apps::allApplications()) {
    Program program = compile(app->source());
    auto report =
        analyzeLocalMemoryUsage(*program.kernel(app->kernelName()));
    EXPECT_TRUE(report.anyReversible()) << app->id();
    for (const auto& b : report.buffers) {
      EXPECT_EQ(b.kind, LocalUsageKind::SoftwareCache)
          << app->id() << " buffer " << b.name;
    }
  }
}

}  // namespace
}  // namespace grover::grv
