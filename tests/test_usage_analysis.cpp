// Local-memory usage detection (paper contribution #2).
#include "grover/usage_analysis.h"

#include <gtest/gtest.h>

#include "apps/app.h"
#include "grovercl/compiler.h"
#include "ir/builder.h"

namespace grover::grv {
namespace {

LocalUsageReport analyze(Program& program, const std::string& src) {
  program = compile(src);
  return analyzeLocalMemoryUsage(*program.module->kernels().at(0));
}

TEST(UsageAnalysis, DetectsSoftwareCache) {
  Program p;
  auto report = analyze(p, R"(
__kernel void k(__global float* in, __global float* out) {
  __local float lm[16][4];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  lm[lx][ly] = in[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = lm[lx][ly];
})");
  ASSERT_EQ(report.buffers.size(), 1u);
  const LocalBufferUsage& b = report.buffers[0];
  EXPECT_EQ(b.kind, LocalUsageKind::SoftwareCache);
  EXPECT_EQ(b.sizeBytes, 256u);
  EXPECT_EQ(b.declaredDims, (std::vector<std::uint64_t>{16, 4}));
  EXPECT_EQ(b.numStores, 1u);
  EXPECT_EQ(b.numLoads, 1u);
  EXPECT_EQ(b.numStagingPairs, 1u);
  EXPECT_TRUE(b.guardedByBarrier);
  EXPECT_TRUE(report.anyReversible());
  EXPECT_EQ(report.totalLocalBytes, 256u);
  EXPECT_EQ(report.numBarriers, 1u);
}

TEST(UsageAnalysis, DetectsTemporalStorage) {
  Program p;
  auto report = analyze(p, R"(
__kernel void k(__global float* in, __global float* out) {
  __local float scratch[64];
  int lx = get_local_id(0);
  scratch[lx] = in[lx] + 1.0f;
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = scratch[lx];
})");
  ASSERT_EQ(report.buffers.size(), 1u);
  EXPECT_EQ(report.buffers[0].kind, LocalUsageKind::TemporalStorage);
  EXPECT_FALSE(report.anyReversible());
}

TEST(UsageAnalysis, DetectsWriteOnly) {
  Program p;
  auto report = analyze(p, R"(
__kernel void k(__global float* in, __global float* out) {
  __local float lm[16];
  int lx = get_local_id(0);
  lm[lx] = in[lx];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = in[lx];
})");
  ASSERT_EQ(report.buffers.size(), 1u);
  EXPECT_EQ(report.buffers[0].kind, LocalUsageKind::WriteOnly);
}

TEST(UsageAnalysis, DetectsReadOnly) {
  Program p;
  auto report = analyze(p, R"(
__kernel void k(__global float* out) {
  __local float lm[16];
  int lx = get_local_id(0);
  out[lx] = lm[lx];
})");
  ASSERT_EQ(report.buffers.size(), 1u);
  EXPECT_EQ(report.buffers[0].kind, LocalUsageKind::ReadOnly);
}

TEST(UsageAnalysis, MixedBuffersClassifiedIndependently) {
  Program p;
  auto report = analyze(p, R"(
__kernel void k(__global float* in, __global float* out) {
  __local float cacheBuf[16];
  __local float scratch[16];
  int lx = get_local_id(0);
  cacheBuf[lx] = in[lx];
  scratch[lx] = in[lx] * 2.0f;
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = cacheBuf[15 - lx] + scratch[15 - lx];
})");
  ASSERT_EQ(report.buffers.size(), 2u);
  EXPECT_EQ(report.find("cacheBuf")->kind, LocalUsageKind::SoftwareCache);
  EXPECT_EQ(report.find("scratch")->kind, LocalUsageKind::TemporalStorage);
  EXPECT_TRUE(report.anyReversible());
  EXPECT_EQ(report.find("nonexistent"), nullptr);
}

TEST(UsageAnalysis, ReportRenders) {
  Program p;
  auto report = analyze(p, R"(
__kernel void k(__global float* in, __global float* out) {
  __local float lm[8];
  int lx = get_local_id(0);
  lm[lx] = in[lx];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = lm[7 - lx];
})");
  const std::string text = report.str();
  EXPECT_NE(text.find("software-cache"), std::string::npos);
  EXPECT_NE(text.find("lm"), std::string::npos);
  EXPECT_NE(text.find("32 B"), std::string::npos);
}

TEST(UsageAnalysis, GlobalOnlyFenceDoesNotGuard) {
  // barrier(CLK_GLOBAL_MEM_FENCE) orders global memory only; it must not
  // mark the staging buffer "barrier-guarded".
  Program p;
  auto report = analyze(p, R"(
__kernel void k(__global float* in, __global float* out) {
  __local float lm[16];
  int lx = get_local_id(0);
  lm[lx] = in[lx];
  barrier(CLK_GLOBAL_MEM_FENCE);
  out[lx] = lm[15 - lx];
})");
  ASSERT_EQ(report.buffers.size(), 1u);
  EXPECT_FALSE(report.buffers[0].guardedByBarrier);
  EXPECT_EQ(report.numBarriers, 1u);  // the barrier is still counted
}

TEST(UsageAnalysis, CombinedFenceStillGuards) {
  Program p;
  auto report = analyze(p, R"(
__kernel void k(__global float* in, __global float* out) {
  __local float lm[16];
  int lx = get_local_id(0);
  lm[lx] = in[lx];
  barrier(CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE);
  out[lx] = lm[15 - lx];
})");
  ASSERT_EQ(report.buffers.size(), 1u);
  EXPECT_TRUE(report.buffers[0].guardedByBarrier);
}

TEST(UsageAnalysis, StoredPointerValueIsNotAStore) {
  // A store whose *value* operand is the local buffer pointer (the address
  // escaping) must not be counted as a store into the buffer.
  ir::Context ctx;
  ir::Module module(ctx, "m");
  ir::Function* fn = module.addFunction("k", ctx.voidTy(), true);
  ir::Argument* out = fn->addArgument(
      ctx.pointerTy(ctx.pointerTy(ctx.floatTy(), ir::AddrSpace::Local),
                    ir::AddrSpace::Global),
      "out");
  ir::BasicBlock* bb = fn->addBlock("entry");
  ir::IRBuilder b(ctx);
  b.setInsertPoint(bb);
  ir::AllocaInst* tile =
      b.createAlloca(ctx.floatTy(), 16, ir::AddrSpace::Local, "tile");
  ir::Value* gx = b.createIdQuery(ir::Builtin::GetGlobalId, 0, "gx");
  b.createStore(tile, b.createGep(out, gx));  // publishes the address
  b.createRetVoid();

  auto report = analyzeLocalMemoryUsage(*fn);
  ASSERT_EQ(report.buffers.size(), 1u);
  EXPECT_EQ(report.buffers[0].numStores, 0u);
  EXPECT_EQ(report.buffers[0].numLoads, 0u);
  EXPECT_EQ(report.buffers[0].kind, LocalUsageKind::Unused);
}

TEST(UsageAnalysis, NestedGepStoresAreCounted) {
  // Stores through multi-level GEP chains write to the buffer just as
  // single-level ones do and must all be counted.
  ir::Context ctx;
  ir::Module module(ctx, "m");
  ir::Function* fn = module.addFunction("k", ctx.voidTy(), true);
  fn->addArgument(ctx.pointerTy(ctx.floatTy(), ir::AddrSpace::Global), "in");
  ir::BasicBlock* bb = fn->addBlock("entry");
  ir::IRBuilder b(ctx);
  b.setInsertPoint(bb);
  ir::AllocaInst* tile =
      b.createAlloca(ctx.floatTy(), 64, ir::AddrSpace::Local, "tile");
  ir::Value* lx = b.createIdQuery(ir::Builtin::GetLocalId, 0, "lx");
  ir::GepInst* row = b.createGep(tile, lx);
  b.createStore(ctx.getFloat(1.0F), b.createGep(row, ctx.getInt32(1)));
  b.createStore(ctx.getFloat(2.0F), b.createGep(row, ctx.getInt32(2)));
  b.createStore(ctx.getFloat(3.0F), tile);  // direct store, no GEP
  b.createRetVoid();

  auto report = analyzeLocalMemoryUsage(*fn);
  ASSERT_EQ(report.buffers.size(), 1u);
  EXPECT_EQ(report.buffers[0].numStores, 3u);
}

TEST(UsageAnalysis, AllPaperAppsAreSoftwareCaches) {
  // Every Table I benchmark uses local memory as a software cache — the
  // precondition for the paper's 100% transformation success.
  for (const auto& app : apps::allApplications()) {
    Program program = compile(app->source());
    auto report =
        analyzeLocalMemoryUsage(*program.kernel(app->kernelName()));
    EXPECT_TRUE(report.anyReversible()) << app->id();
    for (const auto& b : report.buffers) {
      EXPECT_EQ(b.kind, LocalUsageKind::SoftwareCache)
          << app->id() << " buffer " << b.name;
    }
  }
}

}  // namespace
}  // namespace grover::grv
