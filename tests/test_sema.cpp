// Sema: symbol tables, type checking, OpenCL-specific rules.
#include "clc/sema.h"

#include <gtest/gtest.h>

#include "clc/lexer.h"
#include "clc/parser.h"

namespace grover::clc {
namespace {

/// Run sema; returns collected diagnostics text ("" = clean).
std::string checkSource(const std::string& src) {
  DiagnosticEngine diags;
  Lexer lexer(src, diags);
  Parser parser(lexer.tokens(), diags);
  auto tu = parser.parse();
  EXPECT_FALSE(diags.hasErrors()) << "parse failed: " << diags.str();
  ir::Context ctx;
  Sema sema(ctx, diags);
  sema.check(*tu);
  return diags.hasErrors() ? diags.str() : "";
}

TEST(Sema, CleanKernel) {
  EXPECT_EQ(checkSource(R"(
__kernel void k(__global float* out, int n) {
  int i = get_global_id(0);
  if (i < n) out[i] = 2.0f * (float)i;
})"),
            "");
}

TEST(Sema, UndeclaredNameIsError) {
  EXPECT_NE(checkSource("__kernel void k() { int a = b; }"), "");
}

TEST(Sema, RedeclarationInSameScopeIsError) {
  EXPECT_NE(checkSource("__kernel void k() { int a = 0; int a = 1; }"), "");
}

TEST(Sema, ShadowingInInnerScopeIsAllowed) {
  EXPECT_EQ(checkSource(
                "__kernel void k() { int a = 0; { int a = 1; a = a + 1; } }"),
            "");
}

TEST(Sema, KernelMustReturnVoid) {
  EXPECT_NE(checkSource("__kernel int k() { return 1; }"), "");
}

TEST(Sema, DuplicateKernelNamesAreRejected) {
  const std::string diags = checkSource(R"(
__kernel void k(__global float* out) { out[0] = 1.0f; }
__kernel void k(__global float* out) { out[0] = 2.0f; }
)");
  EXPECT_NE(diags.find("redefinition of function 'k'"), std::string::npos)
      << diags;
}

TEST(Sema, DistinctKernelNamesInOneFileAreFine) {
  EXPECT_EQ(checkSource(R"(
__kernel void a(__global float* out) { out[0] = 1.0f; }
__kernel void b(__global float* out) { out[0] = 2.0f; }
)"),
            "");
}

TEST(Sema, KernelPointerParamNeedsAddressSpace) {
  EXPECT_NE(checkSource("__kernel void k(float* p) { }"), "");
  EXPECT_EQ(checkSource("__kernel void k(__global float* p) { }"), "");
}

TEST(Sema, AssignToConstParamIsError) {
  EXPECT_NE(checkSource("__kernel void k(const int n) { n = 3; }"), "");
}

TEST(Sema, AssignToRValueIsError) {
  EXPECT_NE(checkSource("__kernel void k(int a, int b) { a + b = 3; }"), "");
}

TEST(Sema, ArrayDimensionMustBeConstant) {
  EXPECT_NE(checkSource("__kernel void k(int n) { __local float lm[n]; }"),
            "");
  EXPECT_EQ(
      checkSource("__kernel void k() { __local float lm[4*4]; lm[0]=1.0f; }"),
      "");
}

TEST(Sema, WrongIndexArityIsError) {
  EXPECT_NE(checkSource(R"(
__kernel void k() { __local float lm[4][4]; lm[1] = 0.0f; })"),
            "");
  EXPECT_NE(checkSource(R"(
__kernel void k(__global float* p) { p[1][2] = 0.0f; })"),
            "");
}

TEST(Sema, SubscriptOfScalarIsError) {
  EXPECT_NE(checkSource("__kernel void k(int a) { int x = a[0]; }"), "");
}

TEST(Sema, VectorMemberAccess) {
  EXPECT_EQ(checkSource(
                "__kernel void k(float4 v) { float x = v.x + v.w; }"),
            "");
  EXPECT_NE(checkSource("__kernel void k(float4 v) { float x = v.q; }"), "");
  // .z is out of range for float2.
  EXPECT_NE(checkSource("__kernel void k(float2 v) { float x = v.z; }"), "");
}

TEST(Sema, MemberOfScalarIsError) {
  EXPECT_NE(checkSource("__kernel void k(float f) { float x = f.x; }"), "");
}

TEST(Sema, UnknownFunctionIsError) {
  EXPECT_NE(checkSource("__kernel void k() { frobnicate(1); }"), "");
}

TEST(Sema, BuiltinArityChecked) {
  EXPECT_NE(checkSource("__kernel void k() { int i = get_global_id(); }"),
            "");
  EXPECT_NE(checkSource("__kernel void k(float f) { float s = sqrt(f, f); }"),
            "");
}

TEST(Sema, BreakOutsideLoopIsError) {
  EXPECT_NE(checkSource("__kernel void k() { break; }"), "");
  EXPECT_EQ(checkSource(
                "__kernel void k() { for (int i = 0; i < 4; ++i) break; }"),
            "");
}

TEST(Sema, IncDecRequiresIntegerLValue) {
  EXPECT_NE(checkSource("__kernel void k(float f) { f++; }"), "");
  EXPECT_NE(checkSource("__kernel void k() { 3++; }"), "");
}

TEST(Sema, DotRequiresIdenticalVectors) {
  EXPECT_EQ(checkSource(
                "__kernel void k(float4 a, float4 b) { float d = dot(a, b); }"),
            "");
  EXPECT_NE(checkSource(
                "__kernel void k(float4 a, float2 b) { float d = dot(a, b); }"),
            "");
}

TEST(Sema, PointerLocalVariablesRejected) {
  EXPECT_NE(checkSource(
                "__kernel void k(__global float* p) { __global float* q; }"),
            "");
}

TEST(Sema, LocalScalarVariablesRejected) {
  EXPECT_NE(checkSource("__kernel void k() { __local float x; }"), "");
}

TEST(Sema, ConditionMustBeScalar) {
  EXPECT_NE(checkSource(
                "__kernel void k(float4 v, __global float* o) { if (v) o[0] = 1.0f; }"),
            "");
}

TEST(Sema, VectorScalarBroadcastInArithmetic) {
  EXPECT_EQ(checkSource(
                "__kernel void k(float4 v) { float4 w = v * 2.0f; }"),
            "");
}

TEST(Sema, IncompatibleVectorOpsRejected) {
  EXPECT_NE(checkSource(
                "__kernel void k(float4 a, int4 b) { float4 c = a + b; }"),
            "");
}

TEST(Sema, TypesAnnotatedOnExpressions) {
  DiagnosticEngine diags;
  Lexer lexer("__kernel void k(int a, float f) { float x = a + f; }", diags);
  Parser parser(lexer.tokens(), diags);
  auto tu = parser.parse();
  ir::Context ctx;
  Sema sema(ctx, diags);
  ASSERT_TRUE(sema.check(*tu));
  const auto& decl =
      static_cast<const DeclStmt&>(*tu->kernels[0]->body->stmts[0]);
  ASSERT_NE(decl.init->type, nullptr);
  EXPECT_EQ(decl.init->type, ctx.floatTy());  // int + float promotes
}

TEST(SemaHelpers, CommonNumericType) {
  ir::Context ctx;
  EXPECT_EQ(commonNumericType(ctx, ctx.int32Ty(), ctx.floatTy()),
            ctx.floatTy());
  EXPECT_EQ(commonNumericType(ctx, ctx.int32Ty(), ctx.int64Ty()),
            ctx.int64Ty());
  EXPECT_EQ(commonNumericType(ctx, ctx.boolTy(), ctx.boolTy()),
            ctx.int32Ty());  // bool promotes to int
  ir::Type* v4 = ctx.vectorTy(ctx.floatTy(), 4);
  EXPECT_EQ(commonNumericType(ctx, v4, ctx.floatTy()), v4);
  EXPECT_EQ(commonNumericType(ctx, v4, ctx.vectorTy(ctx.int32Ty(), 4)),
            nullptr);
}

TEST(SemaHelpers, EvalConstIntExpr) {
  DiagnosticEngine diags;
  Lexer lexer("__kernel void k() { __local float a[2*8+1]; a[0] = 0.0f; }",
              diags);
  Parser parser(lexer.tokens(), diags);
  auto tu = parser.parse();
  const auto& decl =
      static_cast<const DeclStmt&>(*tu->kernels[0]->body->stmts[0]);
  EXPECT_EQ(evalConstIntExpr(*decl.arrayDims[0]), 17);
}

}  // namespace
}  // namespace grover::clc
