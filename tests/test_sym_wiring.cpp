// End-to-end wiring of the symbolic race prover (DESIGN.md §13): the
// service prove stage and its counters, proof persistence through the
// artifact disk tier and the policy store, the warm-hit no-reprove
// contract, the Refuted-decision veto, confidence decay with age, and
// the stale-contradicted-entry re-measure regression.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <optional>
#include <string>

#include "check/kernel_gen.h"
#include "check/validator.h"
#include "grovercl/compiler.h"
#include "net/render.h"
#include "policy/policy_store.h"
#include "service/compile_service.h"
#include "sym/report.h"

namespace grover {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& tag) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("grover_sym_wiring_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::uint64_t nowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

service::Request appRequest(bool prove) {
  service::Request req;
  req.appId = "NVD-MT";
  req.platform = "SNB";
  req.scale = apps::Scale::Test;
  req.options.prove = prove;
  return req;
}

/// A genuinely racy kernel from the fuzzer's Race family (the local
/// store ignores a dimension the global load depends on).
check::GeneratedKernel racyKernel() {
  check::KernelSpec spec;
  spec.family = check::KernelFamily::Race;
  spec.seed = 7;
  return check::render(check::normalize(spec));
}

// ---- service prove stage -------------------------------------------------

TEST(SymWiring, ProveStagePopulatesArtifactAndCounters) {
  service::CompileService svc;
  const service::ArtifactPtr a = svc.run(appRequest(/*prove=*/true));
  ASSERT_TRUE(a->ok) << a->diagnostics;
  // Both sides were proved; Table I originals must never be Refuted.
  EXPECT_NE(a->proofOriginal, sym::ProofStatus::Unchecked);
  EXPECT_NE(a->proofOriginal, sym::ProofStatus::Refuted);
  EXPECT_NE(a->proofTransformed, sym::ProofStatus::Unchecked);
  EXPECT_NE(a->proofTransformed, sym::ProofStatus::Refuted);
  EXPECT_FALSE(a->proofVetoed);
  const service::ServiceStats s = svc.stats();
  EXPECT_GE(s.proofsRun, 2u);  // original + transformed
  EXPECT_EQ(s.proofsRefuted, 0u);
  EXPECT_EQ(s.proofVetoes, 0u);
}

TEST(SymWiring, WithoutProveArtifactStaysUnchecked) {
  service::CompileService svc;
  const service::ArtifactPtr a = svc.run(appRequest(/*prove=*/false));
  ASSERT_TRUE(a->ok);
  EXPECT_EQ(a->proofOriginal, sym::ProofStatus::Unchecked);
  EXPECT_EQ(a->proofTransformed, sym::ProofStatus::Unchecked);
  EXPECT_EQ(svc.stats().proofsRun, 0u);
}

TEST(SymWiring, ProveIsPartOfTheCacheKey) {
  service::Request with = appRequest(true);
  service::Request without = appRequest(false);
  EXPECT_NE(
      service::CompileService::cacheKey(service::CompileService::resolve(with)),
      service::CompileService::cacheKey(
          service::CompileService::resolve(without)));
}

TEST(SymWiring, RacyOriginalIsRefutedButNotAVeto) {
  // A kernel that was already racy before Grover touched it is the
  // author's bug, not the transform's: Refuted original, no veto.
  const check::GeneratedKernel kernel = racyKernel();
  service::Request req;
  req.source = kernel.source;
  req.options.prove = true;
  service::CompileService svc;
  const service::ArtifactPtr a = svc.run(req);
  ASSERT_TRUE(a->ok) << a->diagnostics;
  EXPECT_EQ(a->proofOriginal, sym::ProofStatus::Refuted);
  EXPECT_FALSE(a->proofVetoed);
  EXPECT_NE(a->proofNote.find("refuted"), std::string::npos) << a->proofNote;
  EXPECT_GE(svc.stats().proofsRefuted, 1u);
}

TEST(SymWiring, ProofRoundTripsThroughTheDiskTier) {
  const std::string dir = freshDir("disk");
  service::ServiceConfig config;
  config.cache.diskDir = dir;
  service::ArtifactPtr cold;
  {
    service::CompileService svc(config);
    cold = svc.run(appRequest(true));
    ASSERT_TRUE(cold->ok);
  }
  service::CompileService warm(config);
  const service::ArtifactPtr reloaded = warm.run(appRequest(true));
  ASSERT_TRUE(reloaded->ok);
  EXPECT_EQ(warm.stats().diskHits, 1u);
  EXPECT_EQ(reloaded->proofOriginal, cold->proofOriginal);
  EXPECT_EQ(reloaded->proofTransformed, cold->proofTransformed);
  EXPECT_EQ(reloaded->proofNote, cold->proofNote);
  EXPECT_EQ(reloaded->proofVetoed, cold->proofVetoed);
  fs::remove_all(dir);
}

// ---- compileAuto: proof in the decision loop -----------------------------

TEST(SymWiring, WarmPolicyHitCarriesProofWithoutReproving) {
  service::CompileService svc;
  const service::AutoResult cold = svc.compileAuto(appRequest(true));
  ASSERT_TRUE(cold.eligible);
  ASSERT_FALSE(cold.policyHit);
  EXPECT_NE(cold.decision.proof, sym::ProofStatus::Unchecked);
  const std::uint64_t proofsAfterCold = svc.stats().proofsRun;
  EXPECT_GE(proofsAfterCold, 2u);

  const service::AutoResult warm = svc.compileAuto(appRequest(true));
  ASSERT_TRUE(warm.policyHit);
  // The <50ms warm-path criterion: the proof rides in the stored
  // decision; the prover itself must not run again.
  EXPECT_EQ(svc.stats().proofsRun, proofsAfterCold);
  EXPECT_EQ(warm.decision.proof, cold.decision.proof);
}

TEST(SymWiring, RefutedWarmDecisionIsForcedToOriginalLoss) {
  service::CompileService svc;
  const service::AutoResult cold = svc.compileAuto(appRequest(true));
  ASSERT_TRUE(cold.eligible);

  // Corrupt the stored decision into a Refuted transform that claims to
  // win: the warm path must serve the original and verdict Loss anyway.
  std::optional<policy::Decision> stored =
      svc.policyStore().lookup(cold.policyKey);
  ASSERT_TRUE(stored.has_value());
  stored->proof = sym::ProofStatus::Refuted;
  stored->variant = policy::Variant::Transformed;
  stored->predictedOutcome = perf::Outcome::Gain;
  svc.policyStore().store(cold.policyKey, *stored);

  const service::AutoResult warm = svc.compileAuto(appRequest(true));
  ASSERT_TRUE(warm.policyHit);
  EXPECT_EQ(warm.decision.variant, policy::Variant::Original);
  EXPECT_EQ(warm.decision.predictedOutcome, perf::Outcome::Loss);
}

TEST(SymWiring, AutoResultLineRendersProof) {
  service::CompileService svc;
  const service::AutoResult r = svc.compileAuto(appRequest(true));
  ASSERT_TRUE(r.eligible);
  const std::string line = net::renderAutoResultLine(r);
  EXPECT_NE(line.find("proof"), std::string::npos) << line;
}

// ---- policy store: proof + age persistence -------------------------------

TEST(SymWiring, PolicyStoreRoundTripsProofAndAge) {
  const std::string dir = freshDir("policy");
  policy::PolicyStore::Config config;
  config.diskDir = dir;
  policy::Decision d;
  d.variant = policy::Variant::Transformed;
  d.predictedNp = 1.4;
  d.confidence = 0.9;
  d.source = "estimate";
  d.proof = sym::ProofStatus::Proved;
  d.storedAtMs = 123456789;
  {
    policy::PolicyStore store(config);
    store.store(42, d);
  }
  policy::PolicyStore fresh(config);
  const std::optional<policy::Decision> back = fresh.lookup(42);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->proof, sym::ProofStatus::Proved);
  EXPECT_EQ(back->storedAtMs, 123456789u);
  fs::remove_all(dir);
}

TEST(SymWiring, StoreStampsUnstampedDecisions) {
  policy::PolicyStore store({});
  policy::Decision d;
  d.confidence = 0.5;
  const std::uint64_t before = nowMs();
  store.store(7, d);  // storedAtMs == 0: the store stamps it
  const std::optional<policy::Decision> back = store.lookup(7);
  ASSERT_TRUE(back.has_value());
  EXPECT_GE(back->storedAtMs, before);
}

// ---- confidence decay ----------------------------------------------------

TEST(SymWiring, ConfidenceHalvesEveryHorizonTowardThePrior) {
  policy::Decision d;
  d.confidence = 0.8;
  d.storedAtMs = 1000;
  const double prior = 0.2;
  // One horizon: (0.8 - 0.2) / 2 + 0.2 = 0.5.
  EXPECT_NEAR(policy::decayedConfidence(d, prior, 1000 + 500, 500), 0.5,
              1e-9);
  // Two horizons: (0.8 - 0.2) / 4 + 0.2 = 0.35.
  EXPECT_NEAR(policy::decayedConfidence(d, prior, 1000 + 1000, 500), 0.35,
              1e-9);
  // Far future: pinned at the prior floor, never below.
  EXPECT_NEAR(policy::decayedConfidence(d, prior, 1000 + 500 * 100, 500),
              prior, 1e-6);
}

TEST(SymWiring, DecayIsDisabledForUnstampedOrNoHorizon) {
  policy::Decision d;
  d.confidence = 0.8;
  d.storedAtMs = 0;  // unstamped: legacy entry
  EXPECT_EQ(policy::decayedConfidence(d, 0.2, 99999, 500), 0.8);
  d.storedAtMs = 1000;
  EXPECT_EQ(policy::decayedConfidence(d, 0.2, 99999, 0), 0.8);
}

TEST(SymWiring, ShouldRemeasureNeedsMismatchAndAge) {
  policy::Decision d;
  d.storedAtMs = 1000;
  d.mismatch = false;
  EXPECT_FALSE(policy::shouldRemeasure(d, 1000 + 5000, 500));
  d.mismatch = true;
  EXPECT_FALSE(policy::shouldRemeasure(d, 1000 + 100, 500));  // too young
  EXPECT_TRUE(policy::shouldRemeasure(d, 1000 + 5000, 500));
  EXPECT_FALSE(policy::shouldRemeasure(d, 1000 + 5000, 0));  // disabled
}

// ---- the satellite regression: stale contradicted entries re-measure -----

TEST(SymWiring, StaleContradictedEntryIsRemeasuredOnWarmHit) {
  service::ServiceConfig config;
  config.policyDecayHorizonMs = 10;
  service::CompileService svc(config);
  const service::AutoResult cold = svc.compileAuto(appRequest(false));
  ASSERT_TRUE(cold.eligible);

  // Age the entry past the horizon and flag it contradicted.
  std::optional<policy::Decision> stored =
      svc.policyStore().lookup(cold.policyKey);
  ASSERT_TRUE(stored.has_value());
  stored->mismatch = true;
  stored->storedAtMs = nowMs() - 60 * 1000;
  svc.policyStore().store(cold.policyKey, *stored);

  const service::AutoResult warm = svc.compileAuto(appRequest(false));
  ASSERT_TRUE(warm.policyHit);
  const service::ServiceStats s = svc.stats();
  EXPECT_EQ(s.staleRemeasures, 1u);
  // The forced measurement ran inline and folded fresh evidence in:
  // the re-stored entry is re-stamped, so it will be trusted again.
  EXPECT_TRUE(warm.measured);
  EXPECT_GE(s.measurements, 1u);
  const std::optional<policy::Decision> refreshed =
      svc.policyStore().lookup(cold.policyKey);
  ASSERT_TRUE(refreshed.has_value());
  EXPECT_GE(refreshed->storedAtMs, nowMs() - 10 * 1000);
}

TEST(SymWiring, FreshEntriesAreNotRemeasured) {
  service::ServiceConfig config;
  config.policyDecayHorizonMs = 60 * 60 * 1000;  // one hour: never stale
  service::CompileService svc(config);
  const service::AutoResult cold = svc.compileAuto(appRequest(false));
  ASSERT_TRUE(cold.eligible);
  const service::AutoResult warm = svc.compileAuto(appRequest(false));
  ASSERT_TRUE(warm.policyHit);
  EXPECT_EQ(svc.stats().staleRemeasures, 0u);
  EXPECT_FALSE(warm.measured);
}

// ---- validator side-channel ----------------------------------------------

TEST(SymWiring, ValidatorSideChannelReportsRefutedTransform) {
  // Hand the validator a racy kernel as if it were a transform result:
  // the symbolic report must come back Refuted and the validation must
  // carry a symbolic-race issue.
  const check::GeneratedKernel kernel = racyKernel();
  Program program = compile(kernel.source);
  ir::Function* fn = nullptr;
  for (const auto& f : program.module->functions()) {
    if (f->isKernel()) fn = f.get();
  }
  ASSERT_NE(fn, nullptr);
  grv::GroverResult result;  // empty: no transform, just the race check
  sym::SymbolicReport report;
  const check::ValidationReport validation =
      check::validateTransform(*fn, result, sym::ProveOptions{}, &report);
  EXPECT_EQ(report.status, sym::ProofStatus::Refuted);
  ASSERT_TRUE(report.witness.has_value());
  EXPECT_TRUE(validation.has("symbolic-race")) << validation.str();
}

}  // namespace
}  // namespace grover
