// The NDRange execution engine: id queries, barrier semantics, memory,
// divergence errors, instruction counters.
#include "rt/interpreter.h"

#include <gtest/gtest.h>

#include "grovercl/compiler.h"
#include "support/diagnostics.h"

namespace grover::rt {
namespace {

TEST(Interpreter, IdQueriesAreConsistent) {
  auto program = compile(R"(
__kernel void ids(__global int* gid, __global int* lid, __global int* wid,
                  __global int* sizes) {
  int i = get_global_id(0);
  gid[i] = i;
  lid[i] = get_local_id(0);
  wid[i] = get_group_id(0);
  if (i == 0) {
    sizes[0] = get_global_size(0);
    sizes[1] = get_local_size(0);
    sizes[2] = get_num_groups(0);
    sizes[3] = get_work_dim();
  }
})");
  ir::Function* fn = program.kernel("ids");
  Buffer gid = Buffer::zeros<std::int32_t>(16);
  Buffer lid = Buffer::zeros<std::int32_t>(16);
  Buffer wid = Buffer::zeros<std::int32_t>(16);
  Buffer sizes = Buffer::zeros<std::int32_t>(4);
  Launch launch(*fn, NDRange::make1D(16, 4),
                {KernelArg::buffer(&gid), KernelArg::buffer(&lid),
                 KernelArg::buffer(&wid), KernelArg::buffer(&sizes)});
  launch.run();
  const auto g = gid.toVector<std::int32_t>();
  const auto l = lid.toVector<std::int32_t>();
  const auto w = wid.toVector<std::int32_t>();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(g[i], i);
    EXPECT_EQ(l[i], i % 4);
    EXPECT_EQ(w[i], i / 4);
    EXPECT_EQ(g[i], w[i] * 4 + l[i]);
  }
  EXPECT_EQ(sizes.toVector<std::int32_t>(),
            (std::vector<std::int32_t>{16, 4, 4, 1}));
}

TEST(Interpreter, BarrierMakesStoresVisibleAcrossWorkItems) {
  // Reverse within a group through local memory — only correct if the
  // barrier really separates the two phases.
  auto program = compile(R"(
__kernel void rev(__global int* data) {
  __local int lm[8];
  int lx = get_local_id(0);
  int i = get_global_id(0);
  lm[lx] = data[i];
  barrier(CLK_LOCAL_MEM_FENCE);
  data[i] = lm[7 - lx];
})");
  ir::Function* fn = program.kernel("rev");
  std::vector<std::int32_t> host{0, 1, 2, 3, 4, 5, 6, 7,
                                 10, 11, 12, 13, 14, 15, 16, 17};
  Buffer data = Buffer::fromVector(host);
  Launch launch(*fn, NDRange::make1D(16, 8), {KernelArg::buffer(&data)});
  launch.run();
  EXPECT_EQ(data.toVector<std::int32_t>(),
            (std::vector<std::int32_t>{7, 6, 5, 4, 3, 2, 1, 0,
                                       17, 16, 15, 14, 13, 12, 11, 10}));
}

TEST(Interpreter, MultipleBarriersInLoop) {
  auto program = compile(R"(
__kernel void ring(__global int* data, int rounds) {
  __local int lm[4];
  int lx = get_local_id(0);
  int v = data[get_global_id(0)];
  for (int r = 0; r < rounds; ++r) {
    lm[lx] = v;
    barrier(CLK_LOCAL_MEM_FENCE);
    v = lm[(lx + 1) % 4];
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  data[get_global_id(0)] = v;
})");
  ir::Function* fn = program.kernel("ring");
  Buffer data = Buffer::fromVector(std::vector<std::int32_t>{1, 2, 3, 4});
  Launch launch(*fn, NDRange::make1D(4, 4),
                {KernelArg::buffer(&data), KernelArg::int32(4)});
  launch.run();
  // After 4 rotations by one, values return to start.
  EXPECT_EQ(data.toVector<std::int32_t>(),
            (std::vector<std::int32_t>{1, 2, 3, 4}));
}

TEST(Interpreter, BarrierDivergenceIsAnError) {
  auto program = compile(R"(
__kernel void bad(__global int* out) {
  int lx = get_local_id(0);
  if (lx < 2) {
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  out[get_global_id(0)] = lx;
})");
  ir::Function* fn = program.kernel("bad");
  Buffer out = Buffer::zeros<std::int32_t>(4);
  Launch launch(*fn, NDRange::make1D(4, 4), {KernelArg::buffer(&out)});
  EXPECT_THROW(launch.run(), GroverError);
}

TEST(Interpreter, OutOfBoundsGlobalAccessThrows) {
  auto program = compile(R"(
__kernel void oob(__global int* out) {
  out[get_global_id(0) + 100] = 1;
})");
  ir::Function* fn = program.kernel("oob");
  Buffer out = Buffer::zeros<std::int32_t>(4);
  Launch launch(*fn, NDRange::make1D(4, 4), {KernelArg::buffer(&out)});
  EXPECT_THROW(launch.run(), GroverError);
}

TEST(Interpreter, WrongArgumentCountThrows) {
  auto program = compile("__kernel void k(__global int* out, int n) {}");
  ir::Function* fn = program.kernel("k");
  Buffer out = Buffer::zeros<std::int32_t>(4);
  EXPECT_THROW(
      Launch(*fn, NDRange::make1D(4, 4), {KernelArg::buffer(&out)}),
      GroverError);
}

TEST(Interpreter, ArgumentTypeMismatchThrows) {
  auto program = compile("__kernel void k(__global int* out, int n) {}");
  ir::Function* fn = program.kernel("k");
  Buffer out = Buffer::zeros<std::int32_t>(4);
  EXPECT_THROW(Launch(*fn, NDRange::make1D(4, 4),
                      {KernelArg::buffer(&out), KernelArg::float32(1.0F)}),
               GroverError);
}

TEST(Interpreter, InstCountersClassifyAccesses) {
  auto program = compile(R"(
__kernel void count(__global float* out) {
  __local float lm[4];
  int lx = get_local_id(0);
  lm[lx] = out[lx];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = lm[3 - lx] * 2.0f;
})");
  ir::Function* fn = program.kernel("count");
  Buffer out = Buffer::zeros<float>(4);
  Launch launch(*fn, NDRange::make1D(4, 4), {KernelArg::buffer(&out)});
  InstCounters counters = launch.run();
  EXPECT_EQ(counters.globalLoad, 4u);
  EXPECT_EQ(counters.globalStore, 4u);
  EXPECT_EQ(counters.localLoad, 4u);
  EXPECT_EQ(counters.localStore, 4u);
  EXPECT_EQ(counters.barrier, 4u);
  EXPECT_GT(counters.floatAlu, 0u);
  EXPECT_GT(counters.total(), 20u);
}

TEST(Interpreter, TwoDimensionalRange) {
  auto program = compile(R"(
__kernel void grid(__global int* out, int w) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  out[y*w + x] = y*100 + x;
})");
  ir::Function* fn = program.kernel("grid");
  Buffer out = Buffer::zeros<std::int32_t>(8 * 4);
  Launch launch(*fn, NDRange::make2D(8, 4, 4, 2),
                {KernelArg::buffer(&out), KernelArg::int32(8)});
  launch.run();
  const auto v = out.toVector<std::int32_t>();
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 8; ++x) {
      EXPECT_EQ(v[y * 8 + x], y * 100 + x);
    }
  }
}

TEST(Interpreter, MultithreadedMatchesSequential) {
  auto program = compile(R"(
__kernel void sq(__global float* out) {
  int i = get_global_id(0);
  out[i] = (float)i * (float)i;
})");
  ir::Function* fn = program.kernel("sq");
  Buffer out1 = Buffer::zeros<float>(256);
  Launch l1(*fn, NDRange::make1D(256, 16), {KernelArg::buffer(&out1)});
  l1.run(1);
  Buffer out2 = Buffer::zeros<float>(256);
  Launch l2(*fn, NDRange::make1D(256, 16), {KernelArg::buffer(&out2)});
  l2.run(4);
  EXPECT_EQ(out1.toVector<float>(), out2.toVector<float>());
}

TEST(Interpreter, GroupSamplingRunsSubset) {
  auto program = compile(R"(
__kernel void mark(__global int* out) {
  out[get_global_id(0)] = 1;
})");
  ir::Function* fn = program.kernel("mark");
  Buffer out = Buffer::zeros<std::int32_t>(64);
  Launch launch(*fn, NDRange::make1D(64, 8), {KernelArg::buffer(&out)});
  launch.setGroupSampling(2);  // every other group
  launch.run();
  const auto v = out.toVector<std::int32_t>();
  for (int g = 0; g < 8; ++g) {
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(v[g * 8 + i], g % 2 == 0 ? 1 : 0);
    }
  }
}

TEST(Interpreter, NDRangeValidation) {
  EXPECT_THROW(NDRange::make1D(10, 3), GroverError);   // not divisible
  EXPECT_THROW(NDRange::make1D(0, 1), GroverError);    // empty
  NDRange r = NDRange::make2D(32, 16, 8, 4);
  EXPECT_EQ(r.totalGroups(), 16u);
  EXPECT_EQ(r.groupSize(), 32u);
  EXPECT_EQ(r.totalWorkItems(), 512u);
}

TEST(Interpreter, LocalArenaIsZeroInitializedPerGroup) {
  auto program = compile(R"(
__kernel void zinit(__global int* out) {
  __local int lm[4];
  int lx = get_local_id(0);
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = lm[lx];   // never written: must read 0
  lm[lx] = 77;                       // pollute for the next group
})");
  ir::Function* fn = program.kernel("zinit");
  Buffer out = Buffer::fromVector(std::vector<std::int32_t>(8, -1));
  Launch launch(*fn, NDRange::make1D(8, 4), {KernelArg::buffer(&out)});
  launch.run();
  EXPECT_EQ(out.toVector<std::int32_t>(),
            (std::vector<std::int32_t>(8, 0)));
}

TEST(Buffer, TypedAccessors) {
  Buffer b = Buffer::fromVector(std::vector<float>{1.0F, 2.0F});
  EXPECT_EQ(b.size(), 8u);
  EXPECT_FLOAT_EQ(b.at<float>(1), 2.0F);
  EXPECT_THROW(b.at<float>(2), GroverError);
  Buffer odd(6);
  EXPECT_THROW(odd.toVector<float>(), GroverError);
}

}  // namespace
}  // namespace grover::rt
