// Drives the real groverd and groverc binaries end-to-end (paths
// supplied by CMake): start a daemon on an ephemeral loopback port,
// serve a batch through `groverc --connect` cold then warm, and check
// the SIGTERM drain exits 0 after a clean shutdown. Also the --version
// satellite: both binaries must print the CMake-injected git describe
// string.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exitCode = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult runCommand(const std::string& cmd) {
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  RunResult r;
  char buf[4096];
  while (pipe != nullptr && fgets(buf, sizeof(buf), pipe) != nullptr) {
    r.output += buf;
  }
  if (pipe != nullptr) {
    const int status = pclose(pipe);
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  return r;
}

fs::path tmpFile(const std::string& name, const std::string& contents) {
  const fs::path path = fs::temp_directory_path() /
                        ("groverd_cli_" + std::to_string(::getpid()) + "_" +
                         name);
  std::ofstream out(path, std::ios::trunc);
  out << contents;
  return path;
}

/// A groverd child process with stdout+stderr captured on a pipe.
struct Daemon {
  pid_t pid = -1;
  FILE* out = nullptr;
  int port = 0;
  std::string log;

  /// Fork + exec the daemon and wait for its startup line:
  /// "groverd <ver> (protocol v1) listening on 127.0.0.1:<port>".
  /// Leaves port == 0 on failure; callers ASSERT on it.
  void start(const std::vector<std::string>& extraArgs = {}) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::dup2(fds[1], STDOUT_FILENO);
      ::dup2(fds[1], STDERR_FILENO);
      ::close(fds[0]);
      ::close(fds[1]);
      std::vector<char*> argv = {const_cast<char*>("groverd"),
                                 const_cast<char*>("--port=0"),
                                 const_cast<char*>("--threads=2")};
      for (const std::string& arg : extraArgs) {
        argv.push_back(const_cast<char*>(arg.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(GROVERD_PATH, argv.data());
      ::_exit(127);
    }
    ::close(fds[1]);
    out = ::fdopen(fds[0], "r");
    ASSERT_NE(out, nullptr);

    char buf[512];
    while (::fgets(buf, sizeof(buf), out) != nullptr) {
      log += buf;
      const std::string line = buf;
      if (line.find("listening on ") == std::string::npos) continue;
      const std::size_t colon = line.rfind(':');
      ASSERT_NE(colon, std::string::npos) << line;
      port = std::atoi(line.c_str() + colon + 1);
      break;
    }
    ASSERT_GT(port, 0) << "no listening line from groverd:\n" << log;
  }

  ~Daemon() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
    if (out != nullptr) ::fclose(out);
  }

  /// SIGTERM, then collect the exit code and the rest of the log.
  int terminate() {
    ::kill(pid, SIGTERM);
    char buf[512];
    while (::fgets(buf, sizeof(buf), out) != nullptr) log += buf;
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  [[nodiscard]] std::string connectFlag() const {
    return "--connect=127.0.0.1:" + std::to_string(port);
  }
};

TEST(GroverdCli, VersionPrintsInjectedDescribeString) {
  const RunResult r = runCommand(std::string(GROVERD_PATH) + " --version");
  EXPECT_EQ(r.exitCode, 0);
  EXPECT_EQ(r.output.rfind("groverd ", 0), 0u) << r.output;
  EXPECT_NE(r.output.find("(protocol v1)"), std::string::npos) << r.output;
  // The placeholder only appears when the CMake injection broke.
  EXPECT_EQ(r.output.find("@GROVER_GIT_DESCRIBE@"), std::string::npos);
}

TEST(GroverdCli, HelpListsTheServingFlags) {
  const RunResult r = runCommand(std::string(GROVERD_PATH) + " --help");
  EXPECT_EQ(r.exitCode, 0);
  for (const char* flag : {"--port", "--socket", "--max-queue",
                           "--client-credits", "--idle-timeout-ms",
                           "--measure-rate", "--measure-queue-depth"}) {
    EXPECT_NE(r.output.find(flag), std::string::npos)
        << "missing " << flag << " in:\n" << r.output;
  }
}

TEST(GroverdCli, UnknownFlagExitsTwo) {
  const RunResult r = runCommand(std::string(GROVERD_PATH) + " --bogus");
  EXPECT_EQ(r.exitCode, 2);
  EXPECT_NE(r.output.find("unknown option"), std::string::npos) << r.output;
}

TEST(GroverdCli, ServesColdThenWarmThenDrainsOnSigterm) {
  Daemon daemon;
  daemon.start();
  ASSERT_GT(daemon.port, 0);
  const fs::path batch = tmpFile("reqs.txt",
                                 "# two requests, one repeated\n"
                                 "NVD-MT SNB test\n"
                                 "AMD-SS SNB test\n"
                                 "NVD-MT SNB test\n");

  // Cold pass: the daemon compiles; every verdict line renders.
  const RunResult cold = runCommand(std::string(GROVERC_PATH) +
                                    " --serve-batch=" + batch.string() +
                                    " " + daemon.connectFlag());
  EXPECT_EQ(cold.exitCode, 0) << cold.output;
  EXPECT_NE(cold.output.find("[1] NVD-MT SNB test: ok,"), std::string::npos)
      << cold.output;
  EXPECT_NE(cold.output.find("served 3 requests"), std::string::npos)
      << cold.output;
  EXPECT_NE(cold.output.find("2 compiles"), std::string::npos)
      << cold.output;

  // Warm pass, policy path: the daemon's caches and policy store carry
  // across client processes — that is the reason groverd exists.
  const RunResult warmUp = runCommand(std::string(GROVERC_PATH) +
                                      " --serve-batch=" + batch.string() +
                                      " --auto " + daemon.connectFlag());
  EXPECT_EQ(warmUp.exitCode, 0) << warmUp.output;
  const RunResult warm = runCommand(std::string(GROVERC_PATH) +
                                    " --serve-batch=" + batch.string() +
                                    " --auto " + daemon.connectFlag());
  EXPECT_EQ(warm.exitCode, 0) << warm.output;
  EXPECT_NE(warm.output.find("policy hit"), std::string::npos)
      << warm.output;
  EXPECT_EQ(warm.output.find("cold decision"), std::string::npos)
      << warm.output;

  const int exitCode = daemon.terminate();
  EXPECT_EQ(exitCode, 0) << daemon.log;
  EXPECT_NE(daemon.log.find("clean shutdown"), std::string::npos)
      << daemon.log;
  fs::remove(batch);
}

TEST(GroverdCli, MalformedRequestLineFailsTheClientBatch) {
  Daemon daemon;
  daemon.start();
  ASSERT_GT(daemon.port, 0);
  const fs::path batch = tmpFile("bad.txt",
                                 "NVD-MT SNB test\n"
                                 "NVD-MT SNB warp\n");
  const RunResult r = runCommand(std::string(GROVERC_PATH) +
                                 " --serve-batch=" + batch.string() + " " +
                                 daemon.connectFlag());
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("bad scale 'warp'"), std::string::npos)
      << r.output;
  // The daemon survives the bad request.
  EXPECT_EQ(daemon.terminate(), 0) << daemon.log;
  fs::remove(batch);
}

TEST(GroverdCli, GrovercRejectsDaemonSideFlagsWithConnect) {
  const fs::path batch = tmpFile("one.txt", "NVD-MT SNB test\n");
  const RunResult r = runCommand(std::string(GROVERC_PATH) +
                                 " --serve-batch=" + batch.string() +
                                 " --connect=127.0.0.1:1 --threads=4");
  EXPECT_EQ(r.exitCode, 1);
  EXPECT_NE(r.output.find("daemon-side"), std::string::npos) << r.output;
  fs::remove(batch);
}

TEST(GroverdCli, ShardedDaemonServesBinaryStatsEndToEnd) {
  Daemon daemon;
  daemon.start({"--loop-shards=2"});
  ASSERT_GT(daemon.port, 0);
  EXPECT_NE(daemon.log.find("(2 loop shards)"), std::string::npos)
      << daemon.log;

  const fs::path batch = tmpFile("stats.txt", "NVD-MT SNB test\n");
  const RunResult served = runCommand(std::string(GROVERC_PATH) +
                                      " --serve-batch=" + batch.string() +
                                      " " + daemon.connectFlag());
  EXPECT_EQ(served.exitCode, 0) << served.output;

  // The binary stats frame, decoded client-side: daemon gauges, the
  // shard breakdown, and totals reflecting the request just served.
  const RunResult stats = runCommand(std::string(GROVERC_PATH) + " " +
                                     daemon.connectFlag() + " --stats");
  EXPECT_EQ(stats.exitCode, 0) << stats.output;
  EXPECT_NE(stats.output.find("daemon: up "), std::string::npos)
      << stats.output;
  EXPECT_NE(stats.output.find("2 shard(s)"), std::string::npos)
      << stats.output;
  EXPECT_NE(stats.output.find("1 admitted"), std::string::npos)
      << stats.output;

  const RunResult json = runCommand(std::string(GROVERC_PATH) + " " +
                                    daemon.connectFlag() + " --stats-json");
  EXPECT_EQ(json.exitCode, 0) << json.output;
  EXPECT_NE(json.output.find("\"shards\":2"), std::string::npos)
      << json.output;
  EXPECT_NE(json.output.find("\"per_shard\":["), std::string::npos)
      << json.output;

  // --stats is its own mode: mixing it with a batch is rejected.
  const RunResult mixed = runCommand(std::string(GROVERC_PATH) +
                                     " --serve-batch=" + batch.string() +
                                     " --stats " + daemon.connectFlag());
  EXPECT_EQ(mixed.exitCode, 1);

  EXPECT_EQ(daemon.terminate(), 0) << daemon.log;
  EXPECT_NE(daemon.log.find("clean shutdown"), std::string::npos)
      << daemon.log;
  fs::remove(batch);
}

TEST(GroverdCli, ConnectRefusedIsOneLineDiagnostic) {
  const fs::path batch = tmpFile("refused.txt", "NVD-MT SNB test\n");
  // Port 1 on loopback: reserved, nothing listens there.
  const RunResult r = runCommand(std::string(GROVERC_PATH) +
                                 " --serve-batch=" + batch.string() +
                                 " --connect=127.0.0.1:1");
  EXPECT_EQ(r.exitCode, 1);
  EXPECT_NE(r.output.find("cannot connect"), std::string::npos) << r.output;
  fs::remove(batch);
}

}  // namespace
