// The Grover pass end-to-end: transformations, refusals, cleanup,
// and semantic equivalence of the rewritten kernels.
#include "grover/grover_pass.h"

#include <gtest/gtest.h>

#include "grovercl/compiler.h"
#include "ir/casting.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "passes/barrier_elim.h"
#include "rt/interpreter.h"

namespace grover::grv {
namespace {

using namespace ir;

bool hasLocalAlloca(Function& fn) {
  for (const auto& inst : *fn.entry()) {
    if (const auto* a = dyn_cast<AllocaInst>(inst.get())) {
      if (a->space() == AddrSpace::Local) return true;
    }
  }
  return false;
}

std::size_t barrierCount(Function& fn) {
  std::size_t n = 0;
  for (BasicBlock* bb : fn.blockList()) {
    for (const auto& inst : *bb) {
      if (const auto* call = dyn_cast<CallInst>(inst.get())) {
        if (call->builtin() == Builtin::Barrier) ++n;
      }
    }
  }
  return n;
}

const char* kTransposeSrc = R"(
#define S 16
__kernel void mt(__global float* out, __global float* in, int W, int H) {
  __local float tile[S][S];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int wx = get_group_id(0);
  int wy = get_group_id(1);
  tile[ly][lx] = in[get_global_id(1)*W + get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[(wx*S + ly)*H + (wy*S + lx)] = tile[lx][ly];
}
)";

TEST(Grover, TransformsMatrixTranspose) {
  auto program = compile(kTransposeSrc);
  Function* fn = program.kernel("mt");
  GroverResult result = runGrover(*fn);
  verifyFunction(*fn);
  ASSERT_EQ(result.buffers.size(), 1u);
  EXPECT_TRUE(result.buffers[0].transformed);
  EXPECT_TRUE(result.anyTransformed);
  EXPECT_TRUE(result.barriersRemoved);
  EXPECT_FALSE(hasLocalAlloca(*fn));
  EXPECT_EQ(barrierCount(*fn), 0u);
}

TEST(Grover, TransposeIndexReportMatchesPaperTable3) {
  // Paper Table III, NVD-MT row: LS (lx,ly..) ↔ LL swapped, and the
  // solution is the swap (lx := ly, ly := lx).
  auto program = compile(kTransposeSrc);
  Function* fn = program.kernel("mt");
  GroverResult result = runGrover(*fn);
  const BufferResult& b = result.forBuffer("tile");
  EXPECT_EQ(b.lsIndex, "(ly, lx)");
  EXPECT_EQ(b.llIndex, "(lx, ly)");
  EXPECT_EQ(b.solution, "lx := ly, ly := lx");
  EXPECT_EQ(b.lsPattern, IndexPattern::PlusMul);
  // The new global load swaps the local ids inside the original address.
  EXPECT_NE(b.nglIndex.find("lx"), std::string::npos);
  EXPECT_NE(b.nglIndex.find("ly"), std::string::npos);
  EXPECT_NE(b.nglIndex.find("W"), std::string::npos);
}

TEST(Grover, TransformedTransposeComputesSameResult) {
  const unsigned n = 32;
  std::vector<float> in(n * n);
  for (unsigned i = 0; i < n * n; ++i) in[i] = static_cast<float>(i) * 0.5F;

  auto runVersion = [&](bool transform) {
    auto program = compile(kTransposeSrc);
    Function* fn = program.kernel("mt");
    if (transform) {
      EXPECT_TRUE(runGrover(*fn).anyTransformed);
      verifyFunction(*fn);
    }
    rt::Buffer bufIn = rt::Buffer::fromVector(in);
    rt::Buffer bufOut = rt::Buffer::zeros<float>(n * n);
    rt::Launch launch(*fn, rt::NDRange::make2D(n, n, 16, 16),
                      {rt::KernelArg::buffer(&bufOut),
                       rt::KernelArg::buffer(&bufIn),
                       rt::KernelArg::int32(static_cast<std::int32_t>(n)),
                       rt::KernelArg::int32(static_cast<std::int32_t>(n))});
    launch.run();
    return bufOut.toVector<float>();
  };

  EXPECT_EQ(runVersion(false), runVersion(true));
}

TEST(Grover, RefusesNonUniqueSolution) {
  // LS index lx+ly is not invertible per dimension: singular system.
  auto program = compile(R"(
__kernel void k(__global float* in, __global float* out) {
  __local float lm[32];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  lm[lx + ly] = in[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = lm[0];
})");
  Function* fn = program.kernel("k");
  GroverResult result = runGrover(*fn);
  ASSERT_EQ(result.buffers.size(), 1u);
  EXPECT_FALSE(result.buffers[0].transformed);
  EXPECT_FALSE(result.anyTransformed);
  verifyFunction(*fn);
  EXPECT_TRUE(hasLocalAlloca(*fn));   // untouched
  EXPECT_EQ(barrierCount(*fn), 1u);   // barrier kept
}

TEST(Grover, RefusesReductionPattern) {
  // Local memory as temporal read/write storage (paper §VI-D).
  auto program = compile(R"(
__kernel void reduce(__global float* in, __global float* out) {
  __local float scratch[64];
  int lx = get_local_id(0);
  scratch[lx] = in[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = 32; s > 0; s = s / 2) {
    if (lx < s) {
      scratch[lx] = scratch[lx] + scratch[lx + s];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (lx == 0) out[get_group_id(0)] = scratch[0];
})");
  Function* fn = program.kernel("reduce");
  GroverResult result = runGrover(*fn);
  ASSERT_EQ(result.buffers.size(), 1u);
  EXPECT_FALSE(result.buffers[0].transformed);
  EXPECT_NE(result.buffers[0].reason.find("staging"), std::string::npos);
  verifyFunction(*fn);
}

TEST(Grover, OnlyBuffersSelectsSubset) {
  auto program = compile(R"(
#define S 8
__kernel void two(__global float* a, __global float* b, __global float* out) {
  __local float la[S];
  __local float lb[S];
  int lx = get_local_id(0);
  la[lx] = a[get_global_id(0)];
  lb[lx] = b[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = la[S-1-lx] + lb[S-1-lx];
})");
  Function* fn = program.kernel("two");
  GroverOptions options;
  options.onlyBuffers = {"la"};
  GroverResult result = runGrover(*fn, options);
  EXPECT_TRUE(result.forBuffer("la").transformed);
  EXPECT_FALSE(result.forBuffer("lb").transformed);
  EXPECT_TRUE(hasLocalAlloca(*fn));      // lb remains
  EXPECT_EQ(barrierCount(*fn), 1u);      // barrier still required for lb
  verifyFunction(*fn);
}

TEST(Grover, LoopVariableLlIndex) {
  // N-body style: LL index is a loop variable; solution lx := j.
  auto program = compile(R"(
#define S 16
__kernel void nb(__global float* pos, __global float* out, int N) {
  __local float tile[S];
  int lx = get_local_id(0);
  float acc = 0.0f;
  for (int t = 0; t < N/S; ++t) {
    tile[lx] = pos[t*S + lx];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int j = 0; j < S; ++j) {
      acc += tile[j];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  out[get_global_id(0)] = acc;
})");
  Function* fn = program.kernel("nb");
  GroverResult result = runGrover(*fn);
  ASSERT_TRUE(result.forBuffer("tile").transformed);
  EXPECT_FALSE(hasLocalAlloca(*fn));
  EXPECT_EQ(barrierCount(*fn), 0u);
  verifyFunction(*fn);
  // The solution maps lx to the loop variable.
  EXPECT_NE(result.forBuffer("tile").solution.find("lx := "),
            std::string::npos);
}

TEST(Grover, HaloStagingUsesMatchingPair) {
  // Multi-pass staging (stencil halo): every LL must resolve through a
  // pair that yields a consistent correspondence.
  auto program = compile(R"(
#define S 16
__kernel void st(__global float* out, __global float* in, int W) {
  __local float tile[S+2];
  int lx = get_local_id(0);
  int gx = get_global_id(0) + 1;
  tile[lx+1] = in[gx];
  if (lx == 0)   tile[0]   = in[gx - 1];
  if (lx == S-1) tile[S+1] = in[gx + 1];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[gx] = tile[lx] + tile[lx+1] + tile[lx+2];
})");
  Function* fn = program.kernel("st");
  GroverResult result = runGrover(*fn);
  ASSERT_TRUE(result.forBuffer("tile").transformed);
  verifyFunction(*fn);

  // Execute both versions and compare.
  const unsigned n = 64;
  std::vector<float> in(n + 2);
  for (unsigned i = 0; i < in.size(); ++i) in[i] = static_cast<float>(i * i % 37);
  auto runVersion = [&](bool transform) {
    auto p2 = compile(R"(
#define S 16
__kernel void st(__global float* out, __global float* in, int W) {
  __local float tile[S+2];
  int lx = get_local_id(0);
  int gx = get_global_id(0) + 1;
  tile[lx+1] = in[gx];
  if (lx == 0)   tile[0]   = in[gx - 1];
  if (lx == S-1) tile[S+1] = in[gx + 1];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[gx] = tile[lx] + tile[lx+1] + tile[lx+2];
})");
    Function* k = p2.kernel("st");
    if (transform) EXPECT_TRUE(runGrover(*k).anyTransformed);
    rt::Buffer bufIn = rt::Buffer::fromVector(in);
    rt::Buffer bufOut = rt::Buffer::zeros<float>(n + 2);
    rt::Launch launch(*k, rt::NDRange::make1D(n, 16),
                      {rt::KernelArg::buffer(&bufOut),
                       rt::KernelArg::buffer(&bufIn),
                       rt::KernelArg::int32(static_cast<std::int32_t>(n + 2))});
    launch.run();
    return bufOut.toVector<float>();
  };
  EXPECT_EQ(runVersion(false), runVersion(true));
}

TEST(Grover, NoCleanupKeepsDeadStagingChain) {
  auto program = compile(kTransposeSrc);
  Function* fn = program.kernel("mt");
  GroverOptions options;
  options.cleanup = false;
  options.removeBarriers = false;
  GroverResult result = runGrover(*fn, options);
  EXPECT_TRUE(result.anyTransformed);
  verifyFunction(*fn);
  // Without cleanup the buffer alloca and barrier remain.
  EXPECT_TRUE(hasLocalAlloca(*fn));
  EXPECT_EQ(barrierCount(*fn), 1u);
}

TEST(Grover, PassAdapterReportsChange) {
  auto program = compile(kTransposeSrc);
  Function* fn = program.kernel("mt");
  GroverPass pass;
  EXPECT_TRUE(pass.run(*fn));
  EXPECT_TRUE(pass.lastResult().anyTransformed);
  // A second run finds nothing left to do.
  GroverPass pass2;
  EXPECT_FALSE(pass2.run(*fn));
}

TEST(Grover, SharedPatternStringHasZeroWorkGroupTerm) {
  // AMD-SS-like: the staged data is shared by all groups; the nGL index
  // must not contain any work-group term (Table III's zero rows).
  auto program = compile(R"(
#define PLEN 16
__kernel void ss(__global int* text, __global int* pattern, __global int* out) {
  __local int lpat[PLEN];
  int lx = get_local_id(0);
  if (lx < PLEN) lpat[lx] = pattern[lx];
  barrier(CLK_LOCAL_MEM_FENCE);
  int ok = 1;
  for (int j = 0; j < PLEN; ++j) {
    if (text[get_global_id(0) + j] != lpat[j]) ok = 0;
  }
  out[get_global_id(0)] = ok;
})");
  Function* fn = program.kernel("ss");
  GroverResult result = runGrover(*fn);
  const BufferResult& b = result.forBuffer("lpat");
  ASSERT_TRUE(b.transformed) << b.reason;
  EXPECT_EQ(b.nglIndex.find("wx"), std::string::npos);
  EXPECT_EQ(b.nglIndex.find("wy"), std::string::npos);
  verifyFunction(*fn);
}

TEST(Grover, GeneratedCodeNeverGrowsUnbounded) {
  // Rewriting shares subexpressions (Algorithm 1 reuse): the transformed
  // transpose must not be much larger than the original.
  auto program = compile(kTransposeSrc);
  Function* fn = program.kernel("mt");
  const std::size_t before = fn->instructionCount();
  runGrover(*fn);
  EXPECT_LE(fn->instructionCount(), before + 4);
}

}  // namespace
}  // namespace grover::grv
