// Native execution backend: every Table I application must produce
// bit-identical buffers whether executed by the decoded interpreter or as
// JIT-compiled native code, for both the original and Grover-transformed
// kernel versions — and the native output must also satisfy each app's
// sequential reference validator. A kernel_gen sweep cross-checks the
// backend on generated control-flow shapes, and the degradation paths
// (no compiler, native disabled) must fall back to the interpreter with
// a reason, never abort. Finally, the service's measurement sampling
// must fold real np observations into stored decisions and refresh
// mismatched ones.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "apps/app.h"
#include "check/differential.h"
#include "check/kernel_gen.h"
#include "grovercl/harness.h"
#include "native/engine.h"
#include "perf/measure.h"
#include "rt/interpreter.h"
#include "service/compile_service.h"

namespace grover {
namespace {

/// Byte-exact copy of every buffer of an instance.
std::vector<std::vector<std::byte>> snapshot(const apps::Instance& in) {
  std::vector<std::vector<std::byte>> out;
  out.reserve(in.buffers.size());
  for (const auto& b : in.buffers) {
    out.emplace_back(b->data(), b->data() + b->size());
  }
  return out;
}

bool nativeAvailable() {
  return native::NativeEngine::shared().available();
}

/// Golden-output differential over every Table I app × both versions:
/// native output must equal the decoded interpreter's bit for bit AND
/// pass the app's sequential reference validator.
class NativeExecApps : public ::testing::TestWithParam<std::string> {};

TEST_P(NativeExecApps, NativeMatchesInterpreterAndReference) {
  if (!nativeAvailable()) {
    GTEST_SKIP() << "native backend unavailable: "
                 << native::NativeEngine::shared().unavailableReason();
  }
  const apps::Application& app = apps::applicationById(GetParam());
  KernelPair pair = prepareKernelPair(app, /*validate=*/false);
  for (ir::Function* fn : {pair.originalKernel, pair.transformedKernel}) {
    const char* tag = fn == pair.originalKernel ? "original" : "transformed";

    apps::Instance interp = app.makeInstance(apps::Scale::Test);
    rt::Launch launch(*fn, interp.range, interp.args);
    launch.run(1);
    const auto expected = snapshot(interp);

    apps::Instance nat = app.makeInstance(apps::Scale::Test);
    std::string reason;
    rt::KernelImage image(*fn, nat.range, nat.args);
    auto kernel = native::NativeEngine::shared().prepare(image, reason);
    ASSERT_NE(kernel, nullptr) << tag << ": " << reason;
    kernel->execute(image);

    const auto got = snapshot(nat);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[i])
          << tag << ": buffer " << i << " diverges from the interpreter";
    }
    std::string message;
    EXPECT_TRUE(nat.validate(message)) << tag << ": " << message;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table1, NativeExecApps,
    ::testing::ValuesIn([] {
      std::vector<std::string> ids;
      for (const auto& app : apps::allApplications()) ids.push_back(app->id());
      return ids;
    }()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// A kernel_gen sweep: 100 generated kernels through the full differential
// harness with the native leg on. Every seed must pass, and when the
// toolchain is present the native leg must actually have run.
TEST(NativeExec, KernelGenSweep) {
  const bool expectNative = nativeAvailable();
  unsigned checked = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const check::GeneratedKernel kernel = check::generateKernel(seed);
    const check::DiffOutcome outcome =
        check::runDifferential(kernel, /*validate=*/false, /*nativeLeg=*/true);
    ASSERT_TRUE(outcome.ok) << "seed " << seed << " [" << outcome.phase
                            << "] " << outcome.message;
    if (outcome.nativeChecked) ++checked;
  }
  if (expectNative) EXPECT_EQ(checked, 100U);
}

// Forced failure: a nonexistent compiler must make the engine report
// itself unavailable with a reason — prepare() returns null, nothing
// throws, and callers can fall back to the interpreter.
TEST(NativeExec, GracefulFallbackWithoutCompiler) {
  native::JitOptions options;
  options.compiler = "/nonexistent/grover-test-cc";
  native::NativeEngine engine(options);
  EXPECT_FALSE(engine.available());
  EXPECT_FALSE(engine.unavailableReason().empty());

  const apps::Application& app = apps::applicationById("AMD-MT");
  apps::Instance instance = app.makeInstance(apps::Scale::Test);
  KernelPair pair = prepareKernelPair(app, false);
  rt::KernelImage image(*pair.originalKernel, instance.range, instance.args);
  std::string reason;
  EXPECT_EQ(engine.prepare(image, reason), nullptr);
  EXPECT_FALSE(reason.empty());
}

// The measurement layer degrades the same way: with the native path
// disabled it still measures — on the interpreter — and reports why.
TEST(NativeExec, MeasureFallsBackToInterpreter) {
  perf::MeasureOptions options;
  options.allowNative = false;
  options.repetitions = 1;
  options.warmup = 0;
  const perf::Measurement m =
      perf::measure(apps::applicationById("AMD-MT"), options);
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_FALSE(m.usedNative);
  EXPECT_FALSE(m.nativeFallbackReason.empty());
  EXPECT_GT(m.measuredNp, 0.0);
}

// Engine parity: a measurement never mixes engines, so the reported np
// is a like-with-like ratio whichever path ran.
TEST(NativeExec, MeasureReportsEngine) {
  perf::MeasureOptions options;
  options.repetitions = 1;
  options.warmup = 0;
  const perf::Measurement m =
      perf::measure(apps::applicationById("AMD-SS"), options);
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_GT(m.msWithLM, 0.0);
  EXPECT_GT(m.msWithoutLM, 0.0);
  if (nativeAvailable()) {
    EXPECT_TRUE(m.usedNative) << m.nativeFallbackReason;
  } else {
    EXPECT_FALSE(m.usedNative);
  }
}

// compileAuto with measureRate = 1 must execute the served kernel for
// real and fold the measured np into the stored decision's EWMA.
TEST(NativeExec, MeasureRateUpdatesDecisionEwma) {
  service::ServiceConfig config;
  config.workers = 1;
  config.measureRate = 1;
  config.measure.repetitions = 1;
  config.measure.warmup = 0;
  service::CompileService service(config);

  service::Request request;
  request.appId = "AMD-MT";
  request.platform = "SNB";
  request.scale = apps::Scale::Test;
  const service::AutoResult r = service.compileAuto(request);
  ASSERT_TRUE(r.eligible);
  ASSERT_TRUE(r.artifact->ok) << r.artifact->diagnostics;
  ASSERT_TRUE(r.measured);
  EXPECT_GT(r.measurement.measuredNp, 0.0);

  const service::ServiceStats stats = service.stats();
  EXPECT_GE(stats.measurements, 1U);
  EXPECT_GT(stats.executeMs, 0.0);

  const auto stored = service.policyStore().lookup(r.policyKey);
  ASSERT_TRUE(stored.has_value());
  EXPECT_GE(stored->observations, 1U);
  EXPECT_GT(stored->ewmaNp, 0.0);
  EXPECT_EQ(stored->ewmaNp, r.decision.ewmaNp);
}

// A measurement that newly crosses the mismatch tolerance must trigger
// re-estimation and a decision refresh — the entry ends unflagged with
// source "refresh" and a prediction that trusts the measured EWMA.
TEST(NativeExec, MismatchTriggersDecisionRefresh) {
  service::ServiceConfig config;
  config.workers = 1;
  service::CompileService service(config);

  service::Request request;
  request.appId = "AMD-MT";
  request.platform = "SNB";
  request.scale = apps::Scale::Test;
  const service::AutoResult cold = service.compileAuto(request);
  ASSERT_TRUE(cold.eligible);
  ASSERT_TRUE(cold.artifact->ok);

  // A measured np wildly off the estimate: the first observation sets
  // the EWMA to 10, far beyond the 15% tolerance. The fresh estimate
  // still disagrees, so the refresh adopts the measurement.
  const policy::Decision d = service.recordMeasurement(cold.policyKey, 10.0);
  EXPECT_FALSE(d.mismatch);
  EXPECT_EQ(d.source, "refresh");
  EXPECT_DOUBLE_EQ(d.predictedNp, 10.0);
  EXPECT_EQ(d.variant, policy::Variant::Transformed);
  EXPECT_EQ(service.stats().policyRefreshes, 1U);
  EXPECT_EQ(service.stats().policyMismatches, 1U);

  const auto stored = service.policyStore().lookup(cold.policyKey);
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(stored->source, "refresh");
  EXPECT_FALSE(stored->mismatch);

  // A follow-up measurement in line with the new prediction must not
  // re-trigger a refresh.
  (void)service.recordMeasurement(cold.policyKey, 10.0);
  EXPECT_EQ(service.stats().policyRefreshes, 1U);
}

}  // namespace
}  // namespace grover
