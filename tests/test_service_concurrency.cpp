// Single-flight deduplication under contention: many threads hammering a
// small key set must trigger exactly one compilation per unique key, and
// every waiter must observe identical module text.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "service/compile_service.h"
#include "support/diagnostics.h"

namespace grover::service {
namespace {

Request appRequest(const std::string& id) {
  Request r;
  r.appId = id;
  return r;
}

TEST(ServiceConcurrency, OneCompilePerUniqueKeyUnderContention) {
  const std::vector<std::string> keySet = {"NVD-MT", "AMD-MT", "AMD-SS"};
  constexpr unsigned kThreads = 10;
  constexpr unsigned kItersPerThread = 24;

  CompileService service(ServiceConfig{});
  std::vector<std::vector<ArtifactPtr>> seen(kThreads);
  std::atomic<bool> go{false};
  std::atomic<unsigned> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      for (unsigned i = 0; i < kItersPerThread; ++i) {
        const std::string& id = keySet[(t + i) % keySet.size()];
        try {
          seen[t].push_back(service.run(appRequest(id)));
        } catch (const GroverError&) {
          ++failures;
        }
      }
    });
  }
  go = true;
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0u);
  const ServiceStats s = service.stats();
  EXPECT_EQ(s.compiles, keySet.size())
      << "every unique key must compile exactly once";
  EXPECT_EQ(s.requests, kThreads * kItersPerThread);
  // Every request was served by exactly one of: leading a compile,
  // coalescing onto an in-flight one, or a cache hit.
  EXPECT_EQ(s.misses + s.coalesced + s.memoryHits, s.requests);
  EXPECT_EQ(s.misses, keySet.size());

  // All observers of one key see identical module text.
  std::map<std::string, std::string> canonical;
  for (unsigned t = 0; t < kThreads; ++t) {
    unsigned i = 0;
    for (const ArtifactPtr& a : seen[t]) {
      const std::string& id = keySet[(t + i++) % keySet.size()];
      ASSERT_NE(a, nullptr);
      EXPECT_TRUE(a->ok);
      auto [it, inserted] = canonical.emplace(id, a->transformedText);
      if (!inserted) {
        EXPECT_EQ(a->transformedText, it->second)
            << "waiters observed divergent module text for " << id;
      }
    }
  }
  EXPECT_EQ(canonical.size(), keySet.size());
}

TEST(ServiceConcurrency, ConcurrentIdenticalSubmitsShareOneCompilation) {
  constexpr unsigned kWaiters = 16;
  CompileService service(ServiceConfig{});
  std::vector<CompileService::Future> futures;
  futures.reserve(kWaiters);
  for (unsigned i = 0; i < kWaiters; ++i) {
    futures.push_back(service.submit(appRequest("PAB-ST")));
  }
  std::vector<ArtifactPtr> results;
  for (auto& f : futures) results.push_back(f.get());
  for (const ArtifactPtr& a : results) {
    ASSERT_NE(a, nullptr);
    EXPECT_TRUE(a->ok);
    EXPECT_EQ(a->transformedText, results.front()->transformedText);
  }
  const ServiceStats s = service.stats();
  EXPECT_EQ(s.compiles, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.coalesced + s.memoryHits, kWaiters - 1);
}

TEST(ServiceConcurrency, BoundedQueueAppliesBackPressure) {
  ServiceConfig config;
  config.workers = 2;
  config.maxQueue = 2;
  CompileService service(config);
  // More unique keys than queue slots: submit() must block rather than
  // reject, and everything must still complete.
  const std::vector<std::string> ids = {"NVD-MT",   "AMD-MT", "AMD-SS",
                                        "AMD-RG",   "PAB-ST", "ROD-SC",
                                        "NVD-NBody"};
  std::vector<CompileService::Future> futures;
  for (const std::string& id : ids) {
    futures.push_back(service.submit(appRequest(id)));
  }
  for (auto& f : futures) {
    const ArtifactPtr a = f.get();
    ASSERT_NE(a, nullptr);
    EXPECT_TRUE(a->ok);
  }
  EXPECT_EQ(service.stats().compiles, ids.size());
}

TEST(ServiceShutdown, DrainsAndRejectsNewWork) {
  CompileService service(ServiceConfig{});
  auto f = service.submit(appRequest("NVD-MT"));
  service.shutdown();
  // The in-flight request completed during shutdown's drain.
  EXPECT_TRUE(f.get()->ok);
  EXPECT_THROW((void)service.submit(appRequest("NVD-MT")), GroverError);
  service.shutdown();  // idempotent
}

}  // namespace
}  // namespace grover::service
