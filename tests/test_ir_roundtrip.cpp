// Property-style round-trip test over every built-in Table I application:
// print → parse → print must be a byte-identical fixed point, and the
// reparsed module must pass the verifier — before AND after Grover. This
// is the correctness foundation of the service's on-disk artifact tier,
// which uses the textual IR round-trip as its cache format.
#include <gtest/gtest.h>

#include "apps/app.h"
#include "grover/grover_pass.h"
#include "grovercl/compiler.h"
#include "ir/ir_parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace grover {
namespace {

class ModuleRoundTrip : public ::testing::TestWithParam<std::string> {};

void expectFixedPoint(ir::Module& module, const std::string& what) {
  const std::string printed = ir::printModule(module);
  ir::Context ctx;
  std::unique_ptr<ir::Module> reparsed;
  ASSERT_NO_THROW(reparsed = ir::parseModule(ctx, printed)) << what;
  // parseModule verifies; verify once more explicitly so a relaxation of
  // the parser can never silently weaken this property.
  ASSERT_NO_THROW(ir::verifyModule(*reparsed)) << what;
  EXPECT_EQ(reparsed->name(), module.name()) << what;
  const std::string reprinted = ir::printModule(*reparsed);
  EXPECT_EQ(reprinted, printed) << what << ": print-parse-print not stable";
  // One more lap: the reparsed text must itself be a fixed point.
  ir::Context ctx2;
  auto reparsed2 = ir::parseModule(ctx2, reprinted);
  EXPECT_EQ(ir::printModule(*reparsed2), reprinted) << what;
}

TEST_P(ModuleRoundTrip, BeforeGrover) {
  const apps::Application& app = apps::applicationById(GetParam());
  Program program = compile(app.source());
  expectFixedPoint(*program.module, app.id() + " (before)");
}

TEST_P(ModuleRoundTrip, AfterGrover) {
  const apps::Application& app = apps::applicationById(GetParam());
  Program program = compile(app.source());
  ir::Function* kernel = program.kernel(app.kernelName());
  ASSERT_NE(kernel, nullptr);
  grv::GroverOptions options;
  options.onlyBuffers = app.buffersToDisable();
  (void)grv::runGrover(*kernel, options);
  ASSERT_NO_THROW(ir::verifyFunction(*kernel));
  expectFixedPoint(*program.module, app.id() + " (after)");
}

std::vector<std::string> allAppIds() {
  std::vector<std::string> ids;
  for (const auto& app : apps::allApplications()) ids.push_back(app->id());
  return ids;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, ModuleRoundTrip, ::testing::ValuesIn(allAppIds()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace grover
