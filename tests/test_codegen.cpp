// IRGen (AST → IR) behavior, observed through compiled + executed kernels.
#include <gtest/gtest.h>

#include "grovercl/compiler.h"
#include "ir/casting.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "rt/interpreter.h"

namespace grover {
namespace {

using namespace ir;

/// Run a 1-work-item kernel writing into `out` and return out[0..n).
template <typename T>
std::vector<T> run1(const std::string& src, std::size_t outCount,
                    std::vector<rt::KernelArg> extraArgs = {}) {
  auto program = compile(src);
  Function* fn = program.module->kernels().at(0);
  rt::Buffer out = rt::Buffer::zeros<T>(outCount);
  std::vector<rt::KernelArg> args{rt::KernelArg::buffer(&out)};
  for (auto& a : extraArgs) args.push_back(a);
  rt::Launch launch(*fn, rt::NDRange::make1D(1, 1), args);
  launch.run();
  return out.toVector<T>();
}

TEST(Codegen, ArithmeticAndPrecedence) {
  auto out = run1<std::int32_t>(R"(
__kernel void k(__global int* out) {
  out[0] = 2 + 3 * 4;
  out[1] = (2 + 3) * 4;
  out[2] = 20 / 3;
  out[3] = 20 % 3;
  out[4] = 1 << 5;
  out[5] = -40 >> 2;
  out[6] = 0xF0 & 0x3C;
  out[7] = 0xF0 | 0x0C;
  out[8] = 0xF0 ^ 0xFF;
  out[9] = ~0;
})", 10);
  EXPECT_EQ(out, (std::vector<std::int32_t>{14, 20, 6, 2, 32, -10, 0x30,
                                            0xFC, 0x0F, -1}));
}

TEST(Codegen, FloatArithmeticRoundsToF32) {
  auto out = run1<float>(R"(
__kernel void k(__global float* out) {
  float a = 1.5f;
  float b = 2.25f;
  out[0] = a + b;
  out[1] = a - b;
  out[2] = a * b;
  out[3] = a / b;
  out[4] = -a;
})", 5);
  EXPECT_FLOAT_EQ(out[0], 3.75F);
  EXPECT_FLOAT_EQ(out[1], -0.75F);
  EXPECT_FLOAT_EQ(out[2], 3.375F);
  EXPECT_FLOAT_EQ(out[3], 1.5F / 2.25F);
  EXPECT_FLOAT_EQ(out[4], -1.5F);
}

TEST(Codegen, Conversions) {
  auto out = run1<std::int32_t>(R"(
__kernel void k(__global int* out) {
  float f = 3.9f;
  out[0] = (int)f;          // trunc toward zero
  out[1] = (int)(-3.9f);
  int i = 300;
  out[2] = (int)(float)i;
  out[3] = (int)true;
  out[4] = (int)(5 > 2);
})", 5);
  EXPECT_EQ(out, (std::vector<std::int32_t>{3, -3, 300, 1, 1}));
}

TEST(Codegen, ComparisonsAndLogic) {
  auto out = run1<std::int32_t>(R"(
__kernel void k(__global int* out) {
  int a = 5;
  int b = 7;
  out[0] = a < b ? 1 : 0;
  out[1] = a >= b ? 1 : 0;
  out[2] = (a < b && b < 10) ? 1 : 0;
  out[3] = (a > b || b > 6) ? 1 : 0;
  out[4] = !(a == 5) ? 1 : 0;
})", 5);
  EXPECT_EQ(out, (std::vector<std::int32_t>{1, 0, 1, 1, 0}));
}

TEST(Codegen, ControlFlow) {
  auto out = run1<std::int32_t>(R"(
__kernel void k(__global int* out) {
  int sum = 0;
  for (int i = 0; i < 10; ++i) {
    if (i == 3) continue;
    if (i == 7) break;
    sum += i;
  }
  out[0] = sum;                   // 0+1+2+4+5+6 = 18
  int w = 0;
  int n = 5;
  while (n > 0) { w += n; n--; }
  out[1] = w;                     // 15
  if (out[0] > out[1]) out[2] = 1; else out[2] = 2;
})", 3);
  EXPECT_EQ(out, (std::vector<std::int32_t>{18, 15, 1}));
}

TEST(Codegen, EarlyReturn) {
  auto program = compile(R"(
__kernel void k(__global int* out, int n) {
  int i = get_global_id(0);
  if (i >= n) {
    return;
  }
  out[i] = i;
})");
  Function* fn = program.kernel("k");
  verifyFunction(*fn);
  rt::Buffer out = rt::Buffer::zeros<std::int32_t>(8);
  rt::Launch launch(*fn, rt::NDRange::make1D(8, 4),
                    {rt::KernelArg::buffer(&out), rt::KernelArg::int32(5)});
  launch.run();
  auto v = out.toVector<std::int32_t>();
  EXPECT_EQ(v, (std::vector<std::int32_t>{0, 1, 2, 3, 4, 0, 0, 0}));
}

TEST(Codegen, VectorOpsAndSwizzles) {
  auto out = run1<float>(R"(
__kernel void k(__global float* out) {
  float4 v = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
  float4 w = v * 2.0f;            // broadcast
  float4 s = (float4)(10.0f);     // scalar splat
  float4 sum = w + s;
  out[0] = sum.x;
  out[1] = sum.y;
  out[2] = sum.z;
  out[3] = sum.w;
  sum.y = 99.0f;
  out[4] = sum.y;
  out[5] = dot(v, v);             // 1+4+9+16 = 30
})", 6);
  EXPECT_FLOAT_EQ(out[0], 12.0F);
  EXPECT_FLOAT_EQ(out[1], 14.0F);
  EXPECT_FLOAT_EQ(out[2], 16.0F);
  EXPECT_FLOAT_EQ(out[3], 18.0F);
  EXPECT_FLOAT_EQ(out[4], 99.0F);
  EXPECT_FLOAT_EQ(out[5], 30.0F);
}

TEST(Codegen, BuiltinMath) {
  auto out = run1<float>(R"(
__kernel void k(__global float* out) {
  out[0] = sqrt(16.0f);
  out[1] = fabs(-2.5f);
  out[2] = fmin(1.0f, 2.0f);
  out[3] = fmax(1.0f, 2.0f);
  out[4] = mad(2.0f, 3.0f, 4.0f);
  out[5] = rsqrt(4.0f);
  out[6] = floor(2.7f);
  out[7] = ceil(2.2f);
  out[8] = (float)min(3, 5);
  out[9] = (float)max(3, 5);
  out[10] = (float)clamp(7, 0, 5);
  out[11] = (float)mul24(100, 20);
})", 12);
  EXPECT_FLOAT_EQ(out[0], 4.0F);
  EXPECT_FLOAT_EQ(out[1], 2.5F);
  EXPECT_FLOAT_EQ(out[2], 1.0F);
  EXPECT_FLOAT_EQ(out[3], 2.0F);
  EXPECT_FLOAT_EQ(out[4], 10.0F);
  EXPECT_FLOAT_EQ(out[5], 0.5F);
  EXPECT_FLOAT_EQ(out[6], 2.0F);
  EXPECT_FLOAT_EQ(out[7], 3.0F);
  EXPECT_FLOAT_EQ(out[8], 3.0F);
  EXPECT_FLOAT_EQ(out[9], 5.0F);
  EXPECT_FLOAT_EQ(out[10], 5.0F);
  EXPECT_FLOAT_EQ(out[11], 2000.0F);
}

TEST(Codegen, PrivateArrays) {
  auto out = run1<std::int32_t>(R"(
__kernel void k(__global int* out) {
  int scratch[8];
  for (int i = 0; i < 8; ++i) scratch[i] = i * i;
  int sum = 0;
  for (int i = 0; i < 8; ++i) sum += scratch[i];
  out[0] = sum;  // 0+1+4+9+16+25+36+49 = 140
})", 1);
  EXPECT_EQ(out[0], 140);
}

TEST(Codegen, MultiDimPrivateArrayFlattening) {
  auto out = run1<std::int32_t>(R"(
__kernel void k(__global int* out) {
  int m[3][4];
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 4; ++c)
      m[r][c] = r * 10 + c;
  out[0] = m[2][3];
  out[1] = m[0][1];
  out[2] = m[1][2];
})", 3);
  EXPECT_EQ(out, (std::vector<std::int32_t>{23, 1, 12}));
}

TEST(Codegen, ValueParamsAreMutable) {
  auto out = run1<std::int32_t>(R"(
__kernel void k(__global int* out, int n) {
  n = n + 1;
  n += 2;
  out[0] = n;
})", 1, {rt::KernelArg::int32(10)});
  EXPECT_EQ(out[0], 13);
}

TEST(Codegen, CompoundAssignOnBufferElement) {
  auto out = run1<float>(R"(
__kernel void k(__global float* out) {
  out[0] = 10.0f;
  out[0] += 5.0f;
  out[0] *= 2.0f;
  out[0] -= 6.0f;
  out[0] /= 4.0f;
})", 1);
  EXPECT_FLOAT_EQ(out[0], 6.0F);
}

TEST(Codegen, DoWhileExecutesBodyAtLeastOnce) {
  auto out = run1<std::int32_t>(R"(
__kernel void k(__global int* out) {
  int n = 0;
  int count = 0;
  do {
    count += 1;
  } while (n > 0);
  out[0] = count;          // body runs once even though n > 0 is false
  int v = 10;
  int steps = 0;
  do {
    v -= 3;
    ++steps;
    if (steps == 2) continue;
    if (v < 0) break;
  } while (v > 0);
  out[1] = steps;
  out[2] = v;
})", 3);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 4);   // 10→7→4→1→-2 (break after 4th step)
  EXPECT_EQ(out[2], -2);
}

TEST(Codegen, UnreachableCodeAfterReturnIsPruned) {
  auto program = compile(R"(
__kernel void k(__global int* out) {
  out[0] = 1;
  return;
  out[0] = 2;
})");
  Function* fn = program.kernel("k");
  verifyFunction(*fn);
  // The dead store must be gone.
  std::size_t stores = 0;
  for (BasicBlock* bb : fn->blockList()) {
    for (const auto& inst : *bb) {
      if (isa<StoreInst>(inst.get())) ++stores;
    }
  }
  EXPECT_EQ(stores, 1u);
}

}  // namespace
}  // namespace grover
