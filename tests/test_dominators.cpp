// Dominator tree + dominance frontiers on hand-built CFGs.
#include "analysis/dominators.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ir/builder.h"
#include "ir/module.h"

namespace grover::analysis {
namespace {

using namespace ir;

class DomTest : public ::testing::Test {
 protected:
  Context ctx;
  Module module{ctx, "test"};
  IRBuilder builder{ctx};

  Function* makeDiamond() {
    // entry → (t | f) → merge → exit
    Function* fn = module.addFunction("diamond", ctx.voidTy(), true);
    Argument* c = fn->addArgument(ctx.boolTy(), "c");
    BasicBlock* entry = fn->addBlock("entry");
    BasicBlock* t = fn->addBlock("t");
    BasicBlock* f = fn->addBlock("f");
    BasicBlock* merge = fn->addBlock("merge");
    builder.setInsertPoint(entry);
    builder.createCondBr(c, t, f);
    builder.setInsertPoint(t);
    builder.createBr(merge);
    builder.setInsertPoint(f);
    builder.createBr(merge);
    builder.setInsertPoint(merge);
    builder.createRetVoid();
    return fn;
  }

  Function* makeLoop() {
    // entry → header ⇄ body; header → exit
    Function* fn = module.addFunction("loop", ctx.voidTy(), true);
    Argument* c = fn->addArgument(ctx.boolTy(), "c");
    BasicBlock* entry = fn->addBlock("entry");
    BasicBlock* header = fn->addBlock("header");
    BasicBlock* body = fn->addBlock("body");
    BasicBlock* exit = fn->addBlock("exit");
    builder.setInsertPoint(entry);
    builder.createBr(header);
    builder.setInsertPoint(header);
    builder.createCondBr(c, body, exit);
    builder.setInsertPoint(body);
    builder.createBr(header);
    builder.setInsertPoint(exit);
    builder.createRetVoid();
    return fn;
  }
};

TEST_F(DomTest, DiamondIdoms) {
  Function* fn = makeDiamond();
  DominatorTree dt(*fn);
  auto blocks = fn->blockList();
  BasicBlock* entry = blocks[0];
  BasicBlock* t = blocks[1];
  BasicBlock* f = blocks[2];
  BasicBlock* merge = blocks[3];
  EXPECT_EQ(dt.idom(entry), nullptr);
  EXPECT_EQ(dt.idom(t), entry);
  EXPECT_EQ(dt.idom(f), entry);
  EXPECT_EQ(dt.idom(merge), entry);  // not t or f
}

TEST_F(DomTest, DiamondDominates) {
  Function* fn = makeDiamond();
  DominatorTree dt(*fn);
  auto blocks = fn->blockList();
  EXPECT_TRUE(dt.dominates(blocks[0], blocks[3]));
  EXPECT_FALSE(dt.dominates(blocks[1], blocks[3]));
  EXPECT_TRUE(dt.dominates(blocks[1], blocks[1]));  // reflexive
  EXPECT_FALSE(dt.dominates(blocks[1], blocks[2]));
}

TEST_F(DomTest, DiamondFrontiers) {
  Function* fn = makeDiamond();
  DominatorTree dt(*fn);
  auto blocks = fn->blockList();
  BasicBlock* merge = blocks[3];
  // t and f have merge in their frontier; entry and merge do not.
  EXPECT_EQ(dt.frontier(blocks[1]), std::vector<BasicBlock*>{merge});
  EXPECT_EQ(dt.frontier(blocks[2]), std::vector<BasicBlock*>{merge});
  EXPECT_TRUE(dt.frontier(blocks[0]).empty());
  EXPECT_TRUE(dt.frontier(merge).empty());
}

TEST_F(DomTest, LoopHeaderInItsOwnFrontierViaBody) {
  Function* fn = makeLoop();
  DominatorTree dt(*fn);
  auto blocks = fn->blockList();
  BasicBlock* header = blocks[1];
  BasicBlock* body = blocks[2];
  // The back edge puts the header in the body's frontier.
  const auto& frontier = dt.frontier(body);
  EXPECT_NE(std::find(frontier.begin(), frontier.end(), header),
            frontier.end());
  EXPECT_EQ(dt.idom(body), header);
}

TEST_F(DomTest, RpoStartsAtEntry) {
  Function* fn = makeLoop();
  DominatorTree dt(*fn);
  ASSERT_FALSE(dt.rpo().empty());
  EXPECT_EQ(dt.rpo().front(), fn->entry());
  EXPECT_EQ(dt.rpo().size(), 4u);
}

TEST_F(DomTest, UnreachableBlockNotInTree) {
  Function* fn = makeDiamond();
  BasicBlock* dead = fn->addBlock("dead");
  builder.setInsertPoint(dead);
  builder.createRetVoid();
  DominatorTree dt(*fn);
  EXPECT_FALSE(dt.isReachable(dead));
  EXPECT_EQ(dt.rpo().size(), 4u);
}

TEST_F(DomTest, ValueDominatesWithinBlock) {
  Function* fn = module.addFunction("f", ctx.voidTy(), true);
  Argument* a = fn->addArgument(ctx.int32Ty(), "a");
  BasicBlock* bb = fn->addBlock("entry");
  builder.setInsertPoint(bb);
  auto* first = ir::cast<Instruction>(builder.createAdd(a, a));
  auto* second = ir::cast<Instruction>(builder.createAdd(first, a));
  builder.createRetVoid();
  DominatorTree dt(*fn);
  EXPECT_TRUE(dt.valueDominates(first, second));
  EXPECT_FALSE(dt.valueDominates(second, first));
  EXPECT_TRUE(dt.valueDominates(a, first));           // arguments dominate
  EXPECT_TRUE(dt.valueDominates(ctx.getInt32(1), first));  // constants too
}

}  // namespace
}  // namespace grover::analysis
