// IR verifier: each structural/SSA rule has a test that violates it.
#include "ir/verifier.h"

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/casting.h"
#include "ir/module.h"
#include "support/diagnostics.h"

namespace grover::ir {
namespace {

class VerifierTest : public ::testing::Test {
 protected:
  Context ctx;
  Module module{ctx, "m"};
  IRBuilder builder{ctx};

  Function* newFn() {
    Function* fn = module.addFunction("f", ctx.voidTy(), true);
    return fn;
  }
};

TEST_F(VerifierTest, AcceptsMinimalFunction) {
  Function* fn = newFn();
  builder.setInsertPoint(fn->addBlock("entry"));
  builder.createRetVoid();
  EXPECT_NO_THROW(verifyFunction(*fn));
}

TEST_F(VerifierTest, RejectsEmptyFunction) {
  Function* fn = newFn();
  EXPECT_THROW(verifyFunction(*fn), GroverError);
}

TEST_F(VerifierTest, RejectsMissingTerminator) {
  Function* fn = newFn();
  Argument* a = fn->addArgument(ctx.int32Ty(), "a");
  builder.setInsertPoint(fn->addBlock("entry"));
  builder.createAdd(a, a);
  EXPECT_THROW(verifyFunction(*fn), GroverError);
}

TEST_F(VerifierTest, RejectsUseBeforeDefInBlock) {
  Function* fn = newFn();
  Argument* a = fn->addArgument(ctx.int32Ty(), "a");
  BasicBlock* bb = fn->addBlock("entry");
  builder.setInsertPoint(bb);
  Value* first = builder.createAdd(a, a);
  Value* second = builder.createAdd(a, a);
  builder.createRetVoid();
  // Make the *first* instruction use the second.
  cast<BinaryInst>(first)->setOperand(1, second);
  EXPECT_THROW(verifyFunction(*fn), GroverError);
}

TEST_F(VerifierTest, RejectsCrossFunctionOperand) {
  Function* fn1 = newFn();
  Argument* a1 = fn1->addArgument(ctx.int32Ty(), "a");
  builder.setInsertPoint(fn1->addBlock("entry"));
  builder.createAdd(a1, a1);
  builder.createRetVoid();

  Function* fn2 = module.addFunction("g", ctx.voidTy(), true);
  builder.setInsertPoint(fn2->addBlock("entry"));
  builder.createAdd(a1, a1);  // a1 belongs to fn1!
  builder.createRetVoid();
  EXPECT_THROW(verifyFunction(*fn2), GroverError);
}

TEST_F(VerifierTest, RejectsPhiEdgeMismatch) {
  Function* fn = newFn();
  Argument* c = fn->addArgument(ctx.boolTy(), "c");
  BasicBlock* entry = fn->addBlock("entry");
  BasicBlock* t = fn->addBlock("t");
  BasicBlock* merge = fn->addBlock("merge");
  builder.setInsertPoint(entry);
  builder.createCondBr(c, t, merge);
  builder.setInsertPoint(t);
  builder.createBr(merge);
  builder.setInsertPoint(merge);
  PhiInst* phi = builder.createPhi(ctx.int32Ty(), "p");
  phi->addIncoming(ctx.getInt32(1), entry);  // missing edge from t
  builder.createRetVoid();
  EXPECT_THROW(verifyFunction(*fn), GroverError);
}

TEST_F(VerifierTest, AcceptsWellFormedPhi) {
  Function* fn = newFn();
  Argument* c = fn->addArgument(ctx.boolTy(), "c");
  BasicBlock* entry = fn->addBlock("entry");
  BasicBlock* t = fn->addBlock("t");
  BasicBlock* merge = fn->addBlock("merge");
  builder.setInsertPoint(entry);
  builder.createCondBr(c, t, merge);
  builder.setInsertPoint(t);
  builder.createBr(merge);
  builder.setInsertPoint(merge);
  PhiInst* phi = builder.createPhi(ctx.int32Ty(), "p");
  phi->addIncoming(ctx.getInt32(1), entry);
  phi->addIncoming(ctx.getInt32(2), t);
  builder.createRetVoid();
  EXPECT_NO_THROW(verifyFunction(*fn));
}

TEST_F(VerifierTest, RejectsPhiAfterNonPhi) {
  Function* fn = newFn();
  Argument* a = fn->addArgument(ctx.int32Ty(), "a");
  BasicBlock* bb = fn->addBlock("entry");
  builder.setInsertPoint(bb);
  builder.createAdd(a, a);
  // Force a phi after the add by appending directly.
  auto phi = std::make_unique<PhiInst>(ctx.int32Ty());
  bb->append(std::move(phi));
  builder.setInsertPoint(bb);
  builder.createRetVoid();
  EXPECT_THROW(verifyFunction(*fn), GroverError);
}

TEST_F(VerifierTest, RejectsStoreTypeMismatch) {
  Function* fn = newFn();
  Argument* out =
      fn->addArgument(ctx.pointerTy(ctx.floatTy(), AddrSpace::Global), "out");
  BasicBlock* bb = fn->addBlock("entry");
  // Bypass the builder's checks with a raw StoreInst.
  auto store = std::make_unique<StoreInst>(ctx, ctx.getInt32(1), out);
  bb->append(std::move(store));
  builder.setInsertPoint(bb);
  builder.createRetVoid();
  EXPECT_THROW(verifyFunction(*fn), GroverError);
}

TEST_F(VerifierTest, RejectsBinaryOperandMismatch) {
  Function* fn = newFn();
  Argument* i = fn->addArgument(ctx.int32Ty(), "i");
  Argument* f = fn->addArgument(ctx.floatTy(), "f");
  BasicBlock* bb = fn->addBlock("entry");
  auto bad = std::make_unique<BinaryInst>(BinaryOp::Add, i, f);
  bb->append(std::move(bad));
  builder.setInsertPoint(bb);
  builder.createRetVoid();
  EXPECT_THROW(verifyFunction(*fn), GroverError);
}

TEST_F(VerifierTest, RejectsFloatOpcodeOnInts) {
  Function* fn = newFn();
  Argument* i = fn->addArgument(ctx.int32Ty(), "i");
  BasicBlock* bb = fn->addBlock("entry");
  auto bad = std::make_unique<BinaryInst>(BinaryOp::FAdd, i, i);
  bb->append(std::move(bad));
  builder.setInsertPoint(bb);
  builder.createRetVoid();
  EXPECT_THROW(verifyFunction(*fn), GroverError);
}

TEST_F(VerifierTest, RejectsCondBrOnNonBool) {
  Function* fn = newFn();
  Argument* i = fn->addArgument(ctx.int32Ty(), "i");
  BasicBlock* entry = fn->addBlock("entry");
  BasicBlock* t = fn->addBlock("t");
  auto bad = std::make_unique<CondBrInst>(ctx, i, t, t);
  entry->append(std::move(bad));
  builder.setInsertPoint(t);
  builder.createRetVoid();
  EXPECT_THROW(verifyFunction(*fn), GroverError);
}

TEST_F(VerifierTest, RejectsDominanceViolationAcrossBlocks) {
  Function* fn = newFn();
  Argument* c = fn->addArgument(ctx.boolTy(), "c");
  Argument* a = fn->addArgument(ctx.int32Ty(), "a");
  BasicBlock* entry = fn->addBlock("entry");
  BasicBlock* t = fn->addBlock("t");
  BasicBlock* f = fn->addBlock("f");
  builder.setInsertPoint(entry);
  builder.createCondBr(c, t, f);
  builder.setInsertPoint(t);
  Value* defined = builder.createAdd(a, a);
  builder.createRetVoid();
  builder.setInsertPoint(f);
  builder.createAdd(cast<BinaryInst>(defined), a);  // t does not dominate f
  builder.createRetVoid();
  EXPECT_THROW(verifyFunction(*fn), GroverError);
}

}  // namespace
}  // namespace grover::ir
