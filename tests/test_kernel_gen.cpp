// The fuzzer's kernel generator and differential harness, run in-process
// over a fixed seed window: every generated kernel must compile, meet its
// family's transform contract, and produce bit-identical outputs across
// {original, transformed} x {decoded interpreter, reference oracle}.
#include "check/kernel_gen.h"

#include <gtest/gtest.h>

#include <set>

#include "check/differential.h"

namespace grover::check {
namespace {

TEST(KernelGen, GenerationIsDeterministic) {
  const GeneratedKernel a = generateKernel(42);
  const GeneratedKernel b = generateKernel(42);
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_EQ(makeInput(a), makeInput(b));
}

TEST(KernelGen, NormalizeEnforcesInvariants) {
  KernelSpec spec;
  spec.family = KernelFamily::AffineTile;
  spec.dims = 2;
  spec.localX = 8;
  spec.localY = 4;
  spec.pitch = 3;     // < localX: must be raised
  spec.offset = 9;    // would break flat-index injectivity: must be clamped
  spec.swapXY = true; // non-square: must be dropped
  const KernelSpec n = normalize(spec);
  EXPECT_GE(n.pitch, n.localX);
  EXPECT_LE(n.offset, n.pitch - n.localX);
  EXPECT_FALSE(n.swapXY);
  // Race kernels need the second dimension they ignore.
  spec.family = KernelFamily::Race;
  spec.dims = 1;
  EXPECT_EQ(normalize(spec).dims, 2u);
}

TEST(KernelGen, ShrinkCandidatesAreSmallerAndValid) {
  const KernelSpec spec = randomSpec(1234);
  for (const KernelSpec& candidate : shrinkCandidates(spec)) {
    // Already normalized...
    const KernelSpec renorm = normalize(candidate);
    EXPECT_EQ(renorm.localX, candidate.localX);
    EXPECT_EQ(renorm.pitch, candidate.pitch);
    // ...and renderable.
    const GeneratedKernel k = render(candidate);
    EXPECT_FALSE(k.source.empty());
    EXPECT_GT(k.ioFloats, 0u);
  }
}

TEST(KernelGen, DifferentialPassesOverSeedWindow) {
  // A small in-process slice of what `groverfuzz --seeds=N --validate`
  // runs in CI; large enough to hit every family.
  std::set<KernelFamily> seen;
  unsigned transformed = 0;
  unsigned rejected = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const GeneratedKernel kernel = generateKernel(seed);
    const DiffOutcome outcome = runDifferential(kernel, /*validate=*/true);
    EXPECT_TRUE(outcome.ok) << "seed " << seed << " [" << outcome.phase
                            << "] " << outcome.message << "\n"
                            << kernel.source;
    seen.insert(kernel.spec.family);
    (outcome.transformed ? transformed : rejected) += 1;
  }
  EXPECT_GE(seen.size(), 6u);  // the window covers almost every family
  EXPECT_GT(transformed, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(KernelGen, MustTransformFamiliesDeclareBarrierExpectation) {
  // MixedKeepBarrier is the one family whose barrier must survive.
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const GeneratedKernel k = generateKernel(seed);
    if (k.spec.family == KernelFamily::MixedKeepBarrier) {
      ASSERT_TRUE(k.expectBarrierRemoved.has_value());
      EXPECT_FALSE(*k.expectBarrierRemoved);
    }
    if (k.spec.family == KernelFamily::AffineTile) {
      ASSERT_TRUE(k.expectBarrierRemoved.has_value());
      EXPECT_TRUE(*k.expectBarrierRemoved);
    }
    EXPECT_FALSE(k.mustTransform && k.mustReject);
  }
}

}  // namespace
}  // namespace grover::check
