// groverfuzz — differential kernel fuzzer for the Grover transform.
//
// Usage:
//   groverfuzz [--seeds=N] [--seed=S] [--validate] [--native]
//              [--out-dir=DIR] [--verbose]
//
// Each seed deterministically generates one staging kernel (plus near-miss
// variants Grover must reject), compiles it with and without the Grover
// pass, executes both versions on the decoded interpreter and on the
// tree-walking reference oracle, and requires all outputs to be
// bit-identical. Failures are greedily shrunk to a minimal kernel and
// written to --out-dir as an on-disk reproducer.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "check/differential.h"
#include "check/kernel_gen.h"
#include "native/engine.h"

namespace {

using grover::check::DiffOutcome;
using grover::check::GeneratedKernel;
using grover::check::KernelSpec;

void usage() {
  std::cerr <<
      "usage: groverfuzz [options]\n"
      "  --seeds=N     number of seeds to run (default 200)\n"
      "  --seed=S      run exactly one seed\n"
      "  --validate    also run the post-Grover semantic validator and the\n"
      "                IR verifier after every transform stage\n"
      "  --native      additionally execute both kernel versions through\n"
      "                the JIT-compiled native backend and require\n"
      "                bit-identity with the decoded interpreter (skipped\n"
      "                with a warning when no system C compiler is found)\n"
      "  --out-dir=DIR where to write shrunk reproducers (default: .)\n"
      "  --verbose     print one line per seed\n";
}

/// Greedy shrink: repeatedly adopt the first one-step-smaller spec that
/// still fails the differential check (any phase counts), until no
/// candidate fails.
KernelSpec shrink(const KernelSpec& start, bool validate, bool nativeLeg) {
  KernelSpec best = start;
  bool improved = true;
  while (improved) {
    improved = false;
    for (const KernelSpec& candidate :
         grover::check::shrinkCandidates(best)) {
      const DiffOutcome outcome = runDifferential(
          grover::check::render(candidate), validate, nativeLeg);
      if (!outcome.ok) {
        best = candidate;
        improved = true;
        break;
      }
    }
  }
  return best;
}

/// Write the shrunk kernel and a metadata sidecar; returns the .cl path.
std::string writeReproducer(const std::string& dir,
                            const GeneratedKernel& kernel,
                            const DiffOutcome& outcome) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string stem =
      dir + "/groverfuzz_seed_" + std::to_string(kernel.spec.seed);
  {
    std::ofstream cl(stem + ".cl");
    cl << kernel.source;
  }
  {
    std::ofstream meta(stem + ".txt");
    meta << "kernel : " << kernel.describe() << "\n"
         << "phase  : " << outcome.phase << "\n"
         << "detail : " << outcome.message << "\n"
         << "launch : global " << kernel.global[0] << "x" << kernel.global[1]
         << ", local " << kernel.local[0] << "x" << kernel.local[1]
         << ", io floats " << kernel.ioFloats << "\n";
  }
  return stem + ".cl";
}

/// Strict unsigned parse: the whole string must be digits.
bool parseU64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  return *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 200;
  std::uint64_t singleSeed = 0;
  bool haveSingleSeed = false;
  bool validate = false;
  bool nativeLeg = false;
  bool verbose = false;
  std::string outDir = ".";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seeds=", 0) == 0) {
      if (!parseU64(arg.substr(8), seeds)) {
        std::cerr << "bad --seeds value: " << arg.substr(8) << "\n";
        return 2;
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!parseU64(arg.substr(7), singleSeed)) {
        std::cerr << "bad --seed value: " << arg.substr(7) << "\n";
        return 2;
      }
      haveSingleSeed = true;
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      outDir = arg.substr(10);
    } else if (arg == "--validate") {
      validate = true;
    } else if (arg == "--native") {
      nativeLeg = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    }
  }

  std::vector<std::uint64_t> seedList;
  if (haveSingleSeed) {
    seedList.push_back(singleSeed);
  } else {
    for (std::uint64_t s = 1; s <= seeds; ++s) seedList.push_back(s);
  }

  if (nativeLeg) {
    const grover::native::NativeEngine& engine =
        grover::native::NativeEngine::shared();
    if (!engine.available()) {
      // Warn once up front rather than per seed; the differential legs
      // that don't need a toolchain still run.
      std::cerr << "groverfuzz: native backend unavailable ("
                << engine.unavailableReason()
                << "); the --native leg will be skipped\n";
    }
  }

  std::map<std::string, unsigned> byFamily;
  unsigned transformed = 0, rejected = 0, failures = 0, nativeChecked = 0;
  for (const std::uint64_t seed : seedList) {
    const GeneratedKernel kernel = grover::check::generateKernel(seed);
    const DiffOutcome outcome = runDifferential(kernel, validate, nativeLeg);
    ++byFamily[grover::check::toString(kernel.spec.family)];
    if (outcome.ok) {
      outcome.transformed ? ++transformed : ++rejected;
      if (outcome.nativeChecked) ++nativeChecked;
      if (verbose) {
        std::cout << "seed " << seed << ": ok, " << kernel.describe()
                  << (outcome.transformed ? " [transformed]" : " [rejected]")
                  << (outcome.nativeChecked ? " [native]" : "")
                  << "\n";
      }
      continue;
    }
    ++failures;
    std::cout << "seed " << seed << ": FAIL [" << outcome.phase << "] "
              << outcome.message << "\n";
    const KernelSpec small = shrink(kernel.spec, validate, nativeLeg);
    const GeneratedKernel smallKernel = grover::check::render(small);
    const DiffOutcome smallOutcome =
        runDifferential(smallKernel, validate, nativeLeg);
    const std::string path =
        writeReproducer(outDir, smallKernel, smallOutcome);
    std::cout << "  shrunk to " << smallKernel.describe() << "\n"
              << "  reproducer written to " << path << "\n";
  }

  std::cout << "\n" << seedList.size() << " seed(s): " << transformed
            << " transformed, " << rejected << " rejected, " << failures
            << " failure(s)"
            << (validate ? " [validator on]" : "") << "\n";
  if (nativeLeg) {
    std::cout << "native leg: " << nativeChecked << "/" << seedList.size()
              << " seed(s) cross-checked bit-exact\n";
  }
  for (const auto& [family, count] : byFamily) {
    std::cout << "  " << family << ": " << count << "\n";
  }
  return failures == 0 ? 0 : 1;
}
