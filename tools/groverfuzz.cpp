// groverfuzz — differential kernel fuzzer for the Grover transform.
//
// Usage:
//   groverfuzz [--seeds=N] [--seed=S] [--validate] [--native] [--prove]
//              [--mine=DIR] [--out-dir=DIR] [--verbose]
//
// Each seed deterministically generates one staging kernel (plus near-miss
// variants Grover must reject), compiles it with and without the Grover
// pass, executes both versions on the decoded interpreter and on the
// tree-walking reference oracle, and requires all outputs to be
// bit-identical. Failures are greedily shrunk to a minimal kernel and
// written to --out-dir as an on-disk reproducer.
//
// --prove additionally runs the symbolic race prover on every generated
// original under its real launch geometry and cross-checks the verdict
// against the family contract: Race-family kernels are genuinely racy, so
// a Proved verdict there is a soundness bug, and every Refuted witness is
// re-executed concretely on the decoded interpreter — a witness the
// interpreter contradicts is a prover bug and fails the run.
//
// --mine=DIR turns the fuzzer into a corpus miner: kernels whose policy
// feature vector lands in a cell no previously mined kernel occupies are
// written to DIR as mined_<key>.cl; the seen-set persists in DIR/seen.txt
// so repeated runs keep extending coverage instead of re-mining it.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "check/differential.h"
#include "check/kernel_gen.h"
#include "grovercl/compiler.h"
#include "native/engine.h"
#include "policy/features.h"
#include "rt/interpreter.h"
#include "sym/prover.h"
#include "sym/witness_check.h"

namespace {

using grover::check::DiffOutcome;
using grover::check::GeneratedKernel;
using grover::check::KernelSpec;

void usage() {
  std::cerr <<
      "usage: groverfuzz [options]\n"
      "  --seeds=N     number of seeds to run (default 200)\n"
      "  --seed=S      run exactly one seed\n"
      "  --validate    also run the post-Grover semantic validator and the\n"
      "                IR verifier after every transform stage\n"
      "  --native      additionally execute both kernel versions through\n"
      "                the JIT-compiled native backend and require\n"
      "                bit-identity with the decoded interpreter (skipped\n"
      "                with a warning when no system C compiler is found)\n"
      "  --prove       run the symbolic race prover on every generated\n"
      "                original; Race-family kernels must not come back\n"
      "                Proved, any other family must not come back Refuted,\n"
      "                and every Refuted witness must be confirmed by\n"
      "                concrete execution on the decoded interpreter\n"
      "  --mine=DIR    corpus miner: keep kernels whose policy feature\n"
      "                vector hits a cell no mined kernel has hit before\n"
      "                (seen-set persisted in DIR/seen.txt)\n"
      "  --out-dir=DIR where to write shrunk reproducers (default: .)\n"
      "  --verbose     print one line per seed\n";
}

/// Prover leg bookkeeping for one fuzz run.
struct ProveStats {
  unsigned proved = 0;
  unsigned refuted = 0;
  unsigned unknown = 0;
  unsigned confirmedWitnesses = 0;
  unsigned failures = 0;
};

/// Prove the original of one generated kernel under its real launch
/// geometry and check the verdict against the family contract. Returns
/// false (and prints a diagnostic) on a contract violation or a witness
/// the interpreter contradicts.
bool proveSeed(const GeneratedKernel& kernel, ProveStats& stats,
               bool verbose) {
  namespace sym = grover::sym;
  namespace rt = grover::rt;
  grover::Program program = grover::compile(kernel.source);
  grover::ir::Function* fn = nullptr;
  for (const auto& f : program.module->functions()) {
    if (f->isKernel() && f->name() == kernel.kernelName) {
      fn = f.get();
      break;
    }
  }
  if (fn == nullptr) {
    ++stats.failures;
    std::cout << "seed " << kernel.spec.seed
              << ": PROVE FAIL kernel '" << kernel.kernelName
              << "' not found after compile\n";
    return false;
  }
  rt::NDRange range;
  range.dims = kernel.dims;
  range.global = kernel.global;
  range.local = kernel.local;
  range.validate();
  const std::vector<float> input = grover::check::makeInput(kernel);
  rt::Buffer in = rt::Buffer::fromVector(input);
  rt::Buffer out = rt::Buffer::zeros<float>(kernel.ioFloats);
  const std::vector<rt::KernelArg> args = {rt::KernelArg::buffer(&out),
                                           rt::KernelArg::buffer(&in)};
  const sym::SymbolicReport report =
      sym::proveRaceFreedom(*fn, sym::proveOptionsForLaunch(range, args));

  const bool racyFamily =
      kernel.spec.family == grover::check::KernelFamily::Race;
  bool ok = true;
  switch (report.status) {
    case sym::ProofStatus::Proved:
      ++stats.proved;
      if (racyFamily) {
        // Proving a genuinely racy kernel race-free is a soundness bug.
        ok = false;
        std::cout << "seed " << kernel.spec.seed
                  << ": PROVE FAIL Race-family kernel came back Proved ("
                  << report.summary() << ")\n";
      }
      break;
    case sym::ProofStatus::Refuted: {
      ++stats.refuted;
      if (!racyFamily) {
        ok = false;
        std::cout << "seed " << kernel.spec.seed << ": PROVE FAIL "
                  << grover::check::toString(kernel.spec.family)
                  << " kernel spuriously refuted (" << report.summary()
                  << ")\n";
      }
      if (report.witness.has_value()) {
        const sym::WitnessCheck check =
            sym::confirmWitness(*fn, *report.witness, range, args);
        if (check.confirmed) {
          ++stats.confirmedWitnesses;
        } else {
          ok = false;
          std::cout << "seed " << kernel.spec.seed
                    << ": PROVE FAIL witness contradicted by concrete "
                       "execution: "
                    << check.detail << "\n  witness: "
                    << report.witness->str() << "\n";
        }
      } else {
        ok = false;
        std::cout << "seed " << kernel.spec.seed
                  << ": PROVE FAIL Refuted without a witness\n";
      }
      break;
    }
    default:
      ++stats.unknown;
      break;
  }
  if (!ok) ++stats.failures;
  if (ok && verbose) {
    std::cout << "seed " << kernel.spec.seed << ": prove "
              << report.summary() << "\n";
  }
  return ok;
}

/// Policy-feature corpus miner state: the set of feature-cell keys any
/// previous or current run has kept, persisted one hex key per line.
struct Miner {
  std::string dir;
  std::string seenPath;
  std::unordered_set<std::uint64_t> seen;
  unsigned kept = 0;

  explicit Miner(std::string directory) : dir(std::move(directory)) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    seenPath = dir + "/seen.txt";
    std::ifstream file(seenPath);
    std::string line;
    while (std::getline(file, line)) {
      if (line.empty()) continue;
      seen.insert(std::strtoull(line.c_str(), nullptr, 16));
    }
  }

  /// Keep the kernel when its feature cell is new; returns true if kept.
  bool offer(const GeneratedKernel& kernel, bool verbose) {
    grover::Program program = grover::compile(kernel.source);
    grover::ir::Function* fn = nullptr;
    for (const auto& f : program.module->functions()) {
      if (f->isKernel() && f->name() == kernel.kernelName) {
        fn = f.get();
        break;
      }
    }
    if (fn == nullptr) return false;
    grover::rt::NDRange range;
    range.dims = kernel.dims;
    range.global = kernel.global;
    range.local = kernel.local;
    range.validate();
    const grover::policy::KernelFeatures features =
        grover::policy::extractFeatures(*fn, &range);
    const std::uint64_t key =
        grover::policy::featureKey(features, "mine", 0);
    if (!seen.insert(key).second) return false;
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(key));
    {
      std::ofstream cl(dir + "/mined_" + hex + ".cl");
      cl << "// seed " << kernel.spec.seed << ": " << kernel.describe()
         << "\n"
         << kernel.source;
    }
    {
      std::ofstream seenFile(seenPath, std::ios::app);
      seenFile << hex << "\n";
    }
    ++kept;
    if (verbose) {
      std::cout << "seed " << kernel.spec.seed << ": mined cell " << hex
                << " (" << kernel.describe() << ")\n";
    }
    return true;
  }
};

/// Greedy shrink: repeatedly adopt the first one-step-smaller spec that
/// still fails the differential check (any phase counts), until no
/// candidate fails.
KernelSpec shrink(const KernelSpec& start, bool validate, bool nativeLeg) {
  KernelSpec best = start;
  bool improved = true;
  while (improved) {
    improved = false;
    for (const KernelSpec& candidate :
         grover::check::shrinkCandidates(best)) {
      const DiffOutcome outcome = runDifferential(
          grover::check::render(candidate), validate, nativeLeg);
      if (!outcome.ok) {
        best = candidate;
        improved = true;
        break;
      }
    }
  }
  return best;
}

/// Write the shrunk kernel and a metadata sidecar; returns the .cl path.
std::string writeReproducer(const std::string& dir,
                            const GeneratedKernel& kernel,
                            const DiffOutcome& outcome) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string stem =
      dir + "/groverfuzz_seed_" + std::to_string(kernel.spec.seed);
  {
    std::ofstream cl(stem + ".cl");
    cl << kernel.source;
  }
  {
    std::ofstream meta(stem + ".txt");
    meta << "kernel : " << kernel.describe() << "\n"
         << "phase  : " << outcome.phase << "\n"
         << "detail : " << outcome.message << "\n"
         << "launch : global " << kernel.global[0] << "x" << kernel.global[1]
         << ", local " << kernel.local[0] << "x" << kernel.local[1]
         << ", io floats " << kernel.ioFloats << "\n";
  }
  return stem + ".cl";
}

/// Strict unsigned parse: the whole string must be digits.
bool parseU64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  return *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 200;
  std::uint64_t singleSeed = 0;
  bool haveSingleSeed = false;
  bool validate = false;
  bool nativeLeg = false;
  bool prove = false;
  bool verbose = false;
  std::string outDir = ".";
  std::string mineDir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seeds=", 0) == 0) {
      if (!parseU64(arg.substr(8), seeds)) {
        std::cerr << "bad --seeds value: " << arg.substr(8) << "\n";
        return 2;
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!parseU64(arg.substr(7), singleSeed)) {
        std::cerr << "bad --seed value: " << arg.substr(7) << "\n";
        return 2;
      }
      haveSingleSeed = true;
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      outDir = arg.substr(10);
    } else if (arg == "--validate") {
      validate = true;
    } else if (arg == "--native") {
      nativeLeg = true;
    } else if (arg == "--prove") {
      prove = true;
    } else if (arg.rfind("--mine=", 0) == 0) {
      mineDir = arg.substr(7);
      if (mineDir.empty()) {
        std::cerr << "bad --mine value (expected a directory)\n";
        return 2;
      }
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    }
  }

  std::vector<std::uint64_t> seedList;
  if (haveSingleSeed) {
    seedList.push_back(singleSeed);
  } else {
    for (std::uint64_t s = 1; s <= seeds; ++s) seedList.push_back(s);
  }

  if (nativeLeg) {
    const grover::native::NativeEngine& engine =
        grover::native::NativeEngine::shared();
    if (!engine.available()) {
      // Warn once up front rather than per seed; the differential legs
      // that don't need a toolchain still run.
      std::cerr << "groverfuzz: native backend unavailable ("
                << engine.unavailableReason()
                << "); the --native leg will be skipped\n";
    }
  }

  std::map<std::string, unsigned> byFamily;
  unsigned transformed = 0, rejected = 0, failures = 0, nativeChecked = 0;
  ProveStats proveStats;
  std::unique_ptr<Miner> miner;
  if (!mineDir.empty()) miner = std::make_unique<Miner>(mineDir);
  for (const std::uint64_t seed : seedList) {
    const GeneratedKernel kernel = grover::check::generateKernel(seed);
    if (prove) proveSeed(kernel, proveStats, verbose);
    if (miner) miner->offer(kernel, verbose);
    const DiffOutcome outcome = runDifferential(kernel, validate, nativeLeg);
    ++byFamily[grover::check::toString(kernel.spec.family)];
    if (outcome.ok) {
      outcome.transformed ? ++transformed : ++rejected;
      if (outcome.nativeChecked) ++nativeChecked;
      if (verbose) {
        std::cout << "seed " << seed << ": ok, " << kernel.describe()
                  << (outcome.transformed ? " [transformed]" : " [rejected]")
                  << (outcome.nativeChecked ? " [native]" : "")
                  << "\n";
      }
      continue;
    }
    ++failures;
    std::cout << "seed " << seed << ": FAIL [" << outcome.phase << "] "
              << outcome.message << "\n";
    const KernelSpec small = shrink(kernel.spec, validate, nativeLeg);
    const GeneratedKernel smallKernel = grover::check::render(small);
    const DiffOutcome smallOutcome =
        runDifferential(smallKernel, validate, nativeLeg);
    const std::string path =
        writeReproducer(outDir, smallKernel, smallOutcome);
    std::cout << "  shrunk to " << smallKernel.describe() << "\n"
              << "  reproducer written to " << path << "\n";
  }

  std::cout << "\n" << seedList.size() << " seed(s): " << transformed
            << " transformed, " << rejected << " rejected, " << failures
            << " failure(s)"
            << (validate ? " [validator on]" : "") << "\n";
  if (nativeLeg) {
    std::cout << "native leg: " << nativeChecked << "/" << seedList.size()
              << " seed(s) cross-checked bit-exact\n";
  }
  if (prove) {
    std::cout << "prove leg: " << proveStats.proved << " proved, "
              << proveStats.refuted << " refuted ("
              << proveStats.confirmedWitnesses << " witness(es) confirmed), "
              << proveStats.unknown << " unknown, " << proveStats.failures
              << " failure(s)\n";
  }
  if (miner) {
    std::cout << "mine: kept " << miner->kept << " kernel(s), "
              << miner->seen.size() << " feature cell(s) seen ("
              << miner->seenPath << ")\n";
  }
  for (const auto& [family, count] : byFamily) {
    std::cout << "  " << family << ": " << count << "\n";
  }
  return failures == 0 && proveStats.failures == 0 ? 0 : 1;
}
