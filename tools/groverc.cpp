// groverc — command-line front-end for the Grover pass.
//
// Usage:
//   groverc <kernel.cl> [--kernel=<name>] [--only=<buffer>]...
//           [--keep-barriers] [--no-cleanup] [--before] [--report-only]
//
// Reads an OpenCL C kernel, runs the full pipeline (front-end → SSA →
// Grover), prints the Table III-style index report, and dumps the
// transformed IR (and optionally the original IR with --before).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "grover/grover_pass.h"
#include "grover/usage_analysis.h"
#include "grovercl/compiler.h"
#include "ir/printer.h"

namespace {

void usage() {
  std::cerr <<
      "usage: groverc <kernel.cl> [options]\n"
      "  --kernel=<name>   transform only this kernel (default: all)\n"
      "  --only=<buffer>   only disable this __local buffer (repeatable)\n"
      "  --keep-barriers   do not remove redundant barriers\n"
      "  --no-cleanup      skip the DCE sweep after the transformation\n"
      "  --before          also print the IR before the transformation\n"
      "  --report-only     print the index report, no IR\n"
      "  --analyze         only classify local-memory usage, no transform\n";
}

void printReport(const grover::grv::GroverResult& result) {
  for (const auto& b : result.buffers) {
    std::cout << "buffer '" << b.bufferName << "': "
              << (b.transformed ? "local memory disabled" : "refused");
    if (!b.transformed) std::cout << " (" << b.reason << ")";
    std::cout << "\n";
    if (!b.transformed) continue;
    std::cout << "  GL  index: " << b.glIndex << "\n"
              << "  LS  index: " << b.lsIndex << "   ["
              << toString(b.lsPattern) << "]\n"
              << "  LL  index: " << b.llIndex << "   ["
              << toString(b.llPattern) << "]\n"
              << "  solution : " << b.solution << "\n"
              << "  nGL index: " << b.nglIndex << "\n"
              << "  staging pairs: " << b.numStagingPairs
              << ", local loads rewritten: " << b.numLocalLoads << "\n";
  }
  if (result.barriersRemoved) {
    std::cout << "redundant local barriers removed\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  std::string path;
  std::string kernelName;
  grover::grv::GroverOptions options;
  bool showBefore = false;
  bool reportOnly = false;
  bool analyzeOnly = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--kernel=", 0) == 0) {
      kernelName = arg.substr(9);
    } else if (arg.rfind("--only=", 0) == 0) {
      options.onlyBuffers.insert(arg.substr(7));
    } else if (arg == "--keep-barriers") {
      options.removeBarriers = false;
    } else if (arg == "--no-cleanup") {
      options.cleanup = false;
    } else if (arg == "--before") {
      showBefore = true;
    } else if (arg == "--report-only") {
      reportOnly = true;
    } else if (arg == "--analyze") {
      analyzeOnly = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  std::ifstream file(path);
  if (!file) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  std::stringstream source;
  source << file.rdbuf();

  try {
    grover::Program program = grover::compile(source.str());
    bool anyKernel = false;
    for (const auto& fn : program.module->functions()) {
      if (!fn->isKernel()) continue;
      if (!kernelName.empty() && fn->name() != kernelName) continue;
      anyKernel = true;
      std::cout << "=== kernel '" << fn->name() << "' ===\n";
      if (analyzeOnly) {
        std::cout << grover::grv::analyzeLocalMemoryUsage(*fn).str();
        continue;
      }
      if (showBefore) {
        std::cout << "--- before ---\n" << grover::ir::printFunction(*fn);
      }
      const auto result = grover::grv::runGrover(*fn, options);
      printReport(result);
      if (!reportOnly) {
        std::cout << "--- after ---\n" << grover::ir::printFunction(*fn);
      }
    }
    if (!anyKernel) {
      std::cerr << "no matching kernel found\n";
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
