// groverc — command-line front-end for the Grover pass.
//
// Usage:
//   groverc <kernel.cl> [--kernel=<name>] [--only=<buffer>]...
//           [--keep-barriers] [--no-cleanup] [--before] [--report-only]
//   groverc --app=<id> [--platform=<name>] [--scale=test|bench]
//           [--threads=N] [--native]
//   groverc --serve-batch=<file> [--threads=N] [--repeat=K]
//           [--cache-mb=M] [--cache-dir=DIR] [--auto] [--policy-dir=DIR]
//           [--measure-rate=<f>] [--connect=<host:port|socket>]
//   groverc --connect=<spec> --stats[-json]
//
// The first form reads an OpenCL C kernel, runs the full pipeline
// (front-end → SSA → Grover), prints the Table III-style index report, and
// dumps the transformed IR (and optionally the original IR with --before).
// The second form runs the with/without-local-memory performance
// comparison for one of the built-in Table I applications on a platform
// model, using --threads host threads for the trace-driven estimation.
// The third form reads a request file (one request per line), serves all
// requests concurrently through the compilation service, and reports
// throughput plus cache effectiveness (see tools/README.md). With
// --connect the same batch is shipped to a running groverd daemon
// instead of an in-process service.
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app.h"
#include "grover/grover_pass.h"
#include "grover/usage_analysis.h"
#include "grovercl/compiler.h"
#include "grovercl/harness.h"
#include "ir/printer.h"
#include "native/engine.h"
#include "net/batch.h"
#include "net/client.h"
#include "net/render.h"
#include "net/wire.h"
#include "perf/measure.h"
#include "perf/platform.h"
#include "policy/policy_store.h"
#include "service/compile_service.h"
#include "sym/prover.h"
#include "sym/witness_check.h"
#include "support/diagnostics.h"
#include "support/io.h"
#include "support/str.h"
#include "support/version.h"

namespace {

void usage() {
  std::cerr <<
      "usage: groverc <kernel.cl> [options]\n"
      "       groverc --app=<id> [--platform=<name>] [options]\n"
      "  --kernel=<name>   transform only this kernel (default: all)\n"
      "  --only=<buffer>   only disable this __local buffer (repeatable)\n"
      "  --keep-barriers   do not remove redundant barriers\n"
      "  --no-cleanup      skip the DCE sweep after the transformation\n"
      "  --validate        run the post-Grover semantic validator (and the\n"
      "                    IR verifier after every stage); fails on any\n"
      "                    violation\n"
      "  --prove           run the symbolic barrier/race prover on every\n"
      "                    kernel before and after the transform; a\n"
      "                    transform that turns a race-free kernel into a\n"
      "                    refuted one is vetoed (exit 1). With\n"
      "                    --serve-batch the veto serves the original\n"
      "                    instead\n"
      "  --prove-apps      prove every built-in Table I application\n"
      "                    (original + transformed, real launch geometry);\n"
      "                    exit 1 on a refuted original or a witness the\n"
      "                    interpreter contradicts — the CI prove-sweep\n"
      "  --prove-report=<f> with --prove-apps: write the full symbolic\n"
      "                    reports to <f> (CI artifact)\n"
      "  --before          also print the IR before the transformation\n"
      "  --report-only     print the index report, no IR\n"
      "  --analyze         only classify local-memory usage, no transform\n"
      "  --app=<id>        estimate a built-in app (e.g. NVD-MT); see\n"
      "                    --list-apps\n"
      "  --platform=<name> platform model: SNB, Nehalem, MIC, Fermi,\n"
      "                    Kepler, Tahiti, or 'all' (default: all)\n"
      "  --scale=<s>       dataset scale: test or bench (default: bench)\n"
      "  --threads=N       host threads for execution and trace digestion\n"
      "                    (default: all hardware threads; estimates are\n"
      "                    identical for every N)\n"
      "  --native          with --app: execute both kernel versions for\n"
      "                    real (JIT-compiled native code when a system C\n"
      "                    compiler is available, the decoded interpreter\n"
      "                    otherwise) and report measured times instead of\n"
      "                    the platform-model estimate\n"
      "  --list-apps       print the built-in application ids\n"
      "  --serve-batch=<f> serve a request file through the compilation\n"
      "                    service (one request per line; see\n"
      "                    tools/README.md)\n"
      "  --repeat=K        replay the batch K times (default 1)\n"
      "  --cache-mb=M      service cache byte budget in MiB (default 256)\n"
      "  --cache-dir=DIR   enable the on-disk artifact cache tier\n"
      "  --auto            route serve-batch requests through the policy\n"
      "                    engine: warm per-kernel/per-platform decisions\n"
      "                    compile only the winning variant\n"
      "  --policy-dir=DIR  persist policy decisions on disk (with --auto)\n"
      "  --policy-horizon-ms=<ms>  with --auto: confidence half-life of\n"
      "                    stored decisions; stale contradicted entries\n"
      "                    re-measure instead of being trusted (default\n"
      "                    0 = no decay)\n"
      "  --measure-rate=<f> with --auto: execute this fraction (0..1] of\n"
      "                    served requests for real and fold the measured\n"
      "                    np back into the decision store\n"
      "  --connect=<spec>  with --serve-batch: ship the requests to a\n"
      "                    running groverd daemon at <host:port> or a\n"
      "                    unix socket path instead of serving them\n"
      "                    in-process (--auto and --repeat apply; cache/\n"
      "                    policy/measure flags are daemon-side)\n"
      "  --stats           with --connect: fetch the daemon's binary\n"
      "                    stats/health frame and print it as text\n"
      "  --stats-json      like --stats, as one JSON object\n"
      "  --version         print the build version and exit\n";
}

using grover::readTextFile;

void printReport(const grover::grv::GroverResult& result) {
  for (const auto& b : result.buffers) {
    std::cout << "buffer '" << b.bufferName << "': "
              << (b.transformed ? "local memory disabled" : "refused");
    if (!b.transformed) std::cout << " (" << b.reason << ")";
    std::cout << "\n";
    if (!b.transformed) continue;
    std::cout << "  GL  index: " << b.glIndex << "\n"
              << "  LS  index: " << b.lsIndex << "   ["
              << toString(b.lsPattern) << "]\n"
              << "  LL  index: " << b.llIndex << "   ["
              << toString(b.llPattern) << "]\n"
              << "  solution : " << b.solution << "\n"
              << "  nGL index: " << b.nglIndex << "\n"
              << "  staging pairs: " << b.numStagingPairs
              << ", local loads rewritten: " << b.numLocalLoads << "\n";
  }
  if (result.barriersRemoved) {
    std::cout << "redundant local barriers removed\n";
  }
}

/// Strict positive-integer flag parse: the whole value must be digits and
/// the result ≥ 1. Zero, negatives, and garbage all get the same one-line
/// diagnostic and exit 1 (matching the groverfuzz --seeds handling) — a
/// zero thread pool, zero-byte cache, or zero-iteration batch is never
/// what the caller meant.
std::uint64_t parseCountFlag(const char* flag, const std::string& value) {
  // std::stoull accepts a leading '-' by wrapping; reject it explicitly.
  if (!value.empty() && value[0] != '-') {
    try {
      std::size_t pos = 0;
      const unsigned long long n = std::stoull(value, &pos);
      if (pos == value.size() && n >= 1) return n;
    } catch (const std::exception&) {
    }
  }
  std::cerr << "groverc: bad " << flag << " value '" << value
            << "' (expected a positive integer)\n";
  std::exit(1);
}

std::vector<grover::perf::PlatformSpec> platformsByName(
    const std::string& name) {
  std::vector<grover::perf::PlatformSpec> all =
      grover::perf::allPlatforms();
  if (name.empty() || name == "all") return all;
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (grover::perf::PlatformSpec& p : all) {
    std::string pl = p.name;
    std::transform(pl.begin(), pl.end(), pl.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (pl == lower) return {std::move(p)};
  }
  throw grover::GroverError("unknown platform '" + name + "'");
}

int runAppComparison(const std::string& appId, const std::string& platform,
                     const std::string& scaleName, unsigned threads,
                     bool validate, bool nativeExec) {
  const grover::apps::Application& app =
      grover::apps::applicationById(appId);
  const grover::apps::Scale scale = scaleName == "test"
                                        ? grover::apps::Scale::Test
                                        : grover::apps::Scale::Bench;
  std::cout << "app " << app.id() << " (" << app.datasetDescription()
            << ")\n";
  if (nativeExec) {
    grover::perf::MeasureOptions opts;
    opts.scale = scale;
    opts.threads = threads;
    opts.validate = validate;
    const grover::perf::Measurement m = grover::perf::measure(app, opts);
    if (!m.ok) {
      std::cerr << "groverc: measurement failed: " << m.error << "\n";
      return 1;
    }
    if (!m.usedNative) {
      // Graceful degradation, never an abort: the decoded interpreter
      // measures the same ratio, just slower.
      std::cerr << "groverc: native execution unavailable ("
                << m.nativeFallbackReason
                << "); measuring with the decoded interpreter\n";
    }
    std::cout << "measured (" << (m.usedNative ? "native" : "interpreter")
              << "): with-LM " << grover::fixed(m.msWithLM, 3)
              << " ms, without-LM " << grover::fixed(m.msWithoutLM, 3)
              << " ms, np " << grover::fixed(m.measuredNp, 3) << " ("
              << grover::perf::toString(m.outcome) << ")\n";
    return 0;
  }
  for (const grover::perf::PlatformSpec& spec : platformsByName(platform)) {
    const grover::PerfComparison cmp =
        grover::comparePerformance(app, spec, scale, threads, validate);
    std::cout << spec.name << ": with-LM " << cmp.cyclesWithLM
              << " cycles, without-LM " << cmp.cyclesWithoutLM
              << " cycles, np " << cmp.normalized << " ("
              << grover::perf::toString(cmp.outcome) << ")\n";
  }
  return 0;
}

using grover::net::BatchEntry;

/// The CI prove-sweep (--prove-apps): prove every built-in application's
/// kernel — original and transformed — under its real launch geometry.
/// Failure conditions are prover *bugs*, not kernel properties: a
/// Refuted original (every Table I kernel is race-free by construction)
/// or a Refuted witness the decoded interpreter cannot reproduce. A
/// Refuted transformed kernel is the veto working as designed and only
/// reported.
int runProveApps(const std::string& reportPath,
                 const std::string& scaleName) {
  namespace sym = grover::sym;
  const grover::apps::Scale scale = scaleName == "test"
                                        ? grover::apps::Scale::Test
                                        : grover::apps::Scale::Bench;
  std::ostringstream report;
  std::size_t proved = 0, unknown = 0, refutedOriginals = 0,
              refutedTransforms = 0, contradicted = 0;
  for (const auto& app : grover::apps::allApplications()) {
    const grover::apps::Instance instance = app->makeInstance(scale);
    const sym::ProveOptions popts =
        sym::proveOptionsForLaunch(instance.range, instance.args);

    grover::Program original = grover::compile(app->source());
    grover::ir::Function* origKernel = original.kernel(app->kernelName());
    const sym::SymbolicReport orig =
        sym::proveRaceFreedom(*origKernel, popts);

    grover::Program transformed = grover::compile(app->source());
    grover::ir::Function* transKernel =
        transformed.kernel(app->kernelName());
    grover::grv::GroverOptions gopts;
    gopts.onlyBuffers = app->buffersToDisable();
    (void)grover::grv::runGrover(*transKernel, gopts);
    const sym::SymbolicReport trans =
        sym::proveRaceFreedom(*transKernel, popts);

    std::cout << app->id() << ": original " << orig.summary()
              << "; transformed " << trans.summary() << "\n";
    report << "=== " << app->id() << " ===\n--- original ---\n"
           << orig.str() << "--- transformed ---\n" << trans.str();

    switch (orig.status) {
      case sym::ProofStatus::Proved: ++proved; break;
      case sym::ProofStatus::Refuted: ++refutedOriginals; break;
      default: ++unknown; break;
    }
    if (orig.status == sym::ProofStatus::Refuted) {
      std::cerr << "groverc: PROVER BUG: original kernel of " << app->id()
                << " was refuted — Table I kernels are race-free\n";
    }
    if (trans.status == sym::ProofStatus::Refuted) ++refutedTransforms;

    // Every witness must reproduce on the decoded interpreter; one that
    // does not is an unsound refutation.
    const auto crossCheck = [&](const sym::SymbolicReport& r,
                                grover::ir::Function& fn,
                                const char* which) {
      if (r.status != sym::ProofStatus::Refuted || !r.witness) return;
      const sym::WitnessCheck check = sym::confirmWitness(
          fn, *r.witness, instance.range, instance.args);
      report << which << " witness check: "
             << (check.confirmed ? "confirmed" : "CONTRADICTED") << " ("
             << check.detail << ")\n";
      if (!check.confirmed) {
        ++contradicted;
        std::cerr << "groverc: PROVER BUG: " << which << " witness of "
                  << app->id() << " contradicted by the interpreter: "
                  << check.detail << "\n";
      }
    };
    crossCheck(orig, *origKernel, "original");
    crossCheck(trans, *transKernel, "transformed");
  }

  std::cout << "\nprove-sweep: " << proved << " proved, " << unknown
            << " unknown, " << refutedOriginals << " refuted originals, "
            << refutedTransforms << " refuted transforms (vetoed), "
            << contradicted << " contradicted witnesses\n";
  if (!reportPath.empty()) {
    std::ofstream out(reportPath, std::ios::trunc);
    out << report.str();
    if (!out.good()) {
      std::cerr << "groverc: cannot write report to '" << reportPath
                << "'\n";
      return 1;
    }
    std::cout << "report written to " << reportPath << "\n";
  }
  return (refutedOriginals > 0 || contradicted > 0) ? 1 : 0;
}

/// Ship a serve-batch file to a running groverd daemon (--connect).
/// Request lines go over the wire verbatim — the daemon parses them with
/// the same grammar, and `.cl` paths resolve on the *daemon's*
/// filesystem. Responses are pipelined (bounded window) and rendered
/// exactly like a local serve-batch run, followed by the daemon's
/// cumulative stats block.
int runConnectBatch(const std::string& file, const std::string& spec,
                    int repeat, bool autoPolicy) {
  namespace net = grover::net;
  std::string contents;
  if (std::string err; !readTextFile(file, contents, err)) {
    std::cerr << "groverc: cannot read '" << file << "': " << err << "\n";
    return 1;
  }
  // Comment/blank stripping only: validation is the daemon's job.
  std::vector<std::string> lines;
  {
    std::istringstream in(contents);
    std::string line;
    while (std::getline(in, line)) {
      if (const std::size_t hash = line.find('#');
          hash != std::string::npos) {
        line = line.substr(0, hash);
      }
      std::istringstream tokens(line);
      std::vector<std::string> words;
      for (std::string w; tokens >> w;) words.push_back(w);
      if (!words.empty()) lines.push_back(grover::join(words, " "));
    }
  }
  if (lines.empty()) {
    std::cerr << "groverc: '" << file << "' contains no requests\n";
    return 1;
  }

  net::Client client;
  try {
    client.connect(spec);
  } catch (const std::exception& e) {
    std::cerr << "groverc: " << e.what() << "\n";
    return 1;
  }

  struct Slot {
    net::Status status = net::Status::Ok;
    std::string text;
    bool received = false;
  };
  const std::size_t total = lines.size() * static_cast<std::size_t>(repeat);
  std::vector<Slot> responses(total);
  const net::FrameType type = autoPolicy ? net::FrameType::AutoRequest
                                         : net::FrameType::Request;
  // Pipeline with a bounded window so neither side's socket buffer has
  // to absorb an unbounded batch.
  constexpr std::size_t kWindow = 64;
  const auto start = std::chrono::steady_clock::now();
  std::size_t sent = 0, received = 0;
  try {
    while (received < total) {
      while (sent < total && sent - received < kWindow) {
        client.sendFrame(type, sent, lines[sent % lines.size()]);
        ++sent;
      }
      const net::Frame f = client.readFrame();
      net::Status status = net::Status::Ok;
      std::string_view text;
      if (!net::splitStatusPayload(f.payload, status, text)) {
        std::cerr << "groverc: bad response payload from daemon\n";
        return 1;
      }
      if (f.type == net::FrameType::Error) {
        std::cerr << "groverc: daemon reported a protocol error: " << text
                  << "\n";
        return 1;
      }
      if (f.type != net::FrameType::Response || f.id >= total ||
          responses[f.id].received) {
        std::cerr << "groverc: unexpected response frame (type "
                  << static_cast<int>(f.type) << ", id " << f.id << ")\n";
        return 1;
      }
      responses[f.id].status = status;
      responses[f.id].text = text;
      responses[f.id].received = true;
      ++received;
    }
  } catch (const std::exception& e) {
    std::cerr << "groverc: " << e.what() << "\n";
    return 1;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // First response per distinct line, like the local mode.
  bool anyError = false;
  std::size_t failed = 0;
  for (const Slot& s : responses) {
    if (s.status != net::Status::Ok) anyError = true;
    if (s.text.rfind("failed:", 0) == 0) ++failed;
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::cout << "[" << (i + 1) << "] " << lines[i] << ": "
              << responses[i].text << "\n";
  }

  std::cout << "\nserved " << received << " requests in "
            << grover::fixed(seconds, 3) << " s ("
            << grover::fixed(seconds > 0 ? received / seconds : 0, 1)
            << " req/s), " << failed << " failed\n";
  try {
    client.sendFrame(net::FrameType::Stats, total, "");
    const net::Frame f = client.readFrame();
    net::Status status = net::Status::Ok;
    std::string_view text;
    if (f.type == net::FrameType::StatsResponse &&
        net::splitStatusPayload(f.payload, status, text)) {
      std::cout << text;
    }
  } catch (const std::exception& e) {
    std::cerr << "groverc: stats request failed: " << e.what() << "\n";
  }
  return anyError ? 1 : 0;
}

/// Fetch the daemon's binary StatsFrame (--connect --stats[-json]):
/// send one StatsBinary frame, decode the fixed-layout response, and
/// render it — the "server:" line is byte-identical to the rendered-text
/// stats payload, so the two views can be diffed.
int runConnectStats(const std::string& spec, bool json) {
  namespace net = grover::net;
  net::Client client;
  try {
    client.connect(spec);
    client.sendFrame(net::FrameType::StatsBinary, 1, "");
    const net::Frame f = client.readFrame();
    net::Status status = net::Status::Ok;
    std::string_view blob;
    if (!net::splitStatusPayload(f.payload, status, blob)) {
      std::cerr << "groverc: bad stats response payload from daemon\n";
      return 1;
    }
    if (f.type != net::FrameType::StatsBinaryResponse ||
        status != net::Status::Ok) {
      std::cerr << "groverc: daemon did not return a stats frame ("
                << net::toString(status) << ": " << blob << ")\n";
      return 1;
    }
    net::StatsFrame stats;
    std::string err;
    if (!net::decodeStatsFrame(blob, stats, &err)) {
      std::cerr << "groverc: cannot decode stats frame: " << err << "\n";
      return 1;
    }
    std::cout << (json ? net::renderStatsFrameJson(stats)
                       : net::renderStatsFrame(stats));
  } catch (const std::exception& e) {
    std::cerr << "groverc: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

int runServeBatch(const std::string& file, unsigned threads, int repeat,
                  std::size_t cacheMb, const std::string& cacheDir,
                  bool autoPolicy, const std::string& policyDir,
                  double measureRate, bool prove,
                  std::uint64_t policyHorizonMs) {
  namespace svc = grover::service;
  std::string contents;
  if (std::string err; !readTextFile(file, contents, err)) {
    std::cerr << "groverc: cannot read '" << file << "': " << err << "\n";
    return 1;
  }
  std::vector<BatchEntry> entries = grover::net::parseBatchFile(contents, file);
  if (entries.empty()) {
    std::cerr << "groverc: '" << file << "' contains no requests\n";
    return 1;
  }
  if (prove) {
    // Same rule as groverd --prove: proving is a serving-side policy,
    // applied to every request line.
    for (BatchEntry& e : entries) e.request.options.prove = true;
  }

  svc::ServiceConfig config;
  config.workers = threads;
  config.cache.maxBytes = cacheMb << 20;
  config.cache.diskDir = cacheDir;
  config.policyStore.diskDir = policyDir;
  config.measureRate = measureRate;
  config.policyDecayHorizonMs = policyHorizonMs;
  svc::CompileService service(config);
  if (measureRate > 0) {
    const grover::native::NativeEngine& engine =
        grover::native::NativeEngine::shared();
    if (!engine.available()) {
      std::cerr << "groverc: native execution unavailable ("
                << engine.unavailableReason()
                << "); sampled measurements use the decoded interpreter\n";
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::size_t served = 0, failed = 0;
  std::vector<grover::service::ArtifactPtr> firstResult(entries.size());
  std::vector<svc::AutoResult> firstAuto(entries.size());
  if (autoPolicy) {
    // Policy mode: each request consults the decision store; warm
    // decisions compile only the winning variant.
    for (int rep = 0; rep < repeat; ++rep) {
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].valid) continue;
        try {
          svc::AutoResult r = service.compileAuto(entries[i].request);
          ++served;
          if (!r.artifact->ok) ++failed;
          if (firstAuto[i].artifact == nullptr) {
            firstResult[i] = r.artifact;
            firstAuto[i] = std::move(r);
          }
        } catch (const std::exception& e) {
          entries[i].valid = false;
          entries[i].error = e.what();
        }
      }
    }
  } else {
    // Submit every repetition of every valid line up front; the service
    // coalesces identical in-flight requests and serves repeats from
    // cache.
    std::vector<std::pair<std::size_t, svc::CompileService::Future>> futures;
    for (int rep = 0; rep < repeat; ++rep) {
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].valid) continue;
        try {
          futures.emplace_back(i, service.submit(entries[i].request));
        } catch (const std::exception& e) {
          entries[i].valid = false;
          entries[i].error = e.what();
        }
      }
    }
    for (auto& [index, future] : futures) {
      grover::service::ArtifactPtr artifact = future.get();
      ++served;
      if (!artifact->ok) ++failed;
      if (firstResult[index] == nullptr) firstResult[index] = artifact;
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  service.drain();

  for (std::size_t i = 0; i < entries.size(); ++i) {
    const BatchEntry& e = entries[i];
    std::cout << "[" << (i + 1) << "] " << e.text << ": ";
    if (!e.error.empty()) {
      std::cout << "error: " << e.error << "\n";
      continue;
    }
    const grover::service::ArtifactPtr& a = firstResult[i];
    if (a == nullptr) {
      std::cout << "not served\n";
    } else if (autoPolicy && a->ok && firstAuto[i].eligible) {
      std::cout << grover::net::renderAutoResultLine(firstAuto[i]) << "\n";
    } else {
      std::cout << grover::net::renderResultLine(*a) << "\n";
    }
  }

  const svc::ServiceStats s = service.stats();
  std::cout << "\nserved " << served << " requests in "
            << grover::fixed(seconds, 3) << " s ("
            << grover::fixed(seconds > 0 ? served / seconds : 0, 1)
            << " req/s), " << failed << " failed\n";
  grover::net::StatsRenderOptions statsOpts;
  statsOpts.policy = autoPolicy;
  statsOpts.measure = measureRate > 0;
  statsOpts.prove = prove;
  std::cout << grover::net::renderStats(s, statsOpts);

  for (const BatchEntry& e : entries) {
    if (!e.error.empty()) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  std::string path;
  std::string kernelName;
  std::string appId;
  std::string platformName;
  std::string scaleName = "bench";
  std::string batchFile;
  std::string cacheDir;
  std::string policyDir;
  std::string connectSpec;
  std::size_t cacheMb = 256;
  bool cacheMbSet = false;
  int repeat = 1;
  unsigned threads = 0;
  bool autoPolicy = false;
  bool nativeExec = false;
  bool statsMode = false;
  bool statsJson = false;
  bool proveApps = false;
  std::string proveReport;
  std::uint64_t policyHorizonMs = 0;
  double measureRate = 0;
  grover::grv::GroverOptions options;
  bool showBefore = false;
  bool reportOnly = false;
  bool analyzeOnly = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--kernel=", 0) == 0) {
      kernelName = arg.substr(9);
    } else if (arg.rfind("--only=", 0) == 0) {
      options.onlyBuffers.insert(arg.substr(7));
    } else if (arg == "--keep-barriers") {
      options.removeBarriers = false;
    } else if (arg == "--no-cleanup") {
      options.cleanup = false;
    } else if (arg == "--validate") {
      options.validate = true;
    } else if (arg == "--prove") {
      options.prove = true;
    } else if (arg == "--prove-apps") {
      proveApps = true;
    } else if (arg.rfind("--prove-report=", 0) == 0) {
      proveReport = arg.substr(15);
    } else if (arg.rfind("--policy-horizon-ms=", 0) == 0) {
      policyHorizonMs = parseCountFlag("--policy-horizon-ms", arg.substr(20));
    } else if (arg == "--before") {
      showBefore = true;
    } else if (arg == "--report-only") {
      reportOnly = true;
    } else if (arg == "--analyze") {
      analyzeOnly = true;
    } else if (arg.rfind("--app=", 0) == 0) {
      appId = arg.substr(6);
    } else if (arg.rfind("--platform=", 0) == 0) {
      platformName = arg.substr(11);
    } else if (arg.rfind("--scale=", 0) == 0) {
      scaleName = arg.substr(8);
    } else if (arg.rfind("--serve-batch=", 0) == 0) {
      batchFile = arg.substr(14);
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = static_cast<int>(parseCountFlag("--repeat", arg.substr(9)));
    } else if (arg.rfind("--cache-mb=", 0) == 0) {
      cacheMb = static_cast<std::size_t>(
          parseCountFlag("--cache-mb", arg.substr(11)));
      cacheMbSet = true;
    } else if (arg.rfind("--connect=", 0) == 0) {
      connectSpec = arg.substr(10);
    } else if (arg == "--version") {
      std::cout << "groverc " << GROVER_VERSION_STRING << " (protocol v"
                << grover::net::kProtocolVersion << ")\n";
      return 0;
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      cacheDir = arg.substr(12);
    } else if (arg.rfind("--policy-dir=", 0) == 0) {
      policyDir = arg.substr(13);
    } else if (arg == "--auto") {
      autoPolicy = true;
    } else if (arg == "--stats") {
      statsMode = true;
    } else if (arg == "--stats-json") {
      statsMode = true;
      statsJson = true;
    } else if (arg == "--native") {
      nativeExec = true;
    } else if (arg.rfind("--measure-rate=", 0) == 0) {
      const std::string value = arg.substr(15);
      try {
        std::size_t pos = 0;
        measureRate = std::stod(value, &pos);
        if (pos != value.size() || measureRate <= 0 || measureRate > 1) {
          throw std::invalid_argument(value);
        }
      } catch (const std::exception&) {
        std::cerr << "groverc: bad --measure-rate value '" << value
                  << "' (expected a number in (0, 1])\n";
        return 1;
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<unsigned>(
          parseCountFlag("--threads", arg.substr(10)));
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(parseCountFlag("--threads", argv[++i]));
    } else if (arg == "--list-apps") {
      for (const auto& app : grover::apps::allApplications()) {
        std::cout << app->id() << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    } else {
      path = arg;
    }
  }
  if (scaleName != "test" && scaleName != "bench") {
    std::cerr << "bad --scale value: " << scaleName << "\n";
    return 2;
  }
  if (autoPolicy && batchFile.empty()) {
    std::cerr << "groverc: --auto requires --serve-batch\n";
    return 1;
  }
  if (!proveReport.empty() && !proveApps) {
    std::cerr << "groverc: --prove-report requires --prove-apps\n";
    return 1;
  }
  if (policyHorizonMs > 0 && !autoPolicy) {
    std::cerr << "groverc: --policy-horizon-ms requires --auto\n";
    return 1;
  }
  if (measureRate > 0 && !autoPolicy) {
    std::cerr << "groverc: --measure-rate requires --auto\n";
    return 1;
  }
  if (nativeExec && appId.empty()) {
    std::cerr << "groverc: --native requires --app\n";
    return 1;
  }
  if (statsMode) {
    if (connectSpec.empty()) {
      std::cerr << "groverc: --stats requires --connect\n";
      return 1;
    }
    if (!batchFile.empty()) {
      std::cerr << "groverc: --stats and --serve-batch are separate modes; "
                   "run them as two invocations\n";
      return 1;
    }
    return runConnectStats(connectSpec, statsJson);
  }
  if (!connectSpec.empty()) {
    if (batchFile.empty()) {
      std::cerr << "groverc: --connect requires --serve-batch (or --stats)\n";
      return 1;
    }
    // Cache, policy, measurement and threading are properties of the
    // daemon's service, set on the groverd command line.
    if (!cacheDir.empty() || !policyDir.empty() || measureRate > 0 ||
        threads != 0 || cacheMbSet) {
      std::cerr << "groverc: --cache-dir/--policy-dir/--measure-rate/"
                   "--threads/--cache-mb are daemon-side flags; set them "
                   "when starting groverd\n";
      return 1;
    }
  }

  try {
    if (proveApps) {
      return runProveApps(proveReport, scaleName);
    }
    if (!batchFile.empty()) {
      if (!connectSpec.empty()) {
        return runConnectBatch(batchFile, connectSpec, repeat, autoPolicy);
      }
      return runServeBatch(batchFile, threads, repeat, cacheMb, cacheDir,
                           autoPolicy, policyDir, measureRate,
                           options.prove, policyHorizonMs);
    }
    if (!appId.empty()) {
      return runAppComparison(appId, platformName, scaleName, threads,
                              options.validate, nativeExec);
    }
    if (path.empty()) {
      usage();
      return 2;
    }

    std::string source;
    if (std::string error; !readTextFile(path, source, error)) {
      std::cerr << "groverc: cannot read '" << path << "': " << error
                << "\n";
      return 1;
    }

    grover::Program program = grover::compile(source);
    bool anyKernel = false;
    bool anyVeto = false;
    for (const auto& fn : program.module->functions()) {
      if (!fn->isKernel()) continue;
      if (!kernelName.empty() && fn->name() != kernelName) continue;
      anyKernel = true;
      std::cout << "=== kernel '" << fn->name() << "' ===\n";
      if (analyzeOnly) {
        std::cout << grover::grv::analyzeLocalMemoryUsage(*fn).str();
        continue;
      }
      if (showBefore) {
        std::cout << "--- before ---\n" << grover::ir::printFunction(*fn);
      }
      // Prove the original before the in-place transform consumes it.
      // No launch geometry is available for a raw source; the inferred
      // per-kernel geometry (computed once, before the transform) keeps
      // the two proofs comparable for the veto check.
      grover::sym::SymbolicReport proofBefore;
      grover::sym::ProveOptions proveOpts;
      if (options.prove) {
        proveOpts = grover::sym::proveOptionsForKernel(*fn);
        proofBefore = grover::sym::proveRaceFreedom(*fn, proveOpts);
        std::cout << "proof (original): " << proofBefore.summary() << "\n";
      }
      const auto result = grover::grv::runGrover(*fn, options);
      printReport(result);
      if (options.prove) {
        const grover::sym::SymbolicReport proofAfter =
            grover::sym::proveRaceFreedom(*fn, proveOpts);
        std::cout << "proof (transformed): " << proofAfter.summary()
                  << "\n";
        if (proofBefore.status != grover::sym::ProofStatus::Refuted &&
            proofAfter.status == grover::sym::ProofStatus::Refuted) {
          anyVeto = true;
          std::cerr << "groverc: transform vetoed for kernel '"
                    << fn->name()
                    << "': the transformed IR has a provable race the "
                       "original does not\n";
        }
      }
      if (!reportOnly) {
        std::cout << "--- after ---\n" << grover::ir::printFunction(*fn);
      }
    }
    if (!anyKernel) {
      std::cerr << "no matching kernel found\n";
      return 1;
    }
    if (anyVeto) return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
