// groverc — command-line front-end for the Grover pass.
//
// Usage:
//   groverc <kernel.cl> [--kernel=<name>] [--only=<buffer>]...
//           [--keep-barriers] [--no-cleanup] [--before] [--report-only]
//   groverc --app=<id> [--platform=<name>] [--scale=test|bench]
//           [--threads=N]
//
// The first form reads an OpenCL C kernel, runs the full pipeline
// (front-end → SSA → Grover), prints the Table III-style index report, and
// dumps the transformed IR (and optionally the original IR with --before).
// The second form runs the with/without-local-memory performance
// comparison for one of the built-in Table I applications on a platform
// model, using --threads host threads for the trace-driven estimation.
#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app.h"
#include "grover/grover_pass.h"
#include "grover/usage_analysis.h"
#include "grovercl/compiler.h"
#include "grovercl/harness.h"
#include "ir/printer.h"
#include "perf/platform.h"
#include "support/diagnostics.h"

namespace {

void usage() {
  std::cerr <<
      "usage: groverc <kernel.cl> [options]\n"
      "       groverc --app=<id> [--platform=<name>] [options]\n"
      "  --kernel=<name>   transform only this kernel (default: all)\n"
      "  --only=<buffer>   only disable this __local buffer (repeatable)\n"
      "  --keep-barriers   do not remove redundant barriers\n"
      "  --no-cleanup      skip the DCE sweep after the transformation\n"
      "  --before          also print the IR before the transformation\n"
      "  --report-only     print the index report, no IR\n"
      "  --analyze         only classify local-memory usage, no transform\n"
      "  --app=<id>        estimate a built-in app (e.g. NVD-MT); see\n"
      "                    --list-apps\n"
      "  --platform=<name> platform model: SNB, Nehalem, MIC, Fermi,\n"
      "                    Kepler, Tahiti, or 'all' (default: all)\n"
      "  --scale=<s>       dataset scale: test or bench (default: bench)\n"
      "  --threads=N       host threads for execution and trace digestion\n"
      "                    (default: all hardware threads; estimates are\n"
      "                    identical for every N)\n"
      "  --list-apps       print the built-in application ids\n";
}

void printReport(const grover::grv::GroverResult& result) {
  for (const auto& b : result.buffers) {
    std::cout << "buffer '" << b.bufferName << "': "
              << (b.transformed ? "local memory disabled" : "refused");
    if (!b.transformed) std::cout << " (" << b.reason << ")";
    std::cout << "\n";
    if (!b.transformed) continue;
    std::cout << "  GL  index: " << b.glIndex << "\n"
              << "  LS  index: " << b.lsIndex << "   ["
              << toString(b.lsPattern) << "]\n"
              << "  LL  index: " << b.llIndex << "   ["
              << toString(b.llPattern) << "]\n"
              << "  solution : " << b.solution << "\n"
              << "  nGL index: " << b.nglIndex << "\n"
              << "  staging pairs: " << b.numStagingPairs
              << ", local loads rewritten: " << b.numLocalLoads << "\n";
  }
  if (result.barriersRemoved) {
    std::cout << "redundant local barriers removed\n";
  }
}

unsigned parseThreads(const std::string& value) {
  // std::stoul accepts a leading '-' by wrapping; reject it explicitly.
  if (!value.empty() && value[0] != '-') {
    try {
      std::size_t pos = 0;
      const unsigned long n = std::stoul(value, &pos);
      if (pos == value.size()) return static_cast<unsigned>(n);
    } catch (const std::exception&) {
    }
  }
  std::cerr << "bad --threads value: " << value << "\n";
  std::exit(2);
}

std::vector<grover::perf::PlatformSpec> platformsByName(
    const std::string& name) {
  std::vector<grover::perf::PlatformSpec> all =
      grover::perf::allPlatforms();
  if (name.empty() || name == "all") return all;
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (grover::perf::PlatformSpec& p : all) {
    std::string pl = p.name;
    std::transform(pl.begin(), pl.end(), pl.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (pl == lower) return {std::move(p)};
  }
  throw grover::GroverError("unknown platform '" + name + "'");
}

int runAppComparison(const std::string& appId, const std::string& platform,
                     const std::string& scaleName, unsigned threads) {
  const grover::apps::Application& app =
      grover::apps::applicationById(appId);
  const grover::apps::Scale scale = scaleName == "test"
                                        ? grover::apps::Scale::Test
                                        : grover::apps::Scale::Bench;
  std::cout << "app " << app.id() << " (" << app.datasetDescription()
            << ")\n";
  for (const grover::perf::PlatformSpec& spec : platformsByName(platform)) {
    const grover::PerfComparison cmp =
        grover::comparePerformance(app, spec, scale, threads);
    std::cout << spec.name << ": with-LM " << cmp.cyclesWithLM
              << " cycles, without-LM " << cmp.cyclesWithoutLM
              << " cycles, np " << cmp.normalized << " ("
              << grover::perf::toString(cmp.outcome) << ")\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  std::string path;
  std::string kernelName;
  std::string appId;
  std::string platformName;
  std::string scaleName = "bench";
  unsigned threads = 0;
  grover::grv::GroverOptions options;
  bool showBefore = false;
  bool reportOnly = false;
  bool analyzeOnly = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--kernel=", 0) == 0) {
      kernelName = arg.substr(9);
    } else if (arg.rfind("--only=", 0) == 0) {
      options.onlyBuffers.insert(arg.substr(7));
    } else if (arg == "--keep-barriers") {
      options.removeBarriers = false;
    } else if (arg == "--no-cleanup") {
      options.cleanup = false;
    } else if (arg == "--before") {
      showBefore = true;
    } else if (arg == "--report-only") {
      reportOnly = true;
    } else if (arg == "--analyze") {
      analyzeOnly = true;
    } else if (arg.rfind("--app=", 0) == 0) {
      appId = arg.substr(6);
    } else if (arg.rfind("--platform=", 0) == 0) {
      platformName = arg.substr(11);
    } else if (arg.rfind("--scale=", 0) == 0) {
      scaleName = arg.substr(8);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = parseThreads(arg.substr(10));
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = parseThreads(argv[++i]);
    } else if (arg == "--list-apps") {
      for (const auto& app : grover::apps::allApplications()) {
        std::cout << app->id() << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    } else {
      path = arg;
    }
  }
  if (scaleName != "test" && scaleName != "bench") {
    std::cerr << "bad --scale value: " << scaleName << "\n";
    return 2;
  }

  try {
    if (!appId.empty()) {
      return runAppComparison(appId, platformName, scaleName, threads);
    }
    if (path.empty()) {
      usage();
      return 2;
    }

    std::ifstream file(path);
    if (!file) {
      std::cerr << "cannot open " << path << "\n";
      return 1;
    }
    std::stringstream source;
    source << file.rdbuf();

    grover::Program program = grover::compile(source.str());
    bool anyKernel = false;
    for (const auto& fn : program.module->functions()) {
      if (!fn->isKernel()) continue;
      if (!kernelName.empty() && fn->name() != kernelName) continue;
      anyKernel = true;
      std::cout << "=== kernel '" << fn->name() << "' ===\n";
      if (analyzeOnly) {
        std::cout << grover::grv::analyzeLocalMemoryUsage(*fn).str();
        continue;
      }
      if (showBefore) {
        std::cout << "--- before ---\n" << grover::ir::printFunction(*fn);
      }
      const auto result = grover::grv::runGrover(*fn, options);
      printReport(result);
      if (!reportOnly) {
        std::cout << "--- after ---\n" << grover::ir::printFunction(*fn);
      }
    }
    if (!anyKernel) {
      std::cerr << "no matching kernel found\n";
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
