// groverd — the Grover compilation-serving daemon: one warm
// CompileService (artifact cache, single-flight, policy store, sampled
// measurements) behind a socket front-end, so many groverc clients share
// one process's caches and one learning policy store instead of each
// re-warming their own (DESIGN.md §12).
//
// Usage:
//   groverd [--port=P] [--host=A] [--socket=PATH] [--threads=N]
//           [--loop-shards=N] [--max-queue=N] [--client-credits=N]
//           [--cache-mb=M] [--cache-dir=DIR] [--policy-dir=DIR]
//           [--measure-rate=<f>] [--measure-queue-depth=N]
//           [--prove] [--policy-horizon-ms=N]
//           [--idle-timeout-ms=N] [--health-interval=N]
//           [--version] [--help]
//
// The daemon listens on 127.0.0.1:<port> (port 0 = ephemeral; the bound
// port is printed on the "listening on" line) and optionally on a
// Unix-domain socket. SIGINT/SIGTERM drain gracefully: in-flight
// requests complete, new ones are rejected with a shutting-down status,
// and the process exits 0 after logging final stats.
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>

#include "native/engine.h"
#include "net/render.h"
#include "net/server.h"
#include "service/compile_service.h"
#include "support/diagnostics.h"
#include "support/version.h"

namespace {

grover::net::Server* g_server = nullptr;

extern "C" void handleStopSignal(int) {
  if (g_server != nullptr) g_server->requestStop();
}

void usage() {
  std::cerr <<
      "usage: groverd [options]\n"
      "  --port=P            TCP port to listen on (default 0 = pick an\n"
      "                      ephemeral port, printed at startup)\n"
      "  --host=A            IPv4 listen address (default 127.0.0.1;\n"
      "                      'none' disables the TCP listener)\n"
      "  --socket=PATH       also listen on a Unix-domain socket\n"
      "  --threads=N         service worker threads (default: hardware\n"
      "                      concurrency)\n"
      "  --loop-shards=N     independent event-loop shards; each has its\n"
      "                      own SO_REUSEPORT TCP listener and poll set\n"
      "                      (default 1 = the single classic loop)\n"
      "  --max-queue=N       admission bound: requests in flight before\n"
      "                      new ones are rejected with an overload\n"
      "                      response (default 128)\n"
      "  --client-credits=N  per-connection admission bound: one\n"
      "                      connection's in-flight requests before IT is\n"
      "                      rejected while others still admit (default\n"
      "                      64 = groverc's pipeline window; 0 disables)\n"
      "  --cache-mb=M        artifact cache byte budget in MiB (default\n"
      "                      256)\n"
      "  --cache-dir=DIR     enable the on-disk artifact cache tier\n"
      "  --policy-dir=DIR    persist policy decisions on disk\n"
      "  --measure-rate=<f>  execute this fraction (0..1] of policy-routed\n"
      "                      requests for real and fold the measured np\n"
      "                      back into the decision store\n"
      "  --measure-queue-depth=N\n"
      "                      run sampled measurements on a background\n"
      "                      queue of this depth instead of on the\n"
      "                      request path; excess samples are dropped\n"
      "                      (default 64; 0 = measure inline)\n"
      "  --prove             run the symbolic race prover on every\n"
      "                      request; a transform whose original was\n"
      "                      race-free but whose transformed IR has a\n"
      "                      provable race is vetoed (original served)\n"
      "  --policy-horizon-ms=N\n"
      "                      decay warm decision confidence with age\n"
      "                      (half-life N ms) and re-measure stale\n"
      "                      contradicted entries (default 0 = off)\n"
      "  --idle-timeout-ms=N close connections idle for N ms (default\n"
      "                      60000; 0 disables)\n"
      "  --health-interval=N log a one-line binary-stats health summary\n"
      "                      every N seconds (default 0 = off)\n"
      "  --version           print the build version and exit\n"
      "  --help              this text\n";
}

/// Strict positive-integer flag parse (same contract as groverc's):
/// zero, negatives, and garbage get one diagnostic line and exit 1.
std::uint64_t parseCountFlag(const char* flag, const std::string& value,
                             bool allowZero = false) {
  if (!value.empty() && value[0] != '-') {
    try {
      std::size_t pos = 0;
      const unsigned long long n = std::stoull(value, &pos);
      if (pos == value.size() && (n >= 1 || allowZero)) return n;
    } catch (const std::exception&) {
    }
  }
  std::cerr << "groverd: bad " << flag << " value '" << value
            << "' (expected a " << (allowZero ? "non-negative" : "positive")
            << " integer)\n";
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  grover::net::ServerConfig serverConfig;
  serverConfig.idleTimeoutMs = 60000;
  grover::service::ServiceConfig serviceConfig;
  // The daemon answers measured requests as fast as unmeasured ones:
  // sampled measurements run on a background queue (local groverc keeps
  // the legacy inline measurement so its output stays synchronous).
  serviceConfig.measureQueueDepth = 64;
  std::size_t cacheMb = 256;
  int healthIntervalS = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--port=", 0) == 0) {
      serverConfig.port = static_cast<std::uint16_t>(
          parseCountFlag("--port", arg.substr(7), /*allowZero=*/true));
    } else if (arg.rfind("--host=", 0) == 0) {
      serverConfig.host = arg.substr(7);
    } else if (arg.rfind("--socket=", 0) == 0) {
      serverConfig.unixPath = arg.substr(9);
    } else if (arg.rfind("--threads=", 0) == 0) {
      serverConfig.workers = static_cast<unsigned>(
          parseCountFlag("--threads", arg.substr(10)));
      serviceConfig.workers = serverConfig.workers;
    } else if (arg.rfind("--max-queue=", 0) == 0) {
      serverConfig.maxAdmitted = static_cast<std::size_t>(
          parseCountFlag("--max-queue", arg.substr(12)));
    } else if (arg.rfind("--client-credits=", 0) == 0) {
      serverConfig.clientCredits = static_cast<std::size_t>(parseCountFlag(
          "--client-credits", arg.substr(17), /*allowZero=*/true));
    } else if (arg.rfind("--measure-queue-depth=", 0) == 0) {
      serviceConfig.measureQueueDepth =
          static_cast<std::size_t>(parseCountFlag(
              "--measure-queue-depth", arg.substr(22), /*allowZero=*/true));
    } else if (arg.rfind("--cache-mb=", 0) == 0) {
      cacheMb = static_cast<std::size_t>(
          parseCountFlag("--cache-mb", arg.substr(11)));
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      serviceConfig.cache.diskDir = arg.substr(12);
    } else if (arg.rfind("--policy-dir=", 0) == 0) {
      serviceConfig.policyStore.diskDir = arg.substr(13);
    } else if (arg.rfind("--measure-rate=", 0) == 0) {
      const std::string value = arg.substr(15);
      try {
        std::size_t pos = 0;
        serviceConfig.measureRate = std::stod(value, &pos);
        if (pos != value.size() || serviceConfig.measureRate <= 0 ||
            serviceConfig.measureRate > 1) {
          throw std::invalid_argument(value);
        }
      } catch (const std::exception&) {
        std::cerr << "groverd: bad --measure-rate value '" << value
                  << "' (expected a number in (0, 1])\n";
        return 1;
      }
    } else if (arg == "--prove") {
      serverConfig.prove = true;
    } else if (arg.rfind("--policy-horizon-ms=", 0) == 0) {
      serviceConfig.policyDecayHorizonMs = parseCountFlag(
          "--policy-horizon-ms", arg.substr(20), /*allowZero=*/true);
    } else if (arg.rfind("--idle-timeout-ms=", 0) == 0) {
      serverConfig.idleTimeoutMs = static_cast<int>(parseCountFlag(
          "--idle-timeout-ms", arg.substr(18), /*allowZero=*/true));
    } else if (arg.rfind("--loop-shards=", 0) == 0) {
      serverConfig.loopShards = static_cast<std::size_t>(
          parseCountFlag("--loop-shards", arg.substr(14)));
    } else if (arg.rfind("--health-interval=", 0) == 0) {
      healthIntervalS = static_cast<int>(parseCountFlag(
          "--health-interval", arg.substr(18), /*allowZero=*/true));
    } else if (arg == "--version") {
      std::cout << "groverd " << GROVER_VERSION_STRING << " (protocol v"
                << grover::net::kProtocolVersion << ")\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "groverd: unknown option: " << arg << "\n";
      usage();
      return 2;
    }
  }
  serviceConfig.cache.maxBytes = cacheMb << 20;
  // The admission queue is the backpressure boundary; the service's own
  // submit() bound sits behind it and must never block a worker.
  serviceConfig.maxQueue = serverConfig.maxAdmitted + 16;

  try {
    grover::service::CompileService service(serviceConfig);
    if (serviceConfig.measureRate > 0) {
      const grover::native::NativeEngine& engine =
          grover::native::NativeEngine::shared();
      if (!engine.available()) {
        std::cerr << "groverd: native execution unavailable ("
                  << engine.unavailableReason()
                  << "); sampled measurements use the decoded interpreter\n";
      }
    }
    grover::net::Server server(service, serverConfig, &std::cerr);
    server.bind();

    g_server = &server;
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);
    std::signal(SIGPIPE, SIG_IGN);

    std::cout << "groverd " << GROVER_VERSION_STRING << " (protocol v"
              << grover::net::kProtocolVersion << ") listening on ";
    if (server.port() != 0) {
      std::cout << serverConfig.host << ":" << server.port();
      if (!serverConfig.unixPath.empty()) {
        std::cout << " and " << serverConfig.unixPath;
      }
    } else {
      std::cout << serverConfig.unixPath;
    }
    if (serverConfig.loopShards > 1) {
      std::cout << " (" << serverConfig.loopShards << " loop shards)";
    }
    std::cout << std::endl;  // flushed: scripts wait for this line

    // Periodic health line, driven by the same binary StatsFrame a
    // StatsBinary wire request returns — what a monitor would see.
    std::thread health;
    std::mutex healthMutex;
    std::condition_variable healthCv;
    bool healthStop = false;
    if (healthIntervalS > 0) {
      health = std::thread([&] {
        std::unique_lock lock(healthMutex);
        while (!healthCv.wait_for(lock,
                                  std::chrono::seconds(healthIntervalS),
                                  [&] { return healthStop; })) {
          const grover::net::StatsFrame f = server.statsFrame();
          std::cerr << "groverd: " << grover::net::renderHealthLine(f)
                    << "\n";
        }
      });
    }

    server.run();
    g_server = nullptr;

    if (health.joinable()) {
      {
        std::lock_guard lock(healthMutex);
        healthStop = true;
      }
      healthCv.notify_all();
      health.join();
    }

    const grover::net::ServerStats s = server.stats();
    const grover::service::ServiceStats svc = service.stats();
    std::cerr << "groverd: served " << s.responsesSent << " responses over "
              << s.connectionsAccepted << " connections ("
              << svc.compiles << " compiles, " << svc.policyHits
              << " policy hits, " << s.rejectedOverload
              << " overload-rejected)\n";
    service.shutdown();
    std::cerr << "groverd: clean shutdown\n";
  } catch (const std::exception& e) {
    std::cerr << "groverd: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
