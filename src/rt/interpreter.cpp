#include "rt/interpreter.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>

#include "ir/casting.h"
#include "support/diagnostics.h"
#include "support/str.h"
#include "support/thread_pool.h"

namespace grover::rt {

using namespace ir;

// --- KernelImage -------------------------------------------------------------

KernelImage::KernelImage(ir::Function& fn, const NDRange& range,
                         const std::vector<KernelArg>& args)
    : fn_(fn), range_(range) {
  range_.validate();
  num_slots_ = fn.renumber();

  if (args.size() != fn.numArgs()) {
    throw GroverError(cat("kernel '", fn.name(), "' expects ", fn.numArgs(),
                          " arguments, got ", args.size()));
  }
  arg_values_.resize(args.size());
  for (unsigned i = 0; i < args.size(); ++i) {
    const Argument* param = fn.arg(i);
    if (std::holds_alternative<Buffer*>(args[i].value)) {
      if (!param->type()->isPointer()) {
        throw GroverError(cat("argument ", i, " is a buffer but parameter '",
                              param->name(), "' is not a pointer"));
      }
      PtrVal ptr;
      ptr.space = param->type()->addrSpace();
      ptr.base = static_cast<std::uint32_t>(buffers_.size());
      buffers_.push_back(std::get<Buffer*>(args[i].value));
      arg_values_[i] = RtValue::ofPtr(ptr);
    } else if (std::holds_alternative<std::int64_t>(args[i].value)) {
      if (!param->type()->isInteger()) {
        throw GroverError(cat("argument ", i, " type mismatch (expected ",
                              param->type()->str(), ")"));
      }
      arg_values_[i] = RtValue::ofInt(std::get<std::int64_t>(args[i].value));
    } else {
      if (!param->type()->isFloatingPoint()) {
        throw GroverError(cat("argument ", i, " type mismatch (expected ",
                              param->type()->str(), ")"));
      }
      arg_values_[i] = RtValue::ofFloat(std::get<double>(args[i].value));
    }
  }

  // Arena layouts: allocas live in the entry block, 16-byte aligned.
  auto align16 = [](std::uint64_t v) { return (v + 15) & ~std::uint64_t{15}; };
  for (const auto& inst : *fn.entry()) {
    const auto* alloca = dyn_cast<AllocaInst>(inst.get());
    if (alloca == nullptr) continue;
    if (alloca->space() == AddrSpace::Local) {
      local_size_ = align16(local_size_);
      alloca_offsets_[alloca] = static_cast<std::int64_t>(local_size_);
      local_size_ += alloca->sizeInBytes();
    } else if (alloca->space() == AddrSpace::Private) {
      private_size_ = align16(private_size_);
      alloca_offsets_[alloca] = static_cast<std::int64_t>(private_size_);
      private_size_ += alloca->sizeInBytes();
    } else {
      throw GroverError("alloca in unsupported address space");
    }
  }

  decoded_ = DecodedKernel::build(fn_, alloca_offsets_);
}

std::int64_t KernelImage::allocaOffset(const ir::AllocaInst* a) const {
  auto it = alloca_offsets_.find(a);
  if (it == alloca_offsets_.end()) {
    throw GroverError("alloca outside the entry block is unsupported");
  }
  return it->second;
}

// --- GroupExecutor -----------------------------------------------------------

namespace {

std::int64_t finalizeInt(TypeKind kind, std::int64_t v) {
  switch (kind) {
    case TypeKind::Bool:
      return v & 1;
    case TypeKind::Int32:
      return static_cast<std::int32_t>(v);
    default:
      return v;
  }
}

std::int64_t intOp(BinaryOp op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case BinaryOp::Add: return a + b;
    case BinaryOp::Sub: return a - b;
    case BinaryOp::Mul: return a * b;
    case BinaryOp::SDiv: return b == 0 ? 0 : a / b;
    case BinaryOp::SRem: return b == 0 ? 0 : a % b;
    case BinaryOp::Shl: return a << (b & 63);
    case BinaryOp::AShr: return a >> (b & 63);
    case BinaryOp::LShr:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >>
                                       (b & 63));
    case BinaryOp::And: return a & b;
    case BinaryOp::Or: return a | b;
    case BinaryOp::Xor: return a ^ b;
    default:
      throw GroverError("intOp: bad opcode");
  }
}

double floatOp(BinaryOp op, double a, double b, bool single) {
  if (single) {
    const float fa = static_cast<float>(a);
    const float fb = static_cast<float>(b);
    switch (op) {
      case BinaryOp::FAdd: return fa + fb;
      case BinaryOp::FSub: return fa - fb;
      case BinaryOp::FMul: return fa * fb;
      case BinaryOp::FDiv: return fa / fb;
      default: break;
    }
  } else {
    switch (op) {
      case BinaryOp::FAdd: return a + b;
      case BinaryOp::FSub: return a - b;
      case BinaryOp::FMul: return a * b;
      case BinaryOp::FDiv: return a / b;
      default: break;
    }
  }
  throw GroverError("floatOp: bad opcode");
}

RtValue readScalar(TypeKind kind, const std::byte* p) {
  switch (kind) {
    case TypeKind::Bool:
      return RtValue::ofInt(static_cast<std::uint8_t>(*p) != 0 ? 1 : 0);
    case TypeKind::Int32: {
      std::int32_t v;
      std::memcpy(&v, p, 4);
      return RtValue::ofInt(v);
    }
    case TypeKind::Int64: {
      std::int64_t v;
      std::memcpy(&v, p, 8);
      return RtValue::ofInt(v);
    }
    case TypeKind::Float: {
      float v;
      std::memcpy(&v, p, 4);
      return RtValue::ofFloat(v);
    }
    case TypeKind::Double: {
      double v;
      std::memcpy(&v, p, 8);
      return RtValue::ofFloat(v);
    }
    default:
      throw GroverError("load of unsupported type");
  }
}

/// In-place scalar writes to a value slot. RtValue is ~112 bytes; the hot
/// loop runs one of these per instruction, so updating only the active
/// payload (instead of constructing and copy-assigning a full RtValue)
/// matters. Inactive fields keep stale bits — every consumer reads only
/// the field selected by `kind`, so they are never observed.
inline void setInt(RtValue& out, std::int64_t v) {
  out.kind = RtValue::Kind::Int;
  out.lanes = 1;
  out.i = v;
}

inline void setFloat(RtValue& out, double v) {
  out.kind = RtValue::Kind::Float;
  out.lanes = 1;
  out.f = v;
}

void readScalarInto(TypeKind kind, const std::byte* p, RtValue& out) {
  switch (kind) {
    case TypeKind::Bool:
      setInt(out, static_cast<std::uint8_t>(*p) != 0 ? 1 : 0);
      return;
    case TypeKind::Int32: {
      std::int32_t v;
      std::memcpy(&v, p, 4);
      setInt(out, v);
      return;
    }
    case TypeKind::Int64: {
      std::int64_t v;
      std::memcpy(&v, p, 8);
      setInt(out, v);
      return;
    }
    case TypeKind::Float: {
      float v;
      std::memcpy(&v, p, 4);
      setFloat(out, v);
      return;
    }
    case TypeKind::Double: {
      double v;
      std::memcpy(&v, p, 8);
      setFloat(out, v);
      return;
    }
    default:
      throw GroverError("load of unsupported type");
  }
}

void writeScalar(TypeKind kind, std::byte* p, std::int64_t i, double f) {
  switch (kind) {
    case TypeKind::Bool: {
      const std::uint8_t v = i != 0 ? 1 : 0;
      std::memcpy(p, &v, 1);
      return;
    }
    case TypeKind::Int32: {
      const auto v = static_cast<std::int32_t>(i);
      std::memcpy(p, &v, 4);
      return;
    }
    case TypeKind::Int64:
      std::memcpy(p, &i, 8);
      return;
    case TypeKind::Float: {
      const auto v = static_cast<float>(f);
      std::memcpy(p, &v, 4);
      return;
    }
    case TypeKind::Double:
      std::memcpy(p, &f, 8);
      return;
    default:
      throw GroverError("store of unsupported type");
  }
}

}  // namespace

GroupExecutor::GroupExecutor(const KernelImage& image) : image_(image) {
  local_arena_.resize(image.localArenaSize());
  items_.resize(image.range().groupSize());
  // Seed argument slots once; every reset copies this prototype.
  proto_slots_.assign(image.numSlots(), RtValue{});
  const auto& argValues = image.argValues();
  for (unsigned i = 0; i < argValues.size(); ++i) {
    proto_slots_[image.function().arg(i)->slot()] = argValues[i];
  }
}

void GroupExecutor::resetWorkItem(WorkItem& wi) {
  wi.slots = proto_slots_;
  wi.privateArena.assign(image_.privateArenaSize(), std::byte{0});
  wi.pc = image_.decoded().entryPc();
  wi.status = WiStatus::Running;
  wi.barrierAt = 0;
}

void GroupExecutor::runGroup(const std::array<std::uint32_t, 3>& groupId) {
  group_ = groupId;
  const auto numGroups = image_.range().numGroups();
  group_linear_ =
      groupId[0] + numGroups[0] * (groupId[1] + numGroups[1] * groupId[2]);
  std::fill(local_arena_.begin(), local_arena_.end(), std::byte{0});
  counters_ = InstCounters{};
  if (trace_ != nullptr) {
    trace_->clear();
    trace_->group = group_linear_;
  }

  const NDRange& range = image_.range();
  std::uint32_t linear = 0;
  for (std::uint32_t lz = 0; lz < range.local[2]; ++lz) {
    for (std::uint32_t ly = 0; ly < range.local[1]; ++ly) {
      for (std::uint32_t lx = 0; lx < range.local[0]; ++lx) {
        WorkItem& wi = items_[linear];
        wi.localId = {lx, ly, lz};
        wi.linear = linear;
        resetWorkItem(wi);
        ++linear;
      }
    }
  }

  for (;;) {
    for (WorkItem& wi : items_) {
      if (wi.status == WiStatus::Running) advance(wi);
    }
    std::size_t done = 0;
    std::size_t atBarrier = 0;
    bool haveBarrier = false;
    std::uint32_t barrierPc = 0;
    for (const WorkItem& wi : items_) {
      if (wi.status == WiStatus::Done) {
        ++done;
      } else {
        ++atBarrier;
        if (!haveBarrier) {
          haveBarrier = true;
          barrierPc = wi.barrierAt;
        } else if (barrierPc != wi.barrierAt) {
          throw GroverError(
              "barrier divergence: work-items stopped at different barriers");
        }
      }
    }
    if (atBarrier == 0) break;
    if (done != 0) {
      throw GroverError(
          "barrier divergence: some work-items returned while others wait");
    }
    if (trace_ != nullptr) {
      trace_->barriers.push_back(
          static_cast<std::uint32_t>(trace_->accesses.size()));
    }
    for (WorkItem& wi : items_) wi.status = WiStatus::Running;
  }

  if (trace_ != nullptr) trace_->counters = counters_;
  total_counters_ += counters_;
}

void GroupExecutor::takeEdge(WorkItem& wi, const DEdge& edge) {
  const std::uint32_t n = edge.phiEnd - edge.phiBegin;
  if (n != 0) {
    const DPhiCopy* copies = image_.decoded().phiCopies() + edge.phiBegin;
    if (edge.phiOverlap) {
      // Two-phase phi moves: read every source before writing any slot.
      phi_scratch_.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        phi_scratch_[i] = readRef(wi, copies[i].src);
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        wi.slots[static_cast<std::size_t>(copies[i].dest)] = phi_scratch_[i];
      }
    } else {
      // No dest is another copy's source (checked at decode time): move
      // values directly, skipping the scratch pass.
      for (std::uint32_t i = 0; i < n; ++i) {
        wi.slots[static_cast<std::size_t>(copies[i].dest)] =
            readRef(wi, copies[i].src);
      }
    }
    counters_.other += n;
  }
  wi.pc = edge.targetPc;
}

std::byte* GroupExecutor::resolve(WorkItem& wi, const PtrVal& ptr,
                                  std::uint64_t size,
                                  std::uint64_t& traceAddr) {
  switch (ptr.space) {
    case AddrSpace::Global:
    case AddrSpace::Constant: {
      Buffer* buffer = image_.buffers().at(ptr.base);
      if (ptr.offset < 0 ||
          static_cast<std::uint64_t>(ptr.offset) + size > buffer->size()) {
        throw GroverError(cat("out-of-bounds ", toString(ptr.space),
                              " access at offset ", ptr.offset, " size ", size,
                              " (buffer ", buffer->size(), " bytes)"));
      }
      traceAddr = bufferBaseAddress(ptr.base) +
                  static_cast<std::uint64_t>(ptr.offset);
      return buffer->data() + ptr.offset;
    }
    case AddrSpace::Local: {
      if (ptr.offset < 0 ||
          static_cast<std::uint64_t>(ptr.offset) + size > local_arena_.size()) {
        throw GroverError(cat("out-of-bounds local access at offset ",
                              ptr.offset));
      }
      traceAddr = static_cast<std::uint64_t>(ptr.offset);
      return local_arena_.data() + ptr.offset;
    }
    case AddrSpace::Private: {
      if (ptr.offset < 0 || static_cast<std::uint64_t>(ptr.offset) + size >
                                wi.privateArena.size()) {
        throw GroverError("out-of-bounds private access");
      }
      traceAddr = static_cast<std::uint64_t>(ptr.offset);
      return wi.privateArena.data() + ptr.offset;
    }
  }
  throw GroverError("bad address space");
}

void GroupExecutor::execLoad(WorkItem& wi, const DInst& d, const PtrVal& ptr,
                             RtValue& out) {
  std::uint64_t traceAddr = 0;
  const std::byte* mem = resolve(wi, ptr, d.memSize, traceAddr);
  if (trace_ != nullptr) {
    trace_->accesses.push_back({ptr.space, traceAddr, d.memSize, false,
                                group_linear_, wi.linear, d.instSlot});
  }
  if (d.lanes == 0) {
    readScalarInto(d.tkind, mem, out);
    return;
  }
  out = d.elemIsFloat ? RtValue::ofVecFloat(d.lanes)
                      : RtValue::ofVecInt(d.lanes);
  for (unsigned lane = 0; lane < d.lanes; ++lane) {
    const RtValue v = readScalar(d.tkind, mem + lane * d.elemSize);
    if (out.kind == RtValue::Kind::VecFloat) {
      out.vf[lane] = v.f;
    } else {
      out.vi[lane] = v.i;
    }
  }
}

void GroupExecutor::execStore(WorkItem& wi, const DInst& d, const PtrVal& ptr,
                              const RtValue& value) {
  std::uint64_t traceAddr = 0;
  std::byte* mem = resolve(wi, ptr, d.memSize, traceAddr);
  if (trace_ != nullptr) {
    trace_->accesses.push_back({ptr.space, traceAddr, d.memSize, true,
                                group_linear_, wi.linear, d.instSlot});
  }
  if (d.lanes == 0) {
    writeScalar(d.tkind, mem, value.i, value.f);
    return;
  }
  for (unsigned lane = 0; lane < d.lanes; ++lane) {
    writeScalar(d.tkind, mem + lane * d.elemSize, value.vi[lane],
                value.vf[lane]);
  }
}

std::int64_t GroupExecutor::execIdQuery(WorkItem& wi, const DInst& d) {
  const NDRange& range = image_.range();
  const auto builtin = static_cast<Builtin>(d.sub);
  counters_.other += 1;
  if (builtin == Builtin::GetWorkDim) return range.dims;
  const std::int64_t dv = readRef(wi, d.a).i;
  const unsigned dim = dv >= 0 && dv < 3 ? static_cast<unsigned>(dv) : 3;
  switch (builtin) {
    case Builtin::GetGlobalId:
      if (dim >= 3) return 0;
      return std::int64_t{group_[dim]} * range.local[dim] + wi.localId[dim];
    case Builtin::GetLocalId:
      return dim < 3 ? wi.localId[dim] : 0;
    case Builtin::GetGroupId:
      return dim < 3 ? group_[dim] : 0;
    case Builtin::GetGlobalSize:
      return dim < 3 ? range.global[dim] : 1;
    case Builtin::GetLocalSize:
      return dim < 3 ? range.local[dim] : 1;
    case Builtin::GetNumGroups:
      return dim < 3 ? range.numGroups()[dim] : 1;
    default:
      throw GroverError("unsupported builtin call");
  }
}

void GroupExecutor::execMathCall(WorkItem& wi, const DInst& d, RtValue& out) {
  counters_.mathCall += 1;
  const auto builtin = static_cast<Builtin>(d.sub);
  const bool single = d.tkind == TypeKind::Float;
  const bool isFp = single || d.tkind == TypeKind::Double;
  auto f1 = [&](double (*fn)(double)) {
    const double x = readRef(wi, d.a).f;
    setFloat(out, single ? static_cast<float>(fn(static_cast<float>(x)))
                         : fn(x));
  };
  switch (builtin) {
    case Builtin::Sqrt: f1(std::sqrt); return;
    case Builtin::RSqrt: {
      const double x = readRef(wi, d.a).f;
      setFloat(out, single ? 1.0F / std::sqrt(static_cast<float>(x))
                           : 1.0 / std::sqrt(x));
      return;
    }
    case Builtin::Fabs: f1(std::fabs); return;
    case Builtin::Exp: f1(std::exp); return;
    case Builtin::Log: f1(std::log); return;
    case Builtin::Sin: f1(std::sin); return;
    case Builtin::Cos: f1(std::cos); return;
    case Builtin::Floor: f1(std::floor); return;
    case Builtin::Ceil: f1(std::ceil); return;
    case Builtin::Pow: {
      const double a = readRef(wi, d.a).f;
      const double b = readRef(wi, d.b).f;
      setFloat(out, single ? std::pow(static_cast<float>(a),
                                      static_cast<float>(b))
                           : std::pow(a, b));
      return;
    }
    case Builtin::FMin:
    case Builtin::FMax: {
      const double a = readRef(wi, d.a).f;
      const double b = readRef(wi, d.b).f;
      const bool isMin = builtin == Builtin::FMin;
      setFloat(out, isMin ? std::fmin(a, b) : std::fmax(a, b));
      return;
    }
    case Builtin::Fma:
    case Builtin::Mad: {
      const double a = readRef(wi, d.a).f;
      const double b = readRef(wi, d.b).f;
      const double c = readRef(wi, d.c).f;
      if (single) {
        setFloat(out, static_cast<float>(a) * static_cast<float>(b) +
                          static_cast<float>(c));
      } else {
        setFloat(out, a * b + c);
      }
      return;
    }
    case Builtin::IMin:
    case Builtin::IMax: {
      if (isFp) {
        const double a = readRef(wi, d.a).f;
        const double b = readRef(wi, d.b).f;
        setFloat(out, builtin == Builtin::IMin ? std::fmin(a, b)
                                               : std::fmax(a, b));
        return;
      }
      const std::int64_t a = readRef(wi, d.a).i;
      const std::int64_t b = readRef(wi, d.b).i;
      setInt(out, builtin == Builtin::IMin ? std::min(a, b) : std::max(a, b));
      return;
    }
    case Builtin::IAbs: {
      const std::int64_t a = readRef(wi, d.a).i;
      setInt(out, a < 0 ? -a : a);
      return;
    }
    case Builtin::Mul24: {
      const auto a = static_cast<std::int32_t>(readRef(wi, d.a).i);
      const auto b = static_cast<std::int32_t>(readRef(wi, d.b).i);
      setInt(out, static_cast<std::int32_t>(a * b));
      return;
    }
    case Builtin::Mad24: {
      const auto a = static_cast<std::int32_t>(readRef(wi, d.a).i);
      const auto b = static_cast<std::int32_t>(readRef(wi, d.b).i);
      const auto c = static_cast<std::int32_t>(readRef(wi, d.c).i);
      setInt(out, static_cast<std::int32_t>(a * b + c));
      return;
    }
    case Builtin::Clamp: {
      if (isFp) {
        const double x = readRef(wi, d.a).f;
        const double lo = readRef(wi, d.b).f;
        const double hi = readRef(wi, d.c).f;
        setFloat(out, std::fmin(std::fmax(x, lo), hi));
        return;
      }
      const std::int64_t x = readRef(wi, d.a).i;
      const std::int64_t lo = readRef(wi, d.b).i;
      const std::int64_t hi = readRef(wi, d.c).i;
      setInt(out, std::min(std::max(x, lo), hi));
      return;
    }
    case Builtin::Dot: {
      const RtValue& a = readRef(wi, d.a);
      const RtValue& b = readRef(wi, d.b);
      float acc = 0.0F;
      for (unsigned i = 0; i < a.lanes; ++i) {
        acc += static_cast<float>(a.vf[i]) * static_cast<float>(b.vf[i]);
      }
      setFloat(out, acc);
      return;
    }
    default:
      throw GroverError("unsupported builtin call");
  }
}

void GroupExecutor::advance(WorkItem& wi) {
  const DecodedKernel& dk = image_.decoded();
  const DInst* code = dk.code();
  for (;;) {
    const DInst& d = code[wi.pc];
    switch (d.op) {
      case DOp::BinInt: {
        const std::int64_t a = readRef(wi, d.a).i;
        const std::int64_t b = readRef(wi, d.b).i;
        setInt(wi.slots[static_cast<std::size_t>(d.dest)],
               finalizeInt(d.tkind, intOp(static_cast<BinaryOp>(d.sub), a, b)));
        counters_.intAlu += 1;
        ++wi.pc;
        continue;
      }
      case DOp::BinFloat: {
        const double a = readRef(wi, d.a).f;
        const double b = readRef(wi, d.b).f;
        setFloat(wi.slots[static_cast<std::size_t>(d.dest)],
                 floatOp(static_cast<BinaryOp>(d.sub), a, b,
                         d.tkind == TypeKind::Float));
        counters_.floatAlu += 1;
        ++wi.pc;
        continue;
      }
      case DOp::BinVecInt: {
        const RtValue& l = readRef(wi, d.a);
        const RtValue& r = readRef(wi, d.b);
        // SSA: dest never aliases an operand, so writing in place is safe.
        RtValue& out = wi.slots[static_cast<std::size_t>(d.dest)];
        out.kind = RtValue::Kind::VecInt;
        out.lanes = d.lanes;
        for (unsigned i = 0; i < d.lanes; ++i) {
          out.vi[i] = finalizeInt(
              d.tkind, intOp(static_cast<BinaryOp>(d.sub), l.vi[i], r.vi[i]));
        }
        counters_.vectorAlu += 1;
        ++wi.pc;
        continue;
      }
      case DOp::BinVecFloat: {
        const RtValue& l = readRef(wi, d.a);
        const RtValue& r = readRef(wi, d.b);
        RtValue& out = wi.slots[static_cast<std::size_t>(d.dest)];
        out.kind = RtValue::Kind::VecFloat;
        out.lanes = d.lanes;
        const bool single = d.tkind == TypeKind::Float;
        for (unsigned i = 0; i < d.lanes; ++i) {
          out.vf[i] =
              floatOp(static_cast<BinaryOp>(d.sub), l.vf[i], r.vf[i], single);
        }
        counters_.vectorAlu += 1;
        ++wi.pc;
        continue;
      }
      case DOp::ICmp: {
        const std::int64_t a = readRef(wi, d.a).i;
        const std::int64_t b = readRef(wi, d.b).i;
        const auto ua = static_cast<std::uint64_t>(a);
        const auto ub = static_cast<std::uint64_t>(b);
        bool r = false;
        switch (static_cast<CmpPred>(d.sub)) {
          case CmpPred::EQ: r = a == b; break;
          case CmpPred::NE: r = a != b; break;
          case CmpPred::SLT: r = a < b; break;
          case CmpPred::SLE: r = a <= b; break;
          case CmpPred::SGT: r = a > b; break;
          case CmpPred::SGE: r = a >= b; break;
          case CmpPred::ULT: r = ua < ub; break;
          case CmpPred::ULE: r = ua <= ub; break;
          case CmpPred::UGT: r = ua > ub; break;
          case CmpPred::UGE: r = ua >= ub; break;
          default:
            throw GroverError("bad icmp predicate");
        }
        setInt(wi.slots[static_cast<std::size_t>(d.dest)], r ? 1 : 0);
        counters_.intAlu += 1;
        ++wi.pc;
        continue;
      }
      case DOp::FCmp: {
        const double a = readRef(wi, d.a).f;
        const double b = readRef(wi, d.b).f;
        bool r = false;
        switch (static_cast<CmpPred>(d.sub)) {
          case CmpPred::OEQ: r = a == b; break;
          case CmpPred::ONE: r = a != b; break;
          case CmpPred::OLT: r = a < b; break;
          case CmpPred::OLE: r = a <= b; break;
          case CmpPred::OGT: r = a > b; break;
          case CmpPred::OGE: r = a >= b; break;
          default:
            throw GroverError("bad fcmp predicate");
        }
        setInt(wi.slots[static_cast<std::size_t>(d.dest)], r ? 1 : 0);
        counters_.floatAlu += 1;
        ++wi.pc;
        continue;
      }
      case DOp::Cast: {
        const RtValue& v = readRef(wi, d.a);
        RtValue& out = wi.slots[static_cast<std::size_t>(d.dest)];
        switch (static_cast<CastOp>(d.sub)) {
          case CastOp::SExt:
          case CastOp::Trunc:
            setInt(out, finalizeInt(d.tkind, v.i));
            break;
          case CastOp::ZExt: {
            std::int64_t raw = v.i;
            if (d.srcKind == TypeKind::Bool) {
              raw &= 1;
            } else if (d.srcKind == TypeKind::Int32) {
              raw = static_cast<std::int64_t>(static_cast<std::uint32_t>(raw));
            }
            setInt(out, finalizeInt(d.tkind, raw));
            break;
          }
          case CastOp::SIToFP:
          case CastOp::UIToFP: {
            double f = static_cast<double>(v.i);
            if (d.tkind == TypeKind::Float) f = static_cast<float>(f);
            setFloat(out, f);
            break;
          }
          case CastOp::FPToSI:
            setInt(out, finalizeInt(d.tkind, static_cast<std::int64_t>(v.f)));
            break;
          case CastOp::FPExt:
            setFloat(out, v.f);
            break;
          case CastOp::FPTrunc:
            setFloat(out, static_cast<float>(v.f));
            break;
        }
        counters_.intAlu += 1;
        ++wi.pc;
        continue;
      }
      case DOp::Select: {
        const bool c = readRef(wi, d.a).i != 0;
        wi.slots[static_cast<std::size_t>(d.dest)] =
            readRef(wi, c ? d.b : d.c);
        counters_.intAlu += 1;
        ++wi.pc;
        continue;
      }
      case DOp::Gep: {
        RtValue& out = wi.slots[static_cast<std::size_t>(d.dest)];
        out = readRef(wi, d.a);
        out.ptr.offset += readRef(wi, d.b).i *
                          static_cast<std::int64_t>(d.elemSize);
        counters_.intAlu += 1;
        ++wi.pc;
        continue;
      }
      case DOp::Load: {
        const PtrVal ptr = readRef(wi, d.a).ptr;
        execLoad(wi, d, ptr, wi.slots[static_cast<std::size_t>(d.dest)]);
        switch (ptr.space) {
          case AddrSpace::Global:
          case AddrSpace::Constant: counters_.globalLoad += 1; break;
          case AddrSpace::Local: counters_.localLoad += 1; break;
          case AddrSpace::Private: counters_.privateAccess += 1; break;
        }
        ++wi.pc;
        continue;
      }
      case DOp::Store: {
        const PtrVal ptr = readRef(wi, d.b).ptr;
        execStore(wi, d, ptr, readRef(wi, d.a));
        switch (ptr.space) {
          case AddrSpace::Global:
          case AddrSpace::Constant: counters_.globalStore += 1; break;
          case AddrSpace::Local: counters_.localStore += 1; break;
          case AddrSpace::Private: counters_.privateAccess += 1; break;
        }
        ++wi.pc;
        continue;
      }
      case DOp::Alloca:
        wi.slots[static_cast<std::size_t>(d.dest)] = readRef(wi, d.a);
        counters_.other += 1;
        ++wi.pc;
        continue;
      case DOp::IdQuery:
        setInt(wi.slots[static_cast<std::size_t>(d.dest)],
               execIdQuery(wi, d));
        ++wi.pc;
        continue;
      case DOp::MathCall:
        execMathCall(wi, d, wi.slots[static_cast<std::size_t>(d.dest)]);
        ++wi.pc;
        continue;
      case DOp::ExtractElement: {
        const RtValue& vec = readRef(wi, d.a);
        const auto lane = static_cast<unsigned>(readRef(wi, d.b).i);
        if (lane >= vec.lanes) throw GroverError("extractelement lane OOB");
        RtValue& out = wi.slots[static_cast<std::size_t>(d.dest)];
        if (vec.kind == RtValue::Kind::VecFloat) {
          setFloat(out, vec.vf[lane]);
        } else {
          setInt(out, vec.vi[lane]);
        }
        counters_.vectorAlu += 1;
        ++wi.pc;
        continue;
      }
      case DOp::InsertElement: {
        const RtValue& vec = readRef(wi, d.a);
        const RtValue& scalar = readRef(wi, d.b);
        const auto lane = static_cast<unsigned>(readRef(wi, d.c).i);
        RtValue& out = wi.slots[static_cast<std::size_t>(d.dest)];
        // Undef vectors arrive with the right lane count from the pool.
        if (vec.lanes == 1) {
          out = d.elemIsFloat ? RtValue::ofVecFloat(d.lanes)
                              : RtValue::ofVecInt(d.lanes);
        } else {
          out = vec;
        }
        if (lane >= out.lanes) throw GroverError("insertelement lane OOB");
        if (out.kind == RtValue::Kind::VecFloat) {
          out.vf[lane] = scalar.f;
        } else {
          out.vi[lane] = scalar.i;
        }
        counters_.vectorAlu += 1;
        ++wi.pc;
        continue;
      }
      case DOp::Br:
        counters_.branch += 1;
        takeEdge(wi, dk.edge(d.imm));
        continue;
      case DOp::CondBr: {
        counters_.branch += 1;
        const bool taken = readRef(wi, d.a).i != 0;
        takeEdge(wi, dk.edge(taken ? d.b : d.c));
        continue;
      }
      case DOp::Ret:
        wi.status = WiStatus::Done;
        return;
      case DOp::Barrier:
        counters_.barrier += 1;
        wi.status = WiStatus::AtBarrier;
        wi.barrierAt = wi.pc;
        ++wi.pc;
        return;
      case DOp::Trap:
        throw GroverError(dk.message(d.imm));
    }
    throw GroverError("bad decoded opcode");
  }
}

// --- Launch ------------------------------------------------------------------

Launch::Launch(ir::Function& fn, const NDRange& range,
               std::vector<KernelArg> args)
    : image_(fn, range, args) {}

std::vector<std::array<std::uint32_t, 3>> Launch::sampledGroups() const {
  const auto numGroups = image_.range().numGroups();
  std::vector<std::array<std::uint32_t, 3>> groups;
  std::uint64_t linear = 0;
  for (std::uint32_t gz = 0; gz < numGroups[2]; ++gz) {
    for (std::uint32_t gy = 0; gy < numGroups[1]; ++gy) {
      for (std::uint32_t gx = 0; gx < numGroups[0]; ++gx) {
        if (linear % sample_stride_ == 0) groups.push_back({gx, gy, gz});
        ++linear;
      }
    }
  }
  return groups;
}

InstCounters Launch::run(unsigned threads) {
  // Execution is CPU-bound: never run more threads than the hardware has.
  const unsigned hw = std::max(1U, std::thread::hardware_concurrency());
  threads = threads == 0 ? hw : std::min(threads, hw);
  const auto groups = sampledGroups();

  if (sink_ != nullptr) return runTraced(groups, threads);

  if (threads <= 1) {
    GroupExecutor exec(image_);
    for (const auto& g : groups) exec.runGroup(g);
    return exec.totalCounters();
  }

  // Parallel execution across groups (kernels write disjoint output regions
  // per group). The calling thread joins the work-stealing loop, so the
  // pool only needs threads-1 workers.
  std::vector<std::unique_ptr<GroupExecutor>> execs;
  execs.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    execs.push_back(std::make_unique<GroupExecutor>(image_));
  }
  ThreadPool pool(threads - 1);
  std::atomic<std::size_t> next{0};
  const auto executeLoop = [&](unsigned t) {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= groups.size()) return;
      execs[t]->runGroup(groups[i]);
    }
  };
  for (unsigned t = 1; t < threads; ++t) {
    pool.submit([&executeLoop, t] { executeLoop(t); });
  }
  executeLoop(0);
  pool.waitIdle();
  InstCounters total;
  for (const auto& e : execs) total += e->totalCounters();
  return total;
}

InstCounters Launch::runTraced(
    const std::vector<std::array<std::uint32_t, 3>>& groups,
    unsigned threads) {
  if (threads <= 1) {
    GroupExecutor exec(image_);
    GroupTrace trace;
    exec.setTrace(&trace);
    for (const auto& g : groups) {
      exec.runGroup(g);
      trace.replay(*sink_);
    }
    return exec.totalCounters();
  }

  // Waves: execute a bounded batch of groups in parallel — each into its
  // own trace buffer — then replay the batch into the sink serially in
  // dense order. The sink observes the exact serial event sequence.
  std::vector<std::unique_ptr<GroupExecutor>> execs;
  execs.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    execs.push_back(std::make_unique<GroupExecutor>(image_));
  }
  ThreadPool pool(threads - 1);
  std::vector<GroupTrace> traces;
  std::size_t done = 0;
  std::size_t avgBytes = 0;
  while (done < groups.size()) {
    const std::size_t wave =
        nextTraceWave(groups.size() - done, threads, avgBytes);
    if (traces.size() < wave) traces.resize(wave);
    std::atomic<std::size_t> next{0};
    const auto executeLoop = [&](unsigned t) {
      GroupExecutor& exec = *execs[t];
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= wave) return;
        exec.setTrace(&traces[i]);
        exec.runGroup(groups[done + i]);
      }
    };
    for (unsigned t = 1; t < threads; ++t) {
      pool.submit([&executeLoop, t] { executeLoop(t); });
    }
    executeLoop(0);
    pool.waitIdle();
    std::size_t bytes = 0;
    for (std::size_t i = 0; i < wave; ++i) {
      traces[i].replay(*sink_);
      bytes += traces[i].byteSize();
    }
    avgBytes = bytes / wave;
    done += wave;
  }
  InstCounters total;
  for (const auto& e : execs) total += e->totalCounters();
  return total;
}

}  // namespace grover::rt
