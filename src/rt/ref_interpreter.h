// The original tree-walking work-group executor, preserved verbatim from
// the first runtime. It interprets ir::Instruction objects directly and
// pushes trace events through the virtual TraceSink interface — slower than
// the pre-decoded GroupExecutor, but intentionally kept as:
//   1. the differential-testing oracle the decoded interpreter is verified
//      against (identical outputs, counters, and trace streams), and
//   2. the honest "seed serial path" baseline for bench_parallel_estimation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ir/basic_block.h"
#include "rt/interpreter.h"
#include "rt/trace.h"
#include "rt/value.h"

namespace grover::rt {

/// Executes work-groups by walking the IR. Not thread-safe; one per thread.
class ReferenceExecutor {
 public:
  explicit ReferenceExecutor(const KernelImage& image,
                             TraceSink* sink = nullptr);

  /// Execute one work-group to completion (throws on barrier divergence,
  /// out-of-bounds access, or unsupported IR).
  void runGroup(const std::array<std::uint32_t, 3>& groupId);

  [[nodiscard]] const InstCounters& totalCounters() const {
    return total_counters_;
  }

 private:
  enum class WiStatus : std::uint8_t { Running, AtBarrier, Done };

  struct WorkItem {
    std::array<std::uint32_t, 3> localId{};
    std::uint32_t linear = 0;
    std::vector<RtValue> slots;
    std::vector<std::byte> privateArena;
    ir::BasicBlock* block = nullptr;
    ir::BasicBlock::const_iterator ip;
    WiStatus status = WiStatus::Running;
    const ir::Instruction* barrierAt = nullptr;
  };

  void resetWorkItem(WorkItem& wi);
  void advance(WorkItem& wi);
  void exec(WorkItem& wi, const ir::Instruction* inst);
  void enterBlock(WorkItem& wi, ir::BasicBlock* from, ir::BasicBlock* to);

  RtValue& slot(WorkItem& wi, const ir::Value* v);
  RtValue eval(WorkItem& wi, const ir::Value* v);

  RtValue loadFrom(WorkItem& wi, const PtrVal& ptr, const ir::Type* type,
                   std::uint32_t instSlot);
  void storeTo(WorkItem& wi, const PtrVal& ptr, const ir::Type* type,
               const RtValue& value, std::uint32_t instSlot);
  std::byte* resolve(WorkItem& wi, const PtrVal& ptr, std::uint64_t size,
                     std::uint64_t& traceAddr);

  RtValue evalBinary(const ir::BinaryInst* bin, const RtValue& l,
                     const RtValue& r);
  RtValue evalCall(WorkItem& wi, const ir::CallInst* call);

  const KernelImage& image_;
  TraceSink* sink_;
  std::array<std::uint32_t, 3> group_{};
  std::uint32_t group_linear_ = 0;
  std::vector<std::byte> local_arena_;
  std::vector<WorkItem> items_;
  InstCounters counters_;
  InstCounters total_counters_;
};

}  // namespace grover::rt
