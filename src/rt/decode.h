// Kernel pre-decoding: flattens a function's SSA instruction graph into a
// linear instruction stream the interpreter can walk without chasing
// ir::Instruction pointers, re-resolving operands, or re-materializing
// constants per work-item. Decoding happens once per KernelImage; every
// GroupExecutor then runs the same immutable DecodedKernel.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/function.h"
#include "ir/instruction.h"
#include "rt/value.h"

namespace grover::rt {

/// Decoded opcode. Binary/compare ops are split by result class so the hot
/// loop never re-tests type properties the decoder already knows.
enum class DOp : std::uint8_t {
  BinInt,
  BinFloat,
  BinVecInt,
  BinVecFloat,
  ICmp,
  FCmp,
  Cast,
  Select,
  Gep,
  Load,
  Store,
  Alloca,
  IdQuery,    // get_global_id & friends
  MathCall,   // sqrt/pow/clamp/dot/...
  ExtractElement,
  InsertElement,
  Br,
  CondBr,
  Ret,
  Barrier,
  Trap,  // malformed/unsupported IR: throws its message when executed
};

/// Operand reference: >= 0 is a work-item value slot, < 0 is an index into
/// the decoded constant pool (constantIndex = -ref - 1).
using DRef = std::int32_t;

/// One decoded instruction (fixed-size, cache-friendly).
struct DInst {
  DOp op = DOp::Trap;
  std::uint8_t sub = 0;  // BinaryOp / CmpPred / CastOp / Builtin raw value
  ir::TypeKind tkind = ir::TypeKind::Void;    // result (element) scalar kind
  ir::TypeKind srcKind = ir::TypeKind::Void;  // cast source kind
  std::uint8_t lanes = 0;     // result vector lanes (0 = scalar)
  bool elemIsFloat = false;   // vector element class (insert/undef widening)
  DRef dest = -1;             // result slot (unused for void results)
  DRef a = 0;
  DRef b = 0;
  DRef c = 0;
  std::uint32_t instSlot = 0;  // static slot for the memory trace
  std::uint32_t memSize = 0;   // load/store: total bytes
  std::uint32_t elemSize = 0;  // load/store: element bytes; gep: stride
  std::int64_t imm = 0;        // Br: edge index; Trap: message index
};

/// One decoded phi move executed when control enters a block over an edge.
struct DPhiCopy {
  std::int32_t dest = 0;  // phi's value slot
  DRef src = 0;
};

/// A CFG edge: where to jump and which phi moves to perform. Phi moves are
/// two-phase (all sources read before any destination is written), matching
/// SSA semantics for phi-reads-phi cycles. `phiOverlap` is precomputed at
/// decode time: when false no copy's destination is another copy's source,
/// so the executor may move values directly without the scratch pass.
struct DEdge {
  std::uint32_t targetPc = 0;
  std::uint32_t phiBegin = 0;
  std::uint32_t phiEnd = 0;
  bool phiOverlap = false;
};

/// The immutable decoded form of one kernel function.
class DecodedKernel {
 public:
  DecodedKernel() = default;

  /// Decode `fn` (already renumbered). `allocaOffsets` maps entry-block
  /// allocas to their arena offsets, as computed by KernelImage.
  static DecodedKernel build(
      const ir::Function& fn,
      const std::unordered_map<const ir::AllocaInst*, std::int64_t>&
          allocaOffsets);

  [[nodiscard]] const DInst* code() const { return code_.data(); }
  [[nodiscard]] std::size_t codeSize() const { return code_.size(); }
  [[nodiscard]] std::uint32_t entryPc() const { return entry_pc_; }
  [[nodiscard]] const RtValue& constant(std::int32_t index) const {
    return constants_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] const std::vector<RtValue>& constants() const {
    return constants_;
  }
  [[nodiscard]] const DEdge& edge(std::int64_t index) const {
    return edges_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] const DPhiCopy* phiCopies() const { return phi_copies_.data(); }
  [[nodiscard]] const std::string& message(std::int64_t index) const {
    return messages_[static_cast<std::size_t>(index)];
  }
  /// Full trap-message table, index-aligned with DInst::imm — the native
  /// lowering clones it so compiled kernels report the same diagnostics.
  [[nodiscard]] const std::vector<std::string>& messages() const {
    return messages_;
  }

 private:
  std::vector<DInst> code_;
  std::vector<RtValue> constants_;
  std::vector<DEdge> edges_;
  std::vector<DPhiCopy> phi_copies_;
  std::vector<std::string> messages_;
  std::uint32_t entry_pc_ = 0;
};

}  // namespace grover::rt
