// Runtime values for the IR interpreter.
#pragma once

#include <array>
#include <cstdint>

#include "ir/type.h"

namespace grover::rt {

/// A pointer at run time: an address space, a base object, and a byte
/// offset. For Global/Constant, `base` is the bound buffer index; for
/// Local, the offset is within the work-group arena; for Private, within
/// the work-item arena (base unused for both).
struct PtrVal {
  ir::AddrSpace space = ir::AddrSpace::Global;
  std::uint32_t base = 0;
  std::int64_t offset = 0;
};

/// One SSA value during execution. A plain struct (no allocation) — the
/// interpreter stores one per value slot per work-item.
struct RtValue {
  enum class Kind : std::uint8_t { Int, Float, Ptr, VecInt, VecFloat };

  Kind kind = Kind::Int;
  std::uint8_t lanes = 1;  // vectors only
  std::int64_t i = 0;
  double f = 0.0;
  PtrVal ptr;
  std::array<std::int64_t, 4> vi{};
  std::array<double, 4> vf{};

  static RtValue ofInt(std::int64_t v) {
    RtValue r;
    r.kind = Kind::Int;
    r.i = v;
    return r;
  }
  static RtValue ofFloat(double v) {
    RtValue r;
    r.kind = Kind::Float;
    r.f = v;
    return r;
  }
  static RtValue ofPtr(PtrVal p) {
    RtValue r;
    r.kind = Kind::Ptr;
    r.ptr = p;
    return r;
  }
  static RtValue ofVecFloat(std::uint8_t lanes) {
    RtValue r;
    r.kind = Kind::VecFloat;
    r.lanes = lanes;
    return r;
  }
  static RtValue ofVecInt(std::uint8_t lanes) {
    RtValue r;
    r.kind = Kind::VecInt;
    r.lanes = lanes;
    return r;
  }
};

}  // namespace grover::rt
