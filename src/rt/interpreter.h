// The NDRange execution engine: interprets kernels in SSA form with OpenCL
// work-group/barrier semantics. Work-items of a group execute on one thread
// in barrier-region order — the same mapping Intel's CPU runtime uses
// (paper ref [2]) — so the memory trace order matches what the CPU
// performance models assume.
//
// Each KernelImage pre-decodes its function once into a flat instruction
// stream (rt/decode.h); GroupExecutor walks that stream and appends trace
// events into a per-group GroupTrace buffer with no locks or virtual calls,
// which is what lets traced launches fan out across the ThreadPool while
// the trace consumer still observes groups in deterministic dense order.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <variant>
#include <vector>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "rt/buffer.h"
#include "rt/decode.h"
#include "rt/ndrange.h"
#include "rt/trace.h"
#include "rt/value.h"

namespace grover::rt {

/// One kernel argument: a buffer (for pointer params) or a scalar.
struct KernelArg {
  static KernelArg buffer(Buffer* b) {
    KernelArg a;
    a.value = b;
    return a;
  }
  static KernelArg int32(std::int32_t v) {
    KernelArg a;
    a.value = static_cast<std::int64_t>(v);
    return a;
  }
  static KernelArg float32(float v) {
    KernelArg a;
    a.value = static_cast<double>(v);
    return a;
  }
  std::variant<Buffer*, std::int64_t, double> value;
};

/// Immutable, shareable pre-computation for one kernel launch: value slot
/// count, local/private arena layouts, bound argument values, and the
/// pre-decoded instruction stream.
class KernelImage {
 public:
  KernelImage(ir::Function& fn, const NDRange& range,
              const std::vector<KernelArg>& args);

  [[nodiscard]] ir::Function& function() const { return fn_; }
  [[nodiscard]] const NDRange& range() const { return range_; }
  [[nodiscard]] unsigned numSlots() const { return num_slots_; }
  [[nodiscard]] std::uint64_t localArenaSize() const { return local_size_; }
  [[nodiscard]] std::uint64_t privateArenaSize() const {
    return private_size_;
  }
  [[nodiscard]] const std::vector<RtValue>& argValues() const {
    return arg_values_;
  }
  [[nodiscard]] const std::vector<Buffer*>& buffers() const {
    return buffers_;
  }
  /// Arena offset of a local/private alloca.
  [[nodiscard]] std::int64_t allocaOffset(const ir::AllocaInst* a) const;
  /// The flat decoded instruction stream shared by all executors.
  [[nodiscard]] const DecodedKernel& decoded() const { return decoded_; }

 private:
  ir::Function& fn_;
  NDRange range_;
  unsigned num_slots_ = 0;
  std::uint64_t local_size_ = 0;
  std::uint64_t private_size_ = 0;
  std::vector<RtValue> arg_values_;
  std::vector<Buffer*> buffers_;
  std::unordered_map<const ir::AllocaInst*, std::int64_t> alloca_offsets_;
  DecodedKernel decoded_;
};

/// Executes work-groups of one launch by walking the pre-decoded stream.
/// Not thread-safe; use one per thread.
class GroupExecutor {
 public:
  explicit GroupExecutor(const KernelImage& image);

  /// Buffer receiving this executor's trace events; null disables tracing.
  /// The buffer is cleared and refilled by each runGroup call.
  void setTrace(GroupTrace* trace) { trace_ = trace; }

  /// Execute one work-group to completion (throws on barrier divergence,
  /// out-of-bounds access, or unsupported IR).
  void runGroup(const std::array<std::uint32_t, 3>& groupId);

  [[nodiscard]] const InstCounters& totalCounters() const {
    return total_counters_;
  }

 private:
  enum class WiStatus : std::uint8_t { Running, AtBarrier, Done };

  struct WorkItem {
    std::array<std::uint32_t, 3> localId{};
    std::uint32_t linear = 0;
    std::vector<RtValue> slots;
    std::vector<std::byte> privateArena;
    std::uint32_t pc = 0;
    WiStatus status = WiStatus::Running;
    std::uint32_t barrierAt = 0;  // pc of the barrier instruction reached
  };

  void resetWorkItem(WorkItem& wi);
  /// Run until the work-item hits a barrier or returns.
  void advance(WorkItem& wi);
  /// Perform an edge's phi moves (two-phase) and jump to its target.
  void takeEdge(WorkItem& wi, const DEdge& edge);

  [[nodiscard]] const RtValue& readRef(const WorkItem& wi, DRef ref) const {
    return ref >= 0 ? wi.slots[static_cast<std::size_t>(ref)]
                    : image_.decoded().constant(-ref - 1);
  }

  void execLoad(WorkItem& wi, const DInst& d, const PtrVal& ptr,
                RtValue& out);
  void execStore(WorkItem& wi, const DInst& d, const PtrVal& ptr,
                 const RtValue& value);
  std::byte* resolve(WorkItem& wi, const PtrVal& ptr, std::uint64_t size,
                     std::uint64_t& traceAddr);
  std::int64_t execIdQuery(WorkItem& wi, const DInst& d);
  void execMathCall(WorkItem& wi, const DInst& d, RtValue& out);

  const KernelImage& image_;
  GroupTrace* trace_ = nullptr;
  std::array<std::uint32_t, 3> group_{};
  std::uint32_t group_linear_ = 0;
  /// Fresh slot state with argument values pre-seeded; resetWorkItem
  /// restores a work-item's slots with one trivially-copyable assign.
  std::vector<RtValue> proto_slots_;
  std::vector<std::byte> local_arena_;
  std::vector<WorkItem> items_;
  std::vector<RtValue> phi_scratch_;
  InstCounters counters_;
  InstCounters total_counters_;
};

/// Top-level launch driver: executes every group, optionally multithreaded
/// or on a sampled subset of groups. With a trace sink attached, groups
/// still execute in parallel — each into its own GroupTrace buffer — and
/// the buffered events are replayed into the sink serially in dense group
/// order, so the sink observes the exact event sequence of a serial run no
/// matter how many threads executed.
class Launch {
 public:
  Launch(ir::Function& fn, const NDRange& range, std::vector<KernelArg> args);

  void setTraceSink(TraceSink* sink) { sink_ = sink; }
  /// Execute only every `stride`-th group (trace-based perf sampling).
  void setGroupSampling(std::uint32_t stride) { sample_stride_ = stride; }

  /// Run to completion; returns aggregate instruction counters.
  /// threads == 0 picks std::thread::hardware_concurrency().
  InstCounters run(unsigned threads = 1);

  [[nodiscard]] const KernelImage& image() const { return image_; }
  /// Groups selected by the sampling stride, in dense (replay) order.
  [[nodiscard]] std::vector<std::array<std::uint32_t, 3>> sampledGroups()
      const;

 private:
  InstCounters runTraced(
      const std::vector<std::array<std::uint32_t, 3>>& groups,
      unsigned threads);

  KernelImage image_;
  TraceSink* sink_ = nullptr;
  std::uint32_t sample_stride_ = 1;
};

}  // namespace grover::rt
