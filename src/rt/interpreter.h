// The NDRange execution engine: interprets kernels in SSA form with OpenCL
// work-group/barrier semantics. Work-items of a group execute on one thread
// in barrier-region order — the same mapping Intel's CPU runtime uses
// (paper ref [2]) — so the memory trace order matches what the CPU
// performance models assume. Work-groups can run in parallel when no trace
// sink is attached.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <variant>
#include <vector>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "rt/buffer.h"
#include "rt/ndrange.h"
#include "rt/trace.h"
#include "rt/value.h"

namespace grover::rt {

/// One kernel argument: a buffer (for pointer params) or a scalar.
struct KernelArg {
  static KernelArg buffer(Buffer* b) {
    KernelArg a;
    a.value = b;
    return a;
  }
  static KernelArg int32(std::int32_t v) {
    KernelArg a;
    a.value = static_cast<std::int64_t>(v);
    return a;
  }
  static KernelArg float32(float v) {
    KernelArg a;
    a.value = static_cast<double>(v);
    return a;
  }
  std::variant<Buffer*, std::int64_t, double> value;
};

/// Immutable, shareable pre-computation for one kernel launch: value slot
/// count, local/private arena layouts, and bound argument values.
class KernelImage {
 public:
  KernelImage(ir::Function& fn, const NDRange& range,
              const std::vector<KernelArg>& args);

  [[nodiscard]] ir::Function& function() const { return fn_; }
  [[nodiscard]] const NDRange& range() const { return range_; }
  [[nodiscard]] unsigned numSlots() const { return num_slots_; }
  [[nodiscard]] std::uint64_t localArenaSize() const { return local_size_; }
  [[nodiscard]] std::uint64_t privateArenaSize() const {
    return private_size_;
  }
  [[nodiscard]] const std::vector<RtValue>& argValues() const {
    return arg_values_;
  }
  [[nodiscard]] const std::vector<Buffer*>& buffers() const {
    return buffers_;
  }
  /// Arena offset of a local/private alloca.
  [[nodiscard]] std::int64_t allocaOffset(const ir::AllocaInst* a) const;

 private:
  ir::Function& fn_;
  NDRange range_;
  unsigned num_slots_ = 0;
  std::uint64_t local_size_ = 0;
  std::uint64_t private_size_ = 0;
  std::vector<RtValue> arg_values_;
  std::vector<Buffer*> buffers_;
  std::unordered_map<const ir::AllocaInst*, std::int64_t> alloca_offsets_;
};

/// Executes work-groups of one launch. Not thread-safe; use one per thread.
class GroupExecutor {
 public:
  explicit GroupExecutor(const KernelImage& image, TraceSink* sink = nullptr);

  /// Execute one work-group to completion (throws on barrier divergence,
  /// out-of-bounds access, or unsupported IR).
  void runGroup(const std::array<std::uint32_t, 3>& groupId);

  [[nodiscard]] const InstCounters& totalCounters() const {
    return total_counters_;
  }

 private:
  enum class WiStatus : std::uint8_t { Running, AtBarrier, Done };

  struct WorkItem {
    std::array<std::uint32_t, 3> localId{};
    std::uint32_t linear = 0;
    std::vector<RtValue> slots;
    std::vector<std::byte> privateArena;
    ir::BasicBlock* block = nullptr;
    ir::BasicBlock::const_iterator ip;
    WiStatus status = WiStatus::Running;
    const ir::Instruction* barrierAt = nullptr;
  };

  void resetWorkItem(WorkItem& wi);
  /// Run until the work-item hits a barrier or returns.
  void advance(WorkItem& wi);
  /// Execute one non-control-flow instruction.
  void exec(WorkItem& wi, const ir::Instruction* inst);
  void enterBlock(WorkItem& wi, ir::BasicBlock* from, ir::BasicBlock* to);

  RtValue& slot(WorkItem& wi, const ir::Value* v);
  RtValue eval(WorkItem& wi, const ir::Value* v);

  RtValue loadFrom(WorkItem& wi, const PtrVal& ptr, const ir::Type* type,
                   std::uint32_t instSlot);
  void storeTo(WorkItem& wi, const PtrVal& ptr, const ir::Type* type,
               const RtValue& value, std::uint32_t instSlot);
  std::byte* resolve(WorkItem& wi, const PtrVal& ptr, std::uint64_t size,
                     std::uint64_t& traceAddr);

  RtValue evalBinary(const ir::BinaryInst* bin, const RtValue& l,
                     const RtValue& r);
  RtValue evalCall(WorkItem& wi, const ir::CallInst* call);

  const KernelImage& image_;
  TraceSink* sink_;
  std::array<std::uint32_t, 3> group_{};
  std::uint32_t group_linear_ = 0;
  std::vector<std::byte> local_arena_;
  std::vector<WorkItem> items_;
  InstCounters counters_;
  InstCounters total_counters_;
};

/// Top-level launch driver: executes every group, optionally multithreaded
/// (only when no trace sink is attached) or on a sampled subset of groups.
class Launch {
 public:
  Launch(ir::Function& fn, const NDRange& range, std::vector<KernelArg> args);

  /// Trace sink (forces sequential in-order execution).
  void setTraceSink(TraceSink* sink) { sink_ = sink; }
  /// Execute only every `stride`-th group (trace-based perf sampling).
  void setGroupSampling(std::uint32_t stride) { sample_stride_ = stride; }

  /// Run to completion; returns aggregate instruction counters.
  InstCounters run(unsigned threads = 1);

 private:
  KernelImage image_;
  TraceSink* sink_ = nullptr;
  std::uint32_t sample_stride_ = 1;
};

}  // namespace grover::rt
