// NDRange: the OpenCL work-item index space.
#pragma once

#include <array>
#include <cstdint>

#include "support/diagnostics.h"

namespace grover::rt {

/// Global and work-group sizes for up to 3 dimensions. Global sizes must be
/// divisible by the corresponding local sizes (core OpenCL 1.x rule).
struct NDRange {
  unsigned dims = 1;
  std::array<std::uint32_t, 3> global{1, 1, 1};
  std::array<std::uint32_t, 3> local{1, 1, 1};

  static NDRange make1D(std::uint32_t globalX, std::uint32_t localX) {
    NDRange r;
    r.dims = 1;
    r.global = {globalX, 1, 1};
    r.local = {localX, 1, 1};
    r.validate();
    return r;
  }
  static NDRange make2D(std::uint32_t gx, std::uint32_t gy, std::uint32_t lx,
                        std::uint32_t ly) {
    NDRange r;
    r.dims = 2;
    r.global = {gx, gy, 1};
    r.local = {lx, ly, 1};
    r.validate();
    return r;
  }

  void validate() const {
    for (unsigned d = 0; d < 3; ++d) {
      if (local[d] == 0 || global[d] == 0 ||
          global[d] % local[d] != 0) {
        throw GroverError("NDRange: global size not divisible by local size");
      }
    }
  }

  [[nodiscard]] std::array<std::uint32_t, 3> numGroups() const {
    return {global[0] / local[0], global[1] / local[1],
            global[2] / local[2]};
  }
  [[nodiscard]] std::uint64_t totalGroups() const {
    const auto n = numGroups();
    return std::uint64_t{n[0]} * n[1] * n[2];
  }
  [[nodiscard]] std::uint32_t groupSize() const {
    return local[0] * local[1] * local[2];
  }
  [[nodiscard]] std::uint64_t totalWorkItems() const {
    return std::uint64_t{global[0]} * global[1] * global[2];
  }
};

}  // namespace grover::rt
