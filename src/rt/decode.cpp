#include "rt/decode.h"

#include "ir/basic_block.h"
#include "ir/casting.h"
#include "support/diagnostics.h"

namespace grover::rt {

using namespace ir;

namespace {

RtValue undefValue(const Type* t) {
  if (t->isVector()) {
    return t->element()->isFloatingPoint()
               ? RtValue::ofVecFloat(static_cast<std::uint8_t>(t->lanes()))
               : RtValue::ofVecInt(static_cast<std::uint8_t>(t->lanes()));
  }
  if (t->isFloatingPoint()) return RtValue::ofFloat(0.0);
  return RtValue::ofInt(0);
}

bool isIdQuery(Builtin b) {
  switch (b) {
    case Builtin::GetGlobalId:
    case Builtin::GetLocalId:
    case Builtin::GetGroupId:
    case Builtin::GetGlobalSize:
    case Builtin::GetLocalSize:
    case Builtin::GetNumGroups:
    case Builtin::GetWorkDim:
      return true;
    default:
      return false;
  }
}

/// Operands a math builtin reads at execution time (seed interpreter order).
unsigned mathArgCount(Builtin b) {
  switch (b) {
    case Builtin::Sqrt:
    case Builtin::RSqrt:
    case Builtin::Fabs:
    case Builtin::Exp:
    case Builtin::Log:
    case Builtin::Sin:
    case Builtin::Cos:
    case Builtin::Floor:
    case Builtin::Ceil:
    case Builtin::IAbs:
      return 1;
    case Builtin::Pow:
    case Builtin::FMin:
    case Builtin::FMax:
    case Builtin::IMin:
    case Builtin::IMax:
    case Builtin::Mul24:
    case Builtin::Dot:
      return 2;
    case Builtin::Fma:
    case Builtin::Mad:
    case Builtin::Mad24:
    case Builtin::Clamp:
      return 3;
    default:
      return 0;
  }
}

}  // namespace

DecodedKernel DecodedKernel::build(
    const ir::Function& fn,
    const std::unordered_map<const ir::AllocaInst*, std::int64_t>&
        allocaOffsets) {
  DecodedKernel dk;

  std::unordered_map<const Value*, DRef> constCache;
  auto poolValue = [&dk](const RtValue& v) -> DRef {
    dk.constants_.push_back(v);
    return -static_cast<DRef>(dk.constants_.size());
  };
  auto refFor = [&](const Value* v) -> DRef {
    if (v->isConstant()) {
      auto it = constCache.find(v);
      if (it != constCache.end()) return it->second;
      RtValue rv;
      switch (v->kind()) {
        case ValueKind::ConstantInt:
          rv = RtValue::ofInt(cast<ConstantInt>(v)->value());
          break;
        case ValueKind::ConstantFloat:
          rv = RtValue::ofFloat(cast<ConstantFloat>(v)->value());
          break;
        default:
          rv = undefValue(v->type());
          break;
      }
      const DRef ref = poolValue(rv);
      constCache.emplace(v, ref);
      return ref;
    }
    return static_cast<DRef>(v->slot());
  };

  auto messageIndex = [&dk](std::string msg) -> std::int64_t {
    dk.messages_.push_back(std::move(msg));
    return static_cast<std::int64_t>(dk.messages_.size() - 1);
  };
  auto makeTrap = [&](std::string msg) -> DInst {
    DInst d;
    d.op = DOp::Trap;
    d.imm = messageIndex(std::move(msg));
    return d;
  };

  /// Load/store shape; false if the scalar kind is not interpretable (the
  /// executed Trap then reproduces the seed's runtime error message).
  auto decodeMemShape = [](DInst& d, const Type* t) -> bool {
    d.memSize = static_cast<std::uint32_t>(t->sizeInBytes());
    const Type* scalar = t->isVector() ? t->element() : t;
    switch (scalar->kind()) {
      case TypeKind::Bool:
      case TypeKind::Int32:
      case TypeKind::Int64:
      case TypeKind::Float:
      case TypeKind::Double:
        break;
      default:
        return false;
    }
    d.tkind = scalar->kind();
    if (t->isVector()) {
      d.lanes = static_cast<std::uint8_t>(t->lanes());
      d.elemSize = static_cast<std::uint32_t>(scalar->sizeInBytes());
      d.elemIsFloat = scalar->isFloatingPoint();
    } else {
      d.lanes = 0;
      d.elemSize = d.memSize;
      d.elemIsFloat = scalar->isFloatingPoint();
    }
    return true;
  };

  const std::vector<BasicBlock*> blocks = fn.blockList();
  std::unordered_map<const BasicBlock*, std::uint32_t> blockPc;
  struct PendingEdge {
    std::size_t codeIdx;
    int which;  // 0 = imm (Br), 1 = b (true), 2 = c (false)
    const BasicBlock* from;
    const BasicBlock* to;
  };
  std::vector<PendingEdge> pendingEdges;

  for (const BasicBlock* bb : blocks) {
    blockPc[bb] = static_cast<std::uint32_t>(dk.code_.size());
    // enterBlock skips head phis; the entry block is entered directly, so a
    // phi there executes (and faults) like any other stray phi.
    bool pastPhis = bb == fn.entry();
    for (const auto& owned : *bb) {
      const Instruction* inst = owned.get();
      if (!pastPhis && isa<PhiInst>(inst)) continue;
      pastPhis = true;

      DInst d;
      switch (inst->kind()) {
        case ValueKind::InstAlloca: {
          const auto* alloca = cast<AllocaInst>(inst);
          auto it = allocaOffsets.find(alloca);
          if (it == allocaOffsets.end()) {
            d = makeTrap("alloca outside the entry block is unsupported");
            break;
          }
          PtrVal ptr;
          ptr.space = alloca->space();
          ptr.offset = it->second;
          d.op = DOp::Alloca;
          d.dest = static_cast<DRef>(inst->slot());
          d.a = poolValue(RtValue::ofPtr(ptr));
          break;
        }
        case ValueKind::InstGep: {
          const auto* gep = cast<GepInst>(inst);
          d.op = DOp::Gep;
          d.dest = static_cast<DRef>(inst->slot());
          d.a = refFor(gep->pointer());
          d.b = refFor(gep->index());
          d.elemSize = static_cast<std::uint32_t>(
              gep->type()->element()->sizeInBytes());
          break;
        }
        case ValueKind::InstLoad: {
          const auto* load = cast<LoadInst>(inst);
          const Type* t = load->type();
          if (!decodeMemShape(d, t)) {
            const Type* scalar = t->isVector() ? t->element() : t;
            d = makeTrap("load of unsupported type " + scalar->str());
            break;
          }
          d.op = DOp::Load;
          d.dest = static_cast<DRef>(inst->slot());
          d.a = refFor(load->pointer());
          d.instSlot = inst->slot();
          break;
        }
        case ValueKind::InstStore: {
          const auto* store = cast<StoreInst>(inst);
          const Type* t = store->value()->type();
          if (!decodeMemShape(d, t)) {
            const Type* scalar = t->isVector() ? t->element() : t;
            d = makeTrap("store of unsupported type " + scalar->str());
            break;
          }
          d.op = DOp::Store;
          d.a = refFor(store->value());
          d.b = refFor(store->pointer());
          d.instSlot = inst->slot();
          break;
        }
        case ValueKind::InstBinary: {
          const auto* bin = cast<BinaryInst>(inst);
          const Type* t = bin->type();
          const bool fp = isFloatOp(bin->op());
          if (t->isVector()) {
            d.op = fp ? DOp::BinVecFloat : DOp::BinVecInt;
            d.tkind = t->element()->kind();
            d.lanes = static_cast<std::uint8_t>(t->lanes());
          } else {
            d.op = fp ? DOp::BinFloat : DOp::BinInt;
            d.tkind = t->kind();
          }
          d.sub = static_cast<std::uint8_t>(bin->op());
          d.dest = static_cast<DRef>(inst->slot());
          d.a = refFor(bin->lhs());
          d.b = refFor(bin->rhs());
          break;
        }
        case ValueKind::InstICmp: {
          const auto* cmp = cast<ICmpInst>(inst);
          if (cmp->pred() > CmpPred::UGE) {
            d = makeTrap("bad icmp predicate");
            break;
          }
          d.op = DOp::ICmp;
          d.sub = static_cast<std::uint8_t>(cmp->pred());
          d.dest = static_cast<DRef>(inst->slot());
          d.a = refFor(cmp->lhs());
          d.b = refFor(cmp->rhs());
          break;
        }
        case ValueKind::InstFCmp: {
          const auto* cmp = cast<FCmpInst>(inst);
          if (cmp->pred() < CmpPred::OEQ) {
            d = makeTrap("bad fcmp predicate");
            break;
          }
          d.op = DOp::FCmp;
          d.sub = static_cast<std::uint8_t>(cmp->pred());
          d.dest = static_cast<DRef>(inst->slot());
          d.a = refFor(cmp->lhs());
          d.b = refFor(cmp->rhs());
          break;
        }
        case ValueKind::InstCast: {
          const auto* cst = cast<CastInst>(inst);
          d.op = DOp::Cast;
          d.sub = static_cast<std::uint8_t>(cst->op());
          d.tkind = cst->type()->kind();
          d.srcKind = cst->value()->type()->kind();
          d.dest = static_cast<DRef>(inst->slot());
          d.a = refFor(cst->value());
          break;
        }
        case ValueKind::InstSelect: {
          const auto* sel = cast<SelectInst>(inst);
          d.op = DOp::Select;
          d.dest = static_cast<DRef>(inst->slot());
          d.a = refFor(sel->condition());
          d.b = refFor(sel->ifTrue());
          d.c = refFor(sel->ifFalse());
          break;
        }
        case ValueKind::InstPhi:
          d = makeTrap("phi executed outside block entry");
          break;
        case ValueKind::InstCall: {
          const auto* call = cast<CallInst>(inst);
          const Builtin b = call->builtin();
          if (b == Builtin::Barrier) {
            d.op = DOp::Barrier;
            break;
          }
          if (isIdQuery(b)) {
            if (b != Builtin::GetWorkDim && call->numArgs() == 0) {
              d = makeTrap("operand index out of range");
              break;
            }
            d.op = DOp::IdQuery;
            d.sub = static_cast<std::uint8_t>(b);
            d.dest = static_cast<DRef>(inst->slot());
            if (call->numArgs() > 0) d.a = refFor(call->arg(0));
            break;
          }
          const unsigned needed = mathArgCount(b);
          if (needed == 0) {
            d = makeTrap("unsupported builtin call");
            break;
          }
          if (call->numArgs() < needed) {
            d = makeTrap("operand index out of range");
            break;
          }
          d.op = DOp::MathCall;
          d.sub = static_cast<std::uint8_t>(b);
          d.tkind = call->type()->kind();
          d.dest = static_cast<DRef>(inst->slot());
          d.a = refFor(call->arg(0));
          if (needed > 1) d.b = refFor(call->arg(1));
          if (needed > 2) d.c = refFor(call->arg(2));
          break;
        }
        case ValueKind::InstBr: {
          d.op = DOp::Br;
          pendingEdges.push_back({dk.code_.size(), 0, bb,
                                  cast<BrInst>(inst)->dest()});
          break;
        }
        case ValueKind::InstCondBr: {
          const auto* br = cast<CondBrInst>(inst);
          d.op = DOp::CondBr;
          d.a = refFor(br->condition());
          pendingEdges.push_back({dk.code_.size(), 1, bb, br->ifTrue()});
          pendingEdges.push_back({dk.code_.size(), 2, bb, br->ifFalse()});
          break;
        }
        case ValueKind::InstRet:
          d.op = DOp::Ret;
          break;
        case ValueKind::InstExtractElement: {
          const auto* ext = cast<ExtractElementInst>(inst);
          d.op = DOp::ExtractElement;
          d.dest = static_cast<DRef>(inst->slot());
          d.a = refFor(ext->vector());
          d.b = refFor(ext->index());
          break;
        }
        case ValueKind::InstInsertElement: {
          const auto* ins = cast<InsertElementInst>(inst);
          const Type* t = ins->type();
          d.op = DOp::InsertElement;
          d.dest = static_cast<DRef>(inst->slot());
          d.a = refFor(ins->vector());
          d.b = refFor(ins->scalar());
          d.c = refFor(ins->index());
          d.lanes = static_cast<std::uint8_t>(t->lanes());
          d.elemIsFloat = t->element()->isFloatingPoint();
          break;
        }
        default:
          d = makeTrap("unsupported instruction in interpreter: " +
                       inst->opcodeName());
          break;
      }
      dk.code_.push_back(d);
    }
    // A block whose instruction list does not end in a terminator runs off
    // its end at execution time, exactly as the tree-walking interpreter
    // reported it.
    if (bb->empty() || !bb->terminator()->isTerminator()) {
      dk.code_.push_back(makeTrap("fell off the end of a basic block"));
    }
  }

  // Resolve branch edges and their phi moves. A malformed edge (phi without
  // an incoming value for the predecessor) is deferred to execution time by
  // routing the edge to a trap stub, matching the seed's runtime error.
  for (const PendingEdge& pe : pendingEdges) {
    DEdge edge;
    edge.phiBegin = static_cast<std::uint32_t>(dk.phi_copies_.size());
    edge.targetPc = blockPc.at(pe.to);
    try {
      for (const PhiInst* phi : pe.to->phis()) {
        dk.phi_copies_.push_back(
            {static_cast<std::int32_t>(phi->slot()),
             refFor(phi->incomingForBlock(pe.from))});
      }
    } catch (const GroverError& e) {
      dk.phi_copies_.resize(edge.phiBegin);
      edge.targetPc = static_cast<std::uint32_t>(dk.code_.size());
      dk.code_.push_back(makeTrap(e.what()));
    }
    edge.phiEnd = static_cast<std::uint32_t>(dk.phi_copies_.size());
    for (std::uint32_t i = edge.phiBegin; !edge.phiOverlap && i < edge.phiEnd;
         ++i) {
      for (std::uint32_t j = edge.phiBegin; j < edge.phiEnd; ++j) {
        if (dk.phi_copies_[j].src == dk.phi_copies_[i].dest) {
          edge.phiOverlap = true;
          break;
        }
      }
    }
    const auto edgeIndex = static_cast<std::int64_t>(dk.edges_.size());
    dk.edges_.push_back(edge);
    DInst& site = dk.code_[pe.codeIdx];
    if (pe.which == 0) {
      site.imm = edgeIndex;
    } else if (pe.which == 1) {
      site.b = static_cast<DRef>(edgeIndex);
    } else {
      site.c = static_cast<DRef>(edgeIndex);
    }
  }

  if (fn.entry() != nullptr) dk.entry_pc_ = blockPc.at(fn.entry());
  return dk;
}

}  // namespace grover::rt
