#include "rt/ref_interpreter.h"

#include <cmath>
#include <cstring>

#include "ir/casting.h"
#include "support/diagnostics.h"
#include "support/str.h"

namespace grover::rt {

using namespace ir;

ReferenceExecutor::ReferenceExecutor(const KernelImage& image, TraceSink* sink)
    : image_(image), sink_(sink) {
  local_arena_.resize(image.localArenaSize());
  items_.resize(image.range().groupSize());
}

void ReferenceExecutor::resetWorkItem(WorkItem& wi) {
  wi.slots.assign(image_.numSlots(), RtValue{});
  wi.privateArena.assign(image_.privateArenaSize(), std::byte{0});
  wi.block = image_.function().entry();
  wi.ip = wi.block->begin();
  wi.status = WiStatus::Running;
  wi.barrierAt = nullptr;
  // Seed argument slots.
  const auto& argValues = image_.argValues();
  for (unsigned i = 0; i < argValues.size(); ++i) {
    wi.slots[image_.function().arg(i)->slot()] = argValues[i];
  }
}

void ReferenceExecutor::runGroup(const std::array<std::uint32_t, 3>& groupId) {
  group_ = groupId;
  const auto numGroups = image_.range().numGroups();
  group_linear_ =
      groupId[0] + numGroups[0] * (groupId[1] + numGroups[1] * groupId[2]);
  std::fill(local_arena_.begin(), local_arena_.end(), std::byte{0});
  counters_ = InstCounters{};

  const NDRange& range = image_.range();
  std::uint32_t linear = 0;
  for (std::uint32_t lz = 0; lz < range.local[2]; ++lz) {
    for (std::uint32_t ly = 0; ly < range.local[1]; ++ly) {
      for (std::uint32_t lx = 0; lx < range.local[0]; ++lx) {
        WorkItem& wi = items_[linear];
        wi.localId = {lx, ly, lz};
        wi.linear = linear;
        resetWorkItem(wi);
        ++linear;
      }
    }
  }

  for (;;) {
    for (WorkItem& wi : items_) {
      if (wi.status == WiStatus::Running) advance(wi);
    }
    std::size_t done = 0;
    std::size_t atBarrier = 0;
    const ir::Instruction* barrierInst = nullptr;
    for (const WorkItem& wi : items_) {
      if (wi.status == WiStatus::Done) {
        ++done;
      } else {
        ++atBarrier;
        if (barrierInst == nullptr) {
          barrierInst = wi.barrierAt;
        } else if (barrierInst != wi.barrierAt) {
          throw GroverError(
              "barrier divergence: work-items stopped at different barriers");
        }
      }
    }
    if (atBarrier == 0) break;
    if (done != 0) {
      throw GroverError(
          "barrier divergence: some work-items returned while others wait");
    }
    if (sink_ != nullptr) sink_->onBarrier(group_linear_);
    for (WorkItem& wi : items_) wi.status = WiStatus::Running;
  }

  if (sink_ != nullptr) sink_->onGroupFinish(group_linear_, counters_);
  total_counters_ += counters_;
}

RtValue& ReferenceExecutor::slot(WorkItem& wi, const ir::Value* v) {
  return wi.slots[v->slot()];
}

RtValue ReferenceExecutor::eval(WorkItem& wi, const ir::Value* v) {
  switch (v->kind()) {
    case ValueKind::ConstantInt:
      return RtValue::ofInt(cast<ConstantInt>(v)->value());
    case ValueKind::ConstantFloat:
      return RtValue::ofFloat(cast<ConstantFloat>(v)->value());
    case ValueKind::ConstantUndef: {
      const Type* t = v->type();
      if (t->isVector()) {
        return t->element()->isFloatingPoint()
                   ? RtValue::ofVecFloat(static_cast<std::uint8_t>(t->lanes()))
                   : RtValue::ofVecInt(static_cast<std::uint8_t>(t->lanes()));
      }
      if (t->isFloatingPoint()) return RtValue::ofFloat(0.0);
      return RtValue::ofInt(0);
    }
    default:
      return wi.slots[v->slot()];
  }
}

void ReferenceExecutor::enterBlock(WorkItem& wi, ir::BasicBlock* from,
                                   ir::BasicBlock* to) {
  // Two-phase phi evaluation: read all incoming values w.r.t. `from`
  // before writing any phi slot.
  std::vector<std::pair<const PhiInst*, RtValue>> pending;
  for (const PhiInst* phi : to->phis()) {
    pending.emplace_back(phi, eval(wi, phi->incomingForBlock(from)));
  }
  for (auto& [phi, value] : pending) {
    wi.slots[phi->slot()] = value;
  }
  counters_.other += pending.size();
  wi.block = to;
  wi.ip = to->begin();
  // Skip the phis (already evaluated).
  while (wi.ip != to->end() && isa<PhiInst>(wi.ip->get())) ++wi.ip;
}

void ReferenceExecutor::advance(WorkItem& wi) {
  for (;;) {
    if (wi.ip == wi.block->end()) {
      throw GroverError("fell off the end of a basic block");
    }
    const Instruction* inst = wi.ip->get();
    switch (inst->kind()) {
      case ValueKind::InstBr: {
        counters_.branch += 1;
        BasicBlock* from = wi.block;
        enterBlock(wi, from, cast<BrInst>(inst)->dest());
        continue;
      }
      case ValueKind::InstCondBr: {
        counters_.branch += 1;
        const auto* br = cast<CondBrInst>(inst);
        const bool taken = eval(wi, br->condition()).i != 0;
        BasicBlock* from = wi.block;
        enterBlock(wi, from, taken ? br->ifTrue() : br->ifFalse());
        continue;
      }
      case ValueKind::InstRet:
        wi.status = WiStatus::Done;
        return;
      case ValueKind::InstCall: {
        const auto* call = cast<CallInst>(inst);
        if (call->builtin() == Builtin::Barrier) {
          counters_.barrier += 1;
          wi.status = WiStatus::AtBarrier;
          wi.barrierAt = inst;
          ++wi.ip;
          return;
        }
        slot(wi, inst) = evalCall(wi, call);
        ++wi.ip;
        continue;
      }
      default:
        exec(wi, inst);
        ++wi.ip;
        continue;
    }
  }
}

std::byte* ReferenceExecutor::resolve(WorkItem& wi, const PtrVal& ptr,
                                      std::uint64_t size,
                                      std::uint64_t& traceAddr) {
  switch (ptr.space) {
    case AddrSpace::Global:
    case AddrSpace::Constant: {
      Buffer* buffer = image_.buffers().at(ptr.base);
      if (ptr.offset < 0 ||
          static_cast<std::uint64_t>(ptr.offset) + size > buffer->size()) {
        throw GroverError(cat("out-of-bounds ", toString(ptr.space),
                              " access at offset ", ptr.offset, " size ", size,
                              " (buffer ", buffer->size(), " bytes)"));
      }
      traceAddr = bufferBaseAddress(ptr.base) +
                  static_cast<std::uint64_t>(ptr.offset);
      return buffer->data() + ptr.offset;
    }
    case AddrSpace::Local: {
      if (ptr.offset < 0 ||
          static_cast<std::uint64_t>(ptr.offset) + size > local_arena_.size()) {
        throw GroverError(cat("out-of-bounds local access at offset ",
                              ptr.offset));
      }
      traceAddr = static_cast<std::uint64_t>(ptr.offset);
      return local_arena_.data() + ptr.offset;
    }
    case AddrSpace::Private: {
      if (ptr.offset < 0 || static_cast<std::uint64_t>(ptr.offset) + size >
                                wi.privateArena.size()) {
        throw GroverError("out-of-bounds private access");
      }
      traceAddr = static_cast<std::uint64_t>(ptr.offset);
      return wi.privateArena.data() + ptr.offset;
    }
  }
  throw GroverError("bad address space");
}

RtValue ReferenceExecutor::loadFrom(WorkItem& wi, const PtrVal& ptr,
                                    const ir::Type* type,
                                    std::uint32_t instSlot) {
  const std::uint64_t size = type->sizeInBytes();
  std::uint64_t traceAddr = 0;
  const std::byte* mem = resolve(wi, ptr, size, traceAddr);
  if (sink_ != nullptr) {
    sink_->onAccess({ptr.space, traceAddr, static_cast<std::uint32_t>(size),
                     false, group_linear_, wi.linear, instSlot});
  }
  auto readScalar = [&](const ir::Type* t, const std::byte* p) -> RtValue {
    switch (t->kind()) {
      case TypeKind::Bool:
        return RtValue::ofInt(static_cast<std::uint8_t>(*p) != 0 ? 1 : 0);
      case TypeKind::Int32: {
        std::int32_t v;
        std::memcpy(&v, p, 4);
        return RtValue::ofInt(v);
      }
      case TypeKind::Int64: {
        std::int64_t v;
        std::memcpy(&v, p, 8);
        return RtValue::ofInt(v);
      }
      case TypeKind::Float: {
        float v;
        std::memcpy(&v, p, 4);
        return RtValue::ofFloat(v);
      }
      case TypeKind::Double: {
        double v;
        std::memcpy(&v, p, 8);
        return RtValue::ofFloat(v);
      }
      default:
        throw GroverError("load of unsupported type " + t->str());
    }
  };
  if (!type->isVector()) return readScalar(type, mem);
  const Type* elem = type->element();
  const std::uint64_t elemSize = elem->sizeInBytes();
  RtValue out = elem->isFloatingPoint()
                    ? RtValue::ofVecFloat(static_cast<std::uint8_t>(type->lanes()))
                    : RtValue::ofVecInt(static_cast<std::uint8_t>(type->lanes()));
  for (unsigned lane = 0; lane < type->lanes(); ++lane) {
    RtValue v = readScalar(elem, mem + lane * elemSize);
    if (out.kind == RtValue::Kind::VecFloat) {
      out.vf[lane] = v.f;
    } else {
      out.vi[lane] = v.i;
    }
  }
  return out;
}

void ReferenceExecutor::storeTo(WorkItem& wi, const PtrVal& ptr,
                                const ir::Type* type, const RtValue& value,
                                std::uint32_t instSlot) {
  const std::uint64_t size = type->sizeInBytes();
  std::uint64_t traceAddr = 0;
  std::byte* mem = resolve(wi, ptr, size, traceAddr);
  if (sink_ != nullptr) {
    sink_->onAccess({ptr.space, traceAddr, static_cast<std::uint32_t>(size),
                     true, group_linear_, wi.linear, instSlot});
  }
  auto writeScalar = [&](const ir::Type* t, std::byte* p, std::int64_t i,
                         double f) {
    switch (t->kind()) {
      case TypeKind::Bool: {
        const std::uint8_t v = i != 0 ? 1 : 0;
        std::memcpy(p, &v, 1);
        return;
      }
      case TypeKind::Int32: {
        const auto v = static_cast<std::int32_t>(i);
        std::memcpy(p, &v, 4);
        return;
      }
      case TypeKind::Int64:
        std::memcpy(p, &i, 8);
        return;
      case TypeKind::Float: {
        const auto v = static_cast<float>(f);
        std::memcpy(p, &v, 4);
        return;
      }
      case TypeKind::Double:
        std::memcpy(p, &f, 8);
        return;
      default:
        throw GroverError("store of unsupported type " + t->str());
    }
  };
  if (!type->isVector()) {
    writeScalar(type, mem, value.i, value.f);
    return;
  }
  const Type* elem = type->element();
  const std::uint64_t elemSize = elem->sizeInBytes();
  for (unsigned lane = 0; lane < type->lanes(); ++lane) {
    writeScalar(elem, mem + lane * elemSize, value.vi[lane], value.vf[lane]);
  }
}

namespace {

std::int64_t finalizeInt(const ir::Type* t, std::int64_t v) {
  switch (t->kind()) {
    case TypeKind::Bool:
      return v & 1;
    case TypeKind::Int32:
      return static_cast<std::int32_t>(v);
    default:
      return v;
  }
}

std::int64_t intOp(BinaryOp op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case BinaryOp::Add: return a + b;
    case BinaryOp::Sub: return a - b;
    case BinaryOp::Mul: return a * b;
    case BinaryOp::SDiv: return b == 0 ? 0 : a / b;
    case BinaryOp::SRem: return b == 0 ? 0 : a % b;
    case BinaryOp::Shl: return a << (b & 63);
    case BinaryOp::AShr: return a >> (b & 63);
    case BinaryOp::LShr:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >>
                                       (b & 63));
    case BinaryOp::And: return a & b;
    case BinaryOp::Or: return a | b;
    case BinaryOp::Xor: return a ^ b;
    default:
      throw GroverError("intOp: bad opcode");
  }
}

double floatOp(BinaryOp op, double a, double b, bool single) {
  if (single) {
    const float fa = static_cast<float>(a);
    const float fb = static_cast<float>(b);
    switch (op) {
      case BinaryOp::FAdd: return fa + fb;
      case BinaryOp::FSub: return fa - fb;
      case BinaryOp::FMul: return fa * fb;
      case BinaryOp::FDiv: return fa / fb;
      default: break;
    }
  } else {
    switch (op) {
      case BinaryOp::FAdd: return a + b;
      case BinaryOp::FSub: return a - b;
      case BinaryOp::FMul: return a * b;
      case BinaryOp::FDiv: return a / b;
      default: break;
    }
  }
  throw GroverError("floatOp: bad opcode");
}

}  // namespace

RtValue ReferenceExecutor::evalBinary(const ir::BinaryInst* bin,
                                      const RtValue& l, const RtValue& r) {
  const Type* t = bin->type();
  if (t->isVector()) {
    const Type* elem = t->element();
    if (isFloatOp(bin->op())) {
      RtValue out = RtValue::ofVecFloat(static_cast<std::uint8_t>(t->lanes()));
      const bool single = elem->kind() == TypeKind::Float;
      for (unsigned i = 0; i < t->lanes(); ++i) {
        out.vf[i] = floatOp(bin->op(), l.vf[i], r.vf[i], single);
      }
      return out;
    }
    RtValue out = RtValue::ofVecInt(static_cast<std::uint8_t>(t->lanes()));
    for (unsigned i = 0; i < t->lanes(); ++i) {
      out.vi[i] = finalizeInt(elem, intOp(bin->op(), l.vi[i], r.vi[i]));
    }
    return out;
  }
  if (isFloatOp(bin->op())) {
    return RtValue::ofFloat(
        floatOp(bin->op(), l.f, r.f, t->kind() == TypeKind::Float));
  }
  // Pointer arithmetic never reaches BinaryInst (GEP handles it).
  return RtValue::ofInt(finalizeInt(t, intOp(bin->op(), l.i, r.i)));
}

RtValue ReferenceExecutor::evalCall(WorkItem& wi, const ir::CallInst* call) {
  const NDRange& range = image_.range();
  auto dimArg = [&](unsigned i) -> unsigned {
    const std::int64_t d = eval(wi, call->arg(i)).i;
    return d >= 0 && d < 3 ? static_cast<unsigned>(d) : 3;
  };
  switch (call->builtin()) {
    case Builtin::GetGlobalId: {
      const unsigned d = dimArg(0);
      counters_.other += 1;
      if (d >= 3) return RtValue::ofInt(0);
      return RtValue::ofInt(std::int64_t{group_[d]} * range.local[d] +
                            wi.localId[d]);
    }
    case Builtin::GetLocalId: {
      const unsigned d = dimArg(0);
      counters_.other += 1;
      return RtValue::ofInt(d < 3 ? wi.localId[d] : 0);
    }
    case Builtin::GetGroupId: {
      const unsigned d = dimArg(0);
      counters_.other += 1;
      return RtValue::ofInt(d < 3 ? group_[d] : 0);
    }
    case Builtin::GetGlobalSize: {
      const unsigned d = dimArg(0);
      counters_.other += 1;
      return RtValue::ofInt(d < 3 ? range.global[d] : 1);
    }
    case Builtin::GetLocalSize: {
      const unsigned d = dimArg(0);
      counters_.other += 1;
      return RtValue::ofInt(d < 3 ? range.local[d] : 1);
    }
    case Builtin::GetNumGroups: {
      const unsigned d = dimArg(0);
      counters_.other += 1;
      return RtValue::ofInt(d < 3 ? range.numGroups()[d] : 1);
    }
    case Builtin::GetWorkDim:
      counters_.other += 1;
      return RtValue::ofInt(range.dims);
    case Builtin::Barrier:
      throw GroverError("barrier handled by scheduler");
    default:
      break;
  }

  counters_.mathCall += 1;
  const Type* t = call->type();
  const bool single = t->kind() == TypeKind::Float;
  auto f1 = [&](double (*fn)(double)) {
    const double x = eval(wi, call->arg(0)).f;
    return RtValue::ofFloat(single ? static_cast<float>(
                                         fn(static_cast<float>(x)))
                                   : fn(x));
  };
  switch (call->builtin()) {
    case Builtin::Sqrt: return f1(std::sqrt);
    case Builtin::RSqrt: {
      const double x = eval(wi, call->arg(0)).f;
      return RtValue::ofFloat(
          single ? 1.0F / std::sqrt(static_cast<float>(x))
                 : 1.0 / std::sqrt(x));
    }
    case Builtin::Fabs: return f1(std::fabs);
    case Builtin::Exp: return f1(std::exp);
    case Builtin::Log: return f1(std::log);
    case Builtin::Sin: return f1(std::sin);
    case Builtin::Cos: return f1(std::cos);
    case Builtin::Floor: return f1(std::floor);
    case Builtin::Ceil: return f1(std::ceil);
    case Builtin::Pow: {
      const double a = eval(wi, call->arg(0)).f;
      const double b = eval(wi, call->arg(1)).f;
      return RtValue::ofFloat(single ? std::pow(static_cast<float>(a),
                                                static_cast<float>(b))
                                     : std::pow(a, b));
    }
    case Builtin::FMin:
    case Builtin::FMax: {
      const double a = eval(wi, call->arg(0)).f;
      const double b = eval(wi, call->arg(1)).f;
      const bool isMin = call->builtin() == Builtin::FMin;
      return RtValue::ofFloat(isMin ? std::fmin(a, b) : std::fmax(a, b));
    }
    case Builtin::Fma:
    case Builtin::Mad: {
      const double a = eval(wi, call->arg(0)).f;
      const double b = eval(wi, call->arg(1)).f;
      const double c = eval(wi, call->arg(2)).f;
      if (single) {
        return RtValue::ofFloat(static_cast<float>(a) * static_cast<float>(b) +
                                static_cast<float>(c));
      }
      return RtValue::ofFloat(a * b + c);
    }
    case Builtin::IMin:
    case Builtin::IMax: {
      if (t->isFloatingPoint()) {
        const double a = eval(wi, call->arg(0)).f;
        const double b = eval(wi, call->arg(1)).f;
        return RtValue::ofFloat(call->builtin() == Builtin::IMin
                                    ? std::fmin(a, b)
                                    : std::fmax(a, b));
      }
      const std::int64_t a = eval(wi, call->arg(0)).i;
      const std::int64_t b = eval(wi, call->arg(1)).i;
      return RtValue::ofInt(call->builtin() == Builtin::IMin ? std::min(a, b)
                                                             : std::max(a, b));
    }
    case Builtin::IAbs: {
      const std::int64_t a = eval(wi, call->arg(0)).i;
      return RtValue::ofInt(a < 0 ? -a : a);
    }
    case Builtin::Mul24: {
      const auto a = static_cast<std::int32_t>(eval(wi, call->arg(0)).i);
      const auto b = static_cast<std::int32_t>(eval(wi, call->arg(1)).i);
      return RtValue::ofInt(static_cast<std::int32_t>(a * b));
    }
    case Builtin::Mad24: {
      const auto a = static_cast<std::int32_t>(eval(wi, call->arg(0)).i);
      const auto b = static_cast<std::int32_t>(eval(wi, call->arg(1)).i);
      const auto c = static_cast<std::int32_t>(eval(wi, call->arg(2)).i);
      return RtValue::ofInt(static_cast<std::int32_t>(a * b + c));
    }
    case Builtin::Clamp: {
      if (t->isFloatingPoint()) {
        const double x = eval(wi, call->arg(0)).f;
        const double lo = eval(wi, call->arg(1)).f;
        const double hi = eval(wi, call->arg(2)).f;
        return RtValue::ofFloat(std::fmin(std::fmax(x, lo), hi));
      }
      const std::int64_t x = eval(wi, call->arg(0)).i;
      const std::int64_t lo = eval(wi, call->arg(1)).i;
      const std::int64_t hi = eval(wi, call->arg(2)).i;
      return RtValue::ofInt(std::min(std::max(x, lo), hi));
    }
    case Builtin::Dot: {
      const RtValue a = eval(wi, call->arg(0));
      const RtValue b = eval(wi, call->arg(1));
      float acc = 0.0F;
      for (unsigned i = 0; i < a.lanes; ++i) {
        acc += static_cast<float>(a.vf[i]) * static_cast<float>(b.vf[i]);
      }
      return RtValue::ofFloat(acc);
    }
    default:
      throw GroverError("unsupported builtin call");
  }
}

void ReferenceExecutor::exec(WorkItem& wi, const ir::Instruction* inst) {
  switch (inst->kind()) {
    case ValueKind::InstAlloca: {
      const auto* alloca = cast<AllocaInst>(inst);
      PtrVal ptr;
      ptr.space = alloca->space();
      ptr.offset = image_.allocaOffset(alloca);
      slot(wi, inst) = RtValue::ofPtr(ptr);
      counters_.other += 1;
      return;
    }
    case ValueKind::InstGep: {
      const auto* gep = cast<GepInst>(inst);
      RtValue base = eval(wi, gep->pointer());
      const std::int64_t index = eval(wi, gep->index()).i;
      base.ptr.offset += index * static_cast<std::int64_t>(
                                     gep->type()->element()->sizeInBytes());
      slot(wi, inst) = base;
      counters_.intAlu += 1;
      return;
    }
    case ValueKind::InstLoad: {
      const auto* load = cast<LoadInst>(inst);
      const RtValue ptr = eval(wi, load->pointer());
      slot(wi, inst) = loadFrom(wi, ptr.ptr, load->type(), inst->slot());
      switch (ptr.ptr.space) {
        case AddrSpace::Global:
        case AddrSpace::Constant: counters_.globalLoad += 1; break;
        case AddrSpace::Local: counters_.localLoad += 1; break;
        case AddrSpace::Private: counters_.privateAccess += 1; break;
      }
      return;
    }
    case ValueKind::InstStore: {
      const auto* store = cast<StoreInst>(inst);
      const RtValue ptr = eval(wi, store->pointer());
      const RtValue value = eval(wi, store->value());
      storeTo(wi, ptr.ptr, store->value()->type(), value, inst->slot());
      switch (ptr.ptr.space) {
        case AddrSpace::Global:
        case AddrSpace::Constant: counters_.globalStore += 1; break;
        case AddrSpace::Local: counters_.localStore += 1; break;
        case AddrSpace::Private: counters_.privateAccess += 1; break;
      }
      return;
    }
    case ValueKind::InstBinary: {
      const auto* bin = cast<BinaryInst>(inst);
      slot(wi, inst) = evalBinary(bin, eval(wi, bin->lhs()),
                                  eval(wi, bin->rhs()));
      if (bin->type()->isVector()) {
        counters_.vectorAlu += 1;
      } else if (isFloatOp(bin->op())) {
        counters_.floatAlu += 1;
      } else {
        counters_.intAlu += 1;
      }
      return;
    }
    case ValueKind::InstICmp: {
      const auto* cmp = cast<ICmpInst>(inst);
      const std::int64_t a = eval(wi, cmp->lhs()).i;
      const std::int64_t b = eval(wi, cmp->rhs()).i;
      const auto ua = static_cast<std::uint64_t>(a);
      const auto ub = static_cast<std::uint64_t>(b);
      bool r = false;
      switch (cmp->pred()) {
        case CmpPred::EQ: r = a == b; break;
        case CmpPred::NE: r = a != b; break;
        case CmpPred::SLT: r = a < b; break;
        case CmpPred::SLE: r = a <= b; break;
        case CmpPred::SGT: r = a > b; break;
        case CmpPred::SGE: r = a >= b; break;
        case CmpPred::ULT: r = ua < ub; break;
        case CmpPred::ULE: r = ua <= ub; break;
        case CmpPred::UGT: r = ua > ub; break;
        case CmpPred::UGE: r = ua >= ub; break;
        default:
          throw GroverError("bad icmp predicate");
      }
      slot(wi, inst) = RtValue::ofInt(r ? 1 : 0);
      counters_.intAlu += 1;
      return;
    }
    case ValueKind::InstFCmp: {
      const auto* cmp = cast<FCmpInst>(inst);
      const double a = eval(wi, cmp->lhs()).f;
      const double b = eval(wi, cmp->rhs()).f;
      bool r = false;
      switch (cmp->pred()) {
        case CmpPred::OEQ: r = a == b; break;
        case CmpPred::ONE: r = a != b; break;
        case CmpPred::OLT: r = a < b; break;
        case CmpPred::OLE: r = a <= b; break;
        case CmpPred::OGT: r = a > b; break;
        case CmpPred::OGE: r = a >= b; break;
        default:
          throw GroverError("bad fcmp predicate");
      }
      slot(wi, inst) = RtValue::ofInt(r ? 1 : 0);
      counters_.floatAlu += 1;
      return;
    }
    case ValueKind::InstCast: {
      const auto* cast_ = cast<CastInst>(inst);
      const RtValue v = eval(wi, cast_->value());
      const Type* to = cast_->type();
      switch (cast_->op()) {
        case CastOp::SExt:
        case CastOp::Trunc:
          slot(wi, inst) = RtValue::ofInt(finalizeInt(to, v.i));
          break;
        case CastOp::ZExt: {
          std::int64_t raw = v.i;
          const Type* from = cast_->value()->type();
          if (from->isBool()) {
            raw &= 1;
          } else if (from->kind() == TypeKind::Int32) {
            raw = static_cast<std::int64_t>(static_cast<std::uint32_t>(raw));
          }
          slot(wi, inst) = RtValue::ofInt(finalizeInt(to, raw));
          break;
        }
        case CastOp::SIToFP:
        case CastOp::UIToFP: {
          double d = static_cast<double>(v.i);
          if (to->kind() == TypeKind::Float) d = static_cast<float>(d);
          slot(wi, inst) = RtValue::ofFloat(d);
          break;
        }
        case CastOp::FPToSI:
          slot(wi, inst) =
              RtValue::ofInt(finalizeInt(to, static_cast<std::int64_t>(v.f)));
          break;
        case CastOp::FPExt:
          slot(wi, inst) = RtValue::ofFloat(v.f);
          break;
        case CastOp::FPTrunc:
          slot(wi, inst) = RtValue::ofFloat(static_cast<float>(v.f));
          break;
      }
      counters_.intAlu += 1;
      return;
    }
    case ValueKind::InstSelect: {
      const auto* sel = cast<SelectInst>(inst);
      const bool c = eval(wi, sel->condition()).i != 0;
      slot(wi, inst) = eval(wi, c ? sel->ifTrue() : sel->ifFalse());
      counters_.intAlu += 1;
      return;
    }
    case ValueKind::InstExtractElement: {
      const auto* ext = cast<ExtractElementInst>(inst);
      const RtValue vec = eval(wi, ext->vector());
      const auto lane =
          static_cast<unsigned>(eval(wi, ext->index()).i);
      if (lane >= vec.lanes) throw GroverError("extractelement lane OOB");
      slot(wi, inst) = vec.kind == RtValue::Kind::VecFloat
                           ? RtValue::ofFloat(vec.vf[lane])
                           : RtValue::ofInt(vec.vi[lane]);
      counters_.vectorAlu += 1;
      return;
    }
    case ValueKind::InstInsertElement: {
      const auto* ins = cast<InsertElementInst>(inst);
      RtValue vec = eval(wi, ins->vector());
      const RtValue scalar = eval(wi, ins->scalar());
      const auto lane = static_cast<unsigned>(eval(wi, ins->index()).i);
      // Undef vectors arrive with the right lane count from eval().
      if (vec.lanes == 1) {
        const Type* t = ins->type();
        vec = t->element()->isFloatingPoint()
                  ? RtValue::ofVecFloat(static_cast<std::uint8_t>(t->lanes()))
                  : RtValue::ofVecInt(static_cast<std::uint8_t>(t->lanes()));
      }
      if (lane >= vec.lanes) throw GroverError("insertelement lane OOB");
      if (vec.kind == RtValue::Kind::VecFloat) {
        vec.vf[lane] = scalar.f;
      } else {
        vec.vi[lane] = scalar.i;
      }
      slot(wi, inst) = vec;
      counters_.vectorAlu += 1;
      return;
    }
    case ValueKind::InstPhi:
      throw GroverError("phi executed outside block entry");
    default:
      throw GroverError("unsupported instruction in interpreter: " +
                        inst->opcodeName());
  }
}

}  // namespace grover::rt
