// Execution tracing: the bridge between the runtime and the performance
// models. The interpreter reports every memory access (with enough context
// to regroup accesses into warp transactions) and per-group instruction
// counts.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "ir/type.h"

namespace grover::rt {

/// One dynamic memory access.
struct MemAccess {
  ir::AddrSpace space = ir::AddrSpace::Global;
  /// Global/Constant: buffer base address + byte offset (buffers get
  /// disjoint address ranges). Local: byte offset within the group arena.
  /// Private: byte offset within the work-item arena.
  std::uint64_t address = 0;
  std::uint32_t size = 0;    // bytes
  bool isWrite = false;
  std::uint32_t group = 0;   // linear work-group id
  std::uint32_t workItem = 0;  // linear id within the group
  /// Static instruction slot — lets a GPU model group the accesses of the
  /// work-items of one warp executing the same load/store together.
  std::uint32_t instSlot = 0;
};

/// Instruction-mix counters, accumulated per work-group.
struct InstCounters {
  std::uint64_t intAlu = 0;
  std::uint64_t floatAlu = 0;
  std::uint64_t vectorAlu = 0;
  std::uint64_t mathCall = 0;   // sqrt/exp/...
  std::uint64_t branch = 0;
  std::uint64_t globalLoad = 0;
  std::uint64_t globalStore = 0;
  std::uint64_t localLoad = 0;
  std::uint64_t localStore = 0;
  std::uint64_t privateAccess = 0;
  std::uint64_t barrier = 0;
  std::uint64_t other = 0;

  [[nodiscard]] std::uint64_t total() const {
    return intAlu + floatAlu + vectorAlu + mathCall + branch + globalLoad +
           globalStore + localLoad + localStore + privateAccess + barrier +
           other;
  }
  InstCounters& operator+=(const InstCounters& o) {
    intAlu += o.intAlu;
    floatAlu += o.floatAlu;
    vectorAlu += o.vectorAlu;
    mathCall += o.mathCall;
    branch += o.branch;
    globalLoad += o.globalLoad;
    globalStore += o.globalStore;
    localLoad += o.localLoad;
    localStore += o.localStore;
    privateAccess += o.privateAccess;
    barrier += o.barrier;
    other += o.other;
    return *this;
  }
};

/// Consumer of execution events. Called from the work-group execution
/// thread; one sink instance must only observe one group at a time unless
/// it synchronizes internally.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void onAccess(const MemAccess& access) = 0;
  /// All work-items of `group` passed a barrier.
  virtual void onBarrier(std::uint32_t group) = 0;
  /// A work-group finished; `counters` is its aggregate instruction mix.
  virtual void onGroupFinish(std::uint32_t group,
                             const InstCounters& counters) = 0;
};

/// The flat trace of one work-group execution: every memory access in
/// program order, barrier positions, and the group's instruction mix. This
/// is the lock-free hot-path representation — a GroupExecutor appends into
/// its own GroupTrace with no virtual dispatch, and the buffered events can
/// later be replayed into a TraceSink (or digested directly by a model) in
/// deterministic group order regardless of how many threads executed.
struct GroupTrace {
  std::uint32_t group = 0;  // linear work-group id
  std::vector<MemAccess> accesses;
  /// Offsets into `accesses` at which a group-wide barrier completed.
  std::vector<std::uint32_t> barriers;
  InstCounters counters;

  void clear() {
    group = 0;
    accesses.clear();
    barriers.clear();
    counters = InstCounters{};
  }

  /// Approximate heap footprint (drives wave sizing in parallel replay).
  [[nodiscard]] std::size_t byteSize() const {
    return accesses.capacity() * sizeof(MemAccess) +
           barriers.capacity() * sizeof(std::uint32_t) + sizeof(*this);
  }

  /// Feed the buffered events to `sink` in original program order:
  /// accesses interleaved with barriers, then onGroupFinish.
  void replay(TraceSink& sink) const {
    std::size_t nextBarrier = 0;
    for (std::size_t i = 0; i < accesses.size(); ++i) {
      while (nextBarrier < barriers.size() && barriers[nextBarrier] == i) {
        sink.onBarrier(group);
        ++nextBarrier;
      }
      sink.onAccess(accesses[i]);
    }
    while (nextBarrier < barriers.size()) {
      sink.onBarrier(group);
      ++nextBarrier;
    }
    sink.onGroupFinish(group, counters);
  }
};

/// Base address assigned to global buffer `i` in the flat trace address
/// space (buffers are padded to disjoint 256 MiB windows).
[[nodiscard]] inline std::uint64_t bufferBaseAddress(std::uint32_t index) {
  return 0x1000'0000ULL + std::uint64_t{index} * 0x1000'0000ULL;
}

/// Size of the next parallel traced wave: enough groups to keep `threads`
/// workers busy while bounding the buffered trace memory to ~256 MiB
/// (estimated from the previous wave's average per-group trace size).
[[nodiscard]] inline std::size_t nextTraceWave(std::size_t remaining,
                                               unsigned threads,
                                               std::size_t avgGroupBytes) {
  constexpr std::size_t kTargetBytes = std::size_t{256} << 20;
  std::size_t wave = std::size_t{threads} * 8;
  if (avgGroupBytes > 0) {
    wave = std::max<std::size_t>(kTargetBytes / avgGroupBytes,
                                 std::size_t{threads});
  }
  wave = std::min<std::size_t>(wave, 8192);
  wave = std::max<std::size_t>(wave, threads);
  return std::min(wave, remaining);
}

}  // namespace grover::rt
