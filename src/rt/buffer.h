// Host-visible memory buffers bound to kernel pointer arguments.
#pragma once

#include <cstddef>
#include <cstring>
#include <vector>

#include "support/diagnostics.h"

namespace grover::rt {

/// A device buffer (byte storage with typed host accessors).
class Buffer {
 public:
  explicit Buffer(std::size_t bytes) : data_(bytes) {}

  template <typename T>
  static Buffer fromVector(const std::vector<T>& host) {
    Buffer b(host.size() * sizeof(T));
    std::memcpy(b.data_.data(), host.data(), b.data_.size());
    return b;
  }

  template <typename T>
  static Buffer zeros(std::size_t count) {
    return Buffer(count * sizeof(T));
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::byte* data() { return data_.data(); }
  [[nodiscard]] const std::byte* data() const { return data_.data(); }

  template <typename T>
  [[nodiscard]] std::vector<T> toVector() const {
    if (data_.size() % sizeof(T) != 0) {
      throw GroverError("Buffer::toVector: size not a multiple of T");
    }
    std::vector<T> out(data_.size() / sizeof(T));
    std::memcpy(out.data(), data_.data(), data_.size());
    return out;
  }

  template <typename T>
  [[nodiscard]] T at(std::size_t index) const {
    if ((index + 1) * sizeof(T) > data_.size()) {
      throw GroverError("Buffer::at out of range");
    }
    T v;
    std::memcpy(&v, data_.data() + index * sizeof(T), sizeof(T));
    return v;
  }

 private:
  std::vector<std::byte> data_;
};

}  // namespace grover::rt
