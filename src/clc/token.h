// Tokens of the OpenCL C subset.
#pragma once

#include <cstdint>
#include <string>

#include "support/source_location.h"

namespace grover::clc {

enum class TokKind : std::uint8_t {
  End,
  Identifier,
  IntLiteral,
  FloatLiteral,
  // Keywords.
  KwKernel, KwGlobal, KwLocal, KwConstantAS, KwPrivate,
  KwConst, KwVoid, KwBool, KwInt, KwUInt, KwLong, KwULong, KwFloat, KwDouble,
  KwSizeT,
  KwIf, KwElse, KwFor, KwWhile, KwDo, KwReturn, KwBreak, KwContinue,
  KwTrue, KwFalse,
  KwFloat2, KwFloat4, KwInt2, KwInt4,
  // Punctuation / operators.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semicolon, Comma, Dot, Question, Colon,
  Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
  Plus, Minus, Star, Slash, Percent,
  PlusPlus, MinusMinus,
  EqEq, NotEq, Less, LessEq, Greater, GreaterEq,
  AmpAmp, PipePipe, Not,
  Amp, Pipe, Caret, Tilde, Shl, Shr,
};

[[nodiscard]] const char* toString(TokKind kind);

struct Token {
  TokKind kind = TokKind::End;
  SourceLoc loc;
  std::string text;       // identifier spelling
  std::int64_t intValue = 0;
  double floatValue = 0.0;
  bool isFloatSuffix = false;  // literal had 'f' suffix

  [[nodiscard]] bool is(TokKind k) const { return kind == k; }
};

}  // namespace grover::clc
