#include "clc/lexer.h"

#include <cctype>
#include <cstdlib>

#include "support/str.h"

namespace grover::clc {
namespace {

const std::unordered_map<std::string, TokKind>& keywordTable() {
  static const std::unordered_map<std::string, TokKind> table = {
      {"__kernel", TokKind::KwKernel},   {"kernel", TokKind::KwKernel},
      {"__global", TokKind::KwGlobal},   {"global", TokKind::KwGlobal},
      {"__local", TokKind::KwLocal},     {"local", TokKind::KwLocal},
      {"__constant", TokKind::KwConstantAS},
      {"constant", TokKind::KwConstantAS},
      {"__private", TokKind::KwPrivate}, {"private", TokKind::KwPrivate},
      {"const", TokKind::KwConst},       {"void", TokKind::KwVoid},
      {"bool", TokKind::KwBool},         {"int", TokKind::KwInt},
      {"uint", TokKind::KwUInt},         {"unsigned", TokKind::KwUInt},
      {"long", TokKind::KwLong},         {"ulong", TokKind::KwULong},
      {"float", TokKind::KwFloat},       {"double", TokKind::KwDouble},
      {"size_t", TokKind::KwSizeT},
      {"if", TokKind::KwIf},             {"else", TokKind::KwElse},
      {"for", TokKind::KwFor},           {"while", TokKind::KwWhile},
      {"do", TokKind::KwDo},             {"return", TokKind::KwReturn},
      {"break", TokKind::KwBreak},       {"continue", TokKind::KwContinue},
      {"true", TokKind::KwTrue},         {"false", TokKind::KwFalse},
      {"float2", TokKind::KwFloat2},     {"float4", TokKind::KwFloat4},
      {"int2", TokKind::KwInt2},         {"int4", TokKind::KwInt4},
  };
  return table;
}

}  // namespace

const char* toString(TokKind kind) {
  switch (kind) {
    case TokKind::End: return "<eof>";
    case TokKind::Identifier: return "identifier";
    case TokKind::IntLiteral: return "integer literal";
    case TokKind::FloatLiteral: return "float literal";
    case TokKind::LParen: return "(";
    case TokKind::RParen: return ")";
    case TokKind::LBrace: return "{";
    case TokKind::RBrace: return "}";
    case TokKind::LBracket: return "[";
    case TokKind::RBracket: return "]";
    case TokKind::Semicolon: return ";";
    case TokKind::Comma: return ",";
    case TokKind::Dot: return ".";
    case TokKind::Question: return "?";
    case TokKind::Colon: return ":";
    case TokKind::Assign: return "=";
    case TokKind::PlusAssign: return "+=";
    case TokKind::MinusAssign: return "-=";
    case TokKind::StarAssign: return "*=";
    case TokKind::SlashAssign: return "/=";
    case TokKind::Plus: return "+";
    case TokKind::Minus: return "-";
    case TokKind::Star: return "*";
    case TokKind::Slash: return "/";
    case TokKind::Percent: return "%";
    case TokKind::PlusPlus: return "++";
    case TokKind::MinusMinus: return "--";
    case TokKind::EqEq: return "==";
    case TokKind::NotEq: return "!=";
    case TokKind::Less: return "<";
    case TokKind::LessEq: return "<=";
    case TokKind::Greater: return ">";
    case TokKind::GreaterEq: return ">=";
    case TokKind::AmpAmp: return "&&";
    case TokKind::PipePipe: return "||";
    case TokKind::Not: return "!";
    case TokKind::Amp: return "&";
    case TokKind::Pipe: return "|";
    case TokKind::Caret: return "^";
    case TokKind::Tilde: return "~";
    case TokKind::Shl: return "<<";
    case TokKind::Shr: return ">>";
    default: return "keyword";
  }
}

Lexer::Lexer(std::string source, DiagnosticEngine& diags)
    : source_(std::move(source)), diags_(diags) {
  // Predefined OpenCL constants (barrier fence flags).
  auto intMacro = [](std::int64_t v) {
    Token t;
    t.kind = TokKind::IntLiteral;
    t.intValue = v;
    return std::vector<Token>{t};
  };
  macros_["CLK_LOCAL_MEM_FENCE"] = intMacro(1);
  macros_["CLK_GLOBAL_MEM_FENCE"] = intMacro(2);
  run();
}

void Lexer::run() {
  for (;;) {
    skipWhitespaceAndComments();
    if (!atEnd() && peek() == '#') {
      handleDirective();
      continue;
    }
    Token tok = next();
    if (tok.kind == TokKind::Identifier) {
      auto macro = macros_.find(tok.text);
      if (macro != macros_.end()) {
        for (Token t : macro->second) {
          t.loc = tok.loc;  // report at the use site
          tokens_.push_back(std::move(t));
        }
        continue;
      }
    }
    const bool end = tok.kind == TokKind::End;
    tokens_.push_back(std::move(tok));
    if (end) break;
  }
}

void Lexer::handleDirective() {
  const SourceLoc loc = here();
  advance();  // '#'
  std::string word;
  while (!atEnd() && (std::isalpha(static_cast<unsigned char>(peek())) != 0)) {
    word += advance();
  }
  if (word != "define") {
    diags_.error(loc, "unsupported preprocessor directive '#" + word + "'");
    while (!atEnd() && peek() != '\n') advance();
    return;
  }
  skipWhitespaceAndComments();
  Token name = next();
  if (name.kind != TokKind::Identifier) {
    diags_.error(loc, "#define: expected macro name");
    return;
  }
  // Lex replacement tokens until end of line.
  std::vector<Token> body;
  for (;;) {
    // Stop at newline without consuming it via the generic skipper.
    while (!atEnd() && (peek() == ' ' || peek() == '\t' || peek() == '\r')) {
      advance();
    }
    if (atEnd() || peek() == '\n') break;
    Token t = next();
    if (t.kind == TokKind::End) break;
    // Nested expansion of earlier macros inside the body.
    if (t.kind == TokKind::Identifier) {
      auto it = macros_.find(t.text);
      if (it != macros_.end()) {
        for (const Token& inner : it->second) body.push_back(inner);
        continue;
      }
    }
    body.push_back(std::move(t));
  }
  macros_[name.text] = std::move(body);
}

char Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  const char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    if (atEnd()) return;
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      const SourceLoc start = here();
      advance();
      advance();
      while (!atEnd() && !(peek() == '*' && peek(1) == '/')) advance();
      if (atEnd()) {
        diags_.error(start, "unterminated block comment");
        return;
      }
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::makeToken(TokKind kind) {
  Token t;
  t.kind = kind;
  t.loc = here();
  return t;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  if (atEnd()) return makeToken(TokKind::End);

  const char c = peek();
  if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
    return lexNumber();
  }
  if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
    return lexIdentifier();
  }

  Token t = makeToken(TokKind::End);
  advance();
  switch (c) {
    case '(': t.kind = TokKind::LParen; return t;
    case ')': t.kind = TokKind::RParen; return t;
    case '{': t.kind = TokKind::LBrace; return t;
    case '}': t.kind = TokKind::RBrace; return t;
    case '[': t.kind = TokKind::LBracket; return t;
    case ']': t.kind = TokKind::RBracket; return t;
    case ';': t.kind = TokKind::Semicolon; return t;
    case ',': t.kind = TokKind::Comma; return t;
    case '.': t.kind = TokKind::Dot; return t;
    case '?': t.kind = TokKind::Question; return t;
    case ':': t.kind = TokKind::Colon; return t;
    case '~': t.kind = TokKind::Tilde; return t;
    case '^': t.kind = TokKind::Caret; return t;
    case '+':
      if (peek() == '+') { advance(); t.kind = TokKind::PlusPlus; }
      else if (peek() == '=') { advance(); t.kind = TokKind::PlusAssign; }
      else t.kind = TokKind::Plus;
      return t;
    case '-':
      if (peek() == '-') { advance(); t.kind = TokKind::MinusMinus; }
      else if (peek() == '=') { advance(); t.kind = TokKind::MinusAssign; }
      else t.kind = TokKind::Minus;
      return t;
    case '*':
      if (peek() == '=') { advance(); t.kind = TokKind::StarAssign; }
      else t.kind = TokKind::Star;
      return t;
    case '/':
      if (peek() == '=') { advance(); t.kind = TokKind::SlashAssign; }
      else t.kind = TokKind::Slash;
      return t;
    case '%': t.kind = TokKind::Percent; return t;
    case '=':
      if (peek() == '=') { advance(); t.kind = TokKind::EqEq; }
      else t.kind = TokKind::Assign;
      return t;
    case '!':
      if (peek() == '=') { advance(); t.kind = TokKind::NotEq; }
      else t.kind = TokKind::Not;
      return t;
    case '<':
      if (peek() == '=') { advance(); t.kind = TokKind::LessEq; }
      else if (peek() == '<') { advance(); t.kind = TokKind::Shl; }
      else t.kind = TokKind::Less;
      return t;
    case '>':
      if (peek() == '=') { advance(); t.kind = TokKind::GreaterEq; }
      else if (peek() == '>') { advance(); t.kind = TokKind::Shr; }
      else t.kind = TokKind::Greater;
      return t;
    case '&':
      if (peek() == '&') { advance(); t.kind = TokKind::AmpAmp; }
      else t.kind = TokKind::Amp;
      return t;
    case '|':
      if (peek() == '|') { advance(); t.kind = TokKind::PipePipe; }
      else t.kind = TokKind::Pipe;
      return t;
    default:
      diags_.error(t.loc, cat("unexpected character '", c, "'"));
      return next();
  }
}

Token Lexer::lexNumber() {
  Token t = makeToken(TokKind::IntLiteral);
  std::string digits;
  bool isFloat = false;
  bool isHex = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    isHex = true;
    digits += advance();
    digits += advance();
    while (std::isxdigit(static_cast<unsigned char>(peek())) != 0) {
      digits += advance();
    }
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      digits += advance();
    }
    if (peek() == '.') {
      isFloat = true;
      digits += advance();
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
        digits += advance();
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      isFloat = true;
      digits += advance();
      if (peek() == '+' || peek() == '-') digits += advance();
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
        digits += advance();
      }
    }
  }
  bool fSuffix = false;
  if (peek() == 'f' || peek() == 'F') {
    advance();
    isFloat = true;
    fSuffix = true;
  }
  // Swallow integer suffixes (u/U/l/L) — our subset treats them as int.
  while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L') {
    advance();
  }
  if (isFloat) {
    t.kind = TokKind::FloatLiteral;
    t.floatValue = std::strtod(digits.c_str(), nullptr);
    t.isFloatSuffix = fSuffix;
  } else {
    t.intValue = std::strtoll(digits.c_str(), nullptr, isHex ? 16 : 10);
  }
  return t;
}

Token Lexer::lexIdentifier() {
  Token t = makeToken(TokKind::Identifier);
  while (std::isalnum(static_cast<unsigned char>(peek())) != 0 ||
         peek() == '_') {
    t.text += advance();
  }
  auto it = keywordTable().find(t.text);
  if (it != keywordTable().end()) t.kind = it->second;
  return t;
}

}  // namespace grover::clc
