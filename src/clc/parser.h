// Recursive-descent parser for the OpenCL C subset.
#pragma once

#include <memory>
#include <vector>

#include "clc/ast.h"
#include "clc/token.h"
#include "support/diagnostics.h"

namespace grover::clc {

/// Parses a token stream into a TranslationUnit. On error, emits a
/// diagnostic and attempts recovery at statement granularity; callers must
/// check diags.hasErrors() before using the AST.
class Parser {
 public:
  Parser(const std::vector<Token>& tokens, DiagnosticEngine& diags)
      : tokens_(tokens), diags_(diags) {}

  [[nodiscard]] std::unique_ptr<TranslationUnit> parse();

 private:
  // token helpers
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const;
  const Token& advance();
  [[nodiscard]] bool check(TokKind kind) const { return peek().is(kind); }
  bool match(TokKind kind);
  const Token& expect(TokKind kind, const char* what);
  [[noreturn]] void fail(const Token& tok, const std::string& msg);

  // type spellings
  [[nodiscard]] bool startsTypeSpec(std::size_t ahead = 0) const;
  TypeSpec parseTypeSpec();

  // declarations
  std::unique_ptr<KernelDecl> parseFunction();

  // statements
  StmtPtr parseStatement();
  std::unique_ptr<BlockStmt> parseBlock();
  StmtPtr parseDeclStatement();
  StmtPtr parseSimpleStatement();  // assign / incdec / expr (no ';')
  StmtPtr parseIf();
  StmtPtr parseFor();
  StmtPtr parseWhile();
  StmtPtr parseDoWhile();

  // expressions (precedence climbing)
  ExprPtr parseExpr();
  ExprPtr parseConditional();
  ExprPtr parseBinary(int minPrec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  const std::vector<Token>& tokens_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
};

}  // namespace grover::clc
