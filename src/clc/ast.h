// AST for the OpenCL C subset. Nodes are plain structs owned through
// unique_ptr; Sema annotates expressions with their ir::Type.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/type.h"
#include "support/source_location.h"

namespace grover::clc {

// --- type spellings ---------------------------------------------------------

enum class ScalarKind : std::uint8_t {
  Void, Bool, Int, UInt, Long, ULong, Float, Double
};

/// A spelled type, before Sema resolves it against the ir::Context.
struct TypeSpec {
  ScalarKind base = ScalarKind::Int;
  unsigned vecLanes = 0;  // 0 = scalar, 2/4 = vector
  bool isPointer = false;
  ir::AddrSpace space = ir::AddrSpace::Private;
  bool isConst = false;
};

// --- expressions -------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  IntLit, FloatLit, BoolLit, VarRef, Binary, Unary, Conditional,
  Index, Member, Call, Cast, VectorLit,
};

enum class BinOp : std::uint8_t {
  Add, Sub, Mul, Div, Rem,
  Shl, Shr, BitAnd, BitOr, BitXor,
  LAnd, LOr,
  Eq, Ne, Lt, Le, Gt, Ge,
};

enum class UnOp : std::uint8_t { Neg, LogicalNot, BitNot };

struct Expr {
  explicit Expr(ExprKind k, SourceLoc l) : kind(k), loc(l) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  ExprKind kind;
  SourceLoc loc;
  ir::Type* type = nullptr;  // set by Sema
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr final : Expr {
  IntLitExpr(SourceLoc l, std::int64_t v)
      : Expr(ExprKind::IntLit, l), value(v) {}
  std::int64_t value;
};

struct FloatLitExpr final : Expr {
  FloatLitExpr(SourceLoc l, double v, bool f32)
      : Expr(ExprKind::FloatLit, l), value(v), isFloat32(f32) {}
  double value;
  bool isFloat32;  // had an 'f' suffix
};

struct BoolLitExpr final : Expr {
  BoolLitExpr(SourceLoc l, bool v) : Expr(ExprKind::BoolLit, l), value(v) {}
  bool value;
};

struct VarRefExpr final : Expr {
  VarRefExpr(SourceLoc l, std::string n)
      : Expr(ExprKind::VarRef, l), name(std::move(n)) {}
  std::string name;
};

struct BinaryExpr final : Expr {
  BinaryExpr(SourceLoc l, BinOp o, ExprPtr lhs_, ExprPtr rhs_)
      : Expr(ExprKind::Binary, l), op(o), lhs(std::move(lhs_)),
        rhs(std::move(rhs_)) {}
  BinOp op;
  ExprPtr lhs, rhs;
};

struct UnaryExpr final : Expr {
  UnaryExpr(SourceLoc l, UnOp o, ExprPtr sub_)
      : Expr(ExprKind::Unary, l), op(o), sub(std::move(sub_)) {}
  UnOp op;
  ExprPtr sub;
};

struct ConditionalExpr final : Expr {
  ConditionalExpr(SourceLoc l, ExprPtr c, ExprPtr t, ExprPtr f)
      : Expr(ExprKind::Conditional, l), cond(std::move(c)),
        ifTrue(std::move(t)), ifFalse(std::move(f)) {}
  ExprPtr cond, ifTrue, ifFalse;
};

struct IndexExpr final : Expr {
  IndexExpr(SourceLoc l, ExprPtr b, ExprPtr i)
      : Expr(ExprKind::Index, l), base(std::move(b)), index(std::move(i)) {}
  ExprPtr base, index;
};

struct MemberExpr final : Expr {
  MemberExpr(SourceLoc l, ExprPtr b, std::string m)
      : Expr(ExprKind::Member, l), base(std::move(b)), member(std::move(m)) {}
  ExprPtr base;
  std::string member;  // x/y/z/w swizzle lane
};

struct CallExpr final : Expr {
  CallExpr(SourceLoc l, std::string c, std::vector<ExprPtr> a)
      : Expr(ExprKind::Call, l), callee(std::move(c)), args(std::move(a)) {}
  std::string callee;
  std::vector<ExprPtr> args;
};

struct CastExpr final : Expr {
  CastExpr(SourceLoc l, TypeSpec t, ExprPtr s)
      : Expr(ExprKind::Cast, l), target(t), sub(std::move(s)) {}
  TypeSpec target;
  ExprPtr sub;
};

struct VectorLitExpr final : Expr {
  VectorLitExpr(SourceLoc l, TypeSpec t, std::vector<ExprPtr> e)
      : Expr(ExprKind::VectorLit, l), target(t), elems(std::move(e)) {}
  TypeSpec target;
  std::vector<ExprPtr> elems;
};

// --- statements --------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  Block, Decl, ExprStmt, Assign, IncDec, If, For, While, DoWhile, Return,
  Break, Continue,
};

struct Stmt {
  explicit Stmt(StmtKind k, SourceLoc l) : kind(k), loc(l) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  StmtKind kind;
  SourceLoc loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct BlockStmt final : Stmt {
  explicit BlockStmt(SourceLoc l) : Stmt(StmtKind::Block, l) {}
  std::vector<StmtPtr> stmts;
};

/// Variable declaration. Arrays carry constant dimensions (flattened by
/// Sema into a single element count).
struct DeclStmt final : Stmt {
  DeclStmt(SourceLoc l, TypeSpec t, std::string n)
      : Stmt(StmtKind::Decl, l), spec(t), name(std::move(n)) {}
  TypeSpec spec;
  std::string name;
  std::vector<ExprPtr> arrayDims;  // empty for scalars
  ExprPtr init;                    // optional
};

struct ExprStmt final : Stmt {
  ExprStmt(SourceLoc l, ExprPtr e)
      : Stmt(StmtKind::ExprStmt, l), expr(std::move(e)) {}
  ExprPtr expr;
};

enum class AssignOp : std::uint8_t { Assign, AddAssign, SubAssign, MulAssign, DivAssign };

struct AssignStmt final : Stmt {
  AssignStmt(SourceLoc l, AssignOp o, ExprPtr lhs_, ExprPtr rhs_)
      : Stmt(StmtKind::Assign, l), op(o), lhs(std::move(lhs_)),
        rhs(std::move(rhs_)) {}
  AssignOp op;
  ExprPtr lhs, rhs;
};

struct IncDecStmt final : Stmt {
  IncDecStmt(SourceLoc l, ExprPtr t, bool inc)
      : Stmt(StmtKind::IncDec, l), target(std::move(t)), isIncrement(inc) {}
  ExprPtr target;
  bool isIncrement;
};

struct IfStmt final : Stmt {
  explicit IfStmt(SourceLoc l) : Stmt(StmtKind::If, l) {}
  ExprPtr cond;
  StmtPtr thenBody;
  StmtPtr elseBody;  // optional
};

struct ForStmt final : Stmt {
  explicit ForStmt(SourceLoc l) : Stmt(StmtKind::For, l) {}
  StmtPtr init;  // Decl / Assign / null
  ExprPtr cond;  // optional
  StmtPtr step;  // Assign / IncDec / null
  StmtPtr body;
};

struct WhileStmt final : Stmt {
  explicit WhileStmt(SourceLoc l) : Stmt(StmtKind::While, l) {}
  ExprPtr cond;
  StmtPtr body;
};

struct DoWhileStmt final : Stmt {
  explicit DoWhileStmt(SourceLoc l) : Stmt(StmtKind::DoWhile, l) {}
  StmtPtr body;
  ExprPtr cond;
};

struct ReturnStmt final : Stmt {
  explicit ReturnStmt(SourceLoc l) : Stmt(StmtKind::Return, l) {}
  ExprPtr value;  // optional
};

struct BreakStmt final : Stmt {
  explicit BreakStmt(SourceLoc l) : Stmt(StmtKind::Break, l) {}
};

struct ContinueStmt final : Stmt {
  explicit ContinueStmt(SourceLoc l) : Stmt(StmtKind::Continue, l) {}
};

// --- declarations -------------------------------------------------------------

struct ParamDecl {
  SourceLoc loc;
  TypeSpec spec;
  std::string name;
};

struct KernelDecl {
  SourceLoc loc;
  bool isKernel = false;
  TypeSpec returnSpec;
  std::string name;
  std::vector<ParamDecl> params;
  std::unique_ptr<BlockStmt> body;
};

/// One parsed source buffer.
struct TranslationUnit {
  std::vector<std::unique_ptr<KernelDecl>> kernels;
};

}  // namespace grover::clc
