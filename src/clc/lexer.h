// Lexer for the OpenCL C subset, including a miniature preprocessor that
// expands object-like #define macros (tile sizes in the SDK kernels).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "clc/token.h"
#include "support/diagnostics.h"

namespace grover::clc {

/// Tokenizes a whole source buffer up front. #define NAME <tokens> is
/// recorded and every later occurrence of NAME is replaced by the macro's
/// token sequence (one level; no function-like macros).
class Lexer {
 public:
  Lexer(std::string source, DiagnosticEngine& diags);

  /// All tokens, ending with a single End token.
  [[nodiscard]] const std::vector<Token>& tokens() const { return tokens_; }

 private:
  void run();
  Token next();
  void handleDirective();
  [[nodiscard]] char peek(std::size_t ahead = 0) const;
  char advance();
  [[nodiscard]] bool atEnd() const { return pos_ >= source_.size(); }
  void skipWhitespaceAndComments();
  Token lexNumber();
  Token lexIdentifier();
  Token makeToken(TokKind kind);
  [[nodiscard]] SourceLoc here() const { return {line_, col_}; }

  std::string source_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
  std::vector<Token> tokens_;
  std::unordered_map<std::string, std::vector<Token>> macros_;
};

}  // namespace grover::clc
