#include "clc/parser.h"

#include "support/str.h"

namespace grover::clc {
namespace {

/// Internal parse-abort exception; converted to diagnostics at top level.
struct ParseAbort {};

bool isQualifier(TokKind k) {
  return k == TokKind::KwGlobal || k == TokKind::KwLocal ||
         k == TokKind::KwConstantAS || k == TokKind::KwPrivate ||
         k == TokKind::KwConst;
}

bool isTypeKeyword(TokKind k) {
  switch (k) {
    case TokKind::KwVoid:
    case TokKind::KwBool:
    case TokKind::KwInt:
    case TokKind::KwUInt:
    case TokKind::KwLong:
    case TokKind::KwULong:
    case TokKind::KwFloat:
    case TokKind::KwDouble:
    case TokKind::KwSizeT:
    case TokKind::KwFloat2:
    case TokKind::KwFloat4:
    case TokKind::KwInt2:
    case TokKind::KwInt4:
      return true;
    default:
      return false;
  }
}

int binaryPrecedence(TokKind k) {
  switch (k) {
    case TokKind::Star:
    case TokKind::Slash:
    case TokKind::Percent:
      return 10;
    case TokKind::Plus:
    case TokKind::Minus:
      return 9;
    case TokKind::Shl:
    case TokKind::Shr:
      return 8;
    case TokKind::Less:
    case TokKind::LessEq:
    case TokKind::Greater:
    case TokKind::GreaterEq:
      return 7;
    case TokKind::EqEq:
    case TokKind::NotEq:
      return 6;
    case TokKind::Amp:
      return 5;
    case TokKind::Caret:
      return 4;
    case TokKind::Pipe:
      return 3;
    case TokKind::AmpAmp:
      return 2;
    case TokKind::PipePipe:
      return 1;
    default:
      return 0;
  }
}

BinOp binOpFor(TokKind k) {
  switch (k) {
    case TokKind::Star: return BinOp::Mul;
    case TokKind::Slash: return BinOp::Div;
    case TokKind::Percent: return BinOp::Rem;
    case TokKind::Plus: return BinOp::Add;
    case TokKind::Minus: return BinOp::Sub;
    case TokKind::Shl: return BinOp::Shl;
    case TokKind::Shr: return BinOp::Shr;
    case TokKind::Less: return BinOp::Lt;
    case TokKind::LessEq: return BinOp::Le;
    case TokKind::Greater: return BinOp::Gt;
    case TokKind::GreaterEq: return BinOp::Ge;
    case TokKind::EqEq: return BinOp::Eq;
    case TokKind::NotEq: return BinOp::Ne;
    case TokKind::Amp: return BinOp::BitAnd;
    case TokKind::Caret: return BinOp::BitXor;
    case TokKind::Pipe: return BinOp::BitOr;
    case TokKind::AmpAmp: return BinOp::LAnd;
    case TokKind::PipePipe: return BinOp::LOr;
    default: throw GroverError("binOpFor: not a binary operator");
  }
}

}  // namespace

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::advance() {
  const Token& t = peek();
  if (pos_ < tokens_.size() - 1) ++pos_;
  return t;
}

bool Parser::match(TokKind kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

const Token& Parser::expect(TokKind kind, const char* what) {
  if (!check(kind)) {
    fail(peek(), cat("expected ", toString(kind), " (", what, "), found '",
                     toString(peek().kind), "'"));
  }
  return advance();
}

void Parser::fail(const Token& tok, const std::string& msg) {
  diags_.error(tok.loc, msg);
  throw ParseAbort{};
}

std::unique_ptr<TranslationUnit> Parser::parse() {
  auto tu = std::make_unique<TranslationUnit>();
  while (!check(TokKind::End)) {
    try {
      tu->kernels.push_back(parseFunction());
    } catch (const ParseAbort&) {
      // Recover: skip to the next top-level '__kernel' or EOF.
      while (!check(TokKind::End) && !check(TokKind::KwKernel)) advance();
    }
  }
  return tu;
}

bool Parser::startsTypeSpec(std::size_t ahead) const {
  const TokKind k = peek(ahead).kind;
  return isQualifier(k) || isTypeKeyword(k);
}

TypeSpec Parser::parseTypeSpec() {
  TypeSpec spec;
  bool sawBase = false;
  for (;;) {
    const TokKind k = peek().kind;
    if (isQualifier(k)) {
      advance();
      switch (k) {
        case TokKind::KwGlobal: spec.space = ir::AddrSpace::Global; break;
        case TokKind::KwLocal: spec.space = ir::AddrSpace::Local; break;
        case TokKind::KwConstantAS: spec.space = ir::AddrSpace::Constant; break;
        case TokKind::KwPrivate: spec.space = ir::AddrSpace::Private; break;
        case TokKind::KwConst: spec.isConst = true; break;
        default: break;
      }
      continue;
    }
    if (isTypeKeyword(k) && !sawBase) {
      advance();
      sawBase = true;
      switch (k) {
        case TokKind::KwVoid: spec.base = ScalarKind::Void; break;
        case TokKind::KwBool: spec.base = ScalarKind::Bool; break;
        case TokKind::KwInt: spec.base = ScalarKind::Int; break;
        case TokKind::KwUInt: spec.base = ScalarKind::UInt; break;
        case TokKind::KwLong: spec.base = ScalarKind::Long; break;
        case TokKind::KwULong: spec.base = ScalarKind::ULong; break;
        case TokKind::KwFloat: spec.base = ScalarKind::Float; break;
        case TokKind::KwDouble: spec.base = ScalarKind::Double; break;
        case TokKind::KwSizeT: spec.base = ScalarKind::Int; break;
        case TokKind::KwFloat2:
          spec.base = ScalarKind::Float;
          spec.vecLanes = 2;
          break;
        case TokKind::KwFloat4:
          spec.base = ScalarKind::Float;
          spec.vecLanes = 4;
          break;
        case TokKind::KwInt2:
          spec.base = ScalarKind::Int;
          spec.vecLanes = 2;
          break;
        case TokKind::KwInt4:
          spec.base = ScalarKind::Int;
          spec.vecLanes = 4;
          break;
        default: break;
      }
      continue;
    }
    break;
  }
  if (!sawBase) fail(peek(), "expected a type");
  if (match(TokKind::Star)) spec.isPointer = true;
  return spec;
}

std::unique_ptr<KernelDecl> Parser::parseFunction() {
  auto fn = std::make_unique<KernelDecl>();
  fn->loc = peek().loc;
  fn->isKernel = match(TokKind::KwKernel);
  fn->returnSpec = parseTypeSpec();
  fn->name = expect(TokKind::Identifier, "function name").text;
  expect(TokKind::LParen, "parameter list");
  if (!check(TokKind::RParen)) {
    do {
      ParamDecl param;
      param.loc = peek().loc;
      param.spec = parseTypeSpec();
      param.name = expect(TokKind::Identifier, "parameter name").text;
      fn->params.push_back(std::move(param));
    } while (match(TokKind::Comma));
  }
  expect(TokKind::RParen, "end of parameter list");
  fn->body = parseBlock();
  return fn;
}

std::unique_ptr<BlockStmt> Parser::parseBlock() {
  const Token& open = expect(TokKind::LBrace, "block");
  auto block = std::make_unique<BlockStmt>(open.loc);
  while (!check(TokKind::RBrace) && !check(TokKind::End)) {
    block->stmts.push_back(parseStatement());
  }
  expect(TokKind::RBrace, "end of block");
  return block;
}

StmtPtr Parser::parseStatement() {
  switch (peek().kind) {
    case TokKind::LBrace:
      return parseBlock();
    case TokKind::KwIf:
      return parseIf();
    case TokKind::KwFor:
      return parseFor();
    case TokKind::KwWhile:
      return parseWhile();
    case TokKind::KwDo:
      return parseDoWhile();
    case TokKind::KwReturn: {
      const Token& t = advance();
      auto ret = std::make_unique<ReturnStmt>(t.loc);
      if (!check(TokKind::Semicolon)) ret->value = parseExpr();
      expect(TokKind::Semicolon, "after return");
      return ret;
    }
    case TokKind::KwBreak: {
      const Token& t = advance();
      expect(TokKind::Semicolon, "after break");
      return std::make_unique<BreakStmt>(t.loc);
    }
    case TokKind::KwContinue: {
      const Token& t = advance();
      expect(TokKind::Semicolon, "after continue");
      return std::make_unique<ContinueStmt>(t.loc);
    }
    case TokKind::Semicolon:
      advance();
      return std::make_unique<BlockStmt>(peek().loc);  // empty statement
    default:
      break;
  }
  if (startsTypeSpec()) {
    StmtPtr decl = parseDeclStatement();
    expect(TokKind::Semicolon, "after declaration");
    return decl;
  }
  StmtPtr stmt = parseSimpleStatement();
  expect(TokKind::Semicolon, "after statement");
  return stmt;
}

StmtPtr Parser::parseDeclStatement() {
  const SourceLoc loc = peek().loc;
  TypeSpec spec = parseTypeSpec();
  std::string name = expect(TokKind::Identifier, "variable name").text;
  auto decl = std::make_unique<DeclStmt>(loc, spec, std::move(name));
  while (match(TokKind::LBracket)) {
    decl->arrayDims.push_back(parseExpr());
    expect(TokKind::RBracket, "array dimension");
  }
  if (match(TokKind::Assign)) decl->init = parseExpr();
  if (check(TokKind::Comma)) {
    fail(peek(), "multiple declarators are not supported; split the line");
  }
  return decl;
}

StmtPtr Parser::parseSimpleStatement() {
  const SourceLoc loc = peek().loc;
  if (check(TokKind::PlusPlus) || check(TokKind::MinusMinus)) {
    const bool inc = advance().kind == TokKind::PlusPlus;
    ExprPtr target = parsePostfix();
    return std::make_unique<IncDecStmt>(loc, std::move(target), inc);
  }
  ExprPtr lhs = parseConditional();
  switch (peek().kind) {
    case TokKind::Assign:
    case TokKind::PlusAssign:
    case TokKind::MinusAssign:
    case TokKind::StarAssign:
    case TokKind::SlashAssign: {
      AssignOp op = AssignOp::Assign;
      switch (peek().kind) {
        case TokKind::PlusAssign: op = AssignOp::AddAssign; break;
        case TokKind::MinusAssign: op = AssignOp::SubAssign; break;
        case TokKind::StarAssign: op = AssignOp::MulAssign; break;
        case TokKind::SlashAssign: op = AssignOp::DivAssign; break;
        default: break;
      }
      advance();
      ExprPtr rhs = parseExpr();
      return std::make_unique<AssignStmt>(loc, op, std::move(lhs),
                                          std::move(rhs));
    }
    case TokKind::PlusPlus:
    case TokKind::MinusMinus: {
      const bool inc = advance().kind == TokKind::PlusPlus;
      return std::make_unique<IncDecStmt>(loc, std::move(lhs), inc);
    }
    default:
      return std::make_unique<ExprStmt>(loc, std::move(lhs));
  }
}

StmtPtr Parser::parseIf() {
  const Token& kw = expect(TokKind::KwIf, "if");
  auto stmt = std::make_unique<IfStmt>(kw.loc);
  expect(TokKind::LParen, "if condition");
  stmt->cond = parseExpr();
  expect(TokKind::RParen, "if condition");
  stmt->thenBody = parseStatement();
  if (match(TokKind::KwElse)) stmt->elseBody = parseStatement();
  return stmt;
}

StmtPtr Parser::parseFor() {
  const Token& kw = expect(TokKind::KwFor, "for");
  auto stmt = std::make_unique<ForStmt>(kw.loc);
  expect(TokKind::LParen, "for header");
  if (!check(TokKind::Semicolon)) {
    stmt->init = startsTypeSpec() ? parseDeclStatement() : parseSimpleStatement();
  }
  expect(TokKind::Semicolon, "for header");
  if (!check(TokKind::Semicolon)) stmt->cond = parseExpr();
  expect(TokKind::Semicolon, "for header");
  if (!check(TokKind::RParen)) stmt->step = parseSimpleStatement();
  expect(TokKind::RParen, "for header");
  stmt->body = parseStatement();
  return stmt;
}

StmtPtr Parser::parseWhile() {
  const Token& kw = expect(TokKind::KwWhile, "while");
  auto stmt = std::make_unique<WhileStmt>(kw.loc);
  expect(TokKind::LParen, "while condition");
  stmt->cond = parseExpr();
  expect(TokKind::RParen, "while condition");
  stmt->body = parseStatement();
  return stmt;
}

StmtPtr Parser::parseDoWhile() {
  const Token& kw = expect(TokKind::KwDo, "do");
  auto stmt = std::make_unique<DoWhileStmt>(kw.loc);
  stmt->body = parseStatement();
  expect(TokKind::KwWhile, "do-while");
  expect(TokKind::LParen, "do-while condition");
  stmt->cond = parseExpr();
  expect(TokKind::RParen, "do-while condition");
  expect(TokKind::Semicolon, "after do-while");
  return stmt;
}

ExprPtr Parser::parseExpr() { return parseConditional(); }

ExprPtr Parser::parseConditional() {
  ExprPtr cond = parseBinary(1);
  if (!match(TokKind::Question)) return cond;
  const SourceLoc loc = peek().loc;
  ExprPtr ifTrue = parseExpr();
  expect(TokKind::Colon, "conditional expression");
  ExprPtr ifFalse = parseConditional();
  return std::make_unique<ConditionalExpr>(loc, std::move(cond),
                                           std::move(ifTrue),
                                           std::move(ifFalse));
}

ExprPtr Parser::parseBinary(int minPrec) {
  ExprPtr lhs = parseUnary();
  for (;;) {
    const int prec = binaryPrecedence(peek().kind);
    if (prec == 0 || prec < minPrec) return lhs;
    const Token& opTok = advance();
    ExprPtr rhs = parseBinary(prec + 1);
    lhs = std::make_unique<BinaryExpr>(opTok.loc, binOpFor(opTok.kind),
                                       std::move(lhs), std::move(rhs));
  }
}

ExprPtr Parser::parseUnary() {
  const Token& t = peek();
  switch (t.kind) {
    case TokKind::Minus:
      advance();
      return std::make_unique<UnaryExpr>(t.loc, UnOp::Neg, parseUnary());
    case TokKind::Not:
      advance();
      return std::make_unique<UnaryExpr>(t.loc, UnOp::LogicalNot, parseUnary());
    case TokKind::Tilde:
      advance();
      return std::make_unique<UnaryExpr>(t.loc, UnOp::BitNot, parseUnary());
    case TokKind::Plus:
      advance();
      return parseUnary();
    case TokKind::LParen:
      // Cast or vector literal: '(' typespec ')' ...
      if (startsTypeSpec(1)) {
        advance();  // '('
        TypeSpec target = parseTypeSpec();
        expect(TokKind::RParen, "cast");
        if (target.vecLanes != 0 && check(TokKind::LParen)) {
          // (floatN)(e0, e1, ...): vector literal (or scalar broadcast).
          advance();
          std::vector<ExprPtr> elems;
          do {
            elems.push_back(parseExpr());
          } while (match(TokKind::Comma));
          expect(TokKind::RParen, "vector literal");
          return std::make_unique<VectorLitExpr>(t.loc, target,
                                                 std::move(elems));
        }
        return std::make_unique<CastExpr>(t.loc, target, parseUnary());
      }
      return parsePostfix();
    default:
      return parsePostfix();
  }
}

ExprPtr Parser::parsePostfix() {
  ExprPtr expr = parsePrimary();
  for (;;) {
    if (match(TokKind::LBracket)) {
      ExprPtr index = parseExpr();
      const Token& close = expect(TokKind::RBracket, "index");
      expr = std::make_unique<IndexExpr>(close.loc, std::move(expr),
                                         std::move(index));
    } else if (check(TokKind::Dot)) {
      advance();
      const Token& member = expect(TokKind::Identifier, "member name");
      expr = std::make_unique<MemberExpr>(member.loc, std::move(expr),
                                          member.text);
    } else {
      return expr;
    }
  }
}

ExprPtr Parser::parsePrimary() {
  const Token& t = peek();
  switch (t.kind) {
    case TokKind::IntLiteral:
      advance();
      return std::make_unique<IntLitExpr>(t.loc, t.intValue);
    case TokKind::FloatLiteral:
      advance();
      return std::make_unique<FloatLitExpr>(t.loc, t.floatValue,
                                            t.isFloatSuffix);
    case TokKind::KwTrue:
      advance();
      return std::make_unique<BoolLitExpr>(t.loc, true);
    case TokKind::KwFalse:
      advance();
      return std::make_unique<BoolLitExpr>(t.loc, false);
    case TokKind::Identifier: {
      advance();
      if (match(TokKind::LParen)) {
        std::vector<ExprPtr> args;
        if (!check(TokKind::RParen)) {
          do {
            args.push_back(parseExpr());
          } while (match(TokKind::Comma));
        }
        expect(TokKind::RParen, "call");
        return std::make_unique<CallExpr>(t.loc, t.text, std::move(args));
      }
      return std::make_unique<VarRefExpr>(t.loc, t.text);
    }
    case TokKind::LParen: {
      advance();
      ExprPtr inner = parseExpr();
      expect(TokKind::RParen, "parenthesized expression");
      return inner;
    }
    default:
      fail(t, cat("expected an expression, found '", toString(t.kind), "'"));
  }
}

}  // namespace grover::clc
