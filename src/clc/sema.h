// Semantic analysis: symbol tables, type checking and AST type annotation.
// After a successful Sema pass, every Expr::type is set and IRGen can lower
// without re-checking.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "clc/ast.h"
#include "ir/context.h"
#include "support/diagnostics.h"

namespace grover::clc {

/// What a name denotes inside a kernel.
struct Symbol {
  enum class Kind { ScalarVar, ArrayVar, PointerParam, ValueParam };
  Kind kind = Kind::ScalarVar;
  /// ScalarVar/ValueParam: the value type. ArrayVar: the element type.
  /// PointerParam: the pointee type.
  ir::Type* valueType = nullptr;
  ir::AddrSpace space = ir::AddrSpace::Private;
  bool isConst = false;
  std::uint64_t arrayCount = 0;  // ArrayVar only (flattened element count)
  std::vector<std::uint64_t> arrayDims;  // ArrayVar: original dimensions
};

/// Resolve a spelled TypeSpec to an ir::Type (scalar/vector/pointer).
[[nodiscard]] ir::Type* resolveType(ir::Context& ctx, const TypeSpec& spec);
/// Scalar/vector part only (ignores pointer-ness).
[[nodiscard]] ir::Type* resolveValueType(ir::Context& ctx,
                                         const TypeSpec& spec);

/// Usual arithmetic conversions for our subset; null if incompatible.
[[nodiscard]] ir::Type* commonNumericType(ir::Context& ctx, ir::Type* a,
                                          ir::Type* b);
/// True if a value of `from` implicitly converts to `to`.
[[nodiscard]] bool implicitlyConvertible(ir::Type* from, ir::Type* to);

/// Evaluate a constant integer expression (array dimensions); -1 when the
/// expression is not a supported constant.
[[nodiscard]] std::int64_t evalConstIntExpr(const Expr& expr);

/// Checks one translation unit. On success every Expr::type is populated.
class Sema {
 public:
  Sema(ir::Context& ctx, DiagnosticEngine& diags)
      : ctx_(ctx), diags_(diags) {}

  /// Returns true when no errors were found.
  bool check(TranslationUnit& tu);

 private:
  struct Scope {
    std::unordered_map<std::string, Symbol> symbols;
  };

  void checkKernel(KernelDecl& kernel);
  void checkStmt(Stmt& stmt);
  void checkBlock(BlockStmt& block);
  void checkDecl(DeclStmt& decl);
  void checkAssign(AssignStmt& assign);

  /// Type-check an expression; sets expr.type (error type = nullptr).
  ir::Type* checkExpr(Expr& expr);
  ir::Type* checkCall(CallExpr& call);
  /// True if the expression can be assigned to.
  bool isLValue(const Expr& expr) const;

  void pushScope() { scopes_.emplace_back(); }
  void popScope() { scopes_.pop_back(); }
  [[nodiscard]] const Symbol* lookup(const std::string& name) const;
  void declare(SourceLoc loc, const std::string& name, Symbol symbol);

  /// Evaluate a constant integer expression (array dims); -1 on failure.
  std::int64_t evalConstInt(const Expr& expr);

  ir::Context& ctx_;
  DiagnosticEngine& diags_;
  std::vector<Scope> scopes_;
  int loop_depth_ = 0;
  bool in_kernel_ = false;
};

}  // namespace grover::clc
