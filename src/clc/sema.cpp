#include "clc/sema.h"

#include "ir/instruction.h"
#include "support/str.h"

namespace grover::clc {

ir::Type* resolveValueType(ir::Context& ctx, const TypeSpec& spec) {
  ir::Type* scalar = nullptr;
  switch (spec.base) {
    case ScalarKind::Void: return ctx.voidTy();
    case ScalarKind::Bool: scalar = ctx.boolTy(); break;
    case ScalarKind::Int:
    case ScalarKind::UInt: scalar = ctx.int32Ty(); break;
    case ScalarKind::Long:
    case ScalarKind::ULong: scalar = ctx.int64Ty(); break;
    case ScalarKind::Float: scalar = ctx.floatTy(); break;
    case ScalarKind::Double: scalar = ctx.doubleTy(); break;
  }
  if (spec.vecLanes != 0) return ctx.vectorTy(scalar, spec.vecLanes);
  return scalar;
}

ir::Type* resolveType(ir::Context& ctx, const TypeSpec& spec) {
  ir::Type* value = resolveValueType(ctx, spec);
  if (spec.isPointer) return ctx.pointerTy(value, spec.space);
  return value;
}

ir::Type* commonNumericType(ir::Context& ctx, ir::Type* a, ir::Type* b) {
  if (a == nullptr || b == nullptr) return nullptr;
  // Vector op vector: identical vectors only. Vector op scalar: the vector
  // wins when the scalar converts to the element type.
  if (a->isVector() || b->isVector()) {
    if (a == b) return a;
    if (a->isVector() && !b->isVector() &&
        implicitlyConvertible(b, a->element())) {
      return a;
    }
    if (b->isVector() && !a->isVector() &&
        implicitlyConvertible(a, b->element())) {
      return b;
    }
    return nullptr;
  }
  if (!a->isScalarNumber() || !b->isScalarNumber()) return nullptr;
  auto rank = [&](ir::Type* t) {
    switch (t->kind()) {
      case ir::TypeKind::Bool: return 0;
      case ir::TypeKind::Int32: return 1;
      case ir::TypeKind::Int64: return 2;
      case ir::TypeKind::Float: return 3;
      case ir::TypeKind::Double: return 4;
      default: return -1;
    }
  };
  ir::Type* winner = rank(a) >= rank(b) ? a : b;
  // Bool promotes to int in arithmetic.
  if (winner->isBool()) winner = ctx.int32Ty();
  return winner;
}

bool implicitlyConvertible(ir::Type* from, ir::Type* to) {
  if (from == to) return true;
  if (from == nullptr || to == nullptr) return false;
  if (from->isScalarNumber() && to->isScalarNumber()) return true;
  if (from->isPointer() && to->isPointer()) {
    return from->element() == to->element() &&
           from->addrSpace() == to->addrSpace();
  }
  return false;
}

bool Sema::check(TranslationUnit& tu) {
  // Duplicate kernel names first: downstream lookups (Program::kernel,
  // serve-batch "<path.cl> <kernel-name>") resolve by name and would
  // silently pick whichever function the module lists first.
  std::unordered_map<std::string, SourceLoc> seen;
  for (const auto& kernel : tu.kernels) {
    const auto [it, inserted] = seen.emplace(kernel->name, kernel->loc);
    if (!inserted) {
      diags_.error(kernel->loc,
                   cat("redefinition of function '", kernel->name, "'"));
    }
  }
  for (auto& kernel : tu.kernels) checkKernel(*kernel);
  return !diags_.hasErrors();
}

const Symbol* Sema::lookup(const std::string& name) const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->symbols.find(name);
    if (found != it->symbols.end()) return &found->second;
  }
  return nullptr;
}

void Sema::declare(SourceLoc loc, const std::string& name, Symbol symbol) {
  if (scopes_.back().symbols.contains(name)) {
    diags_.error(loc, cat("redeclaration of '", name, "'"));
    return;
  }
  scopes_.back().symbols.emplace(name, symbol);
}

void Sema::checkKernel(KernelDecl& kernel) {
  in_kernel_ = kernel.isKernel;
  ir::Type* retTy = resolveValueType(ctx_, kernel.returnSpec);
  if (kernel.isKernel && !retTy->isVoid()) {
    diags_.error(kernel.loc, "__kernel functions must return void");
  }
  scopes_.clear();
  pushScope();
  for (const ParamDecl& param : kernel.params) {
    Symbol sym;
    sym.isConst = param.spec.isConst;
    if (param.spec.isPointer) {
      sym.kind = Symbol::Kind::PointerParam;
      sym.valueType = resolveValueType(ctx_, param.spec);
      sym.space = param.spec.space;
      if (kernel.isKernel && sym.space == ir::AddrSpace::Private) {
        diags_.error(param.loc,
                     cat("kernel pointer parameter '", param.name,
                         "' must be __global, __local or __constant"));
      }
    } else {
      sym.kind = Symbol::Kind::ValueParam;
      sym.valueType = resolveValueType(ctx_, param.spec);
      if (sym.valueType->isVoid()) {
        diags_.error(param.loc, "void parameter");
      }
    }
    declare(param.loc, param.name, sym);
  }
  checkBlock(*kernel.body);
  popScope();
}

void Sema::checkBlock(BlockStmt& block) {
  pushScope();
  for (auto& stmt : block.stmts) checkStmt(*stmt);
  popScope();
}

void Sema::checkStmt(Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::Block:
      checkBlock(static_cast<BlockStmt&>(stmt));
      return;
    case StmtKind::Decl:
      checkDecl(static_cast<DeclStmt&>(stmt));
      return;
    case StmtKind::ExprStmt: {
      auto& es = static_cast<ExprStmt&>(stmt);
      checkExpr(*es.expr);
      return;
    }
    case StmtKind::Assign:
      checkAssign(static_cast<AssignStmt&>(stmt));
      return;
    case StmtKind::IncDec: {
      auto& id = static_cast<IncDecStmt&>(stmt);
      ir::Type* t = checkExpr(*id.target);
      if (!isLValue(*id.target)) {
        diags_.error(stmt.loc, "++/-- target is not assignable");
      } else if (t != nullptr && !t->isInteger()) {
        diags_.error(stmt.loc, "++/-- requires an integer variable");
      }
      return;
    }
    case StmtKind::If: {
      auto& is = static_cast<IfStmt&>(stmt);
      ir::Type* t = checkExpr(*is.cond);
      if (t != nullptr && !t->isScalarNumber()) {
        diags_.error(is.cond->loc, "if condition must be scalar");
      }
      checkStmt(*is.thenBody);
      if (is.elseBody) checkStmt(*is.elseBody);
      return;
    }
    case StmtKind::For: {
      auto& fs = static_cast<ForStmt&>(stmt);
      pushScope();  // the induction variable scopes over the loop
      if (fs.init) checkStmt(*fs.init);
      if (fs.cond) {
        ir::Type* t = checkExpr(*fs.cond);
        if (t != nullptr && !t->isScalarNumber()) {
          diags_.error(fs.cond->loc, "for condition must be scalar");
        }
      }
      ++loop_depth_;
      checkStmt(*fs.body);
      if (fs.step) checkStmt(*fs.step);
      --loop_depth_;
      popScope();
      return;
    }
    case StmtKind::While: {
      auto& ws = static_cast<WhileStmt&>(stmt);
      ir::Type* t = checkExpr(*ws.cond);
      if (t != nullptr && !t->isScalarNumber()) {
        diags_.error(ws.cond->loc, "while condition must be scalar");
      }
      ++loop_depth_;
      checkStmt(*ws.body);
      --loop_depth_;
      return;
    }
    case StmtKind::DoWhile: {
      auto& ds = static_cast<DoWhileStmt&>(stmt);
      ++loop_depth_;
      checkStmt(*ds.body);
      --loop_depth_;
      ir::Type* t = checkExpr(*ds.cond);
      if (t != nullptr && !t->isScalarNumber()) {
        diags_.error(ds.cond->loc, "do-while condition must be scalar");
      }
      return;
    }
    case StmtKind::Return: {
      auto& rs = static_cast<ReturnStmt&>(stmt);
      if (rs.value) {
        if (in_kernel_) {
          diags_.error(stmt.loc, "kernel return must not carry a value");
        }
        checkExpr(*rs.value);
      }
      return;
    }
    case StmtKind::Break:
    case StmtKind::Continue:
      if (loop_depth_ == 0) {
        diags_.error(stmt.loc, "break/continue outside a loop");
      }
      return;
  }
}

std::int64_t evalConstIntExpr(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::IntLit:
      return static_cast<const IntLitExpr&>(expr).value;
    case ExprKind::Binary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      const std::int64_t l = evalConstIntExpr(*bin.lhs);
      const std::int64_t r = evalConstIntExpr(*bin.rhs);
      if (l < 0 || r < 0) return -1;
      switch (bin.op) {
        case BinOp::Add: return l + r;
        case BinOp::Sub: return l - r;
        case BinOp::Mul: return l * r;
        case BinOp::Div: return r != 0 ? l / r : -1;
        case BinOp::Shl: return l << r;
        default: return -1;
      }
    }
    default:
      return -1;
  }
}

std::int64_t Sema::evalConstInt(const Expr& expr) {
  return evalConstIntExpr(expr);
}

void Sema::checkDecl(DeclStmt& decl) {
  Symbol sym;
  sym.isConst = decl.spec.isConst;
  sym.valueType = resolveValueType(ctx_, decl.spec);
  if (sym.valueType->isVoid()) {
    diags_.error(decl.loc, "cannot declare a void variable");
    return;
  }
  if (decl.spec.isPointer) {
    diags_.error(decl.loc,
                 "pointer-typed local variables are not supported; index the "
                 "parameter directly");
    return;
  }
  if (!decl.arrayDims.empty()) {
    sym.kind = Symbol::Kind::ArrayVar;
    sym.space = decl.spec.space;
    std::uint64_t total = 1;
    for (const ExprPtr& dim : decl.arrayDims) {
      const std::int64_t n = evalConstInt(*dim);
      if (n <= 0) {
        diags_.error(dim->loc, "array dimension must be a positive constant");
        return;
      }
      sym.arrayDims.push_back(static_cast<std::uint64_t>(n));
      total *= static_cast<std::uint64_t>(n);
    }
    sym.arrayCount = total;
    if (decl.init) {
      diags_.error(decl.loc, "array initializers are not supported");
    }
  } else {
    sym.kind = Symbol::Kind::ScalarVar;
    if (decl.spec.space == ir::AddrSpace::Local) {
      // __local scalars are legal OpenCL but none of our benchmarks need
      // them; keep the model simple.
      diags_.error(decl.loc, "__local scalar variables are not supported");
    }
    if (decl.init) {
      ir::Type* initTy = checkExpr(*decl.init);
      if (initTy != nullptr && !implicitlyConvertible(initTy, sym.valueType)) {
        diags_.error(decl.init->loc,
                     cat("cannot initialize '", sym.valueType->str(),
                         "' with '", initTy->str(), "'"));
      }
    }
  }
  declare(decl.loc, decl.name, sym);
}

bool Sema::isLValue(const Expr& expr) const {
  switch (expr.kind) {
    case ExprKind::VarRef: {
      const auto& ref = static_cast<const VarRefExpr&>(expr);
      const Symbol* sym = lookup(ref.name);
      return sym != nullptr &&
             (sym->kind == Symbol::Kind::ScalarVar ||
              sym->kind == Symbol::Kind::ValueParam) &&
             !sym->isConst;
    }
    case ExprKind::Index:
      return true;
    case ExprKind::Member: {
      const auto& mem = static_cast<const MemberExpr&>(expr);
      return isLValue(*mem.base);
    }
    default:
      return false;
  }
}

void Sema::checkAssign(AssignStmt& assign) {
  ir::Type* lhsTy = checkExpr(*assign.lhs);
  ir::Type* rhsTy = checkExpr(*assign.rhs);
  if (!isLValue(*assign.lhs)) {
    diags_.error(assign.lhs->loc, "left side of assignment is not assignable");
    return;
  }
  if (lhsTy == nullptr || rhsTy == nullptr) return;
  if (!implicitlyConvertible(rhsTy, lhsTy) &&
      !(lhsTy->isVector() && implicitlyConvertible(rhsTy, lhsTy->element()))) {
    diags_.error(assign.loc, cat("cannot assign '", rhsTy->str(), "' to '",
                                 lhsTy->str(), "'"));
  }
  if (assign.op != AssignOp::Assign &&
      commonNumericType(ctx_, lhsTy, rhsTy) == nullptr) {
    diags_.error(assign.loc, "compound assignment on incompatible types");
  }
}

ir::Type* Sema::checkExpr(Expr& expr) {
  switch (expr.kind) {
    case ExprKind::IntLit:
      expr.type = ctx_.int32Ty();
      break;
    case ExprKind::FloatLit: {
      auto& lit = static_cast<FloatLitExpr&>(expr);
      expr.type = lit.isFloat32 ? ctx_.floatTy() : ctx_.floatTy();
      // OpenCL C defaults double literals to double, but the SDK kernels we
      // model are single precision throughout; unsuffixed literals are f32.
      break;
    }
    case ExprKind::BoolLit:
      expr.type = ctx_.boolTy();
      break;
    case ExprKind::VarRef: {
      auto& ref = static_cast<VarRefExpr&>(expr);
      const Symbol* sym = lookup(ref.name);
      if (sym == nullptr) {
        diags_.error(expr.loc, cat("use of undeclared name '", ref.name, "'"));
        break;
      }
      switch (sym->kind) {
        case Symbol::Kind::ScalarVar:
        case Symbol::Kind::ValueParam:
          expr.type = sym->valueType;
          break;
        case Symbol::Kind::ArrayVar:
          expr.type = ctx_.pointerTy(sym->valueType, sym->space);
          break;
        case Symbol::Kind::PointerParam:
          expr.type = ctx_.pointerTy(sym->valueType, sym->space);
          break;
      }
      break;
    }
    case ExprKind::Binary: {
      auto& bin = static_cast<BinaryExpr&>(expr);
      ir::Type* l = checkExpr(*bin.lhs);
      ir::Type* r = checkExpr(*bin.rhs);
      if (l == nullptr || r == nullptr) break;
      switch (bin.op) {
        case BinOp::Eq:
        case BinOp::Ne:
        case BinOp::Lt:
        case BinOp::Le:
        case BinOp::Gt:
        case BinOp::Ge:
          if (commonNumericType(ctx_, l, r) == nullptr) {
            diags_.error(expr.loc, cat("cannot compare '", l->str(), "' and '",
                                       r->str(), "'"));
          } else {
            expr.type = ctx_.boolTy();
          }
          break;
        case BinOp::LAnd:
        case BinOp::LOr:
          if (!l->isScalarNumber() || !r->isScalarNumber()) {
            diags_.error(expr.loc, "&&/|| require scalar operands");
          } else {
            expr.type = ctx_.boolTy();
          }
          break;
        case BinOp::Rem:
        case BinOp::Shl:
        case BinOp::Shr:
        case BinOp::BitAnd:
        case BinOp::BitOr:
        case BinOp::BitXor: {
          ir::Type* common = commonNumericType(ctx_, l, r);
          if (common == nullptr ||
              !(common->isInteger() ||
                (common->isVector() && common->element()->isInteger()))) {
            diags_.error(expr.loc, "bitwise/shift operators require integers");
          } else {
            expr.type = common;
          }
          break;
        }
        default: {
          ir::Type* common = commonNumericType(ctx_, l, r);
          if (common == nullptr) {
            diags_.error(expr.loc, cat("invalid operands '", l->str(),
                                       "' and '", r->str(), "'"));
          } else {
            expr.type = common;
          }
          break;
        }
      }
      break;
    }
    case ExprKind::Unary: {
      auto& un = static_cast<UnaryExpr&>(expr);
      ir::Type* t = checkExpr(*un.sub);
      if (t == nullptr) break;
      switch (un.op) {
        case UnOp::Neg:
          if (!t->isScalarNumber() && !t->isVector()) {
            diags_.error(expr.loc, "negation requires a numeric operand");
          } else {
            expr.type = t->isBool() ? ctx_.int32Ty() : t;
          }
          break;
        case UnOp::LogicalNot:
          if (!t->isScalarNumber()) {
            diags_.error(expr.loc, "! requires a scalar operand");
          } else {
            expr.type = ctx_.boolTy();
          }
          break;
        case UnOp::BitNot:
          if (!t->isInteger()) {
            diags_.error(expr.loc, "~ requires an integer operand");
          } else {
            expr.type = t;
          }
          break;
      }
      break;
    }
    case ExprKind::Conditional: {
      auto& cond = static_cast<ConditionalExpr&>(expr);
      ir::Type* c = checkExpr(*cond.cond);
      ir::Type* t = checkExpr(*cond.ifTrue);
      ir::Type* f = checkExpr(*cond.ifFalse);
      if (c != nullptr && !c->isScalarNumber()) {
        diags_.error(cond.cond->loc, "?: condition must be scalar");
      }
      if (t != nullptr && f != nullptr) {
        ir::Type* common = commonNumericType(ctx_, t, f);
        if (common == nullptr) {
          diags_.error(expr.loc, "?: arms have incompatible types");
        } else {
          expr.type = common;
        }
      }
      break;
    }
    case ExprKind::Index: {
      // Collect the full index chain: a[i][j] = Index(Index(a,i),j). The
      // chain is resolved against the root symbol so multi-dimensional
      // arrays type-check as a whole.
      std::vector<IndexExpr*> chain;
      Expr* base = &expr;
      while (base->kind == ExprKind::Index) {
        auto& idx = static_cast<IndexExpr&>(*base);
        chain.push_back(&idx);
        base = idx.base.get();
      }
      for (IndexExpr* link : chain) {
        ir::Type* indexTy = checkExpr(*link->index);
        if (indexTy != nullptr && !indexTy->isInteger()) {
          diags_.error(link->index->loc, "array index must be an integer");
        }
      }
      if (base->kind != ExprKind::VarRef) {
        diags_.error(base->loc, "subscripted value is not a pointer or array");
        break;
      }
      auto& ref = static_cast<VarRefExpr&>(*base);
      ir::Type* baseTy = checkExpr(*base);
      if (baseTy == nullptr) break;
      const Symbol* sym = lookup(ref.name);
      if (sym->kind == Symbol::Kind::PointerParam) {
        if (chain.size() != 1) {
          diags_.error(expr.loc, "pointer parameters support one subscript");
          break;
        }
      } else if (sym->kind == Symbol::Kind::ArrayVar) {
        if (chain.size() != sym->arrayDims.size()) {
          diags_.error(expr.loc,
                       cat("array '", ref.name, "' has ",
                           sym->arrayDims.size(), " dimension(s), indexed with ",
                           chain.size()));
          break;
        }
      } else {
        diags_.error(expr.loc, "subscripted value is not a pointer or array");
        break;
      }
      // Intermediate links carry the decayed pointer type; the outermost
      // link (this expr) yields the element value.
      for (std::size_t i = chain.size(); i-- > 1;) {
        chain[i]->type = baseTy;
      }
      expr.type = sym->valueType;
      break;
    }
    case ExprKind::Member: {
      auto& mem = static_cast<MemberExpr&>(expr);
      ir::Type* base = checkExpr(*mem.base);
      if (base == nullptr) break;
      if (!base->isVector()) {
        diags_.error(expr.loc, "member access requires a vector value");
        break;
      }
      static const std::string lanes = "xyzw";
      if (mem.member.size() != 1 ||
          lanes.find(mem.member[0]) == std::string::npos ||
          lanes.find(mem.member[0]) >= base->lanes()) {
        diags_.error(expr.loc,
                     cat("unknown vector component '.", mem.member, "'"));
        break;
      }
      expr.type = base->element();
      break;
    }
    case ExprKind::Call:
      expr.type = checkCall(static_cast<CallExpr&>(expr));
      break;
    case ExprKind::Cast: {
      auto& cst = static_cast<CastExpr&>(expr);
      ir::Type* from = checkExpr(*cst.sub);
      ir::Type* to = resolveValueType(ctx_, cst.target);
      if (cst.target.isPointer) {
        diags_.error(expr.loc, "pointer casts are not supported");
        break;
      }
      if (from != nullptr && !from->isScalarNumber()) {
        diags_.error(expr.loc, "cast source must be a scalar");
        break;
      }
      expr.type = to;
      break;
    }
    case ExprKind::VectorLit: {
      auto& vec = static_cast<VectorLitExpr&>(expr);
      ir::Type* target = resolveValueType(ctx_, vec.target);
      if (vec.elems.size() != 1 && vec.elems.size() != target->lanes()) {
        diags_.error(expr.loc,
                     cat("vector literal needs 1 or ", target->lanes(),
                         " elements, got ", vec.elems.size()));
      }
      for (auto& elem : vec.elems) {
        ir::Type* et = checkExpr(*elem);
        if (et != nullptr && !implicitlyConvertible(et, target->element())) {
          diags_.error(elem->loc, "vector element has incompatible type");
        }
      }
      expr.type = target;
      break;
    }
  }
  return expr.type;
}

ir::Type* Sema::checkCall(CallExpr& call) {
  const auto builtin = ir::lookupBuiltin(call.callee);
  if (!builtin.has_value()) {
    diags_.error(call.loc, cat("unknown function '", call.callee,
                               "' (user-defined functions are not supported)"));
    return nullptr;
  }
  std::vector<ir::Type*> argTypes;
  argTypes.reserve(call.args.size());
  for (auto& arg : call.args) argTypes.push_back(checkExpr(*arg));

  auto expectArgs = [&](unsigned n) {
    if (call.args.size() != n) {
      diags_.error(call.loc, cat("'", call.callee, "' expects ", n,
                                 " argument(s), got ", call.args.size()));
      return false;
    }
    return true;
  };

  using ir::Builtin;
  switch (*builtin) {
    case Builtin::GetGlobalId:
    case Builtin::GetLocalId:
    case Builtin::GetGroupId:
    case Builtin::GetGlobalSize:
    case Builtin::GetLocalSize:
    case Builtin::GetNumGroups:
      if (!expectArgs(1)) return nullptr;
      if (argTypes[0] != nullptr && !argTypes[0]->isInteger()) {
        diags_.error(call.loc, "work-item query dimension must be an integer");
      }
      return ctx_.int32Ty();
    case Builtin::GetWorkDim:
      if (!expectArgs(0)) return nullptr;
      return ctx_.int32Ty();
    case Builtin::Barrier:
      if (!expectArgs(1)) return nullptr;
      return ctx_.voidTy();
    case Builtin::Sqrt:
    case Builtin::RSqrt:
    case Builtin::Fabs:
    case Builtin::Exp:
    case Builtin::Log:
    case Builtin::Sin:
    case Builtin::Cos:
    case Builtin::Floor:
    case Builtin::Ceil:
      if (!expectArgs(1)) return nullptr;
      return argTypes[0] != nullptr && argTypes[0]->isFloatingPoint()
                 ? argTypes[0]
                 : ctx_.floatTy();
    case Builtin::Pow:
    case Builtin::FMin:
    case Builtin::FMax:
      if (!expectArgs(2)) return nullptr;
      return commonNumericType(ctx_, argTypes[0], argTypes[1]);
    case Builtin::Fma:
    case Builtin::Mad: {
      if (!expectArgs(3)) return nullptr;
      ir::Type* common = commonNumericType(ctx_, argTypes[0], argTypes[1]);
      return commonNumericType(ctx_, common, argTypes[2]);
    }
    case Builtin::IMin:
    case Builtin::IMax:
      if (!expectArgs(2)) return nullptr;
      return commonNumericType(ctx_, argTypes[0], argTypes[1]);
    case Builtin::IAbs:
      if (!expectArgs(1)) return nullptr;
      return argTypes[0];
    case Builtin::Mul24:
      if (!expectArgs(2)) return nullptr;
      return ctx_.int32Ty();
    case Builtin::Mad24:
      if (!expectArgs(3)) return nullptr;
      return ctx_.int32Ty();
    case Builtin::Clamp: {
      if (!expectArgs(3)) return nullptr;
      ir::Type* common = commonNumericType(ctx_, argTypes[0], argTypes[1]);
      return commonNumericType(ctx_, common, argTypes[2]);
    }
    case Builtin::Dot:
      if (!expectArgs(2)) return nullptr;
      if (argTypes[0] == nullptr || !argTypes[0]->isVector() ||
          argTypes[0] != argTypes[1]) {
        diags_.error(call.loc, "dot requires two identical vectors");
        return nullptr;
      }
      return argTypes[0]->element();
  }
  return nullptr;
}

}  // namespace grover::clc
