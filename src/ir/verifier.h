// Structural and SSA verification of IR. Throws GroverError with a
// description of the first violation; used between passes in tests.
#pragma once

#include "ir/function.h"
#include "ir/module.h"

namespace grover::ir {

/// Verify one function:
///  - every block ends in exactly one terminator,
///  - phi nodes are at block heads and cover exactly the predecessors,
///  - every operand is defined (argument/constant/instruction in function),
///  - SSA dominance: definitions dominate uses (phi uses checked on edges),
///  - operand/result types are consistent per opcode.
void verifyFunction(Function& fn);

/// Verify every function of the module.
void verifyModule(Module& module);

}  // namespace grover::ir
