// Functions: argument list + basic-block list + kernel metadata.
#pragma once

#include <list>
#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.h"
#include "ir/value.h"

namespace grover::ir {

class Module;

/// A kernel (or helper function). Owns its arguments and blocks.
class Function {
 public:
  Function(Module& module, std::string name, Type* returnType, bool isKernel)
      : module_(module),
        name_(std::move(name)),
        return_type_(returnType),
        is_kernel_(isKernel) {}

  /// Severs every operand edge before destroying blocks — instructions may
  /// reference values in blocks that would otherwise be destroyed first.
  ~Function();

  Function(const Function&) = delete;
  Function& operator=(const Function&) = delete;

  [[nodiscard]] Module& module() const { return module_; }
  [[nodiscard]] Context& context() const;
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Type* returnType() const { return return_type_; }
  [[nodiscard]] bool isKernel() const { return is_kernel_; }

  Argument* addArgument(Type* type, std::string name);
  [[nodiscard]] const std::vector<std::unique_ptr<Argument>>& args() const {
    return args_;
  }
  [[nodiscard]] Argument* arg(unsigned i) const { return args_.at(i).get(); }
  [[nodiscard]] unsigned numArgs() const {
    return static_cast<unsigned>(args_.size());
  }
  /// Argument by name; null if absent.
  [[nodiscard]] Argument* findArg(const std::string& name) const;

  BasicBlock* addBlock(std::string name);
  /// Insert a new block after `after` in layout order.
  BasicBlock* addBlockAfter(BasicBlock* after, std::string name);
  void eraseBlock(BasicBlock* block);

  [[nodiscard]] BasicBlock* entry() const {
    return blocks_.empty() ? nullptr : blocks_.front().get();
  }
  [[nodiscard]] const std::list<std::unique_ptr<BasicBlock>>& blocks() const {
    return blocks_;
  }

  /// Blocks in layout order as raw pointers (stable snapshot).
  [[nodiscard]] std::vector<BasicBlock*> blockList() const;

  /// Assign printer/interpreter slot numbers to args and instructions and
  /// default names to anonymous values. Returns the number of slots.
  unsigned renumber();

  /// Total instruction count across all blocks.
  [[nodiscard]] std::size_t instructionCount() const;

 private:
  Module& module_;
  std::string name_;
  Type* return_type_;
  bool is_kernel_;
  std::vector<std::unique_ptr<Argument>> args_;
  std::list<std::unique_ptr<BasicBlock>> blocks_;
};

}  // namespace grover::ir
