#include "ir/value.h"

#include <algorithm>

namespace grover::ir {

Value::~Value() {
  // A value can die while users still reference it — e.g. one function's
  // argument used (illegally, but verifiably) by another function whose
  // teardown runs later. Null the dangling edges so the surviving users'
  // dropAllOperands() never touches freed memory.
  for (Use* use : uses_) use->value = nullptr;
}

void Value::removeUse(Use* use) {
  auto it = std::find(uses_.begin(), uses_.end(), use);
  if (it != uses_.end()) uses_.erase(it);
}

void Value::replaceAllUsesWith(Value* replacement) {
  if (replacement == this) return;
  // setOperand mutates uses_; iterate over a snapshot.
  std::vector<Use*> snapshot = uses_;
  for (Use* use : snapshot) {
    use->user->setOperand(use->index, replacement);
  }
}

void User::setOperand(unsigned i, Value* v) {
  if (i >= operands_.size()) throw GroverError("setOperand out of range");
  Use& use = operands_[i];
  if (use.value == v) return;
  if (use.value != nullptr) use.value->removeUse(&use);
  use.value = v;
  if (v != nullptr) v->addUse(&use);
}

bool User::usesValue(const Value* v) const {
  return std::any_of(operands_.begin(), operands_.end(),
                     [v](const Use& u) { return u.value == v; });
}

void User::dropAllOperands() {
  for (Use& use : operands_) {
    if (use.value != nullptr) {
      use.value->removeUse(&use);
      use.value = nullptr;
    }
  }
}

void User::initOperands(std::span<Value* const> values) {
  dropAllOperands();
  operands_.clear();
  for (Value* v : values) appendOperand(v);
}

void User::appendOperand(Value* v) {
  operands_.push_back(Use{nullptr, this, numOperands()});
  Use& use = operands_.back();
  use.value = v;
  if (v != nullptr) v->addUse(&use);
}

void User::removeOperandAt(unsigned i) {
  if (i >= operands_.size()) throw GroverError("removeOperandAt out of range");
  // A middle erase invalidates every element address in a deque, so
  // unregister all uses, erase, then re-register.
  for (Use& use : operands_) {
    if (use.value != nullptr) use.value->removeUse(&use);
  }
  operands_.erase(operands_.begin() + i);
  for (unsigned j = 0; j < operands_.size(); ++j) {
    operands_[j].index = j;
    if (operands_[j].value != nullptr) {
      operands_[j].value->addUse(&operands_[j]);
    }
  }
}

}  // namespace grover::ir
