#include "ir/module.h"

namespace grover::ir {

Function* Module::addFunction(std::string name, Type* returnType,
                              bool isKernel) {
  functions_.push_back(
      std::make_unique<Function>(*this, std::move(name), returnType, isKernel));
  return functions_.back().get();
}

Function* Module::findFunction(const std::string& name) const {
  for (const auto& f : functions_) {
    if (f->name() == name) return f.get();
  }
  return nullptr;
}

std::vector<Function*> Module::kernels() const {
  std::vector<Function*> out;
  for (const auto& f : functions_) {
    if (f->isKernel()) out.push_back(f.get());
  }
  return out;
}

}  // namespace grover::ir
