#include "ir/type.h"

#include "support/diagnostics.h"
#include "support/str.h"

namespace grover::ir {

const char* toString(AddrSpace space) {
  switch (space) {
    case AddrSpace::Private:
      return "private";
    case AddrSpace::Global:
      return "global";
    case AddrSpace::Local:
      return "local";
    case AddrSpace::Constant:
      return "constant";
  }
  return "?";
}

std::uint64_t Type::sizeInBytes() const {
  switch (kind_) {
    case TypeKind::Void:
      throw GroverError("sizeInBytes of void");
    case TypeKind::Bool:
      return 1;
    case TypeKind::Int32:
    case TypeKind::Float:
      return 4;
    case TypeKind::Int64:
    case TypeKind::Double:
    case TypeKind::Pointer:
      return 8;
    case TypeKind::Vector:
      return element_->sizeInBytes() * lanes_;
  }
  throw GroverError("sizeInBytes: bad type kind");
}

std::string Type::str() const {
  switch (kind_) {
    case TypeKind::Void:
      return "void";
    case TypeKind::Bool:
      return "i1";
    case TypeKind::Int32:
      return "i32";
    case TypeKind::Int64:
      return "i64";
    case TypeKind::Float:
      return "f32";
    case TypeKind::Double:
      return "f64";
    case TypeKind::Vector:
      return cat("<", lanes_, " x ", element_->str(), ">");
    case TypeKind::Pointer:
      return cat(element_->str(), " ", toString(space_), "*");
  }
  return "?";
}

}  // namespace grover::ir
