#include "ir/printer.h"

#include <sstream>

#include "ir/casting.h"
#include "support/str.h"

namespace grover::ir {
namespace {

std::string typedRef(const Value* v) {
  return v->type()->str() + " " + printValueRef(v);
}

}  // namespace

std::string printValueRef(const Value* v) {
  if (v == nullptr) return "<null>";
  switch (v->kind()) {
    case ValueKind::ConstantInt:
      return std::to_string(cast<ConstantInt>(v)->value());
    case ValueKind::ConstantFloat: {
      std::ostringstream os;
      os << cast<ConstantFloat>(v)->value();
      return os.str();
    }
    case ValueKind::ConstantUndef:
      return "undef";
    case ValueKind::BasicBlock:
      return "%" + v->name();
    default:
      return "%" + v->name();
  }
}

std::string printInst(const Instruction* inst) {
  std::ostringstream os;
  if (!inst->type()->isVoid()) {
    os << printValueRef(inst) << " = ";
  }
  switch (inst->kind()) {
    case ValueKind::InstAlloca: {
      const auto* a = cast<AllocaInst>(inst);
      os << "alloca " << a->allocatedType()->str() << ", count " << a->count()
         << ", addrspace(" << toString(a->space()) << ")";
      break;
    }
    case ValueKind::InstLoad: {
      const auto* l = cast<LoadInst>(inst);
      os << "load " << inst->type()->str() << ", " << typedRef(l->pointer());
      break;
    }
    case ValueKind::InstStore: {
      const auto* s = cast<StoreInst>(inst);
      os << "store " << typedRef(s->value()) << ", " << typedRef(s->pointer());
      break;
    }
    case ValueKind::InstGep: {
      const auto* g = cast<GepInst>(inst);
      os << "gep " << typedRef(g->pointer()) << ", "
         << typedRef(g->index());
      break;
    }
    case ValueKind::InstBinary: {
      const auto* b = cast<BinaryInst>(inst);
      os << toString(b->op()) << " " << typedRef(b->lhs()) << ", "
         << printValueRef(b->rhs());
      break;
    }
    case ValueKind::InstICmp: {
      const auto* c = cast<ICmpInst>(inst);
      os << "icmp " << toString(c->pred()) << " " << typedRef(c->lhs()) << ", "
         << printValueRef(c->rhs());
      break;
    }
    case ValueKind::InstFCmp: {
      const auto* c = cast<FCmpInst>(inst);
      os << "fcmp " << toString(c->pred()) << " " << typedRef(c->lhs()) << ", "
         << printValueRef(c->rhs());
      break;
    }
    case ValueKind::InstCast: {
      const auto* c = cast<CastInst>(inst);
      os << toString(c->op()) << " " << typedRef(c->value()) << " to "
         << inst->type()->str();
      break;
    }
    case ValueKind::InstSelect: {
      const auto* s = cast<SelectInst>(inst);
      os << "select " << typedRef(s->condition()) << ", "
         << typedRef(s->ifTrue()) << ", " << printValueRef(s->ifFalse());
      break;
    }
    case ValueKind::InstPhi: {
      const auto* p = cast<PhiInst>(inst);
      os << "phi " << inst->type()->str();
      for (unsigned i = 0; i < p->numIncoming(); ++i) {
        os << (i == 0 ? " " : ", ") << "[" << printValueRef(p->incomingValue(i))
           << ", " << printValueRef(p->incomingBlock(i)) << "]";
      }
      break;
    }
    case ValueKind::InstCall: {
      const auto* c = cast<CallInst>(inst);
      os << "call " << inst->type()->str() << " @" << builtinName(c->builtin())
         << "(";
      for (unsigned i = 0; i < c->numArgs(); ++i) {
        if (i != 0) os << ", ";
        os << typedRef(c->arg(i));
      }
      os << ")";
      break;
    }
    case ValueKind::InstBr: {
      const auto* b = cast<BrInst>(inst);
      os << "br %" << b->dest()->name();
      break;
    }
    case ValueKind::InstCondBr: {
      const auto* b = cast<CondBrInst>(inst);
      os << "br " << typedRef(b->condition()) << ", %" << b->ifTrue()->name()
         << ", %" << b->ifFalse()->name();
      break;
    }
    case ValueKind::InstRet: {
      const auto* r = cast<RetInst>(inst);
      if (r->value() != nullptr) {
        os << "ret " << typedRef(r->value());
      } else {
        os << "ret void";
      }
      break;
    }
    case ValueKind::InstExtractElement: {
      const auto* e = cast<ExtractElementInst>(inst);
      os << "extractelement " << typedRef(e->vector()) << ", "
         << typedRef(e->index());
      break;
    }
    case ValueKind::InstInsertElement: {
      const auto* e = cast<InsertElementInst>(inst);
      os << "insertelement " << typedRef(e->vector()) << ", "
         << typedRef(e->scalar()) << ", " << typedRef(e->index());
      break;
    }
    default:
      os << "<unknown inst>";
  }
  return os.str();
}

std::string printFunction(Function& fn) {
  fn.renumber();
  std::ostringstream os;
  os << (fn.isKernel() ? "kernel " : "func ") << fn.returnType()->str() << " @"
     << fn.name() << "(";
  for (unsigned i = 0; i < fn.numArgs(); ++i) {
    if (i != 0) os << ", ";
    os << fn.arg(i)->type()->str() << " %" << fn.arg(i)->name();
  }
  os << ") {\n";
  for (BasicBlock* bb : fn.blockList()) {
    os << bb->name() << ":\n";
    for (const auto& inst : *bb) {
      os << "  " << printInst(inst.get()) << "\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string printModule(const Module& module) {
  std::ostringstream os;
  os << "; module '" << module.name() << "'\n";
  for (const auto& fn : module.functions()) {
    os << "\n" << printFunction(*fn);
  }
  return os.str();
}

}  // namespace grover::ir
