#include "ir/basic_block.h"

#include <algorithm>

#include "support/diagnostics.h"
#include "support/str.h"

namespace grover::ir {

Instruction* BasicBlock::terminator() const {
  if (insts_.empty() || !insts_.back()->isTerminator()) return nullptr;
  return insts_.back().get();
}

Instruction* BasicBlock::append(std::unique_ptr<Instruction> inst) {
  inst->setParent(this);
  insts_.push_back(std::move(inst));
  return insts_.back().get();
}

Instruction* BasicBlock::insertBefore(Instruction* pos,
                                      std::unique_ptr<Instruction> inst) {
  if (pos == nullptr) return append(std::move(inst));
  inst->setParent(this);
  auto it = positionOf(pos);
  return insts_.insert(it, std::move(inst))->get();
}

void BasicBlock::erase(Instruction* inst) {
  if (inst->hasUses()) {
    throw GroverError(
        cat("erasing instruction '", inst->name(), "' that still has uses"));
  }
  auto it = positionOf(inst);
  insts_.erase(it);
}

std::unique_ptr<Instruction> BasicBlock::detach(Instruction* inst) {
  auto it = positionOf(inst);
  std::unique_ptr<Instruction> owned = std::move(*it);
  insts_.erase(it);
  owned->setParent(nullptr);
  return owned;
}

BasicBlock::iterator BasicBlock::positionOf(Instruction* inst) {
  auto it = std::find_if(
      insts_.begin(), insts_.end(),
      [inst](const std::unique_ptr<Instruction>& p) { return p.get() == inst; });
  if (it == insts_.end()) {
    throw GroverError("instruction not in this block");
  }
  return it;
}

std::vector<BasicBlock*> BasicBlock::successors() const {
  std::vector<BasicBlock*> out;
  const Instruction* term = terminator();
  if (term == nullptr) return out;
  if (const auto* br = dyn_cast<BrInst>(term)) {
    out.push_back(br->dest());
  } else if (const auto* cbr = dyn_cast<CondBrInst>(term)) {
    out.push_back(cbr->ifTrue());
    if (cbr->ifFalse() != cbr->ifTrue()) out.push_back(cbr->ifFalse());
  }
  return out;
}

std::vector<BasicBlock*> BasicBlock::predecessors() const {
  std::vector<BasicBlock*> out;
  for (const Use* use : uses()) {
    auto* inst = dyn_cast<Instruction>(use->user);
    if (inst == nullptr || !inst->isTerminator()) continue;
    BasicBlock* pred = inst->parent();
    if (std::find(out.begin(), out.end(), pred) == out.end()) {
      out.push_back(pred);
    }
  }
  return out;
}

std::vector<PhiInst*> BasicBlock::phis() const {
  std::vector<PhiInst*> out;
  for (const auto& inst : insts_) {
    if (auto* phi = dyn_cast<PhiInst>(inst.get())) {
      out.push_back(phi);
    } else {
      break;
    }
  }
  return out;
}

}  // namespace grover::ir
