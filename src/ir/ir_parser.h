// Textual IR parser: reads the exact format ir/printer.h emits, enabling
// IR-level test fixtures and print→parse round-trips.
#pragma once

#include <memory>
#include <string>

#include "ir/context.h"
#include "ir/module.h"

namespace grover::ir {

/// Parse a module printed by printModule()/printFunction(). Throws
/// GroverError with a line-oriented message on malformed input. The
/// returned module's functions are verified.
[[nodiscard]] std::unique_ptr<Module> parseModule(Context& ctx,
                                                  const std::string& text);

}  // namespace grover::ir
