// Human-readable IR printing (LLVM-flavored). Used by tests, the groverc
// tool, and the Fig.1-style before/after listings.
#pragma once

#include <string>

#include "ir/function.h"
#include "ir/module.h"

namespace grover::ir {

/// Render one value reference ("%v3", "42", "3.5f", "%arg0").
[[nodiscard]] std::string printValueRef(const Value* v);

/// Render a single instruction (no trailing newline).
[[nodiscard]] std::string printInst(const Instruction* inst);

/// Render a whole function. Calls renumber() on it first.
[[nodiscard]] std::string printFunction(Function& fn);

/// Render all functions of a module.
[[nodiscard]] std::string printModule(const Module& module);

}  // namespace grover::ir
