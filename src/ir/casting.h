// Lightweight kind-based RTTI (isa/cast/dyn_cast) for the IR class
// hierarchy. Each concrete class provides `static bool classof(const Value*)`.
#pragma once

#include "ir/value.h"
#include "support/diagnostics.h"

namespace grover::ir {

template <typename To, typename From>
[[nodiscard]] bool isa(const From* v) {
  return v != nullptr && To::classof(v);
}

template <typename To, typename From>
[[nodiscard]] To* cast(From* v) {
  if (!isa<To>(v)) throw GroverError("ir::cast to wrong type");
  return static_cast<To*>(v);
}

template <typename To, typename From>
[[nodiscard]] const To* cast(const From* v) {
  if (!isa<To>(v)) throw GroverError("ir::cast to wrong type");
  return static_cast<const To*>(v);
}

template <typename To, typename From>
[[nodiscard]] To* dyn_cast(From* v) {
  return isa<To>(v) ? static_cast<To*>(v) : nullptr;
}

template <typename To, typename From>
[[nodiscard]] const To* dyn_cast(const From* v) {
  return isa<To>(v) ? static_cast<const To*>(v) : nullptr;
}

}  // namespace grover::ir
