#include "ir/ir_parser.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "ir/builder.h"
#include "ir/casting.h"
#include "ir/verifier.h"
#include "support/diagnostics.h"
#include "support/str.h"

namespace grover::ir {
namespace {

/// Cursor over one line of printed IR.
class LineCursor {
 public:
  LineCursor(std::string line, unsigned lineNo)
      : line_(std::move(line)), line_no_(lineNo) {}

  void skipWs() {
    while (pos_ < line_.size() && (line_[pos_] == ' ' || line_[pos_] == '\t')) {
      ++pos_;
    }
  }
  [[nodiscard]] bool atEnd() {
    skipWs();
    return pos_ >= line_.size();
  }
  [[nodiscard]] char peek() {
    skipWs();
    return pos_ < line_.size() ? line_[pos_] : '\0';
  }
  bool tryConsume(const std::string& token) {
    skipWs();
    if (line_.compare(pos_, token.size(), token) == 0) {
      pos_ += token.size();
      return true;
    }
    return false;
  }
  void expect(const std::string& token, const char* what) {
    if (!tryConsume(token)) {
      fail(cat("expected '", token, "' (", what, ")"));
    }
  }
  /// Identifier charset: letters, digits, _, ., -.
  std::string parseWord() {
    skipWs();
    std::string out;
    while (pos_ < line_.size() &&
           (std::isalnum(static_cast<unsigned char>(line_[pos_])) != 0 ||
            line_[pos_] == '_' || line_[pos_] == '.' || line_[pos_] == '-')) {
      out += line_[pos_++];
    }
    if (out.empty()) fail("expected an identifier");
    return out;
  }
  std::string parsePercentName() {
    expect("%", "value or block name");
    return parseWord();
  }
  std::int64_t parseInt() {
    skipWs();
    std::size_t consumed = 0;
    const std::int64_t v = std::stoll(line_.substr(pos_), &consumed);
    pos_ += consumed;
    return v;
  }
  double parseDouble() {
    skipWs();
    std::size_t consumed = 0;
    const double v = std::stod(line_.substr(pos_), &consumed);
    pos_ += consumed;
    return v;
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw GroverError(cat("IR parse error, line ", line_no_, ": ", msg,
                          " in '", line_, "'"));
  }
  [[nodiscard]] const std::string& text() const { return line_; }

 private:
  std::string line_;
  unsigned line_no_;
  std::size_t pos_ = 0;
};

class IrParser {
 public:
  IrParser(Context& ctx, const std::string& text) : ctx_(ctx) {
    std::istringstream is(text);
    std::string line;
    unsigned no = 0;
    while (std::getline(is, line)) {
      ++no;
      // The printer's header comment carries the module name; recover it
      // so print → parse → print is a fixed point at module level.
      if (lines_.empty() && line.rfind("; module '", 0) == 0) {
        const std::size_t close = line.rfind('\'');
        if (close > 10) module_name_ = line.substr(10, close - 10);
      }
      // Strip comments, trailing whitespace and blank lines.
      const std::size_t semi = line.find(';');
      if (semi != std::string::npos) line = line.substr(0, semi);
      while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                               line.back() == '\r')) {
        line.pop_back();
      }
      if (!line.empty()) lines_.push_back({line, no});
    }
  }

  std::unique_ptr<Module> run() {
    auto module = std::make_unique<Module>(ctx_, module_name_);
    while (index_ < lines_.size()) {
      parseFunction(*module);
    }
    verifyModule(*module);
    return module;
  }

 private:
  LineCursor cursor() {
    if (index_ >= lines_.size()) {
      throw GroverError("IR parse error: unexpected end of input");
    }
    return LineCursor(lines_[index_].first, lines_[index_].second);
  }

  Type* parseType(LineCursor& c) {
    Type* base = nullptr;
    if (c.tryConsume("void")) {
      base = ctx_.voidTy();
    } else if (c.tryConsume("i1")) {
      base = ctx_.boolTy();
    } else if (c.tryConsume("i32")) {
      base = ctx_.int32Ty();
    } else if (c.tryConsume("i64")) {
      base = ctx_.int64Ty();
    } else if (c.tryConsume("f32")) {
      base = ctx_.floatTy();
    } else if (c.tryConsume("f64")) {
      base = ctx_.doubleTy();
    } else if (c.tryConsume("<")) {
      const std::int64_t lanes = c.parseInt();
      c.expect("x", "vector type");
      Type* elem = parseType(c);
      c.expect(">", "vector type");
      base = ctx_.vectorTy(elem, static_cast<unsigned>(lanes));
    } else {
      c.fail("expected a type");
    }
    // Pointer suffix: "<space>*" with an address-space word.
    for (const auto& [word, space] :
         {std::pair<const char*, AddrSpace>{"private*", AddrSpace::Private},
          {"global*", AddrSpace::Global},
          {"local*", AddrSpace::Local},
          {"constant*", AddrSpace::Constant}}) {
      if (c.tryConsume(word)) return ctx_.pointerTy(base, space);
    }
    return base;
  }

  Value* parseValueRef(LineCursor& c, Type* type) {
    if (c.tryConsume("undef")) return ctx_.getUndef(type);
    if (c.peek() == '%') {
      const std::string name = c.parsePercentName();
      auto it = values_.find(name);
      if (it == values_.end()) c.fail("unknown value %" + name);
      return it->second;
    }
    if (type->isFloatingPoint()) {
      return ctx_.getFP(type, c.parseDouble());
    }
    if (type->isInteger()) {
      return ctx_.getInt(type, c.parseInt());
    }
    c.fail("expected a value reference");
  }

  /// "T %x" or "T 42": typed operand.
  Value* parseTypedValue(LineCursor& c) {
    Type* type = parseType(c);
    return parseValueRef(c, type);
  }

  BasicBlock* blockRef(LineCursor& c) {
    const std::string name = c.parsePercentName();
    auto it = blocks_.find(name);
    if (it == blocks_.end()) c.fail("unknown block %" + name);
    return it->second;
  }

  void define(LineCursor& c, const std::string& name, Value* v) {
    v->setName(name);
    if (!values_.emplace(name, v).second) {
      c.fail("redefinition of %" + name);
    }
  }

  void parseFunction(Module& module) {
    LineCursor header = cursor();
    bool isKernel = true;
    if (header.tryConsume("kernel")) {
      isKernel = true;
    } else if (header.tryConsume("func")) {
      isKernel = false;
    } else {
      header.fail("expected 'kernel' or 'func'");
    }
    Type* retTy = parseType(header);
    header.expect("@", "function name");
    const std::string name = header.parseWord();
    Function* fn = module.addFunction(name, retTy, isKernel);
    values_.clear();
    blocks_.clear();
    phi_fixups_.clear();

    header.expect("(", "parameter list");
    if (!header.tryConsume(")")) {
      do {
        Type* paramTy = parseType(header);
        const std::string paramName = header.parsePercentName();
        Argument* arg = fn->addArgument(paramTy, paramName);
        define(header, paramName, arg);
      } while (header.tryConsume(","));
      header.expect(")", "parameter list");
    }
    header.expect("{", "function body");
    ++index_;

    // Pre-scan: create every block so branches can reference forward.
    for (std::size_t i = index_; i < lines_.size(); ++i) {
      const std::string& line = lines_[i].first;
      if (line == "}") break;
      if (line.back() == ':' && line.find("  ") != 0) {
        const std::string blockName = line.substr(0, line.size() - 1);
        BasicBlock* bb = fn->addBlock(blockName);
        blocks_.emplace(blockName, bb);
      }
    }

    IRBuilder builder(ctx_);
    BasicBlock* current = nullptr;
    for (;;) {
      LineCursor c = cursor();
      if (c.tryConsume("}")) {
        ++index_;
        break;
      }
      const std::string& raw = c.text();
      if (raw.back() == ':' && raw.find("  ") != 0) {
        current = blocks_.at(raw.substr(0, raw.size() - 1));
        builder.setInsertPoint(current);
        ++index_;
        continue;
      }
      if (current == nullptr) c.fail("instruction outside any block");
      parseInstruction(c, builder);
      ++index_;
    }

    // Resolve phi incoming values recorded as textual fixups.
    for (const PhiFixup& fixup : phi_fixups_) {
      for (const auto& [valueText, blockName] : fixup.incoming) {
        auto blockIt = blocks_.find(blockName);
        if (blockIt == blocks_.end()) {
          throw GroverError("IR parse error: phi references unknown block %" +
                            blockName);
        }
        Value* v = nullptr;
        if (valueText == "undef") {
          v = ctx_.getUndef(fixup.phi->type());
        } else if (!valueText.empty() && valueText[0] == '%') {
          auto it = values_.find(valueText.substr(1));
          if (it == values_.end()) {
            throw GroverError("IR parse error: phi references unknown value " +
                              valueText);
          }
          v = it->second;
        } else if (fixup.phi->type()->isFloatingPoint()) {
          v = ctx_.getFP(fixup.phi->type(), std::strtod(valueText.c_str(), nullptr));
        } else {
          v = ctx_.getInt(fixup.phi->type(),
                          std::strtoll(valueText.c_str(), nullptr, 10));
        }
        fixup.phi->addIncoming(v, blockIt->second);
      }
    }
  }

  void parseInstruction(LineCursor& c, IRBuilder& b) {
    // Optional result name.
    std::string resultName;
    if (c.peek() == '%') {
      resultName = c.parsePercentName();
      c.expect("=", "instruction result");
    }

    Value* result = nullptr;
    if (c.tryConsume("alloca")) {
      Type* elem = parseType(c);
      c.expect(",", "alloca");
      c.expect("count", "alloca");
      const std::int64_t count = c.parseInt();
      c.expect(",", "alloca");
      c.expect("addrspace(", "alloca");
      AddrSpace space = AddrSpace::Private;
      if (c.tryConsume("private")) space = AddrSpace::Private;
      else if (c.tryConsume("global")) space = AddrSpace::Global;
      else if (c.tryConsume("local")) space = AddrSpace::Local;
      else if (c.tryConsume("constant")) space = AddrSpace::Constant;
      else c.fail("bad address space");
      c.expect(")", "alloca");
      result = b.createAlloca(elem, static_cast<std::uint64_t>(count), space);
    } else if (c.tryConsume("load")) {
      parseType(c);  // result type (redundant with pointer)
      c.expect(",", "load");
      result = b.createLoad(parseTypedValue(c));
    } else if (c.tryConsume("store")) {
      Value* value = parseTypedValue(c);
      c.expect(",", "store");
      Value* ptr = parseTypedValue(c);
      b.createStore(value, ptr);
    } else if (c.tryConsume("gep")) {
      Value* ptr = parseTypedValue(c);
      c.expect(",", "gep");
      result = b.createGep(ptr, parseTypedValue(c));
    } else if (c.tryConsume("icmp")) {
      const CmpPred pred = parseCmpPred(c);
      Value* lhs = parseTypedValue(c);
      c.expect(",", "icmp");
      result = b.createICmp(pred, lhs, parseValueRef(c, lhs->type()));
    } else if (c.tryConsume("fcmp")) {
      const CmpPred pred = parseCmpPred(c);
      Value* lhs = parseTypedValue(c);
      c.expect(",", "fcmp");
      result = b.createFCmp(pred, lhs, parseValueRef(c, lhs->type()));
    } else if (c.tryConsume("select")) {
      Value* cond = parseTypedValue(c);
      c.expect(",", "select");
      Value* t = parseTypedValue(c);
      c.expect(",", "select");
      result = b.createSelect(cond, t, parseValueRef(c, t->type()));
    } else if (c.tryConsume("phi")) {
      Type* type = parseType(c);
      PhiInst* phi = b.createPhi(type);
      PhiFixup fixup;
      fixup.phi = phi;
      while (c.tryConsume("[")) {
        // Capture the raw value text up to the comma (resolved later).
        std::string valueText;
        if (c.tryConsume("undef")) {
          valueText = "undef";
        } else if (c.peek() == '%') {
          valueText = "%" + c.parsePercentName();
        } else if (type->isFloatingPoint()) {
          valueText = std::to_string(c.parseDouble());
        } else {
          valueText = std::to_string(c.parseInt());
        }
        c.expect(",", "phi incoming");
        const std::string blockName = c.parsePercentName();
        c.expect("]", "phi incoming");
        fixup.incoming.emplace_back(valueText, blockName);
        if (!c.tryConsume(",")) break;
      }
      phi_fixups_.push_back(std::move(fixup));
      result = phi;
    } else if (c.tryConsume("call")) {
      Type* retTy = parseType(c);
      c.expect("@", "call target");
      const std::string callee = c.parseWord();
      const auto builtin = lookupBuiltin(callee);
      if (!builtin.has_value()) c.fail("unknown builtin @" + callee);
      c.expect("(", "call");
      std::vector<Value*> args;
      if (!c.tryConsume(")")) {
        do {
          args.push_back(parseTypedValue(c));
        } while (c.tryConsume(","));
        c.expect(")", "call");
      }
      result = b.createCall(*builtin, retTy, args);
    } else if (c.tryConsume("br")) {
      if (c.tryConsume("i1")) {
        Value* cond = parseValueRef(c, ctx_.boolTy());
        c.expect(",", "condbr");
        BasicBlock* t = blockRef(c);
        c.expect(",", "condbr");
        b.createCondBr(cond, t, blockRef(c));
      } else {
        b.createBr(blockRef(c));
      }
    } else if (c.tryConsume("ret")) {
      if (c.tryConsume("void")) {
        b.createRetVoid();
      } else {
        b.createRet(parseTypedValue(c));
      }
    } else if (c.tryConsume("extractelement")) {
      Value* vec = parseTypedValue(c);
      c.expect(",", "extractelement");
      result = b.createExtractElement(vec, parseTypedValue(c));
    } else if (c.tryConsume("insertelement")) {
      Value* vec = parseTypedValue(c);
      c.expect(",", "insertelement");
      Value* scalar = parseTypedValue(c);
      c.expect(",", "insertelement");
      result = b.createInsertElement(vec, scalar, parseTypedValue(c));
    } else {
      // Binary ops and casts share the "<mnemonic> <typed lhs>, rhs" /
      // "<mnemonic> <typed value> to <type>" forms.
      result = parseBinaryOrCast(c, b);
    }

    if (!resultName.empty()) {
      if (result == nullptr) c.fail("instruction has no result");
      define(c, resultName, result);
    }
  }

  CmpPred parseCmpPred(LineCursor& c) {
    for (const auto& [word, pred] : std::initializer_list<
             std::pair<const char*, CmpPred>>{
             {"eq", CmpPred::EQ},   {"ne", CmpPred::NE},
             {"slt", CmpPred::SLT}, {"sle", CmpPred::SLE},
             {"sgt", CmpPred::SGT}, {"sge", CmpPred::SGE},
             {"ult", CmpPred::ULT}, {"ule", CmpPred::ULE},
             {"ugt", CmpPred::UGT}, {"uge", CmpPred::UGE},
             {"oeq", CmpPred::OEQ}, {"one", CmpPred::ONE},
             {"olt", CmpPred::OLT}, {"ole", CmpPred::OLE},
             {"ogt", CmpPred::OGT}, {"oge", CmpPred::OGE}}) {
      if (c.tryConsume(word)) return pred;
    }
    c.fail("expected a comparison predicate");
  }

  Value* parseBinaryOrCast(LineCursor& c, IRBuilder& b) {
    static const std::map<std::string, BinaryOp> binops = {
        {"add", BinaryOp::Add},   {"sub", BinaryOp::Sub},
        {"mul", BinaryOp::Mul},   {"sdiv", BinaryOp::SDiv},
        {"srem", BinaryOp::SRem}, {"shl", BinaryOp::Shl},
        {"ashr", BinaryOp::AShr}, {"lshr", BinaryOp::LShr},
        {"and", BinaryOp::And},   {"or", BinaryOp::Or},
        {"xor", BinaryOp::Xor},   {"fadd", BinaryOp::FAdd},
        {"fsub", BinaryOp::FSub}, {"fmul", BinaryOp::FMul},
        {"fdiv", BinaryOp::FDiv}};
    static const std::map<std::string, CastOp> casts = {
        {"sext", CastOp::SExt},     {"zext", CastOp::ZExt},
        {"trunc", CastOp::Trunc},   {"sitofp", CastOp::SIToFP},
        {"uitofp", CastOp::UIToFP}, {"fptosi", CastOp::FPToSI},
        {"fpext", CastOp::FPExt},   {"fptrunc", CastOp::FPTrunc}};
    for (const auto& [word, op] : binops) {
      if (c.tryConsume(word)) {
        Value* lhs = parseTypedValue(c);
        c.expect(",", "binary operands");
        return b.createBinary(op, lhs, parseValueRef(c, lhs->type()));
      }
    }
    for (const auto& [word, op] : casts) {
      if (c.tryConsume(word)) {
        Value* v = parseTypedValue(c);
        c.expect("to", "cast");
        return b.createCast(op, v, parseType(c));
      }
    }
    c.fail("unknown instruction");
  }

  struct PhiFixup {
    PhiInst* phi = nullptr;
    std::vector<std::pair<std::string, std::string>> incoming;
  };

  Context& ctx_;
  std::string module_name_ = "parsed";
  std::vector<std::pair<std::string, unsigned>> lines_;
  std::size_t index_ = 0;
  std::map<std::string, Value*> values_;
  std::map<std::string, BasicBlock*> blocks_;
  std::vector<PhiFixup> phi_fixups_;
};

}  // namespace

std::unique_ptr<Module> parseModule(Context& ctx, const std::string& text) {
  IrParser parser(ctx, text);
  return parser.run();
}

}  // namespace grover::ir
