// The instruction hierarchy. Mirrors the LLVM subset that SPIR kernels
// produced by Clang -O0 + mem2reg actually contain, which is the input the
// paper's pass operates on.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ir/casting.h"
#include "ir/context.h"
#include "ir/value.h"
#include "support/source_location.h"

namespace grover::ir {

class BasicBlock;

enum class BinaryOp : std::uint8_t {
  Add, Sub, Mul, SDiv, SRem,
  Shl, AShr, LShr,
  And, Or, Xor,
  FAdd, FSub, FMul, FDiv,
};
[[nodiscard]] const char* toString(BinaryOp op);
[[nodiscard]] bool isFloatOp(BinaryOp op);

enum class CmpPred : std::uint8_t {
  EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT, UGE,  // integer
  OEQ, ONE, OLT, OLE, OGT, OGE,                    // ordered float
};
[[nodiscard]] const char* toString(CmpPred pred);

enum class CastOp : std::uint8_t {
  SExt, ZExt, Trunc, SIToFP, UIToFP, FPToSI, FPExt, FPTrunc,
};
[[nodiscard]] const char* toString(CastOp op);

/// Built-in functions callable from kernels. CallInst leaves are where the
/// Grover expression-tree recursion stops (paper §IV-B), so work-item id
/// queries are deliberately modeled as calls, exactly as in SPIR.
enum class Builtin : std::uint8_t {
  // Work-item queries (arg: dimension 0..2).
  GetGlobalId, GetLocalId, GetGroupId,
  GetGlobalSize, GetLocalSize, GetNumGroups, GetWorkDim,
  // Synchronization.
  Barrier,
  // Float math.
  Sqrt, RSqrt, Fabs, Exp, Log, Sin, Cos, Pow, FMin, FMax, Fma, Mad,
  Floor, Ceil,
  // Integer math.
  IMin, IMax, IAbs, Mul24, Mad24, Clamp,
  // Vector helpers.
  Dot,
};
[[nodiscard]] const char* builtinName(Builtin b);
/// Map an OpenCL C identifier to a builtin (handles native_* aliases).
[[nodiscard]] std::optional<Builtin> lookupBuiltin(const std::string& name);

/// Base class for all instructions.
class Instruction : public User {
 public:
  [[nodiscard]] BasicBlock* parent() const { return parent_; }
  void setParent(BasicBlock* bb) { parent_ = bb; }

  /// Context of the enclosing module; requires the instruction to be
  /// attached to a function (clone() of detached instructions is the only
  /// operation that would need it and is unsupported).
  [[nodiscard]] Context& context() const;

  [[nodiscard]] SourceLoc loc() const { return loc_; }
  void setLoc(SourceLoc loc) { loc_ = loc; }

  [[nodiscard]] bool isTerminator() const {
    return kind() == ValueKind::InstBr || kind() == ValueKind::InstCondBr ||
           kind() == ValueKind::InstRet;
  }

  /// Mnemonic for printing ("add", "load", ...).
  [[nodiscard]] std::string opcodeName() const;

  /// Deep-copy this instruction (same operand Values, no parent). The
  /// caller inserts the clone and may then retarget operands — this is the
  /// cloneInst() primitive of the paper's Algorithm 1.
  [[nodiscard]] virtual std::unique_ptr<Instruction> clone() const = 0;

  static bool classof(const Value* v) { return v->isInstruction(); }

 protected:
  Instruction(ValueKind kind, Type* type) : User(kind, type) {}

 private:
  BasicBlock* parent_ = nullptr;
  SourceLoc loc_;
};

/// Stack/arena allocation of `count` elements of `allocated` in an address
/// space. __local arrays are allocas in AddrSpace::Local (one arena per
/// work-group); private scalars are allocas in AddrSpace::Private.
class AllocaInst final : public Instruction {
 public:
  AllocaInst(Context& ctx, Type* allocated, std::uint64_t count,
             AddrSpace space)
      : Instruction(ValueKind::InstAlloca, ctx.pointerTy(allocated, space)),
        allocated_(allocated),
        count_(count) {}

  [[nodiscard]] Type* allocatedType() const { return allocated_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] AddrSpace space() const { return type()->addrSpace(); }
  [[nodiscard]] std::uint64_t sizeInBytes() const {
    return allocated_->sizeInBytes() * count_;
  }

  /// Original multi-dimensional shape declared in the source (row-major;
  /// the front-end flattens indexing, but the Grover dimension splitter
  /// prefers these declared strides). Empty for 1-D/scalar allocas.
  [[nodiscard]] const std::vector<std::uint64_t>& arrayDims() const {
    return dims_;
  }
  void setArrayDims(std::vector<std::uint64_t> dims) {
    dims_ = std::move(dims);
  }

  [[nodiscard]] std::unique_ptr<Instruction> clone() const override;
  static bool classof(const Value* v) {
    return v->kind() == ValueKind::InstAlloca;
  }

 private:
  Type* allocated_;
  std::uint64_t count_;
  std::vector<std::uint64_t> dims_;
};

/// Load from a pointer. The address space of the pointer operand classifies
/// this as a GL (global) or LL (local) operation for Grover.
class LoadInst final : public Instruction {
 public:
  explicit LoadInst(Value* ptr)
      : Instruction(ValueKind::InstLoad, ptr->type()->element()) {
    initOperands(std::array<Value*, 1>{ptr});
  }
  [[nodiscard]] Value* pointer() const { return operand(0); }
  [[nodiscard]] AddrSpace space() const {
    return pointer()->type()->addrSpace();
  }

  [[nodiscard]] std::unique_ptr<Instruction> clone() const override;
  static bool classof(const Value* v) {
    return v->kind() == ValueKind::InstLoad;
  }
};

/// Store to a pointer (LS when the pointer is __local).
class StoreInst final : public Instruction {
 public:
  StoreInst(Context& ctx, Value* value, Value* ptr)
      : Instruction(ValueKind::InstStore, ctx.voidTy()) {
    initOperands(std::array<Value*, 2>{value, ptr});
  }
  [[nodiscard]] Value* value() const { return operand(0); }
  [[nodiscard]] Value* pointer() const { return operand(1); }
  [[nodiscard]] AddrSpace space() const {
    return pointer()->type()->addrSpace();
  }

  [[nodiscard]] std::unique_ptr<Instruction> clone() const override;
  static bool classof(const Value* v) {
    return v->kind() == ValueKind::InstStore;
  }
};

/// Element-indexed pointer arithmetic: result = ptr + index * sizeof(elem).
/// The front-end flattens multi-dimensional indexing to a single linear
/// index, so each memory access has exactly one gep — the expression tree
/// of that index is what Grover analyzes.
class GepInst final : public Instruction {
 public:
  GepInst(Value* ptr, Value* index)
      : Instruction(ValueKind::InstGep, ptr->type()) {
    initOperands(std::array<Value*, 2>{ptr, index});
  }
  [[nodiscard]] Value* pointer() const { return operand(0); }
  [[nodiscard]] Value* index() const { return operand(1); }

  [[nodiscard]] std::unique_ptr<Instruction> clone() const override;
  static bool classof(const Value* v) {
    return v->kind() == ValueKind::InstGep;
  }
};

/// Two-operand arithmetic/logic. Operand types must match; vectors operate
/// lane-wise.
class BinaryInst final : public Instruction {
 public:
  BinaryInst(BinaryOp op, Value* lhs, Value* rhs)
      : Instruction(ValueKind::InstBinary, lhs->type()), op_(op) {
    initOperands(std::array<Value*, 2>{lhs, rhs});
  }
  [[nodiscard]] BinaryOp op() const { return op_; }
  [[nodiscard]] Value* lhs() const { return operand(0); }
  [[nodiscard]] Value* rhs() const { return operand(1); }

  [[nodiscard]] std::unique_ptr<Instruction> clone() const override;
  static bool classof(const Value* v) {
    return v->kind() == ValueKind::InstBinary;
  }

 private:
  BinaryOp op_;
};

/// Integer comparison producing i1.
class ICmpInst final : public Instruction {
 public:
  ICmpInst(Context& ctx, CmpPred pred, Value* lhs, Value* rhs)
      : Instruction(ValueKind::InstICmp, ctx.boolTy()), pred_(pred) {
    initOperands(std::array<Value*, 2>{lhs, rhs});
  }
  [[nodiscard]] CmpPred pred() const { return pred_; }
  [[nodiscard]] Value* lhs() const { return operand(0); }
  [[nodiscard]] Value* rhs() const { return operand(1); }

  [[nodiscard]] std::unique_ptr<Instruction> clone() const override;
  static bool classof(const Value* v) {
    return v->kind() == ValueKind::InstICmp;
  }

 private:
  CmpPred pred_;
};

/// Ordered floating-point comparison producing i1.
class FCmpInst final : public Instruction {
 public:
  FCmpInst(Context& ctx, CmpPred pred, Value* lhs, Value* rhs)
      : Instruction(ValueKind::InstFCmp, ctx.boolTy()), pred_(pred) {
    initOperands(std::array<Value*, 2>{lhs, rhs});
  }
  [[nodiscard]] CmpPred pred() const { return pred_; }
  [[nodiscard]] Value* lhs() const { return operand(0); }
  [[nodiscard]] Value* rhs() const { return operand(1); }

  [[nodiscard]] std::unique_ptr<Instruction> clone() const override;
  static bool classof(const Value* v) {
    return v->kind() == ValueKind::InstFCmp;
  }

 private:
  CmpPred pred_;
};

/// Numeric conversion.
class CastInst final : public Instruction {
 public:
  CastInst(CastOp op, Value* value, Type* destTy)
      : Instruction(ValueKind::InstCast, destTy), op_(op) {
    initOperands(std::array<Value*, 1>{value});
  }
  [[nodiscard]] CastOp op() const { return op_; }
  [[nodiscard]] Value* value() const { return operand(0); }

  [[nodiscard]] std::unique_ptr<Instruction> clone() const override;
  static bool classof(const Value* v) {
    return v->kind() == ValueKind::InstCast;
  }

 private:
  CastOp op_;
};

/// cond ? ifTrue : ifFalse.
class SelectInst final : public Instruction {
 public:
  SelectInst(Value* cond, Value* ifTrue, Value* ifFalse)
      : Instruction(ValueKind::InstSelect, ifTrue->type()) {
    initOperands(std::array<Value*, 3>{cond, ifTrue, ifFalse});
  }
  [[nodiscard]] Value* condition() const { return operand(0); }
  [[nodiscard]] Value* ifTrue() const { return operand(1); }
  [[nodiscard]] Value* ifFalse() const { return operand(2); }

  [[nodiscard]] std::unique_ptr<Instruction> clone() const override;
  static bool classof(const Value* v) {
    return v->kind() == ValueKind::InstSelect;
  }
};

/// SSA phi node. Operands alternate (value, block): operand(2i) is the
/// value incoming from operand(2i+1).
class PhiInst final : public Instruction {
 public:
  explicit PhiInst(Type* type) : Instruction(ValueKind::InstPhi, type) {}

  [[nodiscard]] unsigned numIncoming() const { return numOperands() / 2; }
  [[nodiscard]] Value* incomingValue(unsigned i) const {
    return operand(2 * i);
  }
  [[nodiscard]] BasicBlock* incomingBlock(unsigned i) const;
  void addIncoming(Value* value, BasicBlock* block);
  void setIncomingValue(unsigned i, Value* v) { setOperand(2 * i, v); }
  /// Incoming value for a predecessor block; throws if absent.
  [[nodiscard]] Value* incomingForBlock(const BasicBlock* block) const;
  void removeIncoming(unsigned i);

  [[nodiscard]] std::unique_ptr<Instruction> clone() const override;
  static bool classof(const Value* v) {
    return v->kind() == ValueKind::InstPhi;
  }
};

/// Call to a builtin. get_local_id/get_group_id calls are the symbolic
/// leaves of Grover's index expression trees.
class CallInst final : public Instruction {
 public:
  CallInst(Builtin builtin, Type* retTy, std::span<Value* const> args)
      : Instruction(ValueKind::InstCall, retTy), builtin_(builtin) {
    initOperands(args);
  }
  [[nodiscard]] Builtin builtin() const { return builtin_; }
  [[nodiscard]] unsigned numArgs() const { return numOperands(); }
  [[nodiscard]] Value* arg(unsigned i) const { return operand(i); }

  /// For work-item query builtins with a constant dimension argument,
  /// return the dimension (0..2).
  [[nodiscard]] std::optional<unsigned> constDimension() const;

  [[nodiscard]] std::unique_ptr<Instruction> clone() const override;
  static bool classof(const Value* v) {
    return v->kind() == ValueKind::InstCall;
  }

 private:
  Builtin builtin_;
};

/// Unconditional branch.
class BrInst final : public Instruction {
 public:
  BrInst(Context& ctx, BasicBlock* dest);
  [[nodiscard]] BasicBlock* dest() const;

  [[nodiscard]] std::unique_ptr<Instruction> clone() const override;
  static bool classof(const Value* v) {
    return v->kind() == ValueKind::InstBr;
  }
};

/// Conditional branch.
class CondBrInst final : public Instruction {
 public:
  CondBrInst(Context& ctx, Value* cond, BasicBlock* ifTrue,
             BasicBlock* ifFalse);
  [[nodiscard]] Value* condition() const { return operand(0); }
  [[nodiscard]] BasicBlock* ifTrue() const;
  [[nodiscard]] BasicBlock* ifFalse() const;

  [[nodiscard]] std::unique_ptr<Instruction> clone() const override;
  static bool classof(const Value* v) {
    return v->kind() == ValueKind::InstCondBr;
  }
};

/// Return (kernels return void; value is optional for helper functions).
class RetInst final : public Instruction {
 public:
  explicit RetInst(Context& ctx, Value* value = nullptr)
      : Instruction(ValueKind::InstRet, ctx.voidTy()) {
    if (value != nullptr) initOperands(std::array<Value*, 1>{value});
  }
  [[nodiscard]] Value* value() const {
    return numOperands() != 0 ? operand(0) : nullptr;
  }

  [[nodiscard]] std::unique_ptr<Instruction> clone() const override;
  static bool classof(const Value* v) {
    return v->kind() == ValueKind::InstRet;
  }
};

/// Extract one lane of a vector.
class ExtractElementInst final : public Instruction {
 public:
  ExtractElementInst(Value* vec, Value* index)
      : Instruction(ValueKind::InstExtractElement, vec->type()->element()) {
    initOperands(std::array<Value*, 2>{vec, index});
  }
  [[nodiscard]] Value* vector() const { return operand(0); }
  [[nodiscard]] Value* index() const { return operand(1); }

  [[nodiscard]] std::unique_ptr<Instruction> clone() const override;
  static bool classof(const Value* v) {
    return v->kind() == ValueKind::InstExtractElement;
  }
};

/// Produce a vector with one lane replaced.
class InsertElementInst final : public Instruction {
 public:
  InsertElementInst(Value* vec, Value* scalar, Value* index)
      : Instruction(ValueKind::InstInsertElement, vec->type()) {
    initOperands(std::array<Value*, 3>{vec, scalar, index});
  }
  [[nodiscard]] Value* vector() const { return operand(0); }
  [[nodiscard]] Value* scalar() const { return operand(1); }
  [[nodiscard]] Value* index() const { return operand(2); }

  [[nodiscard]] std::unique_ptr<Instruction> clone() const override;
  static bool classof(const Value* v) {
    return v->kind() == ValueKind::InstInsertElement;
  }
};

}  // namespace grover::ir
