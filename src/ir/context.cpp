#include "ir/context.h"

#include "support/diagnostics.h"

namespace grover::ir {

Context::Context() {
  void_ = makeType(TypeKind::Void);
  bool_ = makeType(TypeKind::Bool);
  int32_ = makeType(TypeKind::Int32);
  int64_ = makeType(TypeKind::Int64);
  float_ = makeType(TypeKind::Float);
  double_ = makeType(TypeKind::Double);
}

Type* Context::makeType(TypeKind kind, Type* element, unsigned lanes,
                        AddrSpace space) {
  types_.push_back(
      std::unique_ptr<Type>(new Type(kind, element, lanes, space)));
  return types_.back().get();
}

Type* Context::vectorTy(Type* element, unsigned lanes) {
  if (!element->isScalarNumber() || lanes < 2) {
    throw GroverError("vectorTy: invalid element/lanes");
  }
  auto [it, inserted] = vector_cache_.try_emplace({element, lanes}, nullptr);
  if (inserted) it->second = makeType(TypeKind::Vector, element, lanes);
  return it->second;
}

Type* Context::pointerTy(Type* element, AddrSpace space) {
  if (element->isVoid()) throw GroverError("pointerTy: void pointee");
  auto [it, inserted] = pointer_cache_.try_emplace({element, space}, nullptr);
  if (inserted) it->second = makeType(TypeKind::Pointer, element, 0, space);
  return it->second;
}

ConstantInt* Context::getBool(bool value) {
  return getInt(bool_, value ? 1 : 0);
}
ConstantInt* Context::getInt32(std::int32_t value) {
  return getInt(int32_, value);
}
ConstantInt* Context::getInt64(std::int64_t value) {
  return getInt(int64_, value);
}

ConstantInt* Context::getInt(Type* type, std::int64_t value) {
  if (!type->isInteger()) throw GroverError("getInt: non-integer type");
  auto [it, inserted] = int_constants_.try_emplace({type, value}, nullptr);
  if (inserted) it->second = std::make_unique<ConstantInt>(type, value);
  return it->second.get();
}

ConstantFloat* Context::getFloat(float value) { return getFP(float_, value); }
ConstantFloat* Context::getDouble(double value) {
  return getFP(double_, value);
}

ConstantFloat* Context::getFP(Type* type, double value) {
  if (!type->isFloatingPoint()) throw GroverError("getFP: non-FP type");
  auto [it, inserted] = fp_constants_.try_emplace({type, value}, nullptr);
  if (inserted) it->second = std::make_unique<ConstantFloat>(type, value);
  return it->second.get();
}

ConstantUndef* Context::getUndef(Type* type) {
  auto [it, inserted] = undef_constants_.try_emplace(type, nullptr);
  if (inserted) it->second = std::make_unique<ConstantUndef>(type);
  return it->second.get();
}

}  // namespace grover::ir
