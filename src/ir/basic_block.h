// Basic blocks: ordered instruction lists with stable iterators.
#pragma once

#include <list>
#include <memory>
#include <string>
#include <vector>

#include "ir/instruction.h"
#include "ir/value.h"

namespace grover::ir {

class Function;

/// A straight-line instruction sequence ending in a terminator. Blocks are
/// Values so branches and phis can reference them as operands.
class BasicBlock final : public Value {
 public:
  using InstList = std::list<std::unique_ptr<Instruction>>;
  using iterator = InstList::iterator;
  using const_iterator = InstList::const_iterator;

  BasicBlock(Context& ctx, std::string name)
      : Value(ValueKind::BasicBlock, ctx.voidTy()) {
    setName(std::move(name));
  }

  [[nodiscard]] Function* parent() const { return parent_; }
  void setParent(Function* f) { parent_ = f; }

  [[nodiscard]] iterator begin() { return insts_.begin(); }
  [[nodiscard]] iterator end() { return insts_.end(); }
  [[nodiscard]] const_iterator begin() const { return insts_.begin(); }
  [[nodiscard]] const_iterator end() const { return insts_.end(); }
  [[nodiscard]] bool empty() const { return insts_.empty(); }
  [[nodiscard]] std::size_t size() const { return insts_.size(); }

  [[nodiscard]] Instruction* front() const { return insts_.front().get(); }
  /// Last instruction; the terminator in a well-formed block.
  [[nodiscard]] Instruction* terminator() const;

  /// Append; returns the raw pointer (ownership stays with the block).
  Instruction* append(std::unique_ptr<Instruction> inst);
  /// Insert before `pos`; `pos == nullptr` appends.
  Instruction* insertBefore(Instruction* pos,
                            std::unique_ptr<Instruction> inst);
  /// Unlink and destroy. The instruction must have no remaining uses.
  void erase(Instruction* inst);
  /// Unlink and return ownership (for moving between blocks).
  [[nodiscard]] std::unique_ptr<Instruction> detach(Instruction* inst);

  [[nodiscard]] iterator positionOf(Instruction* inst);

  /// CFG successors (from the terminator) and predecessors (from uses).
  [[nodiscard]] std::vector<BasicBlock*> successors() const;
  [[nodiscard]] std::vector<BasicBlock*> predecessors() const;

  /// Phi nodes at the head of the block.
  [[nodiscard]] std::vector<PhiInst*> phis() const;

  static bool classof(const Value* v) {
    return v->kind() == ValueKind::BasicBlock;
  }

 private:
  Function* parent_ = nullptr;
  InstList insts_;
};

}  // namespace grover::ir
