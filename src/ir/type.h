// The IR type system. Types are immutable, interned in a Context, and
// compared by pointer identity (as in LLVM).
#pragma once

#include <cstdint>
#include <string>

namespace grover::ir {

class Context;

/// OpenCL address spaces. The Grover pass keys on Global vs Local; the
/// runtime maps each space to a distinct arena.
enum class AddrSpace : std::uint8_t { Private, Global, Local, Constant };

[[nodiscard]] const char* toString(AddrSpace space);

enum class TypeKind : std::uint8_t {
  Void,
  Bool,     // i1
  Int32,    // i32
  Int64,    // i64
  Float,    // f32
  Double,   // f64
  Vector,   // <N x elem>
  Pointer,  // elem addrspace(AS)*
};

/// An interned IR type. Obtain instances through Context factories only.
class Type {
 public:
  [[nodiscard]] TypeKind kind() const { return kind_; }

  [[nodiscard]] bool isVoid() const { return kind_ == TypeKind::Void; }
  [[nodiscard]] bool isBool() const { return kind_ == TypeKind::Bool; }
  [[nodiscard]] bool isInteger() const {
    return kind_ == TypeKind::Int32 || kind_ == TypeKind::Int64 ||
           kind_ == TypeKind::Bool;
  }
  [[nodiscard]] bool isFloatingPoint() const {
    return kind_ == TypeKind::Float || kind_ == TypeKind::Double;
  }
  [[nodiscard]] bool isVector() const { return kind_ == TypeKind::Vector; }
  [[nodiscard]] bool isPointer() const { return kind_ == TypeKind::Pointer; }
  /// Integer or FP scalar (not vector/pointer/void).
  [[nodiscard]] bool isScalarNumber() const {
    return isInteger() || isFloatingPoint();
  }

  /// Vector element type / pointer pointee. Null for other kinds.
  [[nodiscard]] Type* element() const { return element_; }
  /// Vector lane count; 0 for non-vectors.
  [[nodiscard]] unsigned lanes() const { return lanes_; }
  /// Pointer address space; only meaningful for pointers.
  [[nodiscard]] AddrSpace addrSpace() const { return space_; }

  /// Size of an in-memory value of this type. Bool is stored as one byte;
  /// pointers are 8 bytes; vectors are tightly packed.
  [[nodiscard]] std::uint64_t sizeInBytes() const;

  [[nodiscard]] std::string str() const;

 private:
  friend class Context;
  Type(TypeKind kind, Type* element, unsigned lanes, AddrSpace space)
      : kind_(kind), element_(element), lanes_(lanes), space_(space) {}

  TypeKind kind_;
  Type* element_ = nullptr;
  unsigned lanes_ = 0;
  AddrSpace space_ = AddrSpace::Private;
};

}  // namespace grover::ir
