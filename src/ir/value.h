// Value/Use/User: the SSA value graph. Every operand edge is a Use that is
// registered on the used Value, giving O(uses) replaceAllUsesWith — the
// operation at the heart of Grover's "replace LL with nGL" step.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "ir/type.h"
#include "support/diagnostics.h"

namespace grover::ir {

class User;
class Value;

enum class ValueKind : std::uint8_t {
  Argument,
  BasicBlock,
  ConstantInt,
  ConstantFloat,
  ConstantUndef,
  // --- instructions (keep contiguous; see Value::isInstruction) ---
  InstAlloca,
  InstLoad,
  InstStore,
  InstGep,
  InstBinary,
  InstICmp,
  InstFCmp,
  InstCast,
  InstSelect,
  InstPhi,
  InstCall,
  InstBr,
  InstCondBr,
  InstRet,
  InstExtractElement,
  InstInsertElement,
};

/// One operand slot of a User. Lives inside the User; registered with the
/// used Value so the def-use graph can be walked in both directions.
struct Use {
  Value* value = nullptr;
  User* user = nullptr;
  unsigned index = 0;
};

/// Base of everything that can be referenced by an operand.
class Value {
 public:
  virtual ~Value();
  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  [[nodiscard]] ValueKind kind() const { return kind_; }
  [[nodiscard]] Type* type() const { return type_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

  [[nodiscard]] bool isInstruction() const {
    return kind_ >= ValueKind::InstAlloca;
  }
  [[nodiscard]] bool isConstant() const {
    return kind_ == ValueKind::ConstantInt ||
           kind_ == ValueKind::ConstantFloat ||
           kind_ == ValueKind::ConstantUndef;
  }

  /// All operand slots currently referencing this value.
  [[nodiscard]] const std::vector<Use*>& uses() const { return uses_; }
  [[nodiscard]] bool hasUses() const { return !uses_.empty(); }

  /// Rewrite every use of this value to use `replacement` instead.
  void replaceAllUsesWith(Value* replacement);

  /// Interpreter slot id (assigned by Function::renumber).
  [[nodiscard]] unsigned slot() const { return slot_; }
  void setSlot(unsigned s) { slot_ = s; }

 protected:
  Value(ValueKind kind, Type* type) : kind_(kind), type_(type) {}

 private:
  friend class User;
  void addUse(Use* use) { uses_.push_back(use); }
  void removeUse(Use* use);

  ValueKind kind_;
  Type* type_;
  std::string name_;
  std::vector<Use*> uses_;
  unsigned slot_ = ~0u;
};

/// A Value that references operands. Operand storage is a deque so Use
/// addresses stay stable when phi nodes grow.
class User : public Value {
 public:
  [[nodiscard]] unsigned numOperands() const {
    return static_cast<unsigned>(operands_.size());
  }
  [[nodiscard]] Value* operand(unsigned i) const {
    if (i >= operands_.size()) throw GroverError("operand index out of range");
    return operands_[i].value;
  }
  void setOperand(unsigned i, Value* v);

  /// True if `v` appears among the operands.
  [[nodiscard]] bool usesValue(const Value* v) const;

  /// Drop every operand edge (used before deleting the user).
  void dropAllOperands();

 protected:
  User(ValueKind kind, Type* type) : Value(kind, type) {}
  ~User() override { dropAllOperands(); }

  void initOperands(std::span<Value* const> values);
  void appendOperand(Value* v);
  void removeOperandAt(unsigned i);

 private:
  std::deque<Use> operands_;
};

/// A formal parameter of a Function.
class Argument final : public Value {
 public:
  Argument(Type* type, std::string name, unsigned index)
      : Value(ValueKind::Argument, type), index_(index) {
    setName(std::move(name));
  }
  [[nodiscard]] unsigned index() const { return index_; }

  static bool classof(const Value* v) {
    return v->kind() == ValueKind::Argument;
  }

 private:
  unsigned index_;
};

/// Integer constant (i1/i32/i64).
class ConstantInt final : public Value {
 public:
  ConstantInt(Type* type, std::int64_t value)
      : Value(ValueKind::ConstantInt, type), value_(value) {}
  [[nodiscard]] std::int64_t value() const { return value_; }

  static bool classof(const Value* v) {
    return v->kind() == ValueKind::ConstantInt;
  }

 private:
  std::int64_t value_;
};

/// Floating-point constant (f32/f64).
class ConstantFloat final : public Value {
 public:
  ConstantFloat(Type* type, double value)
      : Value(ValueKind::ConstantFloat, type), value_(value) {}
  [[nodiscard]] double value() const { return value_; }

  static bool classof(const Value* v) {
    return v->kind() == ValueKind::ConstantFloat;
  }

 private:
  double value_;
};

/// Undefined value (produced by mem2reg for loads of uninitialized slots).
class ConstantUndef final : public Value {
 public:
  explicit ConstantUndef(Type* type) : Value(ValueKind::ConstantUndef, type) {}

  static bool classof(const Value* v) {
    return v->kind() == ValueKind::ConstantUndef;
  }
};

}  // namespace grover::ir
