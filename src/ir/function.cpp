#include "ir/function.h"

#include <algorithm>
#include <set>

#include "ir/module.h"
#include "support/diagnostics.h"
#include "support/str.h"

namespace grover::ir {

Function::~Function() {
  for (const auto& bb : blocks_) {
    for (const auto& inst : *bb) inst->dropAllOperands();
  }
}

Context& Function::context() const { return module_.context(); }

Argument* Function::addArgument(Type* type, std::string name) {
  args_.push_back(std::make_unique<Argument>(
      type, std::move(name), static_cast<unsigned>(args_.size())));
  return args_.back().get();
}

Argument* Function::findArg(const std::string& name) const {
  for (const auto& a : args_) {
    if (a->name() == name) return a.get();
  }
  return nullptr;
}

BasicBlock* Function::addBlock(std::string name) {
  blocks_.push_back(std::make_unique<BasicBlock>(context(), std::move(name)));
  blocks_.back()->setParent(this);
  return blocks_.back().get();
}

BasicBlock* Function::addBlockAfter(BasicBlock* after, std::string name) {
  auto it = std::find_if(
      blocks_.begin(), blocks_.end(),
      [after](const std::unique_ptr<BasicBlock>& b) { return b.get() == after; });
  if (it == blocks_.end()) throw GroverError("addBlockAfter: block not found");
  ++it;
  auto block = std::make_unique<BasicBlock>(context(), std::move(name));
  block->setParent(this);
  return blocks_.insert(it, std::move(block))->get();
}

void Function::eraseBlock(BasicBlock* block) {
  if (block->hasUses()) {
    throw GroverError(
        cat("erasing block '", block->name(), "' that still has uses"));
  }
  // Drop instructions back-to-front so defs lose their uses before erase.
  while (!block->empty()) {
    Instruction* last = block->terminator() != nullptr
                            ? block->terminator()
                            : std::prev(block->end())->get();
    last->dropAllOperands();
    if (last->hasUses()) {
      throw GroverError("eraseBlock: live value escapes the dead block");
    }
    block->erase(last);
  }
  blocks_.remove_if(
      [block](const std::unique_ptr<BasicBlock>& b) { return b.get() == block; });
}

std::vector<BasicBlock*> Function::blockList() const {
  std::vector<BasicBlock*> out;
  out.reserve(blocks_.size());
  for (const auto& b : blocks_) out.push_back(b.get());
  return out;
}

unsigned Function::renumber() {
  unsigned next = 0;
  // Names must be unique so the printed IR is unambiguous (and can be
  // re-parsed); duplicates (e.g. several phis of one promoted variable)
  // get a ".<slot>" suffix.
  std::set<std::string> used;
  auto uniquify = [&used](Value* v, std::string fallback) {
    std::string name = v->name().empty() ? std::move(fallback) : v->name();
    if (!used.insert(name).second) {
      name = cat(name, ".", v->slot());
      used.insert(name);
    }
    v->setName(name);
  };
  for (const auto& a : args_) {
    a->setSlot(next++);
    uniquify(a.get(), cat("arg", a->index()));
  }
  unsigned bbIndex = 0;
  std::set<std::string> usedBlocks;
  for (const auto& bb : blocks_) {
    std::string name = bb->name().empty() ? cat("bb", bbIndex) : bb->name();
    if (!usedBlocks.insert(name).second) {
      name = cat(name, ".", bbIndex);
      usedBlocks.insert(name);
    }
    bb->setName(name);
    ++bbIndex;
    for (const auto& inst : *bb) {
      inst->setSlot(next++);
      if (!inst->type()->isVoid()) {
        uniquify(inst.get(), cat("v", inst->slot()));
      }
    }
  }
  return next;
}

std::size_t Function::instructionCount() const {
  std::size_t n = 0;
  for (const auto& bb : blocks_) n += bb->size();
  return n;
}

}  // namespace grover::ir
