#include "ir/instruction.h"

#include <unordered_map>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "support/diagnostics.h"

namespace grover::ir {

const char* toString(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "add";
    case BinaryOp::Sub: return "sub";
    case BinaryOp::Mul: return "mul";
    case BinaryOp::SDiv: return "sdiv";
    case BinaryOp::SRem: return "srem";
    case BinaryOp::Shl: return "shl";
    case BinaryOp::AShr: return "ashr";
    case BinaryOp::LShr: return "lshr";
    case BinaryOp::And: return "and";
    case BinaryOp::Or: return "or";
    case BinaryOp::Xor: return "xor";
    case BinaryOp::FAdd: return "fadd";
    case BinaryOp::FSub: return "fsub";
    case BinaryOp::FMul: return "fmul";
    case BinaryOp::FDiv: return "fdiv";
  }
  return "?";
}

bool isFloatOp(BinaryOp op) {
  return op == BinaryOp::FAdd || op == BinaryOp::FSub ||
         op == BinaryOp::FMul || op == BinaryOp::FDiv;
}

const char* toString(CmpPred pred) {
  switch (pred) {
    case CmpPred::EQ: return "eq";
    case CmpPred::NE: return "ne";
    case CmpPred::SLT: return "slt";
    case CmpPred::SLE: return "sle";
    case CmpPred::SGT: return "sgt";
    case CmpPred::SGE: return "sge";
    case CmpPred::ULT: return "ult";
    case CmpPred::ULE: return "ule";
    case CmpPred::UGT: return "ugt";
    case CmpPred::UGE: return "uge";
    case CmpPred::OEQ: return "oeq";
    case CmpPred::ONE: return "one";
    case CmpPred::OLT: return "olt";
    case CmpPred::OLE: return "ole";
    case CmpPred::OGT: return "ogt";
    case CmpPred::OGE: return "oge";
  }
  return "?";
}

const char* toString(CastOp op) {
  switch (op) {
    case CastOp::SExt: return "sext";
    case CastOp::ZExt: return "zext";
    case CastOp::Trunc: return "trunc";
    case CastOp::SIToFP: return "sitofp";
    case CastOp::UIToFP: return "uitofp";
    case CastOp::FPToSI: return "fptosi";
    case CastOp::FPExt: return "fpext";
    case CastOp::FPTrunc: return "fptrunc";
  }
  return "?";
}

const char* builtinName(Builtin b) {
  switch (b) {
    case Builtin::GetGlobalId: return "get_global_id";
    case Builtin::GetLocalId: return "get_local_id";
    case Builtin::GetGroupId: return "get_group_id";
    case Builtin::GetGlobalSize: return "get_global_size";
    case Builtin::GetLocalSize: return "get_local_size";
    case Builtin::GetNumGroups: return "get_num_groups";
    case Builtin::GetWorkDim: return "get_work_dim";
    case Builtin::Barrier: return "barrier";
    case Builtin::Sqrt: return "sqrt";
    case Builtin::RSqrt: return "rsqrt";
    case Builtin::Fabs: return "fabs";
    case Builtin::Exp: return "exp";
    case Builtin::Log: return "log";
    case Builtin::Sin: return "sin";
    case Builtin::Cos: return "cos";
    case Builtin::Pow: return "pow";
    case Builtin::FMin: return "fmin";
    case Builtin::FMax: return "fmax";
    case Builtin::Fma: return "fma";
    case Builtin::Mad: return "mad";
    case Builtin::Floor: return "floor";
    case Builtin::Ceil: return "ceil";
    case Builtin::IMin: return "min";
    case Builtin::IMax: return "max";
    case Builtin::IAbs: return "abs";
    case Builtin::Mul24: return "mul24";
    case Builtin::Mad24: return "mad24";
    case Builtin::Clamp: return "clamp";
    case Builtin::Dot: return "dot";
  }
  return "?";
}

std::optional<Builtin> lookupBuiltin(const std::string& name) {
  static const std::unordered_map<std::string, Builtin> table = [] {
    std::unordered_map<std::string, Builtin> t;
    for (int i = 0; i <= static_cast<int>(Builtin::Dot); ++i) {
      const auto b = static_cast<Builtin>(i);
      t.emplace(builtinName(b), b);
    }
    // OpenCL native_* variants share semantics in our runtime.
    t.emplace("native_sqrt", Builtin::Sqrt);
    t.emplace("native_rsqrt", Builtin::RSqrt);
    t.emplace("native_exp", Builtin::Exp);
    t.emplace("native_log", Builtin::Log);
    t.emplace("half_sqrt", Builtin::Sqrt);
    return t;
  }();
  auto it = table.find(name);
  if (it == table.end()) return std::nullopt;
  return it->second;
}

std::string Instruction::opcodeName() const {
  switch (kind()) {
    case ValueKind::InstAlloca: return "alloca";
    case ValueKind::InstLoad: return "load";
    case ValueKind::InstStore: return "store";
    case ValueKind::InstGep: return "gep";
    case ValueKind::InstBinary:
      return toString(cast<BinaryInst>(this)->op());
    case ValueKind::InstICmp: return "icmp";
    case ValueKind::InstFCmp: return "fcmp";
    case ValueKind::InstCast:
      return toString(cast<CastInst>(this)->op());
    case ValueKind::InstSelect: return "select";
    case ValueKind::InstPhi: return "phi";
    case ValueKind::InstCall: return "call";
    case ValueKind::InstBr: return "br";
    case ValueKind::InstCondBr: return "condbr";
    case ValueKind::InstRet: return "ret";
    case ValueKind::InstExtractElement: return "extractelement";
    case ValueKind::InstInsertElement: return "insertelement";
    default: return "?";
  }
}

// --- clone impls -----------------------------------------------------------
// Each clone rebuilds the instruction from its operands (Value/User are
// non-copyable so the use lists stay consistent).

Context& Instruction::context() const {
  if (parent_ == nullptr || parent_->parent() == nullptr) {
    throw GroverError("Instruction::context: instruction is detached");
  }
  return parent_->parent()->context();
}

std::unique_ptr<Instruction> AllocaInst::clone() const {
  auto copy =
      std::make_unique<AllocaInst>(context(), allocated_, count_, space());
  copy->setName(name());
  copy->setLoc(loc());
  copy->setArrayDims(dims_);
  return copy;
}

std::unique_ptr<Instruction> LoadInst::clone() const {
  auto copy = std::make_unique<LoadInst>(pointer());
  copy->setLoc(loc());
  return copy;
}

std::unique_ptr<Instruction> StoreInst::clone() const {
  auto copy = std::make_unique<StoreInst>(context(), value(), pointer());
  copy->setLoc(loc());
  return copy;
}

std::unique_ptr<Instruction> GepInst::clone() const {
  auto copy = std::make_unique<GepInst>(pointer(), index());
  copy->setLoc(loc());
  return copy;
}

std::unique_ptr<Instruction> BinaryInst::clone() const {
  auto copy = std::make_unique<BinaryInst>(op(), lhs(), rhs());
  copy->setLoc(loc());
  return copy;
}

std::unique_ptr<Instruction> ICmpInst::clone() const {
  auto copy = std::make_unique<ICmpInst>(context(), pred(), lhs(), rhs());
  copy->setLoc(loc());
  return copy;
}

std::unique_ptr<Instruction> FCmpInst::clone() const {
  auto copy = std::make_unique<FCmpInst>(context(), pred(), lhs(), rhs());
  copy->setLoc(loc());
  return copy;
}

std::unique_ptr<Instruction> CastInst::clone() const {
  auto copy = std::make_unique<CastInst>(op(), value(), type());
  copy->setLoc(loc());
  return copy;
}

std::unique_ptr<Instruction> SelectInst::clone() const {
  auto copy = std::make_unique<SelectInst>(condition(), ifTrue(), ifFalse());
  copy->setLoc(loc());
  return copy;
}

BasicBlock* PhiInst::incomingBlock(unsigned i) const {
  return cast<BasicBlock>(operand(2 * i + 1));
}

void PhiInst::addIncoming(Value* value, BasicBlock* block) {
  appendOperand(value);
  appendOperand(block);
}

Value* PhiInst::incomingForBlock(const BasicBlock* block) const {
  for (unsigned i = 0; i < numIncoming(); ++i) {
    if (incomingBlock(i) == block) return incomingValue(i);
  }
  throw GroverError("phi has no incoming value for block '" + block->name() +
                    "'");
}

void PhiInst::removeIncoming(unsigned i) {
  removeOperandAt(2 * i + 1);
  removeOperandAt(2 * i);
}

std::unique_ptr<Instruction> PhiInst::clone() const {
  auto copy = std::make_unique<PhiInst>(type());
  for (unsigned i = 0; i < numIncoming(); ++i) {
    copy->addIncoming(incomingValue(i), incomingBlock(i));
  }
  copy->setLoc(loc());
  return copy;
}

std::optional<unsigned> CallInst::constDimension() const {
  switch (builtin_) {
    case Builtin::GetGlobalId:
    case Builtin::GetLocalId:
    case Builtin::GetGroupId:
    case Builtin::GetGlobalSize:
    case Builtin::GetLocalSize:
    case Builtin::GetNumGroups:
      break;
    default:
      return std::nullopt;
  }
  if (numArgs() != 1) return std::nullopt;
  const auto* c = dyn_cast<ConstantInt>(arg(0));
  if (c == nullptr || c->value() < 0 || c->value() > 2) return std::nullopt;
  return static_cast<unsigned>(c->value());
}

std::unique_ptr<Instruction> CallInst::clone() const {
  std::vector<Value*> args;
  args.reserve(numArgs());
  for (unsigned i = 0; i < numArgs(); ++i) args.push_back(arg(i));
  auto copy = std::make_unique<CallInst>(builtin_, type(),
                                         std::span<Value* const>(args));
  copy->setLoc(loc());
  return copy;
}

BrInst::BrInst(Context& ctx, BasicBlock* dest)
    : Instruction(ValueKind::InstBr, ctx.voidTy()) {
  initOperands(std::array<Value*, 1>{dest});
}

BasicBlock* BrInst::dest() const { return cast<BasicBlock>(operand(0)); }

std::unique_ptr<Instruction> BrInst::clone() const {
  auto copy = std::make_unique<BrInst>(context(), dest());
  copy->setLoc(loc());
  return copy;
}

CondBrInst::CondBrInst(Context& ctx, Value* cond, BasicBlock* ifTrue,
                       BasicBlock* ifFalse)
    : Instruction(ValueKind::InstCondBr, ctx.voidTy()) {
  initOperands(std::array<Value*, 3>{cond, ifTrue, ifFalse});
}

BasicBlock* CondBrInst::ifTrue() const { return cast<BasicBlock>(operand(1)); }
BasicBlock* CondBrInst::ifFalse() const {
  return cast<BasicBlock>(operand(2));
}

std::unique_ptr<Instruction> CondBrInst::clone() const {
  auto copy =
      std::make_unique<CondBrInst>(context(), condition(), ifTrue(), ifFalse());
  copy->setLoc(loc());
  return copy;
}

std::unique_ptr<Instruction> RetInst::clone() const {
  auto copy = std::make_unique<RetInst>(context(), value());
  copy->setLoc(loc());
  return copy;
}

std::unique_ptr<Instruction> ExtractElementInst::clone() const {
  auto copy = std::make_unique<ExtractElementInst>(vector(), index());
  copy->setLoc(loc());
  return copy;
}

std::unique_ptr<Instruction> InsertElementInst::clone() const {
  auto copy = std::make_unique<InsertElementInst>(vector(), scalar(), index());
  copy->setLoc(loc());
  return copy;
}

}  // namespace grover::ir
