// Module: a compiled translation unit (one or more kernels).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/context.h"
#include "ir/function.h"

namespace grover::ir {

/// Owns the functions produced from one OpenCL C source. The Context must
/// outlive the Module.
class Module {
 public:
  Module(Context& ctx, std::string name)
      : ctx_(ctx), name_(std::move(name)) {}

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  [[nodiscard]] Context& context() const { return ctx_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  Function* addFunction(std::string name, Type* returnType, bool isKernel);
  [[nodiscard]] Function* findFunction(const std::string& name) const;
  [[nodiscard]] const std::vector<std::unique_ptr<Function>>& functions()
      const {
    return functions_;
  }
  /// All kernel functions.
  [[nodiscard]] std::vector<Function*> kernels() const;

 private:
  Context& ctx_;
  std::string name_;
  std::vector<std::unique_ptr<Function>> functions_;
};

}  // namespace grover::ir
