// IRBuilder: convenience construction of instructions at an insertion point.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/module.h"

namespace grover::ir {

/// Appends instructions to the end of a block (or before a given
/// instruction). All create* methods return the created instruction.
class IRBuilder {
 public:
  explicit IRBuilder(Context& ctx) : ctx_(ctx) {}

  [[nodiscard]] Context& context() const { return ctx_; }

  void setInsertPoint(BasicBlock* block, Instruction* before = nullptr) {
    block_ = block;
    before_ = before;
  }
  [[nodiscard]] BasicBlock* insertBlock() const { return block_; }

  // --- memory -------------------------------------------------------------
  AllocaInst* createAlloca(Type* elem, std::uint64_t count, AddrSpace space,
                           const std::string& name = {});
  LoadInst* createLoad(Value* ptr, const std::string& name = {});
  StoreInst* createStore(Value* value, Value* ptr);
  GepInst* createGep(Value* ptr, Value* index, const std::string& name = {});

  // --- arithmetic ----------------------------------------------------------
  Value* createBinary(BinaryOp op, Value* lhs, Value* rhs,
                      const std::string& name = {});
  Value* createAdd(Value* l, Value* r) { return createBinary(BinaryOp::Add, l, r); }
  Value* createSub(Value* l, Value* r) { return createBinary(BinaryOp::Sub, l, r); }
  Value* createMul(Value* l, Value* r) { return createBinary(BinaryOp::Mul, l, r); }
  ICmpInst* createICmp(CmpPred pred, Value* lhs, Value* rhs,
                       const std::string& name = {});
  FCmpInst* createFCmp(CmpPred pred, Value* lhs, Value* rhs,
                       const std::string& name = {});
  CastInst* createCast(CastOp op, Value* value, Type* destTy,
                       const std::string& name = {});
  SelectInst* createSelect(Value* cond, Value* t, Value* f,
                           const std::string& name = {});

  // --- vectors --------------------------------------------------------------
  ExtractElementInst* createExtractElement(Value* vec, Value* index,
                                           const std::string& name = {});
  InsertElementInst* createInsertElement(Value* vec, Value* scalar,
                                         Value* index,
                                         const std::string& name = {});

  // --- control flow ----------------------------------------------------------
  PhiInst* createPhi(Type* type, const std::string& name = {});
  CallInst* createCall(Builtin builtin, Type* retTy,
                       std::initializer_list<Value*> args,
                       const std::string& name = {});
  CallInst* createCall(Builtin builtin, Type* retTy,
                       const std::vector<Value*>& args,
                       const std::string& name = {});
  BrInst* createBr(BasicBlock* dest);
  CondBrInst* createCondBr(Value* cond, BasicBlock* t, BasicBlock* f);
  RetInst* createRetVoid();
  RetInst* createRet(Value* value);

  // --- common shorthands -------------------------------------------------
  /// call get_local_id(dim) / get_group_id(dim) / ... as i32.
  CallInst* createIdQuery(Builtin builtin, unsigned dim,
                          const std::string& name = {});

 private:
  template <typename T>
  T* insert(std::unique_ptr<T> inst, const std::string& name);

  Context& ctx_;
  BasicBlock* block_ = nullptr;
  Instruction* before_ = nullptr;
};

}  // namespace grover::ir
