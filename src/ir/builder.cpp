#include "ir/builder.h"

#include "support/diagnostics.h"

namespace grover::ir {

template <typename T>
T* IRBuilder::insert(std::unique_ptr<T> inst, const std::string& name) {
  if (block_ == nullptr) throw GroverError("IRBuilder: no insertion point");
  if (!name.empty()) inst->setName(name);
  T* raw = inst.get();
  block_->insertBefore(before_, std::move(inst));
  return raw;
}

AllocaInst* IRBuilder::createAlloca(Type* elem, std::uint64_t count,
                                    AddrSpace space, const std::string& name) {
  return insert(std::make_unique<AllocaInst>(ctx_, elem, count, space), name);
}

LoadInst* IRBuilder::createLoad(Value* ptr, const std::string& name) {
  if (!ptr->type()->isPointer()) throw GroverError("load of non-pointer");
  return insert(std::make_unique<LoadInst>(ptr), name);
}

StoreInst* IRBuilder::createStore(Value* value, Value* ptr) {
  if (!ptr->type()->isPointer()) throw GroverError("store to non-pointer");
  if (ptr->type()->element() != value->type()) {
    throw GroverError("store type mismatch");
  }
  return insert(std::make_unique<StoreInst>(ctx_, value, ptr), {});
}

GepInst* IRBuilder::createGep(Value* ptr, Value* index,
                              const std::string& name) {
  if (!ptr->type()->isPointer()) throw GroverError("gep of non-pointer");
  if (!index->type()->isInteger()) throw GroverError("gep index not integer");
  return insert(std::make_unique<GepInst>(ptr, index), name);
}

Value* IRBuilder::createBinary(BinaryOp op, Value* lhs, Value* rhs,
                               const std::string& name) {
  if (lhs->type() != rhs->type()) {
    throw GroverError("binary operand type mismatch");
  }
  return insert(std::make_unique<BinaryInst>(op, lhs, rhs), name);
}

ICmpInst* IRBuilder::createICmp(CmpPred pred, Value* lhs, Value* rhs,
                                const std::string& name) {
  return insert(std::make_unique<ICmpInst>(ctx_, pred, lhs, rhs), name);
}

FCmpInst* IRBuilder::createFCmp(CmpPred pred, Value* lhs, Value* rhs,
                                const std::string& name) {
  return insert(std::make_unique<FCmpInst>(ctx_, pred, lhs, rhs), name);
}

CastInst* IRBuilder::createCast(CastOp op, Value* value, Type* destTy,
                                const std::string& name) {
  return insert(std::make_unique<CastInst>(op, value, destTy), name);
}

SelectInst* IRBuilder::createSelect(Value* cond, Value* t, Value* f,
                                    const std::string& name) {
  return insert(std::make_unique<SelectInst>(cond, t, f), name);
}

ExtractElementInst* IRBuilder::createExtractElement(Value* vec, Value* index,
                                                    const std::string& name) {
  return insert(std::make_unique<ExtractElementInst>(vec, index), name);
}

InsertElementInst* IRBuilder::createInsertElement(Value* vec, Value* scalar,
                                                  Value* index,
                                                  const std::string& name) {
  return insert(std::make_unique<InsertElementInst>(vec, scalar, index), name);
}

PhiInst* IRBuilder::createPhi(Type* type, const std::string& name) {
  // Phis belong at the block head, before any non-phi instruction.
  if (block_ == nullptr) throw GroverError("IRBuilder: no insertion point");
  auto phi = std::make_unique<PhiInst>(type);
  if (!name.empty()) phi->setName(name);
  PhiInst* raw = phi.get();
  Instruction* firstNonPhi = nullptr;
  for (const auto& inst : *block_) {
    if (!isa<PhiInst>(inst.get())) {
      firstNonPhi = inst.get();
      break;
    }
  }
  block_->insertBefore(firstNonPhi, std::move(phi));
  return raw;
}

CallInst* IRBuilder::createCall(Builtin builtin, Type* retTy,
                                std::initializer_list<Value*> args,
                                const std::string& name) {
  return createCall(builtin, retTy, std::vector<Value*>(args), name);
}

CallInst* IRBuilder::createCall(Builtin builtin, Type* retTy,
                                const std::vector<Value*>& args,
                                const std::string& name) {
  return insert(std::make_unique<CallInst>(builtin, retTy,
                                           std::span<Value* const>(args)),
                name);
}

BrInst* IRBuilder::createBr(BasicBlock* dest) {
  return insert(std::make_unique<BrInst>(ctx_, dest), {});
}

CondBrInst* IRBuilder::createCondBr(Value* cond, BasicBlock* t,
                                    BasicBlock* f) {
  return insert(std::make_unique<CondBrInst>(ctx_, cond, t, f), {});
}

RetInst* IRBuilder::createRetVoid() {
  return insert(std::make_unique<RetInst>(ctx_), {});
}

RetInst* IRBuilder::createRet(Value* value) {
  return insert(std::make_unique<RetInst>(ctx_, value), {});
}

CallInst* IRBuilder::createIdQuery(Builtin builtin, unsigned dim,
                                   const std::string& name) {
  return createCall(builtin, ctx_.int32Ty(), {ctx_.getInt32(static_cast<std::int32_t>(dim))},
                    name);
}

}  // namespace grover::ir
