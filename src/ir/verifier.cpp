#include "ir/verifier.h"

#include <algorithm>
#include <set>

#include "analysis/dominators.h"
#include "ir/casting.h"
#include "ir/printer.h"
#include "support/diagnostics.h"
#include "support/str.h"

namespace grover::ir {
namespace {

[[noreturn]] void fail(const Function& fn, const Instruction* inst,
                       const std::string& msg) {
  std::string where = "in function '" + fn.name() + "'";
  if (inst != nullptr) {
    where += ", at '" + printInst(inst) + "'";
  }
  throw GroverError("verifier: " + msg + " (" + where + ")");
}

void checkTypes(const Function& fn, const Instruction* inst) {
  switch (inst->kind()) {
    case ValueKind::InstLoad: {
      const auto* load = cast<LoadInst>(inst);
      if (!load->pointer()->type()->isPointer()) {
        fail(fn, inst, "load pointer operand is not a pointer");
      }
      if (load->pointer()->type()->element() != load->type()) {
        fail(fn, inst, "load result type mismatch");
      }
      break;
    }
    case ValueKind::InstStore: {
      const auto* store = cast<StoreInst>(inst);
      if (!store->pointer()->type()->isPointer()) {
        fail(fn, inst, "store pointer operand is not a pointer");
      }
      if (store->pointer()->type()->element() != store->value()->type()) {
        fail(fn, inst, "store value type mismatch");
      }
      break;
    }
    case ValueKind::InstGep: {
      const auto* gep = cast<GepInst>(inst);
      if (!gep->pointer()->type()->isPointer()) {
        fail(fn, inst, "gep base is not a pointer");
      }
      if (gep->type() != gep->pointer()->type()) {
        fail(fn, inst, "gep type must equal base pointer type");
      }
      if (!gep->index()->type()->isInteger()) {
        fail(fn, inst, "gep index must be an integer");
      }
      break;
    }
    case ValueKind::InstBinary: {
      const auto* bin = cast<BinaryInst>(inst);
      if (bin->lhs()->type() != bin->rhs()->type()) {
        fail(fn, inst, "binary operand type mismatch");
      }
      if (bin->type() != bin->lhs()->type()) {
        fail(fn, inst, "binary result type mismatch");
      }
      Type* scalar = bin->type()->isVector() ? bin->type()->element()
                                             : bin->type();
      if (isFloatOp(bin->op()) ? !scalar->isFloatingPoint()
                               : !scalar->isInteger()) {
        fail(fn, inst, "binary opcode/type mismatch");
      }
      break;
    }
    case ValueKind::InstICmp: {
      const auto* cmp = cast<ICmpInst>(inst);
      if (cmp->lhs()->type() != cmp->rhs()->type()) {
        fail(fn, inst, "icmp operand type mismatch");
      }
      if (!cmp->lhs()->type()->isInteger()) {
        fail(fn, inst, "icmp on non-integer operands");
      }
      break;
    }
    case ValueKind::InstFCmp: {
      const auto* cmp = cast<FCmpInst>(inst);
      if (cmp->lhs()->type() != cmp->rhs()->type()) {
        fail(fn, inst, "fcmp operand type mismatch");
      }
      if (!cmp->lhs()->type()->isFloatingPoint()) {
        fail(fn, inst, "fcmp on non-FP operands");
      }
      break;
    }
    case ValueKind::InstSelect: {
      const auto* sel = cast<SelectInst>(inst);
      if (!sel->condition()->type()->isBool()) {
        fail(fn, inst, "select condition must be i1");
      }
      if (sel->ifTrue()->type() != sel->ifFalse()->type() ||
          sel->type() != sel->ifTrue()->type()) {
        fail(fn, inst, "select arm type mismatch");
      }
      break;
    }
    case ValueKind::InstPhi: {
      const auto* phi = cast<PhiInst>(inst);
      for (unsigned i = 0; i < phi->numIncoming(); ++i) {
        if (phi->incomingValue(i)->type() != phi->type()) {
          fail(fn, inst, "phi incoming type mismatch");
        }
      }
      break;
    }
    case ValueKind::InstExtractElement: {
      const auto* ext = cast<ExtractElementInst>(inst);
      if (!ext->vector()->type()->isVector()) {
        fail(fn, inst, "extractelement of non-vector");
      }
      break;
    }
    case ValueKind::InstInsertElement: {
      const auto* ins = cast<InsertElementInst>(inst);
      if (!ins->vector()->type()->isVector() ||
          ins->type() != ins->vector()->type()) {
        fail(fn, inst, "insertelement type mismatch");
      }
      break;
    }
    case ValueKind::InstCondBr: {
      const auto* br = cast<CondBrInst>(inst);
      if (!br->condition()->type()->isBool()) {
        fail(fn, inst, "condbr condition must be i1");
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace

void verifyFunction(Function& fn) {
  if (fn.entry() == nullptr) fail(fn, nullptr, "function has no blocks");

  // Collect all values defined inside the function.
  std::set<const Value*> defined;
  for (const auto& arg : fn.args()) defined.insert(arg.get());
  for (BasicBlock* bb : fn.blockList()) {
    defined.insert(bb);
    for (const auto& inst : *bb) defined.insert(inst.get());
  }

  analysis::DominatorTree dt(fn);

  for (BasicBlock* bb : fn.blockList()) {
    if (bb->empty() || !bb->front()) fail(fn, nullptr, "empty basic block");
    // Exactly one terminator, at the end.
    std::size_t position = 0;
    const std::size_t last = bb->size() - 1;
    bool seenNonPhi = false;
    for (const auto& instPtr : *bb) {
      const Instruction* inst = instPtr.get();
      if (inst->parent() != bb) fail(fn, inst, "bad parent link");
      const bool isLast = position == last;
      if (inst->isTerminator() != isLast) {
        fail(fn, inst,
             inst->isTerminator() ? "terminator not at end of block"
                                  : "block does not end in a terminator");
      }
      if (isa<PhiInst>(inst)) {
        if (seenNonPhi) fail(fn, inst, "phi after non-phi instruction");
      } else {
        seenNonPhi = true;
      }

      // Operand sanity.
      for (unsigned i = 0; i < inst->numOperands(); ++i) {
        const Value* op = inst->operand(i);
        if (op == nullptr) fail(fn, inst, cat("null operand #", i));
        if (!op->isConstant() && defined.count(op) == 0) {
          fail(fn, inst, cat("operand #", i, " ('", op->name(),
                             "') is not defined in this function"));
        }
      }
      checkTypes(fn, inst);

      // SSA dominance (skip unreachable blocks; skip phi operand uses).
      if (dt.isReachable(bb) && !isa<PhiInst>(inst)) {
        for (unsigned i = 0; i < inst->numOperands(); ++i) {
          const Value* op = inst->operand(i);
          if (const auto* defInst = dyn_cast<Instruction>(op)) {
            if (!dt.isReachable(defInst->parent()) ||
                !dt.valueDominates(defInst, inst)) {
              fail(fn, inst,
                   cat("operand '%", op->name(), "' does not dominate use"));
            }
          }
        }
      }
      ++position;
    }

    // Phi edges match predecessors exactly.
    const std::vector<BasicBlock*> preds = bb->predecessors();
    for (PhiInst* phi : bb->phis()) {
      if (phi->numIncoming() != preds.size()) {
        fail(fn, phi, cat("phi has ", phi->numIncoming(),
                          " incoming values, block has ", preds.size(),
                          " predecessors"));
      }
      for (unsigned i = 0; i < phi->numIncoming(); ++i) {
        BasicBlock* in = phi->incomingBlock(i);
        if (std::find(preds.begin(), preds.end(), in) == preds.end()) {
          fail(fn, phi,
               cat("phi incoming block '", in->name(), "' is not a pred"));
        }
        // Incoming value must dominate the end of the incoming block.
        if (dt.isReachable(in)) {
          if (const auto* defInst =
                  dyn_cast<Instruction>(phi->incomingValue(i))) {
            if (!dt.isReachable(defInst->parent()) ||
                !dt.dominates(defInst->parent(), in)) {
              fail(fn, phi, "phi incoming value does not dominate edge");
            }
          }
        }
      }
    }
  }
}

void verifyModule(Module& module) {
  for (const auto& fn : module.functions()) verifyFunction(*fn);
}

}  // namespace grover::ir
