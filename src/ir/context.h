// Context: interned types and uniqued constants for one compilation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "ir/type.h"
#include "ir/value.h"

namespace grover::ir {

/// Owns all Type and constant objects. Pointer identity of types/constants
/// is guaranteed within one Context; Modules must not mix Contexts.
class Context {
 public:
  Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // --- types -------------------------------------------------------------
  [[nodiscard]] Type* voidTy() { return void_; }
  [[nodiscard]] Type* boolTy() { return bool_; }
  [[nodiscard]] Type* int32Ty() { return int32_; }
  [[nodiscard]] Type* int64Ty() { return int64_; }
  [[nodiscard]] Type* floatTy() { return float_; }
  [[nodiscard]] Type* doubleTy() { return double_; }
  /// <lanes x element>; element must be a scalar number type.
  [[nodiscard]] Type* vectorTy(Type* element, unsigned lanes);
  /// element addrspace(space)*
  [[nodiscard]] Type* pointerTy(Type* element, AddrSpace space);

  // --- constants ----------------------------------------------------------
  [[nodiscard]] ConstantInt* getBool(bool value);
  [[nodiscard]] ConstantInt* getInt32(std::int32_t value);
  [[nodiscard]] ConstantInt* getInt64(std::int64_t value);
  [[nodiscard]] ConstantInt* getInt(Type* type, std::int64_t value);
  [[nodiscard]] ConstantFloat* getFloat(float value);
  [[nodiscard]] ConstantFloat* getDouble(double value);
  [[nodiscard]] ConstantFloat* getFP(Type* type, double value);
  [[nodiscard]] ConstantUndef* getUndef(Type* type);

 private:
  Type* makeType(TypeKind kind, Type* element = nullptr, unsigned lanes = 0,
                 AddrSpace space = AddrSpace::Private);

  std::vector<std::unique_ptr<Type>> types_;
  Type* void_ = nullptr;
  Type* bool_ = nullptr;
  Type* int32_ = nullptr;
  Type* int64_ = nullptr;
  Type* float_ = nullptr;
  Type* double_ = nullptr;

  std::map<std::pair<Type*, unsigned>, Type*> vector_cache_;
  std::map<std::pair<Type*, AddrSpace>, Type*> pointer_cache_;

  std::map<std::pair<Type*, std::int64_t>, std::unique_ptr<ConstantInt>>
      int_constants_;
  std::map<std::pair<Type*, double>, std::unique_ptr<ConstantFloat>>
      fp_constants_;
  std::map<Type*, std::unique_ptr<ConstantUndef>> undef_constants_;
};

}  // namespace grover::ir
