// CFG simplification: fold constant conditional branches, merge
// single-pred/single-succ block chains, and drop unreachable blocks.
#pragma once

#include "passes/pass.h"

namespace grover::passes {

class SimplifyCfgPass final : public FunctionPass {
 public:
  [[nodiscard]] std::string name() const override { return "simplifycfg"; }
  bool run(ir::Function& fn) override;
};

}  // namespace grover::passes
