#include "passes/dce.h"

#include <vector>

#include "ir/casting.h"

namespace grover::passes {

using namespace ir;

bool hasSideEffects(const ir::Instruction& inst) {
  if (inst.isTerminator()) return true;
  if (isa<StoreInst>(&inst)) return true;
  if (const auto* call = dyn_cast<CallInst>(&inst)) {
    return call->builtin() == Builtin::Barrier;
  }
  // Allocas are kept while addressed; an unused alloca is removable.
  return false;
}

bool DcePass::run(ir::Function& fn) {
  bool changedAny = false;
  bool changed = true;
  while (changed) {
    changed = false;
    for (BasicBlock* bb : fn.blockList()) {
      std::vector<Instruction*> dead;
      for (const auto& instPtr : *bb) {
        Instruction* inst = instPtr.get();
        if (!inst->hasUses() && !hasSideEffects(*inst)) {
          dead.push_back(inst);
        }
      }
      for (Instruction* inst : dead) {
        inst->dropAllOperands();
        bb->erase(inst);
        changed = true;
        changedAny = true;
      }
    }
  }
  return changedAny;
}

}  // namespace grover::passes
