#include "passes/constant_fold.h"

#include <optional>
#include <vector>

#include "ir/casting.h"

namespace grover::passes {

using namespace ir;

namespace {

std::optional<std::int64_t> intConst(const Value* v) {
  if (const auto* c = dyn_cast<ConstantInt>(v)) return c->value();
  return std::nullopt;
}

/// Fold one instruction to an existing value, or null if not foldable.
Value* fold(Context& ctx, Instruction* inst) {
  if (auto* bin = dyn_cast<BinaryInst>(inst)) {
    Type* ty = bin->type();
    if (!ty->isInteger()) {
      return nullptr;  // FP folding is skipped: preserve rounding exactly
    }
    const auto l = intConst(bin->lhs());
    const auto r = intConst(bin->rhs());
    // Algebraic identities first (one side constant).
    switch (bin->op()) {
      case BinaryOp::Add:
        if (l == 0) return bin->rhs();
        if (r == 0) return bin->lhs();
        break;
      case BinaryOp::Sub:
        if (r == 0) return bin->lhs();
        break;
      case BinaryOp::Mul:
        if (l == 1) return bin->rhs();
        if (r == 1) return bin->lhs();
        if (l == 0 || r == 0) return ctx.getInt(ty, 0);
        break;
      case BinaryOp::SDiv:
        if (r == 1) return bin->lhs();
        break;
      case BinaryOp::Shl:
      case BinaryOp::AShr:
      case BinaryOp::LShr:
        if (r == 0) return bin->lhs();
        break;
      case BinaryOp::Or:
      case BinaryOp::Xor:
        if (l == 0) return bin->rhs();
        if (r == 0) return bin->lhs();
        break;
      default:
        break;
    }
    if (!l.has_value() || !r.has_value()) return nullptr;
    std::int64_t result = 0;
    switch (bin->op()) {
      case BinaryOp::Add: result = *l + *r; break;
      case BinaryOp::Sub: result = *l - *r; break;
      case BinaryOp::Mul: result = *l * *r; break;
      case BinaryOp::SDiv:
        if (*r == 0) return nullptr;
        result = *l / *r;
        break;
      case BinaryOp::SRem:
        if (*r == 0) return nullptr;
        result = *l % *r;
        break;
      case BinaryOp::Shl: result = *l << (*r & 63); break;
      case BinaryOp::AShr: result = *l >> (*r & 63); break;
      case BinaryOp::LShr:
        result = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(*l) >> (*r & 63));
        break;
      case BinaryOp::And: result = *l & *r; break;
      case BinaryOp::Or: result = *l | *r; break;
      case BinaryOp::Xor: result = *l ^ *r; break;
      default: return nullptr;
    }
    if (ty->kind() == TypeKind::Int32) {
      result = static_cast<std::int32_t>(result);
    } else if (ty->isBool()) {
      result &= 1;
    }
    return ctx.getInt(ty, result);
  }

  if (auto* cmp = dyn_cast<ICmpInst>(inst)) {
    const auto l = intConst(cmp->lhs());
    const auto r = intConst(cmp->rhs());
    if (!l.has_value() || !r.has_value()) return nullptr;
    const auto ul = static_cast<std::uint64_t>(*l);
    const auto ur = static_cast<std::uint64_t>(*r);
    bool result = false;
    switch (cmp->pred()) {
      case CmpPred::EQ: result = *l == *r; break;
      case CmpPred::NE: result = *l != *r; break;
      case CmpPred::SLT: result = *l < *r; break;
      case CmpPred::SLE: result = *l <= *r; break;
      case CmpPred::SGT: result = *l > *r; break;
      case CmpPred::SGE: result = *l >= *r; break;
      case CmpPred::ULT: result = ul < ur; break;
      case CmpPred::ULE: result = ul <= ur; break;
      case CmpPred::UGT: result = ul > ur; break;
      case CmpPred::UGE: result = ul >= ur; break;
      default: return nullptr;
    }
    return ctx.getBool(result);
  }

  if (auto* cast_ = dyn_cast<CastInst>(inst)) {
    const auto v = intConst(cast_->value());
    if (!v.has_value()) return nullptr;
    Type* to = cast_->type();
    switch (cast_->op()) {
      case CastOp::SExt:
        return ctx.getInt(to, *v);
      case CastOp::ZExt: {
        std::int64_t raw = *v;
        if (cast_->value()->type()->isBool()) raw &= 1;
        return ctx.getInt(to, raw);
      }
      case CastOp::Trunc: {
        if (to->kind() == TypeKind::Int32) {
          return ctx.getInt(to, static_cast<std::int32_t>(*v));
        }
        if (to->isBool()) return ctx.getBool((*v & 1) != 0);
        return nullptr;
      }
      case CastOp::SIToFP:
        return ctx.getFP(to, static_cast<double>(*v));
      default:
        return nullptr;
    }
  }

  if (auto* sel = dyn_cast<SelectInst>(inst)) {
    const auto c = intConst(sel->condition());
    if (!c.has_value()) return nullptr;
    return *c != 0 ? sel->ifTrue() : sel->ifFalse();
  }

  // Phi with identical incoming values collapses.
  if (auto* phi = dyn_cast<PhiInst>(inst)) {
    if (phi->numIncoming() == 0) return nullptr;
    Value* first = phi->incomingValue(0);
    for (unsigned i = 1; i < phi->numIncoming(); ++i) {
      Value* v = phi->incomingValue(i);
      if (v != first && v != phi) return nullptr;
    }
    if (first == phi) return nullptr;
    return first;
  }

  return nullptr;
}

}  // namespace

bool ConstantFoldPass::run(ir::Function& fn) {
  Context& ctx = fn.context();
  bool changedAny = false;
  bool changed = true;
  while (changed) {
    changed = false;
    for (BasicBlock* bb : fn.blockList()) {
      std::vector<Instruction*> worklist;
      for (const auto& inst : *bb) worklist.push_back(inst.get());
      for (Instruction* inst : worklist) {
        Value* replacement = fold(ctx, inst);
        if (replacement == nullptr) continue;
        inst->replaceAllUsesWith(replacement);
        inst->dropAllOperands();
        bb->erase(inst);
        changed = true;
        changedAny = true;
      }
    }
  }
  return changedAny;
}

}  // namespace grover::passes
