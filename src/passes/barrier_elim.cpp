#include "passes/barrier_elim.h"

#include <vector>

#include "ir/casting.h"

namespace grover::passes {

using namespace ir;

bool usesLocalMemory(const ir::Function& fn) {
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : *bb) {
      if (const auto* alloca = dyn_cast<AllocaInst>(inst.get())) {
        if (alloca->space() == AddrSpace::Local && alloca->hasUses()) {
          return true;
        }
        continue;
      }
      if (const auto* load = dyn_cast<LoadInst>(inst.get())) {
        if (load->space() == AddrSpace::Local) return true;
        continue;
      }
      if (const auto* store = dyn_cast<StoreInst>(inst.get())) {
        if (store->space() == AddrSpace::Local) return true;
        continue;
      }
    }
  }
  // Local pointer arguments still in use also count.
  for (const auto& arg : fn.args()) {
    if (arg->type()->isPointer() &&
        arg->type()->addrSpace() == AddrSpace::Local && arg->hasUses()) {
      return true;
    }
  }
  return false;
}

bool BarrierElimPass::run(ir::Function& fn) {
  if (usesLocalMemory(fn)) return false;
  bool changed = false;
  for (BasicBlock* bb : fn.blockList()) {
    std::vector<Instruction*> barriers;
    for (const auto& inst : *bb) {
      if (auto* call = dyn_cast<CallInst>(inst.get())) {
        if (call->builtin() == Builtin::Barrier) {
          // Only local fences are known-redundant; a barrier with the
          // global fence bit still orders global memory in the group.
          const auto* flags = dyn_cast<ConstantInt>(call->arg(0));
          if (flags != nullptr && (flags->value() & ~std::int64_t{1}) == 0) {
            barriers.push_back(call);
          }
        }
      }
    }
    for (Instruction* barrier : barriers) {
      barrier->dropAllOperands();
      bb->erase(barrier);
      changed = true;
    }
  }
  return changed;
}

}  // namespace grover::passes
