#include "passes/barrier_elim.h"

#include <vector>

#include "ir/casting.h"

namespace grover::passes {

using namespace ir;

bool pointerIsAccessed(const ir::Value* pointer) {
  for (const Use* use : pointer->uses()) {
    const auto* user = dyn_cast<Instruction>(use->user);
    if (user == nullptr) return true;  // unknown user: assume accessed
    if (const auto* gep = dyn_cast<GepInst>(user);
        gep != nullptr && gep->pointer() == pointer) {
      if (pointerIsAccessed(gep)) return true;
      continue;  // dead gep chain: no access through this use
    }
    // Load/store through the pointer is an access; the address escaping
    // (stored as a value, fed to arithmetic/call/phi) counts conservatively.
    return true;
  }
  return false;
}

bool usesLocalMemory(const ir::Function& fn) {
  // Loads/stores that are already in the local address space.
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : *bb) {
      if (const auto* alloca = dyn_cast<AllocaInst>(inst.get())) {
        // A local alloca counts only if something actually reads or writes
        // through it; dead GEP chains left by partial cleanup do not keep
        // barriers alive.
        if (alloca->space() == AddrSpace::Local && pointerIsAccessed(alloca)) {
          return true;
        }
        continue;
      }
      if (const auto* load = dyn_cast<LoadInst>(inst.get())) {
        if (load->space() == AddrSpace::Local) return true;
        continue;
      }
      if (const auto* store = dyn_cast<StoreInst>(inst.get())) {
        if (store->space() == AddrSpace::Local) return true;
        continue;
      }
    }
  }
  // Local pointer arguments with real accesses also count.
  for (const auto& arg : fn.args()) {
    if (arg->type()->isPointer() &&
        arg->type()->addrSpace() == AddrSpace::Local &&
        pointerIsAccessed(arg.get())) {
      return true;
    }
  }
  return false;
}

bool BarrierElimPass::run(ir::Function& fn) {
  if (usesLocalMemory(fn)) return false;
  bool changed = false;
  for (BasicBlock* bb : fn.blockList()) {
    std::vector<Instruction*> barriers;
    for (const auto& inst : *bb) {
      if (auto* call = dyn_cast<CallInst>(inst.get())) {
        if (call->builtin() == Builtin::Barrier) {
          // Only local fences are known-redundant; a barrier with the
          // global fence bit still orders global memory in the group.
          const auto* flags = dyn_cast<ConstantInt>(call->arg(0));
          if (flags != nullptr && (flags->value() & ~std::int64_t{1}) == 0) {
            barriers.push_back(call);
          }
        }
      }
    }
    for (Instruction* barrier : barriers) {
      barrier->dropAllOperands();
      bb->erase(barrier);
      changed = true;
    }
  }
  return changed;
}

}  // namespace grover::passes
