#include "passes/pass.h"

#include "ir/verifier.h"
#include "passes/constant_fold.h"
#include "passes/dce.h"
#include "passes/mem2reg.h"
#include "passes/simplify_cfg.h"

namespace grover::passes {

bool PassManager::run(ir::Module& module) {
  bool changed = false;
  for (const auto& fn : module.functions()) changed |= run(*fn);
  return changed;
}

bool PassManager::run(ir::Function& fn) {
  bool changed = false;
  for (const auto& pass : passes_) {
    changed |= pass->run(fn);
    if (verify_between_) ir::verifyFunction(fn);
  }
  return changed;
}

void addStandardPipeline(PassManager& pm) {
  pm.add(std::make_unique<Mem2RegPass>());
  pm.add(std::make_unique<ConstantFoldPass>());
  pm.add(std::make_unique<SimplifyCfgPass>());
  pm.add(std::make_unique<DcePass>());
}

}  // namespace grover::passes
