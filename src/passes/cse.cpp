#include "passes/cse.h"

#include <map>
#include <vector>

#include "analysis/dominators.h"
#include "ir/casting.h"

namespace grover::passes {

using namespace ir;

namespace {

/// Structural key of a pure instruction: opcode discriminator + operands.
/// Instructions with identical keys compute identical values.
struct ExprKey {
  ValueKind kind;
  int subcode;  // BinaryOp / CmpPred / CastOp / Builtin, -1 otherwise
  std::vector<const Value*> operands;
  const void* type;  // result type for casts

  auto tie() const { return std::tie(kind, subcode, operands, type); }
  bool operator<(const ExprKey& o) const { return tie() < o.tie(); }
};

/// Pure, CSE-able instructions. Loads are excluded (memory may change);
/// id-query calls are pure and uniform per work-item, barriers are not.
bool isCseable(const Instruction* inst, int& subcode) {
  subcode = -1;
  switch (inst->kind()) {
    case ValueKind::InstBinary:
      subcode = static_cast<int>(cast<BinaryInst>(inst)->op());
      return true;
    case ValueKind::InstICmp:
      subcode = static_cast<int>(cast<ICmpInst>(inst)->pred());
      return true;
    case ValueKind::InstFCmp:
      subcode = 100 + static_cast<int>(cast<FCmpInst>(inst)->pred());
      return true;
    case ValueKind::InstCast:
      subcode = static_cast<int>(cast<CastInst>(inst)->op());
      return true;
    case ValueKind::InstGep:
    case ValueKind::InstSelect:
    case ValueKind::InstExtractElement:
    case ValueKind::InstInsertElement:
      return true;
    case ValueKind::InstCall: {
      const auto* call = cast<CallInst>(inst);
      switch (call->builtin()) {
        case Builtin::GetGlobalId:
        case Builtin::GetLocalId:
        case Builtin::GetGroupId:
        case Builtin::GetGlobalSize:
        case Builtin::GetLocalSize:
        case Builtin::GetNumGroups:
        case Builtin::GetWorkDim:
          subcode = 200 + static_cast<int>(call->builtin());
          return true;
        default:
          return false;  // math calls are pure too, but keep CSE focused
      }
    }
    default:
      return false;
  }
}

ExprKey keyOf(const Instruction* inst, int subcode) {
  ExprKey key;
  key.kind = inst->kind();
  key.subcode = subcode;
  key.type = inst->type();
  key.operands.reserve(inst->numOperands());
  for (unsigned i = 0; i < inst->numOperands(); ++i) {
    key.operands.push_back(inst->operand(i));
  }
  return key;
}

}  // namespace

bool CsePass::run(ir::Function& fn) {
  if (fn.entry() == nullptr) return false;
  analysis::DominatorTree dt(fn);

  // DFS over the dominator tree with a scoped available-expression map:
  // an expression defined in a dominating block is available here.
  std::map<BasicBlock*, std::vector<BasicBlock*>> children;
  for (BasicBlock* bb : dt.rpo()) {
    if (BasicBlock* parent = dt.idom(bb)) children[parent].push_back(bb);
  }

  bool changed = false;
  struct Frame {
    BasicBlock* bb;
    std::map<ExprKey, Instruction*> available;
  };
  std::vector<Frame> stack;
  stack.push_back({fn.entry(), {}});
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();

    std::vector<Instruction*> toErase;
    for (const auto& instPtr : *frame.bb) {
      Instruction* inst = instPtr.get();
      int subcode = -1;
      if (!isCseable(inst, subcode)) continue;
      const ExprKey key = keyOf(inst, subcode);
      auto [it, inserted] = frame.available.try_emplace(key, inst);
      if (!inserted) {
        inst->replaceAllUsesWith(it->second);
        toErase.push_back(inst);
        changed = true;
      }
    }
    for (Instruction* inst : toErase) {
      inst->dropAllOperands();
      frame.bb->erase(inst);
    }
    for (BasicBlock* child : children[frame.bb]) {
      stack.push_back({child, frame.available});
    }
  }
  return changed;
}

}  // namespace grover::passes
