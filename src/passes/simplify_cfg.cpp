#include "passes/simplify_cfg.h"

#include <set>
#include <vector>

#include "ir/casting.h"

namespace grover::passes {

using namespace ir;

namespace {

/// Fold `br i1 <const>, t, f` to an unconditional branch. Also fold
/// condbr with identical targets.
bool foldConstantBranches(Function& fn) {
  bool changed = false;
  for (BasicBlock* bb : fn.blockList()) {
    auto* cbr = dyn_cast<CondBrInst>(bb->terminator());
    if (cbr == nullptr) continue;
    BasicBlock* taken = nullptr;
    if (const auto* c = dyn_cast<ConstantInt>(cbr->condition())) {
      taken = c->value() != 0 ? cbr->ifTrue() : cbr->ifFalse();
    } else if (cbr->ifTrue() == cbr->ifFalse()) {
      taken = cbr->ifTrue();
    }
    if (taken == nullptr) continue;
    BasicBlock* skipped =
        taken == cbr->ifTrue() ? cbr->ifFalse() : cbr->ifTrue();
    // Remove this block from skipped target's phis (if it is no longer a
    // predecessor once the branch is rewritten).
    cbr->dropAllOperands();
    bb->erase(cbr);
    auto br = std::make_unique<BrInst>(fn.context(), taken);
    bb->append(std::move(br));
    if (skipped != taken) {
      for (PhiInst* phi : skipped->phis()) {
        for (unsigned i = 0; i < phi->numIncoming(); ++i) {
          if (phi->incomingBlock(i) == bb) {
            phi->removeIncoming(i);
            break;
          }
        }
      }
    }
    changed = true;
  }
  return changed;
}

/// Remove blocks not reachable from entry, fixing up phis.
bool removeUnreachable(Function& fn) {
  std::set<BasicBlock*> reachable;
  std::vector<BasicBlock*> worklist{fn.entry()};
  while (!worklist.empty()) {
    BasicBlock* bb = worklist.back();
    worklist.pop_back();
    if (!reachable.insert(bb).second) continue;
    for (BasicBlock* succ : bb->successors()) worklist.push_back(succ);
  }
  std::vector<BasicBlock*> dead;
  for (BasicBlock* bb : fn.blockList()) {
    if (reachable.count(bb) == 0) dead.push_back(bb);
  }
  if (dead.empty()) return false;
  // Remove phi entries flowing in from dead blocks.
  for (BasicBlock* bb : fn.blockList()) {
    if (reachable.count(bb) == 0) continue;
    for (PhiInst* phi : bb->phis()) {
      for (unsigned i = phi->numIncoming(); i-- > 0;) {
        if (reachable.count(phi->incomingBlock(i)) == 0) {
          phi->removeIncoming(i);
        }
      }
    }
  }
  // Sever edges among dead blocks, then erase. Dead blocks may define
  // values used by other dead blocks; drop all their operands first.
  for (BasicBlock* bb : dead) {
    for (const auto& inst : *bb) inst->dropAllOperands();
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = dead.begin(); it != dead.end();) {
      if (!(*it)->hasUses()) {
        fn.eraseBlock(*it);
        it = dead.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
  }
  return true;
}

/// Merge `a -> b` when a's terminator is an unconditional br to b and b has
/// exactly one predecessor.
bool mergeChains(Function& fn) {
  bool changed = false;
  bool progress = true;
  while (progress) {
    progress = false;
    for (BasicBlock* bb : fn.blockList()) {
      auto* br = dyn_cast<BrInst>(bb->terminator());
      if (br == nullptr) continue;
      BasicBlock* succ = br->dest();
      if (succ == bb || succ == fn.entry()) continue;
      const std::vector<BasicBlock*> preds = succ->predecessors();
      if (preds.size() != 1 || preds[0] != bb) continue;
      // Collapse succ's phis (single incoming).
      for (PhiInst* phi : succ->phis()) {
        Value* incoming =
            phi->numIncoming() == 1 ? phi->incomingValue(0) : nullptr;
        if (incoming == nullptr) break;
        phi->replaceAllUsesWith(incoming);
        phi->dropAllOperands();
        succ->erase(phi);
      }
      // Move instructions of succ into bb, drop the br.
      br->dropAllOperands();
      bb->erase(br);
      while (!succ->empty()) {
        Instruction* first = succ->front();
        bb->append(succ->detach(first));
      }
      // Phis in succ's successors referring to succ must refer to bb now.
      succ->replaceAllUsesWith(bb);
      fn.eraseBlock(succ);
      progress = true;
      changed = true;
      break;  // block list changed; restart scan
    }
  }
  return changed;
}

}  // namespace

bool SimplifyCfgPass::run(ir::Function& fn) {
  bool changed = false;
  changed |= foldConstantBranches(fn);
  changed |= removeUnreachable(fn);
  changed |= mergeChains(fn);
  return changed;
}

}  // namespace grover::passes
