// Common subexpression elimination (dominator-scoped value numbering) for
// pure instructions. Grover's materializer may re-create id-query calls
// and index arithmetic that already exist; CSE folds the duplicates.
#pragma once

#include "passes/pass.h"

namespace grover::passes {

class CsePass final : public FunctionPass {
 public:
  [[nodiscard]] std::string name() const override { return "cse"; }
  bool run(ir::Function& fn) override;
};

}  // namespace grover::passes
