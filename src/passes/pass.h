// Pass framework: function passes scheduled by a PassManager, with
// optional verification between passes (as the paper's LLVM pipeline does).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/function.h"
#include "ir/module.h"

namespace grover::passes {

/// A transformation over one function. run() returns true if it changed IR.
class FunctionPass {
 public:
  virtual ~FunctionPass() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual bool run(ir::Function& fn) = 0;
};

/// Runs passes in order over every function of a module.
class PassManager {
 public:
  /// verifyBetween: run the IR verifier after every pass (throws on
  /// malformed IR) — enabled in tests, cheap for kernel-sized functions.
  explicit PassManager(bool verifyBetween = false)
      : verify_between_(verifyBetween) {}

  void add(std::unique_ptr<FunctionPass> pass) {
    passes_.push_back(std::move(pass));
  }

  /// Returns true if any pass changed any function.
  bool run(ir::Module& module);
  bool run(ir::Function& fn);

 private:
  std::vector<std::unique_ptr<FunctionPass>> passes_;
  bool verify_between_;
};

/// Convenience: the standard pipeline the compiler runs before Grover
/// (mem2reg, constant folding, simplify-cfg, DCE).
void addStandardPipeline(PassManager& pm);

}  // namespace grover::passes
