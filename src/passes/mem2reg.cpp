#include "passes/mem2reg.h"

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "analysis/dominators.h"
#include "ir/casting.h"

namespace grover::passes {

using namespace ir;

namespace {

/// An alloca is promotable when it is a single private slot whose address
/// never escapes: every use is a direct load or a store *to* it.
bool isPromotable(const AllocaInst* alloca) {
  if (alloca->space() != AddrSpace::Private || alloca->count() != 1) {
    return false;
  }
  for (const Use* use : alloca->uses()) {
    const auto* inst = dyn_cast<Instruction>(use->user);
    if (inst == nullptr) return false;
    if (isa<LoadInst>(inst)) continue;
    if (const auto* store = dyn_cast<StoreInst>(inst)) {
      if (store->value() == alloca) return false;  // address escapes
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace

bool Mem2RegPass::run(ir::Function& fn) {
  BasicBlock* entry = fn.entry();
  if (entry == nullptr) return false;

  // 1. Collect promotable allocas.
  std::vector<AllocaInst*> allocas;
  for (const auto& inst : *entry) {
    if (auto* alloca = dyn_cast<AllocaInst>(inst.get())) {
      if (isPromotable(alloca)) allocas.push_back(alloca);
    }
  }
  if (allocas.empty()) return false;

  analysis::DominatorTree dt(fn);

  // 2. Phi insertion at iterated dominance frontiers of defining blocks.
  std::unordered_map<PhiInst*, AllocaInst*> phiSlot;
  std::unordered_map<AllocaInst*, std::vector<PhiInst*>> slotPhis;
  for (AllocaInst* alloca : allocas) {
    std::set<BasicBlock*> defBlocks;
    for (const Use* use : alloca->uses()) {
      if (auto* store = dyn_cast<StoreInst>(use->user)) {
        if (dt.isReachable(store->parent())) defBlocks.insert(store->parent());
      }
    }
    std::set<BasicBlock*> hasPhi;
    std::vector<BasicBlock*> worklist(defBlocks.begin(), defBlocks.end());
    while (!worklist.empty()) {
      BasicBlock* bb = worklist.back();
      worklist.pop_back();
      for (BasicBlock* frontier : dt.frontier(bb)) {
        if (!hasPhi.insert(frontier).second) continue;
        auto phi = std::make_unique<PhiInst>(alloca->allocatedType());
        phi->setName(alloca->name() + ".phi");
        auto* rawPhi =
            static_cast<PhiInst*>(frontier->insertBefore(
                frontier->empty() ? nullptr : frontier->front(),
                std::move(phi)));
        phiSlot[rawPhi] = alloca;
        slotPhis[alloca].push_back(rawPhi);
        if (defBlocks.count(frontier) == 0) worklist.push_back(frontier);
      }
    }
  }

  // 3. Rename via DFS over the dominator tree.
  std::unordered_map<BasicBlock*, std::vector<BasicBlock*>> domChildren;
  for (BasicBlock* bb : dt.rpo()) {
    if (BasicBlock* parent = dt.idom(bb)) domChildren[parent].push_back(bb);
  }

  std::set<AllocaInst*> promoted(allocas.begin(), allocas.end());
  std::vector<Instruction*> toErase;

  struct Frame {
    BasicBlock* bb;
    std::map<AllocaInst*, Value*> incoming;
  };
  std::vector<Frame> stack;
  stack.push_back({fn.entry(), {}});

  Context& ctx = fn.context();
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    std::map<AllocaInst*, Value*>& current = frame.incoming;

    for (const auto& instPtr : *frame.bb) {
      Instruction* inst = instPtr.get();
      if (auto* phi = dyn_cast<PhiInst>(inst)) {
        auto it = phiSlot.find(phi);
        if (it != phiSlot.end()) current[it->second] = phi;
        continue;
      }
      if (auto* load = dyn_cast<LoadInst>(inst)) {
        auto* alloca = dyn_cast<AllocaInst>(load->pointer());
        if (alloca != nullptr && promoted.count(alloca) != 0) {
          auto it = current.find(alloca);
          Value* replacement =
              it != current.end()
                  ? it->second
                  : static_cast<Value*>(ctx.getUndef(load->type()));
          load->replaceAllUsesWith(replacement);
          toErase.push_back(load);
        }
        continue;
      }
      if (auto* store = dyn_cast<StoreInst>(inst)) {
        auto* alloca = dyn_cast<AllocaInst>(store->pointer());
        if (alloca != nullptr && promoted.count(alloca) != 0) {
          current[alloca] = store->value();
          toErase.push_back(store);
        }
        continue;
      }
    }

    // Feed phi nodes of successors.
    for (BasicBlock* succ : frame.bb->successors()) {
      for (PhiInst* phi : succ->phis()) {
        auto it = phiSlot.find(phi);
        if (it == phiSlot.end()) continue;
        auto cur = current.find(it->second);
        Value* value = cur != current.end()
                           ? cur->second
                           : static_cast<Value*>(
                                 ctx.getUndef(phi->type()));
        phi->addIncoming(value, frame.bb);
      }
    }

    for (BasicBlock* child : domChildren[frame.bb]) {
      stack.push_back({child, current});
    }
  }

  // 4. Erase replaced loads/stores and the allocas.
  for (Instruction* inst : toErase) {
    inst->dropAllOperands();
    inst->parent()->erase(inst);
  }
  // Prune phis that never received an incoming edge from an unreachable
  // pred mismatch (shouldn't happen on pruned CFGs) and drop dead allocas.
  for (AllocaInst* alloca : allocas) {
    if (!alloca->hasUses()) {
      alloca->parent()->erase(alloca);
    }
  }
  return true;
}

}  // namespace grover::passes
