// Barrier elimination: once a kernel performs no local-memory accesses,
// its CLK_LOCAL_MEM_FENCE barriers synchronize nothing and are removed
// (the last "redundant instruction" of the paper's Fig. 1 transformation).
#pragma once

#include "passes/pass.h"

namespace grover::passes {

class BarrierElimPass final : public FunctionPass {
 public:
  [[nodiscard]] std::string name() const override { return "barrier-elim"; }
  bool run(ir::Function& fn) override;
};

/// True if the function still touches __local memory (alloca, load, store
/// or gep in the local address space).
[[nodiscard]] bool usesLocalMemory(const ir::Function& fn);

}  // namespace grover::passes
