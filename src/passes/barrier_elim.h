// Barrier elimination: once a kernel performs no local-memory accesses,
// its CLK_LOCAL_MEM_FENCE barriers synchronize nothing and are removed
// (the last "redundant instruction" of the paper's Fig. 1 transformation).
#pragma once

#include "ir/value.h"
#include "passes/pass.h"

namespace grover::passes {

class BarrierElimPass final : public FunctionPass {
 public:
  [[nodiscard]] std::string name() const override { return "barrier-elim"; }
  bool run(ir::Function& fn) override;
};

/// True if memory is actually read or written through `pointer`: walks GEP
/// chains to real loads/stores, so a pointer whose only remaining uses are
/// dead GEP chains reports false. Escaping uses (the address stored as a
/// value, or fed to anything but a load/store/gep) conservatively count as
/// an access.
[[nodiscard]] bool pointerIsAccessed(const ir::Value* pointer);

/// True if the function still performs real __local memory traffic (a load
/// or store reachable from a local alloca or local pointer argument).
[[nodiscard]] bool usesLocalMemory(const ir::Function& fn);

}  // namespace grover::passes
