// Constant folding + algebraic simplification (x+0, x*1, x*0, 1*x, ...).
// Keeps Grover's rebuilt index expressions tidy, which matters for the
// Table III symbolic index report.
#pragma once

#include "passes/pass.h"

namespace grover::passes {

class ConstantFoldPass final : public FunctionPass {
 public:
  [[nodiscard]] std::string name() const override { return "constfold"; }
  bool run(ir::Function& fn) override;
};

}  // namespace grover::passes
