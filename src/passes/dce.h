// Dead code elimination: removes side-effect-free instructions with no
// uses. After Grover replaces local loads with global loads, DCE is what
// sweeps the dead staging loads/stores' index chains away.
#pragma once

#include "passes/pass.h"

namespace grover::passes {

class DcePass final : public FunctionPass {
 public:
  [[nodiscard]] std::string name() const override { return "dce"; }
  bool run(ir::Function& fn) override;
};

/// True if removing this instruction (when unused) changes program
/// behaviour: stores, barriers, terminators.
[[nodiscard]] bool hasSideEffects(const ir::Instruction& inst);

}  // namespace grover::passes
