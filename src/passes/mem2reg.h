// Mem2Reg: promote private scalar allocas to SSA values with pruned phi
// placement on dominance frontiers. Grover's expression-tree walk relies on
// this pass — in -O0-style IR the index computation would be hidden behind
// load/store pairs and the '+ → *' index pattern would never match.
#pragma once

#include "passes/pass.h"

namespace grover::passes {

class Mem2RegPass final : public FunctionPass {
 public:
  [[nodiscard]] std::string name() const override { return "mem2reg"; }
  bool run(ir::Function& fn) override;
};

}  // namespace grover::passes
