// Blocking client for the groverd wire protocol — the transport behind
// `groverc --connect`. One instance = one connection; pipelining is the
// caller's job (send several frames, then read the responses; ids match
// them up).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/wire.h"

namespace grover::net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to "host:port" (TCP) or a filesystem path (Unix-domain
  /// socket). A hostname may resolve to several addresses; each is
  /// tried in order, every failed attempt's socket is closed before the
  /// next, and the error reported on total failure is the LAST
  /// attempt's errno. Reconnecting an instance resets its frame reader.
  /// Throws GroverError on resolution/connect failure.
  void connect(const std::string& spec);

  /// Send one frame, handling partial writes. SIGPIPE-safe. Throws
  /// GroverError when the daemon hung up.
  void sendFrame(FrameType type, std::uint64_t id,
                 std::string_view payload);

  /// Send raw bytes with no framing — the protocol-violation hook the
  /// wire tests use to poke the daemon with garbage.
  void sendRaw(std::string_view bytes);

  /// Block until one whole frame arrives. Throws GroverError on EOF,
  /// socket error, or a protocol violation in the byte stream.
  [[nodiscard]] Frame readFrame();

  /// Half-close the write side (tests use this to model a client that
  /// stops sending but still reads).
  void shutdownWrite();

  /// Abortive close: RST instead of FIN (SO_LINGER timeout 0). A plain
  /// FIN now means "no more requests, still reading" to the daemon
  /// (half-close); RST is how a vanished client looks on the wire, and
  /// what triggers disconnect cancellation. Tests model crashes with it.
  void abortiveClose();

  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace grover::net
