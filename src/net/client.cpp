#include "net/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>

#include "support/diagnostics.h"
#include "support/str.h"

namespace grover::net {
namespace {

/// "host:port" when the tail after the last ':' is all digits and the
/// head is not a path; anything else is a unix socket path.
bool splitHostPort(const std::string& spec, std::string& host,
                   std::string& port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return false;
  }
  if (spec.find('/') != std::string::npos) return false;
  for (std::size_t i = colon + 1; i < spec.size(); ++i) {
    if (spec[i] < '0' || spec[i] > '9') return false;
  }
  host = spec.substr(0, colon);
  port = spec.substr(colon + 1);
  return true;
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::connect(const std::string& spec) {
  close();
  // A reused client must not carry the previous connection's buffered
  // bytes (or its poisoned state) into the new stream.
  reader_ = FrameReader();
  std::string host, port;
  if (splitHostPort(spec, host, port)) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* result = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints,
                                 &result);
    if (rc != 0) {
      throw GroverError(cat("cannot resolve '", spec, "': ",
                            ::gai_strerror(rc)));
    }
    // RAII so the list is freed on every exit, including throws.
    const std::unique_ptr<addrinfo, void (*)(addrinfo*)> owned(
        result, ::freeaddrinfo);
    // Walk every resolved address with a LOCAL fd: each failed attempt
    // is closed before the next socket(), and fd_ is only ever assigned
    // a connected socket — never left dangling mid-walk.
    int fd = -1;
    int lastErrno = 0;
    for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
      fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) {
        lastErrno = errno;
        continue;
      }
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      // Report the LAST failure: with several resolved addresses the
      // final attempt's errno is what the caller can act on, not a
      // stale first one.
      lastErrno = errno;
      ::close(fd);
      fd = -1;
    }
    if (fd < 0) {
      // lastErrno == 0 means getaddrinfo returned an empty/unusable
      // list and no syscall ever ran; strerror(0) would say "Success".
      throw GroverError(cat("cannot connect to ", spec, ": ",
                            lastErrno != 0
                                ? std::strerror(lastErrno)
                                : "no usable addresses resolved"));
    }
    fd_ = fd;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  } else {
    sockaddr_un addr{};
    if (spec.size() >= sizeof(addr.sun_path)) {
      throw GroverError("unix socket path too long: " + spec);
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      throw GroverError(cat("socket(AF_UNIX): ", std::strerror(errno)));
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, spec.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      throw GroverError(cat("cannot connect to ", spec, ": ",
                            std::strerror(err)));
    }
  }
}

void Client::sendFrame(FrameType type, std::uint64_t id,
                       std::string_view payload) {
  std::string frame;
  appendFrame(frame, type, id, payload);
  sendRaw(frame);
}

void Client::sendRaw(std::string_view bytes) {
  if (fd_ < 0) throw GroverError("not connected");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw GroverError(cat("connection to daemon lost while sending: ",
                          std::strerror(errno)));
  }
}

Frame Client::readFrame() {
  if (fd_ < 0) throw GroverError("not connected");
  for (;;) {
    Frame frame;
    const FrameReader::Result r = reader_.next(frame);
    if (r == FrameReader::Result::Frame) return frame;
    if (r == FrameReader::Result::Error) {
      throw GroverError("protocol error from daemon: " + reader_.error());
    }
    char buf[16384];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      reader_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      throw GroverError("connection closed by daemon");
    }
    throw GroverError(cat("connection to daemon lost: ",
                          std::strerror(errno)));
  }
}

void Client::shutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::abortiveClose() {
  if (fd_ < 0) return;
  const linger lin{1, 0};
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
  close();
}

}  // namespace grover::net
