// Text rendering of per-request verdicts and service stats, shared by
// groverc's local --serve-batch mode and the groverd daemon so a remote
// client sees exactly the lines a local run would print.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/wire.h"
#include "service/compile_service.h"

namespace grover::net {

/// The per-request verdict text of the plain submit path — what groverc
/// prints after "[i] <request>: " (e.g. "ok, 1/1 buffers transformed,
/// np 2.252 (gain)" or "failed: <first diagnostic line>").
[[nodiscard]] std::string renderResultLine(const service::Artifact& a);

/// The per-request verdict text of the policy path (--auto): falls back
/// to renderResultLine for ineligible or failed requests.
[[nodiscard]] std::string renderAutoResultLine(const service::AutoResult& r);

/// What to include in a rendered stats block.
struct StatsRenderOptions {
  bool policy = false;   ///< include the "policy:" line (--auto)
  bool measure = false;  ///< include the "measure:" line (--measure-rate)
  bool prove = false;    ///< include the "prove:" line (--prove)
};

/// The multi-line cache/stages(/policy/measure) stats block groverc
/// prints after a batch; the daemon ships the same text for a Stats
/// frame. Ends with a newline.
[[nodiscard]] std::string renderStats(const service::ServiceStats& s,
                                      const StatsRenderOptions& options);

/// The one-line "server: ..." event-loop counter summary, shared by the
/// daemon's rendered-text stats payload and groverc's decoding of the
/// binary StatsFrame — same counters, byte-identical line, so the two
/// views diff cleanly. Ends with a newline.
[[nodiscard]] std::string renderServerLine(const StatsCounters& c,
                                           std::uint64_t connectionsOpen);

/// One per-shard counter line ("shard N: ..."). Ends with a newline.
[[nodiscard]] std::string renderShardLine(std::size_t index,
                                          const StatsCounters& c);

/// Human-readable rendering of a decoded binary StatsFrame: a health
/// header, the shared "server:" line, per-shard lines when the daemon
/// runs more than one loop shard, and a "service:" summary.
[[nodiscard]] std::string renderStatsFrame(const StatsFrame& f);

/// The same snapshot as one JSON object (machine consumers; groverc
/// --stats-json). Ends with a newline.
[[nodiscard]] std::string renderStatsFrameJson(const StatsFrame& f);

/// One-line health summary for periodic daemon logs (groverd
/// --health-interval). No trailing newline; the caller prefixes and
/// terminates it.
[[nodiscard]] std::string renderHealthLine(const StatsFrame& f);

}  // namespace grover::net
