// Text rendering of per-request verdicts and service stats, shared by
// groverc's local --serve-batch mode and the groverd daemon so a remote
// client sees exactly the lines a local run would print.
#pragma once

#include <string>

#include "service/compile_service.h"

namespace grover::net {

/// The per-request verdict text of the plain submit path — what groverc
/// prints after "[i] <request>: " (e.g. "ok, 1/1 buffers transformed,
/// np 2.252 (gain)" or "failed: <first diagnostic line>").
[[nodiscard]] std::string renderResultLine(const service::Artifact& a);

/// The per-request verdict text of the policy path (--auto): falls back
/// to renderResultLine for ineligible or failed requests.
[[nodiscard]] std::string renderAutoResultLine(const service::AutoResult& r);

/// What to include in a rendered stats block.
struct StatsRenderOptions {
  bool policy = false;   ///< include the "policy:" line (--auto)
  bool measure = false;  ///< include the "measure:" line (--measure-rate)
};

/// The multi-line cache/stages(/policy/measure) stats block groverc
/// prints after a batch; the daemon ships the same text for a Stats
/// frame. Ends with a newline.
[[nodiscard]] std::string renderStats(const service::ServiceStats& s,
                                      const StatsRenderOptions& options);

}  // namespace grover::net
