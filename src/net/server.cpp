#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>

#include "net/batch.h"
#include "net/render.h"
#include "support/diagnostics.h"
#include "support/str.h"

namespace grover::net {
namespace {

using Clock = std::chrono::steady_clock;

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void closeFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

/// Per-connection state machine. Reads accumulate in `reader` until
/// whole frames decode; writes drain from `writeBuf` as the socket
/// accepts them (partial writes keep their offset).
struct Server::Connection {
  int fd = -1;
  std::uint64_t connId = 0;
  FrameReader reader;
  std::string writeBuf;
  std::size_t writeOff = 0;
  /// Admitted requests whose response has not been queued yet.
  std::size_t inflight = 0;
  /// Protocol violation: flush the Error frame, then close. No further
  /// reads are processed.
  bool closeAfterFlush = false;
  /// Peer half-closed (shutdown(SHUT_WR)): it sends no more but may
  /// still be reading. Frames already buffered are served and their
  /// responses flushed before the connection closes.
  bool readClosed = false;
  /// This connection's disconnect flag, shared with service workers so
  /// cold work for a vanished client can be abandoned (cancel.h).
  service::CancelToken cancel;
  /// Index in Server::connections_, maintained by swap-pop on close.
  std::size_t slot = 0;
  Clock::time_point lastActivity = Clock::now();

  explicit Connection(std::size_t maxPayload) : reader(maxPayload) {}
  [[nodiscard]] bool wantsWrite() const {
    return writeOff < writeBuf.size();
  }
};

Server::Server(service::CompileService& service, ServerConfig config,
               std::ostream* log)
    : service_(service),
      config_(std::move(config)),
      log_stream_(log),
      workers_(config_.workers) {
  int fds[2];
  if (::pipe(fds) != 0) {
    throw GroverError(cat("cannot create wakeup pipe: ",
                          std::strerror(errno)));
  }
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
  setNonBlocking(wake_read_fd_);
  setNonBlocking(wake_write_fd_);
  // EMFILE insurance: one descriptor we can give back to accept() with
  // when the process runs out (see acceptPending).
  reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
}

Server::~Server() {
  // Workers may still be queued with tasks holding `this`; wait for
  // them before tearing the completion queue down.
  workers_.waitIdle();
  for (auto& conn : connections_) closeFd(conn->fd);
  connections_.clear();
  conn_by_id_.clear();
  conn_by_fd_.clear();
  closeFd(reserve_fd_);
  closeFd(tcp_fd_);
  closeFd(unix_fd_);
  if (!config_.unixPath.empty()) ::unlink(config_.unixPath.c_str());
  closeFd(wake_read_fd_);
  closeFd(wake_write_fd_);
}

void Server::bind() {
  // TCP listener (unless the caller wants unix-only, signalled by
  // host == "none").
  if (config_.host != "none") {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) {
      throw GroverError(cat("socket: ", std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
      throw GroverError("bad listen address '" + config_.host +
                        "' (expected an IPv4 address)");
    }
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      throw GroverError(cat("cannot bind ", config_.host, ":", config_.port,
                            ": ", std::strerror(errno)));
    }
    if (::listen(tcp_fd_, 64) != 0) {
      throw GroverError(cat("listen: ", std::strerror(errno)));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port_ = ntohs(addr.sin_port);
    setNonBlocking(tcp_fd_);
  }

  if (!config_.unixPath.empty()) {
    sockaddr_un addr{};
    if (config_.unixPath.size() >= sizeof(addr.sun_path)) {
      throw GroverError("unix socket path too long: " + config_.unixPath);
    }
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) {
      throw GroverError(cat("socket(AF_UNIX): ", std::strerror(errno)));
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.unixPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(config_.unixPath.c_str());  // stale socket from a dead daemon
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      throw GroverError(cat("cannot bind unix socket ", config_.unixPath,
                            ": ", std::strerror(errno)));
    }
    if (::listen(unix_fd_, 64) != 0) {
      throw GroverError(cat("listen(unix): ", std::strerror(errno)));
    }
    setNonBlocking(unix_fd_);
  }
  if (tcp_fd_ < 0 && unix_fd_ < 0) {
    throw GroverError("no listener configured (host=none and no --socket)");
  }
}

void Server::requestStop() noexcept {
  stop_requested_.store(true, std::memory_order_relaxed);
  const char byte = 1;
  // Async-signal-safe; the pipe is non-blocking, and a full pipe already
  // guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connectionsAccepted = accepted_.load();
  s.connectionsClosed = closed_.load();
  s.framesReceived = frames_.load();
  s.requestsAdmitted = admitted_total_.load();
  s.responsesSent = responses_.load();
  s.rejectedOverload = overloaded_.load();
  s.rejectedClientCredit = credit_rejected_.load();
  s.rejectedShutdown = shutdown_rejected_.load();
  s.protocolErrors = protocol_errors_.load();
  s.disconnectedMidRequest = disconnected_.load();
  s.idleTimeouts = idle_timeouts_.load();
  s.readBudgetExhausted = read_budget_exhausted_.load();
  s.acceptsShed = accepts_shed_.load();
  return s;
}

void Server::log(const std::string& message) {
  if (log_stream_ != nullptr) {
    *log_stream_ << "groverd: " << message << "\n" << std::flush;
  }
}

void Server::run() {
  Clock::time_point drainDeadline{};
  for (;;) {
    if (stop_requested_.load(std::memory_order_relaxed) && !draining_) {
      draining_ = true;
      drainDeadline = Clock::now() +
                      std::chrono::milliseconds(
                          std::max(config_.drainTimeoutMs, 0));
      closeFd(tcp_fd_);
      closeFd(unix_fd_);
      log(cat("draining: ", admitted_, " request(s) in flight, ",
              connections_.size(), " connection(s) open"));
    }

    if (draining_) {
      // Close everything that has nothing left to say. In-flight
      // requests keep their connection until the response is flushed.
      for (std::size_t i = connections_.size(); i-- > 0;) {
        Connection& c = *connections_[i];
        if (c.inflight == 0 && !c.wantsWrite()) {
          closeConnection(c.connId);
        }
      }
      const bool timedOut =
          Clock::now() >= drainDeadline && config_.drainTimeoutMs >= 0;
      if (admitted_ == 0 && (connections_.empty() || timedOut)) {
        if (!connections_.empty()) {
          log(cat("drain timeout: force-closing ", connections_.size(),
                  " connection(s)"));
          while (!connections_.empty()) {
            closeConnection(connections_.back()->connId);
          }
        }
        break;
      }
    }

    // Build the poll set: listeners, wakeup pipe, connections. While
    // backing off from an fd-exhausted accept(), leave the listeners
    // out so a backlog we cannot serve does not spin the loop.
    std::vector<pollfd> fds;
    fds.push_back({wake_read_fd_, POLLIN, 0});
    const Clock::time_point pollNow = Clock::now();
    const bool acceptBackoff = pollNow < accept_backoff_until_;
    if (!acceptBackoff) {
      if (tcp_fd_ >= 0) fds.push_back({tcp_fd_, POLLIN, 0});
      if (unix_fd_ >= 0) fds.push_back({unix_fd_, POLLIN, 0});
    }
    const std::size_t firstConn = fds.size();
    // connId snapshot per connection pollfd: a handler can close a
    // connection and accept() can reuse its fd within this same round,
    // so an fd match alone does not prove the event's target is alive.
    std::vector<std::uint64_t> pollIds;
    pollIds.reserve(connections_.size());
    for (const auto& conn : connections_) {
      short events = 0;
      // A poisoned connection only flushes its Error frame; a
      // half-closed one has nothing further to read.
      if (!conn->closeAfterFlush && !conn->readClosed) events |= POLLIN;
      if (conn->wantsWrite()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
      pollIds.push_back(conn->connId);
    }

    int timeoutMs = -1;
    if (config_.idleTimeoutMs > 0 && !connections_.empty()) {
      timeoutMs = config_.idleTimeoutMs;
      const Clock::time_point now = Clock::now();
      for (const auto& conn : connections_) {
        if (conn->inflight > 0) continue;
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - conn->lastActivity)
                .count();
        timeoutMs = std::min<int>(
            timeoutMs,
            std::max<int>(0, config_.idleTimeoutMs -
                                 static_cast<int>(elapsed)));
      }
    }
    if (draining_) timeoutMs = timeoutMs < 0 ? 100 : std::min(timeoutMs, 100);
    if (acceptBackoff) {
      // Wake when the backoff expires so the listeners re-arm.
      const auto remain =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              accept_backoff_until_ - pollNow)
              .count() +
          1;
      const int cap = static_cast<int>(
          std::min<long long>(remain, std::numeric_limits<int>::max()));
      timeoutMs = timeoutMs < 0 ? cap : std::min(timeoutMs, cap);
    }

    const int ready = ::poll(fds.data(), fds.size(), timeoutMs);
    if (ready < 0 && errno != EINTR) {
      log(cat("poll failed: ", std::strerror(errno)));
      break;
    }

    // Wakeup pipe: drain it, then the completion queue.
    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }
    drainCompletions();

    for (std::size_t i = 1; i < firstConn; ++i) {
      if (fds[i].revents & POLLIN) acceptPending(fds[i].fd);
    }

    for (std::size_t i = firstConn; i < fds.size(); ++i) {
      const pollfd& p = fds[i];
      if (p.revents == 0) continue;
      const auto it = conn_by_fd_.find(p.fd);
      // Closed this round (and the fd possibly reused by accept):
      // the id snapshot taken at poll-set build time is the proof.
      if (it == conn_by_fd_.end() ||
          it->second->connId != pollIds[i - firstConn]) {
        continue;
      }
      Connection& conn = *it->second;
      const std::uint64_t connId = conn.connId;
      if (conn.readClosed) {
        // Half-closed peers only signal full departure (or error) now.
        if (p.revents & (POLLHUP | POLLERR)) {
          closeConnection(connId);
          continue;
        }
      } else if (p.revents & (POLLIN | POLLHUP | POLLERR)) {
        handleReadable(conn);
      }
      // handleReadable may have closed it; re-find before writing.
      const auto again = conn_by_id_.find(connId);
      if (again == conn_by_id_.end()) continue;
      if (again->second->wantsWrite()) flushWrites(*again->second);
      // flushWrites may have closed it too (EPIPE, closeAfterFlush).
      const auto fin = conn_by_id_.find(connId);
      if (fin != conn_by_id_.end()) maybeCloseDrained(*fin->second);
    }

    // Idle sweep.
    if (config_.idleTimeoutMs > 0) {
      const Clock::time_point now = Clock::now();
      for (std::size_t i = connections_.size(); i-- > 0;) {
        Connection& c = *connections_[i];
        if (c.inflight > 0 || c.wantsWrite()) continue;
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - c.lastActivity)
                .count();
        if (elapsed >= config_.idleTimeoutMs) {
          ++idle_timeouts_;
          closeConnection(c.connId);
        }
      }
    }
  }
  log("drained, event loop exiting");
}

void Server::acceptPending(int listenFd) {
  for (;;) {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors. Give the reserve fd back to the kernel,
        // accept the pending connection so it leaves the backlog, shed
        // it (the peer sees a clean close instead of hanging), then
        // re-arm the reserve — and back the listeners off so the loop
        // does not spin on a backlog it cannot serve.
        if (reserve_fd_ >= 0) {
          closeFd(reserve_fd_);
          const int victim = ::accept(listenFd, nullptr, nullptr);
          if (victim >= 0) {
            ::close(victim);
            ++accepts_shed_;
          }
          reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
        }
        accept_backoff_until_ =
            Clock::now() +
            std::chrono::milliseconds(std::max(config_.acceptBackoffMs, 0));
        if (accept_errno_logged_ != errno) {
          accept_errno_logged_ = errno;
          log(cat("accept: ", std::strerror(errno),
                  "; shedding and backing off ", config_.acceptBackoffMs,
                  " ms"));
        }
        return;
      }
      // Non-transient failure: log once per distinct errno, not per
      // poll round.
      if (accept_errno_logged_ != errno) {
        accept_errno_logged_ = errno;
        log(cat("accept failed: ", std::strerror(errno)));
      }
      return;
    }
    accept_errno_logged_ = 0;
    setNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(config_.maxPayload);
    conn->fd = fd;
    conn->connId = next_conn_id_++;
    conn->cancel = service::makeCancelToken();
    conn->slot = connections_.size();
    Connection* raw = conn.get();
    connections_.push_back(std::move(conn));
    conn_by_id_.emplace(raw->connId, raw);
    conn_by_fd_.emplace(fd, raw);
    ++accepted_;
  }
}

void Server::handleReadable(Connection& conn) {
  if (conn.closeAfterFlush || conn.readClosed) return;
  char buf[16384];
  std::size_t readThisTick = 0;
  for (;;) {
    std::size_t want = sizeof(buf);
    if (config_.readBudgetBytes > 0) {
      if (readThisTick >= config_.readBudgetBytes) {
        // Fairness: leave the rest in the kernel buffer and yield to
        // the other connections; the socket stays readable, so the
        // next poll round returns immediately to continue here.
        ++read_budget_exhausted_;
        break;
      }
      want = std::min(want, config_.readBudgetBytes - readThisTick);
    }
    const ssize_t n = ::recv(conn.fd, buf, want, 0);
    if (n > 0) {
      conn.lastActivity = Clock::now();
      readThisTick += static_cast<std::size_t>(n);
      conn.reader.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      // Half-close (shutdown(SHUT_WR)): the peer finished sending but
      // may still be reading. Whole frames already buffered must be
      // served and their responses flushed before the close — falling
      // through to the frame loop below does exactly that.
      conn.readClosed = true;
      break;
    }
    // Hard error: the peer is gone in both directions. In-flight
    // requests finish in the service; their completions are dropped.
    closeConnection(conn.connId);
    return;
  }

  for (;;) {
    Frame frame;
    const FrameReader::Result r = conn.reader.next(frame);
    if (r == FrameReader::Result::NeedMore) break;
    if (r == FrameReader::Result::Error) {
      ++protocol_errors_;
      log(cat("protocol error on connection #", conn.connId, ": ",
              conn.reader.error()));
      respond(conn, FrameType::Error, 0, Status::Malformed,
              conn.reader.error());
      conn.closeAfterFlush = true;
      flushWrites(conn);
      return;
    }
    ++frames_;
    handleFrame(conn, std::move(frame));
    if (conn.closeAfterFlush) {
      flushWrites(conn);
      return;
    }
  }
}

void Server::handleFrame(Connection& conn, Frame frame) {
  switch (frame.type) {
    case FrameType::Request:
    case FrameType::AutoRequest:
      if (draining_) {
        ++shutdown_rejected_;
        respond(conn, FrameType::Response, frame.id, Status::ShuttingDown,
                "error: daemon is shutting down");
        return;
      }
      // Per-connection credits first: a pipeliner past its own
      // allowance is rejected even while the global queue has room, so
      // one greedy client cannot starve the rest.
      if (config_.clientCredits > 0 &&
          conn.inflight >= config_.clientCredits) {
        ++overloaded_;
        ++credit_rejected_;
        respond(conn, FrameType::Response, frame.id, Status::Overloaded,
                cat("error: per-connection credit limit (",
                    config_.clientCredits, " in flight); retry later"));
        return;
      }
      {
        // Global bound, with the last admitReserve slots held back for
        // a connection's FIRST outstanding request: even when
        // pipeliners collectively fill the queue, a polite serial
        // client still admits.
        const std::size_t cap = config_.maxAdmitted;
        const std::size_t reserve =
            cap > 0 ? std::min(config_.admitReserve, cap - 1) : 0;
        const std::size_t limit = conn.inflight == 0 ? cap : cap - reserve;
        if (admitted_ >= limit) {
          ++overloaded_;
          respond(conn, FrameType::Response, frame.id, Status::Overloaded,
                  cat("error: admission queue full (", config_.maxAdmitted,
                      " in flight); retry later"));
          return;
        }
      }
      ++admitted_;
      ++admitted_total_;
      ++conn.inflight;
      dispatchRequest(conn, frame.type, frame.id, std::move(frame.payload));
      return;
    case FrameType::Stats:
      respond(conn, FrameType::StatsResponse, frame.id, Status::Ok,
              renderStatsPayload());
      return;
    case FrameType::Response:
    case FrameType::StatsResponse:
    case FrameType::Error: {
      ++protocol_errors_;
      const std::string reason =
          cat("unexpected frame type ",
              static_cast<std::uint16_t>(frame.type), " from client");
      log(cat("protocol error on connection #", conn.connId, ": ", reason));
      respond(conn, FrameType::Error, frame.id, Status::Malformed, reason);
      conn.closeAfterFlush = true;
      return;
    }
  }
}

void Server::dispatchRequest(Connection& conn, FrameType type,
                             std::uint64_t id, std::string payload) {
  const std::uint64_t connId = conn.connId;
  workers_.submit([this, connId, id, type, cancel = conn.cancel,
                   payload = std::move(payload)]() mutable {
    Completion c;
    c.connId = connId;
    c.requestId = id;
    BatchEntry entry = parseRequestLine(payload);
    if (entry.text.empty()) {
      c.status = Status::RequestFailed;
      c.text = "error: empty request";
    } else if (!entry.valid) {
      c.status = Status::RequestFailed;
      c.text = "error: " + entry.error;
    } else {
      try {
        // Status::Ok means "the request was served" — a negative
        // artifact ("failed: <diagnostic>") is a served verdict, same
        // as local serve-batch, and must not fail the client's batch.
        if (type == FrameType::AutoRequest) {
          const service::AutoResult r =
              service_.compileAuto(entry.request, cancel);
          c.status = Status::Ok;
          c.text = renderAutoResultLine(r);
        } else {
          const service::ArtifactPtr a =
              service_.run(entry.request, cancel);
          c.status = Status::Ok;
          c.text = renderResultLine(*a);
        }
      } catch (const std::exception& e) {
        c.status = Status::RequestFailed;
        c.text = std::string("error: ") + e.what();
      }
    }
    {
      std::lock_guard lock(completion_mutex_);
      completions_.push_back(std::move(c));
    }
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
  });
}

void Server::drainCompletions() {
  std::vector<Completion> done;
  {
    std::lock_guard lock(completion_mutex_);
    done.swap(completions_);
  }
  for (Completion& c : done) {
    --admitted_;
    const auto it = conn_by_id_.find(c.connId);
    if (it == conn_by_id_.end()) {
      // Client disconnected mid-request: the work finished in the
      // service (or was abandoned at a stage boundary, if every waiter
      // was gone); only the reply has nowhere to go.
      ++disconnected_;
      continue;
    }
    Connection& conn = *it->second;
    if (conn.inflight > 0) --conn.inflight;
    respond(conn, FrameType::Response, c.requestId, c.status, c.text);
    flushWrites(conn);
    // flushWrites may have closed the connection; if it survived and
    // its peer half-closed, this response may have been its last duty.
    const auto again = conn_by_id_.find(c.connId);
    if (again != conn_by_id_.end()) maybeCloseDrained(*again->second);
  }
}

void Server::respond(Connection& conn, FrameType type, std::uint64_t id,
                     Status status, std::string_view text) {
  appendStatusFrame(conn.writeBuf, type, id, status, text);
  ++responses_;
  conn.lastActivity = Clock::now();
}

void Server::flushWrites(Connection& conn) {
  while (conn.wantsWrite()) {
    const ssize_t n =
        ::send(conn.fd, conn.writeBuf.data() + conn.writeOff,
               conn.writeBuf.size() - conn.writeOff, MSG_NOSIGNAL);
    if (n > 0) {
      conn.writeOff += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    closeConnection(conn.connId);  // EPIPE/ECONNRESET: peer is gone
    return;
  }
  if (conn.writeOff == conn.writeBuf.size()) {
    conn.writeBuf.clear();
    conn.writeOff = 0;
    if (conn.closeAfterFlush) closeConnection(conn.connId);
  }
}

void Server::maybeCloseDrained(Connection& conn) {
  if (conn.readClosed && conn.inflight == 0 && !conn.wantsWrite()) {
    closeConnection(conn.connId);
  }
}

void Server::closeConnection(std::uint64_t connId) {
  const auto it = conn_by_id_.find(connId);
  if (it == conn_by_id_.end()) return;
  Connection* conn = it->second;
  // Tell in-flight service work this waiter is gone; cold stages poll
  // the token and abandon the compile once EVERY waiter has cancelled.
  if (conn->cancel != nullptr) {
    conn->cancel->store(true, std::memory_order_relaxed);
  }
  conn_by_fd_.erase(conn->fd);
  conn_by_id_.erase(it);
  closeFd(conn->fd);
  // Swap-pop keeps close O(1); slot indices track the move.
  const std::size_t slot = conn->slot;
  if (slot + 1 != connections_.size()) {
    std::swap(connections_[slot], connections_.back());
    connections_[slot]->slot = slot;
  }
  connections_.pop_back();
  ++closed_;
}

std::string Server::renderStatsPayload() {
  StatsRenderOptions opts;
  opts.policy = true;
  opts.measure = true;
  std::string text = renderStats(service_.stats(), opts);
  const ServerStats s = stats();
  text += cat("server: ", s.connectionsAccepted, " connections (",
              connections_.size(), " open, ", s.acceptsShed, " shed), ",
              s.framesReceived, " frames, ", s.requestsAdmitted,
              " admitted, ", s.responsesSent, " responses, ",
              s.rejectedOverload, " overload-rejected (",
              s.rejectedClientCredit, " credit), ", s.protocolErrors,
              " protocol errors, ", s.disconnectedMidRequest,
              " disconnected mid-request, ", s.idleTimeouts,
              " idle timeouts, ", s.readBudgetExhausted,
              " read-budget yields\n");
  return text;
}

}  // namespace grover::net
