#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/batch.h"
#include "net/render.h"
#include "support/diagnostics.h"
#include "support/str.h"

namespace grover::net {
namespace {

using Clock = std::chrono::steady_clock;

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void closeFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

/// Per-connection state machine. Reads accumulate in `reader` until
/// whole frames decode; writes drain from `writeBuf` as the socket
/// accepts them (partial writes keep their offset).
struct Server::Connection {
  int fd = -1;
  std::uint64_t connId = 0;
  FrameReader reader;
  std::string writeBuf;
  std::size_t writeOff = 0;
  /// Admitted requests whose response has not been queued yet.
  std::size_t inflight = 0;
  /// Protocol violation: flush the Error frame, then close. No further
  /// reads are processed.
  bool closeAfterFlush = false;
  Clock::time_point lastActivity = Clock::now();

  explicit Connection(std::size_t maxPayload) : reader(maxPayload) {}
  [[nodiscard]] bool wantsWrite() const {
    return writeOff < writeBuf.size();
  }
};

Server::Server(service::CompileService& service, ServerConfig config,
               std::ostream* log)
    : service_(service),
      config_(std::move(config)),
      log_stream_(log),
      workers_(config_.workers) {
  int fds[2];
  if (::pipe(fds) != 0) {
    throw GroverError(cat("cannot create wakeup pipe: ",
                          std::strerror(errno)));
  }
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
  setNonBlocking(wake_read_fd_);
  setNonBlocking(wake_write_fd_);
}

Server::~Server() {
  // Workers may still be queued with tasks holding `this`; wait for
  // them before tearing the completion queue down.
  workers_.waitIdle();
  for (auto& conn : connections_) closeFd(conn->fd);
  connections_.clear();
  closeFd(tcp_fd_);
  closeFd(unix_fd_);
  if (!config_.unixPath.empty()) ::unlink(config_.unixPath.c_str());
  closeFd(wake_read_fd_);
  closeFd(wake_write_fd_);
}

void Server::bind() {
  // TCP listener (unless the caller wants unix-only, signalled by
  // host == "none").
  if (config_.host != "none") {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) {
      throw GroverError(cat("socket: ", std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
      throw GroverError("bad listen address '" + config_.host +
                        "' (expected an IPv4 address)");
    }
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      throw GroverError(cat("cannot bind ", config_.host, ":", config_.port,
                            ": ", std::strerror(errno)));
    }
    if (::listen(tcp_fd_, 64) != 0) {
      throw GroverError(cat("listen: ", std::strerror(errno)));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port_ = ntohs(addr.sin_port);
    setNonBlocking(tcp_fd_);
  }

  if (!config_.unixPath.empty()) {
    sockaddr_un addr{};
    if (config_.unixPath.size() >= sizeof(addr.sun_path)) {
      throw GroverError("unix socket path too long: " + config_.unixPath);
    }
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) {
      throw GroverError(cat("socket(AF_UNIX): ", std::strerror(errno)));
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.unixPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(config_.unixPath.c_str());  // stale socket from a dead daemon
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      throw GroverError(cat("cannot bind unix socket ", config_.unixPath,
                            ": ", std::strerror(errno)));
    }
    if (::listen(unix_fd_, 64) != 0) {
      throw GroverError(cat("listen(unix): ", std::strerror(errno)));
    }
    setNonBlocking(unix_fd_);
  }
  if (tcp_fd_ < 0 && unix_fd_ < 0) {
    throw GroverError("no listener configured (host=none and no --socket)");
  }
}

void Server::requestStop() noexcept {
  stop_requested_.store(true, std::memory_order_relaxed);
  const char byte = 1;
  // Async-signal-safe; the pipe is non-blocking, and a full pipe already
  // guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connectionsAccepted = accepted_.load();
  s.connectionsClosed = closed_.load();
  s.framesReceived = frames_.load();
  s.requestsAdmitted = admitted_total_.load();
  s.responsesSent = responses_.load();
  s.rejectedOverload = overloaded_.load();
  s.rejectedShutdown = shutdown_rejected_.load();
  s.protocolErrors = protocol_errors_.load();
  s.disconnectedMidRequest = disconnected_.load();
  s.idleTimeouts = idle_timeouts_.load();
  return s;
}

void Server::log(const std::string& message) {
  if (log_stream_ != nullptr) {
    *log_stream_ << "groverd: " << message << "\n" << std::flush;
  }
}

void Server::run() {
  Clock::time_point drainDeadline{};
  for (;;) {
    if (stop_requested_.load(std::memory_order_relaxed) && !draining_) {
      draining_ = true;
      drainDeadline = Clock::now() +
                      std::chrono::milliseconds(
                          std::max(config_.drainTimeoutMs, 0));
      closeFd(tcp_fd_);
      closeFd(unix_fd_);
      log(cat("draining: ", admitted_, " request(s) in flight, ",
              connections_.size(), " connection(s) open"));
    }

    if (draining_) {
      // Close everything that has nothing left to say. In-flight
      // requests keep their connection until the response is flushed.
      for (std::size_t i = connections_.size(); i-- > 0;) {
        Connection& c = *connections_[i];
        if (c.inflight == 0 && !c.wantsWrite()) {
          closeConnection(c.connId);
        }
      }
      const bool timedOut =
          Clock::now() >= drainDeadline && config_.drainTimeoutMs >= 0;
      if (admitted_ == 0 && (connections_.empty() || timedOut)) {
        if (!connections_.empty()) {
          log(cat("drain timeout: force-closing ", connections_.size(),
                  " connection(s)"));
          while (!connections_.empty()) {
            closeConnection(connections_.back()->connId);
          }
        }
        break;
      }
    }

    // Build the poll set: listeners, wakeup pipe, connections.
    std::vector<pollfd> fds;
    fds.push_back({wake_read_fd_, POLLIN, 0});
    if (tcp_fd_ >= 0) fds.push_back({tcp_fd_, POLLIN, 0});
    if (unix_fd_ >= 0) fds.push_back({unix_fd_, POLLIN, 0});
    const std::size_t firstConn = fds.size();
    for (const auto& conn : connections_) {
      short events = 0;
      // A poisoned connection only flushes its Error frame.
      if (!conn->closeAfterFlush) events |= POLLIN;
      if (conn->wantsWrite()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }

    int timeoutMs = -1;
    if (config_.idleTimeoutMs > 0 && !connections_.empty()) {
      timeoutMs = config_.idleTimeoutMs;
      const Clock::time_point now = Clock::now();
      for (const auto& conn : connections_) {
        if (conn->inflight > 0) continue;
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - conn->lastActivity)
                .count();
        timeoutMs = std::min<int>(
            timeoutMs,
            std::max<int>(0, config_.idleTimeoutMs -
                                 static_cast<int>(elapsed)));
      }
    }
    if (draining_) timeoutMs = timeoutMs < 0 ? 100 : std::min(timeoutMs, 100);

    const int ready = ::poll(fds.data(), fds.size(), timeoutMs);
    if (ready < 0 && errno != EINTR) {
      log(cat("poll failed: ", std::strerror(errno)));
      break;
    }

    // Wakeup pipe: drain it, then the completion queue.
    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }
    drainCompletions();

    for (std::size_t i = 1; i < firstConn; ++i) {
      if (fds[i].revents & POLLIN) acceptPending(fds[i].fd);
    }

    // Snapshot conn ids: handlers may close (erase) connections.
    for (std::size_t i = firstConn; i < fds.size(); ++i) {
      const pollfd& p = fds[i];
      if (p.revents == 0) continue;
      const auto it = std::find_if(
          connections_.begin(), connections_.end(),
          [&](const auto& c) { return c->fd == p.fd; });
      if (it == connections_.end()) continue;
      Connection& conn = **it;
      const std::uint64_t connId = conn.connId;
      if (p.revents & (POLLIN | POLLHUP | POLLERR)) {
        handleReadable(conn);
      }
      // handleReadable may have closed it; re-find before writing.
      const auto again = std::find_if(
          connections_.begin(), connections_.end(),
          [&](const auto& c) { return c->connId == connId; });
      if (again != connections_.end() && (*again)->wantsWrite()) {
        flushWrites(**again);
      }
    }

    // Idle sweep.
    if (config_.idleTimeoutMs > 0) {
      const Clock::time_point now = Clock::now();
      for (std::size_t i = connections_.size(); i-- > 0;) {
        Connection& c = *connections_[i];
        if (c.inflight > 0 || c.wantsWrite()) continue;
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - c.lastActivity)
                .count();
        if (elapsed >= config_.idleTimeoutMs) {
          ++idle_timeouts_;
          closeConnection(c.connId);
        }
      }
    }
  }
  log("drained, event loop exiting");
}

void Server::acceptPending(int listenFd) {
  for (;;) {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: next poll round
    setNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(config_.maxPayload);
    conn->fd = fd;
    conn->connId = next_conn_id_++;
    connections_.push_back(std::move(conn));
    ++accepted_;
  }
}

void Server::handleReadable(Connection& conn) {
  if (conn.closeAfterFlush) return;
  char buf[16384];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.lastActivity = Clock::now();
      conn.reader.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EOF or hard error: the peer is gone. In-flight requests finish in
    // the service; their completions are dropped on arrival.
    closeConnection(conn.connId);
    return;
  }

  for (;;) {
    Frame frame;
    const FrameReader::Result r = conn.reader.next(frame);
    if (r == FrameReader::Result::NeedMore) break;
    if (r == FrameReader::Result::Error) {
      ++protocol_errors_;
      log(cat("protocol error on connection #", conn.connId, ": ",
              conn.reader.error()));
      respond(conn, FrameType::Error, 0, Status::Malformed,
              conn.reader.error());
      conn.closeAfterFlush = true;
      flushWrites(conn);
      return;
    }
    ++frames_;
    handleFrame(conn, std::move(frame));
    if (conn.closeAfterFlush) {
      flushWrites(conn);
      return;
    }
  }
}

void Server::handleFrame(Connection& conn, Frame frame) {
  switch (frame.type) {
    case FrameType::Request:
    case FrameType::AutoRequest:
      if (draining_) {
        ++shutdown_rejected_;
        respond(conn, FrameType::Response, frame.id, Status::ShuttingDown,
                "error: daemon is shutting down");
        return;
      }
      if (admitted_ >= config_.maxAdmitted) {
        ++overloaded_;
        respond(conn, FrameType::Response, frame.id, Status::Overloaded,
                cat("error: admission queue full (", config_.maxAdmitted,
                    " in flight); retry later"));
        return;
      }
      ++admitted_;
      ++admitted_total_;
      ++conn.inflight;
      dispatchRequest(conn, frame.type, frame.id, std::move(frame.payload));
      return;
    case FrameType::Stats:
      respond(conn, FrameType::StatsResponse, frame.id, Status::Ok,
              renderStatsPayload());
      return;
    case FrameType::Response:
    case FrameType::StatsResponse:
    case FrameType::Error: {
      ++protocol_errors_;
      const std::string reason =
          cat("unexpected frame type ",
              static_cast<std::uint16_t>(frame.type), " from client");
      log(cat("protocol error on connection #", conn.connId, ": ", reason));
      respond(conn, FrameType::Error, frame.id, Status::Malformed, reason);
      conn.closeAfterFlush = true;
      return;
    }
  }
}

void Server::dispatchRequest(Connection& conn, FrameType type,
                             std::uint64_t id, std::string payload) {
  const std::uint64_t connId = conn.connId;
  workers_.submit([this, connId, id, type,
                   payload = std::move(payload)]() mutable {
    Completion c;
    c.connId = connId;
    c.requestId = id;
    BatchEntry entry = parseRequestLine(payload);
    if (entry.text.empty()) {
      c.status = Status::RequestFailed;
      c.text = "error: empty request";
    } else if (!entry.valid) {
      c.status = Status::RequestFailed;
      c.text = "error: " + entry.error;
    } else {
      try {
        // Status::Ok means "the request was served" — a negative
        // artifact ("failed: <diagnostic>") is a served verdict, same
        // as local serve-batch, and must not fail the client's batch.
        if (type == FrameType::AutoRequest) {
          const service::AutoResult r =
              service_.compileAuto(entry.request);
          c.status = Status::Ok;
          c.text = renderAutoResultLine(r);
        } else {
          const service::ArtifactPtr a = service_.run(entry.request);
          c.status = Status::Ok;
          c.text = renderResultLine(*a);
        }
      } catch (const std::exception& e) {
        c.status = Status::RequestFailed;
        c.text = std::string("error: ") + e.what();
      }
    }
    {
      std::lock_guard lock(completion_mutex_);
      completions_.push_back(std::move(c));
    }
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
  });
}

void Server::drainCompletions() {
  std::vector<Completion> done;
  {
    std::lock_guard lock(completion_mutex_);
    done.swap(completions_);
  }
  for (Completion& c : done) {
    --admitted_;
    const auto it = std::find_if(
        connections_.begin(), connections_.end(),
        [&](const auto& conn) { return conn->connId == c.connId; });
    if (it == connections_.end()) {
      // Client disconnected mid-request: the work is done (and cached),
      // only the reply has nowhere to go.
      ++disconnected_;
      continue;
    }
    Connection& conn = **it;
    if (conn.inflight > 0) --conn.inflight;
    respond(conn, FrameType::Response, c.requestId, c.status, c.text);
    flushWrites(conn);
  }
}

void Server::respond(Connection& conn, FrameType type, std::uint64_t id,
                     Status status, std::string_view text) {
  appendStatusFrame(conn.writeBuf, type, id, status, text);
  ++responses_;
  conn.lastActivity = Clock::now();
}

void Server::flushWrites(Connection& conn) {
  while (conn.wantsWrite()) {
    const ssize_t n =
        ::send(conn.fd, conn.writeBuf.data() + conn.writeOff,
               conn.writeBuf.size() - conn.writeOff, MSG_NOSIGNAL);
    if (n > 0) {
      conn.writeOff += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    closeConnection(conn.connId);  // EPIPE/ECONNRESET: peer is gone
    return;
  }
  if (conn.writeOff == conn.writeBuf.size()) {
    conn.writeBuf.clear();
    conn.writeOff = 0;
    if (conn.closeAfterFlush) closeConnection(conn.connId);
  }
}

void Server::closeConnection(std::uint64_t connId) {
  const auto it = std::find_if(
      connections_.begin(), connections_.end(),
      [&](const auto& conn) { return conn->connId == connId; });
  if (it == connections_.end()) return;
  closeFd((*it)->fd);
  connections_.erase(it);
  ++closed_;
}

std::string Server::renderStatsPayload() {
  StatsRenderOptions opts;
  opts.policy = true;
  opts.measure = true;
  std::string text = renderStats(service_.stats(), opts);
  const ServerStats s = stats();
  text += cat("server: ", s.connectionsAccepted, " connections (",
              connections_.size(), " open), ", s.framesReceived,
              " frames, ", s.requestsAdmitted, " admitted, ",
              s.responsesSent, " responses, ", s.rejectedOverload,
              " overload-rejected, ", s.protocolErrors,
              " protocol errors, ", s.disconnectedMidRequest,
              " disconnected mid-request, ", s.idleTimeouts,
              " idle timeouts\n");
  return text;
}

}  // namespace grover::net
