#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <thread>
#include <unordered_map>

#include "net/batch.h"
#include "net/render.h"
#include "support/diagnostics.h"
#include "support/str.h"

namespace grover::net {
namespace {

using Clock = std::chrono::steady_clock;

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void closeFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

StatsCounters toCounters(const ServerStats& s) {
  StatsCounters c;
  c.connectionsAccepted = s.connectionsAccepted;
  c.connectionsClosed = s.connectionsClosed;
  c.framesReceived = s.framesReceived;
  c.requestsAdmitted = s.requestsAdmitted;
  c.responsesSent = s.responsesSent;
  c.rejectedOverload = s.rejectedOverload;
  c.rejectedClientCredit = s.rejectedClientCredit;
  c.rejectedShutdown = s.rejectedShutdown;
  c.protocolErrors = s.protocolErrors;
  c.disconnectedMidRequest = s.disconnectedMidRequest;
  c.idleTimeouts = s.idleTimeouts;
  c.readBudgetExhausted = s.readBudgetExhausted;
  c.acceptsShed = s.acceptsShed;
  return c;
}

}  // namespace

/// Per-connection state machine. Reads accumulate in `reader` until
/// whole frames decode; writes drain from `writeBuf` as the socket
/// accepts them (partial writes keep their offset). Owned by exactly
/// one shard; only that shard's loop thread touches it.
struct Server::Connection {
  int fd = -1;
  std::uint64_t connId = 0;
  FrameReader reader;
  std::string writeBuf;
  std::size_t writeOff = 0;
  /// Admitted requests whose response has not been queued yet.
  std::size_t inflight = 0;
  /// Protocol violation: flush the Error frame, then close. No further
  /// reads are processed.
  bool closeAfterFlush = false;
  /// Peer half-closed (shutdown(SHUT_WR)): it sends no more but may
  /// still be reading. Frames already buffered are served and their
  /// responses flushed before the connection closes.
  bool readClosed = false;
  /// This connection's disconnect flag, shared with service workers so
  /// cold work for a vanished client can be abandoned (cancel.h).
  service::CancelToken cancel;
  /// Index in the owning shard's connection vector (swap-pop on close).
  std::size_t slot = 0;
  /// Last time this connection did something that counts against the
  /// idle timeout: socket reads, request admission, and response
  /// completion all bump it, so waiting on a slow compile is activity.
  Clock::time_point lastActivity = Clock::now();

  explicit Connection(std::size_t maxPayload) : reader(maxPayload) {}
  [[nodiscard]] bool wantsWrite() const {
    return writeOff < writeBuf.size();
  }
};

/// One independent event loop: its own listeners, poll set, connection
/// maps, completion queue and wakeup pipe. Every mutable field below
/// the cross-thread section is owned by this shard's loop thread.
struct Server::Shard {
  Server& server;
  const std::size_t index;

  // Listeners. Under SO_REUSEPORT every shard has a tcpListenFd; in
  // handoff mode only shard 0 does. unixListenFd lives on shard 0.
  int tcpListenFd = -1;
  int unixListenFd = -1;
  int wakeReadFd = -1;
  int wakeWriteFd = -1;

  // Cross-thread: workers push completions, shard 0 hands fds over.
  std::mutex completionMutex;
  std::vector<Completion> completions;
  std::mutex handoffMutex;
  std::vector<int> handoffFds;
  /// Connections owned by (or in the handoff queue of) this shard.
  /// Read by the routing shard to pick the least-loaded target and by
  /// stats(); incremented by whoever routes the fd here.
  std::atomic<std::size_t> openConnections{0};

  // Per-shard counters: written only by this shard's loop thread,
  // atomics so stats() can read them from anywhere.
  std::atomic<std::uint64_t> accepted{0}, closed{0}, frames{0},
      admittedTotal{0}, responses{0}, overloaded{0}, creditRejected{0},
      shutdownRejected{0}, protocolErrors{0}, disconnected{0},
      idleTimeouts{0}, readBudgetExhausted{0}, acceptsShed{0};

  // Loop-thread state.
  std::vector<std::unique_ptr<Connection>> connections;
  std::unordered_map<std::uint64_t, Connection*> connById;
  std::unordered_map<int, Connection*> connByFd;
  bool draining = false;
  // EMFILE recovery: a reserve fd (to /dev/null) we can close to free a
  // descriptor, accept the pending connection, shed it, and re-open the
  // reserve — so the kernel backlog cannot wedge full of connections we
  // will never see. Plus a listener-poll backoff to avoid spinning.
  int reserveFd = -1;
  Clock::time_point acceptBackoffUntil{};
  int acceptErrnoLogged = 0;

  Shard(Server& s, std::size_t i) : server(s), index(i) {
    int fds[2];
    if (::pipe(fds) != 0) {
      throw GroverError(cat("cannot create wakeup pipe: ",
                            std::strerror(errno)));
    }
    wakeReadFd = fds[0];
    wakeWriteFd = fds[1];
    setNonBlocking(wakeReadFd);
    setNonBlocking(wakeWriteFd);
    reserveFd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  }

  ~Shard() {
    for (auto& conn : connections) closeFd(conn->fd);
    connections.clear();
    connById.clear();
    connByFd.clear();
    for (int fd : handoffFds) ::close(fd);
    handoffFds.clear();
    closeFd(reserveFd);
    closeFd(tcpListenFd);
    closeFd(unixListenFd);
    closeFd(wakeReadFd);
    closeFd(wakeWriteFd);
  }

  void wake() noexcept {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wakeWriteFd, &byte, 1);
  }

  void run();
  void adoptFd(int fd);
  void drainHandoff();
  void acceptPending(int listenFd);
  void handleReadable(Connection& conn);
  void handleFrame(Connection& conn, Frame frame);
  void dispatchRequest(Connection& conn, FrameType type, std::uint64_t id,
                       std::string payload);
  void respond(Connection& conn, FrameType type, std::uint64_t id,
               Status status, std::string_view text);
  void flushWrites(Connection& conn);
  void maybeCloseDrained(Connection& conn);
  void closeConnection(std::uint64_t connId);
  void drainCompletions();
};

Server::Server(service::CompileService& service, ServerConfig config,
               std::ostream* log)
    : service_(service),
      config_(std::move(config)),
      log_stream_(log),
      workers_(config_.workers),
      started_at_(Clock::now()) {
  config_.loopShards = std::max<std::size_t>(1, config_.loopShards);
  shards_.reserve(config_.loopShards);
  for (std::size_t i = 0; i < config_.loopShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(*this, i));
  }
}

Server::~Server() {
  // Workers may still be queued with tasks holding shard pointers; wait
  // for them before tearing the shards down.
  workers_.waitIdle();
  shards_.clear();
  if (unix_bound_) ::unlink(config_.unixPath.c_str());
}

void Server::bind() {
  // TCP listeners (unless the caller wants unix-only, signalled by
  // host == "none").
  if (config_.host != "none") {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
      throw GroverError("bad listen address '" + config_.host +
                        "' (expected an IPv4 address)");
    }
    bool reusePort = config_.reusePort && shards_.size() > 1;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) {
        throw GroverError(cat("socket: ", std::strerror(errno)));
      }
      shards_[i]->tcpListenFd = fd;  // owned by the shard from here on
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (reusePort &&
          ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) !=
              0) {
        if (i > 0) {
          throw GroverError(cat("setsockopt(SO_REUSEPORT): ",
                                std::strerror(errno)));
        }
        // No SO_REUSEPORT on this system: fall back to a single
        // routing listener on shard 0 handing fds across shards.
        log(cat("SO_REUSEPORT unavailable (", std::strerror(errno),
                "); falling back to single-listener handoff"));
        reusePort = false;
      }
      addr.sin_port = htons(bound_port_ != 0 ? bound_port_ : config_.port);
      if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0) {
        throw GroverError(cat("cannot bind ", config_.host, ":",
                              bound_port_ != 0 ? bound_port_ : config_.port,
                              ": ", std::strerror(errno)));
      }
      if (::listen(fd, 64) != 0) {
        throw GroverError(cat("listen: ", std::strerror(errno)));
      }
      if (i == 0) {
        socklen_t len = sizeof(addr);
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
        bound_port_ = ntohs(addr.sin_port);
      }
      setNonBlocking(fd);
      if (!reusePort) break;  // shard 0's listener routes for everyone
    }
    tcp_handoff_ = !reusePort;
  }

  if (!config_.unixPath.empty()) {
    sockaddr_un addr{};
    if (config_.unixPath.size() >= sizeof(addr.sun_path)) {
      throw GroverError("unix socket path too long: " + config_.unixPath);
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.unixPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    // A socket file may be a live daemon or debris from a dead one.
    // Unlinking blindly would hijack a running server's listener, so
    // probe first: a successful connect() proves someone is serving;
    // only ECONNREFUSED (nobody behind the file) licenses the unlink.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      if (::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        ::close(probe);
        throw GroverError(cat("cannot bind unix socket ", config_.unixPath,
                              ": a daemon is already serving on it"));
      }
      const int probeErrno = errno;
      ::close(probe);
      if (probeErrno == ECONNREFUSED) {
        ::unlink(config_.unixPath.c_str());  // stale file, safe to reclaim
      }
      // ENOENT: nothing there. Anything else: leave the path alone and
      // let bind() report the truth.
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw GroverError(cat("socket(AF_UNIX): ", std::strerror(errno)));
    }
    shards_[0]->unixListenFd = fd;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw GroverError(cat("cannot bind unix socket ", config_.unixPath,
                            ": ", std::strerror(errno)));
    }
    unix_bound_ = true;
    if (::listen(fd, 64) != 0) {
      throw GroverError(cat("listen(unix): ", std::strerror(errno)));
    }
    setNonBlocking(fd);
  }
  if (shards_[0]->tcpListenFd < 0 && shards_[0]->unixListenFd < 0) {
    throw GroverError("no listener configured (host=none and no --socket)");
  }
}

void Server::requestStop() noexcept {
  stop_requested_.store(true, std::memory_order_relaxed);
  // Async-signal-safe; the pipes are non-blocking, and a full pipe
  // already guarantees a pending wakeup.
  for (const auto& shard : shards_) shard->wake();
}

bool Server::tryAdmit(bool firstOutstanding) {
  const std::size_t cap = config_.maxAdmitted;
  const std::size_t reserve =
      cap > 0 ? std::min(config_.admitReserve, cap - 1) : 0;
  const std::size_t limit = firstOutstanding ? cap : cap - reserve;
  std::size_t cur = admitted_.load(std::memory_order_relaxed);
  while (cur < limit) {
    if (admitted_.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

ServerStats Server::stats() const {
  // One atomic read per counter per shard; the totals are sums of those
  // same reads, so the per-shard breakdown aggregates exactly to the
  // totals in every snapshot.
  ServerStats total;
  total.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ServerStats s;
    s.connectionsAccepted = shard->accepted.load();
    s.connectionsClosed = shard->closed.load();
    s.framesReceived = shard->frames.load();
    s.requestsAdmitted = shard->admittedTotal.load();
    s.responsesSent = shard->responses.load();
    s.rejectedOverload = shard->overloaded.load();
    s.rejectedClientCredit = shard->creditRejected.load();
    s.rejectedShutdown = shard->shutdownRejected.load();
    s.protocolErrors = shard->protocolErrors.load();
    s.disconnectedMidRequest = shard->disconnected.load();
    s.idleTimeouts = shard->idleTimeouts.load();
    s.readBudgetExhausted = shard->readBudgetExhausted.load();
    s.acceptsShed = shard->acceptsShed.load();
    total.connectionsAccepted += s.connectionsAccepted;
    total.connectionsClosed += s.connectionsClosed;
    total.framesReceived += s.framesReceived;
    total.requestsAdmitted += s.requestsAdmitted;
    total.responsesSent += s.responsesSent;
    total.rejectedOverload += s.rejectedOverload;
    total.rejectedClientCredit += s.rejectedClientCredit;
    total.rejectedShutdown += s.rejectedShutdown;
    total.protocolErrors += s.protocolErrors;
    total.disconnectedMidRequest += s.disconnectedMidRequest;
    total.idleTimeouts += s.idleTimeouts;
    total.readBudgetExhausted += s.readBudgetExhausted;
    total.acceptsShed += s.acceptsShed;
    total.shards.push_back(std::move(s));
  }
  return total;
}

std::uint64_t Server::openConnections() const {
  std::uint64_t open = 0;
  for (const auto& shard : shards_) open += shard->openConnections.load();
  return open;
}

StatsFrame Server::statsFrame() const {
  StatsFrame f;
  f.uptimeMs = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            started_at_)
          .count());
  f.admittedNow = admitted_.load();
  f.connectionsOpen = openConnections();
  const ServerStats s = stats();
  f.totals = toCounters(s);
  f.shards.reserve(s.shards.size());
  for (const ServerStats& shard : s.shards) {
    f.shards.push_back(toCounters(shard));
  }
  const service::ServiceStats svc = service_.stats();
  f.cancelled = svc.cancelled;
  f.measurements = svc.measurements;
  f.measurementsDropped = svc.measurementsDropped;
  f.measureQueueBacklog = svc.measureQueueBacklog;
  f.proofsRun = svc.proofsRun;
  f.proofsRefuted = svc.proofsRefuted;
  return f;
}

void Server::log(const std::string& message) {
  if (log_stream_ != nullptr) {
    std::lock_guard lock(log_mutex_);
    *log_stream_ << "groverd: " << message << "\n" << std::flush;
  }
}

void Server::routeAccepted(int fd, Shard& acceptor) {
  // Least-loaded shard, rotating on ties so equal-load picks spread
  // round-robin. Only shard 0's loop thread routes, so next_handoff_
  // needs no lock; loads are atomics because shards decrement them.
  Shard* target = &acceptor;
  if (shards_.size() > 1) {
    std::size_t bestLoad = std::numeric_limits<std::size_t>::max();
    std::size_t best = 0;
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      const std::size_t i = (next_handoff_ + k) % shards_.size();
      const std::size_t load = shards_[i]->openConnections.load();
      if (load < bestLoad) {
        bestLoad = load;
        best = i;
      }
    }
    next_handoff_ = (best + 1) % shards_.size();
    target = shards_[best].get();
  }
  // Count the connection against the target NOW, not when it adopts:
  // several accepts in one tick must not all see the same stale load.
  target->openConnections.fetch_add(1, std::memory_order_relaxed);
  if (target == &acceptor) {
    acceptor.adoptFd(fd);
    return;
  }
  {
    std::lock_guard lock(target->handoffMutex);
    target->handoffFds.push_back(fd);
  }
  target->wake();
}

void Server::run() {
  std::vector<std::thread> threads;
  threads.reserve(shards_.size() > 0 ? shards_.size() - 1 : 0);
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    threads.emplace_back([shard = shards_[i].get()] { shard->run(); });
  }
  shards_[0]->run();
  for (std::thread& t : threads) t.join();
  log("drained, event loop exiting");
}

void Server::Shard::run() {
  Clock::time_point drainDeadline{};
  const ServerConfig& config = server.config_;
  for (;;) {
    if (server.stop_requested_.load(std::memory_order_relaxed) &&
        !draining) {
      draining = true;
      drainDeadline = Clock::now() +
                      std::chrono::milliseconds(
                          std::max(config.drainTimeoutMs, 0));
      closeFd(tcpListenFd);
      closeFd(unixListenFd);
      drainHandoff();  // adoptFd sheds queued fds once draining
      server.log(cat("shard ", index, " draining: ",
                     server.admitted_.load(), " request(s) in flight, ",
                     connections.size(), " connection(s) open"));
    }

    if (draining) {
      // Close everything that has nothing left to say. In-flight
      // requests keep their connection until the response is flushed.
      for (std::size_t i = connections.size(); i-- > 0;) {
        Connection& c = *connections[i];
        if (c.inflight == 0 && !c.wantsWrite()) {
          closeConnection(c.connId);
        }
      }
      // The admission count is global: a shard may only exit once no
      // request is in flight anywhere, because completions for its
      // connections drain through its own queue.
      const bool timedOut =
          Clock::now() >= drainDeadline && config.drainTimeoutMs >= 0;
      if (server.admitted_.load() == 0 &&
          (connections.empty() || timedOut)) {
        if (!connections.empty()) {
          server.log(cat("shard ", index, " drain timeout: force-closing ",
                         connections.size(), " connection(s)"));
          while (!connections.empty()) {
            closeConnection(connections.back()->connId);
          }
        }
        break;
      }
    }

    // Build the poll set: listeners, wakeup pipe, connections. While
    // backing off from an fd-exhausted accept(), leave the listeners
    // out so a backlog we cannot serve does not spin the loop.
    std::vector<pollfd> fds;
    fds.push_back({wakeReadFd, POLLIN, 0});
    const Clock::time_point pollNow = Clock::now();
    const bool acceptBackoff = pollNow < acceptBackoffUntil;
    if (!acceptBackoff) {
      if (tcpListenFd >= 0) fds.push_back({tcpListenFd, POLLIN, 0});
      if (unixListenFd >= 0) fds.push_back({unixListenFd, POLLIN, 0});
    }
    const std::size_t firstConn = fds.size();
    // connId snapshot per connection pollfd: a handler can close a
    // connection and accept() can reuse its fd within this same round,
    // so an fd match alone does not prove the event's target is alive.
    std::vector<std::uint64_t> pollIds;
    pollIds.reserve(connections.size());
    for (const auto& conn : connections) {
      short events = 0;
      // A poisoned connection only flushes its Error frame; a
      // half-closed one has nothing further to read.
      if (!conn->closeAfterFlush && !conn->readClosed) events |= POLLIN;
      if (conn->wantsWrite()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
      pollIds.push_back(conn->connId);
    }

    int timeoutMs = -1;
    if (config.idleTimeoutMs > 0 && !connections.empty()) {
      timeoutMs = config.idleTimeoutMs;
      const Clock::time_point now = Clock::now();
      for (const auto& conn : connections) {
        // In-flight work pins the connection: it is waiting on us, not
        // idle, however long the compile takes.
        if (conn->inflight > 0) continue;
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - conn->lastActivity)
                .count();
        timeoutMs = std::min<int>(
            timeoutMs,
            std::max<int>(0, config.idleTimeoutMs -
                                 static_cast<int>(elapsed)));
      }
    }
    if (draining) timeoutMs = timeoutMs < 0 ? 100 : std::min(timeoutMs, 100);
    if (acceptBackoff) {
      // Wake when the backoff expires so the listeners re-arm.
      const auto remain =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              acceptBackoffUntil - pollNow)
              .count() +
          1;
      const int cap = static_cast<int>(
          std::min<long long>(remain, std::numeric_limits<int>::max()));
      timeoutMs = timeoutMs < 0 ? cap : std::min(timeoutMs, cap);
    }

    const int ready = ::poll(fds.data(), fds.size(), timeoutMs);
    if (ready < 0 && errno != EINTR) {
      server.log(cat("shard ", index,
                     " poll failed: ", std::strerror(errno)));
      break;
    }

    // Wakeup pipe: drain it, then the handoff and completion queues.
    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wakeReadFd, buf, sizeof(buf)) > 0) {
      }
    }
    drainHandoff();
    drainCompletions();

    for (std::size_t i = 1; i < firstConn; ++i) {
      if (fds[i].revents & POLLIN) acceptPending(fds[i].fd);
    }

    for (std::size_t i = firstConn; i < fds.size(); ++i) {
      const pollfd& p = fds[i];
      if (p.revents == 0) continue;
      const auto it = connByFd.find(p.fd);
      // Closed this round (and the fd possibly reused by accept):
      // the id snapshot taken at poll-set build time is the proof.
      if (it == connByFd.end() ||
          it->second->connId != pollIds[i - firstConn]) {
        continue;
      }
      Connection& conn = *it->second;
      const std::uint64_t connId = conn.connId;
      if (conn.readClosed) {
        // Half-closed peers only signal full departure (or error) now.
        if (p.revents & (POLLHUP | POLLERR)) {
          closeConnection(connId);
          continue;
        }
      } else if (p.revents & (POLLIN | POLLHUP | POLLERR)) {
        handleReadable(conn);
      }
      // handleReadable may have closed it; re-find before writing.
      const auto again = connById.find(connId);
      if (again == connById.end()) continue;
      if (again->second->wantsWrite()) flushWrites(*again->second);
      // flushWrites may have closed it too (EPIPE, closeAfterFlush).
      const auto fin = connById.find(connId);
      if (fin != connById.end()) maybeCloseDrained(*fin->second);
    }

    // Idle sweep.
    if (config.idleTimeoutMs > 0) {
      const Clock::time_point now = Clock::now();
      for (std::size_t i = connections.size(); i-- > 0;) {
        Connection& c = *connections[i];
        if (c.inflight > 0 || c.wantsWrite()) continue;
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - c.lastActivity)
                .count();
        if (elapsed >= config.idleTimeoutMs) {
          ++idleTimeouts;
          closeConnection(c.connId);
        }
      }
    }
  }
}

void Server::Shard::adoptFd(int fd) {
  // The router already counted this fd against openConnections.
  if (draining) {
    ::close(fd);
    openConnections.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  setNonBlocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto conn = std::make_unique<Connection>(server.config_.maxPayload);
  conn->fd = fd;
  conn->connId =
      server.next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  conn->cancel = service::makeCancelToken();
  conn->slot = connections.size();
  Connection* raw = conn.get();
  connections.push_back(std::move(conn));
  connById.emplace(raw->connId, raw);
  connByFd.emplace(fd, raw);
  ++accepted;
}

void Server::Shard::drainHandoff() {
  std::vector<int> fds;
  {
    std::lock_guard lock(handoffMutex);
    fds.swap(handoffFds);
  }
  for (const int fd : fds) adoptFd(fd);
}

void Server::Shard::acceptPending(int listenFd) {
  // Shard 0's listeners route across shards when there is more than one
  // and the kernel is not already balancing via SO_REUSEPORT (the unix
  // listener always routes). A shard's own SO_REUSEPORT listener adopts
  // locally — the kernel picked this shard.
  const bool route =
      listenFd == unixListenFd || (server.tcp_handoff_ && index == 0);
  for (;;) {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors. Give the reserve fd back to the kernel,
        // accept the pending connection so it leaves the backlog, shed
        // it (the peer sees a clean close instead of hanging), then
        // re-arm the reserve — and back the listeners off so the loop
        // does not spin on a backlog it cannot serve.
        if (reserveFd >= 0) {
          closeFd(reserveFd);
          const int victim = ::accept(listenFd, nullptr, nullptr);
          if (victim >= 0) {
            ::close(victim);
            ++acceptsShed;
          }
          reserveFd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
        }
        acceptBackoffUntil =
            Clock::now() +
            std::chrono::milliseconds(
                std::max(server.config_.acceptBackoffMs, 0));
        if (acceptErrnoLogged != errno) {
          acceptErrnoLogged = errno;
          server.log(cat("accept: ", std::strerror(errno),
                         "; shedding and backing off ",
                         server.config_.acceptBackoffMs, " ms"));
        }
        return;
      }
      // Non-transient failure: log once per distinct errno, not per
      // poll round.
      if (acceptErrnoLogged != errno) {
        acceptErrnoLogged = errno;
        server.log(cat("accept failed: ", std::strerror(errno)));
      }
      return;
    }
    acceptErrnoLogged = 0;
    if (route) {
      server.routeAccepted(fd, *this);
    } else {
      openConnections.fetch_add(1, std::memory_order_relaxed);
      adoptFd(fd);
    }
  }
}

void Server::Shard::handleReadable(Connection& conn) {
  if (conn.closeAfterFlush || conn.readClosed) return;
  char buf[16384];
  std::size_t readThisTick = 0;
  const std::size_t readBudget = server.config_.readBudgetBytes;
  for (;;) {
    std::size_t want = sizeof(buf);
    if (readBudget > 0) {
      if (readThisTick >= readBudget) {
        // Fairness: leave the rest in the kernel buffer and yield to
        // the other connections; the socket stays readable, so the
        // next poll round returns immediately to continue here.
        ++readBudgetExhausted;
        break;
      }
      want = std::min(want, readBudget - readThisTick);
    }
    const ssize_t n = ::recv(conn.fd, buf, want, 0);
    if (n > 0) {
      conn.lastActivity = Clock::now();
      readThisTick += static_cast<std::size_t>(n);
      conn.reader.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      // Half-close (shutdown(SHUT_WR)): the peer finished sending but
      // may still be reading. Whole frames already buffered must be
      // served and their responses flushed before the close — falling
      // through to the frame loop below does exactly that.
      conn.readClosed = true;
      break;
    }
    // Hard error: the peer is gone in both directions. In-flight
    // requests finish in the service; their completions are dropped.
    closeConnection(conn.connId);
    return;
  }

  for (;;) {
    Frame frame;
    const FrameReader::Result r = conn.reader.next(frame);
    if (r == FrameReader::Result::NeedMore) break;
    if (r == FrameReader::Result::Error) {
      ++protocolErrors;
      server.log(cat("protocol error on connection #", conn.connId, ": ",
                     conn.reader.error()));
      respond(conn, FrameType::Error, 0, Status::Malformed,
              conn.reader.error());
      conn.closeAfterFlush = true;
      flushWrites(conn);
      return;
    }
    ++frames;
    handleFrame(conn, std::move(frame));
    if (conn.closeAfterFlush) {
      flushWrites(conn);
      return;
    }
  }
}

void Server::Shard::handleFrame(Connection& conn, Frame frame) {
  switch (frame.type) {
    case FrameType::Request:
    case FrameType::AutoRequest:
      if (draining) {
        ++shutdownRejected;
        respond(conn, FrameType::Response, frame.id, Status::ShuttingDown,
                "error: daemon is shutting down");
        return;
      }
      // Per-connection credits first: a pipeliner past its own
      // allowance is rejected even while the global queue has room, so
      // one greedy client cannot starve the rest.
      if (server.config_.clientCredits > 0 &&
          conn.inflight >= server.config_.clientCredits) {
        ++overloaded;
        ++creditRejected;
        respond(conn, FrameType::Response, frame.id, Status::Overloaded,
                cat("error: per-connection credit limit (",
                    server.config_.clientCredits,
                    " in flight); retry later"));
        return;
      }
      // Global bound, shared across shards through one atomic, with the
      // last admitReserve slots held back for a connection's FIRST
      // outstanding request: even when pipeliners collectively fill the
      // queue, a polite serial client still admits.
      if (!server.tryAdmit(conn.inflight == 0)) {
        ++overloaded;
        respond(conn, FrameType::Response, frame.id, Status::Overloaded,
                cat("error: admission queue full (",
                    server.config_.maxAdmitted, " in flight); retry later"));
        return;
      }
      ++admittedTotal;
      ++conn.inflight;
      // Admission is activity: the idle clock must not tick against a
      // connection while its request crawls through a cold compile.
      conn.lastActivity = Clock::now();
      dispatchRequest(conn, frame.type, frame.id, std::move(frame.payload));
      return;
    case FrameType::Stats:
      respond(conn, FrameType::StatsResponse, frame.id, Status::Ok,
              server.renderStatsPayload());
      return;
    case FrameType::StatsBinary:
      respond(conn, FrameType::StatsBinaryResponse, frame.id, Status::Ok,
              encodeStatsFrame(server.statsFrame()));
      return;
    case FrameType::Response:
    case FrameType::StatsResponse:
    case FrameType::StatsBinaryResponse:
    case FrameType::Error: {
      ++protocolErrors;
      const std::string reason =
          cat("unexpected frame type ",
              static_cast<std::uint16_t>(frame.type), " from client");
      server.log(cat("protocol error on connection #", conn.connId, ": ",
                     reason));
      respond(conn, FrameType::Error, frame.id, Status::Malformed, reason);
      conn.closeAfterFlush = true;
      return;
    }
  }
}

void Server::Shard::dispatchRequest(Connection& conn, FrameType type,
                                    std::uint64_t id, std::string payload) {
  const std::uint64_t connId = conn.connId;
  server.workers_.submit([this, connId, id, type, cancel = conn.cancel,
                          payload = std::move(payload)]() mutable {
    Completion c;
    c.connId = connId;
    c.requestId = id;
    BatchEntry entry = parseRequestLine(payload);
    if (entry.text.empty()) {
      c.status = Status::RequestFailed;
      c.text = "error: empty request";
    } else if (!entry.valid) {
      c.status = Status::RequestFailed;
      c.text = "error: " + entry.error;
    } else {
      // The daemon's --prove policy applies to every request; the
      // grammar has no per-line way to opt out of safety.
      entry.request.options.prove |= server.config_.prove;
      try {
        // Status::Ok means "the request was served" — a negative
        // artifact ("failed: <diagnostic>") is a served verdict, same
        // as local serve-batch, and must not fail the client's batch.
        if (type == FrameType::AutoRequest) {
          const service::AutoResult r =
              server.service_.compileAuto(entry.request, cancel);
          c.status = Status::Ok;
          c.text = renderAutoResultLine(r);
        } else {
          const service::ArtifactPtr a =
              server.service_.run(entry.request, cancel);
          c.status = Status::Ok;
          c.text = renderResultLine(*a);
        }
      } catch (const std::exception& e) {
        c.status = Status::RequestFailed;
        c.text = std::string("error: ") + e.what();
      }
    }
    {
      std::lock_guard lock(completionMutex);
      completions.push_back(std::move(c));
    }
    wake();
  });
}

void Server::Shard::drainCompletions() {
  std::vector<Completion> done;
  {
    std::lock_guard lock(completionMutex);
    done.swap(completions);
  }
  for (Completion& c : done) {
    server.admitted_.fetch_sub(1, std::memory_order_relaxed);
    const auto it = connById.find(c.connId);
    if (it == connById.end()) {
      // Client disconnected mid-request: the work finished in the
      // service (or was abandoned at a stage boundary, if every waiter
      // was gone); only the reply has nowhere to go.
      ++disconnected;
      continue;
    }
    Connection& conn = *it->second;
    if (conn.inflight > 0) --conn.inflight;
    // respond() bumps lastActivity: completion is activity too, so a
    // client pacing itself by our responses is not "idle".
    respond(conn, FrameType::Response, c.requestId, c.status, c.text);
    flushWrites(conn);
    // flushWrites may have closed the connection; if it survived and
    // its peer half-closed, this response may have been its last duty.
    const auto again = connById.find(c.connId);
    if (again != connById.end()) maybeCloseDrained(*again->second);
  }
}

void Server::Shard::respond(Connection& conn, FrameType type,
                            std::uint64_t id, Status status,
                            std::string_view text) {
  appendStatusFrame(conn.writeBuf, type, id, status, text);
  ++responses;
  conn.lastActivity = Clock::now();
}

void Server::Shard::flushWrites(Connection& conn) {
  while (conn.wantsWrite()) {
    const ssize_t n =
        ::send(conn.fd, conn.writeBuf.data() + conn.writeOff,
               conn.writeBuf.size() - conn.writeOff, MSG_NOSIGNAL);
    if (n > 0) {
      conn.writeOff += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    closeConnection(conn.connId);  // EPIPE/ECONNRESET: peer is gone
    return;
  }
  if (conn.writeOff == conn.writeBuf.size()) {
    conn.writeBuf.clear();
    conn.writeOff = 0;
    if (conn.closeAfterFlush) closeConnection(conn.connId);
  }
}

void Server::Shard::maybeCloseDrained(Connection& conn) {
  if (conn.readClosed && conn.inflight == 0 && !conn.wantsWrite()) {
    closeConnection(conn.connId);
  }
}

void Server::Shard::closeConnection(std::uint64_t connId) {
  const auto it = connById.find(connId);
  if (it == connById.end()) return;
  Connection* conn = it->second;
  // Tell in-flight service work this waiter is gone; cold stages poll
  // the token and abandon the compile once EVERY waiter has cancelled.
  if (conn->cancel != nullptr) {
    conn->cancel->store(true, std::memory_order_relaxed);
  }
  connByFd.erase(conn->fd);
  connById.erase(it);
  closeFd(conn->fd);
  // Swap-pop keeps close O(1); slot indices track the move.
  const std::size_t slot = conn->slot;
  if (slot + 1 != connections.size()) {
    std::swap(connections[slot], connections.back());
    connections[slot]->slot = slot;
  }
  connections.pop_back();
  openConnections.fetch_sub(1, std::memory_order_relaxed);
  ++closed;
}

std::string Server::renderStatsPayload() {
  StatsRenderOptions opts;
  opts.policy = true;
  opts.measure = true;
  opts.prove = config_.prove;
  std::string text = renderStats(service_.stats(), opts);
  const ServerStats s = stats();
  text += renderServerLine(toCounters(s), openConnections());
  // The shard breakdown only appears when there is one: the single-loop
  // server renders exactly what it always did.
  if (shards_.size() > 1) {
    for (std::size_t i = 0; i < s.shards.size(); ++i) {
      text += renderShardLine(i, toCounters(s.shards[i]));
    }
  }
  return text;
}

}  // namespace grover::net
