#include "net/render.h"

#include <sstream>

#include "support/str.h"
#include "sym/report.h"

namespace grover::net {

std::string renderResultLine(const service::Artifact& a) {
  if (!a.ok) {
    return "failed: " + a.diagnostics.substr(0, a.diagnostics.find('\n'));
  }
  std::size_t transformed = 0;
  for (const auto& b : a.report.buffers) {
    if (b.transformed) ++transformed;
  }
  std::ostringstream os;
  os << "ok, " << transformed << "/" << a.report.buffers.size()
     << " buffers transformed";
  if (a.hasEstimate) {
    os << ", np " << fixed(a.normalized, 3) << " ("
       << perf::toString(a.outcome) << ")";
  }
  if (a.proofVetoed) {
    os << ", transform vetoed: " << a.proofNote;
  } else if (a.proofTransformed != sym::ProofStatus::Unchecked) {
    os << ", proof " << sym::toString(a.proofTransformed);
    if (a.proofOriginal == sym::ProofStatus::Refuted) {
      os << " (original already racy)";
    }
  }
  return os.str();
}

std::string renderAutoResultLine(const service::AutoResult& r) {
  if (r.artifact == nullptr) return "not served";
  if (!r.artifact->ok || !r.eligible) return renderResultLine(*r.artifact);
  std::ostringstream os;
  os << "ok, serving " << policy::toString(r.decision.variant) << " ("
     << (r.policyHit ? "policy hit" : "cold decision") << ", predicted np "
     << fixed(r.decision.predictedNp, 3) << ", "
     << perf::toString(r.decision.predictedOutcome);
  if (r.decision.proof != sym::ProofStatus::Unchecked) {
    os << ", proof " << sym::toString(r.decision.proof);
    if (r.decision.source == "proof") os << " veto";
  }
  os << ")";
  if (r.measured) {
    os << ", measured np " << fixed(r.measurement.measuredNp, 3) << " ("
       << (r.measurement.usedNative ? "native" : "interpreter") << ")";
  }
  return os.str();
}

std::string renderStats(const service::ServiceStats& s,
                        const StatsRenderOptions& options) {
  std::ostringstream os;
  os << "cache: " << s.memoryHits << " memory hits (" << s.negativeHits
     << " negative), " << s.coalesced << " coalesced, " << s.misses
     << " misses, " << s.diskHits << " disk hits, " << s.compiles
     << " compiles, " << s.evictions << " evictions, "
     << s.diskLoadFailures << " disk load failures, " << s.cancelled
     << " cancelled\n";
  os << "cache bytes: " << s.bytesInUse << " in " << s.entries
     << " entries\n";
  // Per-stage wall-time breakdown of everything the service did: parse,
  // transform, validate, estimate-or-execute, cache.
  os << "stages: frontend " << fixed(s.frontendMs, 1) << " ms, grover "
     << fixed(s.groverMs, 1) << " ms, validate " << fixed(s.validateMs, 1)
     << " ms, print " << fixed(s.printMs, 1) << " ms, estimate "
     << fixed(s.estimateMs, 1) << " ms, execute " << fixed(s.executeMs, 1)
     << " ms, cache " << fixed(s.cacheMs, 1) << " ms\n";
  if (options.policy) {
    os << "policy: " << s.policyHits << " hits, " << s.policyMisses
       << " misses, " << s.policyStores << " decisions stored, "
       << s.policyFlips << " flips, " << s.policyMismatches
       << " mismatches\n";
    if (options.measure) {
      os << "measure: " << s.measurements << " measured ("
         << s.nativeMeasurements << " native), " << s.policyRefreshes
         << " decision refreshes, " << s.measurementsDropped
         << " dropped, " << s.staleRemeasures << " stale re-measures\n";
    }
  }
  if (options.prove) {
    os << "prove: " << s.proofsRun << " proofs (" << s.proofsProved
       << " proved, " << s.proofsRefuted << " refuted, " << s.proofsUnknown
       << " unknown), " << s.proofVetoes << " vetoes, "
       << fixed(s.proveMs, 1) << " ms\n";
  }
  return os.str();
}

std::string renderServerLine(const StatsCounters& c,
                             std::uint64_t connectionsOpen) {
  return cat("server: ", c.connectionsAccepted, " connections (",
             connectionsOpen, " open, ", c.acceptsShed, " shed), ",
             c.framesReceived, " frames, ", c.requestsAdmitted,
             " admitted, ", c.responsesSent, " responses, ",
             c.rejectedOverload, " overload-rejected (",
             c.rejectedClientCredit, " credit), ", c.protocolErrors,
             " protocol errors, ", c.disconnectedMidRequest,
             " disconnected mid-request, ", c.idleTimeouts,
             " idle timeouts, ", c.readBudgetExhausted,
             " read-budget yields\n");
}

std::string renderShardLine(std::size_t index, const StatsCounters& c) {
  return cat("shard ", index, ": ", c.connectionsAccepted,
             " connections, ", c.framesReceived, " frames, ",
             c.requestsAdmitted, " admitted, ", c.responsesSent,
             " responses, ", c.rejectedOverload, " overload-rejected, ",
             c.idleTimeouts, " idle timeouts\n");
}

std::string renderStatsFrame(const StatsFrame& f) {
  std::string out = cat(
      "daemon: up ", fixed(static_cast<double>(f.uptimeMs) / 1000.0, 1),
      " s, ", f.shards.size(), " shard(s), ", f.admittedNow,
      " admitted now, ", f.connectionsOpen, " connection(s) open\n");
  out += renderServerLine(f.totals, f.connectionsOpen);
  if (f.shards.size() > 1) {
    for (std::size_t i = 0; i < f.shards.size(); ++i) {
      out += renderShardLine(i, f.shards[i]);
    }
  }
  out += cat("service: ", f.cancelled, " cancelled, ", f.measurements,
             " measurements (", f.measurementsDropped, " dropped, backlog ",
             f.measureQueueBacklog, "), ", f.proofsRun, " proofs (",
             f.proofsRefuted, " refuted)\n");
  return out;
}

namespace {

void appendCountersJson(std::string& out, const StatsCounters& c) {
  out += cat("{\"connections_accepted\":", c.connectionsAccepted,
             ",\"connections_closed\":", c.connectionsClosed,
             ",\"frames_received\":", c.framesReceived,
             ",\"requests_admitted\":", c.requestsAdmitted,
             ",\"responses_sent\":", c.responsesSent,
             ",\"rejected_overload\":", c.rejectedOverload,
             ",\"rejected_client_credit\":", c.rejectedClientCredit,
             ",\"rejected_shutdown\":", c.rejectedShutdown,
             ",\"protocol_errors\":", c.protocolErrors,
             ",\"disconnected_mid_request\":", c.disconnectedMidRequest,
             ",\"idle_timeouts\":", c.idleTimeouts,
             ",\"read_budget_exhausted\":", c.readBudgetExhausted,
             ",\"accepts_shed\":", c.acceptsShed, "}");
}

}  // namespace

std::string renderStatsFrameJson(const StatsFrame& f) {
  std::string out = cat("{\"version\":", f.version,
                        ",\"uptime_ms\":", f.uptimeMs,
                        ",\"shards\":", f.shards.size(),
                        ",\"admitted_now\":", f.admittedNow,
                        ",\"connections_open\":", f.connectionsOpen,
                        ",\"cancelled\":", f.cancelled,
                        ",\"measurements\":", f.measurements,
                        ",\"measurements_dropped\":", f.measurementsDropped,
                        ",\"measure_queue_backlog\":", f.measureQueueBacklog,
                        ",\"proofs_run\":", f.proofsRun,
                        ",\"proofs_refuted\":", f.proofsRefuted,
                        ",\"totals\":");
  appendCountersJson(out, f.totals);
  out += ",\"per_shard\":[";
  for (std::size_t i = 0; i < f.shards.size(); ++i) {
    if (i > 0) out += ',';
    appendCountersJson(out, f.shards[i]);
  }
  out += "]}\n";
  return out;
}

std::string renderHealthLine(const StatsFrame& f) {
  return cat("health: up ",
             fixed(static_cast<double>(f.uptimeMs) / 1000.0, 1), " s, ",
             f.shards.size(), " shard(s), ", f.admittedNow, " admitted, ",
             f.connectionsOpen, " open (", f.totals.connectionsAccepted,
             " accepted, ", f.totals.acceptsShed, " shed), ",
             f.totals.responsesSent, " responses, ",
             f.totals.rejectedOverload, " overload-rejected, ",
             f.cancelled, " cancelled, ", f.measurements,
             " measured (backlog ", f.measureQueueBacklog, "), ",
             f.proofsRun, " proofs (", f.proofsRefuted, " refuted)");
}

}  // namespace grover::net
