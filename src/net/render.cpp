#include "net/render.h"

#include <sstream>

#include "support/str.h"

namespace grover::net {

std::string renderResultLine(const service::Artifact& a) {
  if (!a.ok) {
    return "failed: " + a.diagnostics.substr(0, a.diagnostics.find('\n'));
  }
  std::size_t transformed = 0;
  for (const auto& b : a.report.buffers) {
    if (b.transformed) ++transformed;
  }
  std::ostringstream os;
  os << "ok, " << transformed << "/" << a.report.buffers.size()
     << " buffers transformed";
  if (a.hasEstimate) {
    os << ", np " << fixed(a.normalized, 3) << " ("
       << perf::toString(a.outcome) << ")";
  }
  return os.str();
}

std::string renderAutoResultLine(const service::AutoResult& r) {
  if (r.artifact == nullptr) return "not served";
  if (!r.artifact->ok || !r.eligible) return renderResultLine(*r.artifact);
  std::ostringstream os;
  os << "ok, serving " << policy::toString(r.decision.variant) << " ("
     << (r.policyHit ? "policy hit" : "cold decision") << ", predicted np "
     << fixed(r.decision.predictedNp, 3) << ", "
     << perf::toString(r.decision.predictedOutcome) << ")";
  if (r.measured) {
    os << ", measured np " << fixed(r.measurement.measuredNp, 3) << " ("
       << (r.measurement.usedNative ? "native" : "interpreter") << ")";
  }
  return os.str();
}

std::string renderStats(const service::ServiceStats& s,
                        const StatsRenderOptions& options) {
  std::ostringstream os;
  os << "cache: " << s.memoryHits << " memory hits (" << s.negativeHits
     << " negative), " << s.coalesced << " coalesced, " << s.misses
     << " misses, " << s.diskHits << " disk hits, " << s.compiles
     << " compiles, " << s.evictions << " evictions, "
     << s.diskLoadFailures << " disk load failures, " << s.cancelled
     << " cancelled\n";
  os << "cache bytes: " << s.bytesInUse << " in " << s.entries
     << " entries\n";
  // Per-stage wall-time breakdown of everything the service did: parse,
  // transform, validate, estimate-or-execute, cache.
  os << "stages: frontend " << fixed(s.frontendMs, 1) << " ms, grover "
     << fixed(s.groverMs, 1) << " ms, validate " << fixed(s.validateMs, 1)
     << " ms, print " << fixed(s.printMs, 1) << " ms, estimate "
     << fixed(s.estimateMs, 1) << " ms, execute " << fixed(s.executeMs, 1)
     << " ms, cache " << fixed(s.cacheMs, 1) << " ms\n";
  if (options.policy) {
    os << "policy: " << s.policyHits << " hits, " << s.policyMisses
       << " misses, " << s.policyStores << " decisions stored, "
       << s.policyFlips << " flips, " << s.policyMismatches
       << " mismatches\n";
    if (options.measure) {
      os << "measure: " << s.measurements << " measured ("
         << s.nativeMeasurements << " native), " << s.policyRefreshes
         << " decision refreshes, " << s.measurementsDropped
         << " dropped\n";
    }
  }
  return os.str();
}

}  // namespace grover::net
