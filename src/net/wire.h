// Wire protocol of the groverd serving daemon (DESIGN.md §12).
//
// The request *payload* is the existing --serve-batch grammar — one
// request per frame, exactly the text that would be one line of a batch
// file — wrapped in a small versioned binary header so the framing can
// evolve independently of the grammar:
//
//   offset  size  field
//        0     4  magic      0x47 0x52 0x4F 0x56  ("GROV")
//        4     2  version    protocol version, little-endian (currently 1)
//        6     2  type       FrameType, little-endian
//        8     8  id         request id, little-endian; responses echo it,
//                            so pipelined requests may complete out of
//                            order
//       16     4  size       payload byte count, little-endian
//       20     …  payload
//
// Response and error payloads start with one Status byte followed by
// UTF-8 text (a verdict line, a stats block, or an error message).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace grover::net {

inline constexpr unsigned char kMagic[4] = {'G', 'R', 'O', 'V'};
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 20;
/// Hard per-frame payload bound: a request line or a rendered result is
/// a few hundred bytes; anything near this is a corrupt or hostile
/// frame, and the decoder refuses it instead of buffering unboundedly.
inline constexpr std::uint32_t kMaxPayload = 1u << 20;

enum class FrameType : std::uint16_t {
  /// Client → daemon: one serve-batch grammar line, plain submit path
  /// (both variants compiled, estimate when a platform is named).
  Request = 1,
  /// Client → daemon: one serve-batch grammar line routed through the
  /// policy engine (CompileService::compileAuto, groverc --auto).
  AutoRequest = 2,
  /// Daemon → client: Status byte + the per-request verdict text.
  Response = 3,
  /// Client → daemon: snapshot the service + server counters.
  Stats = 4,
  /// Daemon → client: Status byte + rendered stats block.
  StatsResponse = 5,
  /// Daemon → client: Status byte + reason. Sent for protocol
  /// violations; the daemon closes the connection after flushing it.
  Error = 6,
};

enum class Status : std::uint8_t {
  Ok = 0,
  /// The request was understood but could not be served (malformed
  /// grammar line, unknown app/platform, source failed to compile).
  /// Request-scoped: the connection stays usable.
  RequestFailed = 1,
  /// The admission queue is full; retry later. Request-scoped.
  Overloaded = 2,
  /// Protocol violation (bad magic/version/oversized frame, unexpected
  /// frame type). Connection-scoped: the daemon closes after sending.
  Malformed = 3,
  /// The daemon is draining; no new requests are admitted.
  ShuttingDown = 4,
};

[[nodiscard]] const char* toString(Status status);

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::Request;
  std::uint64_t id = 0;
  std::string payload;
};

/// Append the binary encoding of one frame to `out`.
void appendFrame(std::string& out, FrameType type, std::uint64_t id,
                 std::string_view payload);

/// Convenience for Response/StatsResponse/Error frames: payload is the
/// Status byte followed by `text`.
void appendStatusFrame(std::string& out, FrameType type, std::uint64_t id,
                       Status status, std::string_view text);

/// Split a status-carrying payload back into (status, text). Returns
/// false for an empty payload or an out-of-range status byte.
bool splitStatusPayload(std::string_view payload, Status& status,
                        std::string_view& text);

/// Incremental frame decoder: feed bytes as they arrive, pull complete
/// frames out. Both the daemon's per-connection read path and the
/// client use it.
class FrameReader {
 public:
  explicit FrameReader(std::size_t maxPayload = kMaxPayload)
      : max_payload_(maxPayload) {}

  /// Buffer incoming bytes.
  void append(const char* data, std::size_t size);

  enum class Result {
    NeedMore,  ///< no complete frame buffered yet
    Frame,     ///< `out` holds the next frame
    Error,     ///< protocol violation; error() explains. The reader is
               ///< poisoned: every later next() also returns Error.
  };

  /// Decode the next complete frame, if any.
  Result next(Frame& out);

  [[nodiscard]] const std::string& error() const { return error_; }
  /// Bytes currently buffered (for idle/overload accounting).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::size_t max_payload_;
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  std::string error_;
};

}  // namespace grover::net
