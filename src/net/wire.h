// Wire protocol of the groverd serving daemon (DESIGN.md §12).
//
// The request *payload* is the existing --serve-batch grammar — one
// request per frame, exactly the text that would be one line of a batch
// file — wrapped in a small versioned binary header so the framing can
// evolve independently of the grammar:
//
//   offset  size  field
//        0     4  magic      0x47 0x52 0x4F 0x56  ("GROV")
//        4     2  version    protocol version, little-endian (currently 1)
//        6     2  type       FrameType, little-endian
//        8     8  id         request id, little-endian; responses echo it,
//                            so pipelined requests may complete out of
//                            order
//       16     4  size       payload byte count, little-endian
//       20     …  payload
//
// Response and error payloads start with one Status byte followed by
// UTF-8 text (a verdict line, a stats block, or an error message).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace grover::net {

inline constexpr unsigned char kMagic[4] = {'G', 'R', 'O', 'V'};
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 20;
/// Hard per-frame payload bound: a request line or a rendered result is
/// a few hundred bytes; anything near this is a corrupt or hostile
/// frame, and the decoder refuses it instead of buffering unboundedly.
inline constexpr std::uint32_t kMaxPayload = 1u << 20;

enum class FrameType : std::uint16_t {
  /// Client → daemon: one serve-batch grammar line, plain submit path
  /// (both variants compiled, estimate when a platform is named).
  Request = 1,
  /// Client → daemon: one serve-batch grammar line routed through the
  /// policy engine (CompileService::compileAuto, groverc --auto).
  AutoRequest = 2,
  /// Daemon → client: Status byte + the per-request verdict text.
  Response = 3,
  /// Client → daemon: snapshot the service + server counters.
  Stats = 4,
  /// Daemon → client: Status byte + rendered stats block.
  StatsResponse = 5,
  /// Daemon → client: Status byte + reason. Sent for protocol
  /// violations; the daemon closes the connection after flushing it.
  Error = 6,
  /// Client → daemon: snapshot the counters as a binary StatsFrame
  /// (machine consumers; the text Stats frame stays for humans).
  StatsBinary = 7,
  /// Daemon → client: Status byte + encoded StatsFrame.
  StatsBinaryResponse = 8,
};

enum class Status : std::uint8_t {
  Ok = 0,
  /// The request was understood but could not be served (malformed
  /// grammar line, unknown app/platform, source failed to compile).
  /// Request-scoped: the connection stays usable.
  RequestFailed = 1,
  /// The admission queue is full; retry later. Request-scoped.
  Overloaded = 2,
  /// Protocol violation (bad magic/version/oversized frame, unexpected
  /// frame type). Connection-scoped: the daemon closes after sending.
  Malformed = 3,
  /// The daemon is draining; no new requests are admitted.
  ShuttingDown = 4,
};

[[nodiscard]] const char* toString(Status status);

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::Request;
  std::uint64_t id = 0;
  std::string payload;
};

/// Append the binary encoding of one frame to `out`.
void appendFrame(std::string& out, FrameType type, std::uint64_t id,
                 std::string_view payload);

/// Convenience for Response/StatsResponse/Error frames: payload is the
/// Status byte followed by `text`.
void appendStatusFrame(std::string& out, FrameType type, std::uint64_t id,
                       Status status, std::string_view text);

/// Split a status-carrying payload back into (status, text). Returns
/// false for an empty payload or an out-of-range status byte.
bool splitStatusPayload(std::string_view payload, Status& status,
                        std::string_view& text);

/// The event-loop counter block of one shard (or the whole server when
/// used as the totals). Field order is the wire order; every counter is
/// a little-endian u64 on the wire so a monitor can diff snapshots
/// without parsing text.
struct StatsCounters {
  std::uint64_t connectionsAccepted = 0;
  std::uint64_t connectionsClosed = 0;
  std::uint64_t framesReceived = 0;
  std::uint64_t requestsAdmitted = 0;
  std::uint64_t responsesSent = 0;
  std::uint64_t rejectedOverload = 0;
  std::uint64_t rejectedClientCredit = 0;
  std::uint64_t rejectedShutdown = 0;
  std::uint64_t protocolErrors = 0;
  std::uint64_t disconnectedMidRequest = 0;
  std::uint64_t idleTimeouts = 0;
  std::uint64_t readBudgetExhausted = 0;
  std::uint64_t acceptsShed = 0;

  friend bool operator==(const StatsCounters& a, const StatsCounters& b);
  friend bool operator!=(const StatsCounters& a, const StatsCounters& b) {
    return !(a == b);
  }
};

/// Number of u64 counters in StatsCounters (wire layout).
inline constexpr std::size_t kStatsCounterCount = 13;

inline constexpr std::uint16_t kStatsFrameVersion = 2;

/// The versioned binary stats/health snapshot a StatsBinary request
/// returns. Fixed little-endian layout:
///
///   offset  size  field
///        0     2  version            (kStatsFrameVersion)
///        2     2  shard count        (entries in `shards`)
///        4     8  uptimeMs           daemon lifetime
///       12     8  admittedNow        requests in flight right now
///       20     8  connectionsOpen    currently open connections
///       28     8  cancelled          service: cancelled cold compiles
///       36     8  measurements       service: background measurements
///       44     8  measurementsDropped service: queue-full drops
///       52     8  measureQueueBacklog service: queue depth right now
///       60     8  proofsRun          service: symbolic prover runs (v2)
///       68     8  proofsRefuted      service: refuted kernels (v2)
///       76   104  totals             StatsCounters (13 × u64)
///      180  104×N per-shard          StatsCounters per shard, in order
///
/// Version 2 inserted the two prover gauges before the totals; v1
/// decoders reject v2 frames by the version check, never misparse them.
struct StatsFrame {
  std::uint16_t version = kStatsFrameVersion;
  std::uint64_t uptimeMs = 0;
  std::uint64_t admittedNow = 0;
  std::uint64_t connectionsOpen = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t measurements = 0;
  std::uint64_t measurementsDropped = 0;
  std::uint64_t measureQueueBacklog = 0;
  std::uint64_t proofsRun = 0;
  std::uint64_t proofsRefuted = 0;
  StatsCounters totals;
  std::vector<StatsCounters> shards;

  friend bool operator==(const StatsFrame& a, const StatsFrame& b);
  friend bool operator!=(const StatsFrame& a, const StatsFrame& b) {
    return !(a == b);
  }
};

/// Serialize a StatsFrame into its wire layout (no frame header; the
/// result rides as the text part of a StatsBinaryResponse payload).
[[nodiscard]] std::string encodeStatsFrame(const StatsFrame& frame);

/// Decode a StatsFrame. Rejects truncated input, trailing bytes, and
/// unknown versions; on failure returns false and, when `error` is
/// non-null, explains why.
bool decodeStatsFrame(std::string_view data, StatsFrame& out,
                      std::string* error = nullptr);

/// Incremental frame decoder: feed bytes as they arrive, pull complete
/// frames out. Both the daemon's per-connection read path and the
/// client use it.
class FrameReader {
 public:
  explicit FrameReader(std::size_t maxPayload = kMaxPayload)
      : max_payload_(maxPayload) {}

  /// Buffer incoming bytes.
  void append(const char* data, std::size_t size);

  enum class Result {
    NeedMore,  ///< no complete frame buffered yet
    Frame,     ///< `out` holds the next frame
    Error,     ///< protocol violation; error() explains. The reader is
               ///< poisoned: every later next() also returns Error.
  };

  /// Decode the next complete frame, if any.
  Result next(Frame& out);

  [[nodiscard]] const std::string& error() const { return error_; }
  /// Bytes currently buffered (for idle/overload accounting).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::size_t max_payload_;
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  std::string error_;
};

}  // namespace grover::net
