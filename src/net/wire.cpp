#include "net/wire.h"

#include <cstring>

#include "support/str.h"

namespace grover::net {
namespace {

void putU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void putU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void putU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint16_t getU16(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t getU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t getU64(const char* p) {
  std::uint64_t v = 0;
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

bool knownType(std::uint16_t t) {
  return t >= static_cast<std::uint16_t>(FrameType::Request) &&
         t <= static_cast<std::uint16_t>(FrameType::Error);
}

}  // namespace

const char* toString(Status status) {
  switch (status) {
    case Status::Ok: return "ok";
    case Status::RequestFailed: return "request failed";
    case Status::Overloaded: return "overloaded";
    case Status::Malformed: return "malformed";
    case Status::ShuttingDown: return "shutting down";
  }
  return "unknown";
}

void appendFrame(std::string& out, FrameType type, std::uint64_t id,
                 std::string_view payload) {
  out.append(reinterpret_cast<const char*>(kMagic), 4);
  putU16(out, kProtocolVersion);
  putU16(out, static_cast<std::uint16_t>(type));
  putU64(out, id);
  putU32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
}

void appendStatusFrame(std::string& out, FrameType type, std::uint64_t id,
                       Status status, std::string_view text) {
  std::string payload;
  payload.reserve(1 + text.size());
  payload.push_back(static_cast<char>(status));
  payload.append(text.data(), text.size());
  appendFrame(out, type, id, payload);
}

bool splitStatusPayload(std::string_view payload, Status& status,
                        std::string_view& text) {
  if (payload.empty()) return false;
  const auto raw = static_cast<unsigned char>(payload[0]);
  if (raw > static_cast<unsigned char>(Status::ShuttingDown)) return false;
  status = static_cast<Status>(raw);
  text = payload.substr(1);
  return true;
}

void FrameReader::append(const char* data, std::size_t size) {
  // Compact the consumed prefix before it outgrows one frame's worth.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > kMaxPayload) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, size);
}

FrameReader::Result FrameReader::next(Frame& out) {
  if (!error_.empty()) return Result::Error;
  if (buffered() < kHeaderSize) return Result::NeedMore;
  const char* h = buf_.data() + pos_;
  if (std::memcmp(h, kMagic, 4) != 0) {
    error_ = "bad magic (not a groverd frame)";
    return Result::Error;
  }
  const std::uint16_t version = getU16(h + 4);
  if (version != kProtocolVersion) {
    error_ = cat("unsupported protocol version ", version,
                 " (this build speaks v", kProtocolVersion, ")");
    return Result::Error;
  }
  const std::uint16_t rawType = getU16(h + 6);
  if (!knownType(rawType)) {
    error_ = cat("unknown frame type ", rawType);
    return Result::Error;
  }
  const std::uint32_t size = getU32(h + 16);
  if (size > max_payload_) {
    error_ = cat("oversized frame: ", size, " bytes (limit ", max_payload_,
                 ")");
    return Result::Error;
  }
  if (buffered() < kHeaderSize + size) return Result::NeedMore;
  out.type = static_cast<FrameType>(rawType);
  out.id = getU64(h + 8);
  out.payload.assign(buf_, pos_ + kHeaderSize, size);
  pos_ += kHeaderSize + size;
  return Result::Frame;
}

}  // namespace grover::net
