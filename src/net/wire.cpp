#include "net/wire.h"

#include <cstring>
#include <utility>

#include "support/str.h"

namespace grover::net {
namespace {

void putU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void putU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void putU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint16_t getU16(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t getU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t getU64(const char* p) {
  std::uint64_t v = 0;
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

bool knownType(std::uint16_t t) {
  return t >= static_cast<std::uint16_t>(FrameType::Request) &&
         t <= static_cast<std::uint16_t>(FrameType::StatsBinaryResponse);
}

// Fixed-size prefix of a StatsFrame before the counter blocks:
// version u16, shard count u16, then nine u64 health fields.
constexpr std::size_t kStatsFramePrefix = 4 + 9 * 8;
constexpr std::size_t kStatsCountersBytes = kStatsCounterCount * 8;

void putCounters(std::string& out, const StatsCounters& c) {
  putU64(out, c.connectionsAccepted);
  putU64(out, c.connectionsClosed);
  putU64(out, c.framesReceived);
  putU64(out, c.requestsAdmitted);
  putU64(out, c.responsesSent);
  putU64(out, c.rejectedOverload);
  putU64(out, c.rejectedClientCredit);
  putU64(out, c.rejectedShutdown);
  putU64(out, c.protocolErrors);
  putU64(out, c.disconnectedMidRequest);
  putU64(out, c.idleTimeouts);
  putU64(out, c.readBudgetExhausted);
  putU64(out, c.acceptsShed);
}

void getCounters(const char* p, StatsCounters& c) {
  c.connectionsAccepted = getU64(p + 0 * 8);
  c.connectionsClosed = getU64(p + 1 * 8);
  c.framesReceived = getU64(p + 2 * 8);
  c.requestsAdmitted = getU64(p + 3 * 8);
  c.responsesSent = getU64(p + 4 * 8);
  c.rejectedOverload = getU64(p + 5 * 8);
  c.rejectedClientCredit = getU64(p + 6 * 8);
  c.rejectedShutdown = getU64(p + 7 * 8);
  c.protocolErrors = getU64(p + 8 * 8);
  c.disconnectedMidRequest = getU64(p + 9 * 8);
  c.idleTimeouts = getU64(p + 10 * 8);
  c.readBudgetExhausted = getU64(p + 11 * 8);
  c.acceptsShed = getU64(p + 12 * 8);
}

}  // namespace

bool operator==(const StatsCounters& a, const StatsCounters& b) {
  return a.connectionsAccepted == b.connectionsAccepted &&
         a.connectionsClosed == b.connectionsClosed &&
         a.framesReceived == b.framesReceived &&
         a.requestsAdmitted == b.requestsAdmitted &&
         a.responsesSent == b.responsesSent &&
         a.rejectedOverload == b.rejectedOverload &&
         a.rejectedClientCredit == b.rejectedClientCredit &&
         a.rejectedShutdown == b.rejectedShutdown &&
         a.protocolErrors == b.protocolErrors &&
         a.disconnectedMidRequest == b.disconnectedMidRequest &&
         a.idleTimeouts == b.idleTimeouts &&
         a.readBudgetExhausted == b.readBudgetExhausted &&
         a.acceptsShed == b.acceptsShed;
}

bool operator==(const StatsFrame& a, const StatsFrame& b) {
  return a.version == b.version && a.uptimeMs == b.uptimeMs &&
         a.admittedNow == b.admittedNow &&
         a.connectionsOpen == b.connectionsOpen &&
         a.cancelled == b.cancelled && a.measurements == b.measurements &&
         a.measurementsDropped == b.measurementsDropped &&
         a.measureQueueBacklog == b.measureQueueBacklog &&
         a.proofsRun == b.proofsRun && a.proofsRefuted == b.proofsRefuted &&
         a.totals == b.totals && a.shards == b.shards;
}

std::string encodeStatsFrame(const StatsFrame& frame) {
  std::string out;
  out.reserve(kStatsFramePrefix +
              kStatsCountersBytes * (1 + frame.shards.size()));
  putU16(out, frame.version);
  putU16(out, static_cast<std::uint16_t>(frame.shards.size()));
  putU64(out, frame.uptimeMs);
  putU64(out, frame.admittedNow);
  putU64(out, frame.connectionsOpen);
  putU64(out, frame.cancelled);
  putU64(out, frame.measurements);
  putU64(out, frame.measurementsDropped);
  putU64(out, frame.measureQueueBacklog);
  putU64(out, frame.proofsRun);
  putU64(out, frame.proofsRefuted);
  putCounters(out, frame.totals);
  for (const StatsCounters& shard : frame.shards) putCounters(out, shard);
  return out;
}

bool decodeStatsFrame(std::string_view data, StatsFrame& out,
                      std::string* error) {
  const auto fail = [&](std::string why) {
    if (error) *error = std::move(why);
    return false;
  };
  if (data.size() < 4) return fail("stats frame truncated before header");
  const std::uint16_t version = getU16(data.data());
  if (version != kStatsFrameVersion) {
    return fail(cat("unsupported stats frame version ", version,
                    " (this build speaks v", kStatsFrameVersion, ")"));
  }
  const std::uint16_t shardCount = getU16(data.data() + 2);
  const std::size_t expected =
      kStatsFramePrefix +
      kStatsCountersBytes * (1 + static_cast<std::size_t>(shardCount));
  if (data.size() < expected) {
    return fail(cat("stats frame truncated: ", data.size(), " bytes, need ",
                    expected, " for ", shardCount, " shards"));
  }
  if (data.size() > expected) {
    return fail(cat("stats frame has ", data.size() - expected,
                    " trailing bytes"));
  }
  const char* p = data.data();
  out.version = version;
  out.uptimeMs = getU64(p + 4);
  out.admittedNow = getU64(p + 12);
  out.connectionsOpen = getU64(p + 20);
  out.cancelled = getU64(p + 28);
  out.measurements = getU64(p + 36);
  out.measurementsDropped = getU64(p + 44);
  out.measureQueueBacklog = getU64(p + 52);
  out.proofsRun = getU64(p + 60);
  out.proofsRefuted = getU64(p + 68);
  getCounters(p + kStatsFramePrefix, out.totals);
  out.shards.assign(shardCount, StatsCounters{});
  for (std::size_t i = 0; i < shardCount; ++i) {
    getCounters(p + kStatsFramePrefix + kStatsCountersBytes * (1 + i),
                out.shards[i]);
  }
  return true;
}

const char* toString(Status status) {
  switch (status) {
    case Status::Ok: return "ok";
    case Status::RequestFailed: return "request failed";
    case Status::Overloaded: return "overloaded";
    case Status::Malformed: return "malformed";
    case Status::ShuttingDown: return "shutting down";
  }
  return "unknown";
}

void appendFrame(std::string& out, FrameType type, std::uint64_t id,
                 std::string_view payload) {
  out.append(reinterpret_cast<const char*>(kMagic), 4);
  putU16(out, kProtocolVersion);
  putU16(out, static_cast<std::uint16_t>(type));
  putU64(out, id);
  putU32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
}

void appendStatusFrame(std::string& out, FrameType type, std::uint64_t id,
                       Status status, std::string_view text) {
  std::string payload;
  payload.reserve(1 + text.size());
  payload.push_back(static_cast<char>(status));
  payload.append(text.data(), text.size());
  appendFrame(out, type, id, payload);
}

bool splitStatusPayload(std::string_view payload, Status& status,
                        std::string_view& text) {
  if (payload.empty()) return false;
  const auto raw = static_cast<unsigned char>(payload[0]);
  if (raw > static_cast<unsigned char>(Status::ShuttingDown)) return false;
  status = static_cast<Status>(raw);
  text = payload.substr(1);
  return true;
}

void FrameReader::append(const char* data, std::size_t size) {
  // Compact the consumed prefix before it outgrows one frame's worth.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > kMaxPayload) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, size);
}

FrameReader::Result FrameReader::next(Frame& out) {
  if (!error_.empty()) return Result::Error;
  if (buffered() < kHeaderSize) return Result::NeedMore;
  const char* h = buf_.data() + pos_;
  if (std::memcmp(h, kMagic, 4) != 0) {
    error_ = "bad magic (not a groverd frame)";
    return Result::Error;
  }
  const std::uint16_t version = getU16(h + 4);
  if (version != kProtocolVersion) {
    error_ = cat("unsupported protocol version ", version,
                 " (this build speaks v", kProtocolVersion, ")");
    return Result::Error;
  }
  const std::uint16_t rawType = getU16(h + 6);
  if (!knownType(rawType)) {
    error_ = cat("unknown frame type ", rawType);
    return Result::Error;
  }
  const std::uint32_t size = getU32(h + 16);
  if (size > max_payload_) {
    error_ = cat("oversized frame: ", size, " bytes (limit ", max_payload_,
                 ")");
    return Result::Error;
  }
  if (buffered() < kHeaderSize + size) return Result::NeedMore;
  out.type = static_cast<FrameType>(rawType);
  out.id = getU64(h + 8);
  out.payload.assign(buf_, pos_ + kHeaderSize, size);
  pos_ += kHeaderSize + size;
  return Result::Frame;
}

}  // namespace grover::net
