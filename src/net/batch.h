// The --serve-batch request grammar, shared between groverc's local
// batch mode and the groverd wire protocol (one request frame carries
// exactly one grammar line):
//
//   <app-id> [<platform>|none] [test|bench]   # built-in app
//   <path/to/kernel.cl> [<kernel-name>]       # raw kernel, transform only
//                                             # (name picks one __kernel
//                                             #  out of a multi-kernel file)
//
// `#` starts a comment; blank lines are skipped. Malformed lines are
// reported with file name + line number so a bad request in a thousand-
// line batch file (or a bad frame in a long-lived connection) is
// attributable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "service/artifact.h"

namespace grover::net {

/// One parsed request line.
struct BatchEntry {
  std::string text;      ///< normalized line text, for reporting
  std::size_t line = 0;  ///< 1-based line number in the source file
  service::Request request;
  bool valid = false;
  /// One-line reason when !valid. Prefixed "<file>:<line>: " when the
  /// entry came from parseBatchFile with a non-empty file name.
  std::string error;
};

/// Parse one grammar line (already comment-stripped or not — `#` is
/// handled here too). Returns an entry with valid=false and a bare,
/// unprefixed error for malformed input; an entry with empty `text`
/// when the line is blank/comment-only. `.cl` sources are read from the
/// local filesystem — over the wire that is the *daemon's* filesystem.
[[nodiscard]] BatchEntry parseRequestLine(const std::string& line);

/// Parse a whole request file. Comment-only and blank lines produce no
/// entry. When `fileName` is non-empty, malformed entries carry a
/// "<file>:<line>: " diagnostic prefix.
[[nodiscard]] std::vector<BatchEntry> parseBatchFile(
    const std::string& contents, const std::string& fileName = {});

}  // namespace grover::net
