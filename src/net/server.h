// groverd's serving core (DESIGN.md §12): a poll()-based event loop over
// a TCP (and optionally Unix-domain) listener, per-connection request
// pipelining of wire.h frames, and a bounded admission queue feeding a
// support::ThreadPool that runs requests through a CompileService.
//
// Threading model: ONE event-loop thread owns every socket, connection
// state machine, and server counter — run() is that loop. Worker threads
// only execute service calls and hand finished responses back through a
// mutex-guarded completion queue plus a self-pipe wakeup; they never
// touch a socket. requestStop() is async-signal-safe (a pipe write), so
// SIGINT/SIGTERM handlers can trigger a graceful drain: stop accepting,
// reject new requests with Status::ShuttingDown, finish every admitted
// request, flush, exit run().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/wire.h"
#include "service/compile_service.h"
#include "support/thread_pool.h"

namespace grover::net {

struct ServerConfig {
  /// TCP listener address. Loopback by default: groverd is a local
  /// compile daemon, not an internet-facing service.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Optional Unix-domain listener path (empty = TCP only). A stale
  /// socket file at the path is unlinked before binding.
  std::string unixPath;
  /// Bounded admission queue: requests admitted (queued or executing)
  /// at once, across all connections. Excess requests are answered
  /// immediately with Status::Overloaded — backpressure, not OOM.
  std::size_t maxAdmitted = 128;
  /// Per-connection admission credits: how many requests ONE connection
  /// may hold admitted at once. A pipeliner past its credits is answered
  /// Overloaded while other connections still admit — fairness, so one
  /// greedy client cannot monopolize the global queue. Matches groverc
  /// --connect's pipeline window so a single well-behaved client is
  /// never rejected. 0 disables the per-connection bound.
  std::size_t clientCredits = 64;
  /// Global admission reserve: the last `admitReserve` slots below
  /// maxAdmitted only admit a connection's FIRST outstanding request.
  /// Even when several pipeliners collectively fill the queue, a polite
  /// serial client still gets in. Clamped below maxAdmitted.
  std::size_t admitReserve = 8;
  /// Read fairness: max bytes drained from one connection per event-loop
  /// tick. A faster writer keeps the rest buffered in the kernel until
  /// the next poll round (readBudgetExhausted in stats) instead of
  /// monopolizing the loop thread.
  std::size_t readBudgetBytes = 64 * 1024;
  /// How long to stop polling the listeners after accept() hit the
  /// process fd limit (EMFILE/ENFILE); prevents a 100%-CPU poll spin on
  /// a listener that cannot be served.
  int acceptBackoffMs = 100;
  /// Worker threads executing service calls (0 = hardware concurrency).
  unsigned workers = 0;
  /// Close connections with no in-flight request and no traffic for
  /// this long; <= 0 disables the timeout.
  int idleTimeoutMs = 0;
  /// On drain, wait at most this long for response flushes to clients
  /// that have stopped reading before force-closing them. In-flight
  /// *service* work always completes regardless.
  int drainTimeoutMs = 5000;
  /// Per-frame payload bound (Status::Malformed beyond it).
  std::size_t maxPayload = kMaxPayload;
};

/// Event-loop counters, all maintained on the loop thread.
struct ServerStats {
  std::uint64_t connectionsAccepted = 0;
  std::uint64_t connectionsClosed = 0;
  std::uint64_t framesReceived = 0;
  std::uint64_t requestsAdmitted = 0;
  std::uint64_t responsesSent = 0;
  std::uint64_t rejectedOverload = 0;
  /// Of the overload rejections, those caused by one connection
  /// exhausting its own credits (ServerConfig::clientCredits) rather
  /// than the global queue filling up.
  std::uint64_t rejectedClientCredit = 0;
  std::uint64_t rejectedShutdown = 0;
  std::uint64_t protocolErrors = 0;
  /// Completions whose connection was gone by the time the request
  /// finished — the request itself still ran to completion.
  std::uint64_t disconnectedMidRequest = 0;
  std::uint64_t idleTimeouts = 0;
  /// Event-loop ticks on which a connection hit its per-tick read
  /// budget (ServerConfig::readBudgetBytes) and yielded to its peers.
  std::uint64_t readBudgetExhausted = 0;
  /// Connections shed (accepted then immediately closed) because the
  /// process was out of file descriptors.
  std::uint64_t acceptsShed = 0;
};

class Server {
 public:
  /// The service outlives the server; the server never owns it (the
  /// daemon shuts the service down after run() returns).
  Server(service::CompileService& service, ServerConfig config,
         std::ostream* log = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Create, bind and listen on the configured sockets. Throws
  /// GroverError on any socket failure (port in use, bad unix path).
  void bind();

  /// The event loop. Returns after requestStop() once every admitted
  /// request has completed and responses are flushed (or the drain
  /// timeout forced the remaining connections closed). Call bind()
  /// first.
  void run();

  /// Begin a graceful drain. Async-signal-safe and callable from any
  /// thread (it only writes one byte to the wakeup pipe).
  void requestStop() noexcept;

  /// Bound TCP port (after bind(); the ephemeral port when config.port
  /// was 0) — 0 when no TCP listener exists.
  [[nodiscard]] std::uint16_t port() const { return bound_port_; }

  [[nodiscard]] ServerStats stats() const;

 private:
  struct Connection;
  struct Completion {
    std::uint64_t connId = 0;
    std::uint64_t requestId = 0;
    Status status = Status::Ok;
    std::string text;
  };

  void acceptPending(int listenFd);
  void handleReadable(Connection& conn);
  void handleFrame(Connection& conn, Frame frame);
  void dispatchRequest(Connection& conn, FrameType type, std::uint64_t id,
                       std::string payload);
  void respond(Connection& conn, FrameType type, std::uint64_t id,
               Status status, std::string_view text);
  void flushWrites(Connection& conn);
  /// Close a connection whose read side has ended once nothing is left
  /// to send it (no in-flight request, no buffered response bytes).
  void maybeCloseDrained(Connection& conn);
  void closeConnection(std::uint64_t connId);
  void drainCompletions();
  [[nodiscard]] std::string renderStatsPayload();
  void log(const std::string& message);

  service::CompileService& service_;
  ServerConfig config_;
  std::ostream* log_stream_;

  int tcp_fd_ = -1;
  int unix_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t bound_port_ = 0;

  ThreadPool workers_;
  std::mutex completion_mutex_;
  std::vector<Completion> completions_;
  std::atomic<bool> stop_requested_{false};

  // Loop-thread state.
  std::vector<std::unique_ptr<Connection>> connections_;
  // O(1) lookups beside the ownership vector: completions address
  // connections by id, poll events by fd. Kept in sync by accept/close.
  std::unordered_map<std::uint64_t, Connection*> conn_by_id_;
  std::unordered_map<int, Connection*> conn_by_fd_;
  std::uint64_t next_conn_id_ = 1;
  std::size_t admitted_ = 0;
  bool draining_ = false;
  // EMFILE recovery: a reserve fd (to /dev/null) we can close to free a
  // descriptor, accept the pending connection, shed it, and re-open the
  // reserve — so the kernel backlog cannot wedge full of connections we
  // will never see. Plus a listener-poll backoff to avoid spinning.
  int reserve_fd_ = -1;
  std::chrono::steady_clock::time_point accept_backoff_until_{};
  int accept_errno_logged_ = 0;

  // Counters are atomics only so stats() can be called from test
  // threads while the loop runs; every writer is the loop thread.
  std::atomic<std::uint64_t> accepted_{0}, closed_{0}, frames_{0},
      admitted_total_{0}, responses_{0}, overloaded_{0},
      credit_rejected_{0}, shutdown_rejected_{0}, protocol_errors_{0},
      disconnected_{0}, idle_timeouts_{0}, read_budget_exhausted_{0},
      accepts_shed_{0};
};

}  // namespace grover::net
