// groverd's serving core (DESIGN.md §12): poll()-based event loops over
// TCP (and optionally Unix-domain) listeners, per-connection request
// pipelining of wire.h frames, and a bounded admission queue feeding a
// support::ThreadPool that runs requests through a CompileService.
//
// Threading model: the server runs ServerConfig::loopShards independent
// event loops. EACH shard's loop thread owns that shard's sockets,
// connection state machines, and counters; shards share nothing but the
// service, the worker pool, and the global admission count (an atomic).
// With loopShards == 1 this degenerates to the original single-loop
// design. TCP connections land on shards via per-shard SO_REUSEPORT
// listeners (the kernel load-balances accepts); when that is disabled —
// or for the Unix-domain listener, which cannot be usefully duplicated —
// shard 0 accepts and hands the fd to the least-loaded shard.
//
// Worker threads only execute service calls and hand finished responses
// back through the owning shard's mutex-guarded completion queue plus a
// self-pipe wakeup; they never touch a socket. requestStop() is
// async-signal-safe (one pipe write per shard), so SIGINT/SIGTERM
// handlers can trigger a graceful drain: stop accepting, reject new
// requests with Status::ShuttingDown, finish every admitted request,
// flush, exit run().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "net/wire.h"
#include "service/compile_service.h"
#include "support/thread_pool.h"

namespace grover::net {

struct ServerConfig {
  /// TCP listener address. Loopback by default: groverd is a local
  /// compile daemon, not an internet-facing service.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Optional Unix-domain listener path (empty = TCP only). A stale
  /// socket file at the path is reclaimed only after a probe connect()
  /// proves no live daemon owns it (ECONNREFUSED).
  std::string unixPath;
  /// Bounded admission queue: requests admitted (queued or executing)
  /// at once, across all connections and shards. Excess requests are
  /// answered immediately with Status::Overloaded — backpressure, not
  /// OOM.
  std::size_t maxAdmitted = 128;
  /// Per-connection admission credits: how many requests ONE connection
  /// may hold admitted at once. A pipeliner past its credits is answered
  /// Overloaded while other connections still admit — fairness, so one
  /// greedy client cannot monopolize the global queue. Matches groverc
  /// --connect's pipeline window so a single well-behaved client is
  /// never rejected. 0 disables the per-connection bound.
  std::size_t clientCredits = 64;
  /// Global admission reserve: the last `admitReserve` slots below
  /// maxAdmitted only admit a connection's FIRST outstanding request.
  /// Even when several pipeliners collectively fill the queue, a polite
  /// serial client still gets in. Clamped below maxAdmitted.
  std::size_t admitReserve = 8;
  /// Read fairness: max bytes drained from one connection per event-loop
  /// tick. A faster writer keeps the rest buffered in the kernel until
  /// the next poll round (readBudgetExhausted in stats) instead of
  /// monopolizing the loop thread.
  std::size_t readBudgetBytes = 64 * 1024;
  /// How long to stop polling the listeners after accept() hit the
  /// process fd limit (EMFILE/ENFILE); prevents a 100%-CPU poll spin on
  /// a listener that cannot be served.
  int acceptBackoffMs = 100;
  /// Worker threads executing service calls (0 = hardware concurrency).
  /// One pool is shared by all shards.
  unsigned workers = 0;
  /// Close connections with no in-flight request and no traffic for
  /// this long; <= 0 disables the timeout. A connection waiting on a
  /// slow cold compile is never idle-closed: admission and completion
  /// both count as activity, and in-flight requests pin the connection.
  int idleTimeoutMs = 0;
  /// On drain, wait at most this long for response flushes to clients
  /// that have stopped reading before force-closing them. In-flight
  /// *service* work always completes regardless.
  int drainTimeoutMs = 5000;
  /// Per-frame payload bound (Status::Malformed beyond it).
  std::size_t maxPayload = kMaxPayload;
  /// Independent event-loop shards. 1 (the default) is the original
  /// single-loop server. Each shard has its own poll set, connection
  /// maps, completion queue, and wakeup pipe; admission stays globally
  /// bounded by maxAdmitted across all of them.
  std::size_t loopShards = 1;
  /// With loopShards > 1: give every shard its own SO_REUSEPORT TCP
  /// listener so the kernel spreads accepts (no cross-thread handoff on
  /// the accept path). When false — or when the socket option is
  /// unavailable — shard 0 owns the only TCP listener and hands each
  /// accepted fd to the least-loaded shard, which is also always how
  /// Unix-domain connections are distributed.
  bool reusePort = true;
  /// Run the symbolic race prover on every request (groverd --prove):
  /// options.prove is forced onto each parsed grammar line, so a
  /// transformed kernel whose original was race-free but whose
  /// transformed IR is Refuted is never served.
  bool prove = false;
};

/// Event-loop counters. `shards` holds the per-shard breakdown (one
/// entry per loop shard, nested `shards` empty); the top-level fields
/// are the exact sums of the per-shard values, snapshotted from the
/// same atomic reads so sum == total holds in every snapshot.
struct ServerStats {
  std::uint64_t connectionsAccepted = 0;
  std::uint64_t connectionsClosed = 0;
  std::uint64_t framesReceived = 0;
  std::uint64_t requestsAdmitted = 0;
  std::uint64_t responsesSent = 0;
  std::uint64_t rejectedOverload = 0;
  /// Of the overload rejections, those caused by one connection
  /// exhausting its own credits (ServerConfig::clientCredits) rather
  /// than the global queue filling up.
  std::uint64_t rejectedClientCredit = 0;
  std::uint64_t rejectedShutdown = 0;
  std::uint64_t protocolErrors = 0;
  /// Completions whose connection was gone by the time the request
  /// finished — the request itself still ran to completion.
  std::uint64_t disconnectedMidRequest = 0;
  std::uint64_t idleTimeouts = 0;
  /// Event-loop ticks on which a connection hit its per-tick read
  /// budget (ServerConfig::readBudgetBytes) and yielded to its peers.
  std::uint64_t readBudgetExhausted = 0;
  /// Connections shed (accepted then immediately closed) because the
  /// process was out of file descriptors.
  std::uint64_t acceptsShed = 0;
  std::vector<ServerStats> shards;
};

class Server {
 public:
  /// The service outlives the server; the server never owns it (the
  /// daemon shuts the service down after run() returns).
  Server(service::CompileService& service, ServerConfig config,
         std::ostream* log = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Create, bind and listen on the configured sockets (one TCP
  /// listener per shard under SO_REUSEPORT, otherwise a single routing
  /// listener on shard 0). Throws GroverError on any socket failure
  /// (port in use, live daemon on the unix path).
  void bind();

  /// The event loops. Spawns loopShards-1 shard threads, runs shard 0
  /// on the calling thread, and returns after requestStop() once every
  /// admitted request has completed and responses are flushed (or the
  /// drain timeout forced the remaining connections closed). Call
  /// bind() first.
  void run();

  /// Begin a graceful drain. Async-signal-safe and callable from any
  /// thread (it only writes one byte per shard wakeup pipe).
  void requestStop() noexcept;

  /// Bound TCP port (after bind(); the ephemeral port when config.port
  /// was 0) — 0 when no TCP listener exists.
  [[nodiscard]] std::uint16_t port() const { return bound_port_; }

  /// Totals plus the per-shard breakdown. Callable from any thread.
  [[nodiscard]] ServerStats stats() const;

  /// The binary stats/health snapshot a StatsBinary request returns
  /// (uptime, live gauges, totals, per-shard counters). Callable from
  /// any thread — groverd's --health-interval thread uses it directly.
  [[nodiscard]] StatsFrame statsFrame() const;

 private:
  struct Connection;
  struct Completion {
    std::uint64_t connId = 0;
    std::uint64_t requestId = 0;
    Status status = Status::Ok;
    std::string text;
  };
  struct Shard;

  /// Global admission bound shared by all shards: CAS on admitted_
  /// preserving the maxAdmitted/admitReserve semantics (the reserve
  /// slots only admit a connection's first outstanding request).
  bool tryAdmit(bool firstOutstanding);
  /// Route an accepted fd to the least-loaded shard (round-robin on
  /// ties). Called only from shard 0's loop thread.
  void routeAccepted(int fd, Shard& acceptor);
  [[nodiscard]] std::string renderStatsPayload();
  [[nodiscard]] std::uint64_t openConnections() const;
  void log(const std::string& message);

  service::CompileService& service_;
  ServerConfig config_;
  std::ostream* log_stream_;
  std::mutex log_mutex_;  // shard threads log concurrently

  std::uint16_t bound_port_ = 0;
  /// Set when bind() created the unix socket file, so the destructor
  /// only unlinks a path this server actually owns.
  bool unix_bound_ = false;
  /// Shard 0 routes accepted TCP fds instead of adopting them (single
  /// listener: reusePort disabled or unavailable).
  bool tcp_handoff_ = false;
  std::size_t next_handoff_ = 0;  // rotating tiebreak; shard-0 loop only

  ThreadPool workers_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> next_conn_id_{1};
  std::atomic<std::size_t> admitted_{0};
  std::atomic<bool> stop_requested_{false};
  std::chrono::steady_clock::time_point started_at_;
};

}  // namespace grover::net
