#include "net/batch.h"

#include <sstream>

#include "support/io.h"
#include "support/str.h"

namespace grover::net {

BatchEntry parseRequestLine(const std::string& line) {
  BatchEntry e;
  std::string stripped = line;
  if (const std::size_t hash = stripped.find('#');
      hash != std::string::npos) {
    stripped = stripped.substr(0, hash);
  }
  std::istringstream tokens(stripped);
  std::vector<std::string> words;
  for (std::string w; tokens >> w;) words.push_back(w);
  if (words.empty()) return e;  // blank/comment-only: text stays empty
  e.text = join(words, " ");
  if (words[0].size() > 3 && words[0].rfind(".cl") == words[0].size() - 3) {
    if (words.size() > 2) {
      e.error = "too many arguments (expected <path.cl> [<kernel-name>])";
    } else if (std::string err;
               !readTextFile(words[0], e.request.source, err)) {
      e.error = "cannot read '" + words[0] + "': " + err;
    } else {
      // Optional second word picks one __kernel out of a multi-kernel
      // source; without it every kernel in the file is transformed.
      if (words.size() == 2) e.request.kernelName = words[1];
      e.valid = true;
    }
  } else {
    e.request.appId = words[0];
    if (words.size() > 1 && words[1] != "none") {
      e.request.platform = words[1];
    }
    if (words.size() > 2) {
      if (words[2] != "test" && words[2] != "bench") {
        e.error = "bad scale '" + words[2] + "' (expected test or bench)";
      }
      e.request.scale = words[2] == "bench" ? apps::Scale::Bench
                                            : apps::Scale::Test;
    }
    if (words.size() > 3) {
      e.error = "too many arguments (expected <app> [<platform>|none] "
                "[test|bench])";
    }
    e.valid = e.error.empty();
  }
  return e;
}

std::vector<BatchEntry> parseBatchFile(const std::string& contents,
                                       const std::string& fileName) {
  std::vector<BatchEntry> entries;
  std::istringstream in(contents);
  std::string line;
  for (std::size_t lineNo = 1; std::getline(in, line); ++lineNo) {
    BatchEntry e = parseRequestLine(line);
    if (e.text.empty()) continue;
    e.line = lineNo;
    if (!e.valid && !fileName.empty()) {
      e.error = cat(fileName, ":", lineNo, ": ", e.error);
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace grover::net
