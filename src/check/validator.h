// Post-Grover semantic validator: independent structural checks that every
// transformed kernel must pass before its output is trusted. The checks
// deliberately re-derive their facts from the IR instead of trusting the
// pass's own bookkeeping, so a wrong transform is caught even when the
// GroverResult claims success.
#pragma once

#include <string>
#include <vector>

#include "grover/grover_pass.h"
#include "ir/function.h"
#include "sym/prover.h"

namespace grover::check {

/// One violated check. `check` names which validator rule fired:
///   "verifier"           - ir::verifyFunction rejected the IR
///   "stale-local-access" - a transformed buffer still has loads/stores
///   "barrier-safety"     - barriers were removed while a live local
///                          buffer still carries real memory traffic
///   "ngl-dominance"      - an emitted nGL consumes a definition that does
///                          not dominate it
struct ValidationIssue {
  std::string check;
  std::string message;
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;

  [[nodiscard]] bool ok() const { return issues.empty(); }
  [[nodiscard]] bool has(const std::string& check) const;
  [[nodiscard]] std::string str() const;
};

/// Validate `fn` against the outcome `result` that runGrover reported for
/// it. Never mutates the function.
[[nodiscard]] ValidationReport validateTransform(ir::Function& fn,
                                                 const grv::GroverResult& result);

/// As validateTransform, but additionally discharges the symbolic
/// barrier/race obligations (src/sym) under `prove` and returns the full
/// SymbolicReport through `symOut` (may be null). A Refuted kernel adds a
/// "symbolic-race" issue carrying the witness; Proved and Unknown add
/// nothing — Unknown degrades soundly to the structural checks above,
/// never a silent pass claim.
[[nodiscard]] ValidationReport validateTransform(
    ir::Function& fn, const grv::GroverResult& result,
    const sym::ProveOptions& prove, sym::SymbolicReport* symOut);

/// Same, but throws GroverError listing every issue when validation fails.
void validateTransformOrThrow(ir::Function& fn,
                              const grv::GroverResult& result);

}  // namespace grover::check
