#include "check/kernel_gen.h"

#include <sstream>

#include "support/str.h"

namespace grover::check {

const char* toString(KernelFamily family) {
  switch (family) {
    case KernelFamily::AffineTile: return "affine-tile";
    case KernelFamily::ScaledPair: return "scaled-pair";
    case KernelFamily::Race: return "race";
    case KernelFamily::NonAffine: return "non-affine";
    case KernelFamily::Temporal: return "temporal";
    case KernelFamily::MixedKeepBarrier: return "mixed-keep-barrier";
    case KernelFamily::TwoCacheBuffers: return "two-cache-buffers";
  }
  return "?";
}

KernelSpec normalize(KernelSpec spec) {
  // Per-family dimensionality: Race needs a second dim to ignore; the
  // single-buffer scalar families are 1-D by construction.
  switch (spec.family) {
    case KernelFamily::AffineTile:
      break;
    case KernelFamily::Race:
      spec.dims = 2;
      break;
    default:
      spec.dims = 1;
      break;
  }
  if (spec.localX < 2) spec.localX = 2;
  if (spec.groupsX < 1) spec.groupsX = 1;
  if (spec.dims == 1) {
    spec.localY = 1;
    spec.groupsY = 1;
    spec.revY = false;
    spec.swapXY = false;
  } else {
    if (spec.localY < 2) spec.localY = 2;
    if (spec.groupsY < 1) spec.groupsY = 1;
  }
  if (spec.pitch < spec.localX) spec.pitch = spec.localX;
  if (spec.dims == 2 && spec.offset > spec.pitch - spec.localX) {
    // Keep ly*pitch + lx + offset injective over the group; a colliding
    // flat index would make the staging itself order-dependent and the
    // kernel useless as a transform oracle.
    spec.offset = spec.pitch - spec.localX;
  }
  if (spec.swapXY && spec.localX != spec.localY) spec.swapXY = false;
  if (spec.family != KernelFamily::NonAffine) spec.nonAffineOnLoad = false;
  return spec;
}

KernelSpec randomSpec(std::uint64_t seed) {
  Rng rng(seed);
  KernelSpec spec;
  spec.seed = seed;
  switch (rng.below(10)) {
    case 0:
    case 1:
    case 2:
    case 3: spec.family = KernelFamily::AffineTile; break;
    case 4: spec.family = KernelFamily::ScaledPair; break;
    case 5: spec.family = KernelFamily::Race; break;
    case 6: spec.family = KernelFamily::NonAffine; break;
    case 7: spec.family = KernelFamily::Temporal; break;
    case 8: spec.family = KernelFamily::MixedKeepBarrier; break;
    default: spec.family = KernelFamily::TwoCacheBuffers; break;
  }
  const std::uint32_t sizes[] = {2, 4, 8, 16};
  spec.dims = rng.chance(70) ? 2 : 1;
  spec.localX = sizes[rng.below(4)];
  spec.localY = sizes[rng.below(3)];
  spec.groupsX = 1 + static_cast<std::uint32_t>(rng.below(3));
  spec.groupsY = 1 + static_cast<std::uint32_t>(rng.below(2));
  spec.pitch = spec.localX + static_cast<std::uint32_t>(rng.below(5));
  spec.offset = static_cast<std::uint32_t>(rng.below(4));
  spec.revX = rng.chance(40);
  spec.revY = rng.chance(40);
  spec.swapXY = rng.chance(30);
  spec.nonAffineOnLoad = rng.chance(50);
  return normalize(spec);
}

namespace {

/// "lx" or its in-group reversal "(W-1 - lx)".
std::string maybeRev(const std::string& id, std::uint32_t extent, bool rev) {
  if (!rev) return id;
  return cat("(", extent - 1, " - ", id, ")");
}

/// Render "expr + offset" without a trailing "+ 0".
std::string plusOffset(const std::string& expr, std::uint32_t offset) {
  if (offset == 0) return expr;
  return cat(expr, " + ", offset);
}

struct SourceParts {
  std::string locals;  // __local declarations
  std::string body;    // statements after the id queries
};

std::string assemble(const KernelSpec& spec, const SourceParts& parts) {
  std::ostringstream os;
  os << "__kernel void fuzz(__global float* out, __global float* in) {\n"
     << parts.locals << "  int lx = get_local_id(0);\n"
     << "  int gx = get_global_id(0);\n";
  if (spec.dims == 2) {
    os << "  int ly = get_local_id(1);\n"
       << "  int gy = get_global_id(1);\n";
  }
  os << parts.body << "}\n";
  return os.str();
}

}  // namespace

GeneratedKernel render(const KernelSpec& rawSpec) {
  const KernelSpec spec = normalize(rawSpec);
  GeneratedKernel k;
  k.spec = spec;
  k.kernelName = "fuzz";
  k.dims = spec.dims;
  k.local = {spec.localX, spec.localY, 1};
  k.global = {spec.localX * spec.groupsX, spec.localY * spec.groupsY, 1};
  const std::uint64_t totalItems =
      std::uint64_t{k.global[0]} * k.global[1];
  k.ioFloats = totalItems;

  const std::uint32_t w = spec.localX;
  const std::uint32_t h = spec.localY;
  const std::uint32_t p = spec.pitch;
  const std::uint32_t gw = k.global[0];

  // Flat global index and the LS/LL tile indices of the main buffer.
  const std::string flat =
      spec.dims == 2 ? cat("gy * ", gw, " + gx") : std::string("gx");
  std::string lsIdx;
  std::string llIdx;
  std::uint64_t tileElems = 0;
  if (spec.dims == 2) {
    lsIdx = plusOffset(cat("ly * ", p, " + lx"), spec.offset);
    // The LL reads a bijective remap of the group: optional transpose
    // (square groups only) with per-axis reversal.
    const std::string col =
        maybeRev(spec.swapXY ? "ly" : "lx", w, spec.revX);
    const std::string row =
        maybeRev(spec.swapXY ? "lx" : "ly", h, spec.revY);
    llIdx = plusOffset(cat(row, " * ", p, " + ", col), spec.offset);
    tileElems = std::uint64_t{p} * (h - 1) + (w - 1) + spec.offset + 1;
  } else {
    lsIdx = plusOffset("lx", spec.offset);
    llIdx = plusOffset(maybeRev("lx", w, spec.revX), spec.offset);
    tileElems = std::uint64_t{w} + spec.offset;
  }

  SourceParts parts;
  switch (spec.family) {
    case KernelFamily::AffineTile: {
      parts.locals = cat("  __local float tile[", tileElems, "];\n");
      parts.body = cat("  tile[", lsIdx, "] = in[", flat, "];\n",
                       "  barrier(CLK_LOCAL_MEM_FENCE);\n",
                       "  out[", flat, "] = tile[", llIdx, "];\n");
      k.mustTransform = true;
      k.expectBarrierRemoved = true;
      break;
    }
    case KernelFamily::ScaledPair: {
      // Two interleaved staging pairs at stride 2; each LL only solves
      // against its matching pair.
      k.ioFloats = totalItems * 2;
      parts.locals = cat("  __local float tile[", 2 * w, "];\n");
      const std::string rev = maybeRev("lx", w, spec.revX);
      parts.body = cat(
          "  tile[lx * 2] = in[gx * 2];\n",
          "  tile[lx * 2 + 1] = in[gx * 2 + 1];\n",
          "  barrier(CLK_LOCAL_MEM_FENCE);\n",
          "  out[gx * 2] = tile[", rev, " * 2 + 1];\n",
          "  out[gx * 2 + 1] = tile[", rev, " * 2];\n");
      k.mustTransform = true;
      k.expectBarrierRemoved = true;
      break;
    }
    case KernelFamily::Race: {
      // The LS index ignores lx while the staged global value depends on
      // gx: the linear system leaves dim 0 unsolved and Grover must
      // refuse (transforming would read the wrong work-item's element).
      const std::string idx =
          plusOffset(cat("ly * ", p), spec.offset);
      tileElems = std::uint64_t{p} * (h - 1) + spec.offset + 1;
      parts.locals = cat("  __local float tile[", tileElems, "];\n");
      parts.body = cat("  tile[", idx, "] = in[", flat, "];\n",
                       "  barrier(CLK_LOCAL_MEM_FENCE);\n",
                       "  out[", flat, "] = tile[", idx, "];\n");
      k.mustReject = true;
      break;
    }
    case KernelFamily::NonAffine: {
      // Quadratic index on one side; reads of unwritten slots hit the
      // zero-filled local arena, so the kernel is still deterministic.
      tileElems = std::uint64_t{w - 1} * (w - 1) + spec.offset + 1;
      const std::string quad = plusOffset("lx * lx", spec.offset);
      const std::string lin = plusOffset("lx", spec.offset);
      parts.locals = cat("  __local float tile[", tileElems, "];\n");
      parts.body = cat(
          "  tile[", spec.nonAffineOnLoad ? lin : quad, "] = in[gx];\n",
          "  barrier(CLK_LOCAL_MEM_FENCE);\n",
          "  out[gx] = tile[", spec.nonAffineOnLoad ? quad : lin, "];\n");
      k.mustReject = true;
      break;
    }
    case KernelFamily::Temporal: {
      // The stored value is computed, not a pure global load: no staging
      // pair exists and the buffer must be refused.
      parts.locals = cat("  __local float tile[", tileElems, "];\n");
      parts.body = cat("  tile[", lsIdx, "] = in[gx] * 0.5f + 1.0f;\n",
                       "  barrier(CLK_LOCAL_MEM_FENCE);\n",
                       "  out[gx] = tile[", llIdx, "];\n");
      k.mustReject = true;
      break;
    }
    case KernelFamily::MixedKeepBarrier: {
      // "tile" is a transformable cache; "scratch" holds computed values
      // read across work-items, so the barrier must survive even after
      // tile's staging is removed.
      parts.locals = cat("  __local float tile[", tileElems, "];\n",
                         "  __local float scratch[", w, "];\n");
      parts.body = cat(
          "  tile[", lsIdx, "] = in[gx];\n",
          "  scratch[lx] = in[gx] + 1.0f;\n",
          "  barrier(CLK_LOCAL_MEM_FENCE);\n",
          "  out[gx] = tile[", llIdx, "] + scratch[", w - 1, " - lx];\n");
      k.mustTransform = true;
      k.expectBarrierRemoved = false;
      break;
    }
    case KernelFamily::TwoCacheBuffers: {
      // Two independent staging buffers over disjoint halves of `in`;
      // both must be transformed and then the barrier removed.
      k.ioFloats = totalItems * 2;
      parts.locals = cat("  __local float tile[", tileElems, "];\n",
                         "  __local float pair[", w, "];\n");
      parts.body = cat(
          "  tile[", lsIdx, "] = in[gx];\n",
          "  pair[lx] = in[gx + ", totalItems, "];\n",
          "  barrier(CLK_LOCAL_MEM_FENCE);\n",
          "  out[gx] = tile[", llIdx, "] + pair[",
          maybeRev("lx", w, !spec.revX), "];\n");
      k.mustTransform = true;
      k.expectBarrierRemoved = true;
      break;
    }
  }
  k.source = assemble(spec, parts);
  return k;
}

GeneratedKernel generateKernel(std::uint64_t seed) {
  return render(randomSpec(seed));
}

std::vector<KernelSpec> shrinkCandidates(const KernelSpec& rawSpec) {
  const KernelSpec spec = normalize(rawSpec);
  std::vector<KernelSpec> out;
  auto push = [&](auto&& mutate) {
    KernelSpec s = spec;
    mutate(s);
    s = normalize(s);
    out.push_back(s);
  };
  if (spec.dims == 2 && spec.family == KernelFamily::AffineTile) {
    push([](KernelSpec& s) { s.dims = 1; });
  }
  if (spec.groupsX > 1) push([](KernelSpec& s) { s.groupsX = 1; });
  if (spec.groupsY > 1) push([](KernelSpec& s) { s.groupsY = 1; });
  if (spec.localX > 2) push([](KernelSpec& s) { s.localX /= 2; });
  if (spec.localY > 2) push([](KernelSpec& s) { s.localY /= 2; });
  if (spec.pitch > spec.localX) {
    push([](KernelSpec& s) { s.pitch = s.localX; });
  }
  if (spec.offset > 0) push([](KernelSpec& s) { s.offset = 0; });
  if (spec.swapXY) push([](KernelSpec& s) { s.swapXY = false; });
  if (spec.revX) push([](KernelSpec& s) { s.revX = false; });
  if (spec.revY) push([](KernelSpec& s) { s.revY = false; });
  return out;
}

std::vector<float> makeInput(const GeneratedKernel& kernel) {
  std::vector<float> input(kernel.ioFloats);
  Rng rng(kernel.spec.seed ^ 0x5eedf00dULL);
  for (float& v : input) {
    // Small multiples of 1/4: exactly representable, sums stay exact.
    v = static_cast<float>(rng.below(1024)) * 0.25F;
  }
  return input;
}

std::string GeneratedKernel::describe() const {
  std::ostringstream os;
  os << toString(spec.family) << " seed=" << spec.seed << " dims=" << dims
     << " local=" << local[0] << "x" << local[1] << " groups="
     << global[0] / local[0] << "x" << global[1] / local[1]
     << " pitch=" << spec.pitch << " offset=" << spec.offset
     << (spec.revX ? " revX" : "") << (spec.revY ? " revY" : "")
     << (spec.swapXY ? " swapXY" : "");
  return os.str();
}

}  // namespace grover::check
