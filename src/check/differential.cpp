#include "check/differential.h"

#include <cstring>
#include <exception>

#include "grover/grover_pass.h"
#include "grovercl/compiler.h"
#include "native/engine.h"
#include "rt/interpreter.h"
#include "rt/ref_interpreter.h"
#include "support/str.h"

namespace grover::check {

namespace {

rt::NDRange launchRange(const GeneratedKernel& kernel) {
  rt::NDRange range;
  range.dims = kernel.dims;
  range.global = kernel.global;
  range.local = kernel.local;
  range.validate();
  return range;
}

/// Execute `fn` over the kernel's range with the decoded interpreter.
std::vector<float> runDecoded(ir::Function& fn, const GeneratedKernel& k,
                              const std::vector<float>& input) {
  rt::Buffer in = rt::Buffer::fromVector(input);
  rt::Buffer out = rt::Buffer::zeros<float>(k.ioFloats);
  rt::Launch launch(fn, launchRange(k),
                    {rt::KernelArg::buffer(&out), rt::KernelArg::buffer(&in)});
  launch.run(1);
  return out.toVector<float>();
}

/// Execute `fn` with the tree-walking reference oracle, group by group in
/// dense order (the same serial order the decoded path replays).
std::vector<float> runReference(ir::Function& fn, const GeneratedKernel& k,
                                const std::vector<float>& input) {
  rt::Buffer in = rt::Buffer::fromVector(input);
  rt::Buffer out = rt::Buffer::zeros<float>(k.ioFloats);
  const rt::NDRange range = launchRange(k);
  rt::KernelImage image(
      fn, range,
      {rt::KernelArg::buffer(&out), rt::KernelArg::buffer(&in)});
  rt::ReferenceExecutor exec(image);
  const auto groups = range.numGroups();
  for (std::uint32_t gz = 0; gz < groups[2]; ++gz) {
    for (std::uint32_t gy = 0; gy < groups[1]; ++gy) {
      for (std::uint32_t gx = 0; gx < groups[0]; ++gx) {
        exec.runGroup({gx, gy, gz});
      }
    }
  }
  return out.toVector<float>();
}

/// Execute `fn` through the native backend. Returns false + reason when
/// the kernel cannot go native (no toolchain, lowering refusal); throws
/// for runtime faults, like the interpreter paths.
bool runNative(ir::Function& fn, const GeneratedKernel& k,
               const std::vector<float>& input, std::vector<float>& out,
               std::string& reason) {
  rt::Buffer in = rt::Buffer::fromVector(input);
  rt::Buffer outBuf = rt::Buffer::zeros<float>(k.ioFloats);
  if (!native::executeNatively(
          fn, launchRange(k),
          {rt::KernelArg::buffer(&outBuf), rt::KernelArg::buffer(&in)},
          reason)) {
    return false;
  }
  out = outBuf.toVector<float>();
  return true;
}

/// Index of the first bit-difference, or -1 when equal.
std::ptrdiff_t firstDiff(const std::vector<float>& a,
                         const std::vector<float>& b) {
  if (a.size() != b.size()) return 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(float)) != 0) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

std::string diffMessage(const GeneratedKernel& k, const std::vector<float>& a,
                        const std::vector<float>& b, std::ptrdiff_t at) {
  return cat(k.describe(), ": outputs differ at [", at, "]: ",
             a[static_cast<std::size_t>(at)], " vs ",
             b[static_cast<std::size_t>(at)]);
}

}  // namespace

DiffOutcome runDifferential(const GeneratedKernel& kernel, bool validate,
                            bool nativeLeg) {
  Program original;
  Program transformed;
  ir::Function* origFn = nullptr;
  ir::Function* transFn = nullptr;
  try {
    original = compile(kernel.source);
    transformed = compile(kernel.source);
    origFn = original.kernel(kernel.kernelName);
    transFn = transformed.kernel(kernel.kernelName);
    if (origFn == nullptr || transFn == nullptr) {
      return DiffOutcome::fail("compile", "kernel 'fuzz' not found");
    }
  } catch (const std::exception& e) {
    return DiffOutcome::fail("compile",
                             cat(kernel.describe(), ": ", e.what()));
  }

  DiffOutcome outcome;
  grv::GroverResult result;
  try {
    grv::GroverOptions options;
    options.validate = validate;
    result = grv::runGrover(*transFn, options);
  } catch (const std::exception& e) {
    return DiffOutcome::fail("validator",
                             cat(kernel.describe(), ": ", e.what()));
  }
  outcome.transformed = result.anyTransformed;
  outcome.barriersRemoved = result.barriersRemoved;

  if (kernel.mustTransform) {
    const grv::BufferResult* tile = nullptr;
    for (const grv::BufferResult& br : result.buffers) {
      if (br.bufferName == "tile") tile = &br;
    }
    if (tile == nullptr || !tile->transformed) {
      return DiffOutcome::fail(
          "expectation",
          cat(kernel.describe(), ": buffer 'tile' must be transformed but "
                                 "was refused (",
              tile == nullptr ? "no candidate" : tile->reason.c_str(), ")"));
    }
  }
  if (kernel.mustReject && result.anyTransformed) {
    return DiffOutcome::fail(
        "expectation",
        cat(kernel.describe(),
            ": kernel must be rejected but a buffer was transformed"));
  }
  if (kernel.expectBarrierRemoved.has_value() &&
      result.barriersRemoved != *kernel.expectBarrierRemoved) {
    return DiffOutcome::fail(
        "expectation",
        cat(kernel.describe(), ": expected barriersRemoved=",
            *kernel.expectBarrierRemoved, ", got ", result.barriersRemoved));
  }

  const std::vector<float> input = makeInput(kernel);
  std::vector<float> decOrig, refOrig, decTrans, refTrans;
  try {
    decOrig = runDecoded(*origFn, kernel, input);
    refOrig = runReference(*origFn, kernel, input);
    decTrans = runDecoded(*transFn, kernel, input);
    refTrans = runReference(*transFn, kernel, input);
  } catch (const std::exception& e) {
    return DiffOutcome::fail("run", cat(kernel.describe(), ": ", e.what()));
  }

  if (std::ptrdiff_t at = firstDiff(decOrig, refOrig); at >= 0) {
    return DiffOutcome::fail(
        "oracle", cat("original kernel: ",
                      diffMessage(kernel, decOrig, refOrig, at)));
  }
  if (std::ptrdiff_t at = firstDiff(decTrans, refTrans); at >= 0) {
    return DiffOutcome::fail(
        "oracle", cat("transformed kernel: ",
                      diffMessage(kernel, decTrans, refTrans, at)));
  }
  if (std::ptrdiff_t at = firstDiff(decOrig, decTrans); at >= 0) {
    return DiffOutcome::fail("mismatch",
                             diffMessage(kernel, decOrig, decTrans, at));
  }

  if (nativeLeg) {
    std::vector<float> natOrig, natTrans;
    std::string reason;
    bool ran = false;
    try {
      ran = runNative(*origFn, kernel, input, natOrig, reason) &&
            runNative(*transFn, kernel, input, natTrans, reason);
    } catch (const std::exception& e) {
      return DiffOutcome::fail("native",
                               cat(kernel.describe(), ": ", e.what()));
    }
    if (!ran) {
      outcome.nativeSkipReason = reason;
      return outcome;
    }
    if (std::ptrdiff_t at = firstDiff(natOrig, decOrig); at >= 0) {
      return DiffOutcome::fail(
          "native", cat("original kernel: ",
                        diffMessage(kernel, natOrig, decOrig, at)));
    }
    if (std::ptrdiff_t at = firstDiff(natTrans, decTrans); at >= 0) {
      return DiffOutcome::fail(
          "native", cat("transformed kernel: ",
                        diffMessage(kernel, natTrans, decTrans, at)));
    }
    outcome.nativeChecked = true;
  }
  return outcome;
}

}  // namespace grover::check
