// Randomized staging-kernel generator for the differential fuzzer. Each
// seed deterministically produces one OpenCL C kernel from a small family
// catalogue: affine software-cache kernels Grover must transform, plus
// near-miss variants (non-affine, under-determined, temporal, mixed) it
// must reject. Every kernel carries its launch shape and the expected
// transform outcome so the harness can flag both miscompiles and missed
// or spurious transformations.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace grover::check {

/// splitmix64: tiny, deterministic, and good enough for kernel shapes.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  /// Uniform-ish in [0, n); n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }
  bool chance(unsigned percent) { return below(100) < percent; }

 private:
  std::uint64_t state_;
};

enum class KernelFamily {
  AffineTile,       // per-dim affine staging (reversal/swap/pitch/offset)
  ScaledPair,       // two interleaved staging pairs at stride 2
  Race,             // LS index ignores a dim the GL depends on -> reject
  NonAffine,        // quadratic index -> reject
  Temporal,         // computed store (not a staging pair) -> reject
  MixedKeepBarrier, // cache buffer + temporal buffer: barrier must stay
  TwoCacheBuffers,  // two independent cache buffers, both transformed
};

[[nodiscard]] const char* toString(KernelFamily family);

/// The shrinkable parameter vector one kernel is rendered from.
struct KernelSpec {
  KernelFamily family = KernelFamily::AffineTile;
  std::uint64_t seed = 0;       // drives input data, kept across shrinking
  unsigned dims = 1;            // 1 or 2
  std::uint32_t localX = 8;
  std::uint32_t localY = 1;     // 1 when dims == 1
  std::uint32_t groupsX = 1;
  std::uint32_t groupsY = 1;
  std::uint32_t pitch = 8;      // flat-tile row pitch, >= localX (dims == 2)
  std::uint32_t offset = 0;     // constant added to every tile index
  bool revX = false;            // reverse the x index between LS and LL
  bool revY = false;
  bool swapXY = false;          // transpose (requires localX == localY)
  bool nonAffineOnLoad = false; // NonAffine only: which side is quadratic
};

/// A rendered kernel plus launch shape and expectations.
struct GeneratedKernel {
  KernelSpec spec;
  std::string kernelName;
  std::string source;
  unsigned dims = 1;
  std::array<std::uint32_t, 3> global{1, 1, 1};
  std::array<std::uint32_t, 3> local{1, 1, 1};
  std::size_t ioFloats = 0;     // element count of the in/out buffers

  bool mustTransform = false;   // buffer "tile" must be transformed
  bool mustReject = false;      // no buffer may be transformed
  /// When set, GroverResult::barriersRemoved must equal this.
  std::optional<bool> expectBarrierRemoved;

  [[nodiscard]] std::string describe() const;
};

/// Clamp a spec to the invariants render() relies on (pitch >= localX,
/// swap only on square 2-D groups, per-family dims). Idempotent.
[[nodiscard]] KernelSpec normalize(KernelSpec spec);

[[nodiscard]] KernelSpec randomSpec(std::uint64_t seed);
[[nodiscard]] GeneratedKernel render(const KernelSpec& spec);

/// generateKernel(seed) == render(randomSpec(seed)).
[[nodiscard]] GeneratedKernel generateKernel(std::uint64_t seed);

/// One-mutation-smaller variants of `spec` for greedy shrinking, already
/// normalized. Order is from most to least aggressive.
[[nodiscard]] std::vector<KernelSpec> shrinkCandidates(const KernelSpec& spec);

/// Deterministic input data for a kernel (derived from spec.seed).
[[nodiscard]] std::vector<float> makeInput(const GeneratedKernel& kernel);

}  // namespace grover::check
