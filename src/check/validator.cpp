#include "check/validator.h"

#include <sstream>
#include <unordered_set>
#include <vector>

#include "analysis/dominators.h"
#include "ir/casting.h"
#include "ir/verifier.h"
#include "passes/barrier_elim.h"
#include "support/diagnostics.h"

namespace grover::check {

using namespace ir;

bool ValidationReport::has(const std::string& check) const {
  for (const ValidationIssue& issue : issues) {
    if (issue.check == check) return true;
  }
  return false;
}

std::string ValidationReport::str() const {
  if (issues.empty()) return "validation OK";
  std::ostringstream os;
  os << issues.size() << " validation issue(s):";
  for (const ValidationIssue& issue : issues) {
    os << "\n  [" << issue.check << "] " << issue.message;
  }
  return os.str();
}

namespace {

/// The local alloca named `name`, or null once it has been swept.
AllocaInst* findLocalAlloca(Function& fn, const std::string& name) {
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : *bb) {
      if (auto* alloca = dyn_cast<AllocaInst>(inst.get())) {
        if (alloca->space() == AddrSpace::Local && alloca->name() == name) {
          return alloca;
        }
      }
    }
  }
  return nullptr;
}

void checkVerifier(Function& fn, ValidationReport& report) {
  try {
    verifyFunction(fn);
  } catch (const GroverError& e) {
    report.issues.push_back({"verifier", e.what()});
  }
}

void checkStaleLocalAccesses(Function& fn, const grv::GroverResult& result,
                             ValidationReport& report) {
  for (const grv::BufferResult& br : result.buffers) {
    if (!br.transformed) continue;
    // A fully swept buffer is gone from the IR; one that survives cleanup
    // (e.g. with cleanup disabled) may keep dead address arithmetic, but
    // no load or store may still reach it.
    AllocaInst* alloca = findLocalAlloca(fn, br.bufferName);
    if (alloca != nullptr && passes::pointerIsAccessed(alloca)) {
      report.issues.push_back(
          {"stale-local-access",
           "transformed buffer '" + br.bufferName +
               "' still has loads or stores reaching it"});
    }
  }
}

void checkBarrierSafety(Function& fn, const grv::GroverResult& result,
                        ValidationReport& report) {
  if (!result.barriersRemoved) return;
  // Barriers may only disappear when the kernel performs no local-memory
  // traffic at all: a second, untransformed buffer with a live
  // store->barrier->load chain would race without them.
  if (passes::usesLocalMemory(fn)) {
    report.issues.push_back(
        {"barrier-safety",
         "barriers were removed but the kernel still accesses local "
         "memory"});
  }
}

/// Collect the instruction-operand closure feeding `root` (the address
/// arithmetic an nGL consumes), including `root` itself.
std::vector<const Instruction*> operandClosure(const Instruction* root) {
  std::vector<const Instruction*> order;
  std::unordered_set<const Instruction*> seen;
  std::vector<const Instruction*> work{root};
  seen.insert(root);
  while (!work.empty()) {
    const Instruction* inst = work.back();
    work.pop_back();
    order.push_back(inst);
    for (unsigned i = 0; i < inst->numOperands(); ++i) {
      if (const auto* op = dyn_cast<Instruction>(inst->operand(i))) {
        if (seen.insert(op).second) work.push_back(op);
      }
    }
  }
  return order;
}

void checkNglDominance(Function& fn, ValidationReport& report) {
  analysis::DominatorTree dt(fn);
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : *bb) {
      const auto* load = dyn_cast<LoadInst>(inst.get());
      if (load == nullptr || load->name().rfind("ngl", 0) != 0) continue;
      for (const Instruction* user : operandClosure(load)) {
        // Phi incoming values are used on the predecessor edge, not at the
        // phi itself; the verifier checks those separately.
        if (isa<PhiInst>(user)) continue;
        for (unsigned i = 0; i < user->numOperands(); ++i) {
          const auto* def = dyn_cast<Instruction>(user->operand(i));
          if (def == nullptr || !dt.valueDominates(def, user)) {
            if (def != nullptr) {
              report.issues.push_back(
                  {"ngl-dominance",
                   "'" + load->name() + "' consumes '" + def->name() +
                       "' which does not dominate its use in '" +
                       user->name() + "'"});
            }
          }
        }
      }
    }
  }
}

}  // namespace

ValidationReport validateTransform(ir::Function& fn,
                                   const grv::GroverResult& result) {
  ValidationReport report;
  checkVerifier(fn, report);
  checkStaleLocalAccesses(fn, result, report);
  checkBarrierSafety(fn, result, report);
  checkNglDominance(fn, report);
  return report;
}

ValidationReport validateTransform(ir::Function& fn,
                                   const grv::GroverResult& result,
                                   const sym::ProveOptions& prove,
                                   sym::SymbolicReport* symOut) {
  ValidationReport report = validateTransform(fn, result);
  sym::SymbolicReport symbolic = sym::proveRaceFreedom(fn, prove);
  if (symbolic.status == sym::ProofStatus::Refuted) {
    std::string message = "kernel '" + fn.name() + "' has a provable race";
    if (symbolic.witness) message += ": " + symbolic.witness->str();
    report.issues.push_back({"symbolic-race", std::move(message)});
  }
  if (symOut != nullptr) *symOut = std::move(symbolic);
  return report;
}

void validateTransformOrThrow(ir::Function& fn,
                              const grv::GroverResult& result) {
  ValidationReport report = validateTransform(fn, result);
  if (!report.ok()) {
    throw GroverError("post-Grover validation failed for kernel '" +
                      fn.name() + "': " + report.str());
  }
}

}  // namespace grover::check
