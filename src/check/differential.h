// Differential execution of one generated kernel: compile it twice, run
// Grover on one copy, execute both copies on the decoded interpreter AND
// the tree-walking reference oracle, and require all four outputs to be
// bit-identical. Also cross-checks the transform outcome against the
// generator's expectation and (optionally) the semantic validator.
#pragma once

#include <string>
#include <vector>

#include "check/kernel_gen.h"

namespace grover::check {

/// Outcome of one differential run. On failure `phase` names the stage:
///   "compile"     - the generated source failed to compile (generator bug)
///   "validator"   - runGrover's validation threw
///   "expectation" - transform outcome contradicts the family's contract
///   "run"         - an execution threw (OOB access, divergence, ...)
///   "oracle"      - decoded and reference interpreters disagree
///   "mismatch"    - original and transformed kernels produce different
///                   output (a miscompile)
///   "native"      - the JIT-compiled native execution diverges from the
///                   decoded interpreter (a native-backend miscompile)
struct DiffOutcome {
  bool ok = true;
  std::string phase;
  std::string message;
  bool transformed = false;      // what runGrover actually did
  bool barriersRemoved = false;
  /// Native-leg state (only meaningful when the leg was requested):
  /// checked == true means both versions ran natively and matched the
  /// decoded outputs bit-exactly; otherwise nativeSkipReason says why the
  /// leg was skipped (no toolchain, lowering refusal, ...).
  bool nativeChecked = false;
  std::string nativeSkipReason;

  static DiffOutcome fail(std::string phase, std::string message) {
    DiffOutcome o;
    o.ok = false;
    o.phase = std::move(phase);
    o.message = std::move(message);
    return o;
  }
};

/// Run the full differential check for one kernel. `validate` turns on
/// GroverOptions::validate (IR verification per stage + the semantic
/// validator). `nativeLeg` additionally executes both versions through
/// the native backend and requires bit-identity with the decoded
/// interpreter — skipped gracefully (nativeSkipReason) when the backend
/// is unavailable. Deterministic: same kernel -> same outcome.
[[nodiscard]] DiffOutcome runDifferential(const GeneratedKernel& kernel,
                                          bool validate,
                                          bool nativeLeg = false);

}  // namespace grover::check
