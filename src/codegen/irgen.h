// AST → IR lowering. Produces Clang -O0-style code: every variable is an
// alloca, every use loads, every definition stores. Mem2Reg then rebuilds
// SSA — matching the pipeline the paper's pass runs on (Clang → SPIR).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "clc/ast.h"
#include "ir/builder.h"
#include "ir/module.h"
#include "support/diagnostics.h"

namespace grover::codegen {

/// Lowers type-checked kernels to IR. Requires a successful Sema pass
/// (every Expr::type populated); violations throw GroverError.
class IRGen {
 public:
  IRGen(ir::Module& module, DiagnosticEngine& diags)
      : module_(module), ctx_(module.context()), builder_(ctx_),
        diags_(diags) {}

  /// Lower every kernel in the translation unit into the module.
  void emit(const clc::TranslationUnit& tu);

  /// Lower one kernel; returns the new function.
  ir::Function* emitKernel(const clc::KernelDecl& kernel);

 private:
  struct VarSlot {
    ir::Value* address = nullptr;  // alloca (or null for direct values)
    ir::Type* valueType = nullptr;
    std::vector<std::uint64_t> arrayDims;  // multi-dim shape, empty = scalar
    bool isPointerParam = false;
  };
  using Scope = std::unordered_map<std::string, VarSlot>;

  // statements
  void emitStmt(const clc::Stmt& stmt);
  void emitBlock(const clc::BlockStmt& block);
  void emitDecl(const clc::DeclStmt& decl);
  void emitAssign(const clc::AssignStmt& assign);
  void emitIf(const clc::IfStmt& stmt);
  void emitFor(const clc::ForStmt& stmt);
  void emitWhile(const clc::WhileStmt& stmt);
  void emitDoWhile(const clc::DoWhileStmt& stmt);

  // expressions
  ir::Value* emitExpr(const clc::Expr& expr);
  ir::Value* emitCall(const clc::CallExpr& call);
  /// Address of an lvalue (VarRef scalar / Index). Member lvalues are
  /// handled by emitAssign directly.
  ir::Value* emitLValueAddress(const clc::Expr& expr);
  /// Convert `v` to `to`, inserting casts as needed.
  ir::Value* convert(ir::Value* v, ir::Type* to);
  /// Convert to i1 for branch conditions.
  ir::Value* toBool(ir::Value* v);
  /// Broadcast a scalar into a vector type.
  ir::Value* broadcast(ir::Value* scalar, ir::Type* vecTy);

  // scope/block helpers
  void pushScope() { scopes_.emplace_back(); }
  void popScope() { scopes_.pop_back(); }
  [[nodiscard]] const VarSlot* lookup(const std::string& name) const;
  ir::AllocaInst* createEntryAlloca(ir::Type* elem, std::uint64_t count,
                                    ir::AddrSpace space,
                                    const std::string& name);
  ir::BasicBlock* newBlock(const std::string& name);
  /// True if the current block already ends in a terminator.
  [[nodiscard]] bool blockTerminated() const;
  void branchTo(ir::BasicBlock* dest);
  /// Remove blocks unreachable from entry (created after return).
  void pruneUnreachable(ir::Function& fn);

  ir::Module& module_;
  ir::Context& ctx_;
  ir::IRBuilder builder_;
  DiagnosticEngine& diags_;

  ir::Function* fn_ = nullptr;
  std::vector<Scope> scopes_;
  std::vector<ir::BasicBlock*> break_targets_;
  std::vector<ir::BasicBlock*> continue_targets_;
  unsigned block_counter_ = 0;
};

}  // namespace grover::codegen
