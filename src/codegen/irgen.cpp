#include "codegen/irgen.h"

#include <algorithm>
#include <set>

#include "clc/sema.h"
#include "ir/casting.h"
#include "support/str.h"

namespace grover::codegen {

using namespace ir;

void IRGen::emit(const clc::TranslationUnit& tu) {
  for (const auto& kernel : tu.kernels) emitKernel(*kernel);
}

ir::Function* IRGen::emitKernel(const clc::KernelDecl& kernel) {
  Type* retTy = clc::resolveValueType(ctx_, kernel.returnSpec);
  fn_ = module_.addFunction(kernel.name, retTy, kernel.isKernel);
  scopes_.clear();
  break_targets_.clear();
  continue_targets_.clear();
  block_counter_ = 0;

  BasicBlock* entry = fn_->addBlock("entry");
  builder_.setInsertPoint(entry);
  pushScope();

  for (const clc::ParamDecl& param : kernel.params) {
    Type* declared = clc::resolveType(ctx_, param.spec);
    Argument* arg = fn_->addArgument(declared, param.name);
    VarSlot slot;
    if (param.spec.isPointer) {
      slot.isPointerParam = true;
      slot.valueType = declared->element();
      slot.address = nullptr;  // pointer params are used directly
      // Record the argument itself under the name.
      slot.address = arg;
    } else {
      // Value params get a private shadow slot so they stay assignable;
      // Mem2Reg folds it away when the kernel never writes the parameter.
      slot.valueType = declared;
      AllocaInst* shadow = createEntryAlloca(declared, 1, AddrSpace::Private,
                                             param.name + ".addr");
      builder_.createStore(arg, shadow);
      slot.address = shadow;
    }
    scopes_.back().emplace(param.name, slot);
  }

  emitBlock(*kernel.body);
  if (!blockTerminated()) builder_.createRetVoid();
  popScope();
  pruneUnreachable(*fn_);
  fn_->renumber();
  return fn_;
}

const IRGen::VarSlot* IRGen::lookup(const std::string& name) const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->find(name);
    if (found != it->end()) return &found->second;
  }
  throw GroverError("IRGen: unknown name '" + name + "' (Sema missed it)");
}

ir::AllocaInst* IRGen::createEntryAlloca(Type* elem, std::uint64_t count,
                                         AddrSpace space,
                                         const std::string& name) {
  BasicBlock* entry = fn_->entry();
  // Insert after any existing leading allocas, before other instructions.
  Instruction* firstNonAlloca = nullptr;
  for (const auto& inst : *entry) {
    if (!isa<AllocaInst>(inst.get())) {
      firstNonAlloca = inst.get();
      break;
    }
  }
  auto alloca = std::make_unique<AllocaInst>(ctx_, elem, count, space);
  alloca->setName(name);
  auto* raw = static_cast<AllocaInst*>(
      entry->insertBefore(firstNonAlloca, std::move(alloca)));
  return raw;
}

ir::BasicBlock* IRGen::newBlock(const std::string& name) {
  return fn_->addBlock(cat(name, ".", block_counter_++));
}

bool IRGen::blockTerminated() const {
  BasicBlock* bb = builder_.insertBlock();
  return bb->terminator() != nullptr;
}

void IRGen::branchTo(ir::BasicBlock* dest) {
  if (!blockTerminated()) builder_.createBr(dest);
}

void IRGen::pruneUnreachable(ir::Function& fn) {
  std::set<BasicBlock*> reachable;
  std::vector<BasicBlock*> worklist{fn.entry()};
  while (!worklist.empty()) {
    BasicBlock* bb = worklist.back();
    worklist.pop_back();
    if (!reachable.insert(bb).second) continue;
    for (BasicBlock* succ : bb->successors()) worklist.push_back(succ);
  }
  // Sever dead blocks' outgoing edges first so cycles among unreachable
  // blocks don't pin each other alive, then erase.
  for (BasicBlock* bb : fn.blockList()) {
    if (reachable.count(bb) != 0) continue;
    if (Instruction* term = bb->terminator()) term->dropAllOperands();
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (BasicBlock* bb : fn.blockList()) {
      if (reachable.count(bb) != 0 || bb->hasUses()) continue;
      fn.eraseBlock(bb);
      changed = true;
    }
  }
}

// --- statements --------------------------------------------------------------

void IRGen::emitBlock(const clc::BlockStmt& block) {
  pushScope();
  for (const auto& stmt : block.stmts) {
    if (blockTerminated()) break;  // code after return is unreachable
    emitStmt(*stmt);
  }
  popScope();
}

void IRGen::emitStmt(const clc::Stmt& stmt) {
  using clc::StmtKind;
  switch (stmt.kind) {
    case StmtKind::Block:
      emitBlock(static_cast<const clc::BlockStmt&>(stmt));
      return;
    case StmtKind::Decl:
      emitDecl(static_cast<const clc::DeclStmt&>(stmt));
      return;
    case StmtKind::ExprStmt:
      emitExpr(*static_cast<const clc::ExprStmt&>(stmt).expr);
      return;
    case StmtKind::Assign:
      emitAssign(static_cast<const clc::AssignStmt&>(stmt));
      return;
    case StmtKind::IncDec: {
      const auto& id = static_cast<const clc::IncDecStmt&>(stmt);
      Value* addr = emitLValueAddress(*id.target);
      Value* old = builder_.createLoad(addr);
      Value* one = ctx_.getInt(old->type(), 1);
      Value* updated = builder_.createBinary(
          id.isIncrement ? BinaryOp::Add : BinaryOp::Sub, old, one);
      builder_.createStore(updated, addr);
      return;
    }
    case StmtKind::If:
      emitIf(static_cast<const clc::IfStmt&>(stmt));
      return;
    case StmtKind::For:
      emitFor(static_cast<const clc::ForStmt&>(stmt));
      return;
    case StmtKind::While:
      emitWhile(static_cast<const clc::WhileStmt&>(stmt));
      return;
    case StmtKind::DoWhile:
      emitDoWhile(static_cast<const clc::DoWhileStmt&>(stmt));
      return;
    case StmtKind::Return: {
      const auto& rs = static_cast<const clc::ReturnStmt&>(stmt);
      if (rs.value) {
        builder_.createRet(emitExpr(*rs.value));
      } else {
        builder_.createRetVoid();
      }
      builder_.setInsertPoint(newBlock("postret"));
      return;
    }
    case StmtKind::Break:
      builder_.createBr(break_targets_.back());
      builder_.setInsertPoint(newBlock("postbreak"));
      return;
    case StmtKind::Continue:
      builder_.createBr(continue_targets_.back());
      builder_.setInsertPoint(newBlock("postcontinue"));
      return;
  }
}

void IRGen::emitDecl(const clc::DeclStmt& decl) {
  VarSlot slot;
  slot.valueType = clc::resolveValueType(ctx_, decl.spec);
  if (!decl.arrayDims.empty()) {
    std::uint64_t total = 1;
    for (const auto& dim : decl.arrayDims) {
      const std::int64_t n = clc::evalConstIntExpr(*dim);
      if (n <= 0) throw GroverError("IRGen: non-constant array dimension");
      slot.arrayDims.push_back(static_cast<std::uint64_t>(n));
      total *= static_cast<std::uint64_t>(n);
    }
    auto* alloca =
        createEntryAlloca(slot.valueType, total, decl.spec.space, decl.name);
    alloca->setArrayDims(slot.arrayDims);
    slot.address = alloca;
  } else {
    slot.address =
        createEntryAlloca(slot.valueType, 1, AddrSpace::Private, decl.name);
    if (decl.init) {
      Value* init = convert(emitExpr(*decl.init), slot.valueType);
      builder_.createStore(init, slot.address);
    }
  }
  scopes_.back().insert_or_assign(decl.name, slot);
}

void IRGen::emitAssign(const clc::AssignStmt& assign) {
  using clc::AssignOp;
  // Vector-lane store: lhs is member access (v.x = e).
  if (assign.lhs->kind == clc::ExprKind::Member) {
    const auto& mem = static_cast<const clc::MemberExpr&>(*assign.lhs);
    Value* baseAddr = emitLValueAddress(*mem.base);
    Value* vec = builder_.createLoad(baseAddr);
    static const std::string lanes = "xyzw";
    const auto lane = static_cast<std::int32_t>(lanes.find(mem.member[0]));
    Value* laneIdx = ctx_.getInt32(lane);
    Value* current = builder_.createExtractElement(vec, laneIdx);
    Value* rhs = convert(emitExpr(*assign.rhs), current->type());
    Value* updated = rhs;
    if (assign.op != AssignOp::Assign) {
      const bool isFP = current->type()->isFloatingPoint();
      BinaryOp op = BinaryOp::Add;
      switch (assign.op) {
        case AssignOp::AddAssign: op = isFP ? BinaryOp::FAdd : BinaryOp::Add; break;
        case AssignOp::SubAssign: op = isFP ? BinaryOp::FSub : BinaryOp::Sub; break;
        case AssignOp::MulAssign: op = isFP ? BinaryOp::FMul : BinaryOp::Mul; break;
        case AssignOp::DivAssign: op = isFP ? BinaryOp::FDiv : BinaryOp::SDiv; break;
        default: break;
      }
      updated = builder_.createBinary(op, current, rhs);
    }
    Value* newVec = builder_.createInsertElement(vec, updated, laneIdx);
    builder_.createStore(newVec, baseAddr);
    return;
  }

  Value* addr = emitLValueAddress(*assign.lhs);
  Type* valueTy = addr->type()->element();
  Value* rhs = emitExpr(*assign.rhs);
  if (assign.op == AssignOp::Assign) {
    builder_.createStore(convert(rhs, valueTy), addr);
    return;
  }
  Value* current = builder_.createLoad(addr);
  Type* common = clc::commonNumericType(ctx_, current->type(), rhs->type());
  if (common == nullptr) common = valueTy;
  Value* l = convert(current, common);
  Value* r = convert(rhs, common);
  const bool isFP = common->isFloatingPoint() ||
                    (common->isVector() && common->element()->isFloatingPoint());
  BinaryOp op = BinaryOp::Add;
  switch (assign.op) {
    case AssignOp::AddAssign: op = isFP ? BinaryOp::FAdd : BinaryOp::Add; break;
    case AssignOp::SubAssign: op = isFP ? BinaryOp::FSub : BinaryOp::Sub; break;
    case AssignOp::MulAssign: op = isFP ? BinaryOp::FMul : BinaryOp::Mul; break;
    case AssignOp::DivAssign: op = isFP ? BinaryOp::FDiv : BinaryOp::SDiv; break;
    default: break;
  }
  Value* result = builder_.createBinary(op, l, r);
  builder_.createStore(convert(result, valueTy), addr);
}

void IRGen::emitIf(const clc::IfStmt& stmt) {
  Value* cond = toBool(emitExpr(*stmt.cond));
  BasicBlock* thenBB = newBlock("if.then");
  BasicBlock* mergeBB = newBlock("if.end");
  BasicBlock* elseBB = stmt.elseBody ? newBlock("if.else") : mergeBB;
  builder_.createCondBr(cond, thenBB, elseBB);

  builder_.setInsertPoint(thenBB);
  emitStmt(*stmt.thenBody);
  branchTo(mergeBB);

  if (stmt.elseBody) {
    builder_.setInsertPoint(elseBB);
    emitStmt(*stmt.elseBody);
    branchTo(mergeBB);
  }
  builder_.setInsertPoint(mergeBB);
}

void IRGen::emitFor(const clc::ForStmt& stmt) {
  pushScope();
  if (stmt.init) emitStmt(*stmt.init);
  BasicBlock* condBB = newBlock("for.cond");
  BasicBlock* bodyBB = newBlock("for.body");
  BasicBlock* stepBB = newBlock("for.step");
  BasicBlock* endBB = newBlock("for.end");
  branchTo(condBB);

  builder_.setInsertPoint(condBB);
  if (stmt.cond) {
    builder_.createCondBr(toBool(emitExpr(*stmt.cond)), bodyBB, endBB);
  } else {
    builder_.createBr(bodyBB);
  }

  builder_.setInsertPoint(bodyBB);
  break_targets_.push_back(endBB);
  continue_targets_.push_back(stepBB);
  emitStmt(*stmt.body);
  break_targets_.pop_back();
  continue_targets_.pop_back();
  branchTo(stepBB);

  builder_.setInsertPoint(stepBB);
  if (stmt.step) emitStmt(*stmt.step);
  branchTo(condBB);

  builder_.setInsertPoint(endBB);
  popScope();
}

void IRGen::emitWhile(const clc::WhileStmt& stmt) {
  BasicBlock* condBB = newBlock("while.cond");
  BasicBlock* bodyBB = newBlock("while.body");
  BasicBlock* endBB = newBlock("while.end");
  branchTo(condBB);

  builder_.setInsertPoint(condBB);
  builder_.createCondBr(toBool(emitExpr(*stmt.cond)), bodyBB, endBB);

  builder_.setInsertPoint(bodyBB);
  break_targets_.push_back(endBB);
  continue_targets_.push_back(condBB);
  emitStmt(*stmt.body);
  break_targets_.pop_back();
  continue_targets_.pop_back();
  branchTo(condBB);

  builder_.setInsertPoint(endBB);
}

void IRGen::emitDoWhile(const clc::DoWhileStmt& stmt) {
  BasicBlock* bodyBB = newBlock("do.body");
  BasicBlock* condBB = newBlock("do.cond");
  BasicBlock* endBB = newBlock("do.end");
  branchTo(bodyBB);

  builder_.setInsertPoint(bodyBB);
  break_targets_.push_back(endBB);
  continue_targets_.push_back(condBB);
  emitStmt(*stmt.body);
  break_targets_.pop_back();
  continue_targets_.pop_back();
  branchTo(condBB);

  builder_.setInsertPoint(condBB);
  builder_.createCondBr(toBool(emitExpr(*stmt.cond)), bodyBB, endBB);

  builder_.setInsertPoint(endBB);
}

// --- expressions --------------------------------------------------------------

ir::Value* IRGen::convert(Value* v, Type* to) {
  Type* from = v->type();
  if (from == to) return v;
  if (to->isVector()) {
    if (from->isVector()) {
      if (from == to) return v;
      throw GroverError("IRGen: vector-to-vector conversion unsupported");
    }
    return broadcast(convert(v, to->element()), to);
  }
  if (from->isBool()) {
    if (to->isInteger()) return builder_.createCast(CastOp::ZExt, v, to);
    if (to->isFloatingPoint()) {
      Value* asInt = builder_.createCast(CastOp::ZExt, v, ctx_.int32Ty());
      return builder_.createCast(CastOp::SIToFP, asInt, to);
    }
  }
  if (from->isInteger() && to->isBool()) {
    return builder_.createICmp(CmpPred::NE, v, ctx_.getInt(from, 0));
  }
  if (from->isInteger() && to->isInteger()) {
    const bool widen = from->sizeInBytes() < to->sizeInBytes();
    return builder_.createCast(widen ? CastOp::SExt : CastOp::Trunc, v, to);
  }
  if (from->isInteger() && to->isFloatingPoint()) {
    return builder_.createCast(CastOp::SIToFP, v, to);
  }
  if (from->isFloatingPoint() && to->isInteger()) {
    if (to->isBool()) {
      return builder_.createFCmp(CmpPred::ONE, v, ctx_.getFP(from, 0.0));
    }
    return builder_.createCast(CastOp::FPToSI, v, to);
  }
  if (from->isFloatingPoint() && to->isFloatingPoint()) {
    const bool widen = from->sizeInBytes() < to->sizeInBytes();
    return builder_.createCast(widen ? CastOp::FPExt : CastOp::FPTrunc, v, to);
  }
  throw GroverError(cat("IRGen: cannot convert '", from->str(), "' to '",
                        to->str(), "'"));
}

ir::Value* IRGen::toBool(Value* v) { return convert(v, ctx_.boolTy()); }

ir::Value* IRGen::broadcast(Value* scalar, Type* vecTy) {
  Value* vec = ctx_.getUndef(vecTy);
  for (unsigned lane = 0; lane < vecTy->lanes(); ++lane) {
    vec = builder_.createInsertElement(vec, scalar, ctx_.getInt32(lane));
  }
  return vec;
}

ir::Value* IRGen::emitLValueAddress(const clc::Expr& expr) {
  using clc::ExprKind;
  switch (expr.kind) {
    case ExprKind::VarRef: {
      const auto& ref = static_cast<const clc::VarRefExpr&>(expr);
      const VarSlot* slot = lookup(ref.name);
      if (slot->isPointerParam) {
        throw GroverError("IRGen: pointer parameter is not an lvalue");
      }
      return slot->address;
    }
    case ExprKind::Index: {
      // Collect the index chain bottom-up: a[i][j] = Index(Index(a,i),j).
      std::vector<const clc::Expr*> indices;
      const clc::Expr* base = &expr;
      while (base->kind == ExprKind::Index) {
        const auto& idx = static_cast<const clc::IndexExpr&>(*base);
        indices.push_back(idx.index.get());
        base = idx.base.get();
      }
      std::reverse(indices.begin(), indices.end());
      if (base->kind != ExprKind::VarRef) {
        throw GroverError("IRGen: unsupported indexing base");
      }
      const auto& ref = static_cast<const clc::VarRefExpr&>(*base);
      const VarSlot* slot = lookup(ref.name);

      Value* basePtr = slot->address;
      Value* linear = nullptr;
      if (!slot->arrayDims.empty()) {
        if (indices.size() != slot->arrayDims.size()) {
          throw GroverError("IRGen: wrong number of array indices");
        }
        // Flatten row-major: ((i0*D1)+i1)*D2+i2 ...
        for (std::size_t d = 0; d < indices.size(); ++d) {
          Value* idx = convert(emitExpr(*indices[d]), ctx_.int32Ty());
          if (linear == nullptr) {
            linear = idx;
          } else {
            Value* dim = ctx_.getInt32(
                static_cast<std::int32_t>(slot->arrayDims[d]));
            linear = builder_.createAdd(builder_.createMul(linear, dim), idx);
          }
        }
      } else {
        if (!slot->isPointerParam || indices.size() != 1) {
          throw GroverError("IRGen: invalid pointer indexing");
        }
        linear = convert(emitExpr(*indices[0]), ctx_.int32Ty());
      }
      return builder_.createGep(basePtr, linear);
    }
    default:
      throw GroverError("IRGen: expression is not an lvalue");
  }
}

ir::Value* IRGen::emitExpr(const clc::Expr& expr) {
  using clc::ExprKind;
  switch (expr.kind) {
    case ExprKind::IntLit:
      return ctx_.getInt32(static_cast<std::int32_t>(
          static_cast<const clc::IntLitExpr&>(expr).value));
    case ExprKind::FloatLit:
      return ctx_.getFloat(static_cast<float>(
          static_cast<const clc::FloatLitExpr&>(expr).value));
    case ExprKind::BoolLit:
      return ctx_.getBool(static_cast<const clc::BoolLitExpr&>(expr).value);
    case ExprKind::VarRef: {
      const auto& ref = static_cast<const clc::VarRefExpr&>(expr);
      const VarSlot* slot = lookup(ref.name);
      if (slot->isPointerParam || !slot->arrayDims.empty()) {
        return slot->address;  // decays to a pointer value
      }
      return builder_.createLoad(slot->address, ref.name);
    }
    case ExprKind::Binary: {
      const auto& bin = static_cast<const clc::BinaryExpr&>(expr);
      Value* l = emitExpr(*bin.lhs);
      Value* r = emitExpr(*bin.rhs);
      using clc::BinOp;
      switch (bin.op) {
        case BinOp::Eq: case BinOp::Ne: case BinOp::Lt:
        case BinOp::Le: case BinOp::Gt: case BinOp::Ge: {
          Type* common = clc::commonNumericType(ctx_, l->type(), r->type());
          l = convert(l, common);
          r = convert(r, common);
          if (common->isFloatingPoint()) {
            CmpPred pred = CmpPred::OEQ;
            switch (bin.op) {
              case BinOp::Eq: pred = CmpPred::OEQ; break;
              case BinOp::Ne: pred = CmpPred::ONE; break;
              case BinOp::Lt: pred = CmpPred::OLT; break;
              case BinOp::Le: pred = CmpPred::OLE; break;
              case BinOp::Gt: pred = CmpPred::OGT; break;
              case BinOp::Ge: pred = CmpPred::OGE; break;
              default: break;
            }
            return builder_.createFCmp(pred, l, r);
          }
          CmpPred pred = CmpPred::EQ;
          switch (bin.op) {
            case BinOp::Eq: pred = CmpPred::EQ; break;
            case BinOp::Ne: pred = CmpPred::NE; break;
            case BinOp::Lt: pred = CmpPred::SLT; break;
            case BinOp::Le: pred = CmpPred::SLE; break;
            case BinOp::Gt: pred = CmpPred::SGT; break;
            case BinOp::Ge: pred = CmpPred::SGE; break;
            default: break;
          }
          return builder_.createICmp(pred, l, r);
        }
        case BinOp::LAnd:
        case BinOp::LOr: {
          // Kernel expressions are side-effect free, so non-short-circuit
          // evaluation is semantically equivalent.
          Value* lb = toBool(l);
          Value* rb = toBool(r);
          return builder_.createBinary(
              bin.op == BinOp::LAnd ? BinaryOp::And : BinaryOp::Or, lb, rb);
        }
        default: {
          Type* common = clc::commonNumericType(ctx_, l->type(), r->type());
          l = convert(l, common);
          r = convert(r, common);
          const bool isFP =
              common->isFloatingPoint() ||
              (common->isVector() && common->element()->isFloatingPoint());
          BinaryOp op = BinaryOp::Add;
          switch (bin.op) {
            case BinOp::Add: op = isFP ? BinaryOp::FAdd : BinaryOp::Add; break;
            case BinOp::Sub: op = isFP ? BinaryOp::FSub : BinaryOp::Sub; break;
            case BinOp::Mul: op = isFP ? BinaryOp::FMul : BinaryOp::Mul; break;
            case BinOp::Div: op = isFP ? BinaryOp::FDiv : BinaryOp::SDiv; break;
            case BinOp::Rem: op = BinaryOp::SRem; break;
            case BinOp::Shl: op = BinaryOp::Shl; break;
            case BinOp::Shr: op = BinaryOp::AShr; break;
            case BinOp::BitAnd: op = BinaryOp::And; break;
            case BinOp::BitOr: op = BinaryOp::Or; break;
            case BinOp::BitXor: op = BinaryOp::Xor; break;
            default: break;
          }
          return builder_.createBinary(op, l, r);
        }
      }
    }
    case ExprKind::Unary: {
      const auto& un = static_cast<const clc::UnaryExpr&>(expr);
      Value* sub = emitExpr(*un.sub);
      using clc::UnOp;
      switch (un.op) {
        case UnOp::Neg: {
          Type* t = sub->type();
          if (t->isBool()) {
            sub = convert(sub, ctx_.int32Ty());
            t = ctx_.int32Ty();
          }
          const bool isFP =
              t->isFloatingPoint() ||
              (t->isVector() && t->element()->isFloatingPoint());
          Value* zero;
          if (t->isVector()) {
            zero = broadcast(
                isFP ? static_cast<Value*>(ctx_.getFP(t->element(), 0.0))
                     : static_cast<Value*>(ctx_.getInt(t->element(), 0)),
                t);
          } else {
            zero = isFP ? static_cast<Value*>(ctx_.getFP(t, 0.0))
                        : static_cast<Value*>(ctx_.getInt(t, 0));
          }
          return builder_.createBinary(isFP ? BinaryOp::FSub : BinaryOp::Sub,
                                       zero, sub);
        }
        case UnOp::LogicalNot: {
          Value* b = toBool(sub);
          return builder_.createBinary(BinaryOp::Xor, b, ctx_.getBool(true));
        }
        case UnOp::BitNot:
          return builder_.createBinary(BinaryOp::Xor, sub,
                                       ctx_.getInt(sub->type(), -1));
      }
      throw GroverError("IRGen: bad unary op");
    }
    case ExprKind::Conditional: {
      const auto& cond = static_cast<const clc::ConditionalExpr&>(expr);
      Value* c = toBool(emitExpr(*cond.cond));
      Value* t = convert(emitExpr(*cond.ifTrue), expr.type);
      Value* f = convert(emitExpr(*cond.ifFalse), expr.type);
      return builder_.createSelect(c, t, f);
    }
    case ExprKind::Index: {
      Value* addr = emitLValueAddress(expr);
      return builder_.createLoad(addr);
    }
    case ExprKind::Member: {
      const auto& mem = static_cast<const clc::MemberExpr&>(expr);
      Value* vec = emitExpr(*mem.base);
      static const std::string lanes = "xyzw";
      const auto lane = static_cast<std::int32_t>(lanes.find(mem.member[0]));
      return builder_.createExtractElement(vec, ctx_.getInt32(lane));
    }
    case ExprKind::Call:
      return emitCall(static_cast<const clc::CallExpr&>(expr));
    case ExprKind::Cast: {
      const auto& cst = static_cast<const clc::CastExpr&>(expr);
      return convert(emitExpr(*cst.sub), expr.type);
    }
    case ExprKind::VectorLit: {
      const auto& vecLit = static_cast<const clc::VectorLitExpr&>(expr);
      Type* vecTy = expr.type;
      if (vecLit.elems.size() == 1) {
        return broadcast(convert(emitExpr(*vecLit.elems[0]), vecTy->element()),
                         vecTy);
      }
      Value* vec = ctx_.getUndef(vecTy);
      for (unsigned lane = 0; lane < vecTy->lanes(); ++lane) {
        Value* elem =
            convert(emitExpr(*vecLit.elems[lane]), vecTy->element());
        vec = builder_.createInsertElement(vec, elem, ctx_.getInt32(lane));
      }
      return vec;
    }
  }
  throw GroverError("IRGen: bad expression kind");
}

ir::Value* IRGen::emitCall(const clc::CallExpr& call) {
  const auto builtin = ir::lookupBuiltin(call.callee);
  if (!builtin.has_value()) {
    throw GroverError("IRGen: unknown builtin '" + call.callee + "'");
  }
  std::vector<Value*> args;
  args.reserve(call.args.size());
  for (const auto& arg : call.args) args.push_back(emitExpr(*arg));

  Type* retTy = call.type != nullptr ? call.type : ctx_.voidTy();
  // Promote math arguments to the result type (mad(a,b,c) etc.).
  using ir::Builtin;
  switch (*builtin) {
    case Builtin::Sqrt: case Builtin::RSqrt: case Builtin::Fabs:
    case Builtin::Exp: case Builtin::Log: case Builtin::Sin:
    case Builtin::Cos: case Builtin::Floor: case Builtin::Ceil:
    case Builtin::Pow: case Builtin::FMin: case Builtin::FMax:
    case Builtin::Fma: case Builtin::Mad: case Builtin::IMin:
    case Builtin::IMax: case Builtin::Clamp:
      for (Value*& arg : args) arg = convert(arg, retTy);
      break;
    case Builtin::GetGlobalId: case Builtin::GetLocalId:
    case Builtin::GetGroupId: case Builtin::GetGlobalSize:
    case Builtin::GetLocalSize: case Builtin::GetNumGroups:
      args[0] = convert(args[0], ctx_.int32Ty());
      break;
    case Builtin::Barrier:
      args[0] = convert(args[0], ctx_.int32Ty());
      break;
    default:
      break;
  }
  // Distinct names for id queries ("local_id0") make the Grover reports
  // and printed IR readable; other calls get automatic names.
  std::string name;
  switch (*builtin) {
    case Builtin::GetGlobalId: case Builtin::GetLocalId:
    case Builtin::GetGroupId: case Builtin::GetGlobalSize:
    case Builtin::GetLocalSize: case Builtin::GetNumGroups: {
      std::string base = ir::builtinName(*builtin);
      if (base.rfind("get_", 0) == 0) base = base.substr(4);
      if (const auto* dim = dyn_cast<ConstantInt>(args[0])) {
        base += std::to_string(dim->value());
      }
      name = base;
      break;
    }
    default:
      break;
  }
  return builder_.createCall(*builtin, retTy, args, name);
}

}  // namespace grover::codegen
