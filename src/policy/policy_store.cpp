#include "policy/policy_store.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

#include "support/diagnostics.h"
#include "support/hash.h"

namespace grover::policy {
namespace {

// ---- on-disk decision format ---------------------------------------------
//
// Same conventions as the artifact cache (service/artifact_cache.cpp):
//   groverpol 2
//   key <hex16>
//   i <name> <integer>
//   b <name> <u64 bit pattern>      (doubles, bit-exact)
//   s <name> <len>\n<len raw bytes>\n
//   end
// Any deviation throws → the caller deletes the file and reports a miss.
// Version 2 added the proof status and store timestamp; v1 files fail the
// header check and are dropped like any other corrupt entry — decisions
// are re-derivable, so a one-time cold restart beats a migration path.

class Writer {
 public:
  void num(const char* name, std::int64_t v) {
    os_ << "i " << name << " " << v << "\n";
  }
  void bits(const char* name, double v) {
    std::uint64_t u = 0;
    static_assert(sizeof(u) == sizeof(v));
    std::memcpy(&u, &v, sizeof(u));
    os_ << "b " << name << " " << u << "\n";
  }
  void str(const char* name, const std::string& s) {
    os_ << "s " << name << " " << s.size() << "\n" << s << "\n";
  }
  std::ostringstream os_;
};

class Reader {
 public:
  explicit Reader(std::string text) : text_(std::move(text)) {}

  std::string line() {
    const std::size_t nl = text_.find('\n', pos_);
    if (nl == std::string::npos) throw GroverError("policy: truncated");
    std::string out = text_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return out;
  }
  void expectLine(const std::string& want) {
    if (line() != want) throw GroverError("policy: bad header");
  }
  std::int64_t num(const char* name) {
    const std::string l = line();
    std::int64_t v = 0;
    if (std::sscanf(l.c_str(), ("i " + std::string(name) + " %lld").c_str(),
                    reinterpret_cast<long long*>(&v)) != 1) {
      throw GroverError("policy: expected int field " + std::string(name));
    }
    return v;
  }
  double bits(const char* name) {
    const std::string l = line();
    unsigned long long u = 0;
    if (std::sscanf(l.c_str(), ("b " + std::string(name) + " %llu").c_str(),
                    &u) != 1) {
      throw GroverError("policy: expected bits field " + std::string(name));
    }
    double v = 0;
    const std::uint64_t u64 = u;
    std::memcpy(&v, &u64, sizeof(v));
    return v;
  }
  std::string str(const char* name) {
    const std::string l = line();
    unsigned long long len = 0;
    if (std::sscanf(l.c_str(), ("s " + std::string(name) + " %llu").c_str(),
                    &len) != 1) {
      throw GroverError("policy: expected string field " +
                        std::string(name));
    }
    if (pos_ + len + 1 > text_.size() || text_[pos_ + len] != '\n') {
      throw GroverError("policy: bad string length for " +
                        std::string(name));
    }
    std::string out = text_.substr(pos_, len);
    pos_ += len + 1;
    return out;
  }

 private:
  std::string text_;
  std::size_t pos_ = 0;
};

std::string serialize(std::uint64_t key, const Decision& d) {
  Writer w;
  w.os_ << "groverpol 2\n" << "key " << toHex64(key) << "\n";
  w.num("variant", static_cast<std::int64_t>(d.variant));
  w.num("outcome", static_cast<std::int64_t>(d.predictedOutcome));
  w.bits("predictedNp", d.predictedNp);
  w.bits("confidence", d.confidence);
  w.str("source", d.source);
  w.bits("ewmaNp", d.ewmaNp);
  w.num("observations", static_cast<std::int64_t>(d.observations));
  w.num("mismatch", d.mismatch ? 1 : 0);
  w.num("proof", static_cast<std::int64_t>(d.proof));
  w.num("storedAtMs", static_cast<std::int64_t>(d.storedAtMs));
  w.os_ << "end\n";
  return w.os_.str();
}

Decision deserialize(std::uint64_t key, std::string text) {
  Reader r(std::move(text));
  r.expectLine("groverpol 2");
  r.expectLine("key " + toHex64(key));
  Decision d;
  const std::int64_t variant = r.num("variant");
  if (variant < 0 ||
      variant > static_cast<std::int64_t>(Variant::Transformed)) {
    throw GroverError("policy: bad variant");
  }
  d.variant = static_cast<Variant>(variant);
  const std::int64_t outcome = r.num("outcome");
  if (outcome < 0 ||
      outcome > static_cast<std::int64_t>(perf::Outcome::Similar)) {
    throw GroverError("policy: bad outcome");
  }
  d.predictedOutcome = static_cast<perf::Outcome>(outcome);
  d.predictedNp = r.bits("predictedNp");
  d.confidence = r.bits("confidence");
  d.source = r.str("source");
  d.ewmaNp = r.bits("ewmaNp");
  const std::int64_t observations = r.num("observations");
  if (observations < 0) throw GroverError("policy: bad observation count");
  d.observations = static_cast<std::uint64_t>(observations);
  d.mismatch = r.num("mismatch") != 0;
  const std::int64_t proof = r.num("proof");
  if (proof < 0 || proof > static_cast<std::int64_t>(sym::ProofStatus::Unknown)) {
    throw GroverError("policy: bad proof status");
  }
  d.proof = static_cast<sym::ProofStatus>(proof);
  const std::int64_t storedAtMs = r.num("storedAtMs");
  if (storedAtMs < 0) throw GroverError("policy: bad store timestamp");
  d.storedAtMs = static_cast<std::uint64_t>(storedAtMs);
  r.expectLine("end");
  return d;
}

}  // namespace

const char* toString(Variant v) {
  switch (v) {
    case Variant::Original: return "with-local-memory";
    case Variant::Transformed: return "without-local-memory";
  }
  return "?";
}

Variant Decision::variantFor(double np, double threshold) {
  return np > 1.0 + threshold ? Variant::Transformed : Variant::Original;
}

double decayedConfidence(const Decision& d, double priorConfidence,
                         std::uint64_t nowMs, std::uint64_t horizonMs) {
  if (horizonMs == 0 || d.storedAtMs == 0 || nowMs <= d.storedAtMs) {
    return d.confidence;
  }
  const double age = static_cast<double>(nowMs - d.storedAtMs);
  const double factor = std::exp2(-age / static_cast<double>(horizonMs));
  // Decay only toward the floor; a decision already below the prior's
  // confidence (e.g. a contradicted estimate) is not pulled back up.
  if (d.confidence <= priorConfidence) return d.confidence;
  return priorConfidence + (d.confidence - priorConfidence) * factor;
}

bool shouldRemeasure(const Decision& d, std::uint64_t nowMs,
                     std::uint64_t horizonMs) {
  if (!d.mismatch || horizonMs == 0 || d.storedAtMs == 0) return false;
  return nowMs >= d.storedAtMs + horizonMs;
}

PolicyStore::PolicyStore(Config config) : config_(std::move(config)) {
  const unsigned n = std::max(1u, config_.shards);
  shardBudget_ = std::max<std::size_t>(1, config_.maxEntries / n);
  shards_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (!config_.diskDir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.diskDir, ec);
  }
}

PolicyStore::Shard& PolicyStore::shardFor(std::uint64_t key) {
  return *shards_[key % shards_.size()];
}

std::optional<Decision> PolicyStore::lookup(std::uint64_t key) {
  {
    Shard& shard = shardFor(key);
    std::lock_guard lock(shard.mutex);
    if (const auto it = shard.index.find(key); it != shard.index.end()) {
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->decision;
    }
    ++shard.misses;
  }
  std::optional<Decision> fromDisk = loadFromDisk(key);
  if (fromDisk.has_value()) putMemory(key, *fromDisk);
  return fromDisk;
}

void PolicyStore::store(std::uint64_t key, const Decision& decision) {
  // Stamp the store time unless the caller set one (tests construct
  // deliberately stale entries to exercise decay).
  Decision stamped = decision;
  if (stamped.storedAtMs == 0) {
    stamped.storedAtMs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  }
  putMemory(key, stamped);
  storeToDisk(key, stamped);
}

void PolicyStore::putMemory(std::uint64_t key, const Decision& decision) {
  Shard& shard = shardFor(key);
  std::lock_guard lock(shard.mutex);
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.lru.push_front(Entry{key, decision});
  shard.index[key] = shard.lru.begin();
  while (shard.lru.size() > shardBudget_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

std::string PolicyStore::diskPath(std::uint64_t key) const {
  if (config_.diskDir.empty()) return {};
  return config_.diskDir + "/" + toHex64(key) + ".grvpol";
}

std::optional<Decision> PolicyStore::loadFromDisk(std::uint64_t key) {
  const std::string path = diskPath(key);
  if (path.empty()) return std::nullopt;
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) {
      std::lock_guard lock(disk_mutex_);
      ++disk_failures_;
      return std::nullopt;
    }
    text = buf.str();
  }
  try {
    Decision d = deserialize(key, std::move(text));
    std::lock_guard lock(disk_mutex_);
    ++disk_hits_;
    return d;
  } catch (const std::exception&) {
    // Corrupt entry: drop it so a fresh decision can replace it.
    std::error_code ec;
    std::filesystem::remove(path, ec);
    std::lock_guard lock(disk_mutex_);
    ++disk_failures_;
    return std::nullopt;
  }
}

void PolicyStore::storeToDisk(std::uint64_t key, const Decision& decision) {
  const std::string path = diskPath(key);
  if (path.empty()) return;
  const std::string payload = serialize(key, decision);
  // Unique temp name per write (feedback rewrites the same key from
  // several threads, and processes may share a policy directory), then
  // atomic rename: readers never see a torn file and a crash mid-write
  // leaves only a stale .tmp, never a truncated decision.
  static std::atomic<std::uint64_t> tmpCounter{0};
  Fnv1a tmpTag;
  tmpTag.update(static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id())));
  tmpTag.update(static_cast<std::uint64_t>(
      reinterpret_cast<std::uintptr_t>(&tmpCounter)));  // per-process (ASLR)
  tmpTag.update(tmpCounter.fetch_add(1));
  const std::string tmp = path + ".tmp" + toHex64(tmpTag.digest());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << payload;
    out.flush();
    if (!out.good()) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return;
  }
  std::lock_guard lock(disk_mutex_);
  ++disk_stores_;
}

PolicyStore::Stats PolicyStore::stats() const {
  Stats s;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    s.hits += shard->hits;
    s.misses += shard->misses;
    s.evictions += shard->evictions;
    s.entries += shard->lru.size();
  }
  std::lock_guard lock(disk_mutex_);
  s.diskHits = disk_hits_;
  s.diskLoadFailures = disk_failures_;
  s.diskStores = disk_stores_;
  return s;
}

}  // namespace grover::policy
