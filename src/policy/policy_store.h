// Persistent decision store of the policy engine (DESIGN.md §10): maps a
// feature key — support::hash over (feature vector, platform, scale) —
// to the transform decision learned for that kernel shape. Sharded
// in-memory LRU (decisions are tiny, so the budget is entry-count based)
// plus an optional on-disk tier following the service::ArtifactCache
// conventions: line-oriented text format, doubles stored as bit
// patterns, temp-file + atomic rename on write, corrupt entries deleted
// and treated as misses.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "perf/estimator.h"
#include "sym/report.h"

namespace grover::policy {

/// Which compiled kernel variant a decision serves.
enum class Variant : std::uint8_t {
  Original,     // keep local memory
  Transformed,  // Grover-disabled local memory
};
[[nodiscard]] const char* toString(Variant v);

/// One learned decision. Immutable from the consumer's point of view;
/// only the feedback loop rewrites entries (through PolicyStore::store).
struct Decision {
  Variant variant = Variant::Original;
  perf::Outcome predictedOutcome = perf::Outcome::Similar;
  /// np the decision was made at (np > 1 → disabling local memory wins).
  double predictedNp = 1.0;
  /// 0..1; estimate-backed decisions are high, feature-prior ones low.
  double confidence = 0;
  /// Where the decision came from: "estimate", "prior", or "feedback".
  std::string source;

  // --- feedback state (see policy/feedback.h) --------------------------
  /// Exponentially-weighted mean of *measured* np; 0 until the first
  /// measurement arrives.
  double ewmaNp = 0;
  std::uint64_t observations = 0;
  /// Set when the measured EWMA contradicts predictedNp by more than the
  /// feedback loop's tolerance — the platform model is miscalibrated for
  /// this kernel shape.
  bool mismatch = false;

  // --- proof state (see sym/report.h) ----------------------------------
  /// Verdict of the symbolic race prover on the *transformed* kernel at
  /// decision time. Unchecked when the decision was made without --prove.
  /// Refuted forces Variant::Original and an automatic Loss verdict
  /// regardless of np — a transform that introduces a race never wins.
  sym::ProofStatus proof = sym::ProofStatus::Unchecked;
  /// Wall clock of the store that produced this entry (ms since epoch);
  /// drives confidence decay. 0 = unstamped (legacy/test entries).
  std::uint64_t storedAtMs = 0;

  /// The variant np says to serve (ties/Similar keep the original: the
  /// author's code wins unless the transform is a proven gain).
  [[nodiscard]] static Variant variantFor(double np, double threshold);
};

/// Age-decayed confidence: halves every `horizonMs` toward the
/// feature-prior floor `priorConfidence`, so a year-old estimate carries
/// no more weight than a cold prior. horizonMs == 0 disables decay, and
/// an unstamped decision (storedAtMs == 0) never decays.
[[nodiscard]] double decayedConfidence(const Decision& d,
                                       double priorConfidence,
                                       std::uint64_t nowMs,
                                       std::uint64_t horizonMs);

/// Whether a stale entry whose measurements contradict its prediction
/// should be re-measured instead of trusted: mismatch is flagged and at
/// least one decay horizon has passed since it was stored.
[[nodiscard]] bool shouldRemeasure(const Decision& d, std::uint64_t nowMs,
                                   std::uint64_t horizonMs);

class PolicyStore {
 public:
  struct Config {
    /// Total in-memory entries across all shards.
    std::size_t maxEntries = 1u << 16;
    unsigned shards = 8;
    /// Directory of the on-disk tier; empty = memory only.
    std::string diskDir;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
    std::uint64_t diskHits = 0;
    std::uint64_t diskLoadFailures = 0;  // corrupt/unreadable entries
    std::uint64_t diskStores = 0;
  };

  explicit PolicyStore(Config config);

  /// Memory probe, falling back to the disk tier on miss (a disk hit
  /// populates the memory tier). nullopt = unknown kernel shape.
  [[nodiscard]] std::optional<Decision> lookup(std::uint64_t key);

  /// Insert/overwrite in memory and persist to the disk tier (atomic
  /// temp-file + rename; write errors are swallowed — the disk tier is
  /// an optimization, never a correctness dependency).
  void store(std::uint64_t key, const Decision& decision);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const Config& config() const { return config_; }

  /// Path of the decision file for a key ("" without a disk tier).
  [[nodiscard]] std::string diskPath(std::uint64_t key) const;

 private:
  struct Entry {
    std::uint64_t key = 0;
    Decision decision;
  };
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::uint64_t hits = 0, misses = 0, evictions = 0;
  };

  Shard& shardFor(std::uint64_t key);
  void putMemory(std::uint64_t key, const Decision& decision);
  [[nodiscard]] std::optional<Decision> loadFromDisk(std::uint64_t key);
  void storeToDisk(std::uint64_t key, const Decision& decision);

  Config config_;
  std::size_t shardBudget_ = 0;  // entries per shard
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex disk_mutex_;
  std::uint64_t disk_hits_ = 0, disk_failures_ = 0, disk_stores_ = 0;
};

}  // namespace grover::policy
