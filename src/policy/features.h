// Architecture-independent kernel features (DESIGN.md §10). The policy
// engine keys its per-kernel/per-platform decisions on *what the kernel
// does* — local-memory bytes, staging structure, index-pattern classes,
// access stride shape, barrier count, work-group geometry — rather than
// on the source text, so textually different kernels with the same
// memory behavior share one decision, and a cosmetic edit does not
// invalidate a learned decision. Inspired by the architecture-independent
// workload characterization of Chilukuri et al. (PAPERS.md).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "ir/function.h"
#include "rt/ndrange.h"

namespace grover::policy {

/// How the innermost local id (lx = get_local_id(0)) enters the flat
/// index of an access: contiguous lanes (coalesced when lowered to
/// global memory), scaled by a row pitch (the transposed/column shape
/// that thrashes caches and splits GPU transactions), or absent.
enum class StrideShape : std::uint8_t {
  NoLocalIdX,  // index does not depend on lx
  Unit,        // lx appears only additively → unit stride across lanes
  Scaled,      // lx multiplied by a pitch > 1 → strided/uncoalesced
};
[[nodiscard]] const char* toString(StrideShape s);

/// One extracted feature vector. Every field is integral (doubles are
/// stored as scaled fixed-point) so the content hash is exact and
/// portable — see featureKey().
struct KernelFeatures {
  // --- local-memory shape (grv::analyzeLocalMemoryUsage) ---------------
  std::uint64_t localBytes = 0;     // total __local footprint
  unsigned numLocalBuffers = 0;
  unsigned numReversibleBuffers = 0;  // SoftwareCache: Grover can reverse
  unsigned numTemporalBuffers = 0;    // computed values: Grover refuses
  unsigned numBarriers = 0;
  unsigned numStagingPairs = 0;  // GL→LS pairs across all buffers
  unsigned localLoads = 0;       // LL count
  unsigned localStores = 0;      // LS count
  /// Reuse factor ×1000: local loads per staged element. High reuse means
  /// the software cache amortizes its staging cost; ~1000 (reuse 1) means
  /// staging is pure overhead.
  std::uint64_t reuseMilli = 0;

  // --- index-pattern classes (paper Fig. 7, grv::classifyIndexPattern) --
  unsigned glPatternClass = 0;  // dominant pattern of global loads
  unsigned lsPatternClass = 0;  // dominant pattern of local stores
  unsigned llPatternClass = 0;  // dominant pattern of local loads

  // --- access stride/coalescing shape ----------------------------------
  StrideShape glStride = StrideShape::NoLocalIdX;  // staging global loads
  StrideShape llStride = StrideShape::NoLocalIdX;  // local (cache) loads

  // --- static instruction mix ------------------------------------------
  unsigned totalInsts = 0;
  unsigned globalLoads = 0;
  unsigned globalStores = 0;
  unsigned arithOps = 0;  // integer + float binary ops
  unsigned branches = 0;
  unsigned phis = 0;

  // --- work-group geometry (zero when no launch config is known) --------
  std::array<std::uint32_t, 3> localSize{0, 0, 0};
  std::array<std::uint32_t, 3> globalSize{0, 0, 0};

  [[nodiscard]] std::string str() const;
};

/// Extract the feature vector of one kernel. `range` supplies the
/// work-group geometry when a launch configuration is known (null keeps
/// the geometry fields zero — the feature key then describes the kernel
/// shape alone).
[[nodiscard]] KernelFeatures extractFeatures(ir::Function& fn,
                                             const rt::NDRange* range =
                                                 nullptr);

/// Stable 64-bit content hash over (feature vector, platform, scale tag):
/// the policy-store key. Defined purely by field values in a fixed order
/// (support/hash.h), so it survives process restarts and rebuilds.
[[nodiscard]] std::uint64_t featureKey(const KernelFeatures& f,
                                       const std::string& platform,
                                       std::uint64_t scaleTag);

}  // namespace grover::policy
