#include "policy/feedback.h"

#include <cmath>

#include "perf/estimator.h"

namespace grover::policy {

Decision FeedbackLoop::recordMeasurement(std::uint64_t key,
                                         double measuredNp,
                                         bool* newlyMismatched) {
  if (newlyMismatched != nullptr) *newlyMismatched = false;
  // One lock around the whole read-modify-write: concurrent measurements
  // of the same key must not drop each other's EWMA contribution.
  std::lock_guard lock(mutex_);
  Decision d;
  if (std::optional<Decision> existing = store_.lookup(key);
      existing.has_value()) {
    d = *existing;
  } else {
    // Unknown shape: bootstrap from the measurement alone.
    d.predictedNp = measuredNp;
    d.source = "feedback";
    d.confidence = 0.5;
  }

  d.ewmaNp = d.observations == 0
                 ? measuredNp
                 : config_.alpha * measuredNp +
                       (1.0 - config_.alpha) * d.ewmaNp;
  ++d.observations;

  const Variant measuredVariant =
      Decision::variantFor(d.ewmaNp, config_.threshold);
  const bool flips = measuredVariant != d.variant;
  if (flips) {
    d.variant = measuredVariant;
    d.predictedOutcome = perf::classify(d.ewmaNp, config_.threshold);
    d.source = "feedback";
    // Measured evidence replaces the contradicted prediction.
    d.confidence = 0.8;
  }

  const double relDiff =
      d.predictedNp > 0
          ? std::fabs(d.predictedNp - d.ewmaNp) / d.predictedNp
          : 0.0;
  const bool crossed =
      !d.mismatch && relDiff > config_.mismatchTolerance;
  if (crossed) d.mismatch = true;

  // Fresh evidence restarts the age-decay clock: clear the stamp so
  // store() re-stamps with the current wall clock.
  d.storedAtMs = 0;
  store_.store(key, d);

  ++stats_.measurements;
  if (flips) ++stats_.flips;
  if (crossed) ++stats_.mismatches;
  if (newlyMismatched != nullptr) *newlyMismatched = crossed;
  return d;
}

FeedbackLoop::Stats FeedbackLoop::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace grover::policy
