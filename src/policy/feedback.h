// Feedback loop (DESIGN.md §10): folds *measured* run outcomes back into
// stored decisions. Each measurement of normalized performance (np =
// perf without LM / perf with LM) updates an exponentially-weighted
// moving average; once the EWMA's classification contradicts the served
// variant, the decision flips, and a predicted-vs-measured divergence
// beyond the tolerance flags the entry as a model-calibration mismatch.
// This is Han & Abdelrahman's online tuning step (PAPERS.md) on top of
// the paper's static estimate.
#pragma once

#include <cstdint>

#include "policy/policy_store.h"

namespace grover::policy {

struct FeedbackConfig {
  /// EWMA weight of a new measurement (1 = latest only).
  double alpha = 0.3;
  /// Gain/Loss band, matching the engine's 5% threshold.
  double threshold = 0.05;
  /// Relative |predicted − measured| np divergence that flags a
  /// mismatch between the platform model and reality.
  double mismatchTolerance = 0.15;
};

class FeedbackLoop {
 public:
  struct Stats {
    std::uint64_t measurements = 0;
    std::uint64_t flips = 0;       // decisions whose variant changed
    std::uint64_t mismatches = 0;  // entries newly flagged
  };

  explicit FeedbackLoop(PolicyStore& store, FeedbackConfig config = {})
      : store_(store), config_(config) {}

  /// Fold one measured np into the decision for `key` and persist the
  /// update. Unknown keys bootstrap a measurement-only decision (source
  /// "feedback"). Returns the stored decision after the update. When
  /// `newlyMismatched` is non-null it is set to whether *this* call
  /// crossed the mismatch tolerance (already-flagged entries report
  /// false) — the service uses that edge to trigger re-estimation.
  Decision recordMeasurement(std::uint64_t key, double measuredNp,
                             bool* newlyMismatched = nullptr);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const FeedbackConfig& config() const { return config_; }

 private:
  PolicyStore& store_;
  FeedbackConfig config_;

  mutable std::mutex mutex_;
  Stats stats_;
};

}  // namespace grover::policy
