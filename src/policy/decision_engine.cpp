#include "policy/decision_engine.h"

#include "perf/estimator.h"

namespace grover::policy {
namespace {

Decision fromNp(double np, double threshold, double confidence,
                std::string source) {
  Decision d;
  d.predictedNp = np;
  d.predictedOutcome = perf::classify(np, threshold);
  d.variant = Decision::variantFor(np, threshold);
  d.confidence = confidence;
  d.source = std::move(source);
  return d;
}

}  // namespace

Decision DecisionEngine::prior(const KernelFeatures& features,
                               const perf::PlatformSpec& platform) const {
  // Nothing to reverse → the transform is a no-op; serve the original.
  if (features.numReversibleBuffers == 0 || features.numStagingPairs == 0) {
    return fromNp(1.0, threshold_, 0.9, "prior");
  }

  const double reuse = static_cast<double>(features.reuseMilli) / 1000.0;

  if (platform.kind == perf::PlatformKind::GpuSpm) {
    // Disabling local memory replays every former LL as a global access.
    // When the local reads are lane-strided (transpose shape), the
    // lowered global reads split into per-lane transactions — the
    // paper's Fig. 2 GPU losses. Coalesced low-reuse staging is merely
    // redundant and roughly cancels against the saved SPM traffic.
    if (features.llStride == StrideShape::Scaled ||
        features.glStride == StrideShape::Scaled) {
      return fromNp(0.7, threshold_, 0.6, "prior");
    }
    if (reuse > 2.0) return fromNp(0.9, threshold_, 0.5, "prior");
    return fromNp(1.0, threshold_, 0.4, "prior");
  }

  // Cache-only processors: local memory is ordinary cached memory, so
  // the software cache only pays off when it *changes the layout* of
  // high-reuse data (MM's column-accessed tile). Low-reuse staging is
  // pure instruction overhead the caches absorb — the paper's Fig. 10
  // transpose-family gains.
  if (reuse > 2.0 && features.glStride == StrideShape::Scaled) {
    return fromNp(0.8, threshold_, 0.6, "prior");  // MM-like: keep the tile
  }
  if (reuse <= 2.0 && features.numStagingPairs > 0) {
    return fromNp(1.2, threshold_, 0.6, "prior");  // staging is overhead
  }
  return fromNp(1.0, threshold_, 0.4, "prior");
}

Decision DecisionEngine::decide(const KernelFeatures& features,
                                const perf::PlatformSpec& platform,
                                const EstimatePair& estimates) const {
  const double np = perf::normalizedPerformance(estimates.cyclesWithLM,
                                                estimates.cyclesWithoutLM);
  const Decision guess = prior(features, platform);
  // Estimates dominate: the verdict is the estimator-derived label. The
  // prior only shifts confidence — agreement on the outcome class makes
  // the decision near-certain, contradiction keeps it serveable but
  // marks it worth re-measuring.
  const bool agrees =
      guess.predictedOutcome == perf::classify(np, threshold_);
  Decision d = fromNp(np, threshold_, agrees ? 0.95 : 0.75, "estimate");
  return d;
}

}  // namespace grover::policy
