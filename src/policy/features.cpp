#include "policy/features.h"

#include <algorithm>
#include <map>

#include "grover/candidates.h"
#include "grover/expr_tree.h"
#include "grover/usage_analysis.h"
#include "ir/basic_block.h"
#include "ir/casting.h"
#include "ir/instruction.h"
#include "support/hash.h"
#include "support/str.h"

namespace grover::policy {
namespace {

/// Does `v`'s expression involve get_local_id(0), and if so, is it ever
/// scaled by a constant pitch > 1 on its path to the root? The expression
/// tree recursion stops at calls/phis/constants exactly like Grover's own
/// index analysis, so this sees the same affine structure the transform
/// sees.
StrideShape classifyStride(ir::Value* index) {
  if (index == nullptr) return StrideShape::NoLocalIdX;
  grv::ExprTree tree = grv::ExprTree::build(index);
  bool sawLx = false;
  bool sawScaledLx = false;
  for (grv::ExprNode* leaf : tree.leaves()) {
    auto* call = ir::dyn_cast<ir::CallInst>(leaf->value);
    if (call == nullptr || call->builtin() != ir::Builtin::GetLocalId) {
      continue;
    }
    const auto dim = call->constDimension();
    if (!dim.has_value() || *dim != 0) continue;
    sawLx = true;
    // Walk toward the root: a Mul whose other operand is a constant != 1
    // (or any non-constant pitch) scales lx away from unit stride.
    for (grv::ExprNode* n = leaf->parent; n != nullptr; n = n->parent) {
      auto* bin = ir::dyn_cast<ir::BinaryInst>(n->value);
      if (bin == nullptr) continue;
      if (bin->op() == ir::BinaryOp::Mul ||
          bin->op() == ir::BinaryOp::Shl) {
        sawScaledLx = true;
        break;
      }
    }
  }
  if (!sawLx) return StrideShape::NoLocalIdX;
  return sawScaledLx ? StrideShape::Scaled : StrideShape::Unit;
}

/// Most frequent pattern class of a set of classified accesses (ties go
/// to the smaller enum value so the result is deterministic).
unsigned dominantPattern(const std::map<unsigned, unsigned>& histogram) {
  unsigned best = static_cast<unsigned>(grv::IndexPattern::Other);
  unsigned bestCount = 0;
  for (const auto& [cls, count] : histogram) {
    if (count > bestCount) {
      best = cls;
      bestCount = count;
    }
  }
  return bestCount == 0 ? static_cast<unsigned>(grv::IndexPattern::Other)
                        : best;
}

/// Flat gep index of a load/store pointer operand (null when the access
/// goes through the raw pointer, i.e. index 0).
ir::Value* flatIndex(ir::Value* pointer) {
  if (auto* gep = ir::dyn_cast<ir::GepInst>(pointer)) return gep->index();
  return nullptr;
}

/// classifyIndexPattern with the null-index convention: no gep = index 0.
unsigned patternClass(ir::Value* index) {
  if (index == nullptr) {
    return static_cast<unsigned>(grv::IndexPattern::Constant);
  }
  return static_cast<unsigned>(grv::classifyIndexPattern(index));
}

/// Merge a stride observation: Scaled dominates Unit dominates absent —
/// one strided access is enough to make the whole buffer's global
/// traffic uncoalesced.
void mergeStride(StrideShape& into, StrideShape observed) {
  into = std::max(into, observed);
}

}  // namespace

const char* toString(StrideShape s) {
  switch (s) {
    case StrideShape::NoLocalIdX: return "no-lx";
    case StrideShape::Unit: return "unit";
    case StrideShape::Scaled: return "scaled";
  }
  return "?";
}

KernelFeatures extractFeatures(ir::Function& fn, const rt::NDRange* range) {
  KernelFeatures f;

  const grv::LocalUsageReport usage = grv::analyzeLocalMemoryUsage(fn);
  f.localBytes = usage.totalLocalBytes;
  f.numBarriers = usage.numBarriers;
  f.numLocalBuffers = static_cast<unsigned>(usage.buffers.size());
  for (const grv::LocalBufferUsage& b : usage.buffers) {
    if (b.kind == grv::LocalUsageKind::SoftwareCache) {
      ++f.numReversibleBuffers;
    } else if (b.kind == grv::LocalUsageKind::TemporalStorage) {
      ++f.numTemporalBuffers;
    }
    f.localLoads += b.numLoads;
    f.localStores += b.numStores;
    f.numStagingPairs += b.numStagingPairs;
  }
  f.reuseMilli = f.localStores == 0
                     ? 0
                     : (std::uint64_t{f.localLoads} * 1000) / f.localStores;

  // Index-pattern classes and stride shapes from the candidate analysis —
  // the same GL/LS/LL classification the transform itself uses.
  std::map<unsigned, unsigned> glHist, lsHist, llHist;
  for (const grv::CandidateBuffer& c : grv::findCandidates(fn)) {
    for (const grv::StagingPair& p : c.pairs) {
      ++glHist[patternClass(p.glIndex)];
      ++lsHist[patternClass(p.lsIndex)];
      mergeStride(f.glStride, classifyStride(p.glIndex));
    }
    for (ir::LoadInst* ll : c.localLoads) {
      ir::Value* idx = flatIndex(ll->pointer());
      ++llHist[patternClass(idx)];
      mergeStride(f.llStride, classifyStride(idx));
    }
  }
  f.glPatternClass = dominantPattern(glHist);
  f.lsPatternClass = dominantPattern(lsHist);
  f.llPatternClass = dominantPattern(llHist);

  // Static instruction mix.
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : *bb) {
      ++f.totalInsts;
      if (auto* load = ir::dyn_cast<ir::LoadInst>(inst.get())) {
        if (load->space() == ir::AddrSpace::Global) ++f.globalLoads;
      } else if (auto* store = ir::dyn_cast<ir::StoreInst>(inst.get())) {
        if (store->space() == ir::AddrSpace::Global) ++f.globalStores;
      } else if (ir::isa<ir::BinaryInst>(inst.get())) {
        ++f.arithOps;
      } else if (inst->isTerminator()) {
        ++f.branches;
      } else if (ir::isa<ir::PhiInst>(inst.get())) {
        ++f.phis;
      }
    }
  }

  if (range != nullptr) {
    f.localSize = range->local;
    f.globalSize = range->global;
  }
  return f;
}

std::uint64_t featureKey(const KernelFeatures& f,
                         const std::string& platform,
                         std::uint64_t scaleTag) {
  Fnv1a h;
  h.update(std::string_view("grover-policy-key-v1"));
  h.update(f.localBytes);
  h.update(std::uint64_t{f.numLocalBuffers});
  h.update(std::uint64_t{f.numReversibleBuffers});
  h.update(std::uint64_t{f.numTemporalBuffers});
  h.update(std::uint64_t{f.numBarriers});
  h.update(std::uint64_t{f.numStagingPairs});
  h.update(std::uint64_t{f.localLoads});
  h.update(std::uint64_t{f.localStores});
  h.update(f.reuseMilli);
  h.update(std::uint64_t{f.glPatternClass});
  h.update(std::uint64_t{f.lsPatternClass});
  h.update(std::uint64_t{f.llPatternClass});
  h.update(static_cast<std::uint64_t>(f.glStride));
  h.update(static_cast<std::uint64_t>(f.llStride));
  h.update(std::uint64_t{f.totalInsts});
  h.update(std::uint64_t{f.globalLoads});
  h.update(std::uint64_t{f.globalStores});
  h.update(std::uint64_t{f.arithOps});
  h.update(std::uint64_t{f.branches});
  h.update(std::uint64_t{f.phis});
  for (std::uint32_t v : f.localSize) h.update(std::uint64_t{v});
  for (std::uint32_t v : f.globalSize) h.update(std::uint64_t{v});
  h.update(std::string_view(platform));
  h.update(scaleTag);
  return h.digest();
}

std::string KernelFeatures::str() const {
  return cat("local ", localBytes, " B in ", numLocalBuffers, " buffer(s) (",
             numReversibleBuffers, " reversible, ", numTemporalBuffers,
             " temporal), ", numBarriers, " barrier(s), ", numStagingPairs,
             " staging pair(s), LL/LS reuse ",
             fixed(static_cast<double>(reuseMilli) / 1000.0, 2),
             ", gl stride ", toString(glStride), ", ll stride ",
             toString(llStride), ", ", totalInsts, " insts (", globalLoads,
             " gload, ", globalStores, " gstore, ", arithOps, " arith), wg ",
             localSize[0], "x", localSize[1], "x", localSize[2]);
}

}  // namespace grover::policy
