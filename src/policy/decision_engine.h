// Decision engine (DESIGN.md §10): turns kernel features and — when
// available — the trace-driven estimates of both variants into a
// Gain/Loss/Similar verdict at the paper's 5% threshold, choosing which
// kernel variant to serve on a platform. The feature-based prior encodes
// the paper's own mechanisms (Table IV / §VI-C): strided global reads
// punish SPM GPUs and set-thrashing caches, low-reuse staging is pure
// overhead on cache-only processors. Estimates always dominate the
// prior; the prior decides cold requests that cannot be estimated and
// modulates confidence when both are present.
#pragma once

#include "perf/platform.h"
#include "policy/features.h"
#include "policy/policy_store.h"

namespace grover::policy {

/// Cycle estimates of the two variants on one platform.
struct EstimatePair {
  double cyclesWithLM = 0;
  double cyclesWithoutLM = 0;
};

class DecisionEngine {
 public:
  /// `threshold`: the paper's Gain/Loss similarity band (5%).
  explicit DecisionEngine(double threshold = 0.05)
      : threshold_(threshold) {}

  /// Feature-only verdict for a kernel shape on a platform — the cold
  /// path, when no estimates exist. Low confidence by construction.
  [[nodiscard]] Decision prior(const KernelFeatures& features,
                               const perf::PlatformSpec& platform) const;

  /// Full verdict from the measured with/without-LM estimates. The
  /// outcome is exactly perf::classify(np) at the engine's threshold —
  /// the estimator-derived Table IV label — and the prior only modulates
  /// the reported confidence (agreement raises it, contradiction lowers
  /// it and is a calibration signal).
  [[nodiscard]] Decision decide(const KernelFeatures& features,
                                const perf::PlatformSpec& platform,
                                const EstimatePair& estimates) const;

  [[nodiscard]] double threshold() const { return threshold_; }

 private:
  double threshold_;
};

}  // namespace grover::policy
